// Package thunderbolt is the public facade of the Thunderbolt
// reproduction: a sharded DAG-BFT execution engine that runs smart
// contracts concurrently without prior knowledge of their read/write
// sets and rotates shard ownership without blocking consensus.
//
// Three entry points cover the common uses:
//
//   - NewExecutor: the standalone Concurrent Executor (paper §7–8) for
//     embedding optimistic, serializable batch execution in a single
//     process.
//   - NewCluster: a local multi-replica testbed running the full
//     protocol (DAG dissemination, Tusk commitment, preplay,
//     validation, cross-shard execution, reconfiguration).
//   - NewGenerator: the SmallBank workload the paper evaluates with.
//
// See the examples/ directory for runnable end-to-end programs and
// DESIGN.md for the architecture.
package thunderbolt

import (
	"thunderbolt/internal/ce"
	"thunderbolt/internal/cluster"
	"thunderbolt/internal/contract"
	"thunderbolt/internal/depgraph"
	"thunderbolt/internal/gateway"
	"thunderbolt/internal/node"
	"thunderbolt/internal/storage"
	"thunderbolt/internal/transport"
	"thunderbolt/internal/types"
	"thunderbolt/internal/validate"
	"thunderbolt/internal/workload"
)

// Core data model re-exports.
type (
	// Key identifies a datum in the partitioned store.
	Key = types.Key
	// Value is the payload stored under a Key.
	Value = types.Value
	// ShardID names a shard; there is one shard per replica.
	ShardID = types.ShardID
	// ReplicaID names a replica.
	ReplicaID = types.ReplicaID
	// Digest is a 32-byte content address.
	Digest = types.Digest
	// Transaction is a client-submitted contract invocation.
	Transaction = types.Transaction
	// TxResult is a preplay outcome (read/write sets + schedule slot).
	TxResult = types.TxResult
	// RWRecord is one observed read or write.
	RWRecord = types.RWRecord
)

// Transaction kinds.
const (
	// SingleShard transactions execute under the EOV model (preplay).
	SingleShard = types.SingleShard
	// CrossShard transactions execute under the OE model (order first).
	CrossShard = types.CrossShard
)

// Contract programming surface.
type (
	// State is the accessor contract code uses for all data access.
	State = contract.State
	// Contract is a deployed, callable unit of logic.
	Contract = contract.Contract
	// ContractFunc adapts a Go function to Contract.
	ContractFunc = contract.Func
	// Registry maps contract names to implementations.
	Registry = contract.Registry
)

// NewRegistry returns an empty contract registry.
func NewRegistry() *Registry { return contract.NewRegistry() }

// RegisterSmallBank installs the six SmallBank benchmark contracts.
func RegisterSmallBank(r *Registry) { workload.RegisterSmallBank(r) }

// EncodeInt64 and DecodeInt64 are the canonical integer cell codecs.
var (
	EncodeInt64 = contract.EncodeInt64
	DecodeInt64 = contract.DecodeInt64
)

// StorageBackend is the pluggable state-engine contract every replica
// commits into (versioned reads, atomic batch applies in a total
// order, ordered iteration).
type StorageBackend = storage.Backend

// Store is the versioned in-memory storage backend.
type Store = storage.Store

// NewStore returns an empty in-memory store.
func NewStore() *Store { return storage.New() }

// DurableStore is the disk-backed storage backend: an append-only
// segment WAL with group-commit batching, CRC-framed records with
// torn-tail truncation, and checkpoint/compaction. A replica built on
// one restarts from disk (see README "Storage").
type DurableStore = storage.Durable

// DurableStoreOptions parameterizes OpenDurableStore.
type DurableStoreOptions = storage.DurableOptions

// OpenDurableStore opens (or creates) a durable store's data
// directory, replaying the WAL into memory and truncating any torn
// tail.
func OpenDurableStore(opts DurableStoreOptions) (*DurableStore, error) {
	return storage.OpenDurable(opts)
}

// Execution modes (the paper's three evaluated systems).
type Mode = node.ExecutionMode

const (
	// ModeThunderbolt: CE preplay + parallel validation (the paper's
	// contribution).
	ModeThunderbolt = node.ModeCE
	// ModeThunderboltOCC: OCC preplay + parallel validation.
	ModeThunderboltOCC = node.ModeOCC
	// ModeTusk: serial execution after total ordering (baseline).
	ModeTusk = node.ModeSerial
)

// --- Standalone Concurrent Executor ---

// Executor wraps the Concurrent Executor for single-process use: it
// preplays batches against a store, validates, and applies them.
type Executor struct {
	reg   *Registry
	store *Store
	ce    *ce.CE
	// Validators sizes the parallel validation pool.
	validators int
}

// ExecutorConfig parameterizes NewExecutor.
type ExecutorConfig struct {
	// Executors is the worker-pool size (default 8).
	Executors int
	// Validators sizes parallel validation (default = Executors).
	Validators int
	// Registry resolves contracts (required).
	Registry *Registry
	// Store holds state (required).
	Store *Store
}

// NewExecutor builds a standalone Concurrent Executor.
func NewExecutor(cfg ExecutorConfig) *Executor {
	if cfg.Executors <= 0 {
		cfg.Executors = 8
	}
	if cfg.Validators <= 0 {
		cfg.Validators = cfg.Executors
	}
	return &Executor{
		reg:   cfg.Registry,
		store: cfg.Store,
		ce: ce.New(ce.Config{
			Executors: cfg.Executors,
			Registry:  cfg.Registry,
		}),
		validators: cfg.Validators,
	}
}

// BatchResult is the outcome of one ExecuteBatch call.
type BatchResult struct {
	// Schedule lists committed transactions in serialization order;
	// Results aligns index-for-index.
	Schedule []*Transaction
	Results  []TxResult
	// Reexecutions counts aborted attempts across the batch.
	Reexecutions uint64
}

// ExecuteBatch preplays txs concurrently (discovering read/write sets
// at runtime), validates the emitted schedule in parallel exactly as
// remote replicas would, and applies the state delta. It returns the
// serialized schedule and per-transaction results.
func (e *Executor) ExecuteBatch(txs []*Transaction) (*BatchResult, error) {
	base := func(k Key) Value {
		v, _ := e.store.Get(k)
		return v
	}
	res := e.ce.ExecuteBatch(depgraph.BaseReader(base), txs)
	out, err := validate.ValidateBatch(e.reg, validate.BaseReader(base), res.Schedule, res.Results, e.validators)
	if err != nil {
		return nil, err
	}
	e.store.Apply(out.Writes)
	return &BatchResult{
		Schedule:     res.Schedule,
		Results:      res.Results,
		Reexecutions: res.Reexecutions,
	}, nil
}

// --- Cluster testbed ---

type (
	// ClusterConfig assembles a local committee.
	ClusterConfig = cluster.Config
	// Cluster is a running local committee.
	Cluster = cluster.Cluster
	// LoadConfig parameterizes Cluster.RunLoad.
	LoadConfig = cluster.LoadConfig
	// Report summarizes one load run.
	Report = cluster.Report
	// NodeStats is a per-replica counter snapshot.
	NodeStats = node.Stats
)

// NewCluster assembles (but does not start) a local committee with
// SmallBank registered and seeded on every replica.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// Network latency models for ClusterConfig.Latency.
var (
	// LANModel approximates a same-datacenter network (~0.2ms).
	LANModel = transport.LANModel
	// WANModel approximates a geo-distributed network (~40ms).
	WANModel = transport.WANModel
)

// --- Client gateway ---

type (
	// GatewayClient is the remote-client library: sessioned
	// submission with acks, nack-driven re-routing, failover across
	// proposers, and commit-waiting (see README "Client API").
	GatewayClient = gateway.Client
	// GatewayClientConfig assembles a GatewayClient.
	GatewayClientConfig = gateway.ClientConfig
	// GatewayResult reports how a submission resolved.
	GatewayResult = gateway.Result
	// TCPTransport speaks the wire framing over real sockets; a
	// gateway client over TCP uses one with a non-committee Self ID.
	TCPTransport = transport.TCPTransport
	// TCPConfig configures a TCPTransport.
	TCPConfig = transport.TCPConfig
)

// GatewayClientIDBase is the conventional first wire ID for gateway
// clients over TCP (committee replicas occupy [0, n)).
const GatewayClientIDBase = gateway.ClientIDBase

// NewGatewayClient builds a gateway client over a transport endpoint.
func NewGatewayClient(cfg GatewayClientConfig) (*GatewayClient, error) {
	return gateway.NewClient(cfg)
}

// NewTCPTransport starts a TCP endpoint (listening immediately).
func NewTCPTransport(cfg TCPConfig) (*TCPTransport, error) {
	return transport.NewTCPTransport(cfg)
}

// --- Workload ---

type (
	// WorkloadConfig parameterizes the SmallBank generator.
	WorkloadConfig = workload.Config
	// Generator produces SmallBank transactions.
	Generator = workload.Generator
)

// NewGenerator builds a SmallBank transaction generator.
func NewGenerator(cfg WorkloadConfig) *Generator { return workload.NewGenerator(cfg) }

// InitAccounts seeds n SmallBank accounts into a store.
func InitAccounts(st StorageBackend, n int, checking, savings int64) {
	workload.InitAccounts(st, n, checking, savings)
}

// TotalBalance sums all SmallBank balances (conservation checks).
func TotalBalance(st StorageBackend, n int) (int64, error) { return workload.TotalBalance(st, n) }
