module thunderbolt

go 1.22
