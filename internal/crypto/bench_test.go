package crypto

import (
	"fmt"
	"testing"

	"thunderbolt/internal/types"
)

// benchCert builds a quorum certificate over one digest for a
// committee of n, returning the certificate and its verifier.
func benchCert(b *testing.B, scheme Scheme, n int) (*types.Certificate, Verifier) {
	b.Helper()
	signers, ver, err := scheme.Committee(n, 7)
	if err != nil {
		b.Fatal(err)
	}
	d := types.HashBytes([]byte("bench-block"))
	cert := &types.Certificate{BlockDigest: d, Epoch: 1, Round: 9, Proposer: 0}
	for i := 0; i < QuorumSize(n); i++ {
		cert.Sigs = append(cert.Sigs, types.Signature{
			Signer: types.ReplicaID(i), Sig: signers[i].Sign(d),
		})
	}
	return cert, ver
}

// BenchmarkVerifyCertificateAfterVotes measures the proposer path: a
// node that already verified each signature as an incoming vote
// re-validates the certificate it assembled. With the caching
// verifier this is pure memo lookups.
func BenchmarkVerifyCertificateAfterVotes(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("ed25519/n=%d", n), func(b *testing.B) {
			cert, ver := benchCert(b, Ed25519Scheme{}, n)
			cv := NewCachingVerifier(ver, 0)
			for _, s := range cert.Sigs {
				if !cv.Verify(s.Signer, cert.BlockDigest, s.Sig) {
					b.Fatal("vote failed verification")
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := VerifyCertificate(cert, n, cv); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVerifyCertificate measures full certificate validation —
// the per-certificate receive cost on every replica — across schemes
// and committee sizes.
func BenchmarkVerifyCertificate(b *testing.B) {
	for _, tc := range []struct {
		scheme Scheme
		n      int
	}{
		{Ed25519Scheme{}, 4},
		{Ed25519Scheme{}, 16},
		{Ed25519Scheme{}, 64},
		{InsecureScheme{}, 16},
	} {
		b.Run(fmt.Sprintf("%s/n=%d", tc.scheme.Name(), tc.n), func(b *testing.B) {
			cert, ver := benchCert(b, tc.scheme, tc.n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := VerifyCertificate(cert, tc.n, ver); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
