package crypto

import (
	"testing"

	"thunderbolt/internal/types"
)

func schemes() []Scheme { return []Scheme{Ed25519Scheme{}, InsecureScheme{}} }

func TestSignVerifyRoundTrip(t *testing.T) {
	for _, s := range schemes() {
		t.Run(s.Name(), func(t *testing.T) {
			signers, verifier, err := s.Committee(4, 1)
			if err != nil {
				t.Fatal(err)
			}
			d := types.HashBytes([]byte("block"))
			for _, sg := range signers {
				sig := sg.Sign(d)
				if !verifier.Verify(sg.ID(), d, sig) {
					t.Fatalf("replica %d: valid signature rejected", sg.ID())
				}
				// Wrong digest must fail.
				if verifier.Verify(sg.ID(), types.HashBytes([]byte("other")), sig) {
					t.Fatal("signature accepted for wrong digest")
				}
				// Wrong signer must fail.
				other := (sg.ID() + 1) % 4
				if verifier.Verify(other, d, sig) {
					t.Fatal("signature accepted for wrong signer")
				}
			}
		})
	}
}

func TestCommitteeDeterministicBySeed(t *testing.T) {
	for _, s := range schemes() {
		t.Run(s.Name(), func(t *testing.T) {
			s1, _, _ := s.Committee(4, 42)
			s2, _, _ := s.Committee(4, 42)
			d := types.HashBytes([]byte("x"))
			if string(s1[2].Sign(d)) != string(s2[2].Sign(d)) {
				t.Fatal("same seed produced different keys")
			}
			s3, _, _ := s.Committee(4, 43)
			if string(s1[2].Sign(d)) == string(s3[2].Sign(d)) {
				t.Fatal("different seeds produced identical keys")
			}
		})
	}
}

func TestCommitteeRejectsNonPositive(t *testing.T) {
	for _, s := range schemes() {
		if _, _, err := s.Committee(0, 1); err == nil {
			t.Fatalf("%s: expected error for n=0", s.Name())
		}
	}
}

func TestQuorumSize(t *testing.T) {
	cases := []struct{ n, q, f int }{
		{4, 3, 1}, {7, 5, 2}, {10, 7, 3}, {16, 11, 5}, {64, 43, 21}, {1, 1, 0},
	}
	for _, c := range cases {
		if QuorumSize(c.n) != c.q {
			t.Errorf("QuorumSize(%d)=%d want %d", c.n, QuorumSize(c.n), c.q)
		}
		if FaultBound(c.n) != c.f {
			t.Errorf("FaultBound(%d)=%d want %d", c.n, FaultBound(c.n), c.f)
		}
	}
}

func TestQuorumCollectorEmitsOnce(t *testing.T) {
	signers, verifier, _ := InsecureScheme{}.Committee(4, 1)
	d := types.HashBytes([]byte("blk"))
	q := NewQuorumCollector(4, verifier, d, 1, 2, 3)

	if c, err := q.Add(0, signers[0].Sign(d)); err != nil || c != nil {
		t.Fatalf("vote 1: cert=%v err=%v", c, err)
	}
	// Duplicate is ignored.
	if c, err := q.Add(0, signers[0].Sign(d)); err != nil || c != nil {
		t.Fatalf("duplicate vote: cert=%v err=%v", c, err)
	}
	if q.Count() != 1 {
		t.Fatalf("count=%d want 1", q.Count())
	}
	if c, _ := q.Add(1, signers[1].Sign(d)); c != nil {
		t.Fatal("cert emitted below quorum")
	}
	cert, err := q.Add(2, signers[2].Sign(d))
	if err != nil || cert == nil {
		t.Fatalf("quorum vote: cert=%v err=%v", cert, err)
	}
	if cert.Round != 2 || cert.Proposer != 3 || cert.Epoch != 1 {
		t.Fatalf("certificate fields wrong: %+v", cert)
	}
	if len(cert.Sigs) != 3 {
		t.Fatalf("certificate carries %d sigs, want 3", len(cert.Sigs))
	}
	// A fourth vote after emission must not emit again.
	if c, _ := q.Add(3, signers[3].Sign(d)); c != nil {
		t.Fatal("certificate emitted twice")
	}
	if err := VerifyCertificate(cert, 4, verifier); err != nil {
		t.Fatalf("emitted certificate does not verify: %v", err)
	}
}

func TestQuorumCollectorRejectsBadVotes(t *testing.T) {
	signers, verifier, _ := Ed25519Scheme{}.Committee(4, 1)
	d := types.HashBytes([]byte("blk"))
	q := NewQuorumCollector(4, verifier, d, 0, 1, 0)
	if _, err := q.Add(1, []byte("garbage")); err != ErrBadSignature {
		t.Fatalf("want ErrBadSignature, got %v", err)
	}
	// Signature by the wrong replica.
	if _, err := q.Add(1, signers[2].Sign(d)); err != ErrBadSignature {
		t.Fatalf("want ErrBadSignature for mismatched signer, got %v", err)
	}
	if _, err := q.Add(9, signers[0].Sign(d)); err == nil {
		t.Fatal("out-of-committee vote accepted")
	}
	if q.Count() != 0 {
		t.Fatalf("bad votes counted: %d", q.Count())
	}
}

func TestVerifyCertificateRejectsForgery(t *testing.T) {
	signers, verifier, _ := InsecureScheme{}.Committee(4, 1)
	d := types.HashBytes([]byte("blk"))
	cert := &types.Certificate{BlockDigest: d, Round: 1}
	// Too few signatures.
	cert.Sigs = []types.Signature{{Signer: 0, Sig: signers[0].Sign(d)}}
	if err := VerifyCertificate(cert, 4, verifier); err == nil {
		t.Fatal("undersized certificate accepted")
	}
	// Duplicated signer must not count twice.
	cert.Sigs = []types.Signature{
		{Signer: 0, Sig: signers[0].Sign(d)},
		{Signer: 0, Sig: signers[0].Sign(d)},
		{Signer: 1, Sig: signers[1].Sign(d)},
	}
	if err := VerifyCertificate(cert, 4, verifier); err == nil {
		t.Fatal("certificate with duplicate signer accepted")
	}
	// Invalid signature must not count.
	cert.Sigs = []types.Signature{
		{Signer: 0, Sig: signers[0].Sign(d)},
		{Signer: 1, Sig: []byte("bad")},
		{Signer: 2, Sig: signers[2].Sign(d)},
	}
	if err := VerifyCertificate(cert, 4, verifier); err == nil {
		t.Fatal("certificate with invalid signature accepted")
	}
}

func TestSchemeByName(t *testing.T) {
	if s, err := SchemeByName(""); err != nil || s.Name() != "ed25519" {
		t.Fatal("default scheme should be ed25519")
	}
	if s, err := SchemeByName("insecure"); err != nil || s.Name() != "insecure" {
		t.Fatal("insecure scheme not resolved")
	}
	if _, err := SchemeByName("rsa"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestVerifyBatchMatchesSequentialVerify(t *testing.T) {
	for _, scheme := range []Scheme{Ed25519Scheme{}, InsecureScheme{}} {
		signers, verifier, err := scheme.Committee(8, 3)
		if err != nil {
			t.Fatal(err)
		}
		bv, ok := verifier.(BatchVerifier)
		if !ok {
			if scheme.Name() == "insecure" {
				continue // uses verifyBatch's sequential fallback by design
			}
			t.Fatalf("%s verifier does not implement BatchVerifier", scheme.Name())
		}
		d := types.HashBytes([]byte("batch-block"))
		ids := []types.ReplicaID{0, 3, 5, 6, 7, 200}
		sigs := [][]byte{
			signers[0].Sign(d),
			signers[3].Sign(d),
			[]byte("garbage"),
			signers[7].Sign(d), // wrong signer for slot 6
			signers[7].Sign(d),
			signers[1].Sign(d), // out-of-committee replica id
		}
		got := bv.VerifyBatch(ids, d, sigs)
		for i := range ids {
			want := verifier.Verify(ids[i], d, sigs[i])
			if got[i] != want {
				t.Fatalf("%s: batch verdict %d = %v, sequential = %v", scheme.Name(), i, got[i], want)
			}
		}
		want := []bool{true, true, false, false, true, false}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: verdicts %v, want %v", scheme.Name(), got, want)
			}
		}
	}
}

func TestCachingVerifierNeverAdmitsForgery(t *testing.T) {
	signers, verifier, _ := Ed25519Scheme{}.Committee(4, 5)
	cv := NewCachingVerifier(verifier, 4)
	d := types.HashBytes([]byte("blk"))
	good := signers[1].Sign(d)
	if !cv.Verify(1, d, good) || !cv.Verify(1, d, good) {
		t.Fatal("valid signature rejected")
	}
	// Same signer and digest, different bytes: the memo must miss.
	forged := append([]byte(nil), good...)
	forged[0] ^= 0xff
	if cv.Verify(1, d, forged) {
		t.Fatal("forged signature admitted")
	}
	// Same bytes, different digest: the memo must miss.
	d2 := types.HashBytes([]byte("blk2"))
	if cv.Verify(1, d2, good) {
		t.Fatal("signature admitted for wrong digest")
	}
	// Batch path mixes hits and misses.
	got := cv.VerifyBatch(
		[]types.ReplicaID{1, 2, 1},
		d,
		[][]byte{good, signers[2].Sign(d), forged},
	)
	want := []bool{true, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch verdicts %v, want %v", got, want)
		}
	}
}

func TestCachingVerifierEvictsAtCapacity(t *testing.T) {
	signers, verifier, _ := InsecureScheme{}.Committee(4, 9)
	cv := NewCachingVerifier(verifier, 2)
	for i := 0; i < 10; i++ {
		d := types.HashBytes([]byte{byte(i)})
		if !cv.Verify(0, d, signers[0].Sign(d)) {
			t.Fatalf("signature %d rejected", i)
		}
	}
	if len(cv.seen) > 2 || len(cv.order) > 2 {
		t.Fatalf("memo exceeded capacity: %d entries, %d queued", len(cv.seen), len(cv.order))
	}
	// Evicted entries still verify (through the inner verifier).
	d0 := types.HashBytes([]byte{0})
	if !cv.Verify(0, d0, signers[0].Sign(d0)) {
		t.Fatal("evicted signature no longer verifies")
	}
}
