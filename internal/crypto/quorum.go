package crypto

import (
	"errors"
	"fmt"
	"sync"

	"thunderbolt/internal/types"
)

// QuorumSize returns 2f+1 for a committee of n = 3f+1 replicas. For n
// not of the form 3f+1 it returns the smallest count guaranteeing
// intersection in an honest majority: n - f where f = (n-1)/3.
func QuorumSize(n int) int {
	f := (n - 1) / 3
	return n - f
}

// FaultBound returns f, the maximum number of Byzantine replicas a
// committee of n tolerates.
func FaultBound(n int) int { return (n - 1) / 3 }

// QuorumCollector accumulates signatures over one block digest until a
// 2f+1 quorum forms, then emits a certificate. It is not safe for
// concurrent use; the DAG core serializes access.
type QuorumCollector struct {
	n        int
	block    types.Digest
	epoch    types.Epoch
	round    types.Round
	proposer types.ReplicaID
	verifier Verifier
	sigs     map[types.ReplicaID][]byte
	done     bool
}

// NewQuorumCollector starts collecting signatures for the block with
// the given identity fields in a committee of n replicas.
func NewQuorumCollector(n int, v Verifier, block types.Digest, epoch types.Epoch, round types.Round, proposer types.ReplicaID) *QuorumCollector {
	return &QuorumCollector{
		n: n, block: block, epoch: epoch, round: round, proposer: proposer,
		verifier: v, sigs: make(map[types.ReplicaID][]byte, QuorumSize(n)),
	}
}

// ErrBadSignature reports a vote that failed verification.
var ErrBadSignature = errors.New("crypto: signature verification failed")

// Add records replica r's signature. It returns a certificate exactly
// once: on the call that completes the quorum. Duplicate votes are
// ignored; invalid votes return ErrBadSignature.
func (q *QuorumCollector) Add(r types.ReplicaID, sig []byte) (*types.Certificate, error) {
	if int(r) >= q.n {
		return nil, fmt.Errorf("crypto: vote from out-of-committee replica %d", r)
	}
	if _, dup := q.sigs[r]; dup {
		return nil, nil
	}
	if !q.verifier.Verify(r, q.block, sig) {
		return nil, ErrBadSignature
	}
	// The signature is retained as handed in: every caller passes an
	// owned slice (a fresh local signature, or bytes of a delivered
	// message buffer the transport hands over), so no defensive copy.
	q.sigs[r] = sig
	if q.done || len(q.sigs) < QuorumSize(q.n) {
		return nil, nil
	}
	q.done = true
	cert := &types.Certificate{
		BlockDigest: q.block, Epoch: q.epoch, Round: q.round, Proposer: q.proposer,
		Sigs: make([]types.Signature, 0, len(q.sigs)),
	}
	// Deterministic signer order keeps certificates comparable in tests.
	for id := types.ReplicaID(0); int(id) < q.n; id++ {
		if s, ok := q.sigs[id]; ok {
			cert.Sigs = append(cert.Sigs, types.Signature{Signer: id, Sig: s})
		}
	}
	return cert, nil
}

// Count returns the number of valid votes collected so far.
func (q *QuorumCollector) Count() int { return len(q.sigs) }

// VerifyCertificate checks that cert carries 2f+1 valid signatures
// from distinct committee members over its block digest. Signatures
// are checked through the verifier's batch path when it offers one
// (BatchVerifier), which is where the ed25519 scheme parallelizes the
// per-vertex quorum check.
func VerifyCertificate(cert *types.Certificate, n int, v Verifier) error {
	if len(cert.Sigs) < QuorumSize(n) {
		return fmt.Errorf("crypto: certificate has %d signatures, need %d", len(cert.Sigs), QuorumSize(n))
	}
	// Dedup and flatten out of a pooled scratch: this runs once per
	// received certificate — the hottest verification call site — and
	// verifiers read the slices synchronously without retaining them.
	sc := certScratchPool.Get().(*certScratch)
	if sc.seen == nil {
		sc.seen = make(map[types.ReplicaID]bool, len(cert.Sigs))
	}
	signers, sigs := sc.signers[:0], sc.sigs[:0]
	for _, s := range cert.Sigs {
		if int(s.Signer) >= n || sc.seen[s.Signer] {
			continue
		}
		sc.seen[s.Signer] = true
		signers = append(signers, s.Signer)
		sigs = append(sigs, s.Sig)
	}
	valid := 0
	for _, ok := range verifyBatch(v, signers, cert.BlockDigest, sigs) {
		if ok {
			valid++
		}
	}
	clear(sc.seen)
	sc.signers = signers
	clear(sigs) // drop signature references before pooling
	sc.sigs = sigs
	certScratchPool.Put(sc)
	if valid < QuorumSize(n) {
		return fmt.Errorf("crypto: certificate has %d valid signatures, need %d", valid, QuorumSize(n))
	}
	return nil
}

// certScratch recycles VerifyCertificate's dedup/flatten buffers.
type certScratch struct {
	seen    map[types.ReplicaID]bool
	signers []types.ReplicaID
	sigs    [][]byte
}

var certScratchPool = sync.Pool{New: func() any { return new(certScratch) }}
