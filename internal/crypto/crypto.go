// Package crypto provides the signing primitives Thunderbolt's DAG
// layer uses to certify vertices: per-replica signers, verifiers, and
// quorum certificates over block digests.
//
// Two schemes are provided behind one interface. Ed25519Scheme uses
// stdlib crypto/ed25519 and is the default for real deployments.
// InsecureScheme replaces signatures with keyed digests; it preserves
// message sizes and protocol structure while removing asymmetric-crypto
// cost, which is what large-scale simulations (64+ replicas in one
// process) need. The paper's evaluation reports relative speedups, so
// the choice of scheme does not change any figure's shape.
package crypto

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"thunderbolt/internal/types"
)

// Signer produces signatures on behalf of one replica.
type Signer interface {
	// Sign signs the digest d.
	Sign(d types.Digest) []byte
	// ID returns the replica this signer belongs to.
	ID() types.ReplicaID
}

// Verifier checks signatures from any replica in the committee.
type Verifier interface {
	// Verify reports whether sig is a valid signature on d by replica r.
	Verify(r types.ReplicaID, d types.Digest, sig []byte) bool
}

// BatchVerifier is an optional Verifier extension for the
// certificate-validation hot path: verify a whole signature set over
// one digest in a single call. Implementations may amortize — the
// ed25519 scheme fans the batch out across cores — but must return
// exactly the same per-signature verdicts as repeated Verify calls.
type BatchVerifier interface {
	// VerifyBatch reports, for each i, whether sigs[i] is a valid
	// signature on d by signers[i]. The two slices must have equal
	// length.
	VerifyBatch(signers []types.ReplicaID, d types.Digest, sigs [][]byte) []bool
}

// verifyBatch dispatches to the batch path when v supports it, else
// falls back to sequential Verify calls.
func verifyBatch(v Verifier, signers []types.ReplicaID, d types.Digest, sigs [][]byte) []bool {
	if bv, ok := v.(BatchVerifier); ok {
		return bv.VerifyBatch(signers, d, sigs)
	}
	out := make([]bool, len(signers))
	for i, r := range signers {
		out[i] = v.Verify(r, d, sigs[i])
	}
	return out
}

// Scheme bundles key generation for a whole committee.
type Scheme interface {
	// Committee creates signers for n replicas plus a verifier that
	// recognizes all of them. The seed makes key generation
	// reproducible across processes (required so that independently
	// started replicas of a local testbed agree on public keys without
	// a key-exchange phase).
	Committee(n int, seed int64) ([]Signer, Verifier, error)
	// Name identifies the scheme for logs and configs.
	Name() string
}

// --- Ed25519 ---

// Ed25519Scheme signs with stdlib ed25519 keys derived from the seed.
type Ed25519Scheme struct{}

// Name implements Scheme.
func (Ed25519Scheme) Name() string { return "ed25519" }

// Committee implements Scheme.
func (Ed25519Scheme) Committee(n int, seed int64) ([]Signer, Verifier, error) {
	if n <= 0 {
		return nil, nil, errors.New("crypto: committee size must be positive")
	}
	signers := make([]Signer, n)
	pubs := make([]ed25519.PublicKey, n)
	for i := 0; i < n; i++ {
		var kseed [ed25519.SeedSize]byte
		binary.BigEndian.PutUint64(kseed[:8], uint64(seed))
		binary.BigEndian.PutUint32(kseed[8:12], uint32(i))
		h := sha256.Sum256(kseed[:])
		priv := ed25519.NewKeyFromSeed(h[:])
		signers[i] = &edSigner{id: types.ReplicaID(i), priv: priv}
		pubs[i] = priv.Public().(ed25519.PublicKey)
	}
	return signers, &edVerifier{pubs: pubs}, nil
}

type edSigner struct {
	id   types.ReplicaID
	priv ed25519.PrivateKey
}

func (s *edSigner) Sign(d types.Digest) []byte { return ed25519.Sign(s.priv, d[:]) }
func (s *edSigner) ID() types.ReplicaID        { return s.id }

type edVerifier struct {
	pubs []ed25519.PublicKey
}

func (v *edVerifier) Verify(r types.ReplicaID, d types.Digest, sig []byte) bool {
	if int(r) >= len(v.pubs) {
		return false
	}
	return ed25519.Verify(v.pubs[r], d[:], sig)
}

// batchParallelMin is the batch size at which fanning verification
// out across cores beats running it inline: each ed25519 verify costs
// tens of microseconds, dwarfing goroutine startup.
const batchParallelMin = 3

// VerifyBatch implements BatchVerifier. Certificate validation is the
// dominant asymmetric-crypto cost on every replica (2f+1 signatures
// per vertex); the batch is split across up to GOMAXPROCS workers.
func (v *edVerifier) VerifyBatch(signers []types.ReplicaID, d types.Digest, sigs [][]byte) []bool {
	out := make([]bool, len(signers))
	workers := runtime.GOMAXPROCS(0)
	if len(signers) < batchParallelMin || workers < 2 {
		for i, r := range signers {
			out[i] = v.Verify(r, d, sigs[i])
		}
		return out
	}
	if workers > len(signers) {
		workers = len(signers)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(signers) {
					return
				}
				out[i] = v.Verify(signers[i], d, sigs[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// --- Insecure (simulation) ---

// InsecureScheme produces HMAC-SHA256 tags under per-replica keys that
// every party knows. It provides no security against a real adversary
// but exercises the same code paths (signature bytes on the wire,
// verification on receipt, quorum assembly) at a fraction of the cost.
type InsecureScheme struct{}

// Name implements Scheme.
func (InsecureScheme) Name() string { return "insecure" }

// Committee implements Scheme.
func (InsecureScheme) Committee(n int, seed int64) ([]Signer, Verifier, error) {
	if n <= 0 {
		return nil, nil, errors.New("crypto: committee size must be positive")
	}
	pads := make([]macPads, n)
	signers := make([]Signer, n)
	for i := 0; i < n; i++ {
		k := sha256.Sum256([]byte(fmt.Sprintf("insecure-key-%d-%d", seed, i)))
		pads[i] = newMACPads(k[:])
		signers[i] = &macSigner{id: types.ReplicaID(i), pads: pads[i]}
	}
	return signers, &macVerifier{pads: pads}, nil
}

// macPads holds a key's precomputed HMAC-SHA256 pad blocks with room
// for a 32-byte message appended, so one tag is two sha256.Sum256
// calls over stack-resident buffers — zero heap traffic. Going
// through crypto/hmac's hash.Hash interface instead costs an
// allocation per call on the vote/certificate hot path.
type macPads struct {
	inner [sha256.BlockSize + sha256.Size]byte // key ^ ipad || digest
	outer [sha256.BlockSize + sha256.Size]byte // key ^ opad || inner tag
}

func newMACPads(key []byte) macPads {
	if len(key) > sha256.BlockSize {
		k := sha256.Sum256(key)
		key = k[:]
	}
	var p macPads
	copy(p.inner[:], key)
	copy(p.outer[:], key)
	for i := 0; i < sha256.BlockSize; i++ {
		p.inner[i] ^= 0x36
		p.outer[i] ^= 0x5c
	}
	return p
}

// tag computes HMAC-SHA256(key, d) — bit-identical to crypto/hmac —
// into a stack array.
func (p *macPads) tag(d types.Digest) [sha256.Size]byte {
	in := p.inner
	copy(in[sha256.BlockSize:], d[:])
	t := sha256.Sum256(in[:])
	out := p.outer
	copy(out[sha256.BlockSize:], t[:])
	return sha256.Sum256(out[:])
}

type macSigner struct {
	id   types.ReplicaID
	pads macPads
}

// Sign allocates only the escaping 32-byte tag; signing happens once
// per vote — the consensus hot path.
func (s *macSigner) Sign(d types.Digest) []byte {
	t := s.pads.tag(d)
	sig := make([]byte, sha256.Size)
	copy(sig, t[:])
	return sig
}
func (s *macSigner) ID() types.ReplicaID { return s.id }

type macVerifier struct {
	pads []macPads // per-replica precomputed pad blocks
}

func (v *macVerifier) Verify(r types.ReplicaID, d types.Digest, sig []byte) bool {
	if int(r) >= len(v.pads) {
		return false
	}
	t := v.pads[r].tag(d)
	return hmac.Equal(t[:], sig)
}

// macVerifier deliberately does not implement BatchVerifier: HMAC
// tags are microseconds each, so verifyBatch's sequential fallback is
// already the right batch path; the scheme's size-faithfulness lives
// in Sign/Verify.

// --- verified-signature memo ---

// sigKey identifies one (signer, message, signature) triple; the
// signature bytes enter hashed so keys stay fixed-size.
type sigKey struct {
	signer types.ReplicaID
	digest types.Digest
	sig    types.Digest
}

// CachingVerifier wraps a Verifier with a bounded FIFO memo of
// successfully verified signatures. The DAG layer verifies the same
// signature twice per own block: once as an incoming vote
// (QuorumCollector) and again when validating the certificate it just
// assembled from those votes. The memo collapses the second pass to
// map lookups, halving a proposer's per-round asymmetric-crypto cost.
// Only successes are cached, so a forged signature is never admitted
// by a stale entry. Safe for concurrent use.
type CachingVerifier struct {
	inner Verifier
	cap   int

	mu    sync.Mutex
	seen  map[sigKey]struct{}
	order []sigKey // FIFO eviction queue
	next  int      // ring cursor once order reaches cap
}

// NewCachingVerifier wraps inner with a memo of at most capEntries
// verified signatures (default 8192 — several hundred rounds of
// quorum signatures for common committee sizes).
func NewCachingVerifier(inner Verifier, capEntries int) *CachingVerifier {
	if capEntries <= 0 {
		capEntries = 8192
	}
	return &CachingVerifier{
		inner: inner,
		cap:   capEntries,
		seen:  make(map[sigKey]struct{}, capEntries),
	}
}

func (c *CachingVerifier) key(r types.ReplicaID, d types.Digest, sig []byte) sigKey {
	return sigKey{signer: r, digest: d, sig: types.HashBytes(sig)}
}

func (c *CachingVerifier) hit(k sigKey) bool {
	c.mu.Lock()
	_, ok := c.seen[k]
	c.mu.Unlock()
	return ok
}

func (c *CachingVerifier) remember(k sigKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.seen[k]; dup {
		return
	}
	if len(c.order) < c.cap {
		c.order = append(c.order, k)
	} else {
		delete(c.seen, c.order[c.next])
		c.order[c.next] = k
		c.next = (c.next + 1) % c.cap
	}
	c.seen[k] = struct{}{}
}

// Verify implements Verifier.
func (c *CachingVerifier) Verify(r types.ReplicaID, d types.Digest, sig []byte) bool {
	k := c.key(r, d, sig)
	if c.hit(k) {
		return true
	}
	if !c.inner.Verify(r, d, sig) {
		return false
	}
	c.remember(k)
	return true
}

// VerifyBatch implements BatchVerifier: cached entries are answered
// from the memo and only the remainder goes to the inner verifier's
// batch path.
func (c *CachingVerifier) VerifyBatch(signers []types.ReplicaID, d types.Digest, sigs [][]byte) []bool {
	out := make([]bool, len(signers))
	// Miss bookkeeping runs out of a pooled scratch: certificates from
	// other proposers are all-miss (only a proposer's own votes are in
	// the memo), so this path runs for most certificates a replica
	// receives and the result slice must be its only allocation.
	sc := batchScratchPool.Get().(*batchScratch)
	missIdx, missKeys := sc.idx[:0], sc.keys[:0]
	for i := range signers {
		k := c.key(signers[i], d, sigs[i])
		if c.hit(k) {
			out[i] = true
		} else {
			missIdx = append(missIdx, i)
			missKeys = append(missKeys, k)
		}
	}
	if len(missIdx) == 0 {
		sc.idx, sc.keys = missIdx, missKeys
		batchScratchPool.Put(sc)
		return out
	}
	ms, mg := sc.signers[:0], sc.sigs[:0]
	for _, i := range missIdx {
		ms = append(ms, signers[i])
		mg = append(mg, sigs[i])
	}
	for j, ok := range verifyBatch(c.inner, ms, d, mg) {
		if ok {
			out[missIdx[j]] = true
			c.remember(missKeys[j])
		}
	}
	sc.idx, sc.keys, sc.signers = missIdx, missKeys, ms
	clear(mg) // drop signature references before pooling
	sc.sigs = mg
	batchScratchPool.Put(sc)
	return out
}

// batchScratch recycles VerifyBatch's miss-tracking slices; the inner
// verifier reads them synchronously and never retains them.
type batchScratch struct {
	idx     []int
	keys    []sigKey
	signers []types.ReplicaID
	sigs    [][]byte
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// SchemeByName resolves a scheme from its configuration name.
func SchemeByName(name string) (Scheme, error) {
	switch name {
	case "", "ed25519":
		return Ed25519Scheme{}, nil
	case "insecure":
		return InsecureScheme{}, nil
	default:
		return nil, fmt.Errorf("crypto: unknown scheme %q", name)
	}
}
