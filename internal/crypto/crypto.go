// Package crypto provides the signing primitives Thunderbolt's DAG
// layer uses to certify vertices: per-replica signers, verifiers, and
// quorum certificates over block digests.
//
// Two schemes are provided behind one interface. Ed25519Scheme uses
// stdlib crypto/ed25519 and is the default for real deployments.
// InsecureScheme replaces signatures with keyed digests; it preserves
// message sizes and protocol structure while removing asymmetric-crypto
// cost, which is what large-scale simulations (64+ replicas in one
// process) need. The paper's evaluation reports relative speedups, so
// the choice of scheme does not change any figure's shape.
package crypto

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"thunderbolt/internal/types"
)

// Signer produces signatures on behalf of one replica.
type Signer interface {
	// Sign signs the digest d.
	Sign(d types.Digest) []byte
	// ID returns the replica this signer belongs to.
	ID() types.ReplicaID
}

// Verifier checks signatures from any replica in the committee.
type Verifier interface {
	// Verify reports whether sig is a valid signature on d by replica r.
	Verify(r types.ReplicaID, d types.Digest, sig []byte) bool
}

// Scheme bundles key generation for a whole committee.
type Scheme interface {
	// Committee creates signers for n replicas plus a verifier that
	// recognizes all of them. The seed makes key generation
	// reproducible across processes (required so that independently
	// started replicas of a local testbed agree on public keys without
	// a key-exchange phase).
	Committee(n int, seed int64) ([]Signer, Verifier, error)
	// Name identifies the scheme for logs and configs.
	Name() string
}

// --- Ed25519 ---

// Ed25519Scheme signs with stdlib ed25519 keys derived from the seed.
type Ed25519Scheme struct{}

// Name implements Scheme.
func (Ed25519Scheme) Name() string { return "ed25519" }

// Committee implements Scheme.
func (Ed25519Scheme) Committee(n int, seed int64) ([]Signer, Verifier, error) {
	if n <= 0 {
		return nil, nil, errors.New("crypto: committee size must be positive")
	}
	signers := make([]Signer, n)
	pubs := make([]ed25519.PublicKey, n)
	for i := 0; i < n; i++ {
		var kseed [ed25519.SeedSize]byte
		binary.BigEndian.PutUint64(kseed[:8], uint64(seed))
		binary.BigEndian.PutUint32(kseed[8:12], uint32(i))
		h := sha256.Sum256(kseed[:])
		priv := ed25519.NewKeyFromSeed(h[:])
		signers[i] = &edSigner{id: types.ReplicaID(i), priv: priv}
		pubs[i] = priv.Public().(ed25519.PublicKey)
	}
	return signers, &edVerifier{pubs: pubs}, nil
}

type edSigner struct {
	id   types.ReplicaID
	priv ed25519.PrivateKey
}

func (s *edSigner) Sign(d types.Digest) []byte { return ed25519.Sign(s.priv, d[:]) }
func (s *edSigner) ID() types.ReplicaID        { return s.id }

type edVerifier struct {
	pubs []ed25519.PublicKey
}

func (v *edVerifier) Verify(r types.ReplicaID, d types.Digest, sig []byte) bool {
	if int(r) >= len(v.pubs) {
		return false
	}
	return ed25519.Verify(v.pubs[r], d[:], sig)
}

// --- Insecure (simulation) ---

// InsecureScheme produces HMAC-SHA256 tags under per-replica keys that
// every party knows. It provides no security against a real adversary
// but exercises the same code paths (signature bytes on the wire,
// verification on receipt, quorum assembly) at a fraction of the cost.
type InsecureScheme struct{}

// Name implements Scheme.
func (InsecureScheme) Name() string { return "insecure" }

// Committee implements Scheme.
func (InsecureScheme) Committee(n int, seed int64) ([]Signer, Verifier, error) {
	if n <= 0 {
		return nil, nil, errors.New("crypto: committee size must be positive")
	}
	keys := make([][]byte, n)
	signers := make([]Signer, n)
	for i := 0; i < n; i++ {
		k := sha256.Sum256([]byte(fmt.Sprintf("insecure-key-%d-%d", seed, i)))
		keys[i] = k[:]
		signers[i] = &macSigner{id: types.ReplicaID(i), key: k[:]}
	}
	return signers, &macVerifier{keys: keys}, nil
}

type macSigner struct {
	id  types.ReplicaID
	key []byte
}

func (s *macSigner) Sign(d types.Digest) []byte {
	m := hmac.New(sha256.New, s.key)
	m.Write(d[:])
	return m.Sum(nil)
}
func (s *macSigner) ID() types.ReplicaID { return s.id }

type macVerifier struct {
	keys [][]byte
}

func (v *macVerifier) Verify(r types.ReplicaID, d types.Digest, sig []byte) bool {
	if int(r) >= len(v.keys) {
		return false
	}
	m := hmac.New(sha256.New, v.keys[r])
	m.Write(d[:])
	return hmac.Equal(m.Sum(nil), sig)
}

// SchemeByName resolves a scheme from its configuration name.
func SchemeByName(name string) (Scheme, error) {
	switch name {
	case "", "ed25519":
		return Ed25519Scheme{}, nil
	case "insecure":
		return InsecureScheme{}, nil
	default:
		return nil, fmt.Errorf("crypto: unknown scheme %q", name)
	}
}
