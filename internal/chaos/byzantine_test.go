// Byzantine chaos scenarios: faults that lie rather than fail.
//
// The equivocating-proposer scenario drives one committee slot at the
// wire level (a headless replica whose SimNetwork endpoint is scripted
// by the test): every round it emits two distinct blocks for the same
// (round, proposer) slot to different halves of the committee. The
// per-slot vote guard plus 2f+1 certification must ensure at most one
// of the pair ever certifies, and the honest majority must keep
// committing with prefix-consistent logs and conserved balances.
//
// The lying-snapshot-server scenario corrupts the cross-epoch recovery
// path instead: a stranded replica fetching transition snapshots gets
// an internally consistent but forged snapshot from one peer. The f+1
// matching-digest rule must reject the lie and install the honest
// state.
package chaos

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"thunderbolt/internal/crypto"
	"thunderbolt/internal/node"
	"thunderbolt/internal/transport"
	"thunderbolt/internal/types"
)

// equivocator speaks the replica wire protocol from a headless
// endpoint, proposing two conflicting blocks per round. It assembles
// certificates from real votes (plus its own signature), serves block
// requests for both variants, and never votes for anyone else — a
// worst-case proposer that is live enough to keep getting certified.
type equivocator struct {
	tr       transport.Transport
	self     types.ReplicaID
	n        int
	signer   crypto.Signer
	verifier crypto.Verifier

	mu         sync.Mutex
	blocks     map[types.Digest]*types.Block
	collectors map[types.Digest]*crypto.QuorumCollector
	certs      map[types.Round]map[types.Digest]bool // cert digests seen per round
	proposed   map[types.Round]bool

	pairs       atomic.Uint64 // equivocating block pairs emitted
	certsFormed atomic.Uint64 // own certificates assembled
}

func newEquivocator(t *testing.T, h *Harness, id types.ReplicaID) *equivocator {
	t.Helper()
	// The cluster derives committee keys from its seed; rebuilding the
	// same committee hands the driver replica id's real signing key —
	// an insider, not an outsider.
	signers, verifier, err := crypto.InsecureScheme{}.Committee(h.Cluster().N(), h.Seed())
	if err != nil {
		t.Fatal(err)
	}
	e := &equivocator{
		tr:   h.Net().Endpoint(id),
		self: id, n: h.Cluster().N(),
		signer: signers[id], verifier: verifier,
		blocks:     make(map[types.Digest]*types.Block),
		collectors: make(map[types.Digest]*crypto.QuorumCollector),
		certs:      make(map[types.Round]map[types.Digest]bool),
		proposed:   make(map[types.Round]bool),
	}
	e.tr.SetHandler(e.handle)
	return e
}

// start emits the first equivocating pair (round 1 needs no parents).
func (e *equivocator) start() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.propose(1, nil)
}

// handle runs on SimNetwork delivery goroutines.
func (e *equivocator) handle(from types.ReplicaID, mt transport.MsgType, payload []byte) {
	switch mt {
	case node.MsgVote:
		// MsgVote wire format (see node/messages.go): epoch u64,
		// round u64, proposer u32, block digest, signature bytes.
		d := types.NewDecoder(payload)
		_ = d.U64() // epoch
		_ = d.U64() // round
		_ = d.U32() // proposer
		dig := d.Digest()
		sig := d.Bytes()
		if d.Finish() != nil {
			return
		}
		e.addVote(from, dig, sig)
	case node.MsgCert:
		var c types.Certificate
		if c.UnmarshalBinary(payload) != nil {
			return
		}
		e.noteCert(&c)
	case node.MsgBlockReq:
		// MsgBlockReq wire format: the block digest.
		d := types.NewDecoder(payload)
		dig := d.Digest()
		if d.Finish() != nil {
			return
		}
		e.mu.Lock()
		b := e.blocks[dig]
		e.mu.Unlock()
		if b != nil {
			bs, _ := b.MarshalBinary()
			_ = e.tr.Send(from, node.MsgBlock, bs)
		}
	}
}

func (e *equivocator) addVote(from types.ReplicaID, dig types.Digest, sig []byte) {
	e.mu.Lock()
	col := e.collectors[dig]
	var (
		cert *types.Certificate
		err  error
	)
	if col != nil {
		cert, err = col.Add(from, sig)
	}
	e.mu.Unlock()
	if err != nil || cert == nil {
		return
	}
	e.certsFormed.Add(1)
	cs, _ := cert.MarshalBinary()
	_ = e.tr.Broadcast(node.MsgCert, cs)
	e.noteCert(cert)
}

// noteCert records one certificate and, once a round holds a quorum of
// certificates, proposes the next round's equivocating pair.
func (e *equivocator) noteCert(c *types.Certificate) {
	e.mu.Lock()
	defer e.mu.Unlock()
	rm := e.certs[c.Round]
	if rm == nil {
		rm = make(map[types.Digest]bool)
		e.certs[c.Round] = rm
	}
	rm[c.Digest()] = true
	if len(rm) >= crypto.QuorumSize(e.n) && !e.proposed[c.Round+1] {
		parents := make([]types.Digest, 0, len(rm))
		for d := range rm {
			parents = append(parents, d)
		}
		types.SortDigests(parents)
		e.propose(c.Round+1, parents)
	}
}

// propose builds two distinct blocks for one slot and splits the
// committee between them. Callers hold e.mu.
func (e *equivocator) propose(r types.Round, parents []types.Digest) {
	e.proposed[r] = true
	now := time.Now().UnixNano()
	pair := make([]*types.Block, 2)
	for i := range pair {
		pair[i] = &types.Block{
			Epoch: 0, Round: r, Proposer: e.self,
			Shard: node.MyShard(e.self, 0, e.n),
			Kind:  types.NormalBlock, Parents: parents,
			// Distinct timestamps make the pair distinct blocks with
			// distinct digests — a real double proposal.
			ProposedUnixNano: now + int64(i),
		}
		d := pair[i].Digest()
		e.blocks[d] = pair[i]
		col := crypto.NewQuorumCollector(e.n, e.verifier, d, 0, r, e.self)
		_, _ = col.Add(e.self, e.signer.Sign(d))
		e.collectors[d] = col
	}
	e.pairs.Add(1)
	// Alternate the split so every honest replica sees both variants
	// over time.
	for p := 0; p < e.n; p++ {
		id := types.ReplicaID(p)
		if id == e.self {
			continue
		}
		b := pair[0]
		if (int(r)+p)%3 == 0 {
			b = pair[1]
		}
		bs, _ := b.MarshalBinary()
		_ = e.tr.Send(id, node.MsgBlock, bs)
	}
}

// TestScenarioByzantineEquivocatingProposer runs a 4-committee where
// replica 3 is the scripted equivocator. Liveness: the honest majority
// keeps committing client load (cross-shard transactions touching the
// byzantine shard still commit through honest proposers; single-shard
// transactions owned by the byzantine proposer starve by its choice
// and are excluded from the load's wait set via a short client
// timeout). Safety: for every round, the honest replicas certify at
// most one of each equivocating pair and always the same one; commit
// logs stay prefix-consistent and balances conserve.
func TestScenarioByzantineEquivocatingProposer(t *testing.T) {
	h := newHarness(t, Options{N: 4, Seed: 110, Headless: []int{3}})
	byz := newEquivocator(t, h, 3)
	byz.start()

	honest := []int{0, 1, 2}
	rep := h.RunLoadAsync(LoadOptions{
		Duration: load(2 * time.Second), Clients: 8,
		Workload: workloadCfg(0.3, 0.3),
		Timeout:  5 * time.Second, // byzantine-shard singles may starve
	}).Wait()
	if rep.Committed == 0 {
		t.Fatal("honest majority committed nothing under equivocation")
	}
	check(t, h.WaitQuiesced(budget, honest...))
	check(t, h.WaitConverged(budget, honest...))
	check(t, h.CheckSafety(honest...))
	check(t, h.CheckConservation(honest...))

	if byz.pairs.Load() == 0 || byz.certsFormed.Load() == 0 {
		t.Fatalf("equivocator inactive: %d pairs, %d certs — scenario exercised nothing",
			byz.pairs.Load(), byz.certsFormed.Load())
	}
	// At most one block per equivocated slot, and the same one
	// everywhere: collect the byzantine proposer's certified digest
	// per round from every honest DAG and require agreement.
	slot := make(map[types.Round]types.Digest)
	byzVertices := 0
	for _, i := range honest {
		err := h.Cluster().Node(i).Inspect(func(v *node.DebugView) {
			for r := types.Round(1); r <= v.HighestRound; r++ {
				for _, vi := range v.Vertices(r) {
					if vi.Proposer != 3 {
						continue
					}
					byzVertices++
					if prev, ok := slot[r]; ok && prev != vi.CertDigest {
						t.Errorf("round %d: replica %d certified %s, another replica %s — equivocation certified twice",
							r, i, vi.CertDigest, prev)
					}
					slot[r] = vi.CertDigest
				}
			}
		})
		check(t, err)
	}
	if byzVertices == 0 {
		t.Error("no equivocated block ever certified — the anti-equivocation guard was not stressed")
	}
}

// TestScenarioLyingSnapshotServer strands replica 3 across forced
// reconfigurations, then lets it recover via snapshot transfer while
// replica 2 serves it forged snapshots (internally consistent, wrong
// balances — recomputed digest and all). The f+1 matching-digest rule
// must pin the install to the honest pair's snapshot: the victim
// rejoins, converges to honest state, and conservation holds
// everywhere.
func TestScenarioLyingSnapshotServer(t *testing.T) {
	h := newHarness(t, Options{N: 4, Seed: 111, KPrime: 20,
		MinRoundInterval: 5 * time.Millisecond})
	// The liar is an insider: it holds replica 2's real signing key, so
	// its forged snapshot arrives properly signed — only the f+1
	// matching-digest rule stands between it and the victim's state.
	signers, _, err := crypto.InsecureScheme{}.Committee(h.Cluster().N(), h.Seed())
	if err != nil {
		t.Fatal(err)
	}
	var lies atomic.Uint64
	forge := func(from, to types.ReplicaID, mt transport.MsgType, payload []byte) ([]byte, bool) {
		if from != 2 || to != 3 || mt != node.MsgSnapshot {
			return payload, true
		}
		// MsgSnapshot wire format (see node/messages.go): signer u32,
		// signature bytes, snapshot bytes.
		d := types.NewDecoder(payload)
		signer := types.ReplicaID(d.U32())
		_ = d.Bytes() // original signature, replaced below
		snapBytes := d.Bytes()
		if d.Finish() != nil || signer != 2 {
			return payload, true
		}
		var s types.Snapshot
		if s.UnmarshalBinary(snapBytes) != nil {
			return payload, true
		}
		for i := range s.Ledger {
			// Inflate every balance: a self-serving lie that would
			// blow conservation if installed.
			s.Ledger[i].Value = append(types.Value(nil), s.Ledger[i].Value...)
			if len(s.Ledger[i].Value) > 0 {
				s.Ledger[i].Value[0] ^= 0x40
			}
		}
		forgedSnap, err := s.MarshalBinary()
		if err != nil {
			return payload, true
		}
		e := types.NewEncoder()
		e.U32(uint32(signer))
		var reread types.Snapshot
		if reread.UnmarshalBinary(forgedSnap) != nil {
			return payload, true
		}
		sig := signers[2].Sign(reread.Digest())
		e.Bytes(sig)
		e.Bytes(forgedSnap)
		lies.Add(1)
		return e.Sum(), true
	}
	h.Run([]Event{
		{Name: "liar 2->3", At: 0,
			Do: []Fault{InterceptFault{Fn: forge, Desc: "replica 2 forges snapshots served to 3"}}},
		{Name: "isolate 3", At: 300 * time.Millisecond,
			Do: []Fault{IsolateFault{Victim: 3}}},
		{Name: "heal after reconfig", When: AfterReconfigs(1), AfterPrev: 400 * time.Millisecond,
			Do: []Fault{HealAllFault{}}},
	})
	done := h.RunLoadAsync(LoadOptions{
		Duration: load(2 * time.Second), Clients: 8,
		Workload: workloadCfg(0.3, 0.1),
	})
	check(t, h.WaitReconfigs(1, budget))
	check(t, h.WaitNoPendingClients(budget))
	done.Wait()
	h.WaitSchedule()
	check(t, h.WaitReplicaEpoch(3, 1, budget))
	quiesceAndCheckAll(t, h)
	if h.Cluster().Node(3).Stats().EpochJumps == 0 {
		t.Error("victim rejoined without a snapshot epoch-jump")
	}
	if lies.Load() == 0 {
		t.Error("the lying server never served a forged snapshot — scenario exercised nothing")
	}
}
