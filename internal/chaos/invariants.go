// Invariant checkers. Safety invariants must hold whenever they are
// evaluated: no replica ever commits a transaction twice, and no two
// replicas ever disagree on the committed sequence (the slower one's
// log is a prefix of the faster one's — Tusk linearizes waves
// deterministically, so any mismatch inside the overlap is a safety
// violation, not a timing artifact). Conservation holds at
// quiescence: under a conserving workload every replica's SmallBank
// total must equal the genesis total, or a transfer was lost,
// duplicated, or torn across shards.
//
// Liveness invariants are budgets: after the network heals the
// replicas must reconverge within a bound, commits must keep flowing,
// and reconfigurations must complete.
package chaos

import (
	"fmt"
	"time"

	"thunderbolt/internal/node"
	"thunderbolt/internal/types"
	"thunderbolt/internal/workload"
)

// --- safety ---

// CheckNoDoubleCommit scans every listed replica's commit log
// (default: all) for a transaction digest committed twice.
func (h *Harness) CheckNoDoubleCommit(replicas ...int) error {
	for _, i := range h.replicaList(replicas) {
		_, log := h.cluster.Node(i).CommitLog()
		seen := make(map[types.Digest]int, len(log))
		for pos, e := range log {
			if prev, dup := seen[e.ID]; dup {
				return fmt.Errorf("chaos: replica %d double-committed at positions %d and %d: %v then %v",
					i, prev, pos, log[prev], e)
			}
			seen[e.ID] = pos
		}
	}
	return nil
}

// CheckCommitPrefixConsistency verifies pairwise that the listed
// replicas' commit logs agree on every position both have reached.
func (h *Harness) CheckCommitPrefixConsistency(replicas ...int) error {
	ids := h.replicaList(replicas)
	type snap struct {
		start uint64
		log   []node.CommitEntry
	}
	snaps := make(map[int]snap, len(ids))
	for _, i := range ids {
		start, log := h.cluster.Node(i).CommitLog()
		snaps[i] = snap{start: start, log: log}
	}
	for x := 0; x < len(ids); x++ {
		for y := x + 1; y < len(ids); y++ {
			a, b := snaps[ids[x]], snaps[ids[y]]
			lo := max(a.start, b.start)
			hi := min(a.start+uint64(len(a.log)), b.start+uint64(len(b.log)))
			for s := lo; s < hi; s++ {
				ea, eb := a.log[s-a.start], b.log[s-b.start]
				if ea.ID != eb.ID {
					return fmt.Errorf("chaos: commit sequences diverge at position %d: replica %d committed %v, replica %d committed %v",
						s, ids[x], ea, ids[y], eb)
				}
			}
		}
	}
	return nil
}

// CheckConservation verifies that every listed replica's SmallBank
// total equals the genesis total. Only meaningful under a conserving
// workload (RunLoadAsync forces one) and at quiescence — call
// WaitQuiesced first.
func (h *Harness) CheckConservation(replicas ...int) error {
	for _, i := range h.replicaList(replicas) {
		total, err := workload.TotalBalance(h.cluster.Node(i).Store(), h.opt.Accounts)
		if err != nil {
			return fmt.Errorf("chaos: replica %d balance unreadable: %w", i, err)
		}
		if total != h.expectedTotal {
			return fmt.Errorf("chaos: replica %d violates conservation: total %d, genesis %d (diff %+d)",
				i, total, h.expectedTotal, total-h.expectedTotal)
		}
	}
	return nil
}

// CheckSafety runs the always-valid safety invariants (double-commit
// and commit-sequence divergence) over the listed replicas.
func (h *Harness) CheckSafety(replicas ...int) error {
	if err := h.CheckNoDoubleCommit(replicas...); err != nil {
		return err
	}
	return h.CheckCommitPrefixConsistency(replicas...)
}

// --- liveness ---

// WaitConverged requires the listed replicas (default: all) to hold
// identical state within the budget.
func (h *Harness) WaitConverged(budget time.Duration, replicas ...int) error {
	if err := h.cluster.WaitConvergedAmong(budget, h.replicaList(replicas)...); err != nil {
		return fmt.Errorf("chaos: no convergence within %s: %w", budget, err)
	}
	return nil
}

// WaitCommitGrowth requires the cluster-wide commit count to grow by
// at least delta within the budget — commits must keep flowing (or
// resume) under or after faults.
func (h *Harness) WaitCommitGrowth(delta uint64, budget time.Duration) error {
	start := h.cluster.Commits()
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		if h.cluster.Commits() >= start+delta {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("chaos: commits stalled: grew %d of %d within %s",
		h.cluster.Commits()-start, delta, budget)
}

// WaitReconfigs requires the observer to have seen at least n
// reconfigurations within the budget.
func (h *Harness) WaitReconfigs(n uint64, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		if h.cluster.Reconfigurations() >= n {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("chaos: only %d of %d reconfigurations within %s",
		h.cluster.Reconfigurations(), n, budget)
}

// WaitNoPendingClients requires every in-flight client transaction to
// commit within the budget — the no-starvation liveness invariant
// (client retries must eventually land even across crashes and
// rotations). Call while SubmitWait timeouts exceed the budget, so
// entries can only drain by committing.
func (h *Harness) WaitNoPendingClients(budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		if len(h.cluster.PendingWaits()) == 0 {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	pend := h.cluster.PendingWaits()
	return fmt.Errorf("chaos: %d client transactions starved beyond %s (first: %v)",
		len(pend), budget, pend[0])
}

// WaitReplicaEpoch requires replica i to reach epoch e within the
// budget — the rejoin invariant for replicas stranded across a
// reconfiguration: with cross-epoch state transfer they must jump into
// the committee's epoch instead of idling in the old one forever.
func (h *Harness) WaitReplicaEpoch(i int, e types.Epoch, budget time.Duration) error {
	if err := h.cluster.WaitEpochAtLeast(i, e, budget); err != nil {
		return fmt.Errorf("chaos: replica %d never rejoined: %w", i, err)
	}
	return nil
}

// WaitQuiesced waits until the listed replicas report equal, stable
// commit counts — the point where state comparisons are meaningful.
func (h *Harness) WaitQuiesced(budget time.Duration, replicas ...int) error {
	if err := h.cluster.WaitCommitCountsEqual(budget, h.replicaList(replicas)...); err != nil {
		return fmt.Errorf("chaos: no quiescence within %s: %w", budget, err)
	}
	return nil
}

func (h *Harness) replicaList(replicas []int) []int {
	if len(replicas) > 0 {
		return replicas
	}
	return h.cluster.Replicas()
}
