// Forged-preplay-results Byzantine scenario (ROADMAP "invalid preplay
// results"): a shard proposer that follows the DAG protocol perfectly
// — valid blocks, real certificates, prompt votes — but ships preplay
// results whose declared read/write sets do not match re-execution:
// it claims its deposits installed a billion-unit balance. Preplay
// results are the one place a proposer asserts state transitions
// unilaterally; §4's parallel validation is the defense. Honest
// replicas must certify the block (availability voting is not
// validity), then discard it wholesale at commit when validation
// re-executes the declared schedule — the forged write must never
// reach any store.
package chaos

import (
	"sync/atomic"
	"testing"
	"time"

	"thunderbolt/internal/contract"
	"thunderbolt/internal/crypto"
	"thunderbolt/internal/node"
	"thunderbolt/internal/transport"
	"thunderbolt/internal/types"
	"thunderbolt/internal/workload"
)

// forgedBalance is the balance the forger claims its deposits
// install. Conservation would shatter if a single replica applied it.
const forgedBalance = int64(1_000_000_000)

// resultForger drives one committee slot at the wire level: a
// protocol-conformant proposer (it even votes for peers, unlike the
// withholder) whose every normal block carries one real transaction
// with a forged TxResult.
type resultForger struct {
	tr       transport.Transport
	self     types.ReplicaID
	n        int
	signer   crypto.Signer
	verifier crypto.Verifier

	mu         chan struct{} // 1-token mutex (keeps the struct copyable in tests)
	blocks     map[types.Digest]*types.Block
	collectors map[types.Digest]*crypto.QuorumCollector
	certs      map[types.Round]map[types.Digest]bool
	proposed   map[types.Round]bool
	nonce      uint64

	forged      atomic.Uint64 // forged blocks proposed
	certified   atomic.Uint64 // certificates formed for forged blocks
	votesServed atomic.Uint64 // votes this Byzantine node cast for peers
}

func newResultForger(t *testing.T, h *Harness, id types.ReplicaID) *resultForger {
	t.Helper()
	signers, verifier, err := crypto.InsecureScheme{}.Committee(h.Cluster().N(), h.Seed())
	if err != nil {
		t.Fatal(err)
	}
	f := &resultForger{
		tr:   h.Net().Endpoint(id),
		self: id, n: h.Cluster().N(),
		signer: signers[id], verifier: verifier,
		mu:         make(chan struct{}, 1),
		blocks:     make(map[types.Digest]*types.Block),
		collectors: make(map[types.Digest]*crypto.QuorumCollector),
		certs:      make(map[types.Round]map[types.Digest]bool),
		proposed:   make(map[types.Round]bool),
	}
	f.mu <- struct{}{}
	f.tr.SetHandler(f.handle)
	return f
}

func (f *resultForger) lock()   { <-f.mu }
func (f *resultForger) unlock() { f.mu <- struct{}{} }

func (f *resultForger) start() {
	f.lock()
	defer f.unlock()
	f.propose(1, nil)
}

func (f *resultForger) handle(from types.ReplicaID, mt transport.MsgType, payload []byte) {
	switch mt {
	case node.MsgBlock:
		// Vote for the peer's proposal: this Byzantine node is a model
		// citizen everywhere except its own results.
		var b types.Block
		if b.UnmarshalBinary(payload) != nil {
			return
		}
		if from != b.Proposer || b.Proposer == f.self {
			return
		}
		d := b.Digest()
		e := types.NewEncoder()
		e.U64(uint64(b.Epoch))
		e.U64(uint64(b.Round))
		e.U32(uint32(b.Proposer))
		e.Digest(d)
		e.Bytes(f.signer.Sign(d))
		_ = f.tr.Send(b.Proposer, node.MsgVote, e.Sum())
		f.votesServed.Add(1)
	case node.MsgVote:
		d := types.NewDecoder(payload)
		_ = d.U64() // epoch
		_ = d.U64() // round
		_ = d.U32() // proposer
		dig := d.Digest()
		sig := d.Bytes()
		if d.Finish() != nil {
			return
		}
		f.addVote(from, dig, sig)
	case node.MsgCert:
		var c types.Certificate
		if c.UnmarshalBinary(payload) != nil {
			return
		}
		f.noteCert(&c)
	case node.MsgBlockReq:
		d := types.NewDecoder(payload)
		dig := d.Digest()
		if d.Finish() != nil {
			return
		}
		f.lock()
		b := f.blocks[dig]
		f.unlock()
		if b != nil {
			bs, _ := b.MarshalBinary()
			_ = f.tr.Send(from, node.MsgBlock, bs)
		}
	}
}

func (f *resultForger) addVote(from types.ReplicaID, dig types.Digest, sig []byte) {
	f.lock()
	col := f.collectors[dig]
	var (
		cert *types.Certificate
		err  error
	)
	if col != nil {
		cert, err = col.Add(from, sig)
	}
	f.unlock()
	if err != nil || cert == nil {
		return
	}
	f.certified.Add(1)
	cs, _ := cert.MarshalBinary()
	_ = f.tr.Broadcast(node.MsgCert, cs)
	f.noteCert(cert)
}

func (f *resultForger) noteCert(c *types.Certificate) {
	f.lock()
	defer f.unlock()
	rm := f.certs[c.Round]
	if rm == nil {
		rm = make(map[types.Digest]bool)
		f.certs[c.Round] = rm
	}
	rm[c.Digest()] = true
	if len(rm) >= crypto.QuorumSize(f.n) && !f.proposed[c.Round+1] {
		parents := make([]types.Digest, 0, len(rm))
		for d := range rm {
			parents = append(parents, d)
		}
		types.SortDigests(parents)
		f.propose(c.Round+1, parents)
	}
}

// propose emits one block for the slot carrying a real deposit whose
// TxResult lies: the declared write set installs forgedBalance
// instead of what re-execution produces. Callers hold the lock.
func (f *resultForger) propose(r types.Round, parents []types.Digest) {
	f.proposed[r] = true
	shard := node.MyShard(f.self, 0, f.n)
	b := &types.Block{
		Epoch: 0, Round: r, Proposer: f.self,
		Shard: shard, Kind: types.NormalBlock, Parents: parents,
		ProposedUnixNano: time.Now().UnixNano(),
	}
	// A fresh (client, nonce) each time so dedup never hides the
	// forgery: every block is a new commit attempt.
	f.nonce++
	tx := forgedShardTx(f.n, shard, f.nonce)
	if tx != nil {
		key := workload.CheckingKey(string(tx.Args[0]))
		res := types.TxResult{
			TxID:        tx.ID(),
			ScheduleIdx: 0,
			ReadSet:     []types.RWRecord{{Key: key, Value: contract.EncodeInt64(10_000)}},
			WriteSet:    []types.RWRecord{{Key: key, Value: contract.EncodeInt64(forgedBalance)}},
		}
		b.SingleTxs = []*types.Transaction{tx}
		b.Results = []types.TxResult{res}
		f.forged.Add(1)
	}
	d := b.Digest()
	f.blocks[d] = b
	col := crypto.NewQuorumCollector(f.n, f.verifier, d, 0, r, f.self)
	_, _ = col.Add(f.self, f.signer.Sign(d))
	f.collectors[d] = col
	bs, _ := b.MarshalBinary()
	for p := 0; p < f.n; p++ {
		if id := types.ReplicaID(p); id != f.self {
			_ = f.tr.Send(id, node.MsgBlock, bs)
		}
	}
}

// forgedShardTx builds a deposit on an account owned by the given
// shard (nil if the first few accounts miss the shard — callers
// tolerate an occasional empty block).
func forgedShardTx(n int, shard types.ShardID, nonce uint64) *types.Transaction {
	smap := types.NewShardMap(n)
	for acct := 0; acct < 64; acct++ {
		name := workload.AccountName(acct)
		if smap.ShardOf(workload.CheckingKey(name)) != shard {
			continue
		}
		return &types.Transaction{
			Client: 7777, Nonce: nonce, Kind: types.SingleShard,
			Shards:   []types.ShardID{shard},
			Contract: workload.ContractDepositChecking,
			Args:     [][]byte{[]byte(name), contract.EncodeInt64(1)},
		}
	}
	return nil
}

// TestScenarioByzantineForgedPreplayResults runs a 4-committee where
// replica 3's every block carries a forged preplay result. Safety:
// validation must discard the blocks on every honest replica —
// ValidationFailures count them, no store ever shows the forged
// balance, conservation and commit-sequence invariants stay green.
// Liveness: honest traffic keeps committing around the forger.
func TestScenarioByzantineForgedPreplayResults(t *testing.T) {
	h := newHarness(t, Options{N: 4, Seed: 131, Headless: []int{3}})
	byz := newResultForger(t, h, 3)
	byz.start()

	honest := []int{0, 1, 2}
	rep := h.RunLoadAsync(LoadOptions{
		Duration: load(2 * time.Second), Clients: 8,
		Workload: workloadCfg(0.3, 0.3),
		Timeout:  5 * time.Second, // byzantine-shard singles starve by its choice
	}).Wait()
	if rep.Committed == 0 {
		t.Fatal("honest majority committed nothing alongside the forger")
	}
	check(t, h.WaitQuiesced(budget, honest...))
	check(t, h.WaitConverged(budget, honest...))
	check(t, h.CheckSafety(honest...))
	check(t, h.CheckConservation(honest...))

	if byz.forged.Load() == 0 {
		t.Fatal("forger proposed no forged blocks — nothing was tested")
	}
	if byz.certified.Load() == 0 {
		t.Fatal("no forged block certified: availability voting should not validate results")
	}
	// Every honest replica must have rejected forged blocks, and the
	// forged balance must appear nowhere.
	for _, i := range honest {
		nd := h.Cluster().Node(i)
		if nd.Stats().ValidationFailures == 0 {
			t.Errorf("replica %d reports no validation failures despite certified forgeries", i)
		}
		st := nd.Store()
		for acct := 0; acct < h.opt.Accounts; acct++ {
			key := workload.CheckingKey(workload.AccountName(acct))
			v, ok := st.Get(key)
			if !ok {
				continue
			}
			if bal, err := contract.DecodeInt64(v); err == nil && bal >= forgedBalance {
				t.Fatalf("replica %d applied a forged write: %s=%d", i, key, bal)
			}
		}
	}
	// The forged transactions themselves must never have committed.
	for _, i := range honest {
		_, entries := h.Cluster().Node(i).CommitLog()
		for _, e := range entries {
			if e.Proposer == 3 && !e.Cross {
				t.Fatalf("replica %d committed a single-shard block from the forger: %v", i, e)
			}
		}
	}
}
