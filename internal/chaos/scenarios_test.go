// The chaos scenario suite: each scenario drives a real SmallBank
// workload (cluster.RunLoad) against a live committee while a fault
// schedule runs, then asserts safety invariants (conservation,
// commit-sequence agreement, no double-commit) and liveness
// invariants (post-heal convergence within a budget, commit flow,
// reconfiguration completion).
//
// Every scenario prints its master seed; rerun a failure with
// CHAOS_SEED=<seed> go test -run <Name> ./internal/chaos to replay
// the same fault decisions and workload stream. -short halves the
// load windows for CI fast paths.
package chaos

import (
	"testing"
	"time"

	"thunderbolt/internal/node"
	"thunderbolt/internal/types"
	"thunderbolt/internal/workload"
)

// newHarness builds, seeds, and starts a harness, wiring failure
// reports (seed + applied-fault log) into the test.
func newHarness(t *testing.T, opt Options) *Harness {
	t.Helper()
	opt.Seed = SeedFromEnv(opt.Seed)
	h, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("chaos: seed %d (replay: CHAOS_SEED=%d go test -run %s ./internal/chaos)",
		opt.Seed, opt.Seed, t.Name())
	t.Cleanup(func() {
		if t.Failed() {
			for _, e := range h.EventLog() {
				t.Log(e)
			}
			// Per-node protocol traces: what each replica was doing
			// (propose/vote/cert/commit/...) when the invariant broke.
			t.Log(h.FlightDump(flightDumpTail))
		}
		h.Stop()
	})
	h.Start()
	return h
}

// flightDumpTail is how many flight-recorder events per node a failure
// report includes — enough to cover the last few commit waves without
// drowning the fault log.
const flightDumpTail = 40

// load scales a duration for -short runs.
func load(d time.Duration) time.Duration {
	if testing.Short() {
		return d / 2
	}
	return d
}

// budget is the ceiling for liveness waits; generous because the race
// detector can slow the world several-fold.
const budget = 30 * time.Second

// check fails the test on a violated invariant.
func check(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Error(err)
	}
}

// quiesceAndCheckAll is the common scenario epilogue for full-cluster
// recovery: all replicas quiesce, converge, and satisfy every safety
// invariant.
func quiesceAndCheckAll(t *testing.T, h *Harness) {
	t.Helper()
	check(t, h.WaitQuiesced(budget))
	check(t, h.WaitConverged(budget))
	check(t, h.CheckSafety())
	check(t, h.CheckConservation())
}

// TestScenarioPartitionDuringCrossShardCommit isolates one replica in
// the middle of a purely cross-shard transfer stream. Cross-shard
// atomicity is where a torn commit would show up as a conservation
// violation; the isolated replica must recover the missed DAG suffix
// after healing and land on identical state.
func TestScenarioPartitionDuringCrossShardCommit(t *testing.T) {
	h := newHarness(t, Options{N: 4, Seed: 101})
	h.Run([]Event{
		{Name: "isolate 3 mid-load", At: 300 * time.Millisecond,
			Do: []Fault{IsolateFault{Victim: 3}}},
		{Name: "heal", AfterPrev: 900 * time.Millisecond,
			Do: []Fault{HealAllFault{}}},
	})
	rep := h.RunLoadAsync(LoadOptions{
		Duration: load(2 * time.Second), Clients: 8,
		Workload: workloadCfg(0.2, 1.0),
	}).Wait()
	if rep.Committed == 0 {
		t.Fatal("no transactions committed under partition schedule")
	}
	h.WaitSchedule()
	quiesceAndCheckAll(t, h)
}

// TestScenarioShardProposerCrashMidEpoch crashes a shard proposer and
// leaves it down. The K-round silence rule must trigger a
// reconfiguration that rotates the censored shard to a live proposer
// (liveness), while the survivors keep a consistent, conserving
// committed sequence and the dead replica's log stays a clean prefix.
func TestScenarioShardProposerCrashMidEpoch(t *testing.T) {
	h := newHarness(t, Options{N: 4, Seed: 102, K: 6})
	victim := types.ReplicaID(2)
	h.Run([]Event{
		{Name: "crash proposer", At: 300 * time.Millisecond,
			Do: []Fault{CrashFault{Victim: victim}}},
	})
	done := h.RunLoadAsync(LoadOptions{
		Duration: load(2 * time.Second), Clients: 8,
		Workload: workloadCfg(0.3, 0.2),
	})
	check(t, h.WaitReconfigs(1, budget))
	// No starvation: every client transaction — including the censored
	// shard's — must commit via the rotated proposer.
	check(t, h.WaitNoPendingClients(budget))
	done.Wait()
	live := []int{0, 1, 3}
	check(t, h.WaitQuiesced(budget, live...))
	check(t, h.WaitConverged(budget, live...))
	// Safety holds across all four: the victim's log is a prefix and
	// its last applied state still conserves.
	check(t, h.CheckSafety())
	check(t, h.CheckConservation())
}

// TestScenarioCrashRestartUnderLoad crashes a replica under sustained
// load and restarts it in the same epoch. The restarted replica must
// recover its missed causal history through the certificate-request
// protocol and reconverge fully.
func TestScenarioCrashRestartUnderLoad(t *testing.T) {
	h := newHarness(t, Options{N: 4, Seed: 103})
	h.Run([]Event{
		{Name: "crash 1", At: 300 * time.Millisecond,
			Do: []Fault{CrashFault{Victim: 1}}},
		{Name: "restart 1", AfterPrev: 800 * time.Millisecond,
			Do: []Fault{RestartFault{Victim: 1}}},
	})
	rep := h.RunLoadAsync(LoadOptions{
		Duration: load(2500 * time.Millisecond), Clients: 8,
		Workload: workloadCfg(0.3, 0.2),
	}).Wait()
	if rep.Committed == 0 {
		t.Fatal("no transactions committed around the crash window")
	}
	h.WaitSchedule()
	quiesceAndCheckAll(t, h)
}

// TestScenarioReconfigUnderPartition forces periodic reconfigurations
// (K') while one replica is partitioned away. DAG transitions must
// complete and commits must keep flowing on the majority despite the
// missing member; after healing, the partitioned replica — stranded
// in an earlier epoch whose DAG the peers have discarded — must
// recover through the cross-epoch snapshot protocol: verify f+1
// matching transition snapshots, jump into the committee's epoch, and
// commit new transactions. (Before state transfer shipped, this
// scenario merely tolerated the stranded replica.)
func TestScenarioReconfigUnderPartition(t *testing.T) {
	h := newHarness(t, Options{N: 4, Seed: 104, KPrime: 20,
		MinRoundInterval: 5 * time.Millisecond})
	h.Run([]Event{
		{Name: "isolate 3", At: 300 * time.Millisecond,
			Do: []Fault{IsolateFault{Victim: 3}}},
		{Name: "heal after reconfig", When: AfterReconfigs(1), AfterPrev: 500 * time.Millisecond,
			Do: []Fault{HealAllFault{}}},
	})
	done := h.RunLoadAsync(LoadOptions{
		Duration: load(2 * time.Second), Clients: 8,
		Workload: workloadCfg(0.3, 0.1),
	})
	check(t, h.WaitReconfigs(1, budget))
	check(t, h.WaitNoPendingClients(budget))
	done.Wait()
	h.WaitSchedule()
	// Rejoin: the stranded replica must enter a post-transition epoch
	// via a snapshot install, then commit new work — proven by a
	// second load window that has to quiesce and converge on all four
	// replicas, stranding excluded.
	check(t, h.WaitReplicaEpoch(3, 1, budget))
	rep := h.RunLoadAsync(LoadOptions{
		Duration: load(time.Second), Clients: 4,
		Workload: workloadCfg(0.3, 0.1),
	}).Wait()
	if rep.Committed == 0 {
		t.Fatal("no transactions committed after the stranded replica healed")
	}
	quiesceAndCheckAll(t, h)
	if jumps := h.Cluster().Node(3).Stats().EpochJumps; jumps == 0 {
		t.Error("replica 3 rejoined without a snapshot epoch-jump — scenario no longer exercises state transfer")
	}
}

// TestScenarioCrashAcrossReconfig is the crash-flavoured stranding:
// a replica is network-crashed while K-silence reconfigurations rotate
// its shard away, and is only restarted epochs later. On restart its
// in-epoch catch-up requests reference a discarded DAG; it must detect
// the epoch floor, fetch and verify transition snapshots, and jump.
func TestScenarioCrashAcrossReconfig(t *testing.T) {
	h := newHarness(t, Options{N: 4, Seed: 109, K: 8,
		MinRoundInterval: 5 * time.Millisecond})
	victim := types.ReplicaID(1)
	h.Run([]Event{
		{Name: "crash 1", At: 300 * time.Millisecond,
			Do: []Fault{CrashFault{Victim: victim}}},
		{Name: "restart after reconfig", When: AfterReconfigs(1), AfterPrev: 400 * time.Millisecond,
			Do: []Fault{RestartFault{Victim: victim}}},
	})
	done := h.RunLoadAsync(LoadOptions{
		Duration: load(2 * time.Second), Clients: 8,
		Workload: workloadCfg(0.3, 0.2),
	})
	check(t, h.WaitReconfigs(1, budget))
	check(t, h.WaitNoPendingClients(budget))
	done.Wait()
	h.WaitSchedule()
	check(t, h.WaitReplicaEpoch(int(victim), 1, budget))
	quiesceAndCheckAll(t, h)
	if jumps := h.Cluster().Node(int(victim)).Stats().EpochJumps; jumps == 0 {
		t.Error("restarted replica rejoined without a snapshot epoch-jump")
	}
}

// TestScenarioAsymmetricLinkLoss degrades one link pair asymmetrically
// (60% loss one way, 30% the other) under the OCC pipeline. Losses
// delay but must never tear or reorder commits; after clearing, the
// cluster reconverges fully.
func TestScenarioAsymmetricLinkLoss(t *testing.T) {
	h := newHarness(t, Options{N: 4, Seed: 105, Mode: node.ModeOCC})
	h.Run([]Event{
		{Name: "degrade 0<->1", At: 200 * time.Millisecond,
			Do: []Fault{LinkLossFault{A: 0, B: 1, Rate: 0.6}, LinkLossFault{A: 1, B: 0, Rate: 0.3}}},
		{Name: "clear", AfterPrev: 1200 * time.Millisecond,
			Do: []Fault{ClearFaultsFault{}}},
	})
	h.RunLoadAsync(LoadOptions{
		Duration: load(2 * time.Second), Clients: 8,
		Workload: workloadCfg(0.3, 0.3),
	}).Wait()
	h.WaitSchedule()
	quiesceAndCheckAll(t, h)
}

// TestScenarioRollingRestarts takes every replica down and back up,
// one at a time, under continuous load — the rolling-upgrade shape.
// Each restarted replica recovers in-epoch; the cluster must end
// fully converged with conservation intact.
func TestScenarioRollingRestarts(t *testing.T) {
	h := newHarness(t, Options{N: 4, Seed: 106})
	var sched []Event
	for i := 0; i < 4; i++ {
		v := types.ReplicaID(i)
		sched = append(sched,
			Event{Name: "crash", AfterPrev: 250 * time.Millisecond, Do: []Fault{CrashFault{Victim: v}}},
			Event{Name: "restart", AfterPrev: 400 * time.Millisecond, Do: []Fault{RestartFault{Victim: v}}},
		)
	}
	h.Run(sched)
	h.RunLoadAsync(LoadOptions{
		Duration: load(3 * time.Second), Clients: 8,
		Workload: workloadCfg(0.3, 0.2),
	}).Wait()
	h.WaitSchedule()
	quiesceAndCheckAll(t, h)
}

// TestScenarioLossDupLatencyBurst floods the whole network with a
// combined fault burst — 25% loss, 25% duplication, +3ms latency —
// under the serial (Tusk) pipeline. Duplicated deliveries are the
// classic double-commit trap; the commit logs must stay
// duplicate-free and the cluster must recover to full convergence.
func TestScenarioLossDupLatencyBurst(t *testing.T) {
	h := newHarness(t, Options{N: 4, Seed: 107, Mode: node.ModeSerial})
	h.Run([]Event{
		{Name: "burst", At: 300 * time.Millisecond,
			Do: []Fault{LossFault{Rate: 0.25}, DuplicateFault{Rate: 0.25}, LatencySpikeFault{Extra: 3 * time.Millisecond}}},
		{Name: "clear", AfterPrev: time.Second,
			Do: []Fault{ClearFaultsFault{}}},
	})
	h.RunLoadAsync(LoadOptions{
		Duration: load(2 * time.Second), Clients: 8,
		Workload: workloadCfg(0.3, 0.2),
	}).Wait()
	h.WaitSchedule()
	quiesceAndCheckAll(t, h)
}

// TestScenarioSplitBrainStall partitions the committee 2|2 — no side
// holds a certificate quorum, so commits stall entirely — and heals
// after a beat. The trigger fires off live cluster state (commit
// count) rather than wall clock. Healing must restore liveness from a
// total stall: wedged proposals are rebroadcast, quorums reform, and
// the backlog drains with no double-commits.
func TestScenarioSplitBrainStall(t *testing.T) {
	h := newHarness(t, Options{N: 4, Seed: 108})
	h.Run([]Event{
		{Name: "split 2|2", When: AfterCommits(150),
			Do: []Fault{PartitionFault{Groups: [][]types.ReplicaID{{0, 1}, {2, 3}}}}},
		{Name: "heal", AfterPrev: 700 * time.Millisecond,
			Do: []Fault{HealAllFault{}}},
	})
	done := h.RunLoadAsync(LoadOptions{
		Duration: load(2 * time.Second), Clients: 8,
		Workload: workloadCfg(0.3, 0.2),
	})
	h.WaitSchedule()
	// Liveness after a total stall: every transaction stranded by the
	// split must commit once quorums reform.
	check(t, h.WaitNoPendingClients(budget))
	done.Wait()
	quiesceAndCheckAll(t, h)
}

// workloadCfg is shorthand for the scenario workload knobs that vary:
// read ratio and cross-shard fraction (θ fixed at the paper's
// high-contention 0.85; Conserving is forced by the harness).
func workloadCfg(readRatio, crossPct float64) workload.Config {
	return workload.Config{Theta: 0.85, ReadRatio: readRatio, CrossPct: crossPct}
}
