// Vote-withholding Byzantine scenario: a proposer that stays live
// enough to keep its own slot certified — it proposes a valid block
// every round and assembles certificates from honest votes — but
// never votes for anyone else. Selective silence is the cheapest
// Byzantine strategy against a certification quorum: if liveness
// depended on every replica's vote, one silent voter could stall the
// committee. With n = 3f+1 and a 2f+1 quorum, the honest majority
// must certify, commit, and conserve without the withheld votes.
package chaos

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"thunderbolt/internal/crypto"
	"thunderbolt/internal/node"
	"thunderbolt/internal/transport"
	"thunderbolt/internal/types"
)

// withholder drives one committee slot at the wire level from a
// headless endpoint: valid empty proposals each round, certificates
// assembled from real votes, block requests served — and not one
// MsgVote ever sent to a peer.
type withholder struct {
	tr       transport.Transport
	self     types.ReplicaID
	n        int
	signer   crypto.Signer
	verifier crypto.Verifier

	mu         sync.Mutex
	blocks     map[types.Digest]*types.Block
	collectors map[types.Digest]*crypto.QuorumCollector
	certs      map[types.Round]map[types.Digest]bool
	proposed   map[types.Round]bool

	votesReceived atomic.Uint64 // honest votes for the withholder's blocks
	votesWithheld atomic.Uint64 // peer proposals it refused to vote for
	certsFormed   atomic.Uint64
}

func newWithholder(t *testing.T, h *Harness, id types.ReplicaID) *withholder {
	t.Helper()
	signers, verifier, err := crypto.InsecureScheme{}.Committee(h.Cluster().N(), h.Seed())
	if err != nil {
		t.Fatal(err)
	}
	w := &withholder{
		tr:   h.Net().Endpoint(id),
		self: id, n: h.Cluster().N(),
		signer: signers[id], verifier: verifier,
		blocks:     make(map[types.Digest]*types.Block),
		collectors: make(map[types.Digest]*crypto.QuorumCollector),
		certs:      make(map[types.Round]map[types.Digest]bool),
		proposed:   make(map[types.Round]bool),
	}
	w.tr.SetHandler(w.handle)
	return w
}

func (w *withholder) start() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.propose(1, nil)
}

func (w *withholder) handle(from types.ReplicaID, mt transport.MsgType, payload []byte) {
	switch mt {
	case node.MsgBlock:
		// A peer's proposal asking for a vote: this is exactly the
		// message the withholder stays silent on.
		w.votesWithheld.Add(1)
	case node.MsgVote:
		d := types.NewDecoder(payload)
		_ = d.U64() // epoch
		_ = d.U64() // round
		_ = d.U32() // proposer
		dig := d.Digest()
		sig := d.Bytes()
		if d.Finish() != nil {
			return
		}
		w.votesReceived.Add(1)
		w.addVote(from, dig, sig)
	case node.MsgCert:
		var c types.Certificate
		if c.UnmarshalBinary(payload) != nil {
			return
		}
		w.noteCert(&c)
	case node.MsgBlockReq:
		d := types.NewDecoder(payload)
		dig := d.Digest()
		if d.Finish() != nil {
			return
		}
		w.mu.Lock()
		b := w.blocks[dig]
		w.mu.Unlock()
		if b != nil {
			bs, _ := b.MarshalBinary()
			_ = w.tr.Send(from, node.MsgBlock, bs)
		}
	}
}

func (w *withholder) addVote(from types.ReplicaID, dig types.Digest, sig []byte) {
	w.mu.Lock()
	col := w.collectors[dig]
	var (
		cert *types.Certificate
		err  error
	)
	if col != nil {
		cert, err = col.Add(from, sig)
	}
	w.mu.Unlock()
	if err != nil || cert == nil {
		return
	}
	w.certsFormed.Add(1)
	cs, _ := cert.MarshalBinary()
	_ = w.tr.Broadcast(node.MsgCert, cs)
	w.noteCert(cert)
}

func (w *withholder) noteCert(c *types.Certificate) {
	w.mu.Lock()
	defer w.mu.Unlock()
	rm := w.certs[c.Round]
	if rm == nil {
		rm = make(map[types.Digest]bool)
		w.certs[c.Round] = rm
	}
	rm[c.Digest()] = true
	if len(rm) >= crypto.QuorumSize(w.n) && !w.proposed[c.Round+1] {
		parents := make([]types.Digest, 0, len(rm))
		for d := range rm {
			parents = append(parents, d)
		}
		types.SortDigests(parents)
		w.propose(c.Round+1, parents)
	}
}

// propose emits one valid empty block for the slot. Callers hold w.mu.
func (w *withholder) propose(r types.Round, parents []types.Digest) {
	w.proposed[r] = true
	b := &types.Block{
		Epoch: 0, Round: r, Proposer: w.self,
		Shard: node.MyShard(w.self, 0, w.n),
		Kind:  types.NormalBlock, Parents: parents,
		ProposedUnixNano: time.Now().UnixNano(),
	}
	d := b.Digest()
	w.blocks[d] = b
	col := crypto.NewQuorumCollector(w.n, w.verifier, d, 0, r, w.self)
	_, _ = col.Add(w.self, w.signer.Sign(d))
	w.collectors[d] = col
	bs, _ := b.MarshalBinary()
	for p := 0; p < w.n; p++ {
		if id := types.ReplicaID(p); id != w.self {
			_ = w.tr.Send(id, node.MsgBlock, bs)
		}
	}
}

// TestScenarioByzantineVoteWithholding runs a 4-committee where
// replica 3 proposes every round but withholds every vote. Liveness:
// the 2f+1 quorum must form from the honest majority alone, so
// commits keep flowing and no client starves. Safety: commit logs
// stay prefix-consistent, nothing double-commits, balances conserve.
// The driver's own slot keeps certifying (it is silent, not dead), so
// the scenario stresses quorum formation with a live-but-useless
// voter rather than a crashed one.
func TestScenarioByzantineVoteWithholding(t *testing.T) {
	h := newHarness(t, Options{N: 4, Seed: 117, Headless: []int{3}})
	byz := newWithholder(t, h, 3)
	byz.start()

	honest := []int{0, 1, 2}
	rep := h.RunLoadAsync(LoadOptions{
		Duration: load(2 * time.Second), Clients: 8,
		Workload: workloadCfg(0.3, 0.3),
		Timeout:  5 * time.Second, // byzantine-shard singles may starve by its choice
	}).Wait()
	if rep.Committed == 0 {
		t.Fatal("honest majority committed nothing under vote withholding")
	}
	check(t, h.WaitQuiesced(budget, honest...))
	check(t, h.WaitConverged(budget, honest...))
	check(t, h.CheckSafety(honest...))
	check(t, h.CheckConservation(honest...))

	if byz.votesWithheld.Load() == 0 {
		t.Fatal("withholder saw no proposals — nothing was withheld")
	}
	if byz.votesReceived.Load() == 0 || byz.certsFormed.Load() == 0 {
		t.Fatalf("withholder not live: %d votes in, %d certs — silence was indistinguishable from a crash",
			byz.votesReceived.Load(), byz.certsFormed.Load())
	}
	// The withholder's slot must appear in honest DAGs (live) while
	// every honest replica kept proposing past it (unstalled).
	byzVertices := 0
	for _, i := range honest {
		err := h.Cluster().Node(i).Inspect(func(v *node.DebugView) {
			for r := types.Round(1); r <= v.HighestRound; r++ {
				for _, vi := range v.Vertices(r) {
					if vi.Proposer == 3 {
						byzVertices++
					}
				}
			}
		})
		check(t, err)
	}
	if byzVertices == 0 {
		t.Error("withholder's blocks never certified — the scenario degenerated to a crash fault")
	}
}
