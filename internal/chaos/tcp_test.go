// TCP transport chaos: the harness's SimNetwork scenarios model
// network faults; this scenario models the fault SimNetwork cannot —
// a real process crash. A replica's node is stopped and its transport
// torn down mid-load, the committee reconfigures around the silence,
// and a brand-new replica instance (fresh genesis store, same identity
// and address) rejoins over real sockets. Its in-epoch catch-up
// requests reference a DAG the committee has discarded, so the rejoin
// must go through the cross-epoch snapshot protocol — exercising
// MsgSnapshotReq/MsgSnapshot over TCP framing rather than SimNetwork.
package chaos

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"thunderbolt/internal/contract"
	"thunderbolt/internal/crypto"
	"thunderbolt/internal/node"
	"thunderbolt/internal/storage"
	"thunderbolt/internal/transport"
	"thunderbolt/internal/types"
	"thunderbolt/internal/workload"
)

const tcpTestAccounts = 16

// tcpCommittee is a 4-replica committee over loopback TCP whose
// members can be killed and re-created individually. With a dataDir
// set, every replica runs on the durable WAL backend under
// <dataDir>/replica-<i>, and a restart recovers from disk.
type tcpCommittee struct {
	t        *testing.T
	n        int
	signers  []crypto.Signer
	verifier crypto.Verifier
	peers    map[types.ReplicaID]string
	trs      []*transport.TCPTransport
	nodes    []*node.Node
	dataDir  string
	k        int
	backends []*storage.Durable

	mu        sync.Mutex
	committed map[types.Digest]bool
}

func newTCPCommittee(t *testing.T, n int, seed int64) *tcpCommittee {
	return newTCPCommitteeOpt(t, n, seed, "", 8)
}

// newTCPCommitteeOpt builds a committee with a durable data directory
// (empty = in-memory) and a K silent-proposer reconfiguration knob
// (0 = never rotate — the WAL recovery scenario needs the epoch to
// stay put so the rejoin exercises in-epoch catch-up, not the
// snapshot jump).
func newTCPCommitteeOpt(t *testing.T, n int, seed int64, dataDir string, k int) *tcpCommittee {
	t.Helper()
	signers, verifier, err := crypto.InsecureScheme{}.Committee(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	c := &tcpCommittee{
		t: t, n: n, signers: signers, verifier: verifier,
		peers:     make(map[types.ReplicaID]string),
		trs:       make([]*transport.TCPTransport, n),
		nodes:     make([]*node.Node, n),
		dataDir:   dataDir,
		k:         k,
		backends:  make([]*storage.Durable, n),
		committed: make(map[types.Digest]bool),
	}
	// Bind ephemeral listeners first, then distribute the address book.
	for i := 0; i < n; i++ {
		c.trs[i] = c.listen(i, "127.0.0.1:0")
		c.peers[types.ReplicaID(i)] = c.trs[i].Addr()
	}
	for i := 0; i < n; i++ {
		c.trs[i].SetPeers(c.peers)
		c.nodes[i] = c.buildNode(i, c.trs[i])
	}
	t.Cleanup(func() {
		for i := 0; i < n; i++ {
			if c.nodes[i] != nil {
				c.nodes[i].Stop()
			}
			if c.trs[i] != nil {
				_ = c.trs[i].Close()
			}
			if c.backends[i] != nil {
				_ = c.backends[i].Close()
			}
		}
	})
	return c
}

func (c *tcpCommittee) listen(i int, addr string) *transport.TCPTransport {
	c.t.Helper()
	var (
		tr  *transport.TCPTransport
		err error
	)
	// Re-binding a just-released port can transiently fail; retry
	// briefly (only relevant for restarts on a fixed address).
	for attempt := 0; attempt < 50; attempt++ {
		tr, err = transport.NewTCPTransport(transport.TCPConfig{
			Self: types.ReplicaID(i), Listen: addr,
			DialTimeout: 250 * time.Millisecond, RetryInterval: 50 * time.Millisecond,
		})
		if err == nil {
			return tr
		}
		time.Sleep(20 * time.Millisecond)
	}
	c.t.Fatalf("replica %d could not listen on %s: %v", i, addr, err)
	return nil
}

func (c *tcpCommittee) buildNode(i int, tr *transport.TCPTransport) *node.Node {
	c.t.Helper()
	reg := contract.NewRegistry()
	workload.RegisterSmallBank(reg)
	var st storage.Backend
	if c.dataDir != "" {
		d, err := storage.OpenDurable(storage.DurableOptions{
			Dir: filepath.Join(c.dataDir, fmt.Sprintf("replica-%d", i)),
		})
		if err != nil {
			c.t.Fatal(err)
		}
		c.backends[i] = d
		st = d
	} else {
		st = storage.New()
	}
	if st.Seq() == 0 {
		workload.InitAccounts(st, tcpTestAccounts, 1000, 1000)
	}
	cfg := node.Config{
		ID: types.ReplicaID(i), N: c.n, Transport: tr,
		Signer: c.signers[i], Verifier: c.verifier,
		Registry: reg, Store: st,
		Executors: 2, Validators: 2, BatchSize: 16,
		K:            c.k,
		TickInterval: 5 * time.Millisecond, MinRoundInterval: 5 * time.Millisecond,
		CommitLogCap: 4096,
	}
	if i == 0 {
		cfg.OnCommitTx = func(tx *types.Transaction, _ time.Time) {
			c.mu.Lock()
			c.committed[tx.ID()] = true
			c.mu.Unlock()
		}
	}
	nd, err := node.New(cfg)
	if err != nil {
		c.t.Fatal(err)
	}
	return nd
}

// kill emulates a process crash: the node stops, its sockets close,
// and a durable backend is torn down abruptly (no graceful flush or
// checkpoint — on-disk state stays at the last group commit).
func (c *tcpCommittee) kill(i int) {
	c.nodes[i].Stop()
	_ = c.trs[i].Close()
	if c.backends[i] != nil {
		c.backends[i].CloseAbrupt()
		c.backends[i] = nil
	}
	c.nodes[i], c.trs[i] = nil, nil
}

// restart brings replica i back as a new process: fresh transport on
// the same address, fresh node. Without a data directory everything it
// knew died with the crash (genesis-only state); with one, buildNode
// reopens the replica's WAL and recovers from disk.
func (c *tcpCommittee) restart(i int) {
	tr := c.listen(i, c.peers[types.ReplicaID(i)])
	tr.SetPeers(c.peers)
	c.trs[i] = tr
	c.nodes[i] = c.buildNode(i, tr)
	c.nodes[i].Start()
}

// submitUntilCommitted drives one deposit to commitment, re-routing by
// the observer's epoch on every retry (the client behaviour across
// reconfigurations).
func (c *tcpCommittee) submitUntilCommitted(tx *types.Transaction, timeout time.Duration) {
	c.t.Helper()
	id := tx.ID()
	smap := types.NewShardMap(c.n)
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		done := c.committed[id]
		c.mu.Unlock()
		if done {
			return
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("tx %s never committed over TCP within %v", id, timeout)
		}
		epoch := c.nodes[0].Stats().Epoch
		shard := smap.ShardOf(workload.CheckingKey(string(tx.Args[0])))
		if nd := c.nodes[node.ProposerOfShard(shard, epoch, c.n)]; nd != nil {
			_ = nd.Submit(tx)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func depositTx(n int, nonce uint64, account int, amount int64) *types.Transaction {
	acct := workload.AccountName(account)
	shard := types.NewShardMap(n).ShardOf(workload.CheckingKey(acct))
	return &types.Transaction{
		Client: 99, Nonce: nonce, Kind: types.SingleShard,
		Shards:   []types.ShardID{shard},
		Contract: workload.ContractDepositChecking,
		Args:     [][]byte{[]byte(acct), contract.EncodeInt64(amount)},
	}
}

func TestScenarioTCPCrashRestartEpochJump(t *testing.T) {
	const n = 4
	c := newTCPCommittee(t, n, 42)
	for _, nd := range c.nodes {
		nd.Start()
	}

	// Phase 1: a healthy baseline burst.
	nonce := uint64(1)
	for i := 0; i < 8; i++ {
		c.submitUntilCommitted(depositTx(n, nonce, i, 1), 30*time.Second)
		nonce++
	}

	// Phase 2: kill replica 2 (process-level: node + sockets), keep
	// committing. Its silence must drive a K-rule reconfiguration that
	// rotates its shard to a live proposer.
	c.kill(2)
	for i := 0; i < 8; i++ {
		c.submitUntilCommitted(depositTx(n, nonce, i, 1), 30*time.Second)
		nonce++
	}
	deadline := time.Now().Add(30 * time.Second)
	for c.nodes[0].Stats().Epoch == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no reconfiguration while replica 2 was down")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Phase 3: restart replica 2 from genesis. It wakes in epoch 0,
	// the committee has discarded that DAG — only a snapshot epoch-jump
	// over TCP can bring it back.
	c.restart(2)
	deadline = time.Now().Add(30 * time.Second)
	for {
		st := c.nodes[2].Stats()
		if st.Epoch >= 1 && st.EpochJumps >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica 2 never epoch-jumped over TCP: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Phase 4: post-rejoin commits, then full state convergence.
	for i := 0; i < 8; i++ {
		c.submitUntilCommitted(depositTx(n, nonce, i, 1), 30*time.Second)
		nonce++
	}
	ref := c.nodes[0].Store()
	deadline = time.Now().Add(30 * time.Second)
	for i := 1; i < n; i++ {
		for {
			diverged := ""
			for _, k := range ref.Keys() {
				a, _ := ref.Get(k)
				b, _ := c.nodes[i].Store().Get(k)
				if !a.Equal(b) {
					diverged = string(k)
					break
				}
			}
			if diverged == "" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica %d never converged (diverges at %s)", i, diverged)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
}

// encodeDump renders a backend's full state + sequence-independent
// content for bit-identity comparison across replicas.
func encodeDump(st storage.Backend) []byte {
	e := types.NewEncoder()
	for _, r := range st.Dump() {
		e.Str(string(r.Key))
		e.Bytes(r.Value)
	}
	return e.Sum()
}

// TestScenarioTCPCrashRestartWALRecovery is the durable-backend twin
// of the epoch-jump scenario — and the acceptance proof for
// restart-from-disk: a killed TCP replica restarted against the same
// data directory recovers its pre-crash committed state by WAL replay
// (not by fetching a snapshot: the committee never reconfigures, so
// the replica stays within the GC horizon and rejoins through normal
// in-epoch catch-up), and after convergence its store dump is
// bit-identical to the always-up replicas'.
func TestScenarioTCPCrashRestartWALRecovery(t *testing.T) {
	const n = 4
	c := newTCPCommitteeOpt(t, n, 43, t.TempDir(), 0)
	for _, nd := range c.nodes {
		nd.Start()
	}

	// Accounts whose shard is NOT served by replica 2 keep committing
	// while it is down (no K: the committee never rotates shards).
	smap := types.NewShardMap(n)
	liveAccounts := make([]int, 0, tcpTestAccounts)
	for i := 0; i < tcpTestAccounts; i++ {
		shard := smap.ShardOf(workload.CheckingKey(workload.AccountName(i)))
		if node.ProposerOfShard(shard, 0, n) != 2 {
			liveAccounts = append(liveAccounts, i)
		}
	}
	if len(liveAccounts) < 4 {
		t.Fatalf("seed gave only %d accounts off replica 2's shard", len(liveAccounts))
	}

	// Phase 1: a committed baseline touching every replica.
	nonce := uint64(1)
	for i := 0; i < 8; i++ {
		c.submitUntilCommitted(depositTx(n, nonce, i, 1), 30*time.Second)
		nonce++
	}
	// Wait until replica 2 itself has applied the baseline (commits
	// happen per replica as waves land), then pin it to disk.
	deadline := time.Now().Add(30 * time.Second)
	base := c.nodes[0].Stats().CommittedTxs
	for c.nodes[2].Stats().CommittedTxs < base {
		if time.Now().After(deadline) {
			t.Fatalf("replica 2 never applied the baseline: %d < %d",
				c.nodes[2].Stats().CommittedTxs, base)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := c.backends[2].Sync(); err != nil {
		t.Fatal(err)
	}
	preCrashDump := encodeDump(c.backends[2])
	preCrashSeq := c.backends[2].Seq()
	preCrashCommits := c.nodes[2].Stats().CommittedTxs

	// Phase 2: kill replica 2 (process + abrupt backend teardown) and
	// keep committing on shards served by live proposers.
	c.kill(2)
	for i := 0; i < 8; i++ {
		c.submitUntilCommitted(depositTx(n, nonce, liveAccounts[i%len(liveAccounts)], 1), 30*time.Second)
		nonce++
	}

	// Phase 3: restart replica 2 from its data directory. Before the
	// node even starts catching up, the reopened backend must hold
	// the pre-crash committed state — that is the WAL replay.
	c.restart(2)
	if got := c.backends[2].Seq(); got < preCrashSeq {
		t.Fatalf("WAL replay recovered seq %d, pre-crash durable seq was %d", got, preCrashSeq)
	}
	if got := c.nodes[2].Stats().CommittedTxs; got < preCrashCommits {
		t.Fatalf("recovered commit counter %d below pre-crash %d (dedup sidecar lost)", got, preCrashCommits)
	}
	if preCrashSeq == c.backends[2].Seq() && !bytes.Equal(preCrashDump, encodeDump(c.backends[2])) {
		t.Fatal("WAL-replayed state diverges from the pre-crash durable state")
	}

	// Phase 4: the replica must converge through in-epoch catch-up
	// alone — same epoch, no snapshot fetch.
	for i := 0; i < 8; i++ {
		c.submitUntilCommitted(depositTx(n, nonce, liveAccounts[i%len(liveAccounts)], 1), 30*time.Second)
		nonce++
	}
	deadline = time.Now().Add(45 * time.Second)
	for {
		want := c.nodes[0].Stats().CommittedTxs
		got := c.nodes[2].Stats().CommittedTxs
		if got == want && bytes.Equal(encodeDump(c.nodes[0].Store()), encodeDump(c.nodes[2].Store())) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica 2 never converged after WAL recovery: commits %d vs %d", got, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
	st := c.nodes[2].Stats()
	if st.EpochJumps != 0 || st.Epoch != 0 {
		t.Fatalf("recovery used the snapshot path (epoch=%d jumps=%d); within the GC horizon it must be WAL replay + in-epoch catch-up", st.Epoch, st.EpochJumps)
	}
	// Bit-identity across the whole committee, always-up replicas
	// included.
	ref := encodeDump(c.nodes[0].Store())
	for i := 1; i < n; i++ {
		if !bytes.Equal(ref, encodeDump(c.nodes[i].Store())) {
			t.Fatalf("replica %d dump not bit-identical to replica 0", i)
		}
	}
}

// TestScenarioTCPWALRecoveryAcrossReconfig covers the stranded half
// of the restart-from-disk decision: the committee reconfigures while
// the durable replica is down, so WAL replay alone cannot rejoin it —
// it recovers its disk state, detects the epoch floor, and falls back
// to the snapshot epoch-jump (installed over the recovered prefix).
// A second crash+restart after the jump must then recover directly
// into the jumped epoch: the install is journaled in the WAL sidecar.
func TestScenarioTCPWALRecoveryAcrossReconfig(t *testing.T) {
	const n = 4
	c := newTCPCommitteeOpt(t, n, 44, t.TempDir(), 8)
	for _, nd := range c.nodes {
		nd.Start()
	}

	nonce := uint64(1)
	for i := 0; i < 8; i++ {
		c.submitUntilCommitted(depositTx(n, nonce, i, 1), 30*time.Second)
		nonce++
	}
	c.kill(2)
	for i := 0; i < 8; i++ {
		c.submitUntilCommitted(depositTx(n, nonce, i, 1), 30*time.Second)
		nonce++
	}
	deadline := time.Now().Add(30 * time.Second)
	for c.nodes[0].Stats().Epoch == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no reconfiguration while replica 2 was down")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Restart from disk into the discarded epoch: genuinely stranded,
	// so the snapshot jump is the only way forward.
	c.restart(2)
	deadline = time.Now().Add(30 * time.Second)
	for {
		st := c.nodes[2].Stats()
		if st.Epoch >= 1 && st.EpochJumps >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stranded durable replica never epoch-jumped: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	jumpEpoch := c.nodes[2].Stats().Epoch

	// Crash again after the jump. The reopened replica must resume in
	// the jumped epoch (the install rode the WAL sidecar), not back
	// in epoch 0.
	if err := c.backends[2].Sync(); err != nil {
		t.Fatal(err)
	}
	c.kill(2)
	c.restart(2)
	if got := c.nodes[2].Stats().Epoch; got < jumpEpoch {
		t.Fatalf("second restart recovered into epoch %d, want ≥ %d (journaled jump)", got, jumpEpoch)
	}
	for i := 0; i < 8; i++ {
		c.submitUntilCommitted(depositTx(n, nonce, i, 1), 30*time.Second)
		nonce++
	}
	deadline = time.Now().Add(45 * time.Second)
	for {
		if bytes.Equal(encodeDump(c.nodes[0].Store()), encodeDump(c.nodes[2].Store())) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("durable replica never reconverged after the journaled jump")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
