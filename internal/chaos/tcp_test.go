// TCP transport chaos: the harness's SimNetwork scenarios model
// network faults; this scenario models the fault SimNetwork cannot —
// a real process crash. A replica's node is stopped and its transport
// torn down mid-load, the committee reconfigures around the silence,
// and a brand-new replica instance (fresh genesis store, same identity
// and address) rejoins over real sockets. Its in-epoch catch-up
// requests reference a DAG the committee has discarded, so the rejoin
// must go through the cross-epoch snapshot protocol — exercising
// MsgSnapshotReq/MsgSnapshot over TCP framing rather than SimNetwork.
package chaos

import (
	"sync"
	"testing"
	"time"

	"thunderbolt/internal/contract"
	"thunderbolt/internal/crypto"
	"thunderbolt/internal/node"
	"thunderbolt/internal/storage"
	"thunderbolt/internal/transport"
	"thunderbolt/internal/types"
	"thunderbolt/internal/workload"
)

const tcpTestAccounts = 16

// tcpCommittee is a 4-replica committee over loopback TCP whose
// members can be killed and re-created individually.
type tcpCommittee struct {
	t        *testing.T
	n        int
	signers  []crypto.Signer
	verifier crypto.Verifier
	peers    map[types.ReplicaID]string
	trs      []*transport.TCPTransport
	nodes    []*node.Node

	mu        sync.Mutex
	committed map[types.Digest]bool
}

func newTCPCommittee(t *testing.T, n int, seed int64) *tcpCommittee {
	t.Helper()
	signers, verifier, err := crypto.InsecureScheme{}.Committee(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	c := &tcpCommittee{
		t: t, n: n, signers: signers, verifier: verifier,
		peers:     make(map[types.ReplicaID]string),
		trs:       make([]*transport.TCPTransport, n),
		nodes:     make([]*node.Node, n),
		committed: make(map[types.Digest]bool),
	}
	// Bind ephemeral listeners first, then distribute the address book.
	for i := 0; i < n; i++ {
		c.trs[i] = c.listen(i, "127.0.0.1:0")
		c.peers[types.ReplicaID(i)] = c.trs[i].Addr()
	}
	for i := 0; i < n; i++ {
		c.trs[i].SetPeers(c.peers)
		c.nodes[i] = c.buildNode(i, c.trs[i])
	}
	t.Cleanup(func() {
		for i := 0; i < n; i++ {
			if c.nodes[i] != nil {
				c.nodes[i].Stop()
			}
			if c.trs[i] != nil {
				_ = c.trs[i].Close()
			}
		}
	})
	return c
}

func (c *tcpCommittee) listen(i int, addr string) *transport.TCPTransport {
	c.t.Helper()
	var (
		tr  *transport.TCPTransport
		err error
	)
	// Re-binding a just-released port can transiently fail; retry
	// briefly (only relevant for restarts on a fixed address).
	for attempt := 0; attempt < 50; attempt++ {
		tr, err = transport.NewTCPTransport(transport.TCPConfig{
			Self: types.ReplicaID(i), Listen: addr,
			DialTimeout: 250 * time.Millisecond, RetryInterval: 50 * time.Millisecond,
		})
		if err == nil {
			return tr
		}
		time.Sleep(20 * time.Millisecond)
	}
	c.t.Fatalf("replica %d could not listen on %s: %v", i, addr, err)
	return nil
}

func (c *tcpCommittee) buildNode(i int, tr *transport.TCPTransport) *node.Node {
	c.t.Helper()
	reg := contract.NewRegistry()
	workload.RegisterSmallBank(reg)
	st := storage.New()
	workload.InitAccounts(st, tcpTestAccounts, 1000, 1000)
	cfg := node.Config{
		ID: types.ReplicaID(i), N: c.n, Transport: tr,
		Signer: c.signers[i], Verifier: c.verifier,
		Registry: reg, Store: st,
		Executors: 2, Validators: 2, BatchSize: 16,
		K:            8,
		TickInterval: 5 * time.Millisecond, MinRoundInterval: 5 * time.Millisecond,
		CommitLogCap: 4096,
	}
	if i == 0 {
		cfg.OnCommitTx = func(tx *types.Transaction, _ time.Time) {
			c.mu.Lock()
			c.committed[tx.ID()] = true
			c.mu.Unlock()
		}
	}
	nd, err := node.New(cfg)
	if err != nil {
		c.t.Fatal(err)
	}
	return nd
}

// kill emulates a process crash: the node stops and its sockets close.
func (c *tcpCommittee) kill(i int) {
	c.nodes[i].Stop()
	_ = c.trs[i].Close()
	c.nodes[i], c.trs[i] = nil, nil
}

// restart brings replica i back as a new process: fresh transport on
// the same address, fresh node with genesis-only state — everything it
// knew died with the crash.
func (c *tcpCommittee) restart(i int) {
	tr := c.listen(i, c.peers[types.ReplicaID(i)])
	tr.SetPeers(c.peers)
	c.trs[i] = tr
	c.nodes[i] = c.buildNode(i, tr)
	c.nodes[i].Start()
}

// submitUntilCommitted drives one deposit to commitment, re-routing by
// the observer's epoch on every retry (the client behaviour across
// reconfigurations).
func (c *tcpCommittee) submitUntilCommitted(tx *types.Transaction, timeout time.Duration) {
	c.t.Helper()
	id := tx.ID()
	smap := types.NewShardMap(c.n)
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		done := c.committed[id]
		c.mu.Unlock()
		if done {
			return
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("tx %s never committed over TCP within %v", id, timeout)
		}
		epoch := c.nodes[0].Stats().Epoch
		shard := smap.ShardOf(workload.CheckingKey(string(tx.Args[0])))
		if nd := c.nodes[node.ProposerOfShard(shard, epoch, c.n)]; nd != nil {
			_ = nd.Submit(tx)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func depositTx(n int, nonce uint64, account int, amount int64) *types.Transaction {
	acct := workload.AccountName(account)
	shard := types.NewShardMap(n).ShardOf(workload.CheckingKey(acct))
	return &types.Transaction{
		Client: 99, Nonce: nonce, Kind: types.SingleShard,
		Shards:   []types.ShardID{shard},
		Contract: workload.ContractDepositChecking,
		Args:     [][]byte{[]byte(acct), contract.EncodeInt64(amount)},
	}
}

func TestScenarioTCPCrashRestartEpochJump(t *testing.T) {
	const n = 4
	c := newTCPCommittee(t, n, 42)
	for _, nd := range c.nodes {
		nd.Start()
	}

	// Phase 1: a healthy baseline burst.
	nonce := uint64(1)
	for i := 0; i < 8; i++ {
		c.submitUntilCommitted(depositTx(n, nonce, i, 1), 30*time.Second)
		nonce++
	}

	// Phase 2: kill replica 2 (process-level: node + sockets), keep
	// committing. Its silence must drive a K-rule reconfiguration that
	// rotates its shard to a live proposer.
	c.kill(2)
	for i := 0; i < 8; i++ {
		c.submitUntilCommitted(depositTx(n, nonce, i, 1), 30*time.Second)
		nonce++
	}
	deadline := time.Now().Add(30 * time.Second)
	for c.nodes[0].Stats().Epoch == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no reconfiguration while replica 2 was down")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Phase 3: restart replica 2 from genesis. It wakes in epoch 0,
	// the committee has discarded that DAG — only a snapshot epoch-jump
	// over TCP can bring it back.
	c.restart(2)
	deadline = time.Now().Add(30 * time.Second)
	for {
		st := c.nodes[2].Stats()
		if st.Epoch >= 1 && st.EpochJumps >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica 2 never epoch-jumped over TCP: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Phase 4: post-rejoin commits, then full state convergence.
	for i := 0; i < 8; i++ {
		c.submitUntilCommitted(depositTx(n, nonce, i, 1), 30*time.Second)
		nonce++
	}
	ref := c.nodes[0].Store()
	deadline = time.Now().Add(30 * time.Second)
	for i := 1; i < n; i++ {
		for {
			diverged := ""
			for _, k := range ref.Keys() {
				a, _ := ref.Get(k)
				b, _ := c.nodes[i].Store().Get(k)
				if !a.Equal(b) {
					diverged = string(k)
					break
				}
			}
			if diverged == "" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica %d never converged (diverges at %s)", i, diverged)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
}
