// Flight-recorder failure-report coverage: the chaos suite's job on
// an invariant failure is to print, for every replica, the tail of
// its protocol-event trace (propose/vote/cert/commit/...). These
// tests exercise that dump path directly — without forcing a real
// scenario to fail — and pin down its contract: one section per live
// node, events in strictly increasing sequence order, and the commit
// path visibly present after committed load.
package chaos

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestFlightDumpOrderedAfterLoad runs committed load and asserts the
// harness flight dump contains a section per node whose event lines
// are strictly sequence-ordered and include the commit path.
func TestFlightDumpOrderedAfterLoad(t *testing.T) {
	h := newHarness(t, Options{N: 4, Seed: 901})
	rep := h.RunLoadAsync(LoadOptions{
		Duration: load(1 * time.Second), Clients: 4,
		Workload: workloadCfg(0.3, 0.2),
	}).Wait()
	if rep.Committed == 0 {
		t.Fatal("no transactions committed; nothing for the recorder to trace")
	}

	dump := h.FlightDump(flightDumpTail)
	for i := 0; i < 4; i++ {
		header := "--- node " + strconv.Itoa(i) + " flight recorder"
		if !strings.Contains(dump, header) {
			t.Fatalf("dump missing section for node %d:\n%s", i, dump)
		}
	}

	// Per section: sequence numbers strictly increase (oldest-first
	// contract), and the commit path shows up in the tail of a
	// healthy committing run.
	sections := strings.Split(dump, "--- node ")[1:]
	if len(sections) != 4 {
		t.Fatalf("want 4 sections, got %d", len(sections))
	}
	for _, sec := range sections {
		lines := strings.Split(strings.TrimSpace(sec), "\n")
		if len(lines) < 2 {
			t.Fatalf("section has no events:\n%s", sec)
		}
		prev := int64(-1)
		sawCommit := false
		for _, line := range lines[1:] { // lines[0] is the header remnant
			if !strings.HasPrefix(line, "#") {
				t.Fatalf("event line missing #seq prefix: %q", line)
			}
			fields := strings.Fields(line)
			seq, err := strconv.ParseInt(strings.TrimPrefix(fields[0], "#"), 10, 64)
			if err != nil {
				t.Fatalf("unparseable seq in %q: %v", line, err)
			}
			if seq <= prev {
				t.Fatalf("events out of order: seq %d after %d in %q", seq, prev, line)
			}
			prev = seq
			if fields[2] == "commit" {
				sawCommit = true
			}
		}
		if !sawCommit {
			t.Errorf("no commit event in the last %d events:\n%s", flightDumpTail, sec)
		}
	}
}

// TestFlightDumpDuringFault takes the dump after a crash/restart
// fault window: the report must render every node's section — the
// victim's recorder keeps its pre-crash history across the
// network-level crash, and that history is the evidence a failure
// report needs.
func TestFlightDumpDuringFault(t *testing.T) {
	h := newHarness(t, Options{N: 4, Seed: 902})
	h.Run([]Event{
		{Name: "crash 2", At: 200 * time.Millisecond,
			Do: []Fault{CrashFault{Victim: 2}}},
		{Name: "restart 2", AfterPrev: 300 * time.Millisecond,
			Do: []Fault{RestartFault{Victim: 2}}},
	})
	rep := h.RunLoadAsync(LoadOptions{
		Duration: load(1 * time.Second), Clients: 4,
		Workload: workloadCfg(0.3, 0.2),
	}).Wait()
	h.WaitSchedule()
	if rep.Committed == 0 {
		t.Fatal("no commits with a single crashed replica (n=4 tolerates f=1)")
	}
	// The crashed node's recorder retains its pre-crash history; the
	// dump must include it — that history is the evidence.
	dump := h.FlightDump(flightDumpTail)
	for i := 0; i < 4; i++ {
		if !strings.Contains(dump, "--- node "+strconv.Itoa(i)+" flight recorder") {
			t.Fatalf("node %d missing from mid-fault dump:\n%s", i, dump)
		}
	}
}
