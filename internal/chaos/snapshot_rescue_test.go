// Mid-epoch chunked snapshot rescue scenarios.
//
// These are the end-to-end proof for the bounded-time rescue story: a
// replica stranded beyond the GC horizon in the middle of an epoch —
// no reconfiguration anywhere in sight (K = K' = 0) — must re-enter
// through the chunked snapshot protocol while the rest of the
// committee keeps committing, and every PR 1 invariant must hold
// afterwards. The ledger is sized (tens of thousands of accounts)
// so the monolithic path is out of the question: the rescue must go
// manifest + chunks, and the incremental pass must spare the chunks
// the victim's own pre-crash state still reproduces.
package chaos

import (
	"sync/atomic"
	"testing"
	"time"

	"thunderbolt/internal/node"
	"thunderbolt/internal/transport"
	"thunderbolt/internal/types"
)

// rescueHorizon / rescueInterval: an aggressive GC horizon with the
// capture cadence inside it (withDefaults clamps the interval to
// horizon − minGCHorizon anyway; 48 ≤ 96 − 40 stays explicit).
const (
	rescueHorizon  = 96
	rescueInterval = 48
)

// rescueOptions configures a committee for mid-epoch rescue: no
// reconfiguration knobs (the rescue must not be bailed out by an
// epoch transition), a small horizon with mid-epoch captures inside
// it, the chunked path forced regardless of ledger size, and round
// production slowed so "beyond the horizon" is reachable in a
// sub-second crash window.
func rescueOptions(seed int64, accounts int) Options {
	return Options{
		N: 4, Seed: seed,
		Accounts:              accounts,
		GCHorizon:             rescueHorizon,
		SnapshotInterval:      rescueInterval,
		SnapChunkRecords:      8192,
		SnapMonolithicRecords: -1, // never monolithic: the point is the chunk protocol
		MinRoundInterval:      10 * time.Millisecond,
	}
}

// strandedBeyondHorizon gates a schedule event on the victim having
// fallen further behind the observer's round frontier than the GC
// horizon (plus slack for the commit lag), i.e. the point where
// in-epoch round-pull is no longer sufficient and only the snapshot
// protocol can bring it back.
func strandedBeyondHorizon(victim int) Trigger {
	return func(h *Harness) bool {
		lag := h.Cluster().Node(0).Stats().Round - h.Cluster().Node(victim).Stats().Round
		return lag > rescueHorizon+64
	}
}

// waitVictimStat polls one stat on the victim until it is non-zero —
// the bounded-budget form of "the rescue happened".
func waitVictimStat(t *testing.T, h *Harness, victim int, name string, get func(node.Stats) uint64) uint64 {
	t.Helper()
	deadline := time.Now().Add(budget)
	for {
		if v := get(h.Cluster().Node(victim).Stats()); v > 0 {
			return v
		}
		if time.Now().After(deadline) {
			st := h.Cluster().Node(victim).Stats()
			t.Fatalf("replica %d: %s still zero after %s (round %d, epoch %d, installs %d, fetched %d, retries %d)",
				victim, name, budget, st.Round, st.Epoch, st.MidEpochInstalls, st.SnapChunksFetched, st.SnapChunkRetries)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestScenarioMidEpochChunkedRescue is the tentpole scenario: a 50k-
// account ledger, one replica network-crashed until it is stranded
// beyond the horizon mid-epoch, then restarted. It must rejoin via a
// chunked mid-epoch install — fetching only the chunks its stale
// state no longer matches — within the liveness budget, while the
// live majority keeps committing, and with zero reconfigurations or
// epoch jumps anywhere in the run.
func TestScenarioMidEpochChunkedRescue(t *testing.T) {
	const victim = 3
	h := newHarness(t, rescueOptions(701, 50_000))
	h.Run([]Event{
		{Name: "crash victim", When: AfterCommits(150),
			Do: []Fault{CrashFault{Victim: victim}}},
		{Name: "restart stranded victim", AfterPrev: 200 * time.Millisecond,
			When: strandedBeyondHorizon(victim),
			Do:   []Fault{RestartFault{Victim: victim}}},
	})
	loadH := h.RunLoadAsync(LoadOptions{
		Duration: load(10 * time.Second), Clients: 8,
		Workload: workloadCfg(0.3, 0.2),
	})
	h.WaitSchedule()

	// The rescue itself, within the budget. With K = 0 a crashed
	// proposer permanently owns its shard, so the closed-loop clients
	// that hit that shard are starved until — and only until — the
	// rescue lands: commit flow resuming and every pending client
	// draining is therefore direct evidence the chunked install put
	// the victim back in business, not a side effect of rotation.
	waitVictimStat(t, h, victim, "MidEpochInstalls", func(s node.Stats) uint64 { return s.MidEpochInstalls })
	check(t, h.WaitCommitGrowth(1, budget))

	rep := loadH.Wait()
	if rep.Committed == 0 {
		t.Fatal("no transactions committed under the rescue schedule")
	}
	check(t, h.WaitNoPendingClients(budget))
	st := h.Cluster().Node(victim).Stats()
	if st.EpochJumps != 0 || h.Cluster().Reconfigurations() != 0 {
		t.Errorf("rescue was not mid-epoch: %d epoch jumps, %d reconfigurations", st.EpochJumps, h.Cluster().Reconfigurations())
	}
	if st.SnapChunksFetched == 0 {
		t.Error("victim installed without fetching any chunk — monolithic path leaked in?")
	}
	if st.SnapChunksSkipped == 0 {
		t.Error("victim fetched every chunk — incremental pass never matched its pre-crash state")
	}
	t.Logf("rescue: %d chunks fetched, %d skipped locally, %d retries",
		st.SnapChunksFetched, st.SnapChunksSkipped, st.SnapChunkRetries)
	quiesceAndCheckAll(t, h)
}

// TestScenarioChunkedRescueCorruptChunks repeats the rescue with a
// wire-level corruptor: the first several MsgSnapChunk payloads on
// the network are bit-flipped, whichever server they come from. Each
// corrupt chunk must cost the victim exactly one verification failure
// and re-request (charged as SnapChunkRetries) — never an install of
// bad state — and the rescue must still complete within the budget
// once the corruptor lets honest payloads through.
func TestScenarioChunkedRescueCorruptChunks(t *testing.T) {
	const victim = 3
	h := newHarness(t, rescueOptions(702, 20_000))
	var corrupted atomic.Int64
	corruptor := func(from, to types.ReplicaID, mt transport.MsgType, payload []byte) ([]byte, bool) {
		if mt != node.MsgSnapChunk || corrupted.Add(1) > 6 {
			return payload, true
		}
		p := append([]byte(nil), payload...)
		p[len(p)-1] ^= 0xFF // the frame tail is chunk payload content
		return p, true
	}
	h.Run([]Event{
		{Name: "arm chunk corruptor", At: 0,
			Do: []Fault{InterceptFault{Fn: corruptor, Desc: "flip tail byte of first 6 snap chunks"}}},
		{Name: "crash victim", When: AfterCommits(150),
			Do: []Fault{CrashFault{Victim: victim}}},
		{Name: "restart stranded victim", AfterPrev: 200 * time.Millisecond,
			When: strandedBeyondHorizon(victim),
			Do:   []Fault{RestartFault{Victim: victim}}},
	})
	loadH := h.RunLoadAsync(LoadOptions{
		Duration: load(10 * time.Second), Clients: 8,
		Workload: workloadCfg(0.3, 0.2),
	})
	h.WaitSchedule()

	waitVictimStat(t, h, victim, "MidEpochInstalls", func(s node.Stats) uint64 { return s.MidEpochInstalls })
	st := h.Cluster().Node(victim).Stats()
	if st.SnapChunkRetries == 0 {
		t.Error("corrupt chunks drew no retries — either never requested or, worse, accepted")
	}
	if st.EpochJumps != 0 || h.Cluster().Reconfigurations() != 0 {
		t.Errorf("rescue was not mid-epoch: %d epoch jumps, %d reconfigurations", st.EpochJumps, h.Cluster().Reconfigurations())
	}
	t.Logf("corrupt-chunk rescue: %d retries, %d fetched, %d skipped",
		st.SnapChunkRetries, st.SnapChunksFetched, st.SnapChunksSkipped)

	rep := loadH.Wait()
	if rep.Committed == 0 {
		t.Fatal("no transactions committed under the corrupt-chunk schedule")
	}
	check(t, h.WaitNoPendingClients(budget))
	quiesceAndCheckAll(t, h)
}
