// Speculative-execution chaos scenarios: prove that the speculation
// layer (node/spec.go) never leaks state when its predictions are
// wrong. An equivocating proposer plus partition pulses make the
// anchor chain diverge from the straight-line prediction — certified
// leader vertices whose support arrives too late are skipped by the
// chain walk, so replicas that predicted them must roll back and
// re-execute cold. The scenario asserts both that the rollbacks
// actually happened (spec_misses > 0: the fault schedule exercised
// the miss path, not just the happy path) and that they were
// invisible (conservation, commit-prefix agreement, bit-identical
// stores across the honest replicas).
package chaos

import (
	"testing"
	"time"

	"thunderbolt/internal/types"
)

// specTotals sums the speculation counters across the listed replicas.
func specTotals(h *Harness, replicas ...int) (hits, misses, wasted uint64) {
	for _, i := range replicas {
		st := h.Cluster().Node(i).Stats()
		hits += st.SpecHits
		misses += st.SpecMisses
		wasted += st.SpecWastedTxs
	}
	return
}

// TestScenarioSpeculationUnderReorg drives a 4-committee where replica
// 3 equivocates at the wire level while partition pulses and a loss
// burst delay certificate propagation among the honest replicas. The
// combination makes predicted leaders miss their f+1 support window —
// the anchor-chain walk then commits a later leader first, which is
// exactly the misprediction the speculation layer must detect and roll
// back. SpecVerify is on, so every hit that does install is re-derived
// cold and proven bit-identical on the spot.
func TestScenarioSpeculationUnderReorg(t *testing.T) {
	h := newHarness(t, Options{N: 4, Seed: 130, Headless: []int{3}, SpecVerify: true})
	byz := newEquivocator(t, h, 3)
	byz.start()

	// Partition pulses split the honest replicas (progress needs all
	// three: the equivocator never votes for anyone else), stalling
	// rounds mid-flight so certificates and support land out of order
	// after each heal. The loss burst stretches the same window.
	h.Run([]Event{
		{Name: "loss burst", At: 200 * time.Millisecond,
			Do: []Fault{LossFault{Rate: 0.15}}},
		{Name: "split honest", At: 500 * time.Millisecond,
			Do: []Fault{PartitionFault{Groups: [][]types.ReplicaID{{0, 1}, {2}, {3}}}}},
		{Name: "heal split", AfterPrev: 300 * time.Millisecond,
			Do: []Fault{HealAllFault{}}},
		{Name: "split again", AfterPrev: 300 * time.Millisecond,
			Do: []Fault{PartitionFault{Groups: [][]types.ReplicaID{{0, 2}, {1}, {3}}}}},
		{Name: "heal all", AfterPrev: 300 * time.Millisecond,
			Do: []Fault{HealAllFault{}, ClearFaultsFault{}}},
	})

	honest := []int{0, 1, 2}
	rep := h.RunLoadAsync(LoadOptions{
		Duration: load(3 * time.Second), Clients: 8,
		Workload: workloadCfg(0.3, 0.3),
		Timeout:  5 * time.Second, // byzantine-shard singles may starve
	}).Wait()
	if rep.Committed == 0 {
		t.Fatal("honest majority committed nothing under the reorg schedule")
	}
	h.WaitSchedule()

	// Safety first: rollbacks must be invisible. Quiesced commit
	// counts, bit-identical stores, prefix-consistent commit logs, and
	// conserved balances across the honest replicas.
	check(t, h.WaitQuiesced(budget, honest...))
	check(t, h.WaitConverged(budget, honest...))
	check(t, h.CheckSafety(honest...))
	check(t, h.CheckConservation(honest...))

	// And the scenario must have exercised the machinery it claims to:
	// speculation ran (hits), and the reorgs actually forced rollbacks
	// (misses). A zero either way means the schedule proved nothing.
	hits, misses, wasted := specTotals(h, honest...)
	t.Logf("speculation under reorg: hits=%d misses=%d wasted_txs=%d", hits, misses, wasted)
	if hits == 0 {
		t.Error("no speculative hits — speculation never engaged under the reorg schedule")
	}
	if misses == 0 {
		t.Error("no speculative misses — the reorg schedule never forced a rollback")
	}
	if byz.pairs.Load() == 0 {
		t.Fatalf("equivocator inactive: %d pairs — scenario exercised nothing", byz.pairs.Load())
	}
}

// TestScenarioSpeculationDisabledEscapeHatch runs the same faulty
// committee with speculation disabled (the -spec=false escape hatch):
// behaviour must be the pre-speculation cold path, with zero spec
// counters and the same invariants.
func TestScenarioSpeculationDisabledEscapeHatch(t *testing.T) {
	h := newHarness(t, Options{N: 4, Seed: 131, SpecExecDepth: -1})
	h.Run([]Event{
		{Name: "isolate 2", At: 300 * time.Millisecond,
			Do: []Fault{IsolateFault{Victim: 2}}},
		{Name: "heal", AfterPrev: 500 * time.Millisecond,
			Do: []Fault{HealAllFault{}}},
	})
	rep := h.RunLoadAsync(LoadOptions{
		Duration: load(2 * time.Second), Clients: 8,
		Workload: workloadCfg(0.3, 0.2),
	}).Wait()
	if rep.Committed == 0 {
		t.Fatal("no transactions committed")
	}
	h.WaitSchedule()
	quiesceAndCheckAll(t, h)
	hits, misses, wasted := specTotals(h, 0, 1, 2, 3)
	if hits != 0 || misses != 0 || wasted != 0 {
		t.Fatalf("speculation disabled but counters moved: hits=%d misses=%d wasted=%d", hits, misses, wasted)
	}
}
