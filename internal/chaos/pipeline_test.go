// Scenario coverage for the pipelined commit path: rounds propose,
// certify, commit, and execute concurrently (round r+1 proposes while
// r certifies and r−1 executes), wire traffic rides coalesced MsgBatch
// frames, and the proposer's batch size adapts to offered load. The
// scenario proves none of that machinery trades away safety: under a
// partition plus a crash/restart the committee must keep exactly one
// committed order (prefix agreement) and conserve every balance.
package chaos

import (
	"testing"
	"time"
)

// TestScenarioPipelinedRoundsPartitionRestart runs sustained load hot
// enough to drive the adaptive batch controller off its floor, while
// one replica is partitioned away and a second crashes and restarts
// mid-stream. Pipelining means commit waves for older rounds execute
// while newer rounds certify; the invariants assert that this
// interleaving never reorders commits across replicas (CheckSafety:
// every pair of commit logs agrees on a common prefix) and never
// tears a transfer (CheckConservation). The epilogue also pins the
// transport-error accounting satellite: in the simulated network,
// unreachable peers drop traffic silently like a real wire, so a send
// *error* can only mean a harness or transport bug — every replica
// must finish the scenario with zero send errors in every class.
func TestScenarioPipelinedRoundsPartitionRestart(t *testing.T) {
	h := newHarness(t, Options{
		N: 4, Seed: 108,
		// Floor low and cap high so the closed-loop backlog visibly
		// grows batches and the post-fault latency spike shrinks them.
		BatchSize: 4, BatchSizeCap: 128,
	})
	h.Run([]Event{
		{Name: "isolate 3", At: 300 * time.Millisecond,
			Do: []Fault{IsolateFault{Victim: 3}}},
		{Name: "crash 1", AfterPrev: 300 * time.Millisecond,
			Do: []Fault{CrashFault{Victim: 1}}},
		{Name: "restart 1", AfterPrev: 600 * time.Millisecond,
			Do: []Fault{RestartFault{Victim: 1}}},
		{Name: "heal all", AfterPrev: 400 * time.Millisecond,
			Do: []Fault{HealAllFault{}}},
	})
	rep := h.RunLoadAsync(LoadOptions{
		Duration: load(2500 * time.Millisecond), Clients: 24,
		Workload: workloadCfg(0.3, 0.2),
	}).Wait()
	if rep.Committed == 0 {
		t.Fatal("no transactions committed through the partition + crash window")
	}
	h.WaitSchedule()
	quiesceAndCheckAll(t, h)

	// The committee kept committing while a quorum of 3 was live and
	// both faulted replicas rejoined the same order; now confirm the
	// pipeline stayed hot enough to exercise adaptation at all.
	var peak uint64
	for i := 0; i < 4; i++ {
		if bs := h.Cluster().Node(i).Stats().BatchSize; bs > peak {
			peak = bs
		}
	}
	if peak <= 4 {
		t.Logf("note: batch size never left the floor (peak %d) — load too light to exercise growth", peak)
	}

	// Transport send errors: drops to crashed/partitioned peers are
	// silent, so any counted error is a real transport failure.
	for i := 0; i < 4; i++ {
		st := h.Cluster().Node(i).Stats()
		if errs := st.TotalSendErrors(); errs != 0 {
			t.Errorf("replica %d counted %d transport send errors (per class: %v) — steady-state sends must never fail",
				i, errs, st.SendErrors)
		}
	}
}
