// Gateway chaos scenarios: the client-facing subsystem under faults.
//
// The plateau scenario is the bounded-dedup acceptance test: waves of
// sessioned gateway load (each wave opens fresh sessions) commit
// thousands of transactions while every node's dedup state stays
// bounded by clients × window — where the old applied map grew by one
// digest per commit forever. A loss burst runs mid-load so the bound
// holds under retransmission pressure, and the full safety/liveness
// invariant suite stays green.
//
// The TCP scenario drives a real gateway.Client over real sockets:
// duplicate resubmits answered with an ack referencing the original
// commit, a proposer crash survived by failover + reconfiguration
// re-route, and a stale-epoch misroute corrected by one wire nack.
package chaos

import (
	"testing"
	"time"

	"thunderbolt/internal/gateway"
	"thunderbolt/internal/node"
	"thunderbolt/internal/transport"
	"thunderbolt/internal/types"
	"thunderbolt/internal/workload"
)

func TestScenarioGatewayDedupPlateau(t *testing.T) {
	const (
		nonceWindow = 64
		waves       = 3
		clients     = 4
	)
	h := newHarness(t, Options{
		N: 4, Seed: 118,
		GatewayClients: clients,
		NonceWindow:    nonceWindow, LegacyDedupWindow: 128,
	})
	h.Run([]Event{
		{Name: "loss burst", At: 200 * time.Millisecond, Do: []Fault{LossFault{Rate: 0.05}}},
		{Name: "clear", AfterPrev: 400 * time.Millisecond, Do: []Fault{ClearFaultsFault{}}},
	})
	var totalCommitted uint64
	for wave := 0; wave < waves; wave++ {
		rep := h.RunLoadAsync(LoadOptions{
			Duration: load(700 * time.Millisecond), Clients: clients,
			Workload:   workloadCfg(0.3, 0.2),
			ViaGateway: true,
		}).Wait()
		totalCommitted += rep.Committed
	}
	h.WaitSchedule()
	check(t, h.WaitQuiesced(budget))
	check(t, h.WaitConverged(budget))
	check(t, h.CheckSafety())
	check(t, h.CheckConservation())
	if totalCommitted < 100 {
		t.Fatalf("only %d commits across %d waves — the plateau claim is untested", totalCommitted, waves)
	}
	// Every wave opened fresh sessions (nonces start at 1 exactly once
	// per session), so the dedup bound is sessions × window — not one
	// entry per committed transaction. Each node may track at most the
	// sessions ever opened; the legacy window stays empty because all
	// gateway traffic is sessioned.
	maxSessions := waves*clients + clients // per-wave sessions + the gateway endpoints' own
	for _, i := range h.Cluster().Replicas() {
		err := h.Cluster().Node(i).Inspect(func(v *node.DebugView) {
			if v.DedupClients > maxSessions {
				t.Errorf("replica %d tracks %d dedup sessions, bound %d — state is not plateauing",
					i, v.DedupClients, maxSessions)
			}
			if v.DedupLegacy != 0 {
				t.Errorf("replica %d holds %d legacy dedup digests under purely sessioned load",
					i, v.DedupLegacy)
			}
		})
		check(t, err)
	}
	if totalCommitted < uint64(maxSessions) {
		t.Fatalf("commit volume (%d) below session bound (%d): plateau not demonstrated", totalCommitted, maxSessions)
	}
}

// gwTCPClient builds a real gateway client over its own TCPTransport
// against a tcpCommittee.
func gwTCPClient(t *testing.T, c *tcpCommittee, session uint64) *gateway.Client {
	t.Helper()
	tr, err := transport.NewTCPTransport(transport.TCPConfig{
		Self:   gateway.ClientIDBase + types.ReplicaID(session),
		Listen: "127.0.0.1:0", Peers: c.peers,
		DialTimeout: 250 * time.Millisecond, RetryInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = tr.Close() })
	gw, err := gateway.NewClient(gateway.ClientConfig{
		Transport: tr, N: c.n, Session: session,
		AckTimeout: 300 * time.Millisecond, RetryEvery: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	return gw
}

// checkTCPSafety asserts no double commit and pairwise prefix
// consistency over the committee's retained commit logs (the live
// subset of replicas).
func checkTCPSafety(t *testing.T, c *tcpCommittee) {
	t.Helper()
	type snap struct {
		start uint64
		log   []node.CommitEntry
	}
	var snaps []snap
	for i := 0; i < c.n; i++ {
		if c.nodes[i] == nil {
			continue
		}
		start, log := c.nodes[i].CommitLog()
		seen := make(map[types.Digest]int, len(log))
		for pos, e := range log {
			if prev, dup := seen[e.ID]; dup {
				t.Fatalf("replica %d double-committed %v at %d and %d", i, e.ID, prev, pos)
			}
			seen[e.ID] = pos
		}
		snaps = append(snaps, snap{start: start, log: log})
	}
	for x := 0; x < len(snaps); x++ {
		for y := x + 1; y < len(snaps); y++ {
			a, b := snaps[x], snaps[y]
			lo := max(a.start, b.start)
			hi := min(a.start+uint64(len(a.log)), b.start+uint64(len(b.log)))
			for s := lo; s < hi; s++ {
				if a.log[s-a.start].ID != b.log[s-b.start].ID {
					t.Fatalf("commit sequences diverge at %d", s)
				}
			}
		}
	}
}

// TestScenarioGatewayTCPClient is the acceptance scenario for the
// wire client protocol over real sockets.
func TestScenarioGatewayTCPClient(t *testing.T) {
	const n = 4
	c := newTCPCommittee(t, n, 77)
	for _, nd := range c.nodes {
		nd.Start()
	}
	gw := gwTCPClient(t, c, 1)
	gen := workload.NewGenerator(workload.Config{
		Accounts: tcpTestAccounts, Shards: n, Seed: 13, Client: 1,
	})

	// Phase 1: plain commit + duplicate resubmit. The duplicate must
	// resolve via an ack referencing the original commit, not a second
	// execution.
	tx := gen.NextForShard(1)
	res, err := gw.SubmitWait(tx, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Duplicate {
		t.Fatal("first submission answered as duplicate")
	}
	dup, err := gw.SubmitWait(tx.Clone(), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Duplicate {
		t.Fatal("TCP duplicate resubmit not answered with an original-commit ack")
	}

	// Phase 2: crash shard 2's proposer (process-level) and submit to
	// that shard. The client fails over past the dead socket; the
	// K-rule reconfiguration rotates the shard to a live proposer and
	// the client's re-route lands the commit.
	c.kill(2)
	tx2 := gen.NextForShard(2)
	res2, err := gw.SubmitWait(tx2, 60*time.Second)
	if err != nil {
		t.Fatalf("submission did not survive the proposer crash: %v", err)
	}
	if res2.Failovers == 0 && res2.Reroutes == 0 {
		t.Fatal("crash-path commit without failover or re-route")
	}

	// Phase 3: a fresh client with stale (epoch 0) routing submits
	// after the reconfiguration: it must be corrected by one wire
	// misroute nack and then commit.
	gw2 := gwTCPClient(t, c, 2)
	gen2 := workload.NewGenerator(workload.Config{
		Accounts: tcpTestAccounts, Shards: n, Seed: 14, Client: 2,
	})
	// Pick a single-shard transaction whose epoch-0 owner is alive but
	// wrong now (shard 0 rotated away from replica 0 at epoch 1).
	tx3 := gen2.NextForShard(0)
	res3, err := gw2.SubmitWait(tx3, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Reroutes == 0 && res3.Failovers == 0 {
		t.Fatal("stale-epoch submission committed without any wire correction")
	}

	// Phase 4: resubmit the transaction that committed through the
	// crash recovery. The session's nonce floor rode the epoch
	// transition with every live replica, so the post-reconfiguration
	// owner answers from the window — no second commit.
	dup2, err := gw.SubmitWait(tx2.Clone(), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !dup2.Duplicate {
		t.Fatal("post-reconfiguration duplicate not answered from the nonce window")
	}
	checkTCPSafety(t, c)
}
