// Fault scheduler: a Schedule is a declarative script of fault events
// executed strictly in order against the running cluster's simulated
// network. Each event fires when all of its gates are satisfied — an
// absolute offset from schedule start (At), a relative offset from
// the previous event (AfterPrev), and/or a cluster-state trigger
// (When). The scheduler polls every few milliseconds; the applied
// sequence is recorded in the harness event log.
package chaos

import (
	"fmt"
	"strings"
	"time"

	"thunderbolt/internal/transport"
	"thunderbolt/internal/types"
)

// Fault is one injectable network fault.
type Fault interface {
	apply(net *transport.SimNetwork)
	String() string
}

// Event is one step of a Schedule.
type Event struct {
	// Name labels the event in logs (optional).
	Name string
	// At gates the event on an absolute offset from schedule start.
	At time.Duration
	// AfterPrev gates the event on an offset from the moment the
	// previous event fired.
	AfterPrev time.Duration
	// When gates the event on cluster state (polled). Nil means no
	// state gate. Combine with At/AfterPrev freely: the event fires
	// once every configured gate is satisfied.
	When Trigger
	// Do is the list of faults applied (in order) when the event fires.
	Do []Fault
}

// Trigger is a polled cluster-state predicate.
type Trigger func(h *Harness) bool

// AfterCommits triggers once the cluster-wide committed-transaction
// count reaches n.
func AfterCommits(n uint64) Trigger {
	return func(h *Harness) bool { return h.cluster.Commits() >= n }
}

// AfterReconfigs triggers once the observer has seen n
// reconfigurations.
func AfterReconfigs(n uint64) Trigger {
	return func(h *Harness) bool { return h.cluster.Reconfigurations() >= n }
}

// Run executes the schedule on a background goroutine. ScheduleDone
// is closed (and Run's handle returned by Wait) when the last event
// has fired or the harness stops.
func (h *Harness) Run(s []Event) {
	done := make(chan struct{})
	h.schedMu.Lock()
	h.schedDone = done
	h.schedMu.Unlock()
	go h.runSchedule(s, done)
}

// WaitSchedule blocks until every scheduled event has fired (or the
// harness was stopped early).
func (h *Harness) WaitSchedule() {
	h.schedMu.Lock()
	done := h.schedDone
	h.schedMu.Unlock()
	if done != nil {
		<-done
	}
}

func (h *Harness) runSchedule(s []Event, done chan struct{}) {
	defer close(done)
	h.mu.Lock()
	start := h.start
	h.mu.Unlock()
	if start.IsZero() {
		start = time.Now()
	}
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	prevFired := start
	for i, ev := range s {
		for {
			now := time.Now()
			ready := now.Sub(start) >= ev.At && now.Sub(prevFired) >= ev.AfterPrev
			if ready && ev.When != nil {
				ready = ev.When(h)
			}
			if ready {
				break
			}
			select {
			case <-tick.C:
			case <-h.stop:
				h.logEvent("schedule aborted before event %d (%s)", i, ev.Name)
				return
			}
		}
		for _, f := range ev.Do {
			f.apply(h.Net())
		}
		prevFired = time.Now()
		name := ev.Name
		if name == "" {
			name = fmt.Sprintf("event %d", i)
		}
		h.logEvent("%s: %s", name, describe(ev.Do))
	}
}

func describe(fs []Fault) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.String()
	}
	return strings.Join(parts, "; ")
}

// --- fault vocabulary ---

// PartitionFault splits the committee into isolated groups.
type PartitionFault struct{ Groups [][]types.ReplicaID }

func (f PartitionFault) apply(net *transport.SimNetwork) { net.Partition(f.Groups...) }
func (f PartitionFault) String() string {
	parts := make([]string, len(f.Groups))
	for i, g := range f.Groups {
		parts[i] = fmt.Sprintf("%v", g)
	}
	return "partition " + strings.Join(parts, "|")
}

// IsolateFault cuts one replica off from every peer.
type IsolateFault struct{ Victim types.ReplicaID }

func (f IsolateFault) apply(net *transport.SimNetwork) { net.Isolate(f.Victim) }
func (f IsolateFault) String() string                  { return fmt.Sprintf("isolate %d", f.Victim) }

// SeverFault cuts one link (both directions unless Directed).
type SeverFault struct {
	A, B     types.ReplicaID
	Directed bool
}

func (f SeverFault) apply(net *transport.SimNetwork) {
	if f.Directed {
		net.Sever(f.A, f.B)
	} else {
		net.SeverBoth(f.A, f.B)
	}
}
func (f SeverFault) String() string {
	arrow := "<->"
	if f.Directed {
		arrow = "->"
	}
	return fmt.Sprintf("sever %d%s%d", f.A, arrow, f.B)
}

// HealAllFault restores every severed link and crashed replica.
type HealAllFault struct{}

func (HealAllFault) apply(net *transport.SimNetwork) { net.HealAll() }
func (HealAllFault) String() string                  { return "heal all" }

// CrashFault makes a replica unreachable (network-level crash: the
// paper's failure model — the process survives, all its traffic
// drops).
type CrashFault struct{ Victim types.ReplicaID }

func (f CrashFault) apply(net *transport.SimNetwork) { net.Crash(f.Victim) }
func (f CrashFault) String() string                  { return fmt.Sprintf("crash %d", f.Victim) }

// RestartFault undoes CrashFault; the replica recovers its missed DAG
// history through the certificate-request protocol.
type RestartFault struct{ Victim types.ReplicaID }

func (f RestartFault) apply(net *transport.SimNetwork) { net.Restart(f.Victim) }
func (f RestartFault) String() string                  { return fmt.Sprintf("restart %d", f.Victim) }

// LossFault sets the global message-loss probability (a packet-loss
// burst when scheduled and later cleared).
type LossFault struct{ Rate float64 }

func (f LossFault) apply(net *transport.SimNetwork) { net.SetLossRate(f.Rate) }
func (f LossFault) String() string                  { return fmt.Sprintf("loss %.0f%%", f.Rate*100) }

// LinkLossFault sets one directed link's loss probability
// (asymmetric loss). Rate < 0 removes the override.
type LinkLossFault struct {
	A, B types.ReplicaID
	Rate float64
}

func (f LinkLossFault) apply(net *transport.SimNetwork) { net.SetLinkLoss(f.A, f.B, f.Rate) }
func (f LinkLossFault) String() string {
	return fmt.Sprintf("loss %d->%d %.0f%%", f.A, f.B, f.Rate*100)
}

// DuplicateFault sets the delivery-duplication probability.
type DuplicateFault struct{ Rate float64 }

func (f DuplicateFault) apply(net *transport.SimNetwork) { net.SetDuplicationRate(f.Rate) }
func (f DuplicateFault) String() string                  { return fmt.Sprintf("dup %.0f%%", f.Rate*100) }

// LatencySpikeFault adds a flat delay to every one-way link.
type LatencySpikeFault struct{ Extra time.Duration }

func (f LatencySpikeFault) apply(net *transport.SimNetwork) { net.SetExtraLatency(f.Extra) }
func (f LatencySpikeFault) String() string                  { return fmt.Sprintf("latency +%s", f.Extra) }

// ClearFaultsFault resets loss, duplication, latency, and message
// interception to the baseline (partitions and crashes are healed by
// HealAllFault).
type ClearFaultsFault struct{}

func (ClearFaultsFault) apply(net *transport.SimNetwork) { net.ClearFaults() }
func (ClearFaultsFault) String() string                  { return "clear loss/dup/latency/intercept" }

// InterceptFault installs a SimNetwork message interceptor — the
// Byzantine fault vocabulary entry: a "lying" replica is modelled by
// rewriting (or dropping) its outbound payloads on the wire. Cleared
// by ClearFaultsFault or a nil Fn.
type InterceptFault struct {
	Fn   transport.Interceptor
	Desc string
}

func (f InterceptFault) apply(net *transport.SimNetwork) { net.SetInterceptor(f.Fn) }
func (f InterceptFault) String() string {
	if f.Desc != "" {
		return "intercept: " + f.Desc
	}
	return "intercept"
}
