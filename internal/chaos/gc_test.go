// Committed-wave GC safety and boundedness scenarios.
//
// GC must be invisible to the PR 1 invariants: with an aggressively
// small retention horizon, partitions and crash/restarts must still
// end in balance conservation, prefix-consistent commit logs, and no
// stranded replica. These scenarios stay within the horizon so that
// in-epoch catch-up alone must recover every victim; outages beyond
// the horizon or across an epoch are the cross-epoch snapshot
// protocol's job, exercised by the reconfiguration and byzantine
// scenarios. The plateau test is the memory bound itself:
// pending-state sizes must level off at the horizon instead of
// growing with rounds.
package chaos

import (
	"testing"
	"time"

	"thunderbolt/internal/node"
	"thunderbolt/internal/types"
)

// gcOptions is the aggressive-horizon configuration: a 64-round
// horizon with round production slowed to ~100 rounds/s, so the fault
// windows below (≤400ms ≈ 40 rounds) stay recoverable within the
// horizon while GC runs continuously during the scenario.
func gcOptions(seed int64) Options {
	return Options{
		N: 4, Seed: seed,
		GCHorizon:        64,
		MinRoundInterval: 10 * time.Millisecond,
	}
}

// assertPruned fails unless committed-wave GC actually reclaims
// rounds on every live replica — guarding against the scenario
// silently passing with GC idle. It waits rather than sampling once:
// a -short run can end with the committed frontier only just past the
// horizon, and the idle rounds after the load window carry the floor
// across within a moment.
func assertPruned(t *testing.T, h *Harness, replicas ...int) {
	t.Helper()
	deadline := time.Now().Add(budget)
	for _, i := range h.replicaList(replicas) {
		for {
			st := h.Cluster().Node(i).Stats()
			if st.PrunedRounds > 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Errorf("replica %d: GC never pruned (round %d) — horizon misconfigured?", i, st.Round)
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestScenarioGCPartitionAndRestart runs the PR 1 fault staples —
// an isolation window, then a crash/restart — with GC at the
// aggressive horizon. Both victims must recover their missed rounds
// from peers that have been pruning the whole time, and every
// invariant must hold at the end.
func TestScenarioGCPartitionAndRestart(t *testing.T) {
	h := newHarness(t, gcOptions(201))
	h.Run([]Event{
		{Name: "isolate 3", At: 400 * time.Millisecond,
			Do: []Fault{IsolateFault{Victim: 3}}},
		{Name: "heal", AfterPrev: 350 * time.Millisecond,
			Do: []Fault{HealAllFault{}}},
		{Name: "crash 1", AfterPrev: 300 * time.Millisecond,
			Do: []Fault{CrashFault{Victim: 1}}},
		{Name: "restart 1", AfterPrev: 350 * time.Millisecond,
			Do: []Fault{RestartFault{Victim: 1}}},
	})
	rep := h.RunLoadAsync(LoadOptions{
		Duration: load(3 * time.Second), Clients: 8,
		Workload: workloadCfg(0.3, 0.2),
	}).Wait()
	if rep.Committed == 0 {
		t.Fatal("no transactions committed under the GC fault schedule")
	}
	h.WaitSchedule()
	quiesceAndCheckAll(t, h)
	assertPruned(t, h)
}

// TestScenarioGCSplitBrainStall repeats the total-stall split-brain
// scenario with the aggressive horizon: during the stall no wave
// commits, so the GC floor must freeze (pruning is keyed to the
// node's own committed frontier) and healing must find every round
// the backlog needs still retained.
func TestScenarioGCSplitBrainStall(t *testing.T) {
	h := newHarness(t, gcOptions(202))
	h.Run([]Event{
		{Name: "split 2|2", When: AfterCommits(80),
			Do: []Fault{PartitionFault{Groups: [][]types.ReplicaID{{0, 1}, {2, 3}}}}},
		{Name: "heal", AfterPrev: 500 * time.Millisecond,
			Do: []Fault{HealAllFault{}}},
	})
	done := h.RunLoadAsync(LoadOptions{
		Duration: load(3 * time.Second), Clients: 8,
		Workload: workloadCfg(0.3, 0.2),
	})
	h.WaitSchedule()
	check(t, h.WaitNoPendingClients(budget))
	done.Wait()
	quiesceAndCheckAll(t, h)
	assertPruned(t, h)
}

// TestGCPendingStatePlateaus is the memory bound: under sustained
// load with a 64-round horizon, the per-epoch maps (DAG vertices,
// pending blocks, vote slots, committed flags) must plateau at the
// horizon instead of growing with the round count. The run spans
// many multiples of the horizon, so unbounded growth would overshoot
// the asserted ceiling several-fold.
func TestGCPendingStatePlateaus(t *testing.T) {
	const horizon = 64
	h := newHarness(t, Options{N: 4, Seed: 203, GCHorizon: horizon})
	loadH := h.RunLoadAsync(LoadOptions{
		Duration: load(6 * time.Second), Clients: 8,
		Workload: workloadCfg(0.3, 0.1),
	})
	// Retained rounds may exceed the horizon by the commit lag (the
	// frontier runs ahead of the last committed leader); allow a full
	// extra horizon plus slack before calling it unbounded.
	const n = 4
	maxRounds := uint64(3*horizon + 32)
	deadline := time.Now().Add(load(6 * time.Second))
	var checked int
	for time.Now().Before(deadline) {
		time.Sleep(250 * time.Millisecond)
		for i := 0; i < n; i++ {
			var dv *node.DebugView
			err := h.Cluster().Node(i).Inspect(func(v *node.DebugView) {
				cp := *v
				dv = &cp
			})
			if err != nil {
				continue
			}
			if dv.GCFloor <= 1 {
				continue // GC has not started; bound not yet in force
			}
			checked++
			if u := uint64(dv.DagVertices); u > n*maxRounds {
				t.Fatalf("replica %d: %d DAG vertices at round %d — not plateauing (floor %d)",
					i, dv.DagVertices, dv.HighestRound, dv.GCFloor)
			}
			if u := uint64(dv.PendingBlocks); u > n*maxRounds {
				t.Fatalf("replica %d: %d pending blocks — not plateauing", i, dv.PendingBlocks)
			}
			if u := uint64(dv.VotedSlots); u > n*maxRounds {
				t.Fatalf("replica %d: %d vote slots — not plateauing", i, dv.VotedSlots)
			}
			if u := uint64(dv.CommittedFlags); u > n*maxRounds {
				t.Fatalf("replica %d: %d committed flags — not plateauing", i, dv.CommittedFlags)
			}
			if lag := dv.HighestRound - dv.GCFloor; uint64(lag) > maxRounds {
				t.Fatalf("replica %d: retained span %d rounds exceeds %d", i, lag, maxRounds)
			}
		}
	}
	rep := loadH.Wait()
	if rep.Committed == 0 {
		t.Fatal("no transactions committed during the plateau run")
	}
	if checked == 0 {
		t.Fatal("GC floor never advanced during the run — no plateau samples taken")
	}
	// The run must have covered enough rounds that unbounded growth
	// would have tripped the ceiling.
	st := h.Cluster().Node(0).Stats()
	if uint64(st.Round) < 2*maxRounds {
		t.Logf("warning: only %d rounds produced; plateau evidence is weak", st.Round)
	}
	quiesceAndCheckAll(t, h)
	assertPruned(t, h)
}
