// Scale and randomized-schedule scenarios.
//
// TestScenarioLargeCommitteeCrashes answers "does any of this still
// hold at n=16": crash faults well inside the f=5 bound, an
// aggressive GC horizon so committed-wave pruning runs continuously,
// and the usual safety/liveness epilogue — plus the pruning plateau
// assertion at committee scale.
//
// TestScenarioFuzzSmoke is the randomized driver: a short run whose
// fault schedule is itself drawn from the master seed, so every CI run
// explores a different (but fully replayable) composition of the fault
// vocabulary. Schedules are recoverable by construction — every fault
// window is healed and cleared before the checks.
package chaos

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"thunderbolt/internal/node"
	"thunderbolt/internal/types"
)

// TestScenarioLargeCommitteeCrashes runs n=16 (f=5) with three
// staggered crash/restart cycles under load and a 64-round GC horizon,
// with round production slowed so the outage windows stay within the
// horizon. Commit liveness, convergence, conservation, and the GC
// plateau must all hold at scale.
func TestScenarioLargeCommitteeCrashes(t *testing.T) {
	const n = 16
	const horizon = 64
	h := newHarness(t, Options{
		N: n, Seed: 112,
		GCHorizon:        horizon,
		MinRoundInterval: 10 * time.Millisecond,
		BatchSize:        32,
	})
	h.Run([]Event{
		{Name: "crash 5", At: 300 * time.Millisecond,
			Do: []Fault{CrashFault{Victim: 5}}},
		{Name: "crash 9", AfterPrev: 150 * time.Millisecond,
			Do: []Fault{CrashFault{Victim: 9}}},
		{Name: "restart 5, crash 13", AfterPrev: 200 * time.Millisecond,
			Do: []Fault{RestartFault{Victim: 5}, CrashFault{Victim: 13}}},
		{Name: "heal all", AfterPrev: 300 * time.Millisecond,
			Do: []Fault{HealAllFault{}}},
	})
	rep := h.RunLoadAsync(LoadOptions{
		Duration: load(3 * time.Second), Clients: 8,
		Workload: workloadCfg(0.3, 0.1),
	}).Wait()
	if rep.Committed == 0 {
		t.Fatal("no transactions committed at n=16 under crash faults")
	}
	h.WaitSchedule()
	quiesceAndCheckAll(t, h)
	// The pruning plateau is only provable once the committed frontier
	// has crossed the horizon. On constrained hardware (race detector,
	// single core) 16-way round production can be too slow to get
	// there within the budget — the safety and liveness checks above
	// still ran in full; only the plateau evidence is then skipped.
	crossed := false
	for deadline := time.Now().Add(budget / 6); time.Now().Before(deadline); {
		if h.Cluster().Node(0).Stats().Round > horizon+16 {
			crossed = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !crossed {
		t.Logf("skipping plateau assertions: only %d rounds produced within the budget (horizon %d)",
			h.Cluster().Node(0).Stats().Round, horizon)
		return
	}
	assertPruned(t, h)
	// The pruning plateau at scale: no replica may retain more than
	// the horizon plus commit lag worth of rounds (same bound as the
	// n=4 plateau test).
	maxSpan := types.Round(3*horizon + 32)
	for i := 0; i < n; i++ {
		err := h.Cluster().Node(i).Inspect(func(v *node.DebugView) {
			if span := v.HighestRound - v.GCFloor; span > maxSpan {
				t.Errorf("replica %d retains %d rounds (floor %d, highest %d) — exceeds plateau %d",
					i, span, v.GCFloor, v.HighestRound, maxSpan)
			}
		})
		check(t, err)
	}
}

// fuzzVocabulary returns one randomly composed, recoverable fault
// window: the fault(s) to apply and the matching undo.
func fuzzVocabulary(rng *rand.Rand, n int) (apply []Fault, undo []Fault, desc string) {
	victim := types.ReplicaID(rng.Intn(n))
	switch rng.Intn(6) {
	case 0:
		return []Fault{IsolateFault{Victim: victim}}, []Fault{HealAllFault{}},
			fmt.Sprintf("isolate %d", victim)
	case 1:
		return []Fault{CrashFault{Victim: victim}}, []Fault{RestartFault{Victim: victim}},
			fmt.Sprintf("crash %d", victim)
	case 2:
		perm := rng.Perm(n)
		groups := [][]types.ReplicaID{{}, {}}
		for i, p := range perm {
			groups[i%2] = append(groups[i%2], types.ReplicaID(p))
		}
		return []Fault{PartitionFault{Groups: groups}}, []Fault{HealAllFault{}}, "partition"
	case 3:
		rate := 0.1 + rng.Float64()*0.2
		return []Fault{LossFault{Rate: rate}}, []Fault{ClearFaultsFault{}},
			fmt.Sprintf("loss %.0f%%", rate*100)
	case 4:
		rate := 0.1 + rng.Float64()*0.2
		return []Fault{DuplicateFault{Rate: rate}}, []Fault{ClearFaultsFault{}},
			fmt.Sprintf("dup %.0f%%", rate*100)
	default:
		extra := time.Duration(1+rng.Intn(2)) * time.Millisecond
		return []Fault{LatencySpikeFault{Extra: extra}}, []Fault{ClearFaultsFault{}},
			fmt.Sprintf("latency +%s", extra)
	}
}

// TestScenarioFuzzSmoke runs a short load under a randomized fault
// schedule. Without CHAOS_SEED the seed is drawn from the clock (and
// logged for replay), so repeated CI runs sweep the schedule space;
// with CHAOS_SEED the schedule, workload, and network decisions all
// replay. The schedule ends fully healed, so the full invariant
// epilogue applies unconditionally.
func TestScenarioFuzzSmoke(t *testing.T) {
	seed := SeedFromEnv(time.Now().UnixNano())
	h := newHarness(t, Options{N: 4, Seed: seed})
	rng := rand.New(rand.NewSource(seed))

	var sched []Event
	windows := 2 + rng.Intn(2)
	at := 200 * time.Millisecond
	for w := 0; w < windows; w++ {
		apply, undo, desc := fuzzVocabulary(rng, 4)
		hold := time.Duration(200+rng.Intn(300)) * time.Millisecond
		sched = append(sched,
			Event{Name: "fuzz " + desc, At: at, Do: apply},
			Event{Name: "undo " + desc, AfterPrev: hold, Do: undo},
		)
		at += hold + time.Duration(100+rng.Intn(200))*time.Millisecond
	}
	sched = append(sched, Event{Name: "final heal", AfterPrev: 50 * time.Millisecond,
		Do: []Fault{HealAllFault{}, ClearFaultsFault{}}})
	h.Run(sched)

	done := h.RunLoadAsync(LoadOptions{
		Duration: load(2 * time.Second), Clients: 8,
		Workload: workloadCfg(0.3, 0.2),
	})
	h.WaitSchedule()
	check(t, h.WaitNoPendingClients(budget))
	rep := done.Wait()
	if rep.Committed == 0 {
		t.Fatal("no transactions committed under the fuzzed schedule")
	}
	quiesceAndCheckAll(t, h)
}
