// Package chaos is the deterministic fault-injection harness: it
// drives a live cluster.Cluster through a declarative schedule of
// network faults (partitions, crashes, loss, duplication, latency
// spikes) while a real workload runs, and checks machine-verifiable
// safety and liveness invariants afterwards.
//
// Every random choice — the workload stream, the network's loss and
// duplication processes, key generation — derives from one master
// seed, printed by every scenario. A failing run is replayed by
// setting CHAOS_SEED to that value; wall-clock interleavings still
// vary between runs, but the injected fault decisions and the
// submitted transactions are identical.
//
// The package is a library, not only a test suite: later performance
// and scaling PRs regress against these scenarios, and new ones are
// a Schedule literal away.
package chaos

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"thunderbolt/internal/cluster"
	"thunderbolt/internal/node"
	"thunderbolt/internal/transport"
	"thunderbolt/internal/workload"
)

// SeedFromEnv returns the chaos master seed: CHAOS_SEED if set (the
// reproduction path), otherwise def.
func SeedFromEnv(def int64) int64 {
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return def
}

// Options assembles a harness.
type Options struct {
	// N is the committee size (default 4).
	N int
	// Mode selects the execution pipeline.
	Mode node.ExecutionMode
	// Seed is the master seed; every derived random process (cluster
	// keys, workload streams, network loss/duplication) feeds from it.
	Seed int64
	// Accounts and InitBalance shape the SmallBank genesis (defaults
	// 64 accounts, 10_000 each). The conservation invariant asserts
	// against Accounts * 2 * InitBalance.
	Accounts    int
	InitBalance int64
	// K / KPrime are the reconfiguration knobs (node.Config).
	K, KPrime int
	// BatchSize caps transactions per block (default 64). BatchSizeCap
	// bounds adaptive batch growth above it (0 = node default of
	// 4x BatchSize; negative disables adaptation).
	BatchSize    int
	BatchSizeCap int
	// Latency is the network model (default: tight LAN jitter).
	Latency transport.LatencyModel
	// TickInterval paces node housekeeping — also the fault-recovery
	// retry cadence (default 5ms, aggressive for test turnaround).
	TickInterval time.Duration
	// MinRoundInterval throttles round advancement (default: node's
	// 1ms). GC scenarios raise it so an outage's missed-round count
	// stays related to the configured horizon.
	MinRoundInterval time.Duration
	// SpecExecDepth bounds each node's speculative-execution pipeline
	// (node.Config.SpecExecDepth): 0 = default (on), negative disables.
	SpecExecDepth int
	// SpecVerify re-derives every speculative hit cold at install time
	// (node.Config.SpecVerify) — speculation scenarios turn it on so a
	// hit is a proven equivalence, not an assumption.
	SpecVerify bool
	// GCHorizon sets each node's committed-wave GC retention horizon
	// in rounds (0 = node default, negative disables).
	GCHorizon int
	// SnapshotInterval is the mid-epoch snapshot capture cadence in
	// committed leader rounds (node.Config.SnapshotInterval): 0 =
	// default, negative disables. Rescue scenarios set it small so a
	// stranded replica finds a fresh snapshot quickly.
	SnapshotInterval int
	// SnapChunkRecords / SnapMonolithicRecords / SnapChunkServeBudget
	// shape chunked snapshot transfer (node.Config); 0 = defaults.
	// Scenarios force the chunked path with SnapMonolithicRecords = -1.
	SnapChunkRecords      int
	SnapMonolithicRecords int
	SnapChunkServeBudget  int
	// Headless lists replica indices to leave without a node: their
	// SimNetwork endpoints are free for a wire-level Byzantine driver
	// (see the equivocating-proposer scenario). Replica 0 must stay
	// live (it is the harness observer).
	Headless []int
	// GatewayClients reserves wire-client endpoints on the simulated
	// network (cluster.Config.GatewayClients) so scenarios can drive
	// load through the sessioned gateway protocol.
	GatewayClients int
	// NonceWindow sets each node's per-client dedup window
	// (node.Config.NonceWindow); 0 = gateway default. Scenarios use
	// small windows so plateau assertions bite.
	NonceWindow int
	// LegacyDedupWindow bounds the nonce-less digest dedup window.
	LegacyDedupWindow int
	// SessionIdleEpochs enables deterministic idle-session expiry at
	// epoch transitions (cluster.Config.SessionIdleEpochs; 0 = off).
	SessionIdleEpochs int
	// DataDir gives every replica a durable WAL storage backend under
	// per-replica subdirectories (cluster.Config.DataDir); restart
	// scenarios then recover state from disk. WALNoSync skips fsync
	// for test turnaround.
	DataDir   string
	WALNoSync bool
}

func (o Options) withDefaults() Options {
	if o.N <= 0 {
		o.N = 4
	}
	if o.Accounts <= 0 {
		o.Accounts = 64
	}
	if o.InitBalance == 0 {
		o.InitBalance = 10_000
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
	if o.Latency == nil {
		o.Latency = transport.UniformLatency(50*time.Microsecond, 300*time.Microsecond)
	}
	if o.TickInterval <= 0 {
		o.TickInterval = 5 * time.Millisecond
	}
	return o
}

// Harness wires a cluster to the fault scheduler and the invariant
// checkers.
type Harness struct {
	opt     Options
	cluster *cluster.Cluster

	// expectedTotal is the genesis total balance the conservation
	// invariant asserts (valid under conserving workloads).
	expectedTotal int64

	mu     sync.Mutex
	start  time.Time
	events []string // applied-fault log for failure reports

	schedMu   sync.Mutex
	schedDone chan struct{}
	stop      chan struct{}
	stopOnce  sync.Once
}

// New assembles (but does not start) a harness and its cluster. Node
// commit logs are enabled so the commit-sequence invariants have
// evidence to check.
func New(opt Options) (*Harness, error) {
	opt = opt.withDefaults()
	c, err := cluster.New(cluster.Config{
		N: opt.N, Mode: opt.Mode, Latency: opt.Latency,
		Accounts: opt.Accounts, InitBalance: opt.InitBalance,
		Executors: 2, Validators: 2,
		BatchSize: opt.BatchSize, BatchSizeCap: opt.BatchSizeCap,
		K: opt.K, KPrime: opt.KPrime,
		TickInterval: opt.TickInterval, MinRoundInterval: opt.MinRoundInterval,
		SpecExecDepth: opt.SpecExecDepth, SpecVerify: opt.SpecVerify,
		GCHorizon: opt.GCHorizon, Seed: opt.Seed,
		SnapshotInterval:      opt.SnapshotInterval,
		SnapChunkRecords:      opt.SnapChunkRecords,
		SnapMonolithicRecords: opt.SnapMonolithicRecords,
		SnapChunkServeBudget:  opt.SnapChunkServeBudget,
		CommitLogCap:          1 << 20,
		Headless:              opt.Headless,
		GatewayClients:        opt.GatewayClients,
		NonceWindow:           opt.NonceWindow,
		LegacyDedupWindow:     opt.LegacyDedupWindow,
		SessionIdleEpochs:     opt.SessionIdleEpochs,
		DataDir:               opt.DataDir,
		WALNoSync:             opt.WALNoSync,
	})
	if err != nil {
		return nil, err
	}
	return &Harness{
		opt:           opt,
		cluster:       c,
		expectedTotal: int64(opt.Accounts) * 2 * opt.InitBalance,
		stop:          make(chan struct{}),
	}, nil
}

// Cluster exposes the cluster under test.
func (h *Harness) Cluster() *cluster.Cluster { return h.cluster }

// Net exposes the simulated network for ad-hoc fault injection.
func (h *Harness) Net() *transport.SimNetwork { return h.cluster.Network() }

// Seed returns the master seed (for failure reports).
func (h *Harness) Seed() int64 { return h.opt.Seed }

// Start launches the cluster and stamps the schedule clock.
func (h *Harness) Start() {
	h.mu.Lock()
	h.start = time.Now()
	h.mu.Unlock()
	h.cluster.Start()
}

// Stop halts the scheduler and tears the cluster down.
func (h *Harness) Stop() {
	h.stopOnce.Do(func() { close(h.stop) })
	h.schedMu.Lock()
	done := h.schedDone
	h.schedMu.Unlock()
	if done != nil {
		<-done
	}
	h.cluster.Stop()
}

// logEvent appends one line to the applied-fault log.
func (h *Harness) logEvent(format string, args ...any) {
	h.mu.Lock()
	defer h.mu.Unlock()
	at := time.Duration(0)
	if !h.start.IsZero() {
		at = time.Since(h.start).Round(time.Millisecond)
	}
	h.events = append(h.events, fmt.Sprintf("[%8s] %s", at, fmt.Sprintf(format, args...)))
}

// EventLog returns the applied-fault log: what fired, when. Scenario
// failure reports print it next to the seed.
func (h *Harness) EventLog() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.events...)
}

// FlightDump renders the last `last` flight-recorder events of every
// live replica, one "--- node i flight recorder ---" section each.
// Failure reports print it beside the seed and fault log: the fault
// log says what the harness did, the flight dump says what each node
// was doing (protocol-event level) when the invariant broke.
func (h *Harness) FlightDump(last int) string {
	var b strings.Builder
	for i := 0; i < h.cluster.N(); i++ {
		n := h.cluster.Node(i)
		if n == nil {
			continue
		}
		fmt.Fprintf(&b, "--- node %d flight recorder (last %d) ---\n", i, last)
		b.WriteString(n.Flight().Dump(last))
	}
	return b.String()
}

// LoadOptions parameterizes RunLoadAsync. The zero value is a usable
// conserving mixed workload.
type LoadOptions struct {
	// Duration of the closed-loop load (default 1s).
	Duration time.Duration
	// Clients is the number of closed-loop clients (default 8).
	Clients int
	// Workload overrides the generator config. Conserving is forced on
	// (the conservation invariant depends on it); Shards, Accounts,
	// and Seed come from the harness.
	Workload workload.Config
	// RetryEvery/Timeout bound one transaction's client-side life
	// (defaults 250ms / 60s — retry aggressively, never give up within
	// a scenario).
	RetryEvery time.Duration
	Timeout    time.Duration
	// ViaGateway drives the load through gateway wire clients
	// (requires Options.GatewayClients > 0).
	ViaGateway bool
}

// LoadHandle is a running background load.
type LoadHandle struct {
	done chan struct{}
	rep  cluster.Report
}

// Wait blocks until the load window closes and returns the report.
func (l *LoadHandle) Wait() cluster.Report {
	<-l.done
	return l.rep
}

// RunLoadAsync drives a conserving workload through cluster.RunLoad
// on a background goroutine, so fault schedules overlap the load.
func (h *Harness) RunLoadAsync(lo LoadOptions) *LoadHandle {
	if lo.Duration <= 0 {
		lo.Duration = time.Second
	}
	if lo.Clients <= 0 {
		lo.Clients = 8
	}
	if lo.RetryEvery <= 0 {
		lo.RetryEvery = 250 * time.Millisecond
	}
	if lo.Timeout <= 0 {
		lo.Timeout = 60 * time.Second
	}
	lo.Workload.Conserving = true
	lc := cluster.LoadConfig{
		Duration: lo.Duration, Clients: lo.Clients,
		Workload:   lo.Workload,
		RetryEvery: lo.RetryEvery, Timeout: lo.Timeout,
		ViaGateway: lo.ViaGateway,
	}
	l := &LoadHandle{done: make(chan struct{})}
	h.logEvent("load: %d clients for %s (cross=%.0f%%, reads=%.0f%%)",
		lo.Clients, lo.Duration, lo.Workload.CrossPct*100, lo.Workload.ReadRatio*100)
	go func() {
		defer close(l.done)
		l.rep = h.cluster.RunLoad(lc)
	}()
	return l
}
