package node

import (
	"testing"
	"time"

	"thunderbolt/internal/contract"
	"thunderbolt/internal/crypto"
	"thunderbolt/internal/gateway"
	"thunderbolt/internal/storage"
	"thunderbolt/internal/transport"
	"thunderbolt/internal/types"
	"thunderbolt/internal/workload"
)

// gwFixture builds n unstarted nodes plus one reserved client
// endpoint on a zero-latency SimNetwork. Node methods are called
// directly (no event loop), which is safe single-threaded; replies
// travel the simulated wire to the client endpoint.
type gwFixture struct {
	nodes  []*Node
	client transport.Transport
	recv   chan gwMsg
}

type gwMsg struct {
	mt      transport.MsgType
	payload []byte
}

func newGwFixture(t *testing.T, n int) *gwFixture {
	t.Helper()
	signers, verifier, err := crypto.InsecureScheme{}.Committee(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewSimNetwork(transport.SimConfig{N: n + 1, Committee: n})
	t.Cleanup(net.Close)
	f := &gwFixture{client: net.Endpoint(types.ReplicaID(n)), recv: make(chan gwMsg, 64)}
	f.client.SetHandler(func(_ types.ReplicaID, mt transport.MsgType, payload []byte) {
		f.recv <- gwMsg{mt: mt, payload: append([]byte(nil), payload...)}
	})
	for i := 0; i < n; i++ {
		reg := contract.NewRegistry()
		workload.RegisterSmallBank(reg)
		st := storage.New()
		workload.InitAccounts(st, 8, 100, 100)
		nd, err := New(Config{
			ID: types.ReplicaID(i), N: n,
			Transport: net.Endpoint(types.ReplicaID(i)),
			Signer:    signers[i], Verifier: verifier,
			Registry: reg, Store: st,
			NonceWindow: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		f.nodes = append(f.nodes, nd)
	}
	return f
}

// wait pulls the next gateway reply off the simulated wire.
func (f *gwFixture) wait(t *testing.T) gwMsg {
	t.Helper()
	select {
	case m := <-f.recv:
		return m
	case <-time.After(2 * time.Second):
		t.Fatal("no gateway reply within 2s")
		return gwMsg{}
	}
}

func (f *gwFixture) clientID() types.ReplicaID {
	return f.client.Self()
}

func sessTx(client, nonce uint64, shard types.ShardID) *types.Transaction {
	return &types.Transaction{
		Client: client, Nonce: nonce,
		Kind: types.SingleShard, Shards: []types.ShardID{shard},
		Contract: workload.ContractGetBalance,
		Args:     [][]byte{[]byte(workload.AccountName(0))},
	}
}

// TestGatewaySubmitAckCommitDuplicate drives the full answer matrix
// of one submission: accepted → committed notification → duplicate
// resubmit answered with an ack referencing the original resolution.
func TestGatewaySubmitAckCommitDuplicate(t *testing.T) {
	f := newGwFixture(t, 4)
	nd := f.nodes[1] // serves shard 1 in epoch 0
	tx := sessTx(42, 1, 1)

	nd.handleTxSubmit(f.clientID(), tx)
	m := f.wait(t)
	if m.mt != gateway.MsgTxAck {
		t.Fatalf("got message type %d, want ack", m.mt)
	}
	var ack gateway.Ack
	if err := ack.Unmarshal(m.payload); err != nil {
		t.Fatal(err)
	}
	if ack.Status != gateway.AckAccepted || ack.TxID != tx.ID() {
		t.Fatalf("unexpected ack %+v", ack)
	}
	if len(nd.txQueue) != 1 {
		t.Fatalf("queue holds %d transactions, want 1", len(nd.txQueue))
	}

	// Commit it: the waiting wire client must be notified.
	nd.markCommitted(tx, time.Now())
	m = f.wait(t)
	if m.mt != gateway.MsgTxCommitted {
		t.Fatalf("got message type %d, want committed", m.mt)
	}
	var cm gateway.Committed
	if err := cm.Unmarshal(m.payload); err != nil {
		t.Fatal(err)
	}
	if cm.TxID != tx.ID() || cm.Client != 42 || cm.Nonce != 1 {
		t.Fatalf("unexpected committed %+v", cm)
	}

	// Duplicate resubmit below the floor: an ack referencing the
	// original commit, and nothing re-enqueued.
	nd.handleTxSubmit(f.clientID(), tx)
	m = f.wait(t)
	if m.mt != gateway.MsgTxAck {
		t.Fatalf("duplicate answered with type %d, want ack", m.mt)
	}
	if err := ack.Unmarshal(m.payload); err != nil {
		t.Fatal(err)
	}
	if ack.Status != gateway.AckResolved || ack.TxID != tx.ID() {
		t.Fatalf("duplicate ack %+v, want resolved referencing %s", ack, tx.ID())
	}
	if len(nd.txQueue) != 1 {
		t.Fatalf("duplicate re-entered the queue (%d entries)", len(nd.txQueue))
	}
}

// TestGatewayMisrouteNack: a submission to the wrong proposer is
// answered with a wire nack naming the right one.
func TestGatewayMisrouteNack(t *testing.T) {
	f := newGwFixture(t, 4)
	tx := sessTx(42, 1, 2) // shard 2 belongs to replica 2 in epoch 0
	f.nodes[0].handleTxSubmit(f.clientID(), tx)
	m := f.wait(t)
	if m.mt != gateway.MsgTxNack {
		t.Fatalf("misroute answered with type %d, want nack", m.mt)
	}
	var nk gateway.Nack
	if err := nk.Unmarshal(m.payload); err != nil {
		t.Fatal(err)
	}
	if nk.Reason != gateway.NackMisroute || nk.Proposer != 2 {
		t.Fatalf("nack %+v, want misroute with hint 2", nk)
	}
	if len(f.nodes[0].txQueue) != 0 {
		t.Fatal("misrouted transaction entered the queue")
	}
}

// TestGatewayOutOfWindowNack: a nonce more than a window ahead of the
// client's floor is refused so server state stays bounded.
func TestGatewayOutOfWindowNack(t *testing.T) {
	f := newGwFixture(t, 4)
	nd := f.nodes[1]
	tx := sessTx(42, 100, 1) // window is 64, floor is 0
	nd.handleTxSubmit(f.clientID(), tx)
	m := f.wait(t)
	if m.mt != gateway.MsgTxNack {
		t.Fatalf("out-of-window answered with type %d, want nack", m.mt)
	}
	var nk gateway.Nack
	if err := nk.Unmarshal(m.payload); err != nil {
		t.Fatal(err)
	}
	if nk.Reason != gateway.NackOutOfWindow {
		t.Fatalf("nack reason %d, want out-of-window", nk.Reason)
	}
	if len(nd.txQueue) != 0 {
		t.Fatal("out-of-window transaction entered the queue")
	}
	// Once earlier nonces resolve the same submission is admitted.
	for n := uint64(1); n <= 40; n++ {
		nd.markCommitted(sessTx(42, n, 1), time.Now())
	}
	nd.handleTxSubmit(f.clientID(), tx)
	for {
		m = f.wait(t)
		if m.mt == gateway.MsgTxAck {
			break
		}
	}
	var ack gateway.Ack
	if err := ack.Unmarshal(m.payload); err != nil {
		t.Fatal(err)
	}
	if ack.Status != gateway.AckAccepted {
		t.Fatalf("post-backoff resubmit: ack %+v, want accepted", ack)
	}
}

// TestGatewayWindowSurvivesEpochJump: the per-client window rides the
// transition snapshot, so a replica that recovers by epoch jump — the
// same path a crashed-and-restarted-from-genesis process takes —
// answers duplicates and admissions exactly like the committee.
func TestGatewayWindowSurvivesEpochJump(t *testing.T) {
	f := newGwFixture(t, 4)
	// Donors 1 and 2 resolve a sessioned history: nonces 1..3 plus an
	// out-of-order 6 (floor 3, bit set at 6).
	history := []*types.Transaction{
		sessTx(42, 1, 1), sessTx(42, 2, 1), sessTx(42, 3, 1), sessTx(42, 6, 1),
	}
	for _, nd := range f.nodes[1:3] {
		for _, tx := range history {
			nd.dedup.Mark(tx)
		}
		nd.nm.committedTxs.Add(uint64(len(history)))
		nd.captureSnapshot(2)
	}
	victim := f.nodes[0] // fresh state: what a restarted process holds
	victim.handleSnapshot(1, signedSnap(f.nodes[1]))
	victim.handleSnapshot(2, signedSnap(f.nodes[2]))
	if victim.epoch != 2 {
		t.Fatalf("no epoch jump (epoch %d)", victim.epoch)
	}
	if victim.dedup.Clients() != 1 {
		t.Fatalf("sessions not installed: %d clients", victim.dedup.Clients())
	}
	for _, tx := range history {
		if !victim.dedup.Resolved(tx) {
			t.Fatalf("nonce %d lost across the jump", tx.Nonce)
		}
	}
	if got := victim.dedup.Admit(sessTx(42, 4, 1)); got != gateway.AdmitNew {
		t.Fatalf("gap nonce 4 after jump: got %v, want new", got)
	}
	if got := victim.dedup.Admit(sessTx(42, 3+65, 1)); got != gateway.AdmitFuture {
		t.Fatalf("out-of-window after jump: got %v, want future", got)
	}
	// The jumper's own next capture must match the donors' — verbatim
	// restore keeps dedup state bit-identical. (Donors transitioned in
	// the real protocol right after capturing; mirror that here so
	// both sides capture epoch 3 from epoch 2.)
	donor := f.nodes[1]
	donor.epoch = 2
	victim.captureSnapshot(3)
	donor.captureSnapshot(3)
	if victim.lastSnap.Digest() != donor.lastSnap.Digest() {
		t.Fatal("post-jump capture diverges from an honest peer's")
	}
}

// TestGatewaySnapshotRejectsWindowMismatch: dedup configuration is
// part of the committee contract; a snapshot built under a different
// window must not install.
func TestGatewaySnapshotRejectsWindowMismatch(t *testing.T) {
	f := newGwFixture(t, 4)
	for _, nd := range f.nodes[1:3] {
		nd.captureSnapshot(2)
		nd.lastSnap.DedupWindow = 128 // forged/misconfigured window
	}
	victim := f.nodes[0]
	victim.handleSnapshot(1, signedSnap(f.nodes[1]))
	victim.handleSnapshot(2, signedSnap(f.nodes[2]))
	if victim.epoch != 0 {
		t.Fatal("installed a snapshot with a mismatched dedup window")
	}
}
