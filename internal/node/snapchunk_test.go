package node

import (
	"testing"
	"time"

	"thunderbolt/internal/contract"
	"thunderbolt/internal/crypto"
	"thunderbolt/internal/storage"
	"thunderbolt/internal/transport"
	"thunderbolt/internal/tusk"
	"thunderbolt/internal/types"
	"thunderbolt/internal/workload"
)

// chunkTestNodes builds n unstarted nodes with a ledger large enough
// to exercise the chunked snapshot path: the monolithic threshold is
// forced off and chunks are cut tiny, so every capture is a manifest
// plus a multi-chunk body. Methods are called directly; transport
// deliveries land in each node's inbox and are drained explicitly.
func chunkTestNodes(t *testing.T, n, accounts int) ([]*Node, *transport.SimNetwork) {
	t.Helper()
	signers, verifier, err := crypto.InsecureScheme{}.Committee(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewSimNetwork(transport.SimConfig{N: n})
	t.Cleanup(net.Close)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		reg := contract.NewRegistry()
		workload.RegisterSmallBank(reg)
		st := storage.New()
		workload.InitAccounts(st, accounts, 100, 100)
		nd, err := New(Config{
			ID: types.ReplicaID(i), N: n,
			Transport: net.Endpoint(types.ReplicaID(i)),
			Signer:    signers[i], Verifier: verifier,
			Registry: reg, Store: st,
			CommitLogCap:          1024,
			SnapChunkRecords:      8,
			SnapMonolithicRecords: -1, // force the chunked path
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
	}
	return nodes, net
}

// countInbox counts queued (undrained) messages of one type.
func countInbox(nd *Node, mt transport.MsgType) int {
	nd.inboxMu.Lock()
	defer nd.inboxMu.Unlock()
	c := 0
	for _, m := range nd.inboxQ {
		if m.mt == mt {
			c++
		}
	}
	return c
}

// waitInbox polls until nd has at least want queued messages of type
// mt (SimNetwork delivery is asynchronous).
func waitInbox(t *testing.T, nd *Node, mt transport.MsgType, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for countInbox(nd, mt) < want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d messages of type %d (have %d)",
				want, mt, countInbox(nd, mt))
		}
		time.Sleep(time.Millisecond)
	}
}

// seedMidEpochDonor gives a donor committed state at leader round
// endRound and a mid-epoch capture of it.
func seedMidEpochDonor(nd *Node, endRound types.Round, balance int64, txs ...*types.Transaction) {
	applyTestCommits(nd, balance, txs...)
	nd.committer = tusk.NewCommitterAt(nd.dagStore, nd.n, endRound)
	nd.capture(nd.epoch)
}

func TestMidEpochCaptureCadence(t *testing.T) {
	nodes, _ := snapTestNodes(t, 4)
	nd := nodes[0]
	iv := types.Round(nd.cfg.SnapshotInterval)

	nd.maybeCaptureMidEpoch(iv - 1)
	if nd.lastSnap != nil {
		t.Fatal("captured below the first interval boundary")
	}
	nd.maybeCaptureMidEpoch(iv + 1)
	if nd.lastSnap == nil {
		t.Fatal("no capture after crossing the interval boundary")
	}
	if s := nd.lastSnap; s.Epoch != s.PrevEpoch {
		t.Fatalf("mid-epoch capture not marked as such: epoch %d prev %d", s.Epoch, s.PrevEpoch)
	}
	if got := nd.Stats().MidEpochCaptures; got != 1 {
		t.Fatalf("MidEpochCaptures = %d, want 1", got)
	}
	// Later waves inside the same interval window must not re-capture.
	nd.maybeCaptureMidEpoch(iv + 3)
	if got := nd.Stats().MidEpochCaptures; got != 1 {
		t.Fatalf("re-captured within one interval window (%d captures)", got)
	}
	nd.maybeCaptureMidEpoch(2*iv + 1)
	if got := nd.Stats().MidEpochCaptures; got != 2 {
		t.Fatalf("MidEpochCaptures = %d after second boundary, want 2", got)
	}

	// Determinism: a second replica with the same committed state
	// captures the same mid-epoch digest.
	other := nodes[1]
	other.maybeCaptureMidEpoch(iv + 1)
	if other.lastSnap == nil || other.lastSnap.Digest() != nd.lastSnap.Digest() {
		t.Fatal("identical state captured different mid-epoch digests")
	}
}

func TestMidEpochChunkedInstall(t *testing.T) {
	nodes, _ := chunkTestNodes(t, 4, 64)
	victim := nodes[0]
	txs := []*types.Transaction{legacyTx("c1"), legacyTx("c2")}
	for _, nd := range nodes[1:3] {
		seedMidEpochDonor(nd, 100, 555, txs...)
	}
	donor := nodes[1]
	if donor.lastSnap.Complete() {
		t.Fatal("fixture broken: capture should be manifest-only")
	}
	wantChunks := len(donor.lastSnap.ChunkDigests)
	if wantChunks < 4 {
		t.Fatalf("fixture broken: only %d chunks", wantChunks)
	}

	// Two donors answer a manifest request; f+1 = 2 matching signers
	// start the chunked fetch.
	nodes[1].serveSnapshot(0, 0, 0)
	nodes[2].serveSnapshot(0, 0, 0)
	waitInbox(t, victim, MsgSnapManifest, 2)
	victim.drainInbox()
	if victim.fetch == nil {
		t.Fatal("manifest quorum did not start a chunk fetch")
	}

	// Drive fetch + serve until the install lands: chunk requests sit
	// in donor inboxes until drained, replies in the victim's.
	deadline := time.Now().Add(5 * time.Second)
	for victim.Stats().MidEpochInstalls == 0 {
		if time.Now().After(deadline) {
			t.Fatal("chunked rescue never completed")
		}
		time.Sleep(time.Millisecond)
		for _, nd := range nodes {
			nd.drainInbox()
		}
		victim.pumpChunkFetch()
	}

	st := victim.Stats()
	if st.EpochJumps != 0 {
		t.Fatalf("mid-epoch install counted as an epoch jump: %+v", st)
	}
	// Incremental rescue: genesis already matches most chunks — only
	// the chunk carrying the changed account should have been fetched.
	if st.SnapChunksSkipped == 0 {
		t.Fatal("no chunks skipped despite matching local state")
	}
	if st.SnapChunksFetched == 0 {
		t.Fatal("no chunks fetched")
	}
	if got := st.SnapChunksSkipped + st.SnapChunksFetched; got != uint64(wantChunks) {
		t.Fatalf("skipped %d + fetched %d != %d chunks", st.SnapChunksSkipped, st.SnapChunksFetched, wantChunks)
	}
	v, _ := victim.cfg.Store.Get(workload.CheckingKey(workload.AccountName(0)))
	if got, err := contract.DecodeInt64(v); err != nil || got != 555 {
		t.Fatalf("ledger not installed: balance %d (%v)", got, err)
	}
	for _, tx := range txs {
		if !victim.dedup.Resolved(tx) {
			t.Fatal("dedup state not installed")
		}
	}
	// Re-anchored mid-epoch: base = EndRound − minGCHorizon, odd.
	wantBase := types.Round(100 - minGCHorizon)
	if wantBase%2 == 0 {
		wantBase--
	}
	if victim.dagStore.Base() != wantBase || victim.committer.LastLeaderRound() < wantBase {
		t.Fatalf("not re-anchored: base %d (want %d), last leader %d",
			victim.dagStore.Base(), wantBase, victim.committer.LastLeaderRound())
	}
	if victim.epoch != 0 {
		t.Fatalf("mid-epoch install changed the epoch to %d", victim.epoch)
	}
	if victim.lastSnapAt != 100 {
		t.Fatalf("capture cadence not suppressed past the snapshot (lastSnapAt %d)", victim.lastSnapAt)
	}
	// The rescued replica serves the snapshot onward, chunks included.
	if victim.lastSnap == nil || victim.lastSnap.Digest() != donor.lastSnap.Digest() {
		t.Fatal("installed snapshot not retained for serving")
	}
	if len(victim.snapChunks) != wantChunks {
		t.Fatalf("retained %d chunk payloads, want %d", len(victim.snapChunks), wantChunks)
	}
	for i, c := range victim.snapChunks {
		if len(c) == 0 {
			t.Fatalf("chunk %d payload empty after install", i)
		}
	}
	start, log := victim.CommitLog()
	if start != donor.lastSnap.Commits || len(log) != 0 {
		t.Fatalf("commit log not re-anchored: start %d, %d entries", start, len(log))
	}
}

func TestChunkFetchCorruptChunkRetried(t *testing.T) {
	nodes, _ := chunkTestNodes(t, 4, 64)
	victim := nodes[0]
	for _, nd := range nodes[1:3] {
		seedMidEpochDonor(nd, 100, 777)
	}
	nodes[1].serveSnapshot(0, 0, 0)
	nodes[2].serveSnapshot(0, 0, 0)
	waitInbox(t, victim, MsgSnapManifest, 2)
	victim.drainInbox()
	f := victim.fetch
	if f == nil {
		t.Fatal("fetch did not start")
	}
	idx := -1
	for i, done := range f.done {
		if !done {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("fixture broken: nothing left to fetch")
	}

	// A corrupt payload is rejected, charged as one retry, and leaves
	// the chunk outstanding.
	victim.handleSnapChunk(1, &snapChunk{Snap: f.dig, Index: uint32(idx), Payload: []byte("garbage")})
	if f.done[idx] {
		t.Fatal("corrupt chunk accepted")
	}
	if got := victim.Stats().SnapChunkRetries; got != 1 {
		t.Fatalf("SnapChunkRetries = %d, want 1", got)
	}
	// A chunk for some other snapshot digest is ignored outright.
	other := types.HashBytes([]byte("not-the-snapshot"))
	victim.handleSnapChunk(1, &snapChunk{Snap: other, Index: uint32(idx), Payload: []byte("whatever")})
	if got := victim.Stats().SnapChunkRetries; got != 1 {
		t.Fatalf("foreign-digest chunk charged a retry (%d)", got)
	}
	// The genuine payload then completes the chunk.
	victim.handleSnapChunk(2, &snapChunk{Snap: f.dig, Index: uint32(idx), Payload: nodes[1].snapChunks[idx]})
	if !f.done[idx] {
		t.Fatal("verified chunk not accepted after the corrupt one")
	}
}

func TestChunkFetchTimeoutRotatesServers(t *testing.T) {
	nodes, _ := chunkTestNodes(t, 4, 64)
	victim := nodes[0]
	for _, nd := range nodes[1:3] {
		seedMidEpochDonor(nd, 888, 888)
	}
	nodes[1].serveSnapshot(0, 0, 0)
	nodes[2].serveSnapshot(0, 0, 0)
	waitInbox(t, victim, MsgSnapManifest, 2)
	victim.drainInbox()
	f := victim.fetch
	if f == nil {
		t.Fatal("fetch did not start")
	}
	if len(f.inflight) == 0 {
		t.Fatal("no requests in flight")
	}
	var idx int
	var first chunkReqState
	for i, st := range f.inflight {
		idx, first = i, st
		break
	}
	// Age the request past the timeout; the pump must charge a retry
	// and re-issue to the next server in the rotation.
	f.inflight[idx] = chunkReqState{peer: first.peer, at: time.Now().Add(-time.Hour)}
	before := victim.Stats().SnapChunkRetries
	victim.pumpChunkFetch()
	if got := victim.Stats().SnapChunkRetries; got != before+1 {
		t.Fatalf("timeout not charged as a retry (%d -> %d)", before, got)
	}
	second, ok := f.inflight[idx]
	if !ok {
		t.Fatal("timed-out chunk not re-requested")
	}
	if second.peer == first.peer {
		t.Fatalf("re-request did not rotate servers (still peer %d)", first.peer)
	}
}

func TestServeSnapshotRoundGate(t *testing.T) {
	nodes, _ := chunkTestNodes(t, 4, 64)
	victim := nodes[0]
	seedMidEpochDonor(nodes[1], 100, 222)

	// Same-epoch serve refuses when the requester is too close for a
	// re-entry margin: installing would move it backwards.
	nodes[1].serveSnapshot(0, 0, 100-minGCHorizon+1)
	time.Sleep(20 * time.Millisecond)
	if got := countInbox(victim, MsgSnapManifest); got != 0 {
		t.Fatalf("served a snapshot inside the re-entry margin (%d msgs)", got)
	}
	nodes[1].serveSnapshot(0, 0, 10)
	waitInbox(t, victim, MsgSnapManifest, 1)

	// A transition snapshot must not answer a same-epoch request: it
	// would restart the requester at a position it already passed.
	donor2 := nodes[2]
	applyTestCommits(donor2, 333)
	donor2.captureSnapshot(1) // transition capture into epoch 1
	donor2.serveSnapshot(0, 1, 5)
	time.Sleep(20 * time.Millisecond)
	if got := countInbox(victim, MsgSnapManifest); got != 1 {
		t.Fatalf("transition snapshot served to a same-epoch request (%d msgs)", got)
	}
	// ...but it does answer a requester from the epoch before it.
	donor2.serveSnapshot(0, 0, 0)
	waitInbox(t, victim, MsgSnapManifest, 2)
}

func TestSnapshotRequestRotation(t *testing.T) {
	nodes, _ := snapTestNodes(t, 4)
	victim := nodes[0]
	victim.lastProgress = time.Now()

	// No future-epoch evidence and no deep stall: a routine stall must
	// not trigger rescue requests.
	victim.maybeRequestSnapshot(true)
	time.Sleep(20 * time.Millisecond)
	for i := 1; i < 4; i++ {
		if countInbox(nodes[i], MsgSnapManifestReq) != 0 {
			t.Fatal("requested snapshots without evidence or deep stall")
		}
	}

	// f+1 peers seen in a future epoch: request from the first f+1
	// window of peers.
	victim.peerEpoch[1] = 1
	victim.peerEpoch[2] = 1
	victim.maybeRequestSnapshot(true)
	waitInbox(t, nodes[1], MsgSnapManifestReq, 1)
	waitInbox(t, nodes[2], MsgSnapManifestReq, 1)

	// The next attempt rotates to the following window, so a dead or
	// withholding server in the first window cannot absorb every
	// request forever.
	victim.snapReqAt = time.Now().Add(-time.Hour)
	victim.maybeRequestSnapshot(true)
	waitInbox(t, nodes[2], MsgSnapManifestReq, 2)
	waitInbox(t, nodes[3], MsgSnapManifestReq, 1)
	if got := countInbox(nodes[1], MsgSnapManifestReq); got != 1 {
		t.Fatalf("rotation re-targeted the first window (peer 1 saw %d requests)", got)
	}
}

func TestSnapshotRequestDeepStall(t *testing.T) {
	nodes, _ := snapTestNodes(t, 4)
	victim := nodes[0]
	// Wedged for a long time with zero future-epoch evidence: the
	// mid-epoch stranding case must still actively ask for rescue.
	victim.lastProgress = time.Now().Add(-time.Hour)
	victim.maybeRequestSnapshot(true)
	waitInbox(t, nodes[1], MsgSnapManifestReq, 1)
	waitInbox(t, nodes[2], MsgSnapManifestReq, 1)
}
