// Package node assembles a full Thunderbolt replica: DAG
// dissemination and certification, Tusk commitment, the shard
// proposer with its Concurrent Executor, parallel validation,
// deterministic cross-shard execution, and non-blocking shard
// reconfiguration (paper §3–§6).
//
// A node plays the paper's three roles at once: shard proposer for
// its currently assigned shard, replica in the common DAG, and
// (periodically) consensus leader. All protocol state is owned by a
// single event-loop goroutine; transports, clients, and executor
// pools interact with it through channels.
package node

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"thunderbolt/internal/ce"
	"thunderbolt/internal/contract"
	"thunderbolt/internal/crypto"
	"thunderbolt/internal/dag"
	"thunderbolt/internal/gateway"
	"thunderbolt/internal/metrics"
	"thunderbolt/internal/storage"
	"thunderbolt/internal/transport"
	"thunderbolt/internal/tusk"
	"thunderbolt/internal/types"
	"thunderbolt/internal/validate"
)

// ExecutionMode selects how a node executes transactions; the paper's
// three evaluated systems (§12).
type ExecutionMode int

const (
	// ModeCE is Thunderbolt proper: Concurrent Executor preplay plus
	// parallel validation.
	ModeCE ExecutionMode = iota
	// ModeOCC is Thunderbolt-OCC: preplay through the OCC baseline
	// plus parallel validation.
	ModeOCC
	// ModeSerial is the Tusk baseline: order first, then execute
	// serially in commit order.
	ModeSerial
)

func (m ExecutionMode) String() string {
	switch m {
	case ModeCE:
		return "thunderbolt"
	case ModeOCC:
		return "thunderbolt-occ"
	case ModeSerial:
		return "tusk-serial"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config assembles a replica.
type Config struct {
	// ID is this replica; N the committee size (n = 3f+1).
	ID types.ReplicaID
	N  int
	// Transport connects the committee.
	Transport transport.Transport
	// Signer/Verifier certify DAG vertices.
	Signer   crypto.Signer
	Verifier crypto.Verifier
	// Registry resolves contracts; Store holds this replica's copy of
	// the state (genesis contents must match across the committee).
	// Any storage.Backend works: the in-memory store, or the durable
	// WAL backend — with the latter, a restarted process recovers its
	// committed state (and the commit-path dedup riding the backend's
	// recovery sidecar) from disk and resumes in its last epoch.
	Registry *contract.Registry
	Store    storage.Backend

	// Mode selects the execution pipeline (default ModeCE).
	Mode ExecutionMode
	// Executors sizes the preplay pool; Validators the validation
	// pool (defaults 16 and 16, the paper's system configuration).
	Executors  int
	Validators int
	// BatchSize caps transactions per block (default 500). It is the
	// adaptive batch controller's floor: under sustained ingress
	// backlog the proposer grows its batch toward BatchSizeCap and
	// shrinks back here when commit latency misses the target
	// (batchctl.go), so throughput tracks offered load.
	BatchSize int
	// BatchSizeCap bounds adaptive batch growth. 0 selects
	// 4×BatchSize; negative disables adaptation (fixed BatchSize).
	BatchSizeCap int
	// BatchLatencyTarget is the own-block commit latency above which
	// the adaptive batch shrinks (latency pressure). 0 selects
	// 4×TickInterval.
	BatchLatencyTarget time.Duration

	// K triggers a Shift vote when a proposer has been silent for K
	// rounds (0 disables). KPrime forces a Shift vote every KPrime
	// proposed rounds (0 disables) — the paper's reconfiguration knobs.
	K      int
	KPrime int

	// CommitLogCap, when positive, makes the node retain its ordered
	// sequence of committed transaction digests (up to the cap; older
	// entries are dropped head-first with the offset preserved) for
	// cross-replica commit-sequence auditing — see CommitLog. Zero
	// disables retention.
	CommitLogCap int

	// NonceWindow is the per-client dedup window (gateway subsystem):
	// how many nonces above a client's applied floor are tracked
	// individually; submissions further ahead are nacked to back off.
	// 0 selects gateway.DefaultNonceWindow (1024); values are rounded
	// up to a multiple of 64. Consensus-critical: every replica must
	// configure the same value (snapshots bind it, installs reject a
	// mismatch).
	NonceWindow int
	// LegacyDedupWindow bounds the digest window deduplicating
	// nonce-less legacy transactions; 0 selects
	// gateway.DefaultLegacyWindow (65536). Consensus-critical like
	// NonceWindow.
	LegacyDedupWindow int

	// SessionIdleEpochs, when positive, expires idle gateway sessions
	// deterministically at epoch transitions: a session whose applied
	// nonce floor has not moved for this many consecutive transitions
	// is dropped from the dedup state (and from snapshots), bounding
	// session memory under billions of one-shot clients. Runs on the
	// commit path, so honest replicas stay bit-identical; snapshots
	// bind the value and installs reject a mismatch. 0 (default)
	// disables expiry. Consensus-critical like NonceWindow.
	SessionIdleEpochs int

	// GCHorizon is the committed-wave garbage-collection retention
	// horizon, in rounds: after each commit wave the node prunes DAG
	// vertices, pending blocks, vote records, and collectors below
	// (last committed leader round − horizon), bounding steady-state
	// memory within an epoch. The horizon also bounds in-epoch
	// recovery: a replica that misses more rounds than the horizon
	// cannot be served the pruned range by its peers and waits for the
	// next reconfiguration's snapshot to jump forward (the cross-epoch
	// state-transfer protocol in snapshot.go — see README "Recovery").
	// Zero selects the default (2048); negative disables GC;
	// positive values are clamped to a safe minimum well above the
	// fast-forward gap.
	GCHorizon int

	// SnapshotInterval captures a mid-epoch snapshot every this many
	// committed leader rounds, in addition to the capture at every
	// epoch transition. Captures happen at deterministic positions of
	// the committed sequence, so honest replicas' mid-epoch snapshots
	// are bit-identical and a stranded replica can authenticate one
	// with f+1 matching digests — the rescue that bounds rejoin time by
	// the capture cadence instead of the epoch length. Zero selects the
	// default (512); negative disables mid-epoch capture; positive
	// values are clamped so GCHorizon − SnapshotInterval still leaves a
	// full re-entry margin (serving replicas must retain the rounds
	// just behind their latest capture).
	SnapshotInterval int
	// SnapChunkRecords is the ledger-record count per snapshot chunk
	// (0 selects types.DefaultChunkRecords). Chunks stream over
	// MsgSnapChunk during a rescue; smaller chunks cost more manifest
	// entries but make a corrupt or lost chunk cheaper to re-request.
	SnapChunkRecords int
	// SnapMonolithicRecords is the largest ledger (in records) still
	// served as one monolithic MsgSnapshot; bigger states serve a
	// manifest plus chunk stream. 0 selects the default (8192);
	// negative forces the chunked path for every size (tests).
	SnapMonolithicRecords int
	// SnapChunkServeBudget caps how many MsgSnapChunk replies this
	// replica sends per housekeeping tick, so a rescue in progress
	// cannot starve its own round traffic. Requests over budget are
	// dropped; the requester times out and rotates to another server.
	// 0 selects the default (64).
	SnapChunkServeBudget int

	// RecoverySyncRounds caps how many missing rounds a recovering
	// replica bulk-requests per housekeeping tick (MsgRoundReq batch).
	// Zero selects the default (256, measured under the WAN latency
	// model — see README "Performance"). Larger values recover deep
	// gaps in fewer round-trips at the cost of burstier reply traffic.
	RecoverySyncRounds int

	// SpecExecDepth bounds the speculative-execution pipeline: how
	// many certified-but-uncommitted commit waves may be predicted
	// from the anchor chain and executed ahead of the Tusk commit
	// (spec.go), filling the certify→commit wait with execution work
	// that a matching commit installs in O(writes). 0 selects the
	// default (4); negative disables speculation. Ignored in
	// ModeSerial (serial blocks are executed only at commit).
	SpecExecDepth int
	// SpecVerify re-derives every speculative hit cold at install
	// time — same wave, committed store, live dedup — and demotes the
	// hit to a miss unless the outcomes are bit-identical. The
	// runtime differential check behind the speculation contract;
	// chaos scenarios enable it, production keeps it off (it spends
	// the exact execution the hit saved).
	SpecVerify bool

	// TickInterval paces housekeeping (block re-requests); default 25ms.
	TickInterval time.Duration
	// MinRoundInterval throttles round advancement (a batch timer):
	// a node proposes at most one block per interval, preventing
	// empty rounds from spinning the network. Default 1ms.
	MinRoundInterval time.Duration

	// OnCommitTx, if set, fires for every committed transaction.
	OnCommitTx func(tx *types.Transaction, when time.Time)
	// OnRejectTx, if set, fires when this proposer permanently drops a
	// claimed transaction without committing it — misrouted after a
	// shard rotation, or unclaimed wholesale at a reconfiguration. The
	// proposer-side negative-ack: the client layer can re-route and
	// resubmit immediately instead of waiting out its retry timer (the
	// transaction is simultaneously removed from the seen dedup, so
	// the resubmission is accepted at once). Runs on the event loop;
	// implementations must not block.
	OnRejectTx func(tx *types.Transaction)
	// OnCommitWave, if set, fires after each commit wave with the
	// leader round (Figure 16's per-round runtime series).
	OnCommitWave func(epoch types.Epoch, leaderRound types.Round, when time.Time)
	// OnReconfig, if set, fires after each DAG transition.
	OnReconfig func(newEpoch types.Epoch, when time.Time)
}

func (c Config) withDefaults() Config {
	if c.Executors <= 0 {
		c.Executors = 16
	}
	if c.Validators <= 0 {
		c.Validators = 16
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 500
	}
	if c.TickInterval <= 0 {
		c.TickInterval = 25 * time.Millisecond
	}
	if c.BatchSizeCap == 0 {
		c.BatchSizeCap = 4 * c.BatchSize
	}
	if c.BatchSizeCap > 0 && c.BatchSizeCap < c.BatchSize {
		c.BatchSizeCap = c.BatchSize
	}
	if c.BatchLatencyTarget <= 0 {
		c.BatchLatencyTarget = 4 * c.TickInterval
	}
	if c.MinRoundInterval <= 0 {
		c.MinRoundInterval = time.Millisecond
	}
	if c.SpecExecDepth == 0 {
		c.SpecExecDepth = defaultSpecExecDepth
	}
	switch {
	case c.GCHorizon == 0:
		c.GCHorizon = defaultGCHorizon
	case c.GCHorizon > 0 && c.GCHorizon < minGCHorizon:
		c.GCHorizon = minGCHorizon
	}
	if c.RecoverySyncRounds <= 0 {
		c.RecoverySyncRounds = defaultRecoverySyncRounds
	}
	if c.SnapshotInterval == 0 {
		c.SnapshotInterval = defaultSnapshotInterval
	}
	// The serving contract: a replica must still retain minGCHorizon
	// rounds below its newest capture's re-entry base, or the rescued
	// replica could not backfill the DAG segment it re-enters on. Clamp
	// the interval down — never the horizon up, which would silently
	// grow memory the operator bounded on purpose.
	if c.SnapshotInterval > 0 && c.GCHorizon > 0 {
		if max := c.GCHorizon - minGCHorizon; c.SnapshotInterval > max {
			if max < 2 {
				max = 2
			}
			c.SnapshotInterval = max
		}
	}
	if c.SnapChunkRecords <= 0 {
		c.SnapChunkRecords = types.DefaultChunkRecords
	}
	if c.SnapMonolithicRecords == 0 {
		c.SnapMonolithicRecords = defaultMonolithicRecords
	}
	if c.SnapChunkServeBudget <= 0 {
		c.SnapChunkServeBudget = defaultChunkServeBudget
	}
	return c
}

const (
	// defaultGCHorizon keeps roughly two thousand rounds of history —
	// far beyond any in-epoch outage the chaos suite injects — while
	// still bounding steady-state memory.
	defaultGCHorizon = 2048
	// minGCHorizon is the floor on configurable horizons. The GC
	// safety argument (see dag.Store.PruneBelow) needs the horizon to
	// sit well above the fast-forward gap, so that any vertex old
	// enough to prune is also too old to ever join committed history.
	minGCHorizon = 4 * fastForwardGap
	// defaultRecoverySyncRounds is the per-tick round-pull batch,
	// chosen from a WAN-latency SimNetwork sweep (README
	// "Performance"): reconvergence after a 6s crash halves from
	// batch 16 to 64 (432ms → 206ms) and is flat beyond (216ms at
	// 256, 197ms at 1024) because WAN round production bounds the
	// gap. 256 keeps that flat-zone behaviour while also covering a
	// GC-horizon-deep gap in a quarter of the ticks 64 would need,
	// with no measured reply-burst cost.
	defaultRecoverySyncRounds = 256
	// defaultSnapshotInterval spaces mid-epoch captures roughly a
	// quarter of the default GC horizon apart: a stranded replica's
	// rescue snapshot is at most ~512 leader rounds stale, and servers
	// still hold four re-entry margins of history below it.
	defaultSnapshotInterval = 512
	// defaultMonolithicRecords is the largest ledger still shipped as
	// one MsgSnapshot (two default-size chunks); beyond it the rescue
	// streams chunks so no single message scales with state size.
	defaultMonolithicRecords = 8192
	// defaultChunkServeBudget bounds chunk replies per housekeeping
	// tick (~64 × 4096 records ≈ a quarter-million records per tick
	// per server at the default chunk size).
	defaultChunkServeBudget = 64
	// defaultSpecExecDepth is the speculative-execution pipeline
	// depth: up to this many predicted commit waves executed ahead of
	// the Tusk commit. Two covers the certify→commit wait at LAN
	// latencies (one leader round in flight plus slack) at ~0.90 hit
	// rate; deeper pipelines predict across more unsettled anchors,
	// and the extra misses cost more re-execution than the extra
	// overlap saves.
	defaultSpecExecDepth = 2
)

// Stats is a point-in-time snapshot of a node's counters.
type Stats struct {
	Epoch              types.Epoch
	Round              types.Round
	CommittedTxs       uint64
	CommittedSingle    uint64
	CommittedCross     uint64
	ConvertedToCross   uint64
	Reexecutions       uint64
	RoundsProposed     uint64
	SkipBlocks         uint64
	ShiftBlocks        uint64
	Reconfigurations   uint64
	ValidationFailures uint64
	DroppedAtReconfig  uint64
	// FastForwards counts frontier rejoins after falling behind the
	// certified DAG (crash recovery, healed partitions).
	FastForwards uint64
	// PrunedRounds counts rounds reclaimed by committed-wave GC.
	PrunedRounds uint64
	// EpochJumps counts cross-epoch snapshot installs — recoveries
	// from being stranded across a reconfiguration. SnapshotsServed
	// counts snapshots (monolithic or manifest form) served to
	// stragglers.
	EpochJumps      uint64
	SnapshotsServed uint64
	// MidEpochCaptures counts deterministic mid-epoch snapshot
	// captures (Config.SnapshotInterval boundaries); MidEpochInstalls
	// counts installs of a mid-epoch snapshot — rescues that re-entered
	// a live epoch at the snapshot's base round instead of waiting for
	// the next reconfiguration.
	MidEpochCaptures uint64
	MidEpochInstalls uint64
	// Chunked-transfer counters: chunks served to fetchers, chunks
	// fetched and verified, chunks skipped because the local state
	// already matched their digest (incremental rescue), and chunk
	// requests retried after a timeout or a corrupt payload.
	SnapChunksServed  uint64
	SnapChunksFetched uint64
	SnapChunksSkipped uint64
	SnapChunkRetries  uint64
	// PendingCross is the current number of observed-but-unexecuted
	// cross-shard transactions touching this node's shard.
	PendingCross uint64
	// QueueLen is the current proposer queue length.
	QueueLen uint64
	// SendErrors counts transport send/broadcast failures per message
	// class (indices: block, vote, cert, sync, snap, batch, other —
	// see outbox.go). In a healthy committee every entry stays zero;
	// chaos scenarios assert on it.
	SendErrors [numSendClasses]uint64
	// BatchSize is the adaptive proposer batch size currently in
	// effect (between Config.BatchSize and its cap).
	BatchSize uint64
	// Speculative execution (spec.go): SpecHits counts commit waves
	// installed from precomputed results, SpecMisses counts predicted
	// waves discarded on an anchor-order misprediction, and
	// SpecWastedTxs the speculatively executed transactions those
	// rollbacks threw away.
	SpecHits      uint64
	SpecMisses    uint64
	SpecWastedTxs uint64
}

// TotalSendErrors sums SendErrors across classes.
func (s Stats) TotalSendErrors() uint64 {
	var t uint64
	for _, v := range s.SendErrors {
		t += v
	}
	return t
}

// Node is one Thunderbolt replica.
type Node struct {
	cfg Config
	n   int
	f   int

	// verifier wraps cfg.Verifier with the verified-signature memo so
	// votes checked at quorum assembly are not re-verified when the
	// resulting certificate is validated.
	verifier crypto.Verifier

	// inbox is an unbounded queue so the transport delivery goroutine
	// never blocks on a busy event loop (bounded queues here can close
	// a circular wait across nodes and deadlock the whole committee).
	inboxMu sync.Mutex
	inboxQ  []inboundMsg
	// inboxFree recycles the drained queue's backing array (node
	// goroutine only): without it every drain dropped the capacity and
	// the receive callback regrew the queue from scratch.
	inboxFree []inboundMsg
	inboxSig  chan struct{}

	txCh   chan *types.Transaction
	inspCh chan func(*Node)
	done   chan struct{}
	wg     sync.WaitGroup
	once   sync.Once

	lastProposal time.Time
	// lastProgress is the last time this node proposed or inserted a
	// certified vertex. Recovery traffic (lastBlock rebroadcast, round
	// pulls) is gated on its staleness: "no progress" is the wedge
	// signal, while "no recent proposal" is routine whenever round
	// latency exceeds the tick (e.g. WAN models) and would spam
	// full-block rebroadcasts every tick in steady state.
	lastProgress time.Time

	// --- event-loop-owned protocol state ---
	epoch     types.Epoch
	dagStore  *dag.Store
	committer *tusk.Committer
	// nextRound is the next round this node will propose.
	nextRound types.Round

	pendingBlocks map[types.Digest]*types.Block // by block digest
	// pendingRounds indexes pendingBlocks by round so committed-wave
	// GC drops whole rounds without scanning the map, and ownPending
	// indexes this node's own proposals by round so fast-forward
	// requeue scans only own blocks instead of every pending block.
	pendingRounds map[types.Round][]types.Digest
	ownPending    map[types.Round]types.Digest
	certWait      map[types.Digest]*types.Certificate // certs waiting for blocks
	orphans       []*dag.Vertex                       // vertices waiting for parents
	orphanSet     map[types.Digest]bool               // orphan membership by cert digest
	collectors    map[types.Digest]*crypto.QuorumCollector
	// collectorRound maps a round to the collector digest of the block
	// this node proposed there (one proposal per round), for GC.
	collectorRound map[types.Round]types.Digest
	voted          map[voteKey]types.Digest
	lastSeen       map[types.ReplicaID]types.Round // latest round proposed per replica
	futureMsgs     []inboundMsg                    // messages from future epochs
	// parentReq tracks in-flight MsgCertReq recoveries of missing
	// parent vertices (by certificate digest) with their request time,
	// so each missing parent is asked for at most once per tick.
	// roundReqAt does the same for bulk MsgRoundReq round pulls.
	parentReq  map[types.Digest]time.Time
	roundReqAt map[types.Round]time.Time
	// lastBlock is this node's newest proposed block; rebroadcast by
	// housekeeping until its certificate lands in the DAG, which lets a
	// replica whose proposal was lost (crash, partition) resume
	// progress after recovery. lastBlockRaw caches its wire encoding
	// (marshaled once at propose time), and lastBlockVotes remembers
	// the vote count seen at the previous housekeeping tick so the
	// rebroadcast fires only when vote collection has actually stopped
	// — not merely because round latency exceeds the tick interval.
	lastBlock      *types.Block
	lastBlockRaw   []byte
	lastBlockVotes int

	// --- outbound coalescing (outbox.go) ---
	outBcast  []outMsg
	outDirect [][]outMsg // per committee peer
	frameBuf  []byte

	// execQ holds committed waves awaiting execution: the commit path
	// is pipelined, so certificate and vote handling for rounds r and
	// r+1 is never blocked behind the execution of wave r−1. Waves
	// execute in commit order between event-loop passes (drainExec);
	// an epoch transition clears the queue (later waves of the dying
	// epoch are discarded, the paper's ending-round semantics). Each
	// entry carries its commit time — the certify→commit /
	// commit→execute stage boundary.
	execQ []execItem

	// Speculative execution (spec.go): specQ holds commit waves
	// predicted from the anchor chain in predicted commit order,
	// executed ahead of the Tusk commit during the certify→commit
	// wait; specOverlay layers their write sets over the committed
	// tip; specResolved claims the transaction identities pending
	// spec waves resolved (the dedup view later spec waves execute
	// under); specVerts claims their vertex digests (the committed
	// filter stacked predictions linearize against). specDepth caps
	// the queue (Config.SpecExecDepth; 0 = speculation off).
	specDepth    int
	specQ        []specWave
	specOverlay  *ce.SpecOverlay
	specResolved map[types.Digest]bool
	specVerts    map[types.Digest]bool
	// specReader and specClaimFn are bound once like baseReader.
	specReader  validate.BaseReader
	specClaimFn func(types.Digest) bool

	// baseReader is n.baseRead bound once: the commit path passes it to
	// validation/execution for every wave, and a method-value conversion
	// at the call site allocates each time.
	baseReader validate.BaseReader

	// loadedRound is the highest round at which any inserted block
	// carried transactions; maybeAdvance uses it to run rounds at wire
	// speed while the committee carries traffic and fall back to the
	// MinRoundInterval batch timer when idle.
	loadedRound types.Round

	// batch adapts the proposer batch size between Config.BatchSize
	// and its cap (batchctl.go).
	batch batchController

	// --- state transfer (snapshot.go, snapchunk.go) ---
	// lastSnap is this node's most recent capture (epoch transition or
	// mid-epoch boundary); it outlives per-epoch state so the node can
	// serve stragglers from any earlier position. snapChunks holds its
	// encoded chunk payloads for MsgSnapChunk serving. lastSnapMsg and
	// lastManifestMsg cache the signed wire payloads, built once on
	// first serve (the snapshot is immutable, so every serve after
	// that is a plain Send). snapFrom holds the latest snapshot
	// candidate per verified signer (install needs f+1 matching
	// digests), snapServed rate-limits serving per requester,
	// snapReqAt paces this node's own rescue requests and
	// snapReqCursor rotates them across f+1-peer windows, peerEpoch
	// accumulates future-epoch evidence per claimed peer, lastSnapAt
	// is the committed leader round of the newest capture (mid-epoch
	// cadence tracking), chunkBudget is the per-tick chunk-serve
	// allowance, and fetch is the in-progress chunked rescue, if any.
	lastSnap        *types.Snapshot
	snapChunks      [][]byte
	lastSnapMsg     []byte
	lastManifestMsg []byte
	snapFrom        map[types.ReplicaID]*types.Snapshot
	snapServed      map[types.ReplicaID]time.Time
	snapReqAt       time.Time
	snapReqCursor   int
	peerEpoch       map[types.ReplicaID]types.Epoch
	lastSnapAt      types.Round
	chunkBudget     int
	fetch           *chunkFetch
	// recoveredVotes carries WAL-journaled vote records (durable.go)
	// from recovery to the first resetEpochState, then stays nil.
	recoveredVotes map[voteKey]types.Digest

	// proposer state
	txQueue []*types.Transaction
	// seen deduplicates client retransmissions (§6). Entries carry
	// their enqueue time and expire after seenTTL so a transaction
	// lost to a discarded block is accepted again on retransmission
	// instead of being swallowed forever.
	seen      map[types.Digest]time.Time
	preplayer preplayer
	spec      map[types.Key]types.Value // own uncommitted preplay writes
	ownBlocks []ownBlock                // uncommitted own normal blocks
	// pendingCross holds cross-shard transactions observed in the DAG,
	// not yet executed, that touch this node's shard (drives rules
	// P3/P4 conversions and §5.4 skip blocks).
	pendingCross map[types.Digest]*types.Transaction

	// reconfiguration state
	shiftSent      bool
	roundsProposed int
	committedShift map[types.ReplicaID]bool

	// commit state: the bounded dedup of resolved transactions —
	// per-client nonce floors plus a digest window for nonce-less
	// legacy traffic. Mutated only on the deterministic commit path,
	// so honest replicas at equal commit positions hold bit-identical
	// state (which is what lets snapshots carry it verbatim).
	dedup *gateway.Dedup
	// durable is non-nil when Config.Store persists a recovery
	// sidecar (storage.Recoverable): the commit path then annotates
	// every apply with the dedup mutations it performs (durable.go).
	durable storage.Recoverable
	// txClients maps pending transaction IDs to the wire client
	// waiting on them (gateway.go); survives epochs like dedup.
	txClients map[types.Digest]clientSub

	// clog is the ordered commit sequence (see Config.CommitLogCap);
	// clogStart counts entries dropped from the head. commitCtx holds
	// the wave/block provenance stamped onto entries (event-loop-owned,
	// set by executeWave).
	clogMu    sync.Mutex
	clog      []CommitEntry
	clogStart uint64
	commitCtx CommitEntry

	// nm holds the node's instrumentation: registry-backed counters,
	// gauges, and per-stage histograms, the flight recorder, and the
	// leveled logger (metrics.go). Initialized before any recovery so
	// even restart paths record through it.
	nm *nodeMetrics
}

// execItem is one queued commit wave plus the moment the commit rule
// released it (processCommits) — the timestamp the per-stage
// histograms measure the certify→commit and commit→execute legs from.
type execItem struct {
	wave        tusk.CommitWave
	committedAt time.Time
}

type voteKey struct {
	round    types.Round
	proposer types.ReplicaID
}

type ownBlock struct {
	round  types.Round
	writes []types.RWRecord
}

// New builds (but does not start) a node.
func New(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Transport == nil || cfg.Signer == nil || cfg.Verifier == nil {
		return nil, errors.New("node: transport, signer and verifier are required")
	}
	if cfg.Registry == nil || cfg.Store == nil {
		return nil, errors.New("node: registry and store are required")
	}
	if cfg.N < 1 {
		return nil, errors.New("node: committee size must be positive")
	}
	n := &Node{
		cfg:      cfg,
		n:        cfg.N,
		f:        crypto.FaultBound(cfg.N),
		verifier: crypto.NewCachingVerifier(cfg.Verifier, 0),
		inboxSig: make(chan struct{}, 1),
		txCh:     make(chan *types.Transaction, 16384),
		inspCh:   make(chan func(*Node)),
		done:     make(chan struct{}),
	}
	n.baseReader = n.baseRead
	n.specReader = n.specBaseRead
	n.specClaimFn = n.specVertClaimed
	if cfg.SpecExecDepth > 0 && cfg.Mode != ModeSerial {
		n.specDepth = cfg.SpecExecDepth
	}
	n.nm = newNodeMetrics(cfg.ID)
	n.dedup = gateway.NewDedup(cfg.NonceWindow, cfg.LegacyDedupWindow)
	startEpoch := types.Epoch(0)
	if rec, ok := cfg.Store.(storage.Recoverable); ok {
		n.durable = rec
		// Restart-from-disk: rebuild the dedup/commit position from
		// the backend's sidecar and resume in the recovered epoch —
		// in-epoch catch-up (round pulls, fast-forward) replays the
		// missed suffix, and waves below the recovered position
		// validate as duplicates instead of re-applying.
		e, err := n.recoverFromBackend(rec)
		if err != nil {
			return nil, err
		}
		startEpoch = e
		rec.SetMetaFunc(n.walMeta)
	}
	n.resetEpochState(startEpoch)
	// Re-arm the anti-equivocation guard with the votes journaled for
	// the recovered epoch: a restarted replica must refuse to sign a
	// conflicting digest for any slot it already voted on.
	for k, d := range n.recoveredVotes {
		n.voted[k] = d
	}
	n.recoveredVotes = nil
	n.chunkBudget = cfg.SnapChunkServeBudget
	n.outDirect = make([][]outMsg, cfg.N)
	n.batch = newBatchController(cfg.BatchSize, cfg.BatchSizeCap)
	n.txClients = make(map[types.Digest]clientSub)
	n.seen = make(map[types.Digest]time.Time)
	n.preplayer = n.newPreplayer()
	cfg.Transport.SetHandler(func(from types.ReplicaID, mt transport.MsgType, payload []byte) {
		n.inboxMu.Lock()
		n.inboxQ = append(n.inboxQ, inboundMsg{from: from, mt: mt, payload: payload})
		n.inboxMu.Unlock()
		select {
		case n.inboxSig <- struct{}{}:
		default:
		}
	})
	return n, nil
}

// resetEpochState initializes per-epoch protocol state.
func (n *Node) resetEpochState(epoch types.Epoch) {
	if n.preplayer != nil { // nil during construction
		n.preplayer.invalidate() // spec overlay resets; carried tips are stale
	}
	n.epoch = epoch
	n.dagStore = dag.NewStore(epoch, n.n)
	n.committer = tusk.NewCommitter(n.dagStore, n.n)
	n.nextRound = 1
	n.pendingBlocks = make(map[types.Digest]*types.Block)
	n.pendingRounds = make(map[types.Round][]types.Digest)
	n.ownPending = make(map[types.Round]types.Digest)
	n.certWait = make(map[types.Digest]*types.Certificate)
	n.orphans = nil
	n.orphanSet = make(map[types.Digest]bool)
	n.collectors = make(map[types.Digest]*crypto.QuorumCollector)
	n.collectorRound = make(map[types.Round]types.Digest)
	n.voted = make(map[voteKey]types.Digest)
	n.lastSeen = make(map[types.ReplicaID]types.Round)
	n.spec = make(map[types.Key]types.Value)
	n.ownBlocks = nil
	n.pendingCross = make(map[types.Digest]*types.Transaction)
	n.shiftSent = false
	n.roundsProposed = 0
	n.committedShift = make(map[types.ReplicaID]bool)
	n.parentReq = make(map[types.Digest]time.Time)
	n.roundReqAt = make(map[types.Round]time.Time)
	n.lastBlock = nil
	n.lastBlockRaw = nil
	n.lastBlockVotes = 0
	n.execQ = nil // waves of a dying epoch never execute
	n.resetSpec() // predictions bind to the dying epoch's DAG
	n.loadedRound = 0
	n.snapFrom = make(map[types.ReplicaID]*types.Snapshot)
	n.snapServed = make(map[types.ReplicaID]time.Time)
	n.snapReqAt = time.Time{}
	n.peerEpoch = make(map[types.ReplicaID]types.Epoch)
	n.lastSnapAt = 0
	n.fetch = nil
}

// CommitEntry is one record of a node's ordered commit sequence: the
// transaction identity plus its provenance — which epoch and commit
// wave (leader round) applied it, which block carried it, and through
// which path. The provenance fields turn a cross-replica divergence
// from a bare digest mismatch into an explainable event.
type CommitEntry struct {
	ID       types.Digest
	Epoch    types.Epoch
	Wave     types.Round // leader round of the committing wave
	Round    types.Round // round of the block carrying the transaction
	Proposer types.ReplicaID
	Cross    bool // committed via the ordered cross-shard path
}

func (e CommitEntry) String() string {
	path := "single"
	if e.Cross {
		path = "cross"
	}
	return fmt.Sprintf("%s{e%d w%d r%d p%d %s}", e.ID, e.Epoch, e.Wave, e.Round, e.Proposer, path)
}

// CommitLog returns the offset of the first retained entry and a copy
// of the node's ordered commit sequence (enabled by
// Config.CommitLogCap). Safe for concurrent use; the chaos harness's
// divergence and double-commit checkers consume it.
func (n *Node) CommitLog() (start uint64, entries []CommitEntry) {
	n.clogMu.Lock()
	defer n.clogMu.Unlock()
	return n.clogStart, append([]CommitEntry(nil), n.clog...)
}

// recordCommit appends one commit, stamped with the current wave and
// block provenance, to the retained log.
func (n *Node) recordCommit(id types.Digest) {
	if n.cfg.CommitLogCap <= 0 {
		return
	}
	e := n.commitCtx
	e.ID = id
	n.clogMu.Lock()
	n.clog = append(n.clog, e)
	if len(n.clog) > n.cfg.CommitLogCap {
		// Trim a quarter at a time so the shift is amortized O(1) per
		// commit rather than a full-log memmove on every append at cap.
		drop := n.cfg.CommitLogCap / 4
		if drop < 1 {
			drop = 1
		}
		n.clog = append(n.clog[:0], n.clog[drop:]...)
		n.clogStart += uint64(drop)
	}
	n.clogMu.Unlock()
}

// ID returns the replica ID.
func (n *Node) ID() types.ReplicaID { return n.cfg.ID }

// MyShard returns the shard this replica proposes for in the given
// epoch: shard ownership rotates round-robin each reconfiguration
// (proposer of shard x in epoch e is replica (x+e) mod n).
func MyShard(id types.ReplicaID, epoch types.Epoch, n int) types.ShardID {
	e := uint64(epoch) % uint64(n)
	return types.ShardID((uint64(id) + uint64(n) - e) % uint64(n))
}

// ProposerOfShard returns the replica serving shard s in epoch e. The
// rotation schedule's single definition lives in the gateway package
// (the client library routes with it and cannot import node); the
// replica side delegates so the two can never desynchronize.
func ProposerOfShard(s types.ShardID, epoch types.Epoch, n int) types.ReplicaID {
	return gateway.ProposerOfShard(s, epoch, n)
}

func (n *Node) myShard() types.ShardID {
	return MyShard(n.cfg.ID, n.epoch, n.n)
}

// Store returns this replica's state backend (authoritative,
// committed state only).
func (n *Node) Store() storage.Backend { return n.cfg.Store }

// Start launches the event loop and proposes the first block.
func (n *Node) Start() {
	n.wg.Add(1)
	go n.run()
}

// Stop terminates the node. It is idempotent.
func (n *Node) Stop() {
	n.once.Do(func() { close(n.done) })
	n.wg.Wait()
}

// Inspect runs f on the event-loop goroutine with exclusive access to
// all protocol state and blocks until it returns. Intended for tests
// and debugging tooling only.
func (n *Node) Inspect(f func(*DebugView)) error {
	donec := make(chan struct{})
	g := func(n *Node) {
		prev := n.nextRound - 1
		_, ownPrev := n.dagStore.Get(prev, n.cfg.ID)
		lastBlockRound := types.Round(0)
		if n.lastBlock != nil {
			lastBlockRound = n.lastBlock.Round
		}
		f(&DebugView{
			Epoch:          n.epoch,
			NextRound:      n.nextRound,
			QueueLen:       len(n.txQueue),
			Pending:        pendingIDs(n),
			Resolved:       func(tx *types.Transaction) bool { return n.dedup.Resolved(tx) },
			Seen:           func(d types.Digest) bool { _, ok := n.seen[d]; return ok },
			DedupClients:   n.dedup.Clients(),
			DedupLegacy:    n.dedup.LegacyLen(),
			PrevRoundCerts: n.dagStore.CountAtRound(prev),
			HasOwnPrev:     ownPrev,
			HighestRound:   n.dagStore.HighestRound(),
			Orphans:        len(n.orphans),
			CertWait:       len(n.certWait),
			Collectors:     len(n.collectors),
			LastBlockRound: lastBlockRound,
			FutureMsgs:     len(n.futureMsgs),
			GCFloor:        n.dagStore.Floor(),
			DagVertices:    n.dagStore.Len(),
			PendingBlocks:  len(n.pendingBlocks),
			VotedSlots:     len(n.voted),
			CommittedFlags: n.committer.CommittedLen(),
			SnapshotEpoch: func() types.Epoch {
				if n.lastSnap == nil {
					return 0
				}
				return n.lastSnap.Epoch
			}(),
			Vertices: func(r types.Round) []VertexInfo {
				var out []VertexInfo
				for _, v := range n.dagStore.AtRound(r) {
					out = append(out, VertexInfo{
						Round: v.Round(), Proposer: v.Proposer(),
						Kind:       v.Block.Kind,
						CertDigest: v.Cert.Digest(),
						Parents:    append([]types.Digest(nil), v.Block.Parents...),
					})
				}
				return out
			},
		})
		close(donec)
	}
	select {
	case n.inspCh <- g:
		<-donec
		return nil
	case <-n.done:
		return errors.New("node: stopped")
	}
}

// DebugView is a snapshot of event-loop state handed to Inspect.
type DebugView struct {
	Epoch     types.Epoch
	NextRound types.Round
	QueueLen  int
	Pending   []types.Digest
	// Resolved reports whether a transaction is deduplicated as
	// resolved (committed or deterministically failed); Seen reports
	// pre-commit queue dedup. DedupClients and DedupLegacy are the
	// bounded dedup state's population (clients tracked, legacy digest
	// window fill) — the plateau tests sample these.
	Resolved     func(*types.Transaction) bool
	Seen         func(types.Digest) bool
	DedupClients int
	DedupLegacy  int
	// Frontier internals for liveness debugging: certificates present
	// at nextRound-1, whether our own is among them, the highest
	// certified round, and the sizes of the recovery queues.
	PrevRoundCerts int
	HasOwnPrev     bool
	HighestRound   types.Round
	Orphans        int
	CertWait       int
	Collectors     int
	LastBlockRound types.Round
	FutureMsgs     int
	// GC observability: the retention floor, and the sizes of the
	// per-epoch maps committed-wave GC bounds (the long-run plateau
	// tests sample these).
	GCFloor        types.Round
	DagVertices    int
	PendingBlocks  int
	VotedSlots     int
	CommittedFlags int
	// SnapshotEpoch is the epoch of the node's latest captured
	// transition snapshot (0 before the first reconfiguration).
	SnapshotEpoch types.Epoch
	// Vertices returns the certified vertices at one round (valid only
	// inside the Inspect callback).
	Vertices func(r types.Round) []VertexInfo
}

// VertexInfo is a read-only DAG vertex summary for debugging.
type VertexInfo struct {
	Round      types.Round
	Proposer   types.ReplicaID
	Kind       types.BlockKind
	CertDigest types.Digest
	Parents    []types.Digest
}

func pendingIDs(n *Node) []types.Digest {
	out := make([]types.Digest, 0, len(n.pendingCross))
	for id := range n.pendingCross {
		out = append(out, id)
	}
	return out
}

// Submit enqueues a client transaction. Single-shard transactions
// must be routed to the proposer currently serving their shard;
// misrouted ones are rejected so the client layer can re-route.
func (n *Node) Submit(tx *types.Transaction) error {
	select {
	case n.txCh <- tx:
		return nil
	case <-n.done:
		return errors.New("node: stopped")
	}
}

func (n *Node) run() {
	defer n.wg.Done()
	tick := time.NewTicker(n.cfg.TickInterval)
	defer tick.Stop()
	pace := time.NewTicker(n.cfg.MinRoundInterval)
	defer pace.Stop()
	n.propose()
	n.flushOutbox()
	for {
		select {
		case <-n.inboxSig:
			n.drainInbox()
		case tx := <-n.txCh:
			n.enqueueTx(tx)
			// Drain whatever else the clients have queued before paying
			// for another full select pass (a non-blocking single-channel
			// receive compiles to a cheap runtime call, not selectgo).
		txdrain:
			for {
				select {
				case tx := <-n.txCh:
					n.enqueueTx(tx)
				default:
					break txdrain
				}
			}
			// A fresh transaction can make an idle node hot: propose
			// immediately if the quorum is already waiting.
			n.maybeAdvance()
		case f := <-n.inspCh:
			f(n)
		case <-pace.C:
			n.maybeAdvance()
		case <-tick.C:
			n.housekeeping()
		case <-n.done:
			return
		}
		// Pipeline tail: the handlers above advanced rounds and
		// collected commit waves without executing them; execute now,
		// re-draining the inbox between waves so vote and certificate
		// handling for newer rounds is never blocked behind execution
		// of older ones. Then spend the certify→commit wait: predict
		// and speculatively execute certified waves the commit rule
		// has not released yet (drainSpec), so the next commit can
		// install precomputed results instead of executing on the
		// critical path. One coalesced flush per pass sends everything
		// the pass produced.
		n.drainExec()
		n.drainSpec()
		n.flushOutbox()
	}
}

func (n *Node) drainInbox() {
	for {
		n.inboxMu.Lock()
		q := n.inboxQ
		if len(q) == 0 {
			n.inboxMu.Unlock()
			return
		}
		n.inboxQ = n.inboxFree // empty; never aliases q's backing array
		n.inboxMu.Unlock()
		for _, m := range q {
			n.handle(m)
		}
		clear(q) // release payload references before recycling
		n.inboxFree = q[:0]
	}
}

// seenTTL bounds how long a non-committed transaction suppresses
// retransmissions. Long enough to cover normal commit latency, short
// enough that a transaction lost to a discarded block recovers.
const seenTTL = 5 * time.Second

func (n *Node) enqueueTx(tx *types.Transaction) {
	id := tx.ID()
	if n.dedup.Resolved(tx) {
		return
	}
	if at, ok := n.seen[id]; ok && time.Since(at) < seenTTL {
		return // local deduplication (§6)
	}
	n.seen[id] = time.Now()
	// Clone: the client retains its pointer for retransmission, and
	// the proposer may promote the transaction (P3/P4/P6).
	n.txQueue = append(n.txQueue, tx.Clone())
}

// housekeeping re-requests blocks for dangling certificates, retries
// recovery of missing parents, rebroadcasts this node's uncertified
// proposal, and purges self-healing caches.
func (n *Node) housekeeping() {
	for bd, cert := range n.certWait {
		n.queueTo(cert.Proposer, MsgBlockReq, (&blockReq{BlockDigest: bd}).marshal())
	}
	// Stale in-flight parent requests expire every tick regardless of
	// orphan state, so the map cannot accumulate dead entries.
	for d, at := range n.parentReq {
		if time.Since(at) >= n.cfg.TickInterval {
			delete(n.parentReq, d)
		}
	}
	// Orphans wait for parents. Bulk-sync the missing round range
	// first: after an outage the gap between the inserted frontier and
	// the lowest orphan spans hundreds of rounds, and walking it one
	// certificate-request round-trip at a time loses the race against
	// round production. Batch bounded by Config.RecoverySyncRounds.
	if len(n.orphans) > 0 {
		lowest := n.orphans[0].Round()
		for _, o := range n.orphans[1:] {
			if o.Round() < lowest {
				lowest = o.Round()
			}
		}
		hi := n.dagStore.HighestRound()
		for r := hi + 1; r < lowest && r <= hi+types.Round(n.cfg.RecoverySyncRounds); r++ {
			n.pullRound(r)
		}
		// Fine-grained backstop: re-request individual parents whose
		// answers were lost.
		for _, o := range n.orphans {
			n.requestMissingParents(o)
		}
	}
	// A proposal lost to a crash or partition wedges this node: it
	// cannot advance past a round missing its own certificate
	// (maybeAdvance). Rebroadcast until the vertex lands; peers revote
	// the same digest idempotently. Gated on certification state, not
	// just the stall timer: while the vote collector is still making
	// progress the proposal evidently reached peers, and re-sending it
	// every tick is pure wire noise — only a stall with a frozen vote
	// count re-sends (the cached proposal bytes, no re-marshal).
	stalled := time.Since(n.lastProgress) >= 2*n.cfg.TickInterval
	if b := n.lastBlock; b != nil {
		if _, ok := n.dagStore.Get(b.Round, n.cfg.ID); !ok {
			votes := 0
			if col, ok := n.collectors[b.Digest()]; ok {
				votes = col.Count()
			}
			if stalled && votes <= n.lastBlockVotes {
				if n.lastBlockRaw == nil {
					n.lastBlockRaw = mustMarshal(b)
				}
				n.queueBcast(MsgBlock, n.lastBlockRaw)
			}
			n.lastBlockVotes = votes
		} else {
			n.lastBlock = nil
			n.lastBlockRaw = nil
			n.lastBlockVotes = 0
		}
	}
	// Lost certificate broadcasts leave no orphan to trigger recovery;
	// if advancement has stalled, pull the previous round from peers.
	if stalled && n.nextRound > 1 {
		n.pullRound(n.nextRound - 1)
	}
	// A stall plus f+1 peers seen in a future epoch means the committee
	// transitioned without us: in-epoch catch-up can never answer, so
	// ask for rescue snapshots instead. A deep stall with no epoch
	// evidence triggers the same request — the mid-epoch stranding
	// case, where peers are in our epoch but pruned everything we ask
	// for (maybeRequestSnapshot).
	n.maybeRequestSnapshot(stalled)
	// Chunked rescue bookkeeping: replenish the per-tick serve budget
	// and drive the fetch state machine (timeouts, peer rotation).
	n.chunkBudget = n.cfg.SnapChunkServeBudget
	n.pumpChunkFetch()
	for id, tx := range n.pendingCross {
		if n.dedup.Resolved(tx) {
			delete(n.pendingCross, id)
		}
	}
	for id, at := range n.seen {
		if time.Since(at) >= seenTTL {
			delete(n.seen, id)
		}
	}
	n.purgeClientSubs()
}

func (n *Node) handle(m inboundMsg) {
	switch m.mt {
	case MsgBatch:
		// Unpack a coalesced frame and dispatch each sub-message in
		// order. Nested batches are dropped — a crafted frame could
		// otherwise recurse unboundedly — and a malformed tail discards
		// only the messages after the corruption.
		_ = forEachBatched(m.payload, func(mt transport.MsgType, payload []byte) {
			if mt == MsgBatch {
				return
			}
			n.handle(inboundMsg{from: m.from, mt: mt, payload: payload})
		})
	case MsgBlock:
		var b types.Block
		// Owned decode: the transport hands over the delivery buffer
		// (batch frames included), so the block aliases it directly.
		if err := b.UnmarshalBinaryOwned(m.payload); err != nil {
			return
		}
		n.handleBlock(m.from, &b, m.payload)
	case MsgVote:
		var v vote
		if err := v.unmarshal(m.payload); err != nil {
			return
		}
		n.handleVote(m.from, &v, m.payload)
	case MsgCert:
		var c types.Certificate
		if err := c.UnmarshalBinaryOwned(m.payload); err != nil {
			return
		}
		n.handleCert(m.from, &c, m.payload)
	case MsgBlockReq:
		var r blockReq
		if err := r.unmarshal(m.payload); err != nil {
			return
		}
		n.handleBlockReq(m.from, &r)
	case MsgTx:
		var tx types.Transaction
		if err := tx.UnmarshalBinary(m.payload); err != nil {
			return
		}
		n.enqueueTx(&tx)
	case MsgCertReq:
		var r certReq
		if err := r.unmarshal(m.payload); err != nil {
			return
		}
		n.handleCertReq(m.from, &r)
	case MsgRoundReq:
		var r roundReq
		if err := r.unmarshal(m.payload); err != nil {
			return
		}
		n.handleRoundReq(m.from, &r)
	case MsgSnapshotReq:
		var r snapshotReq
		if err := r.unmarshal(m.payload); err != nil {
			return
		}
		n.handleSnapshotReq(m.from, &r)
	case MsgSnapshot, MsgSnapManifest:
		// One intake for both forms: the digest covers the manifest, so
		// monolithic bodies and manifests verify against the same
		// signature (bodies additionally re-chunk to prove consistency).
		n.handleSnapshot(m.from, m.payload)
	case MsgSnapManifestReq:
		var r snapManifestReq
		if err := r.unmarshal(m.payload); err != nil {
			return
		}
		n.serveSnapshot(m.from, r.Epoch, r.Round)
	case MsgSnapChunkReq:
		var r snapChunkReq
		if err := r.unmarshal(m.payload); err != nil {
			return
		}
		n.handleSnapChunkReq(m.from, &r)
	case MsgSnapChunk:
		var c snapChunk
		if err := c.unmarshal(m.payload); err != nil {
			return
		}
		n.handleSnapChunk(m.from, &c)
	case gateway.MsgTxSubmit:
		var tx types.Transaction
		if err := tx.UnmarshalBinary(m.payload); err != nil {
			return
		}
		n.handleTxSubmit(m.from, &tx)
	}
}

// pullRound broadcasts a MsgRoundReq for one round unless a request
// is already in flight (re-asked after four ticks, covering a
// round-trip on slow links, so recovery traffic doesn't multiply by
// latency/tick).
func (n *Node) pullRound(r types.Round) {
	if at, ok := n.roundReqAt[r]; ok && time.Since(at) < 4*n.cfg.TickInterval {
		return
	}
	n.roundReqAt[r] = time.Now()
	n.queueBcast(MsgRoundReq, (&roundReq{Epoch: n.epoch, Round: r}).marshal())
}

// handleRoundReq serves every certified vertex of one round (block
// first, certificate second, per vertex). A request from a stale
// epoch asks for a DAG this node discarded at a transition — the
// round-by-round answer no longer exists, so the useful reply is the
// snapshot that lets the requester jump epochs instead. The same
// logic covers mid-epoch stranding: a same-epoch request for a round
// below this node's GC floor can never be answered round-by-round, so
// the reply is the latest capture (passive stranding detection — the
// stranded replica need not even know it is beyond the horizon).
func (n *Node) handleRoundReq(from types.ReplicaID, r *roundReq) {
	if r.Epoch < n.epoch {
		n.serveSnapshot(from, r.Epoch, 0)
		return
	}
	if r.Epoch > n.epoch {
		n.noteFutureEpoch(from, r.Epoch)
		return
	}
	if r.Round < n.dagStore.Floor() {
		n.serveSnapshot(from, r.Epoch, r.Round)
		return
	}
	for _, v := range n.dagStore.AtRound(r.Round) {
		n.queueTo(from, MsgBlock, mustMarshal(v.Block))
		n.queueTo(from, MsgCert, mustMarshal(v.Cert))
	}
}

// handleCertReq serves a certified vertex from the local DAG: the
// block first so the requester can pair it with the certificate that
// follows (handleCert would otherwise round-trip a MsgBlockReq).
func (n *Node) handleCertReq(from types.ReplicaID, r *certReq) {
	v, ok := n.dagStore.ByCert(r.CertDigest)
	if !ok {
		return
	}
	n.queueTo(from, MsgBlock, mustMarshal(v.Block))
	n.queueTo(from, MsgCert, mustMarshal(v.Cert))
}

// requestMissingParents broadcasts MsgCertReq for every parent of v
// absent from the DAG, at most once per entry until housekeeping
// retries. Recovery walks causal history backwards one round per
// round-trip: each recovered parent that is itself an orphan triggers
// requests for its own parents.
func (n *Node) requestMissingParents(v *dag.Vertex) {
	for _, p := range v.Block.Parents {
		if _, ok := n.dagStore.ByCert(p); ok {
			continue
		}
		if n.orphanSet[p] {
			continue // received already, itself waiting for parents
		}
		if _, inflight := n.parentReq[p]; inflight {
			continue
		}
		n.parentReq[p] = time.Now()
		n.queueBcast(MsgCertReq, (&certReq{CertDigest: p}).marshal())
	}
}

// handleBlock processes one block delivery. raw is the received wire
// payload (nil when invoked without one, e.g. from tests): kept as-is
// when the message must be parked for a future epoch, so the deferral
// path never pays a re-encode (futureMsgs used to re-marshal every
// parked message).
func (n *Node) handleBlock(from types.ReplicaID, b *types.Block, raw []byte) {
	if b.Epoch > n.epoch {
		n.noteFutureEpoch(from, b.Epoch)
		if raw == nil {
			raw = mustMarshal(b)
		}
		n.futureMsgs = append(n.futureMsgs, inboundMsg{from: from, mt: MsgBlock, payload: raw})
		return
	}
	if b.Epoch < n.epoch || int(b.Proposer) >= n.n {
		return
	}
	if b.Round < n.dagStore.Floor() {
		return // round garbage-collected; the vertex can never matter
	}
	d := b.Digest()
	n.trackPendingBlock(b)
	if b.Round > n.lastSeen[b.Proposer] {
		n.lastSeen[b.Proposer] = b.Round
	}
	// Vote only for blocks received from their proposer, once per
	// (round, proposer) slot — the anti-equivocation guard. On a
	// durable backend the first vote per slot is journaled before the
	// signature leaves this replica, so a crash+restart cannot be
	// induced into signing a conflicting digest for an already-voted
	// slot (two certificates for one slot would let commit sequences
	// diverge across replicas).
	if from == b.Proposer {
		k := voteKey{round: b.Round, proposer: b.Proposer}
		if prev, ok := n.voted[k]; !ok || prev == d {
			if !ok {
				n.noteOnly(voteNote(b.Epoch, k, d))
			}
			n.voted[k] = d
			v := &vote{
				Epoch: b.Epoch, Round: b.Round, Proposer: b.Proposer,
				BlockDigest: d, Sig: n.cfg.Signer.Sign(d),
			}
			// a = proposer the vote is for.
			n.trace(metrics.EvVote, b.Round, uint64(b.Proposer), 0)
			n.queueTo(b.Proposer, MsgVote, v.marshal())
		}
	}
	// A certificate may have arrived first.
	if cert, ok := n.certWait[d]; ok {
		delete(n.certWait, d)
		n.addVertex(&dag.Vertex{Block: b, Cert: cert})
	}
}

func (n *Node) handleVote(from types.ReplicaID, v *vote, raw []byte) {
	if v.Epoch > n.epoch {
		// A peer already transitioned to the next DAG; keep its vote
		// (the received bytes, no re-encode) for replay after our own
		// transition.
		n.noteFutureEpoch(from, v.Epoch)
		n.futureMsgs = append(n.futureMsgs, inboundMsg{from: from, mt: MsgVote, payload: raw})
		return
	}
	if v.Epoch < n.epoch || v.Proposer != n.cfg.ID {
		return
	}
	col, ok := n.collectors[v.BlockDigest]
	if !ok {
		return
	}
	cert, err := col.Add(from, v.Sig)
	if err != nil || cert == nil {
		return
	}
	delete(n.collectors, v.BlockDigest)
	// Place the certificate locally before the (lossy) broadcast.
	// Relying on loopback delivery here once wedged whole committees:
	// a certificate completed while this node was network-crashed was
	// dropped on every link including self, and with the collector
	// already deleted it could never re-form from revotes.
	n.handleCert(n.cfg.ID, cert, nil)
	n.queueBcast(MsgCert, mustMarshal(cert))
}

// handleCert processes one certificate. raw is the received payload
// (nil when the certificate was assembled locally); parked future-epoch
// certificates keep those bytes instead of re-encoding.
func (n *Node) handleCert(from types.ReplicaID, c *types.Certificate, raw []byte) {
	if c.Epoch > n.epoch {
		n.noteFutureEpoch(from, c.Epoch)
		if raw == nil {
			raw = mustMarshal(c)
		}
		n.futureMsgs = append(n.futureMsgs, inboundMsg{from: from, mt: MsgCert, payload: raw})
		return
	}
	if c.Epoch < n.epoch || c.Round < n.dagStore.Floor() {
		return
	}
	if _, ok := n.dagStore.ByCert(c.Digest()); ok {
		return // already placed
	}
	if err := crypto.VerifyCertificate(c, n.n, n.verifier); err != nil {
		return
	}
	b, ok := n.pendingBlocks[c.BlockDigest]
	if !ok {
		n.certWait[c.BlockDigest] = c
		n.queueTo(from, MsgBlockReq, (&blockReq{BlockDigest: c.BlockDigest}).marshal())
		return
	}
	n.addVertex(&dag.Vertex{Block: b, Cert: c})
}

func (n *Node) handleBlockReq(from types.ReplicaID, r *blockReq) {
	if b, ok := n.pendingBlocks[r.BlockDigest]; ok {
		n.queueTo(from, MsgBlock, mustMarshal(b))
		return
	}
	if v, ok := n.dagStore.ByBlock(r.BlockDigest); ok {
		n.queueTo(from, MsgBlock, mustMarshal(v.Block))
	}
}

// addVertex inserts a certified vertex, drains any orphans that
// become insertable, advances the round, and processes commits.
func (n *Node) addVertex(v *dag.Vertex) {
	if !n.insertVertex(v) {
		return
	}
	// Orphans may now have parents. Retry against the store directly:
	// still-orphaned vertices stay parked (membership unchanged, no
	// re-request) until the next arrival or housekeeping retry.
	progress := true
	for progress {
		progress = false
		keep := n.orphans[:0]
		for _, o := range n.orphans {
			d := o.Cert.Digest()
			if n.inserted(o) {
				delete(n.orphanSet, d)
				continue
			}
			err := n.dagStore.Add(o)
			var missing *dag.MissingParentError
			switch {
			case err == nil:
				delete(n.orphanSet, d)
				delete(n.parentReq, d)
				n.onVertexAdded(o)
				progress = true
			case errors.As(err, &missing):
				keep = append(keep, o)
			default:
				// Permanent rejection (equivocation or garbage): do
				// not park it forever.
				delete(n.orphanSet, d)
			}
		}
		n.orphans = keep
	}
	n.maybeAdvance()
	n.processCommits()
}

func (n *Node) inserted(v *dag.Vertex) bool {
	_, ok := n.dagStore.ByCert(v.Cert.Digest())
	return ok
}

// insertVertex adds to the DAG store, parking vertices with missing
// parents on the orphan list. Returns true if the vertex landed.
func (n *Node) insertVertex(v *dag.Vertex) bool {
	err := n.dagStore.Add(v)
	if err == nil {
		d := v.Cert.Digest()
		delete(n.parentReq, d)
		delete(n.orphanSet, d)
		n.onVertexAdded(v)
		return true
	}
	// The errors.As target lives behind the success check: taking its
	// address forces a heap allocation, and insertions succeed on the
	// hot path.
	var missing *dag.MissingParentError
	switch {
	case errors.As(err, &missing):
		if d := v.Cert.Digest(); !n.orphanSet[d] {
			n.orphanSet[d] = true
			n.orphans = append(n.orphans, v)
			// Ask peers for the missing history immediately;
			// housekeeping retries if the answers are lost.
			n.requestMissingParents(v)
		}
		return false
	default:
		return false // equivocation or garbage
	}
}

// onVertexAdded tracks proposer liveness and pending cross-shard
// transactions touching this node's shard (rules P3/P4 input).
func (n *Node) onVertexAdded(v *dag.Vertex) {
	n.lastProgress = time.Now()
	// Certified: the certify→commit stage clock starts when the
	// certificate quorum lands the vertex in the local DAG.
	if v.Block.Stamps.Certified.IsZero() {
		v.Block.Stamps.Certified = n.lastProgress
	}
	// a = proposer whose vertex was certified.
	n.trace(metrics.EvCert, v.Round(), uint64(v.Proposer()), 0)
	if v.Round() > n.lastSeen[v.Proposer()] {
		n.lastSeen[v.Proposer()] = v.Round()
	}
	// Track the newest round whose blocks carried transactions: input
	// to the adaptive pacing decision in maybeAdvance.
	if v.Round() > n.loadedRound &&
		(len(v.Block.SingleTxs) > 0 || len(v.Block.CrossTxs) > 0) {
		n.loadedRound = v.Round()
	}
	mine := n.myShard()
	for _, tx := range v.Block.CrossTxs {
		if tx.TouchesShard(mine) && !n.dedup.Resolved(tx) {
			n.pendingCross[tx.ID()] = tx
		}
	}
}

// maybeAdvance proposes the next round when the previous round holds
// a 2f+1 certificate quorum — including this node's own certificate,
// so every block links to its proposer's previous block (paper §4:
// "this vertex links to all prior vertices, including those proposed
// by R in round r−1"; without the self-link a slow certificate would
// orphan the block and lose its transactions) — and the batch timer
// has elapsed.
func (n *Node) maybeAdvance() {
	if n.nextRound <= 1 {
		return
	}
	// A node far behind the certified frontier (crash, partition) must
	// rejoin there: blocks proposed at long-past rounds are never
	// referenced by anyone's parents, so they never commit and their
	// transactions starve. The rejoin round must sit on a full
	// certificate quorum — a thin-parent proposal on a leader round
	// would break the quorum intersection Tusk's commit rule needs
	// (observed as diverging commit sequences under asymmetric loss).
	if hi := n.dagStore.HighestRound(); hi >= n.nextRound-1+fastForwardGap {
		for r := hi; r > hi-4 && r >= n.nextRound-1+fastForwardGap; r-- {
			if n.dagStore.CountAtRound(r) >= crypto.QuorumSize(n.n) {
				n.fastForward(r)
				return
			}
		}
		return // frontier known but not yet quorate locally; backfill continues
	}
	prev := n.nextRound - 1
	if n.dagStore.CountAtRound(prev) < crypto.QuorumSize(n.n) {
		return
	}
	if _, ok := n.dagStore.Get(prev, n.cfg.ID); !ok {
		return // wait for our own certificate
	}
	// Adaptive round pacing: while the committee carries traffic —
	// transactions queued here, cross-shard work pending, or recent
	// rounds' blocks seen non-empty (loadedRound) — advance at wire
	// speed the moment the quorum completes. MinRoundInterval throttles
	// only an idle committee, where it caps empty-round spin; under
	// load it would otherwise put a hard pacing floor under every
	// round and dominate commit latency.
	hot := len(n.txQueue) > 0 || len(n.pendingCross) > 0 ||
		n.loadedRound+2 >= n.nextRound
	if hot || time.Since(n.lastProposal) >= n.cfg.MinRoundInterval {
		n.propose()
	}
}

// fastForwardGap is how many certified rounds past this node's last
// proposal the DAG must be before the node abandons its position and
// rejoins at the frontier. Normal jitter skews nodes by a round or
// two; only real outages produce gaps this large.
const fastForwardGap = 10

// fastForward abandons every uncommitted own block (their rounds will
// never be referenced), requeues their transactions, and re-proposes
// at one past the certified frontier so the next frontier round links
// to this node again.
func (n *Node) fastForward(hi types.Round) {
	// Recover transactions from own stale blocks — the ownPending
	// round index, not a scan over every pending block — deduplicated
	// against the queue and each other (a transaction can sit in
	// several stale blocks after validation-failure requeues);
	// committed ones stay filtered by the dedup state in drainQueue.
	queued := make(map[types.Digest]bool, len(n.txQueue))
	for _, tx := range n.txQueue {
		queued[tx.ID()] = true
	}
	for r, d := range n.ownPending {
		if r > hi {
			continue
		}
		delete(n.ownPending, r)
		if b, ok := n.pendingBlocks[d]; ok {
			n.requeueOwnBlock(b, queued)
		}
	}
	// The speculative overlay describes abandoned blocks; drop it.
	n.ownBlocks = nil
	n.spec = make(map[types.Key]types.Value)
	n.preplayer.invalidate()
	n.lastBlock = nil
	n.nextRound = hi + 1
	n.nm.fastForwards.Add(1)
	// a = certified frontier round this node rejoined at.
	n.trace(metrics.EvFastForward, hi+1, uint64(hi), 0)
	n.propose()
}

// requeueOwnBlock returns an abandoned own block's transactions to
// the proposer queue, skipping committed ones and those already
// queued, and unclaims them from dedup so client retransmissions are
// accepted again.
func (n *Node) requeueOwnBlock(b *types.Block, queued map[types.Digest]bool) {
	for _, txs := range [][]*types.Transaction{b.SingleTxs, b.CrossTxs} {
		for _, tx := range txs {
			id := tx.ID()
			if n.dedup.Resolved(tx) || queued[id] {
				continue
			}
			queued[id] = true
			delete(n.seen, id)
			n.txQueue = append(n.txQueue, tx)
		}
	}
}

// trackPendingBlock stores a block by digest and indexes it by round
// (for committed-wave GC and the own-block fast-forward scan).
func (n *Node) trackPendingBlock(b *types.Block) {
	d := b.Digest()
	if _, ok := n.pendingBlocks[d]; ok {
		return
	}
	// First sighting on this replica: the propose→certify stage clock
	// starts here (own blocks stamp at creation, peer blocks at first
	// receipt — both within the proposer's broadcast).
	if b.Stamps.Seen.IsZero() {
		b.Stamps.Seen = time.Now()
	}
	n.pendingBlocks[d] = b
	n.pendingRounds[b.Round] = append(n.pendingRounds[b.Round], d)
}

func mustMarshal(m interface{ MarshalBinary() ([]byte, error) }) []byte {
	b, err := m.MarshalBinary()
	if err != nil {
		panic(err)
	}
	return b
}
