// Package node assembles a full Thunderbolt replica: DAG
// dissemination and certification, Tusk commitment, the shard
// proposer with its Concurrent Executor, parallel validation,
// deterministic cross-shard execution, and non-blocking shard
// reconfiguration (paper §3–§6).
//
// A node plays the paper's three roles at once: shard proposer for
// its currently assigned shard, replica in the common DAG, and
// (periodically) consensus leader. All protocol state is owned by a
// single event-loop goroutine; transports, clients, and executor
// pools interact with it through channels.
package node

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"thunderbolt/internal/contract"
	"thunderbolt/internal/crypto"
	"thunderbolt/internal/dag"
	"thunderbolt/internal/storage"
	"thunderbolt/internal/transport"
	"thunderbolt/internal/tusk"
	"thunderbolt/internal/types"
)

// ExecutionMode selects how a node executes transactions; the paper's
// three evaluated systems (§12).
type ExecutionMode int

const (
	// ModeCE is Thunderbolt proper: Concurrent Executor preplay plus
	// parallel validation.
	ModeCE ExecutionMode = iota
	// ModeOCC is Thunderbolt-OCC: preplay through the OCC baseline
	// plus parallel validation.
	ModeOCC
	// ModeSerial is the Tusk baseline: order first, then execute
	// serially in commit order.
	ModeSerial
)

func (m ExecutionMode) String() string {
	switch m {
	case ModeCE:
		return "thunderbolt"
	case ModeOCC:
		return "thunderbolt-occ"
	case ModeSerial:
		return "tusk-serial"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config assembles a replica.
type Config struct {
	// ID is this replica; N the committee size (n = 3f+1).
	ID types.ReplicaID
	N  int
	// Transport connects the committee.
	Transport transport.Transport
	// Signer/Verifier certify DAG vertices.
	Signer   crypto.Signer
	Verifier crypto.Verifier
	// Registry resolves contracts; Store holds this replica's copy of
	// the state (genesis contents must match across the committee).
	Registry *contract.Registry
	Store    *storage.Store

	// Mode selects the execution pipeline (default ModeCE).
	Mode ExecutionMode
	// Executors sizes the preplay pool; Validators the validation
	// pool (defaults 16 and 16, the paper's system configuration).
	Executors  int
	Validators int
	// BatchSize caps transactions per block (default 500).
	BatchSize int

	// K triggers a Shift vote when a proposer has been silent for K
	// rounds (0 disables). KPrime forces a Shift vote every KPrime
	// proposed rounds (0 disables) — the paper's reconfiguration knobs.
	K      int
	KPrime int

	// TickInterval paces housekeeping (block re-requests); default 25ms.
	TickInterval time.Duration
	// MinRoundInterval throttles round advancement (a batch timer):
	// a node proposes at most one block per interval, preventing
	// empty rounds from spinning the network. Default 1ms.
	MinRoundInterval time.Duration

	// OnCommitTx, if set, fires for every committed transaction.
	OnCommitTx func(tx *types.Transaction, when time.Time)
	// OnCommitWave, if set, fires after each commit wave with the
	// leader round (Figure 16's per-round runtime series).
	OnCommitWave func(epoch types.Epoch, leaderRound types.Round, when time.Time)
	// OnReconfig, if set, fires after each DAG transition.
	OnReconfig func(newEpoch types.Epoch, when time.Time)
}

func (c Config) withDefaults() Config {
	if c.Executors <= 0 {
		c.Executors = 16
	}
	if c.Validators <= 0 {
		c.Validators = 16
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 500
	}
	if c.TickInterval <= 0 {
		c.TickInterval = 25 * time.Millisecond
	}
	if c.MinRoundInterval <= 0 {
		c.MinRoundInterval = time.Millisecond
	}
	return c
}

// Stats is a point-in-time snapshot of a node's counters.
type Stats struct {
	Epoch              types.Epoch
	Round              types.Round
	CommittedTxs       uint64
	CommittedSingle    uint64
	CommittedCross     uint64
	ConvertedToCross   uint64
	Reexecutions       uint64
	RoundsProposed     uint64
	SkipBlocks         uint64
	ShiftBlocks        uint64
	Reconfigurations   uint64
	ValidationFailures uint64
	DroppedAtReconfig  uint64
	// PendingCross is the current number of observed-but-unexecuted
	// cross-shard transactions touching this node's shard.
	PendingCross uint64
	// QueueLen is the current proposer queue length.
	QueueLen uint64
}

// Node is one Thunderbolt replica.
type Node struct {
	cfg Config
	n   int
	f   int

	// inbox is an unbounded queue so the transport delivery goroutine
	// never blocks on a busy event loop (bounded queues here can close
	// a circular wait across nodes and deadlock the whole committee).
	inboxMu  sync.Mutex
	inboxQ   []inboundMsg
	inboxSig chan struct{}

	txCh   chan *types.Transaction
	inspCh chan func(*Node)
	done   chan struct{}
	wg     sync.WaitGroup
	once   sync.Once

	lastProposal time.Time

	// --- event-loop-owned protocol state ---
	epoch     types.Epoch
	dagStore  *dag.Store
	committer *tusk.Committer
	// nextRound is the next round this node will propose.
	nextRound types.Round

	pendingBlocks map[types.Digest]*types.Block       // by block digest
	certWait      map[types.Digest]*types.Certificate // certs waiting for blocks
	orphans       []*dag.Vertex                       // vertices waiting for parents
	collectors    map[types.Digest]*crypto.QuorumCollector
	voted         map[voteKey]types.Digest
	lastSeen      map[types.ReplicaID]types.Round // latest round proposed per replica
	futureMsgs    []inboundMsg                    // messages from future epochs

	// proposer state
	txQueue []*types.Transaction
	// seen deduplicates client retransmissions (§6). Entries carry
	// their enqueue time and expire after seenTTL so a transaction
	// lost to a discarded block is accepted again on retransmission
	// instead of being swallowed forever.
	seen      map[types.Digest]time.Time
	preplayer preplayer
	spec      map[types.Key]types.Value // own uncommitted preplay writes
	ownBlocks []ownBlock                // uncommitted own normal blocks
	// pendingCross holds cross-shard transactions observed in the DAG,
	// not yet executed, that touch this node's shard (drives rules
	// P3/P4 conversions and §5.4 skip blocks).
	pendingCross map[types.Digest]*types.Transaction

	// reconfiguration state
	shiftSent      bool
	roundsProposed int
	committedShift map[types.ReplicaID]bool

	// commit state
	applied map[types.Digest]bool // committed transaction IDs

	statsMu sync.Mutex
	stats   Stats
}

type voteKey struct {
	round    types.Round
	proposer types.ReplicaID
}

type ownBlock struct {
	round  types.Round
	writes []types.RWRecord
}

// New builds (but does not start) a node.
func New(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Transport == nil || cfg.Signer == nil || cfg.Verifier == nil {
		return nil, errors.New("node: transport, signer and verifier are required")
	}
	if cfg.Registry == nil || cfg.Store == nil {
		return nil, errors.New("node: registry and store are required")
	}
	if cfg.N < 1 {
		return nil, errors.New("node: committee size must be positive")
	}
	n := &Node{
		cfg:      cfg,
		n:        cfg.N,
		f:        crypto.FaultBound(cfg.N),
		inboxSig: make(chan struct{}, 1),
		txCh:     make(chan *types.Transaction, 16384),
		inspCh:   make(chan func(*Node)),
		done:     make(chan struct{}),
	}
	n.resetEpochState(0)
	n.applied = make(map[types.Digest]bool)
	n.seen = make(map[types.Digest]time.Time)
	n.preplayer = n.newPreplayer()
	cfg.Transport.SetHandler(func(from types.ReplicaID, mt transport.MsgType, payload []byte) {
		n.inboxMu.Lock()
		n.inboxQ = append(n.inboxQ, inboundMsg{from: from, mt: mt, payload: payload})
		n.inboxMu.Unlock()
		select {
		case n.inboxSig <- struct{}{}:
		default:
		}
	})
	return n, nil
}

// resetEpochState initializes per-epoch protocol state.
func (n *Node) resetEpochState(epoch types.Epoch) {
	n.epoch = epoch
	n.dagStore = dag.NewStore(epoch, n.n)
	n.committer = tusk.NewCommitter(n.dagStore, n.n)
	n.nextRound = 1
	n.pendingBlocks = make(map[types.Digest]*types.Block)
	n.certWait = make(map[types.Digest]*types.Certificate)
	n.orphans = nil
	n.collectors = make(map[types.Digest]*crypto.QuorumCollector)
	n.voted = make(map[voteKey]types.Digest)
	n.lastSeen = make(map[types.ReplicaID]types.Round)
	n.spec = make(map[types.Key]types.Value)
	n.ownBlocks = nil
	n.pendingCross = make(map[types.Digest]*types.Transaction)
	n.shiftSent = false
	n.roundsProposed = 0
	n.committedShift = make(map[types.ReplicaID]bool)
}

// ID returns the replica ID.
func (n *Node) ID() types.ReplicaID { return n.cfg.ID }

// MyShard returns the shard this replica proposes for in the given
// epoch: shard ownership rotates round-robin each reconfiguration
// (proposer of shard x in epoch e is replica (x+e) mod n).
func MyShard(id types.ReplicaID, epoch types.Epoch, n int) types.ShardID {
	e := uint64(epoch) % uint64(n)
	return types.ShardID((uint64(id) + uint64(n) - e) % uint64(n))
}

// ProposerOfShard returns the replica serving shard s in epoch e.
func ProposerOfShard(s types.ShardID, epoch types.Epoch, n int) types.ReplicaID {
	return types.ReplicaID((uint64(s) + uint64(epoch)) % uint64(n))
}

func (n *Node) myShard() types.ShardID {
	return MyShard(n.cfg.ID, n.epoch, n.n)
}

// Store returns this replica's state store (authoritative, committed
// state only).
func (n *Node) Store() *storage.Store { return n.cfg.Store }

// Stats returns a snapshot of the node's counters. PendingCross and
// QueueLen are sampled at the last proposal.
func (n *Node) Stats() Stats {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	return n.stats
}

func (n *Node) bump(f func(*Stats)) {
	n.statsMu.Lock()
	f(&n.stats)
	n.statsMu.Unlock()
}

// Start launches the event loop and proposes the first block.
func (n *Node) Start() {
	n.wg.Add(1)
	go n.run()
}

// Stop terminates the node. It is idempotent.
func (n *Node) Stop() {
	n.once.Do(func() { close(n.done) })
	n.wg.Wait()
}

// Inspect runs f on the event-loop goroutine with exclusive access to
// all protocol state and blocks until it returns. Intended for tests
// and debugging tooling only.
func (n *Node) Inspect(f func(*DebugView)) error {
	donec := make(chan struct{})
	g := func(n *Node) {
		f(&DebugView{
			Epoch:     n.epoch,
			NextRound: n.nextRound,
			QueueLen:  len(n.txQueue),
			Pending:   pendingIDs(n),
			Applied:   func(d types.Digest) bool { return n.applied[d] },
			Seen:      func(d types.Digest) bool { _, ok := n.seen[d]; return ok },
		})
		close(donec)
	}
	select {
	case n.inspCh <- g:
		<-donec
		return nil
	case <-n.done:
		return errors.New("node: stopped")
	}
}

// DebugView is a snapshot of event-loop state handed to Inspect.
type DebugView struct {
	Epoch     types.Epoch
	NextRound types.Round
	QueueLen  int
	Pending   []types.Digest
	Applied   func(types.Digest) bool
	Seen      func(types.Digest) bool
}

func pendingIDs(n *Node) []types.Digest {
	out := make([]types.Digest, 0, len(n.pendingCross))
	for id := range n.pendingCross {
		out = append(out, id)
	}
	return out
}

// Submit enqueues a client transaction. Single-shard transactions
// must be routed to the proposer currently serving their shard;
// misrouted ones are rejected so the client layer can re-route.
func (n *Node) Submit(tx *types.Transaction) error {
	select {
	case n.txCh <- tx:
		return nil
	case <-n.done:
		return errors.New("node: stopped")
	}
}

func (n *Node) run() {
	defer n.wg.Done()
	tick := time.NewTicker(n.cfg.TickInterval)
	defer tick.Stop()
	pace := time.NewTicker(n.cfg.MinRoundInterval)
	defer pace.Stop()
	n.propose()
	for {
		select {
		case <-n.inboxSig:
			n.drainInbox()
		case tx := <-n.txCh:
			n.enqueueTx(tx)
		case f := <-n.inspCh:
			f(n)
		case <-pace.C:
			n.maybeAdvance()
		case <-tick.C:
			n.housekeeping()
		case <-n.done:
			return
		}
	}
}

func (n *Node) drainInbox() {
	for {
		n.inboxMu.Lock()
		q := n.inboxQ
		n.inboxQ = nil
		n.inboxMu.Unlock()
		if len(q) == 0 {
			return
		}
		for _, m := range q {
			n.handle(m)
		}
	}
}

// seenTTL bounds how long a non-committed transaction suppresses
// retransmissions. Long enough to cover normal commit latency, short
// enough that a transaction lost to a discarded block recovers.
const seenTTL = 5 * time.Second

func (n *Node) enqueueTx(tx *types.Transaction) {
	id := tx.ID()
	if n.applied[id] {
		return
	}
	if at, ok := n.seen[id]; ok && time.Since(at) < seenTTL {
		return // local deduplication (§6)
	}
	n.seen[id] = time.Now()
	// Clone: the client retains its pointer for retransmission, and
	// the proposer may promote the transaction (P3/P4/P6).
	n.txQueue = append(n.txQueue, tx.Clone())
}

// housekeeping re-requests blocks for dangling certificates and
// purges self-healing caches.
func (n *Node) housekeeping() {
	for bd, cert := range n.certWait {
		req := (&blockReq{BlockDigest: bd}).marshal()
		_ = n.cfg.Transport.Send(cert.Proposer, MsgBlockReq, req)
	}
	for id := range n.pendingCross {
		if n.applied[id] {
			delete(n.pendingCross, id)
		}
	}
	for id, at := range n.seen {
		if time.Since(at) >= seenTTL {
			delete(n.seen, id)
		}
	}
}

func (n *Node) handle(m inboundMsg) {
	switch m.mt {
	case MsgBlock:
		var b types.Block
		if err := b.UnmarshalBinary(m.payload); err != nil {
			return
		}
		n.handleBlock(m.from, &b)
	case MsgVote:
		var v vote
		if err := v.unmarshal(m.payload); err != nil {
			return
		}
		n.handleVote(m.from, &v)
	case MsgCert:
		var c types.Certificate
		if err := c.UnmarshalBinary(m.payload); err != nil {
			return
		}
		n.handleCert(m.from, &c)
	case MsgBlockReq:
		var r blockReq
		if err := r.unmarshal(m.payload); err != nil {
			return
		}
		n.handleBlockReq(m.from, &r)
	case MsgTx:
		var tx types.Transaction
		if err := tx.UnmarshalBinary(m.payload); err != nil {
			return
		}
		n.enqueueTx(&tx)
	}
}

func (n *Node) handleBlock(from types.ReplicaID, b *types.Block) {
	if b.Epoch > n.epoch {
		n.futureMsgs = append(n.futureMsgs, inboundMsg{from: from, mt: MsgBlock, payload: mustMarshal(b)})
		return
	}
	if b.Epoch < n.epoch || int(b.Proposer) >= n.n {
		return
	}
	d := b.Digest()
	if _, ok := n.pendingBlocks[d]; !ok {
		n.pendingBlocks[d] = b
	}
	if b.Round > n.lastSeen[b.Proposer] {
		n.lastSeen[b.Proposer] = b.Round
	}
	// Vote only for blocks received from their proposer, once per
	// (round, proposer) slot — the anti-equivocation guard.
	if from == b.Proposer {
		k := voteKey{round: b.Round, proposer: b.Proposer}
		if prev, ok := n.voted[k]; !ok || prev == d {
			n.voted[k] = d
			v := &vote{
				Epoch: b.Epoch, Round: b.Round, Proposer: b.Proposer,
				BlockDigest: d, Sig: n.cfg.Signer.Sign(d),
			}
			_ = n.cfg.Transport.Send(b.Proposer, MsgVote, v.marshal())
		}
	}
	// A certificate may have arrived first.
	if cert, ok := n.certWait[d]; ok {
		delete(n.certWait, d)
		n.addVertex(&dag.Vertex{Block: b, Cert: cert})
	}
}

func (n *Node) handleVote(from types.ReplicaID, v *vote) {
	if v.Epoch > n.epoch {
		// A peer already transitioned to the next DAG; keep its vote
		// for replay after our own transition.
		n.futureMsgs = append(n.futureMsgs, inboundMsg{from: from, mt: MsgVote, payload: v.marshal()})
		return
	}
	if v.Epoch < n.epoch || v.Proposer != n.cfg.ID {
		return
	}
	col, ok := n.collectors[v.BlockDigest]
	if !ok {
		return
	}
	cert, err := col.Add(from, v.Sig)
	if err != nil || cert == nil {
		return
	}
	delete(n.collectors, v.BlockDigest)
	_ = n.cfg.Transport.Broadcast(MsgCert, mustMarshal(cert))
}

func (n *Node) handleCert(from types.ReplicaID, c *types.Certificate) {
	if c.Epoch > n.epoch {
		n.futureMsgs = append(n.futureMsgs, inboundMsg{from: from, mt: MsgCert, payload: mustMarshal(c)})
		return
	}
	if c.Epoch < n.epoch {
		return
	}
	if _, ok := n.dagStore.ByCert(c.Digest()); ok {
		return // already placed
	}
	if err := crypto.VerifyCertificate(c, n.n, n.cfg.Verifier); err != nil {
		return
	}
	b, ok := n.pendingBlocks[c.BlockDigest]
	if !ok {
		n.certWait[c.BlockDigest] = c
		req := (&blockReq{BlockDigest: c.BlockDigest}).marshal()
		_ = n.cfg.Transport.Send(from, MsgBlockReq, req)
		return
	}
	n.addVertex(&dag.Vertex{Block: b, Cert: c})
}

func (n *Node) handleBlockReq(from types.ReplicaID, r *blockReq) {
	if b, ok := n.pendingBlocks[r.BlockDigest]; ok {
		_ = n.cfg.Transport.Send(from, MsgBlock, mustMarshal(b))
		return
	}
	if v, ok := n.dagStore.ByBlock(r.BlockDigest); ok {
		_ = n.cfg.Transport.Send(from, MsgBlock, mustMarshal(v.Block))
	}
}

// addVertex inserts a certified vertex, drains any orphans that
// become insertable, advances the round, and processes commits.
func (n *Node) addVertex(v *dag.Vertex) {
	if !n.insertVertex(v) {
		return
	}
	// Orphans may now have parents.
	progress := true
	for progress {
		progress = false
		keep := n.orphans[:0]
		for _, o := range n.orphans {
			if n.inserted(o) {
				continue
			}
			if n.insertVertex(o) {
				progress = true
			} else {
				keep = append(keep, o)
			}
		}
		n.orphans = keep
	}
	n.maybeAdvance()
	n.processCommits()
}

func (n *Node) inserted(v *dag.Vertex) bool {
	_, ok := n.dagStore.ByCert(v.Cert.Digest())
	return ok
}

// insertVertex adds to the DAG store, parking vertices with missing
// parents on the orphan list. Returns true if the vertex landed.
func (n *Node) insertVertex(v *dag.Vertex) bool {
	err := n.dagStore.Add(v)
	var missing *dag.MissingParentError
	switch {
	case err == nil:
		n.onVertexAdded(v)
		return true
	case errors.As(err, &missing):
		n.orphans = append(n.orphans, v)
		return false
	default:
		return false // equivocation or garbage
	}
}

// onVertexAdded tracks proposer liveness and pending cross-shard
// transactions touching this node's shard (rules P3/P4 input).
func (n *Node) onVertexAdded(v *dag.Vertex) {
	if v.Round() > n.lastSeen[v.Proposer()] {
		n.lastSeen[v.Proposer()] = v.Round()
	}
	mine := n.myShard()
	for _, tx := range v.Block.CrossTxs {
		if tx.TouchesShard(mine) && !n.applied[tx.ID()] {
			n.pendingCross[tx.ID()] = tx
		}
	}
}

// maybeAdvance proposes the next round when the previous round holds
// a 2f+1 certificate quorum — including this node's own certificate,
// so every block links to its proposer's previous block (paper §4:
// "this vertex links to all prior vertices, including those proposed
// by R in round r−1"; without the self-link a slow certificate would
// orphan the block and lose its transactions) — and the batch timer
// has elapsed.
func (n *Node) maybeAdvance() {
	if n.nextRound <= 1 {
		return
	}
	prev := n.nextRound - 1
	if n.dagStore.CountAtRound(prev) < crypto.QuorumSize(n.n) {
		return
	}
	if _, ok := n.dagStore.Get(prev, n.cfg.ID); !ok {
		return // wait for our own certificate
	}
	if time.Since(n.lastProposal) >= n.cfg.MinRoundInterval {
		n.propose()
	}
}

func mustMarshal(m interface{ MarshalBinary() ([]byte, error) }) []byte {
	b, err := m.MarshalBinary()
	if err != nil {
		panic(err)
	}
	return b
}
