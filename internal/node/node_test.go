package node_test

import (
	"testing"
	"time"

	"thunderbolt/internal/cluster"
	"thunderbolt/internal/contract"
	"thunderbolt/internal/node"
	"thunderbolt/internal/transport"
	"thunderbolt/internal/types"
	"thunderbolt/internal/workload"
)

// fastCluster builds a small low-latency cluster for protocol tests.
func fastCluster(t *testing.T, cfg cluster.Config) *cluster.Cluster {
	t.Helper()
	if cfg.N == 0 {
		cfg.N = 4
	}
	if cfg.Latency == nil {
		cfg.Latency = transport.UniformLatency(100*time.Microsecond, 500*time.Microsecond)
	}
	if cfg.Accounts == 0 {
		cfg.Accounts = 64
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 64
	}
	if cfg.Executors == 0 {
		cfg.Executors = 4
	}
	if cfg.Validators == 0 {
		cfg.Validators = 4
	}
	if cfg.TickInterval == 0 {
		cfg.TickInterval = 5 * time.Millisecond
	}
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

func submitBatch(t *testing.T, c *cluster.Cluster, txs []*types.Transaction) {
	t.Helper()
	errs := make(chan error, len(txs))
	for _, tx := range txs {
		go func(tx *types.Transaction) {
			errs <- c.SubmitWait(tx, 2*time.Second, 30*time.Second)
		}(tx)
	}
	for range txs {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestSingleShardCommitsAndConverges(t *testing.T) {
	c := fastCluster(t, cluster.Config{Seed: 1})
	gen := workload.NewGenerator(workload.Config{
		Accounts: 64, Shards: 4, Theta: 0.7, ReadRatio: 0.3, Seed: 1, Client: 1,
	})
	txs := gen.Batch(120)
	submitBatch(t, c, txs)
	for _, tx := range txs {
		if !c.Committed(tx.ID()) {
			t.Fatal("committed wait returned but commit not recorded")
		}
	}
	if err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Every node executed through the CE pipeline: no validation
	// failures in an honest run.
	for i := 0; i < c.N(); i++ {
		st := c.Node(i).Stats()
		if st.ValidationFailures != 0 {
			t.Fatalf("replica %d saw %d validation failures", i, st.ValidationFailures)
		}
	}
}

func TestCrossShardAtomicityAndConservation(t *testing.T) {
	c := fastCluster(t, cluster.Config{Seed: 2, Accounts: 40})
	// Pure cross-shard transfers: total balance is conserved only if
	// every transfer executes exactly once on every replica.
	gen := workload.NewGenerator(workload.Config{
		Accounts: 40, Shards: 4, Theta: 0.5, ReadRatio: 0, CrossPct: 1.0, Seed: 2, Client: 1,
	})
	var txs []*types.Transaction
	for len(txs) < 80 {
		tx := gen.Next()
		if tx.Kind == types.CrossShard && tx.Contract == workload.ContractSendPayment {
			txs = append(txs, tx)
		}
	}
	before, err := workload.TotalBalance(c.Node(0).Store(), 40)
	if err != nil {
		t.Fatal(err)
	}
	submitBatch(t, c, txs)
	if err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	after, err := workload.TotalBalance(c.Node(0).Store(), 40)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("cross-shard transfers broke conservation: %d -> %d", before, after)
	}
}

func TestMixedWorkloadConverges(t *testing.T) {
	c := fastCluster(t, cluster.Config{Seed: 3})
	gen := workload.NewGenerator(workload.Config{
		Accounts: 64, Shards: 4, Theta: 0.8, ReadRatio: 0.4, CrossPct: 0.2, Seed: 3, Client: 1,
	})
	submitBatch(t, c, gen.Batch(150))
	if err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestSerialTuskMode(t *testing.T) {
	c := fastCluster(t, cluster.Config{Seed: 4, Mode: node.ModeSerial})
	gen := workload.NewGenerator(workload.Config{
		Accounts: 64, Shards: 4, Theta: 0.7, ReadRatio: 0.5, CrossPct: 0.1, Seed: 4, Client: 1,
	})
	submitBatch(t, c, gen.Batch(80))
	if err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestOCCMode(t *testing.T) {
	c := fastCluster(t, cluster.Config{Seed: 5, Mode: node.ModeOCC})
	gen := workload.NewGenerator(workload.Config{
		Accounts: 64, Shards: 4, Theta: 0.7, ReadRatio: 0.5, Seed: 5, Client: 1,
	})
	submitBatch(t, c, gen.Batch(80))
	if err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestPeriodicReconfigurationIsNonBlocking(t *testing.T) {
	// KPrime forces Shift votes every few dozen rounds; commits must
	// keep flowing across DAG transitions.
	c := fastCluster(t, cluster.Config{Seed: 6, KPrime: 30})
	gen := workload.NewGenerator(workload.Config{
		Accounts: 64, Shards: 4, Theta: 0.7, ReadRatio: 0.3, Seed: 6, Client: 1,
	})
	// Keep load flowing until at least two reconfigurations have
	// happened, proving commits continue across DAG transitions.
	deadline := time.Now().Add(60 * time.Second)
	for c.Reconfigurations() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d reconfigurations despite KPrime", c.Reconfigurations())
		}
		submitBatch(t, c, gen.Batch(20))
	}
	// And liveness persists after the rotations.
	submitBatch(t, c, gen.Batch(40))
	if err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	t.Logf("reconfigurations: %d", c.Reconfigurations())
}

func TestCensorshipTriggersReconfiguration(t *testing.T) {
	// Crash one proposer; K-round silence must trigger Shift votes and
	// a shard rotation, restoring liveness for the censored shard.
	c := fastCluster(t, cluster.Config{Seed: 7, K: 6})
	victim := types.ReplicaID(2)
	c.Network().Crash(victim)

	gen := workload.NewGenerator(workload.Config{
		Accounts: 64, Shards: 4, Theta: 0.5, ReadRatio: 0.3, Seed: 7, Client: 1,
	})
	// Submit transactions for every shard, including the crashed
	// proposer's; client retries route them to the rotated proposer.
	var txs []*types.Transaction
	perShard := map[types.ShardID]int{}
	for len(txs) < 60 {
		tx := gen.Next()
		txs = append(txs, tx)
		perShard[tx.Shards[0]]++
	}
	for _, s := range []types.ShardID{0, 1, 2, 3} {
		if perShard[s] == 0 {
			t.Fatalf("workload produced no transactions for shard %d", s)
		}
	}
	errs := make(chan error, len(txs))
	for _, tx := range txs {
		go func(tx *types.Transaction) {
			errs <- c.SubmitWait(tx, 500*time.Millisecond, 60*time.Second)
		}(tx)
	}
	for range txs {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if c.Reconfigurations() == 0 {
		t.Fatal("censored shard never rotated")
	}
	// Convergence among the live replicas (replicas commit the same
	// sequence but not at the same instant).
	if err := c.WaitConvergedAmong(15*time.Second, 0, 1, 3); err != nil {
		t.Fatalf("live replicas diverge: %v", err)
	}
	t.Logf("reconfigurations after censorship: %d", c.Reconfigurations())
}

func TestCommitOrderIdenticalAcrossReplicas(t *testing.T) {
	// Per-replica commit logs must be identical (safety §9): use the
	// storage commit log retained by each node... the stores don't
	// retain logs by default, so compare final state plus per-node
	// committed counts after quiescence.
	c := fastCluster(t, cluster.Config{Seed: 8})
	gen := workload.NewGenerator(workload.Config{
		Accounts: 64, Shards: 4, Theta: 0.9, ReadRatio: 0.2, CrossPct: 0.3, Seed: 8, Client: 1,
	})
	submitBatch(t, c, gen.Batch(100))
	if err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// After convergence every replica must settle on the same
	// committed-transaction count.
	if err := c.WaitCommitCountsEqual(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestVMContractsThroughCluster(t *testing.T) {
	c := fastCluster(t, cluster.Config{Seed: 9, Accounts: 8})
	code, err := workload.SendPaymentProgram().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	smap := types.NewShardMap(4)
	var txs []*types.Transaction
	for i := 0; i < 12; i++ {
		src := workload.AccountName(i % 8)
		shard := smap.ShardOf(types.Key(src))
		// Self transfer keeps it single-shard regardless of pairing.
		txs = append(txs, &types.Transaction{
			Client: 9, Nonce: uint64(i + 1), Kind: types.SingleShard,
			Shards: []types.ShardID{shard}, Code: code,
			Args: [][]byte{[]byte(src), []byte(src), contract.EncodeInt64(1)},
		})
	}
	submitBatch(t, c, txs)
	if err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}
