package node

import (
	"fmt"

	"thunderbolt/internal/storage"
	"thunderbolt/internal/types"
)

// Restart-from-disk recovery (the durable storage backend's node
// side). The store alone is not enough to restart a replica: the
// commit path's dedup state (per-client nonce floors, legacy digest
// ring) must sit at exactly the same committed position as the store,
// or the node would re-apply — or wrongly skip — blocks during
// in-epoch catch-up. The durable backend therefore persists a sidecar
// in lockstep with the state:
//
//   - every commit-path apply carries a note describing the dedup
//     mutations the node performs right after it (resolved identities,
//     epoch transitions, snapshot-jump restores), and
//   - every checkpoint captures a meta blob with the full dedup
//     state, the commit counter, and the epoch as of the records
//     already applied.
//
// Reopening replays meta + notes alongside the store, after which the
// replica resumes in its last durable epoch with a bit-identical
// dedup — re-derived waves below its commit position validate as
// duplicates (no double application), and the lost group-commit
// suffix, if any, re-applies through normal in-epoch catch-up.
//
// Note discipline (what makes checkpoints cut at arbitrary records
// consistent): a record's note describes mutations the node performs
// AFTER the corresponding ApplyNote returns, and the backend cuts
// checkpoints at the START of an apply — so a checkpoint's meta
// always reflects exactly the mutations of the records it covers.
// The snapshot-jump restore (kind 3) is the one deliberate exception:
// it is absolute state, so replaying it over a meta that already
// contains it is idempotent.

// WAL note kinds.
const (
	walNoteMarks      = 1 // resolved-transaction identities of one commit
	walNoteTransition = 2 // epoch transition (+ idle-session sweep)
	walNoteRestore    = 3 // snapshot epoch-jump: absolute dedup/commit state
	walNoteVote       = 4 // first vote on a (round, proposer) slot
)

// applyCommit applies one commit-path write batch. On a durable
// backend the note rides the same WAL record; on the in-memory
// backend it is dropped (nothing to recover).
func (n *Node) applyCommit(writes []types.RWRecord, note []byte) {
	if n.durable != nil {
		n.cfg.Store.ApplyNote(writes, note)
		return
	}
	n.cfg.Store.Apply(writes)
}

// noteOnly persists a bookkeeping note with no writes (deterministic
// failure marks, epoch transitions). A no-op without a durable
// backend, so memory-backed replicas keep their exact historical
// sequence trajectory.
func (n *Node) noteOnly(note []byte) {
	if n.durable != nil && note != nil {
		n.cfg.Store.ApplyNote(nil, note)
	}
}

// markNote encodes a walNoteMarks payload: the identities resolved by
// the commit being applied, committed first, deterministic failures
// second. Returns nil when no durable backend listens.
type markNote struct {
	committed []noteIdentity
	failed    []noteIdentity
}

type noteIdentity struct {
	sessioned bool
	client    uint64
	nonce     uint64
	id        types.Digest
}

func identityOf(tx *types.Transaction) noteIdentity {
	if tx.Client != 0 && tx.Nonce != 0 {
		return noteIdentity{sessioned: true, client: tx.Client, nonce: tx.Nonce}
	}
	return noteIdentity{id: tx.ID()}
}

// newMarkNote returns a collector when the backend is durable, nil
// otherwise (all methods tolerate the nil receiver, so call sites
// stay unconditional).
func (n *Node) newMarkNote() *markNote {
	if n.durable == nil {
		return nil
	}
	return &markNote{}
}

func (m *markNote) commit(tx *types.Transaction) {
	if m == nil {
		return
	}
	m.committed = append(m.committed, identityOf(tx))
}

func (m *markNote) fail(tx *types.Transaction) {
	if m == nil {
		return
	}
	m.failed = append(m.failed, identityOf(tx))
}

// bytes renders the note, or nil when empty/disabled.
func (m *markNote) bytes() []byte {
	if m == nil || (len(m.committed) == 0 && len(m.failed) == 0) {
		return nil
	}
	e := types.NewEncoder()
	e.U8(walNoteMarks)
	for _, ids := range [][]noteIdentity{m.committed, m.failed} {
		e.U32(uint32(len(ids)))
		for _, id := range ids {
			if id.sessioned {
				e.U8(1)
				e.U64(id.client)
				e.U64(id.nonce)
			} else {
				e.U8(0)
				e.Digest(id.id)
			}
		}
	}
	return e.Sum()
}

// voteNote encodes a walNoteVote payload: the slot this replica is
// about to sign and the digest it signs. Journaled before the first
// vote per slot leaves the replica (handleBlock), it closes the
// crash-window equivocation hazard: without it, a replica that voted,
// crashed, and restarted had an empty voted map and could be induced
// into signing a conflicting digest for an already-voted slot — and
// two certificates for one slot let commit sequences diverge. Written
// even when the backend later drops it (noteOnly filters); the
// allocation only happens once per (round, proposer) slot.
func voteNote(epoch types.Epoch, k voteKey, d types.Digest) []byte {
	e := types.NewEncoder()
	e.U8(walNoteVote)
	e.U64(uint64(epoch))
	e.U64(uint64(k.round))
	e.U32(uint32(k.proposer))
	e.Digest(d)
	return e.Sum()
}

// transitionNote encodes a walNoteTransition payload.
func transitionNote(newEpoch types.Epoch) []byte {
	e := types.NewEncoder()
	e.U8(walNoteTransition)
	e.U64(uint64(newEpoch))
	return e.Sum()
}

// restoreNote encodes a walNoteRestore payload from the node's
// current (just-restored) dedup state.
func (n *Node) restoreNote(epoch types.Epoch, commits uint64) []byte {
	if n.durable == nil {
		return nil
	}
	e := types.NewEncoder()
	e.U8(walNoteRestore)
	e.U64(uint64(epoch))
	e.U64(commits)
	n.dedup.EncodeState(e)
	return e.Sum()
}

// walMeta is the checkpoint sidecar: the dedup configuration it was
// written under (the same committee contract the snapshot-install
// path binds — a replica restarted with a different window would
// misparse the bitmaps or re-run idle sweeps on the wrong horizon and
// silently diverge from the committee), then epoch, commit counter,
// full dedup state, and the current epoch's voted slots as of the
// records already applied. The votes must ride the meta, not just
// their notes: a checkpoint truncates earlier notes, and losing
// pre-checkpoint vote records would reopen the equivocation window
// they exist to close. Runs synchronously on the applying goroutine
// (the event loop), so the reads are safe.
func (n *Node) walMeta() []byte {
	e := types.NewEncoder()
	e.U32(uint32(n.dedup.Window()))
	e.U32(uint32(n.dedup.LegacyCap()))
	e.U32(uint32(n.cfg.SessionIdleEpochs))
	e.U64(uint64(n.epoch))
	e.U64(n.Stats().CommittedTxs)
	n.dedup.EncodeState(e)
	e.U32(uint32(len(n.voted)))
	for k, d := range n.voted {
		e.U64(uint64(k.round))
		e.U32(uint32(k.proposer))
		e.Digest(d)
	}
	return e.Sum()
}

// recoverFromBackend rebuilds commit-path state from the durable
// backend's sidecar: checkpoint meta first, then the replayed record
// notes in apply order. Returns the epoch to resume in.
func (n *Node) recoverFromBackend(rec storage.Recoverable) (types.Epoch, error) {
	epoch := types.Epoch(0)
	commits := uint64(0)
	if meta := rec.RecoveredMeta(); len(meta) > 0 {
		d := types.NewDecoder(meta)
		window, legacy, idle := int(d.U32()), int(d.U32()), int(d.U32())
		if window != n.dedup.Window() || legacy != n.dedup.LegacyCap() || idle != n.cfg.SessionIdleEpochs {
			return 0, fmt.Errorf(
				"node: durable state was written under dedup config window=%d legacy=%d idleEpochs=%d, node configured window=%d legacy=%d idleEpochs=%d — recovery under a different config would diverge from the committee",
				window, legacy, idle, n.dedup.Window(), n.dedup.LegacyCap(), n.cfg.SessionIdleEpochs)
		}
		epoch = types.Epoch(d.U64())
		commits = d.U64()
		if err := n.dedup.DecodeState(d); err != nil {
			return 0, fmt.Errorf("node: corrupt durable meta: %w", err)
		}
		votes := d.U32()
		for i := uint32(0); i < votes && d.Err() == nil; i++ {
			k := voteKey{round: types.Round(d.U64()), proposer: types.ReplicaID(d.U32())}
			dig := d.Digest()
			if n.recoveredVotes == nil {
				n.recoveredVotes = make(map[voteKey]types.Digest)
			}
			n.recoveredVotes[k] = dig
		}
		if err := d.Finish(); err != nil {
			return 0, fmt.Errorf("node: corrupt durable meta: %w", err)
		}
	}
	for _, note := range rec.RecoveredNotes() {
		d := types.NewDecoder(note)
		switch kind := d.U8(); kind {
		case walNoteMarks:
			for pass := 0; pass < 2; pass++ {
				cnt := d.U32()
				for i := uint32(0); i < cnt && d.Err() == nil; i++ {
					if d.U8() == 1 {
						n.dedup.MarkSession(d.U64(), d.U64())
					} else {
						n.dedup.MarkDigest(d.Digest())
					}
					if pass == 0 {
						commits++
					}
				}
			}
		case walNoteTransition:
			// Re-run the deterministic idle sweep the live transition
			// performed, then adopt the epoch. Votes belonged to the
			// discarded epoch's DAG; drop them.
			n.dedup.ExpireIdle(n.cfg.SessionIdleEpochs)
			epoch = types.Epoch(d.U64())
			n.recoveredVotes = nil
		case walNoteRestore:
			// Mirror the live install: a same-epoch (mid-epoch) install
			// keeps the vote map — the slots are still this epoch's —
			// while a cross-epoch jump discards it with the old DAG.
			re := types.Epoch(d.U64())
			if re != epoch {
				n.recoveredVotes = nil
			}
			epoch = re
			commits = d.U64()
			if err := n.dedup.DecodeState(d); err != nil {
				return 0, fmt.Errorf("node: corrupt durable restore note: %w", err)
			}
		case walNoteVote:
			// Re-arm the anti-equivocation guard: only votes cast in the
			// epoch this replica resumes in matter (earlier epochs' DAGs
			// are gone; the transition/restore cases above clear them).
			ve := types.Epoch(d.U64())
			k := voteKey{round: types.Round(d.U64()), proposer: types.ReplicaID(d.U32())}
			dig := d.Digest()
			if ve == epoch {
				if n.recoveredVotes == nil {
					n.recoveredVotes = make(map[voteKey]types.Digest)
				}
				n.recoveredVotes[k] = dig
			}
		default:
			return 0, fmt.Errorf("node: unknown durable note kind %d", kind)
		}
		if err := d.Err(); err != nil {
			return 0, fmt.Errorf("node: corrupt durable note: %w", err)
		}
	}
	rec.ReleaseRecovered() // sidecar consumed; free the buffers
	n.clogMu.Lock()
	n.clogStart = commits
	n.clogMu.Unlock()
	// Absolute sets: the restarted replica resumes its committed
	// position from the sidecar instead of re-counting from zero.
	n.nm.committedTxs.Store(commits)
	n.nm.epoch.Set(int64(epoch))
	return epoch, nil
}
