package node

import (
	"thunderbolt/internal/metrics"
	"thunderbolt/internal/transport"
	"thunderbolt/internal/types"
)

// The outbox coalesces wire traffic: every protocol message a node
// produces during one event-loop pass is queued here and flushed once
// per pass — broadcast messages plus any per-peer replies fold into a
// single MsgBatch frame per peer, so a round costs O(1) sends per
// peer instead of O(messages). Payloads are marshaled exactly once at
// queue time, never per destination.
//
// Self-delivery is handled inline by the call sites (a proposer votes
// for its own block directly, a completed certificate is placed
// before its broadcast), so the flush skips this node — the old
// loopback sends paid a full marshal/clone/decode cycle per round for
// state the node already held.

// outMsg is one queued wire message.
type outMsg struct {
	mt      transport.MsgType
	payload []byte
}

// Send-error classes for Stats: transport failures are counted per
// coarse message class so chaos scenarios can assert that steady-state
// sends to live peers never fail, and pinpoint the class when one does.
const (
	classBlock = iota // block dissemination (proposals, serve replies)
	classVote
	classCert
	classSync  // recovery requests: block/cert/round pulls, tx relay
	classSnap  // snapshot rescue traffic
	classBatch // coalesced frames
	classOther // gateway client replies and anything unclassified
	numSendClasses
)

// sendClassName labels the Stats.SendErrors indices.
var sendClassName = [numSendClasses]string{
	"block", "vote", "cert", "sync", "snap", "batch", "other",
}

func sendClassOf(mt transport.MsgType) int {
	switch mt {
	case MsgBlock:
		return classBlock
	case MsgVote:
		return classVote
	case MsgCert:
		return classCert
	case MsgBlockReq, MsgCertReq, MsgRoundReq, MsgTx:
		return classSync
	case MsgSnapshotReq, MsgSnapshot, MsgSnapManifestReq, MsgSnapManifest,
		MsgSnapChunkReq, MsgSnapChunk:
		return classSnap
	case MsgBatch:
		return classBatch
	default:
		return classOther
	}
}

// noteSendErr accounts a transport send result. Errors are counted
// per message class, traced in the flight recorder, and reported
// through the node's rate-limited logger (a steady-state send to a
// live peer failing is an operational signal; the limiter keeps a
// sustained flap from repeating it at event-loop frequency).
func (n *Node) noteSendErr(mt transport.MsgType, err error) {
	if err == nil {
		return
	}
	class := sendClassOf(mt)
	n.nm.sendErrors[class].Add(1)
	// a = send class index (see sendClassName).
	n.trace(metrics.EvSendErr, n.nextRound-1, uint64(class), 0)
	n.nm.log.Warnf("transport send failed (class=%s): %v", sendClassName[class], err)
}

// queueBcast queues one message for every committee peer (self
// excluded; the caller has already applied it locally).
func (n *Node) queueBcast(mt transport.MsgType, payload []byte) {
	n.outBcast = append(n.outBcast, outMsg{mt: mt, payload: payload})
}

// queueTo queues one message for a single committee peer. Messages to
// this node itself are dropped — every call site handles its own
// state inline.
func (n *Node) queueTo(to types.ReplicaID, mt transport.MsgType, payload []byte) {
	if to == n.cfg.ID {
		return
	}
	if int(to) >= n.n {
		// Not a committee member (gateway client endpoint): clients do
		// not speak MsgBatch, send immediately.
		n.sendNow(to, mt, payload)
		return
	}
	n.outDirect[to] = append(n.outDirect[to], outMsg{mt: mt, payload: payload})
}

// sendNow bypasses coalescing (gateway client replies).
func (n *Node) sendNow(to types.ReplicaID, mt transport.MsgType, payload []byte) {
	n.noteSendErr(mt, n.cfg.Transport.Send(to, mt, payload))
}

// flushOutbox drains the queued traffic: per peer, a single message
// goes out as itself and anything more folds into one MsgBatch frame.
// The frame buffer is reused across flushes — both transports copy
// the payload before returning.
func (n *Node) flushOutbox() {
	direct := 0
	for i := range n.outDirect {
		direct += len(n.outDirect[i])
	}
	if len(n.outBcast) == 0 && direct == 0 {
		return
	}
	var flushBytes, flushFrames int64
	for p := 0; p < n.n; p++ {
		to := types.ReplicaID(p)
		if to == n.cfg.ID {
			continue
		}
		msgs := n.outDirect[p]
		total := len(n.outBcast) + len(msgs)
		switch {
		case total == 0:
			continue
		case total == 1:
			m := outMsg{}
			if len(n.outBcast) == 1 {
				m = n.outBcast[0]
			} else {
				m = msgs[0]
			}
			n.noteSendErr(m.mt, n.cfg.Transport.Send(to, m.mt, m.payload))
			flushBytes += int64(len(m.payload))
			flushFrames++
		default:
			frame := n.frameBuf[:0]
			for _, m := range n.outBcast {
				frame = appendBatched(frame, m.mt, m.payload)
			}
			for _, m := range msgs {
				frame = appendBatched(frame, m.mt, m.payload)
			}
			n.frameBuf = frame
			n.noteSendErr(MsgBatch, n.cfg.Transport.Send(to, MsgBatch, frame))
			flushBytes += int64(len(frame))
			flushFrames++
		}
	}
	// Coalescing-efficiency gauges: wire cost of this flush.
	n.nm.outboxFlushBytes.Set(flushBytes)
	n.nm.outboxFlushFrames.Set(flushFrames)
	n.outBcast = n.outBcast[:0]
	for i := range n.outDirect {
		n.outDirect[i] = n.outDirect[i][:0]
	}
}
