package node

import (
	"sync"
	"time"

	"thunderbolt/internal/ce"
	"thunderbolt/internal/crypto"
	"thunderbolt/internal/depgraph"
	"thunderbolt/internal/gateway"
	"thunderbolt/internal/metrics"
	"thunderbolt/internal/occ"
	"thunderbolt/internal/tusk"
	"thunderbolt/internal/types"
)

// preplayer abstracts the preplay engine so Thunderbolt (CE) and
// Thunderbolt-OCC share the proposer pipeline.
type preplayer interface {
	// preplay executes txs against the given speculative reader and
	// returns the CE-shaped batch result.
	preplay(read func(types.Key) types.Value, txs []*types.Transaction) *ce.BatchResult
	// invalidate drops any state the engine carries between
	// consecutive preplays. Call it whenever the speculative view or
	// the committed store changed other than by folding in the
	// engine's own last batch: foreign-block commits, cross-shard
	// commits, overlay rollbacks, epoch transitions.
	invalidate()
}

func (n *Node) newPreplayer() preplayer {
	switch n.cfg.Mode {
	case ModeOCC:
		return &occPreplayer{
			exec: occ.New(occ.Config{Executors: n.cfg.Executors, Registry: n.cfg.Registry}),
		}
	default:
		exec := ce.New(ce.Config{Executors: n.cfg.Executors, Registry: n.cfg.Registry})
		return &cePreplayer{sess: exec.NewSession()}
	}
}

// cePreplayer drives the CE through a session so the dependency-graph
// arena is recycled round over round and each preplay's committed tips
// become the next one's cached base values: fillBlock folds the same
// write sets into n.spec, so consecutive preplays see the carried tips
// verbatim until an invalidate site fires.
type cePreplayer struct{ sess *ce.Session }

func (p *cePreplayer) preplay(read func(types.Key) types.Value, txs []*types.Transaction) *ce.BatchResult {
	return p.sess.ExecuteBatch(depgraph.BaseReader(read), txs)
}

func (p *cePreplayer) invalidate() { p.sess.Invalidate() }

// occPreplayer adapts the OCC baseline to the proposer pipeline (the
// paper's Thunderbolt-OCC configuration): OCC validates against a
// lazily materialized versioned view over the speculative reader.
type occPreplayer struct{ exec *occ.OCC }

func (p *occPreplayer) preplay(read func(types.Key) types.Value, txs []*types.Transaction) *ce.BatchResult {
	return p.exec.ExecuteBatch(newSpecVersioned(read), txs)
}

func (p *occPreplayer) invalidate() {} // OCC builds its view per preplay

// specVersioned implements occ.VersionedStore over a read-through
// base. Keys written during the batch carry real versions; untouched
// keys read from the base at version 0 (the base is immutable for the
// duration of one preplay, so version 0 is stable).
type specVersioned struct {
	read func(types.Key) types.Value

	mu   sync.Mutex
	data map[types.Key]specEntry
	seq  uint64
}

type specEntry struct {
	val types.Value
	ver uint64
}

func newSpecVersioned(read func(types.Key) types.Value) *specVersioned {
	return &specVersioned{read: read, data: make(map[types.Key]specEntry)}
}

func (s *specVersioned) GetVersioned(k types.Key) (types.Value, uint64, bool) {
	s.mu.Lock()
	e, ok := s.data[k]
	s.mu.Unlock()
	if ok {
		return e.val, e.ver, true
	}
	v := s.read(k)
	return v, 0, v != nil
}

func (s *specVersioned) Version(k types.Key) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.data[k].ver
}

func (s *specVersioned) Apply(writes []types.RWRecord) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	for _, w := range writes {
		s.data[w.Key] = specEntry{val: w.Value.Clone(), ver: s.seq}
	}
	return s.seq
}

// propose builds and broadcasts this node's block for n.nextRound,
// then advances nextRound. Called once at start (round 1) and from
// maybeAdvance as certificate quorums form.
func (n *Node) propose() {
	r := n.nextRound
	n.nextRound++
	n.roundsProposed++
	n.lastProposal = time.Now()
	n.lastProgress = n.lastProposal

	var parents []types.Digest
	if r > 1 {
		parents = n.dagStore.CertsAtRound(r - 1)
	}
	blk := &types.Block{
		Epoch: n.epoch, Round: r, Proposer: n.cfg.ID, Shard: n.myShard(),
		Kind: types.NormalBlock, Parents: parents,
		ProposedUnixNano: time.Now().UnixNano(),
	}

	switch {
	case n.shouldShift(r):
		blk.Kind = types.ShiftBlock
		n.shiftSent = true
		n.nm.shiftBlocks.Add(1)
		n.trace(metrics.EvShift, r, 0, 0)
	default:
		n.fillBlock(blk, r)
	}

	n.nm.roundsProposed.Add(1)
	n.nm.epoch.Set(int64(n.epoch))
	n.nm.round.Set(int64(r))
	n.nm.pendingCross.Set(int64(len(n.pendingCross)))
	n.nm.queueLen.Set(int64(len(n.txQueue)))
	n.nm.roundsInFlight.Set(int64(r) - int64(n.committer.LastLeaderRound()))
	// a = single-shard txs carried, b = cross-shard txs carried.
	n.trace(metrics.EvPropose, r, uint64(len(blk.SingleTxs)), uint64(len(blk.CrossTxs)))
	// Register the quorum collector before broadcasting so even the
	// self-vote lands in it. Keep the block (and its encoding — one
	// marshal serves the broadcast and any housekeeping rebroadcast):
	// self-delivery is lossy under injected faults, and housekeeping
	// re-sends lastBlockRaw until the certificate lands.
	d := blk.Digest()
	col := crypto.NewQuorumCollector(n.n, n.verifier, d, blk.Epoch, blk.Round, blk.Proposer)
	n.collectors[d] = col
	n.collectorRound[r] = d
	n.trackPendingBlock(blk)
	n.ownPending[r] = d
	n.lastBlock = blk
	n.lastBlockRaw = mustMarshal(blk)
	n.lastBlockVotes = 0
	n.queueBcast(MsgBlock, n.lastBlockRaw)
	// Vote for our own block inline. The outbox excludes self from
	// broadcasts, so the old loopback path (Broadcast → own inbox →
	// handleBlock → Send-to-self → handleVote) is gone; this is the
	// same vote it would have produced, minus two marshal/decode
	// round-trips per round. The anti-equivocation journal entry is
	// written before the signature exists, exactly as handleBlock does
	// for peer blocks.
	k := voteKey{round: blk.Round, proposer: blk.Proposer}
	if prev, ok := n.voted[k]; !ok || prev == d {
		if !ok {
			n.noteOnly(voteNote(blk.Epoch, k, d))
		}
		n.voted[k] = d
		if cert, err := col.Add(n.cfg.ID, n.cfg.Signer.Sign(d)); err == nil && cert != nil {
			// n=1 degenerate committee: the self-vote alone is a quorum.
			delete(n.collectors, d)
			n.handleCert(n.cfg.ID, cert, nil)
			n.queueBcast(MsgCert, mustMarshal(cert))
		}
	}
}

// shouldShift evaluates the paper's four Shift-block conditions (§6).
func (n *Node) shouldShift(r types.Round) bool {
	if n.shiftSent { // condition (4): at most one Shift per epoch
		return false
	}
	// Condition (1): some proposer silent for K rounds.
	if n.cfg.K > 0 && r > types.Round(n.cfg.K)+1 {
		for p := types.ReplicaID(0); int(p) < n.n; p++ {
			if p == n.cfg.ID {
				continue
			}
			if n.lastSeen[p]+types.Round(n.cfg.K) < r {
				return true
			}
		}
	}
	// Condition (2): periodic rotation after K' proposed rounds.
	if n.cfg.KPrime > 0 && n.roundsProposed > n.cfg.KPrime {
		return true
	}
	// Condition (3): f+1 Shift blocks observed in the previous round.
	if r > 1 {
		shifts := 0
		for _, v := range n.dagStore.AtRound(r - 1) {
			if v.Block.Kind == types.ShiftBlock {
				shifts++
			}
		}
		if shifts >= n.f+1 {
			return true
		}
	}
	return false
}

// fillBlock populates a normal block with this round's transactions,
// applying the proposal rules:
//
//	P1: cross-shard transactions go straight into the block.
//	P3/P4: while unfinalized cross-shard transactions touching this
//	       shard exist, single-shard transactions are converted to
//	       cross-shard (identity preserved) instead of preplayed; if
//	       there is nothing to carry, the block becomes a skip block
//	       (§5.4) so the DAG keeps advancing.
//	P6: if the previous leader's vertex is missing from the local
//	    DAG, conversions apply as well (leader delay).
//
// Otherwise single-shard transactions are preplayed by the CE and the
// block carries their results.
func (n *Node) fillBlock(blk *types.Block, r types.Round) {
	singles, cross := n.drainQueue()
	blk.CrossTxs = cross

	if n.cfg.Mode == ModeSerial {
		// Tusk baseline: order everything, execute after commit.
		blk.SingleTxs = singles
		return
	}

	mustConvert := len(n.pendingCross) > 0 || n.missingLeader(r)
	if mustConvert {
		if len(singles) == 0 && len(cross) == 0 {
			blk.Kind = types.SkipBlock
			n.nm.skipBlocks.Add(1)
			// a = pending cross-shard txs forcing the skip.
			n.trace(metrics.EvSkip, r, uint64(len(n.pendingCross)), 0)
			return
		}
		for _, tx := range singles {
			tx.Promote()
			blk.CrossTxs = append(blk.CrossTxs, tx)
		}
		n.nm.convertedToCross.Add(uint64(len(singles)))
		return
	}
	if len(singles) == 0 {
		return
	}
	res := n.preplayer.preplay(n.specRead, singles)
	blk.SingleTxs = res.Schedule
	blk.Results = res.Results
	n.nm.reexecutions.Add(uint64(res.Reexecutions))
	// Fold the preplay outcome into the speculative view so the next
	// round's batch builds on it.
	var writes []types.RWRecord
	for i := range res.Results {
		for _, w := range res.Results[i].WriteSet {
			n.spec[w.Key] = w.Value
			writes = append(writes, w)
		}
	}
	n.ownBlocks = append(n.ownBlocks, ownBlock{round: r, writes: writes})
	// Terminal failures are dropped permanently (they can never
	// commit); unqueue them from dedup so a retransmission is not
	// silently swallowed for the rest of the seen TTL. No negative-ack
	// here: a deterministic contract failure would fail again, and
	// acking it would only tighten a futile resubmit loop.
	for i := range res.Failed {
		delete(n.seen, res.Failed[i].Tx.ID())
	}
}

// missingLeader reports whether a leader vertex is overdue (rule P6's
// "leader proposal delayed beyond a timeout"). The newest leader round
// is legitimately still in flight, so the check applies to the leader
// two rounds back: by then an honest leader's certificate has had a
// full round-trip to arrive.
func (n *Node) missingLeader(r types.Round) bool {
	if r < 4 {
		return false
	}
	lr := r - 3
	for lr > 0 && !tusk.LeaderRound(lr) {
		lr--
	}
	if lr == 0 {
		return false
	}
	_, ok := n.dagStore.Get(lr, tusk.LeaderOf(n.epoch, lr, n.n))
	return !ok
}

// specRead is the speculative state: committed store overlaid with
// this proposer's own uncommitted preplay writes.
func (n *Node) specRead(k types.Key) types.Value {
	if v, ok := n.spec[k]; ok {
		return v
	}
	v, _ := n.cfg.Store.Get(k)
	return v
}

// drainQueue pulls up to the adaptive batch size (floor
// Config.BatchSize, cap Config.BatchSizeCap) of transactions,
// splitting them into single-shard (for this node's current shard)
// and cross-shard. Misrouted singles (wrong shard, e.g. queued before
// a reconfiguration) are dropped; clients resubmit to the new
// proposer.
func (n *Node) drainQueue() (singles, cross []*types.Transaction) {
	mine := n.myShard()
	taken := 0
	limit := n.batch.Size()
	if want := min(limit, len(n.txQueue)); want > 0 {
		singles = make([]*types.Transaction, 0, want)
	}
	rest := n.txQueue[:0]
	for _, tx := range n.txQueue {
		if taken >= limit {
			rest = append(rest, tx)
			continue
		}
		if n.dedup.Resolved(tx) {
			continue
		}
		switch {
		case tx.IsCross():
			cross = append(cross, tx)
			taken++
		case len(tx.Shards) == 1 && tx.Shards[0] == mine:
			singles = append(singles, tx)
			taken++
		default:
			// Wrong shard after rotation: drop and negative-ack —
			// callback and wire — so the client layer re-routes
			// immediately.
			delete(n.seen, tx.ID())
			n.nm.droppedAtReconfig.Add(1)
			n.nackPending(tx, gateway.NackMisroute)
			if n.cfg.OnRejectTx != nil {
				n.cfg.OnRejectTx(tx)
			}
		}
	}
	n.txQueue = rest
	// Adaptive sizing input: a backlog still deeper than the batch just
	// taken means the proposer is underbatching for the offered load.
	n.batch.ObserveQueue(len(rest))
	n.nm.batchSize.Set(int64(n.batch.Size()))
	return singles, cross
}
