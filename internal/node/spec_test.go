package node_test

import (
	"testing"
	"time"

	"thunderbolt/internal/cluster"
	"thunderbolt/internal/types"
	"thunderbolt/internal/workload"
)

// speculationStats sums the speculative-execution counters across a
// cluster's replicas.
func speculationStats(c *cluster.Cluster) (hits, misses, wasted uint64) {
	for i := 0; i < c.N(); i++ {
		st := c.Node(i).Stats()
		hits += st.SpecHits
		misses += st.SpecMisses
		wasted += st.SpecWastedTxs
	}
	return
}

// TestSpeculationDifferentialAgainstColdExecution is the differential
// check behind the speculation contract: the same workload driven
// through a speculating cluster (with SpecVerify re-deriving every hit
// cold at install time) and through a cold-only cluster must leave
// bit-identical final state. SpecVerify demotes any hit whose
// precomputed outcome differs from the cold re-derivation to a miss,
// so hits > 0 with zero validation failures means every installed wave
// was proven equal to cold execution, not just assumed.
func TestSpeculationDifferentialAgainstColdExecution(t *testing.T) {
	spec := fastCluster(t, cluster.Config{Seed: 41, SpecVerify: true})
	cold := fastCluster(t, cluster.Config{Seed: 41, SpecExecDepth: -1})

	gen := workload.NewGenerator(workload.Config{
		Accounts: 64, Shards: 4, Theta: 0.8, ReadRatio: 0.3, CrossPct: 0.2, Seed: 41, Client: 1,
	})
	txs := gen.Batch(200)
	// Clone the transactions for the second cluster: submission stamps
	// SubmitUnixNano in place.
	coldTxs := make([]*types.Transaction, len(txs))
	for i, tx := range txs {
		cp := *tx
		coldTxs[i] = &cp
	}
	submitBatch(t, spec, txs)
	submitBatch(t, cold, coldTxs)
	if err := spec.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := cold.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Same transactions committed → bit-identical state, speculating
	// or not.
	specStore, coldStore := spec.Node(0).Store(), cold.Node(0).Store()
	if specStore.Len() != coldStore.Len() {
		t.Fatalf("speculating cluster has %d keys, cold cluster %d", specStore.Len(), coldStore.Len())
	}
	for _, k := range specStore.Keys() {
		a, _ := specStore.Get(k)
		b, _ := coldStore.Get(k)
		if !a.Equal(b) {
			t.Fatalf("state diverges at %s: spec=%q cold=%q", k, a, b)
		}
	}

	hits, _, _ := speculationStats(spec)
	if hits == 0 {
		t.Fatal("speculating cluster recorded no spec hits under a fault-free LAN load")
	}
	coldHits, coldMisses, _ := speculationStats(cold)
	if coldHits != 0 || coldMisses != 0 {
		t.Fatalf("disabled speculation still recorded hits=%d misses=%d", coldHits, coldMisses)
	}
	// Validation failures are NOT asserted zero here: the mixed
	// workload can race a cross-shard commit against a preplay (the
	// P3/P4 hazard), which discards a block on the cold path and the
	// speculative path alike. The state identity above is the real
	// differential claim.
}

// TestSpeculationSurvivesReconfiguration forces Shift reconfigurations
// under a speculating cluster: predictions bound to a dying epoch's
// DAG must be discarded at the transition, never installed into the
// next epoch.
func TestSpeculationSurvivesReconfiguration(t *testing.T) {
	c := fastCluster(t, cluster.Config{Seed: 42, KPrime: 30, SpecVerify: true})
	gen := workload.NewGenerator(workload.Config{
		Accounts: 64, Shards: 4, Theta: 0.7, ReadRatio: 0.3, Seed: 42, Client: 1,
	})
	deadline := time.Now().Add(60 * time.Second)
	for c.Reconfigurations() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d reconfigurations despite KPrime", c.Reconfigurations())
		}
		submitBatch(t, c, gen.Batch(20))
	}
	submitBatch(t, c, gen.Batch(40))
	if err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if hits, _, _ := speculationStats(c); hits == 0 {
		t.Fatal("no spec hits across reconfigurations")
	}
}
