package node

// batchController adapts the proposer's per-block batch size to
// offered load, in the B^ε-tree spirit of amortizing per-item cost by
// batching harder exactly when the buffer is deep: while the ingress
// queue still holds more than a full batch after a drain, the batch
// doubles toward the cap; when the node's own blocks miss the commit
// latency target, it halves back toward the floor. The controller is
// a pure function of its observation sequence — no clocks, no
// randomness — so replicas fed identical observations size batches
// identically (pinned by TestAdaptiveBatchBounds).
type batchController struct {
	floor int // Config.BatchSize
	cap   int // Config.BatchSizeCap; cap <= floor disables adaptation
	size  int // current batch size
}

func newBatchController(floor, cap int) batchController {
	if cap < floor {
		cap = floor
	}
	return batchController{floor: floor, cap: cap, size: floor}
}

// Size is the batch size currently in effect.
func (b *batchController) Size() int { return b.size }

// ObserveQueue reacts to the ingress queue depth remaining after a
// drain: a backlog deeper than the current batch means the proposer
// is underbatching for the offered load.
func (b *batchController) ObserveQueue(depth int) {
	if depth > b.size && b.size < b.cap {
		b.size *= 2
		if b.size > b.cap {
			b.size = b.cap
		}
	}
}

// ObserveLatency reacts to one own-block commit latency measurement:
// over-target latency halves the batch back toward the floor (bigger
// blocks were not worth their pipeline residency).
func (b *batchController) ObserveLatency(overTarget bool) {
	if overTarget && b.size > b.floor {
		b.size /= 2
		if b.size < b.floor {
			b.size = b.floor
		}
	}
}
