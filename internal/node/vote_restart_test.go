package node

import (
	"sync"
	"testing"
	"time"

	"thunderbolt/internal/contract"
	"thunderbolt/internal/crypto"
	"thunderbolt/internal/storage"
	"thunderbolt/internal/transport"
	"thunderbolt/internal/types"
	"thunderbolt/internal/workload"
)

// TestFirstVoteJournaledAcrossRestart closes the crash-window
// equivocation hazard: a replica that votes on a slot, crashes, and
// restarts must refuse to sign a conflicting digest for that slot.
// The vote is journaled in the durable WAL sidecar before the
// signature leaves the replica — both through the note replay path
// and through checkpoint meta (a checkpoint truncates earlier notes,
// so the vote map must ride the meta too).
func TestFirstVoteJournaledAcrossRestart(t *testing.T) {
	for _, tc := range []struct {
		name            string
		checkpointEvery int
	}{
		{"note-replay", -1},    // checkpoints disabled: votes recover from notes
		{"checkpoint-meta", 1}, // checkpoint after every record: votes recover from meta
	} {
		t.Run(tc.name, func(t *testing.T) {
			signers, verifier, err := crypto.InsecureScheme{}.Committee(4, 7)
			if err != nil {
				t.Fatal(err)
			}
			net := transport.NewSimNetwork(transport.SimConfig{N: 4})
			defer net.Close()
			dir := t.TempDir()
			open := func() *storage.Durable {
				d, err := storage.OpenDurable(storage.DurableOptions{
					Dir: dir, CheckpointEvery: tc.checkpointEvery,
				})
				if err != nil {
					t.Fatal(err)
				}
				return d
			}
			build := func(st storage.Backend) *Node {
				reg := contract.NewRegistry()
				workload.RegisterSmallBank(reg)
				if st.Seq() == 0 {
					workload.InitAccounts(st, 8, 100, 100)
				}
				nd, err := New(Config{
					ID: 0, N: 4,
					Transport: net.Endpoint(0),
					Signer:    signers[0], Verifier: verifier,
					Registry: reg, Store: st,
				})
				if err != nil {
					t.Fatal(err)
				}
				return nd
			}

			// Record every vote signature reaching the proposer, keyed
			// by the digest it signs (installed before any vote is cast,
			// so late deliveries cannot slip past the recorder).
			var mu sync.Mutex
			votesFor := make(map[types.Digest]int)
			net.Endpoint(1).SetHandler(func(_ types.ReplicaID, mt transport.MsgType, payload []byte) {
				if mt != MsgVote {
					return
				}
				var v vote
				if err := v.unmarshal(payload); err != nil {
					return
				}
				mu.Lock()
				votesFor[v.BlockDigest]++
				mu.Unlock()
			})

			d := open()
			n1 := build(d)
			blk := &types.Block{Epoch: 0, Round: 1, Proposer: 1, Kind: types.NormalBlock}
			n1.handleBlock(1, blk, nil)
			n1.flushOutbox()
			k := voteKey{round: 1, proposer: 1}
			if n1.voted[k] != blk.Digest() {
				t.Fatal("vote not recorded before crash")
			}
			// An extra committed record pushes the vote behind a
			// checkpoint cut in the meta case.
			n1.applyCommit([]types.RWRecord{{
				Key:   workload.CheckingKey(workload.AccountName(0)),
				Value: contract.EncodeInt64(42),
			}}, nil)
			if err := d.Sync(); err != nil {
				t.Fatal(err)
			}
			d.CloseAbrupt()

			d2 := open()
			defer d2.CloseAbrupt()
			n2 := build(d2)
			if got, ok := n2.voted[k]; !ok || got != blk.Digest() {
				t.Fatalf("journaled vote lost across restart (present=%v)", ok)
			}

			// A conflicting block for the voted slot: no overwrite, and
			// no signature over the conflicting digest ever leaves the
			// replica — not before the crash, not after.
			evil := &types.Block{Epoch: 0, Round: 1, Proposer: 1, Kind: types.NormalBlock,
				ProposedUnixNano: 999}
			if evil.Digest() == blk.Digest() {
				t.Fatal("fixture broken: conflicting block has same digest")
			}
			n2.handleBlock(1, evil, nil)
			// Re-sending the originally voted digest is idempotent and
			// fine (peers revote the same digest after lost messages).
			n2.handleBlock(1, blk, nil)
			n2.flushOutbox()
			time.Sleep(50 * time.Millisecond)
			if n2.voted[k] != blk.Digest() {
				t.Fatal("restarted replica overwrote its journaled vote")
			}
			mu.Lock()
			evilVotes, blkVotes := votesFor[evil.Digest()], votesFor[blk.Digest()]
			mu.Unlock()
			if evilVotes != 0 {
				t.Fatalf("restarted replica signed %d votes for a conflicting digest on an already-voted slot", evilVotes)
			}
			if blkVotes == 0 {
				t.Fatal("no vote for the original digest observed (re-vote should be sent)")
			}
			// Fresh slots still vote normally after recovery.
			blk2 := &types.Block{Epoch: 0, Round: 1, Proposer: 2, Kind: types.NormalBlock}
			n2.handleBlock(2, blk2, nil)
			if n2.voted[voteKey{round: 1, proposer: 2}] != blk2.Digest() {
				t.Fatal("recovered replica stopped voting on fresh slots")
			}
		})
	}
}
