package node

import (
	"math/rand"
	"testing"
)

// TestAdaptiveBatchBounds pins the adaptive batch controller's
// contract: the size never leaves [floor, cap], sustained backlog
// grows it, latency pressure shrinks it back, and the whole evolution
// is a pure function of the observation sequence — two replicas fed
// identical observations size their batches identically, which the
// pipelined proposer depends on for cross-replica batch agreement.
func TestAdaptiveBatchBounds(t *testing.T) {
	const floor, cap = 16, 100

	t.Run("never exceeds cap", func(t *testing.T) {
		b := newBatchController(floor, cap)
		for i := 0; i < 64; i++ {
			b.ObserveQueue(1 << 20) // bottomless backlog
			if b.Size() > cap {
				t.Fatalf("step %d: size %d exceeds cap %d", i, b.Size(), cap)
			}
			if b.Size() < floor {
				t.Fatalf("step %d: size %d below floor %d", i, b.Size(), floor)
			}
		}
		if b.Size() != cap {
			t.Fatalf("sustained backlog should converge on the cap: size %d, cap %d", b.Size(), cap)
		}
	})

	t.Run("shrinks under latency pressure", func(t *testing.T) {
		b := newBatchController(floor, cap)
		for i := 0; i < 8; i++ {
			b.ObserveQueue(1 << 20)
		}
		grown := b.Size()
		if grown <= floor {
			t.Fatalf("backlog never grew the batch: size %d", grown)
		}
		for i := 0; i < 64; i++ {
			b.ObserveLatency(true)
			if b.Size() > grown {
				t.Fatalf("latency pressure grew the batch: %d > %d", b.Size(), grown)
			}
			if b.Size() < floor {
				t.Fatalf("latency pressure shrank below the floor: %d < %d", b.Size(), floor)
			}
		}
		if b.Size() != floor {
			t.Fatalf("sustained latency pressure should converge on the floor: size %d", b.Size())
		}
		// In-target latency alone never grows the batch.
		b.ObserveLatency(false)
		if b.Size() != floor {
			t.Fatalf("in-target latency changed the size: %d", b.Size())
		}
	})

	t.Run("deterministic across replicas", func(t *testing.T) {
		a := newBatchController(floor, cap)
		b := newBatchController(floor, cap)
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 4096; i++ {
			if rng.Intn(2) == 0 {
				depth := rng.Intn(4 * cap)
				a.ObserveQueue(depth)
				b.ObserveQueue(depth)
			} else {
				over := rng.Intn(2) == 0
				a.ObserveLatency(over)
				b.ObserveLatency(over)
			}
			if a.Size() != b.Size() {
				t.Fatalf("step %d: identical observations, different sizes: %d vs %d", i, a.Size(), b.Size())
			}
			if a.Size() < floor || a.Size() > cap {
				t.Fatalf("step %d: size %d outside [%d, %d]", i, a.Size(), floor, cap)
			}
		}
	})

	t.Run("cap at or below floor disables adaptation", func(t *testing.T) {
		b := newBatchController(floor, -1)
		for i := 0; i < 16; i++ {
			b.ObserveQueue(1 << 20)
			b.ObserveLatency(true)
			if b.Size() != floor {
				t.Fatalf("adaptation disabled but size moved: %d != %d", b.Size(), floor)
			}
		}
	})
}
