package node

import (
	"time"

	"thunderbolt/internal/types"
)

// Chunked snapshot transfer (the large-state half of snapshot.go's
// rescue protocol). Once f+1 verified signers vouch for a manifest,
// every chunk digest in it is authenticated — so the chunk payloads
// themselves need no signatures and can be pulled from any server
// that has them, in any order, across housekeeping ticks. The fetch
// state machine here is built to survive exactly the conditions a
// rescue runs under:
//
//   - a window of requests in flight at once, spread round-robin over
//     the manifest's signers, so one slow server bounds one chunk,
//     not the transfer;
//   - per-request timeouts with rotation to the next server, so a
//     server that crashes (or silently withholds) mid-rescue costs a
//     timeout, not the rescue;
//   - digest verification per chunk, so a corrupt payload costs one
//     re-request;
//   - an incremental pass before the first request: chunks whose
//     digests this replica's current state already reproduces are
//     taken locally and never fetched (a briefly stranded replica
//     re-downloads its delta, not the ledger).
//
// The serving side is one map lookup per request, bounded per tick by
// Config.SnapChunkServeBudget so a rescue cannot starve the server's
// own round traffic.

const (
	// chunkFetchWindow is the number of chunk requests kept in flight.
	chunkFetchWindow = 8
	// chunkReqTimeoutTicks is how many housekeeping ticks an
	// unanswered chunk request waits before rotating to another server
	// (matches the round-pull re-ask period in pullRound).
	chunkReqTimeoutTicks = 4
)

// chunkFetch is an in-progress chunked snapshot download.
type chunkFetch struct {
	snap    *types.Snapshot   // the f+1-verified manifest
	dig     types.Digest      // snap.Digest(), cached as the request key
	servers []types.ReplicaID // verified signers of the manifest digest
	// Per-chunk progress: the encoded payload (for serving after
	// install), the decoded records (nil for locally-skipped chunks —
	// their state is already applied), and completion flags.
	payloads [][]byte
	recs     [][]types.RWRecord
	done     []bool
	pending  int // chunks not yet done
	inflight map[int]chunkReqState
	rot      int // rotating cursor into servers
}

type chunkReqState struct {
	peer types.ReplicaID
	at   time.Time
}

// startChunkFetch begins (or refreshes) the chunked download of a
// manifest-only snapshot. A repeat call for the digest already being
// fetched just adopts the wider server set — newly arrived signers
// join the rotation without restarting progress.
func (n *Node) startChunkFetch(snap *types.Snapshot, servers []types.ReplicaID) {
	if len(servers) == 0 {
		return
	}
	dig := snap.Digest()
	if f := n.fetch; f != nil && f.dig == dig {
		f.servers = servers
		n.pumpChunkFetch()
		return
	}
	nchunks := len(snap.ChunkDigests)
	f := &chunkFetch{
		snap:     snap,
		dig:      dig,
		servers:  servers,
		payloads: make([][]byte, nchunks),
		recs:     make([][]types.RWRecord, nchunks),
		done:     make([]bool, nchunks),
		pending:  nchunks,
		inflight: make(map[int]chunkReqState),
	}
	n.fetch = f
	// Incremental pass: chunk the local state with the manifest's
	// geometry and keep every chunk whose digest already matches — its
	// records are already in the store, so it needs neither a fetch
	// nor a write at install. The encoded payload is kept anyway: the
	// installed snapshot serves chunks to later stragglers.
	if nchunks > 0 {
		cb := types.NewChunkBuilder(int(snap.ChunkSize), -1)
		n.cfg.Store.Ascend(func(r types.RWRecord) bool {
			cb.Add(r.Key, r.Value)
			return true
		})
		chunks, digests, _, _ := cb.Finish()
		skipped := uint64(0)
		for i := 0; i < nchunks && i < len(digests); i++ {
			if digests[i] == snap.ChunkDigests[i] {
				f.payloads[i] = chunks[i]
				f.done[i] = true
				f.pending--
				skipped++
			}
		}
		if skipped > 0 {
			n.nm.snapChunksSkipped.Add(skipped)
		}
	}
	if f.pending == 0 {
		n.finishChunkFetch(f)
		return
	}
	n.pumpChunkFetch()
}

// pumpChunkFetch drives the in-progress download: expire timed-out
// requests (rotating blame-free to the next server) and top the
// in-flight window back up. Called from housekeeping each tick and
// after every chunk arrival.
func (n *Node) pumpChunkFetch() {
	f := n.fetch
	if f == nil {
		return
	}
	timeout := chunkReqTimeoutTicks * n.cfg.TickInterval
	for i, st := range f.inflight {
		if f.done[i] {
			delete(f.inflight, i)
			continue
		}
		if time.Since(st.at) >= timeout {
			delete(f.inflight, i)
			n.nm.snapChunkRetries.Add(1)
		}
	}
	for i := range f.done {
		if len(f.inflight) >= chunkFetchWindow {
			return
		}
		if f.done[i] {
			continue
		}
		if _, busy := f.inflight[i]; busy {
			continue
		}
		peer := f.servers[f.rot%len(f.servers)]
		f.rot++
		f.inflight[i] = chunkReqState{peer: peer, at: time.Now()}
		req := (&snapChunkReq{Snap: f.dig, Index: uint32(i)}).marshal()
		n.sendNow(peer, MsgSnapChunkReq, req)
	}
}

// handleSnapChunk verifies one arriving chunk against the manifest
// and records it. The sender is irrelevant: the payload either
// matches the f+1-authenticated chunk digest or it is discarded and
// re-requested elsewhere.
func (n *Node) handleSnapChunk(_ types.ReplicaID, c *snapChunk) {
	f := n.fetch
	if f == nil || c.Snap != f.dig {
		return
	}
	i := int(c.Index)
	if i < 0 || i >= len(f.done) || f.done[i] {
		return
	}
	recs, err := f.snap.VerifyChunk(i, c.Payload)
	if err != nil {
		// Corrupt (or malicious) payload: one re-request, charged as a
		// retry. The rotation in pumpChunkFetch naturally asks a
		// different server next.
		delete(f.inflight, i)
		n.nm.snapChunkRetries.Add(1)
		n.pumpChunkFetch()
		return
	}
	// Payload aliases the transport buffer, which is freshly allocated
	// per delivery and handed over — safe to retain for serving.
	f.payloads[i] = c.Payload
	f.recs[i] = recs
	f.done[i] = true
	f.pending--
	delete(f.inflight, i)
	n.nm.snapChunksFetched.Add(1)
	if f.pending == 0 {
		n.finishChunkFetch(f)
		return
	}
	n.pumpChunkFetch()
}

// finishChunkFetch assembles the completed download and installs it.
// Only fetched chunks contribute writes — locally-skipped chunks are
// already in the store — so the install's apply batch is the delta,
// which is the whole point of the incremental pass.
func (n *Node) finishChunkFetch(f *chunkFetch) {
	var writes []types.RWRecord
	for _, r := range f.recs {
		writes = append(writes, r...)
	}
	n.installSnapshot(f.snap, writes, f.payloads)
}

// handleSnapChunkReq serves one chunk of this node's latest capture,
// within the per-tick budget. Requests for any other snapshot digest
// (a stale capture this node has since replaced) go unanswered; the
// requester's timeout rotation finds a server that still has it, or
// its candidate set converges on a newer manifest.
func (n *Node) handleSnapChunkReq(from types.ReplicaID, r *snapChunkReq) {
	snap := n.lastSnap
	if snap == nil || from == n.cfg.ID || snap.Digest() != r.Snap {
		return
	}
	i := int(r.Index)
	if i < 0 || i >= len(n.snapChunks) {
		return
	}
	if n.chunkBudget <= 0 {
		return // over budget this tick; the requester retries
	}
	n.chunkBudget--
	msg := (&snapChunk{Snap: r.Snap, Index: r.Index, Payload: n.snapChunks[i]}).marshal()
	n.sendNow(from, MsgSnapChunk, msg)
	n.nm.snapChunksServed.Add(1)
}
