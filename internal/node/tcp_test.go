package node_test

import (
	"testing"
	"time"

	"thunderbolt/internal/contract"
	"thunderbolt/internal/crypto"
	"thunderbolt/internal/node"
	"thunderbolt/internal/storage"
	"thunderbolt/internal/transport"
	"thunderbolt/internal/types"
	"thunderbolt/internal/workload"
)

// TestTCPCommittee runs a full 4-replica committee over real TCP
// sockets on loopback — the multi-process testbed path — and checks
// commits and state convergence.
func TestTCPCommittee(t *testing.T) {
	const n = 4
	signers, verifier, err := crypto.InsecureScheme{}.Committee(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Bind ephemeral listeners first, then distribute the address
	// book — the pattern a deployment script would follow.
	trs := make([]*transport.TCPTransport, n)
	peers := map[types.ReplicaID]string{}
	for i := 0; i < n; i++ {
		tr, err := transport.NewTCPTransport(transport.TCPConfig{
			Self: types.ReplicaID(i), Listen: "127.0.0.1:0",
		})
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		trs[i] = tr
		peers[types.ReplicaID(i)] = tr.Addr()
	}

	var (
		nodes  []*node.Node
		commit = make(chan types.Digest, 4096)
	)
	for i := 0; i < n; i++ {
		tr := trs[i]
		tr.SetPeers(peers)
		reg := contract.NewRegistry()
		workload.RegisterSmallBank(reg)
		st := storage.New()
		workload.InitAccounts(st, 16, 1000, 1000)
		cfg := node.Config{
			ID: types.ReplicaID(i), N: n, Transport: tr,
			Signer: signers[i], Verifier: verifier,
			Registry: reg, Store: st,
			Executors: 2, Validators: 2, BatchSize: 16,
			TickInterval: 5 * time.Millisecond,
		}
		if i == 0 {
			cfg.OnCommitTx = func(tx *types.Transaction, _ time.Time) {
				commit <- tx.ID()
			}
		}
		nd, err := node.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
	}
	for _, nd := range nodes {
		nd.Start()
	}
	defer func() {
		for _, nd := range nodes {
			nd.Stop()
		}
	}()

	// Submit one deposit per shard, routed to the owning proposer.
	smap := types.NewShardMap(n)
	want := map[types.Digest]bool{}
	for i := 0; i < 16; i++ {
		acct := workload.AccountName(i)
		shard := smap.ShardOf(types.Key(acct))
		tx := &types.Transaction{
			Client: 1, Nonce: uint64(i + 1), Kind: types.SingleShard,
			Shards:   []types.ShardID{shard},
			Contract: workload.ContractDepositChecking,
			Args:     [][]byte{[]byte(acct), contract.EncodeInt64(int64(i + 1))},
		}
		want[tx.ID()] = true
		proposer := node.ProposerOfShard(shard, 0, n)
		if err := nodes[proposer].Submit(tx); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(60 * time.Second)
	for len(want) > 0 {
		select {
		case id := <-commit:
			delete(want, id)
		case <-deadline:
			t.Fatalf("%d transactions never committed over TCP", len(want))
		}
	}
	// Convergence: node 0's balances must eventually appear everywhere.
	ref := nodes[0].Store()
	converged := func(i int) (types.Key, bool) {
		for _, k := range ref.Keys() {
			a, _ := ref.Get(k)
			b, _ := nodes[i].Store().Get(k)
			if !a.Equal(b) {
				return k, false
			}
		}
		return "", true
	}
	deadlineT := time.Now().Add(20 * time.Second)
	for i := 1; i < n; i++ {
		for {
			k, ok := converged(i)
			if ok {
				break
			}
			if time.Now().After(deadlineT) {
				a, _ := ref.Get(k)
				b, _ := nodes[i].Store().Get(k)
				t.Fatalf("replica %d diverges at %s: %q vs %q", i, k, b, a)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
}
