package node

import (
	"time"

	"thunderbolt/internal/ce"
	"thunderbolt/internal/dag"
	"thunderbolt/internal/metrics"
	"thunderbolt/internal/tusk"
	"thunderbolt/internal/types"
	"thunderbolt/internal/validate"
)

// Speculative execution of certified blocks (the certify→commit
// overlap). PR 9's stage telemetry showed the commit path spends most
// of its latency waiting for the Tusk commit rule to release blocks
// that are already certified — execution itself is a rounding error.
// This file fills that wait: the node predicts the next commit waves
// from the anchor chain (tusk.PredictWave), executes them immediately
// in a speculative session layered over the committed tip, and at
// commit time installs the precomputed results in O(writes) when the
// prediction matched — or discards everything and falls back to the
// cold path (executeWave) when it did not.
//
// The contract:
//
//   - predict: a certified leader vertex's wave is linearized exactly
//     as commitLeader would, with earlier queued predictions treated
//     as committed, so stacked predictions compose like consecutive
//     commits. Linearize is stable once a vertex is in the store, so
//     a prediction only misses when the anchor-chain walk reorders
//     leaders (skipped or late-arriving leaders, equivocation fallout).
//   - execute: the wave runs through the same ValidateBatch /
//     ExecuteCrossOrdered code as the cold path, reading through
//     specOverlay (pending speculative writes) over the committed
//     store, under a dedup view extended with identities earlier
//     predictions resolved. Nothing escapes: no store writes, no dedup
//     marks, no client acks.
//   - confirm: at commit, the canonical wave must match the predicted
//     wave vertex-for-vertex AND every speculatively resolved identity
//     must still be unresolved (specStillFresh). Then the wave's write
//     sets land as one coalesced Store apply and the bookkeeping
//     (dedup marks, commit log, acks, metrics) replays in cold order.
//   - rollback: any mismatch flushes the entire prediction queue and
//     rolls the overlay back — an O(live-entries) reset — and the
//     canonical wave executes cold. Speculative state lives only in
//     this file's structures, so a rollback cannot leak by
//     construction.
//
// Why a miss must flush everything: predictions execute against the
// committed tip plus earlier predictions. Once the canonical order
// diverges — even for one wave — the store evolves differently than
// every queued prediction assumed, and validation outcomes computed
// on the stale view are unusable. Flushing restores the invariant
// that the store only ever mutates through installed predictions or
// cold execution after a flush, which is what makes the speculative
// read view at execution time value-identical to the committed store
// at install time on the all-hit path.

// specWave is one predicted commit wave and, once executed, its
// precomputed outcome.
type specWave struct {
	wave        tusk.CommitWave
	overlayWave uint64 // SpecOverlay wave id of this wave's writes
	executed    bool
	res         specResult
}

// specResult is everything installSpec needs to replay a wave's
// effects without re-executing it, and everything specStillFresh
// needs to decide the results are still valid.
type specResult struct {
	blocks []specBlock
	cross  []specCross
	// skipResolved holds cross-shard copies skipped because the
	// transaction was already resolved in the speculative dedup view;
	// install re-checks they are resolved for real.
	skipResolved []*types.Transaction
	// txs counts speculatively executed transactions — the unit of
	// wasted work a rollback reports.
	txs int
}

// specBlock is the speculative outcome of one single-shard block:
// validated ok with its write delta, or discarded (stale/invalid).
type specBlock struct {
	b      *types.Block
	ok     bool
	writes []types.RWRecord
}

// specCross is the speculative outcome of one cross-shard transaction
// in consensus order.
type specCross struct {
	tx       *types.Transaction
	round    types.Round
	proposer types.ReplicaID
	failed   bool // deterministic execution failure
	writes   []types.RWRecord
}

// resetSpec discards all speculative state — queued predictions,
// overlay writes, claimed identities. Called from resetEpochState:
// predictions bind to one epoch's DAG and die with it.
func (n *Node) resetSpec() {
	if n.specOverlay == nil {
		n.specOverlay = ce.NewSpecOverlay()
		n.specResolved = make(map[types.Digest]bool)
		n.specVerts = make(map[types.Digest]bool)
		return
	}
	for i := range n.specQ {
		n.specQ[i] = specWave{} // release vertex references
	}
	n.specQ = n.specQ[:0]
	n.specOverlay.Rollback()
	clear(n.specResolved)
	clear(n.specVerts)
}

// specBaseRead reads through pending speculative writes first, then
// committed state — the base reader speculative execution runs under.
func (n *Node) specBaseRead(k types.Key) types.Value {
	if v, ok := n.specOverlay.Get(k); ok {
		return v
	}
	return n.baseRead(k)
}

// specResolvedView extends the committed dedup view with identities
// resolved by earlier queued predictions — the dedup a stacked
// prediction must execute under to compose like consecutive commits.
func (n *Node) specResolvedView(tx *types.Transaction) bool {
	return n.dedup.Resolved(tx) || n.specResolved[tx.ID()]
}

// specVertClaimed reports whether a vertex is claimed by a queued
// prediction — PredictWave's "already committed" extension.
func (n *Node) specVertClaimed(d types.Digest) bool { return n.specVerts[d] }

// nextSpecLeaderRound returns the first leader round not yet covered
// by a commit or a queued prediction.
func (n *Node) nextSpecLeaderRound() types.Round {
	r := n.committer.LastLeaderRound()
	if len(n.specQ) > 0 {
		if lr := n.specQ[len(n.specQ)-1].wave.Leader.Round(); lr > r {
			r = lr
		}
	}
	if tusk.LeaderRound(r) {
		return r + 2
	}
	return r + 1
}

// maybeQueueSpec extends the prediction queue up to specDepth: one
// prediction per consecutive leader round whose leader vertex is
// already certified into the DAG. Stops at the first missing leader —
// predicting past a hole would bake in the guess that the hole's
// leader never commits, which is exactly the reorder that forces a
// flush when wrong.
func (n *Node) maybeQueueSpec() {
	for len(n.specQ) < n.specDepth {
		r := n.nextSpecLeaderRound()
		leader, ok := n.dagStore.Get(r, tusk.LeaderOf(n.epoch, r, n.n))
		if !ok {
			return
		}
		w := n.committer.PredictWave(leader, n.specClaimFn)
		for _, v := range w.Vertices {
			n.specVerts[v.Cert.Digest()] = true
		}
		n.specQ = append(n.specQ, specWave{wave: w})
	}
}

// drainSpec is the run loop's idle work: after every committed wave
// has executed (drainExec precedes it, so execQ is empty and the
// store sits at the committed tip), predict the next waves and
// execute any prediction that has not run yet.
func (n *Node) drainSpec() {
	if n.specDepth <= 0 {
		return
	}
	n.maybeQueueSpec()
	for i := range n.specQ {
		if !n.specQ[i].executed {
			n.execSpecWave(&n.specQ[i])
		}
	}
}

// execSpecWave runs one predicted wave through the cold execution
// pipeline against the speculative view, folding its writes into the
// overlay and claiming the identities it resolved.
func (n *Node) execSpecWave(sw *specWave) {
	w := sw.wave
	// a = vertices in the predicted wave.
	n.trace(metrics.EvSpecStart, w.Leader.Round(), uint64(len(w.Vertices)), 0)
	sw.overlayWave = n.specOverlay.BeginWave()
	wave := sw.overlayWave
	fold := func(k types.Key, v types.Value) { n.specOverlay.Set(k, v, wave) }
	sw.res = n.runSpecWave(w, n.specResolvedView, n.specReader, fold)
	sw.executed = true
	done := time.Now()
	for i := range sw.res.blocks {
		sb := &sw.res.blocks[i]
		if !sb.ok {
			continue
		}
		for _, tx := range sb.b.SingleTxs {
			n.specResolved[tx.ID()] = true
		}
	}
	for i := range sw.res.cross {
		// Failed cross transactions resolve too (deterministic mark).
		n.specResolved[sw.res.cross[i].tx.ID()] = true
	}
	// The reclaimed slice of the certify→commit wait: certification to
	// speculative-results-ready, per block (same stamp discipline as
	// the cold stage histograms).
	for _, v := range w.Vertices {
		if !v.Block.Stamps.Certified.IsZero() {
			n.nm.stageCertifySpecDone.Observe(done.Sub(v.Block.Stamps.Certified))
		}
	}
}

// runSpecWave executes one wave exactly as executeWave would — same
// staleness rules, same within-wave dedup visibility, same cross
// collection and ordering — but records outcomes instead of applying
// them. It is shared by the speculative run (read = overlay view,
// resolved = speculative dedup) and the SpecVerify cold re-derivation
// (read = committed store, resolved = committed dedup): both must be
// pure functions of those two inputs for the differential check to
// mean anything.
func (n *Node) runSpecWave(w tusk.CommitWave, resolved func(*types.Transaction) bool, read validate.BaseReader, fold func(types.Key, types.Value)) specResult {
	var res specResult
	type crossItem struct {
		tx       *types.Transaction
		round    types.Round
		proposer types.ReplicaID
	}
	var crossTxs []crossItem
	inWave := make(map[types.Digest]bool)
	// local mirrors the cold path's within-wave dedup visibility: an
	// applied block's marks are visible to later vertices of the same
	// wave immediately.
	local := make(map[types.Digest]bool)
	for _, v := range w.Vertices {
		b := v.Block
		switch b.Kind {
		case types.ShiftBlock, types.SkipBlock:
			// No execution; install handles the Shift bookkeeping.
			continue
		}
		if len(b.SingleTxs) > 0 {
			sb := specBlock{b: b}
			if !specBlockStale(b, resolved, local) {
				if r, err := validate.ValidateBatch(n.cfg.Registry, read, b.SingleTxs, b.Results, n.cfg.Validators); err == nil {
					sb.ok = true
					sb.writes = r.Writes
					for _, wr := range r.Writes {
						fold(wr.Key, wr.Value)
					}
					for _, tx := range b.SingleTxs {
						local[tx.ID()] = true
					}
				}
				res.txs += len(b.SingleTxs)
			}
			res.blocks = append(res.blocks, sb)
		}
		for _, tx := range b.CrossTxs {
			id := tx.ID()
			if resolved(tx) {
				// Resolved before this wave in the speculative view;
				// install re-checks the assumption against real dedup.
				res.skipResolved = append(res.skipResolved, tx)
				continue
			}
			if local[id] || inWave[id] {
				// Committed by an earlier block of this wave, or a
				// duplicate inclusion — resolved within the wave either
				// way, so no install-time recheck is needed.
				continue
			}
			inWave[id] = true
			crossTxs = append(crossTxs, crossItem{tx: tx, round: b.Round, proposer: b.Proposer})
		}
	}
	// Same re-filter as the cold path: a copy collected from an early
	// vertex may have committed through a single-shard block of a
	// later vertex in this wave.
	live := crossTxs[:0]
	for _, it := range crossTxs {
		if !local[it.tx.ID()] {
			live = append(live, it)
		}
	}
	crossTxs = live
	if len(crossTxs) > 0 {
		txs := make([]*types.Transaction, len(crossTxs))
		for i, it := range crossTxs {
			txs[i] = it.tx
		}
		outs := validate.ExecuteCrossOrdered(n.cfg.Registry, read, txs, n.cfg.Validators)
		for i, out := range outs {
			sc := specCross{tx: out.Tx, round: crossTxs[i].round, proposer: crossTxs[i].proposer}
			if out.Err != nil {
				sc.failed = true
			} else {
				sc.writes = out.Writes
				for _, wr := range out.Writes {
					fold(wr.Key, wr.Value)
				}
			}
			res.cross = append(res.cross, sc)
			res.txs++
		}
	}
	return res
}

// specBlockStale applies validateAndApply's precheck without side
// effects: foreign-shard smuggling, resolved identities, duplicate
// inclusion within the block.
func specBlockStale(b *types.Block, resolved func(*types.Transaction) bool, local map[types.Digest]bool) bool {
	inBlock := make(map[types.Digest]bool, len(b.SingleTxs))
	for _, tx := range b.SingleTxs {
		if len(tx.Shards) != 1 || tx.Shards[0] != b.Shard {
			return true
		}
		id := tx.ID()
		if resolved(tx) || local[id] || inBlock[id] {
			return true
		}
		inBlock[id] = true
	}
	return false
}

// trySpecInstall is drainExec's fast path: if the canonical wave
// matches the oldest prediction and the precomputed results are still
// valid, install them and skip cold execution. Returns false when the
// wave must execute cold — after flushing all predictions if the
// canonical order diverged from the predicted order.
func (n *Node) trySpecInstall(w tusk.CommitWave, committedAt time.Time) bool {
	if len(n.specQ) == 0 {
		return false
	}
	sw := &n.specQ[0]
	if sw.wave.Leader != w.Leader || !sameVertices(sw.wave.Vertices, w.Vertices) {
		// The anchor chain routed a different wave here than predicted
		// (late leader, skipped leader, or a divergent linearization).
		// Every queued prediction built on the wrong order; flush.
		n.specMiss(w)
		return false
	}
	if !sw.executed {
		// Predicted but never reached execution; nothing precomputed.
		// Not a misprediction — drop the entry and execute cold.
		n.popSpec()
		return false
	}
	if !n.specStillFresh(sw) || (n.cfg.SpecVerify && !n.specVerifyWave(sw)) {
		n.specMiss(w)
		return false
	}
	n.installSpec(sw, committedAt)
	n.popSpec()
	return true
}

// sameVertices compares predicted and canonical linearizations by
// vertex identity. Pointer equality is exact here: both lists come
// from the same DAG store, which holds one vertex per slot.
func sameVertices(a, b []*dag.Vertex) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// specStillFresh re-checks the prediction's dedup assumptions against
// the real dedup at install time: everything it executed must still
// be unresolved, everything it skipped as resolved must actually be
// resolved. Catches the one hazard vertex identity cannot — a
// different transaction with the same session identity (client,
// nonce) committing in between, which shifts nonce floors under the
// prediction.
func (n *Node) specStillFresh(sw *specWave) bool {
	for i := range sw.res.blocks {
		sb := &sw.res.blocks[i]
		if !sb.ok {
			continue
		}
		for _, tx := range sb.b.SingleTxs {
			if n.dedup.Resolved(tx) {
				return false
			}
		}
	}
	for i := range sw.res.cross {
		if n.dedup.Resolved(sw.res.cross[i].tx) {
			return false
		}
	}
	for _, tx := range sw.res.skipResolved {
		if !n.dedup.Resolved(tx) {
			return false
		}
	}
	return true
}

// specVerifyWave is the runtime differential check (Config.SpecVerify):
// re-derive the wave cold — committed store, committed dedup — and
// demand the speculative outcome is bit-identical. On the hit path the
// speculative read view is value-identical to the committed store, so
// any divergence is a speculation bug, not a legitimate reorder.
func (n *Node) specVerifyWave(sw *specWave) bool {
	shadow := make(map[types.Key]types.Value)
	read := func(k types.Key) types.Value {
		if v, ok := shadow[k]; ok {
			return v
		}
		return n.baseRead(k)
	}
	fold := func(k types.Key, v types.Value) { shadow[k] = v }
	cold := n.runSpecWave(sw.wave, n.dedup.Resolved, read, fold)
	return specResultsEqual(&sw.res, &cold)
}

func specResultsEqual(a, b *specResult) bool {
	if len(a.blocks) != len(b.blocks) || len(a.cross) != len(b.cross) || len(a.skipResolved) != len(b.skipResolved) {
		return false
	}
	for i := range a.blocks {
		x, y := &a.blocks[i], &b.blocks[i]
		if x.b != y.b || x.ok != y.ok || !writesEqual(x.writes, y.writes) {
			return false
		}
	}
	for i := range a.cross {
		x, y := &a.cross[i], &b.cross[i]
		if x.tx != y.tx || x.failed != y.failed || !writesEqual(x.writes, y.writes) {
			return false
		}
	}
	for i := range a.skipResolved {
		if a.skipResolved[i] != b.skipResolved[i] {
			return false
		}
	}
	return true
}

func writesEqual(a, b []types.RWRecord) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key != b[i].Key || !a[i].Value.Equal(b[i].Value) {
			return false
		}
	}
	return true
}

// specMiss discards every queued prediction: the canonical order
// diverged, so all speculative state — built on the predicted order —
// is invalid. The overlay rolls back in O(live entries); nothing else
// holds speculative data, so nothing else needs undoing.
func (n *Node) specMiss(w tusk.CommitWave) {
	var wasted uint64
	for i := range n.specQ {
		if n.specQ[i].executed {
			wasted += uint64(n.specQ[i].res.txs)
		}
	}
	n.nm.specMisses.Add(uint64(len(n.specQ)))
	n.nm.specWastedTxs.Add(wasted)
	// a = flushed predictions, b = wasted speculative transactions.
	n.trace(metrics.EvSpecRollback, w.Leader.Round(), uint64(len(n.specQ)), wasted)
	for i := range n.specQ {
		n.specQ[i] = specWave{}
	}
	n.specQ = n.specQ[:0]
	n.specOverlay.Rollback()
	clear(n.specResolved)
	clear(n.specVerts)
}

// popSpec retires the oldest prediction (installed, or superseded
// unexecuted), releasing its claims so future predictions and GC see
// only live speculative state.
func (n *Node) popSpec() {
	sw := &n.specQ[0]
	for _, v := range sw.wave.Vertices {
		delete(n.specVerts, v.Cert.Digest())
	}
	for i := range sw.res.blocks {
		sb := &sw.res.blocks[i]
		if !sb.ok {
			continue
		}
		for _, tx := range sb.b.SingleTxs {
			delete(n.specResolved, tx.ID())
		}
	}
	for i := range sw.res.cross {
		delete(n.specResolved, sw.res.cross[i].tx.ID())
	}
	n.specQ[0] = specWave{}
	n.specQ = n.specQ[1:]
}

// installSpec commits a confirmed prediction: one coalesced store
// apply for the wave's write sets, then the cold path's bookkeeping
// (dedup marks, commit log, acks, block feedback, metrics) replayed
// in cold order. Coalescing is sound because the per-key last write
// of the wave is what cold execution leaves in the store, and the
// merged WAL note carries the same resolved identities the cold
// path's per-commit notes would — dedup marks across distinct
// identities commute, so recovery replays to the same state.
func (n *Node) installSpec(sw *specWave, committedAt time.Time) {
	w := sw.wave
	now := time.Now()
	// a = vertices in the wave (same event the cold path records —
	// downstream consumers see an identical commit trace on hits).
	n.trace(metrics.EvCommit, w.Leader.Round(), uint64(len(w.Vertices)), 0)
	n.commitCtx = CommitEntry{Epoch: n.epoch, Wave: w.Leader.Round()}
	for _, v := range w.Vertices {
		b := v.Block
		if !b.Stamps.Seen.IsZero() && !b.Stamps.Certified.IsZero() {
			n.nm.stageProposeCertify.Observe(b.Stamps.Certified.Sub(b.Stamps.Seen))
			n.nm.stageCertifyCommit.Observe(committedAt.Sub(b.Stamps.Certified))
		}
		if b.Kind == types.ShiftBlock {
			n.committedShift[b.Proposer] = true
		}
	}

	// One apply for the whole wave: last writer per key, keys in first
	// appearance order, with a single merged note.
	note := n.newMarkNote()
	var order []types.Key
	merged := make(map[types.Key]types.Value)
	addWrites := func(ws []types.RWRecord) {
		for _, wr := range ws {
			if _, ok := merged[wr.Key]; !ok {
				order = append(order, wr.Key)
			}
			merged[wr.Key] = wr.Value
		}
	}
	for i := range sw.res.blocks {
		sb := &sw.res.blocks[i]
		if !sb.ok {
			continue
		}
		for _, tx := range sb.b.SingleTxs {
			note.commit(tx)
		}
		addWrites(sb.writes)
	}
	for i := range sw.res.cross {
		sc := &sw.res.cross[i]
		if sc.failed {
			note.fail(sc.tx)
			continue
		}
		note.commit(sc.tx)
		addWrites(sc.writes)
	}
	if len(order) > 0 {
		writes := make([]types.RWRecord, len(order))
		for i, k := range order {
			writes[i] = types.RWRecord{Key: k, Value: merged[k]}
		}
		n.applyCommit(writes, note.bytes())
	} else {
		n.noteOnly(note.bytes())
	}

	// Bookkeeping in cold order: blocks in wave order, then cross.
	for i := range sw.res.blocks {
		sb := &sw.res.blocks[i]
		b := sb.b
		if !sb.ok {
			n.nm.validationFailures.Add(1)
			if b.Proposer == n.cfg.ID {
				n.dropOwnBlock(b.Round)
				n.preplayer.invalidate()
				for _, tx := range b.SingleTxs {
					if !n.dedup.Resolved(tx) {
						n.txQueue = append(n.txQueue, tx)
					}
				}
			}
			continue
		}
		n.commitCtx.Round = b.Round
		n.commitCtx.Proposer = b.Proposer
		n.commitCtx.Cross = false
		for _, tx := range b.SingleTxs {
			n.markCommitted(tx, now)
		}
		n.nm.committedSingle.Add(uint64(len(b.SingleTxs)))
		if b.Proposer == n.cfg.ID {
			n.dropOwnBlock(b.Round)
			lat := now.Sub(time.Unix(0, b.ProposedUnixNano))
			n.batch.ObserveLatency(lat > n.cfg.BatchLatencyTarget)
		} else {
			n.preplayer.invalidate()
		}
	}
	for i := range sw.res.cross {
		sc := &sw.res.cross[i]
		delete(n.pendingCross, sc.tx.ID())
		if sc.failed {
			n.dedup.Mark(sc.tx)
			continue
		}
		n.commitCtx.Round = sc.round
		n.commitCtx.Proposer = sc.proposer
		n.commitCtx.Cross = true
		n.markCommitted(sc.tx, now)
		n.nm.committedCross.Add(1)
	}
	if len(sw.res.cross) > 0 {
		n.preplayer.invalidate()
	}
	// Copies that never reached execution (duplicates, already
	// resolved) must not wedge the preplay-recovery tracker.
	for _, v := range w.Vertices {
		for _, tx := range v.Block.CrossTxs {
			delete(n.pendingCross, tx.ID())
		}
	}

	n.specOverlay.Confirm(sw.overlayWave)
	n.nm.specHits.Add(1)
	// Commit→results-installed: on hits this is map bookkeeping plus
	// one store apply — the latency the speculation reclaims.
	n.nm.stageCommitExecute.Observe(time.Since(committedAt))
	// a = vertices installed, b = coalesced store writes.
	n.trace(metrics.EvSpecConfirm, w.Leader.Round(), uint64(len(w.Vertices)), uint64(len(order)))
	if n.cfg.OnCommitWave != nil {
		n.cfg.OnCommitWave(n.epoch, w.Leader.Round(), now)
	}
}
