package node

import (
	"fmt"

	"thunderbolt/internal/metrics"
	"thunderbolt/internal/types"
)

// Node instrument names, as they appear in the registry snapshot (and
// the debug listener's /metrics JSON). Counters and gauges mirror the
// Stats fields one-to-one — Stats() is now a read-through view over
// these instruments; per-class send-error counters are named
// "send_errors_<class>" from sendClassName.
const (
	mEpoch              = "epoch"
	mRound              = "round"
	mCommittedTxs       = "committed_txs"
	mCommittedSingle    = "committed_single"
	mCommittedCross     = "committed_cross"
	mConvertedToCross   = "converted_to_cross"
	mReexecutions       = "reexecutions"
	mRoundsProposed     = "rounds_proposed"
	mSkipBlocks         = "skip_blocks"
	mShiftBlocks        = "shift_blocks"
	mReconfigurations   = "reconfigurations"
	mValidationFailures = "validation_failures"
	mDroppedAtReconfig  = "dropped_at_reconfig"
	mFastForwards       = "fast_forwards"
	mPrunedRounds       = "pruned_rounds"
	mEpochJumps         = "epoch_jumps"
	mSnapshotsServed    = "snapshots_served"
	mMidEpochCaptures   = "mid_epoch_captures"
	mMidEpochInstalls   = "mid_epoch_installs"
	mSnapChunksServed   = "snap_chunks_served"
	mSnapChunksFetched  = "snap_chunks_fetched"
	mSnapChunksSkipped  = "snap_chunks_skipped"
	mSnapChunkRetries   = "snap_chunk_retries"
	mPendingCross       = "pending_cross"
	mQueueLen           = "queue_len"
	mBatchSize          = "batch_size"

	// Speculative-execution counters: hits install precomputed results
	// at commit time, misses fall back to cold execution, wasted counts
	// the speculatively executed transactions a rollback discarded.
	mSpecHits      = "spec_hits"
	mSpecMisses    = "spec_misses"
	mSpecWastedTxs = "spec_wasted_txs"

	// Pipeline-depth gauges: how much work each stage of the pipelined
	// commit path is holding right now.
	mRoundsInFlight    = "rounds_in_flight"    // proposed rounds past the last committed leader round
	mExecQueueDepth    = "exec_queue_depth"    // committed waves queued for execution
	mOutboxFlushBytes  = "outbox_flush_bytes"  // bytes of the last outbox flush
	mOutboxFlushFrames = "outbox_flush_frames" // wire frames of the last outbox flush
)

// nodeMetrics bundles the node's instrumentation: a registry of
// counters/gauges/histograms, the flight recorder, and the leveled
// logger. Every handle is resolved once here, at construction, so the
// record paths (event loop, commit path) touch only atomics — no map
// lookups, locks, or allocations per sample.
type nodeMetrics struct {
	reg    *metrics.Registry
	flight *metrics.FlightRecorder
	log    *metrics.Logger

	committedTxs       *metrics.Counter
	committedSingle    *metrics.Counter
	committedCross     *metrics.Counter
	convertedToCross   *metrics.Counter
	reexecutions       *metrics.Counter
	roundsProposed     *metrics.Counter
	skipBlocks         *metrics.Counter
	shiftBlocks        *metrics.Counter
	reconfigurations   *metrics.Counter
	validationFailures *metrics.Counter
	droppedAtReconfig  *metrics.Counter
	fastForwards       *metrics.Counter
	prunedRounds       *metrics.Counter
	epochJumps         *metrics.Counter
	snapshotsServed    *metrics.Counter
	midEpochCaptures   *metrics.Counter
	midEpochInstalls   *metrics.Counter
	snapChunksServed   *metrics.Counter
	snapChunksFetched  *metrics.Counter
	snapChunksSkipped  *metrics.Counter
	snapChunkRetries   *metrics.Counter
	specHits           *metrics.Counter
	specMisses         *metrics.Counter
	specWastedTxs      *metrics.Counter
	sendErrors         [numSendClasses]*metrics.Counter

	epoch             *metrics.Gauge
	round             *metrics.Gauge
	pendingCross      *metrics.Gauge
	queueLen          *metrics.Gauge
	batchSize         *metrics.Gauge
	roundsInFlight    *metrics.Gauge
	execQueueDepth    *metrics.Gauge
	outboxFlushBytes  *metrics.Gauge
	outboxFlushFrames *metrics.Gauge

	stageProposeCertify  *metrics.Histogram
	stageCertifyCommit   *metrics.Histogram
	stageCertifySpecDone *metrics.Histogram
	stageCommitExecute   *metrics.Histogram
	stageSubmitAck       *metrics.Histogram
}

func newNodeMetrics(id types.ReplicaID) *nodeMetrics {
	reg := metrics.NewRegistry()
	m := &nodeMetrics{
		reg:    reg,
		flight: metrics.NewFlightRecorder(metrics.DefaultFlightCap),
		log:    metrics.NewLogger(fmt.Sprintf("node %d", id)),

		committedTxs:       reg.Counter(mCommittedTxs),
		committedSingle:    reg.Counter(mCommittedSingle),
		committedCross:     reg.Counter(mCommittedCross),
		convertedToCross:   reg.Counter(mConvertedToCross),
		reexecutions:       reg.Counter(mReexecutions),
		roundsProposed:     reg.Counter(mRoundsProposed),
		skipBlocks:         reg.Counter(mSkipBlocks),
		shiftBlocks:        reg.Counter(mShiftBlocks),
		reconfigurations:   reg.Counter(mReconfigurations),
		validationFailures: reg.Counter(mValidationFailures),
		droppedAtReconfig:  reg.Counter(mDroppedAtReconfig),
		fastForwards:       reg.Counter(mFastForwards),
		prunedRounds:       reg.Counter(mPrunedRounds),
		epochJumps:         reg.Counter(mEpochJumps),
		snapshotsServed:    reg.Counter(mSnapshotsServed),
		midEpochCaptures:   reg.Counter(mMidEpochCaptures),
		midEpochInstalls:   reg.Counter(mMidEpochInstalls),
		snapChunksServed:   reg.Counter(mSnapChunksServed),
		snapChunksFetched:  reg.Counter(mSnapChunksFetched),
		snapChunksSkipped:  reg.Counter(mSnapChunksSkipped),
		snapChunkRetries:   reg.Counter(mSnapChunkRetries),
		specHits:           reg.Counter(mSpecHits),
		specMisses:         reg.Counter(mSpecMisses),
		specWastedTxs:      reg.Counter(mSpecWastedTxs),

		epoch:             reg.Gauge(mEpoch),
		round:             reg.Gauge(mRound),
		pendingCross:      reg.Gauge(mPendingCross),
		queueLen:          reg.Gauge(mQueueLen),
		batchSize:         reg.Gauge(mBatchSize),
		roundsInFlight:    reg.Gauge(mRoundsInFlight),
		execQueueDepth:    reg.Gauge(mExecQueueDepth),
		outboxFlushBytes:  reg.Gauge(mOutboxFlushBytes),
		outboxFlushFrames: reg.Gauge(mOutboxFlushFrames),

		stageProposeCertify:  reg.Histogram(metrics.StageProposeCertify),
		stageCertifyCommit:   reg.Histogram(metrics.StageCertifyCommit),
		stageCertifySpecDone: reg.Histogram(metrics.StageCertifySpecDone),
		stageCommitExecute:   reg.Histogram(metrics.StageCommitExecute),
		stageSubmitAck:       reg.Histogram(metrics.StageSubmitAck),
	}
	for class := 0; class < numSendClasses; class++ {
		m.sendErrors[class] = reg.Counter("send_errors_" + sendClassName[class])
	}
	return m
}

// trace records one flight-recorder event stamped with the node's
// current epoch. A and B are kind-specific payloads; each call site
// documents its own.
func (n *Node) trace(kind metrics.EventKind, round types.Round, a, b uint64) {
	n.nm.flight.Note(kind, uint64(n.epoch), uint64(round), a, b)
}

// Metrics returns the node's instrument registry (counters, gauges,
// per-stage histograms). Snapshot it for one coherent view; resolve
// named histograms for cross-node merging.
func (n *Node) Metrics() *metrics.Registry { return n.nm.reg }

// Flight returns the node's flight recorder — the ring of recent
// protocol trace events the chaos harness dumps on invariant failure.
func (n *Node) Flight() *metrics.FlightRecorder { return n.nm.flight }

// Stats returns a snapshot of the node's counters, read through the
// metrics registry (the instruments are the source of truth).
// PendingCross and QueueLen are sampled at the last proposal.
func (n *Node) Stats() Stats {
	m := n.nm
	s := Stats{
		Epoch:              types.Epoch(m.epoch.Value()),
		Round:              types.Round(m.round.Value()),
		CommittedTxs:       m.committedTxs.Value(),
		CommittedSingle:    m.committedSingle.Value(),
		CommittedCross:     m.committedCross.Value(),
		ConvertedToCross:   m.convertedToCross.Value(),
		Reexecutions:       m.reexecutions.Value(),
		RoundsProposed:     m.roundsProposed.Value(),
		SkipBlocks:         m.skipBlocks.Value(),
		ShiftBlocks:        m.shiftBlocks.Value(),
		Reconfigurations:   m.reconfigurations.Value(),
		ValidationFailures: m.validationFailures.Value(),
		DroppedAtReconfig:  m.droppedAtReconfig.Value(),
		FastForwards:       m.fastForwards.Value(),
		PrunedRounds:       m.prunedRounds.Value(),
		EpochJumps:         m.epochJumps.Value(),
		SnapshotsServed:    m.snapshotsServed.Value(),
		MidEpochCaptures:   m.midEpochCaptures.Value(),
		MidEpochInstalls:   m.midEpochInstalls.Value(),
		SnapChunksServed:   m.snapChunksServed.Value(),
		SnapChunksFetched:  m.snapChunksFetched.Value(),
		SnapChunksSkipped:  m.snapChunksSkipped.Value(),
		SnapChunkRetries:   m.snapChunkRetries.Value(),
		SpecHits:           m.specHits.Value(),
		SpecMisses:         m.specMisses.Value(),
		SpecWastedTxs:      m.specWastedTxs.Value(),
		PendingCross:       uint64(m.pendingCross.Value()),
		QueueLen:           uint64(m.queueLen.Value()),
		BatchSize:          uint64(m.batchSize.Value()),
	}
	for class := 0; class < numSendClasses; class++ {
		s.SendErrors[class] = m.sendErrors[class].Value()
	}
	return s
}
