package node

import (
	"sort"
	"time"

	"thunderbolt/internal/dag"
	"thunderbolt/internal/gateway"
	"thunderbolt/internal/metrics"
	"thunderbolt/internal/tusk"
	"thunderbolt/internal/types"
)

// State-transfer rescue (ROADMAP "Cross-epoch recovery", extended to
// mid-epoch chunked rescue).
//
// Committed-wave GC bounds in-epoch recovery to the retention horizon,
// and a reconfiguration discards the old DAG entirely — so a replica
// that misses more history than the horizon can never re-derive it
// from catch-up requests: peers no longer hold what it is asking for.
// This file closes that hole with a snapshot protocol:
//
//   - Capture: every replica builds a types.Snapshot at each epoch
//     transition AND at fixed committed-leader-round boundaries inside
//     the epoch (Config.SnapshotInterval). Both run at deterministic
//     positions of the committed sequence, so every honest replica's
//     capture for the same position is bit-identical. The capture
//     streams the ledger through a ChunkBuilder: fixed-size chunks,
//     per-chunk digests, and a snapshot digest over the manifest
//     (header + Merkle-folded chunk digests + dedup state) — never
//     over the raw records, so manifest and monolithic forms share
//     one digest and one signature.
//   - Detect: a replica whose round advancement has stalled while f+1
//     peers present future-epoch evidence — or that stays wedged for
//     several request periods with no such evidence (mid-epoch
//     stranding) — sends MsgSnapManifestReq to a rotating f+1 window
//     of peers. Peers also serve snapshots passively when a
//     MsgRoundReq arrives from a stale epoch or for a round below
//     their GC floor.
//   - Verify: candidates are collected per verified signer; install
//     waits for f+1 distinct signers with matching snapshot digests,
//     which guarantees at least one honest source — a lying server
//     cannot forge a quorum alone. Monolithic bodies must re-chunk to
//     the signed manifest (VerifyLedger); manifest-only candidates
//     move to the chunk fetch state machine (snapchunk.go), where
//     every chunk verifies independently against its manifest digest.
//   - Install: one batched state application (fetched chunks only —
//     locally matching chunks are skipped), the dedup and commit-log
//     position taken verbatim, then either an epoch jump (transition
//     snapshots) or a mid-epoch re-entry: the DAG and committer are
//     re-anchored at a base a full re-entry margin behind the
//     snapshot's end round, waves re-derived below the snapshot
//     position deduplicate against the restored state exactly like a
//     WAL-restart replay, and the replica rejoins while the committee
//     keeps committing.

// snapshotReqEvery spaces rescue requests and per-peer snapshot
// serves, in housekeeping ticks: snapshots are large payloads, so
// neither side re-sends them every tick.
const snapshotReqEvery = 4

// captureSnapshot records the canonical committed state at the
// transition out of the current epoch into nextEpoch. Runs on the
// event loop immediately before resetEpochState discards the DAG.
func (n *Node) captureSnapshot(nextEpoch types.Epoch) {
	n.capture(nextEpoch)
}

// maybeCaptureMidEpoch captures a mid-epoch snapshot when the
// committed leader round crosses a Config.SnapshotInterval boundary.
// Called after each executed wave: honest replicas execute the
// identical wave sequence, so the boundary crossing — and the
// committed state at it — is the same everywhere, making mid-epoch
// captures as bit-identical as transition captures. (A replica
// replaying history it already holds captures at stale positions; its
// digests then match no honest quorum, so those captures are inert.)
func (n *Node) maybeCaptureMidEpoch(leaderRound types.Round) {
	if n.cfg.SnapshotInterval <= 0 {
		return
	}
	iv := types.Round(n.cfg.SnapshotInterval)
	if leaderRound/iv <= n.lastSnapAt/iv {
		return
	}
	n.lastSnapAt = leaderRound
	n.capture(n.epoch)
	n.nm.midEpochCaptures.Add(1)
	n.trace(metrics.EvSnapCapture, leaderRound, 0, 0)
}

// capture builds the snapshot at the current committed position,
// tagged with snapEpoch: the next epoch for transition captures, the
// current epoch for mid-epoch captures (Epoch == PrevEpoch is what
// marks a snapshot as mid-epoch to its installer). One streaming pass
// produces the chunk payloads, their digests, and — when the ledger
// is small enough for the monolithic path — the retained records.
func (n *Node) capture(snapEpoch types.Epoch) {
	cb := types.NewChunkBuilder(n.cfg.SnapChunkRecords, n.cfg.SnapMonolithicRecords)
	n.cfg.Store.Ascend(func(r types.RWRecord) bool {
		cb.Add(r.Key, r.Value)
		return true
	})
	chunks, digests, records, count := cb.Finish()
	snap := &types.Snapshot{
		Epoch:        snapEpoch,
		N:            uint32(n.n),
		PrevEpoch:    n.epoch,
		EndRound:     n.committer.LastLeaderRound(),
		Commits:      n.Stats().CommittedTxs,
		ChunkSize:    uint32(n.cfg.SnapChunkRecords),
		RecordCount:  uint64(count),
		ChunkDigests: digests,
		Ledger:       records,
		// The dedup payload is the compact per-client state, not the
		// full applied set: floors and window bitmaps (bounded by
		// clients × window) plus the bounded legacy digest window.
		// Dedup state evolves only in committed order, so honest
		// replicas capture bit-identical sessions here.
		DedupWindow:       uint32(n.dedup.Window()),
		LegacyCap:         uint32(n.dedup.LegacyCap()),
		SessionIdleEpochs: uint32(n.cfg.SessionIdleEpochs),
		Sessions:          n.dedup.Sessions(),
		Applied:           n.dedup.Legacy(),
	}
	n.lastSnap = snap
	n.snapChunks = chunks
	n.lastSnapMsg = nil // rebuilt on first serve
	n.lastManifestMsg = nil
}

// noteFutureEpoch records evidence that a peer has moved past this
// replica's epoch (a message from a future epoch). Requiring f+1
// distinct peers before actively requesting snapshots keeps one
// confused or malicious peer from triggering request traffic — but it
// is an advisory gate, not a security boundary: the evidence keys on
// claimed sender IDs, which TCP framing does not authenticate, so a
// determined attacker can induce spurious rescue requests. That is
// harmless by design; install safety rests entirely on the f+1
// verified-signer digest quorum in maybeInstallSnapshot.
func (n *Node) noteFutureEpoch(from types.ReplicaID, e types.Epoch) {
	if e > n.peerEpoch[from] {
		n.peerEpoch[from] = e
	}
}

// maybeRequestSnapshot sends MsgSnapManifestReq when this replica is
// wedged. Two triggers: provably behind across epochs (f+1 peers seen
// in a future epoch), or a deep stall with no epoch evidence — the
// mid-epoch stranding case, where peers are in our epoch but have
// pruned every round we pull (the passive below-floor reply path
// usually answers first; this is the active backstop). Each attempt
// targets the next f+1-peer window instead of broadcasting, and the
// window rotates between attempts, so a dead or silently withholding
// server never absorbs the only request forever: candidates accumulate
// in snapFrom across attempts, and the f+1 install quorum can
// assemble from answers gathered across different serving sets.
// Called from housekeeping.
func (n *Node) maybeRequestSnapshot(stalled bool) {
	if !stalled || time.Since(n.snapReqAt) < snapshotReqEvery*n.cfg.TickInterval {
		return
	}
	ahead := 0
	for _, e := range n.peerEpoch {
		if e > n.epoch {
			ahead++
		}
	}
	deepStall := time.Since(n.lastProgress) >= 2*snapshotReqEvery*n.cfg.TickInterval
	if ahead < n.f+1 && !deepStall {
		return
	}
	n.snapReqAt = time.Now()
	req := (&snapManifestReq{Epoch: n.epoch, Round: n.committer.LastLeaderRound()}).marshal()
	sent := 0
	for i := 0; i < n.n && sent < n.f+1; i++ {
		p := types.ReplicaID((n.snapReqCursor + i) % n.n)
		if p == n.cfg.ID {
			continue
		}
		n.sendNow(p, MsgSnapManifestReq, req)
		sent++
	}
	n.snapReqCursor = (n.snapReqCursor + n.f + 1) % n.n
}

// serveSnapshot sends this node's latest capture to a replica that
// says it is at (reqEpoch, reqRound), rate-limited per requester, in
// whichever form fits: ledgers at or below the monolithic threshold
// travel complete in one MsgSnapshot; larger states send the manifest
// and let the requester pull chunks. The snapshot is only sent when
// it would actually move the requester forward — a later epoch, or
// the same epoch at least a full re-entry margin ahead of reqRound
// (reqRound 0 means the requester's position is unknown; the
// requester's own install gate re-checks usefulness).
func (n *Node) serveSnapshot(to types.ReplicaID, reqEpoch types.Epoch, reqRound types.Round) {
	snap := n.lastSnap
	if snap == nil || to == n.cfg.ID {
		return
	}
	if snap.Epoch < reqEpoch {
		return
	}
	if snap.Epoch == reqEpoch {
		// Same-epoch rescue needs a mid-epoch capture (a transition
		// snapshot into this epoch would restart the requester at a
		// position it already passed) far enough ahead of the
		// requester to be worth installing.
		if snap.Epoch != snap.PrevEpoch || snap.EndRound < reqRound+minGCHorizon {
			return
		}
	}
	if at, ok := n.snapServed[to]; ok && time.Since(at) < snapshotReqEvery*n.cfg.TickInterval {
		return
	}
	n.snapServed[to] = time.Now()
	if snap.Complete() {
		if n.lastSnapMsg == nil {
			// The snapshot is immutable once captured: encode and sign
			// it once, then every further serve is a plain Send.
			n.lastSnapMsg = (&snapshotMsg{
				Signer: n.cfg.ID,
				Sig:    n.cfg.Signer.Sign(snap.Digest()),
				Snap:   mustMarshal(snap),
			}).marshal()
		}
		n.sendNow(to, MsgSnapshot, n.lastSnapMsg)
	} else {
		if n.lastManifestMsg == nil {
			n.lastManifestMsg = (&snapshotMsg{
				Signer: n.cfg.ID,
				Sig:    n.cfg.Signer.Sign(snap.Digest()),
				Snap:   mustMarshal(snap.Manifest()),
			}).marshal()
		}
		n.sendNow(to, MsgSnapManifest, n.lastManifestMsg)
	}
	n.nm.snapshotsServed.Add(1)
}

func (n *Node) handleSnapshotReq(from types.ReplicaID, r *snapshotReq) {
	n.serveSnapshot(from, r.Epoch, 0)
}

// snapshotUseful gates candidate intake: installing must move this
// replica forward. Cross-epoch snapshots from a later epoch always
// qualify. Same-epoch snapshots qualify only when they are mid-epoch
// captures sitting at least a full re-entry margin ahead of this
// replica's committed position (a healthy replica near the frontier
// rejects them, so pushed manifests cannot perturb a live node) and
// not behind its commit count (installing an older dedup state would
// roll resolution back).
func (n *Node) snapshotUseful(s *types.Snapshot) bool {
	if s.Epoch > n.epoch {
		return true
	}
	if s.Epoch < n.epoch {
		return false
	}
	return s.Epoch == s.PrevEpoch &&
		s.EndRound >= n.committer.LastLeaderRound()+minGCHorizon &&
		s.Commits >= n.Stats().CommittedTxs
}

// handleSnapshot collects one replica's signed snapshot (monolithic
// MsgSnapshot or MsgSnapManifest form) and installs once f+1 distinct
// verified signers agree. The candidate key is the verified signer,
// never the transport sender: over TCP the claimed sender ID is just
// bytes in a frame, and without the signature check one connection
// could impersonate f+1 replicas and forge the install quorum. Only
// the latest candidate per signer counts, so re-sending variants
// cannot inflate any count either.
func (n *Node) handleSnapshot(_ types.ReplicaID, payload []byte) {
	var m snapshotMsg
	if err := m.unmarshal(payload); err != nil {
		return
	}
	if int(m.Signer) >= n.n || m.Signer == n.cfg.ID {
		return
	}
	var snap types.Snapshot
	if err := snap.UnmarshalBinary(m.Snap); err != nil {
		return
	}
	if int(snap.N) != n.n || !snap.Canonical() || !n.snapshotUseful(&snap) {
		return
	}
	// The dedup configuration is part of the committee contract (like
	// N): installing under a different window would make this
	// replica's dedup evolution — and its next snapshot capture —
	// diverge from the committee's.
	if int(snap.DedupWindow) != n.dedup.Window() || int(snap.LegacyCap) != n.dedup.LegacyCap() ||
		int(snap.SessionIdleEpochs) != n.cfg.SessionIdleEpochs {
		return
	}
	if !n.verifier.Verify(m.Signer, snap.Digest(), m.Sig) {
		return
	}
	// The signature covers the manifest; a monolithic body must
	// additionally re-chunk to exactly those digests, or a lying
	// server could pair an honest manifest with a forged ledger.
	if len(snap.Ledger) != 0 && !snap.VerifyLedger() {
		return
	}
	if snap.Epoch > n.epoch {
		n.noteFutureEpoch(m.Signer, snap.Epoch)
	}
	n.snapFrom[m.Signer] = &snap
	n.maybeInstallSnapshot()
}

// maybeInstallSnapshot looks for a digest vouched for by f+1 distinct
// verified signers. Matching digests mean identical manifests, and
// f+1 of them include at least one honest replica's capture. A
// complete candidate (ledger body attached, already verified against
// the manifest) installs immediately; manifest-only candidates start
// the chunked fetch across the quorum's signers.
func (n *Node) maybeInstallSnapshot() {
	votes := make(map[types.Digest]int, len(n.snapFrom))
	digests := make(map[types.ReplicaID]types.Digest, len(n.snapFrom))
	var best *types.Snapshot
	var bestDig types.Digest
	for id, s := range n.snapFrom {
		d := s.Digest()
		digests[id] = d
		votes[d]++
		if votes[d] >= n.f+1 && (best == nil || s.Epoch > best.Epoch ||
			(s.Epoch == best.Epoch && s.Commits > best.Commits)) {
			best = s
			bestDig = d
		}
	}
	if best == nil {
		return
	}
	var servers []types.ReplicaID
	complete := best
	if !best.Complete() {
		complete = nil
		for id, d := range digests {
			if d != bestDig {
				continue
			}
			servers = append(servers, id)
			if s := n.snapFrom[id]; s.Complete() {
				complete = s
			}
		}
		sort.Slice(servers, func(i, j int) bool { return servers[i] < servers[j] })
	}
	if complete != nil {
		// Re-derive the chunk payloads from the verified body so this
		// replica can serve chunk fetchers after installing.
		chunks := complete.BuildChunks(complete.ChunkSize)
		n.installSnapshot(complete, complete.Ledger, chunks)
		return
	}
	n.startChunkFetch(best, servers)
}

// installSnapshot applies a verified snapshot. The replica's own
// committed prefix is always a prefix of the snapshot's (commit
// sequences are prefix-consistent and the snapshot sits at a later
// position), so overlaying the writes and taking the snapshot's dedup
// state verbatim loses nothing; the batched Store.Apply is the single
// state application, and the verbatim dedup restore is what keeps
// this replica's next capture bit-identical to honest peers'. writes
// is the record set that actually needs applying — the full ledger on
// the monolithic path, only the fetched (non-skipped) chunks on the
// chunked path. chunks is the snapshot's full encoded chunk list,
// retained for serving later fetchers.
func (n *Node) installSnapshot(snap *types.Snapshot, writes []types.RWRecord, chunks [][]byte) {
	n.fetch = nil
	crossEpoch := snap.Epoch != n.epoch
	// Restore the dedup first, then apply the ledger with the restore
	// journaled in the same WAL record: a durable replica that
	// restarts after this point replays the absolute dedup state next
	// to the ledger batch, landing on the identical position (the
	// restore is absolute, so replaying it over a checkpoint that
	// already contains it is idempotent).
	n.dedup.Restore(snap.Sessions, snap.Applied)
	n.applyCommit(writes, n.restoreNote(snap.Epoch, snap.Commits))
	// Re-anchor the commit log at the snapshot's sequence position:
	// the local log resumes exactly where the committee's agreed
	// sequence continues, keeping cross-replica prefix comparisons
	// meaningful after the jump.
	n.clogMu.Lock()
	n.clog = nil
	n.clogStart = snap.Commits
	n.clogMu.Unlock()
	// The verified snapshot is identical to an honest capture, so this
	// replica now serves it — manifest, chunks, or monolithic body —
	// to later stragglers, widening the pool a future f+1 install can
	// draw on (re-signed with this replica's own key on first serve).
	n.lastSnap = snap
	n.snapChunks = chunks
	n.lastSnapMsg = nil
	n.lastManifestMsg = nil
	if crossEpoch {
		n.nm.epochJumps.Add(1)
		// a = the epoch jumped into.
		n.trace(metrics.EvEpochJump, snap.EndRound, uint64(snap.Epoch), 0)
	}
	if snap.Epoch == snap.PrevEpoch {
		n.nm.midEpochInstalls.Add(1)
	}
	// Absolute set: the committed position jumps to the snapshot's.
	n.nm.committedTxs.Store(snap.Commits)
	// a = snapshot epoch, b = its committed-transaction position.
	n.trace(metrics.EvSnapInstall, snap.EndRound, uint64(snap.Epoch), snap.Commits)
	if snap.Epoch == snap.PrevEpoch {
		n.resumeMidEpoch(snap)
	} else {
		n.transition(snap.Epoch, false)
	}
}

// resumeMidEpoch re-enters a live epoch from a mid-epoch snapshot:
// the DAG and committer restart at a base one full re-entry margin
// behind the snapshot's end round (rounded down to a leader round),
// where peers still retain vertices — the snapshot's serving
// constraint GCHorizon ≥ SnapshotInterval + minGCHorizon guarantees
// it. Waves re-derived between the base and the snapshot position
// linearize transactions the restored dedup already resolves, so they
// validate as duplicates instead of re-applying — the same replay
// model as a WAL restart. When the snapshot is from this replica's
// own epoch, the vote map survives (a re-entry must not be tricked
// into second votes for slots it already signed) and queued plus
// in-flight own transactions requeue — the shard assignment is
// unchanged, so they are still ours to propose. A cross-epoch
// mid-epoch install (stranded across a reconfiguration, rescued by a
// later epoch's mid-epoch capture) instead nacks them, exactly like a
// transition: the shard rotated and clients must re-route.
func (n *Node) resumeMidEpoch(snap *types.Snapshot) {
	base := types.Round(1)
	if snap.EndRound > minGCHorizon {
		base = snap.EndRound - minGCHorizon
	}
	if base%2 == 0 {
		base--
	}
	sameEpoch := snap.Epoch == n.epoch
	savedVotes := n.voted
	savedSeen := n.seen
	queue := n.txQueue
	var pending []*types.Transaction
	for _, d := range n.ownPending {
		if b, ok := n.pendingBlocks[d]; ok {
			pending = append(pending, b.SingleTxs...)
			pending = append(pending, b.CrossTxs...)
		}
	}
	n.txQueue = nil
	n.resetEpochState(snap.Epoch)
	n.dagStore = dag.NewStoreAt(snap.Epoch, n.n, base)
	n.committer = tusk.NewCommitterAt(n.dagStore, n.n, base)
	n.nextRound = base
	// Suppress mid-epoch captures until commits pass the snapshot
	// position: boundaries crossed by re-derived waves would capture
	// against state already ahead of them.
	n.lastSnapAt = snap.EndRound
	if sameEpoch {
		n.voted = savedVotes
		n.seen = savedSeen
		n.txQueue = queue
		queued := make(map[types.Digest]bool, len(queue))
		for _, tx := range queue {
			queued[tx.ID()] = true
		}
		for _, tx := range pending {
			id := tx.ID()
			if n.dedup.Resolved(tx) || queued[id] {
				continue
			}
			queued[id] = true
			n.txQueue = append(n.txQueue, tx)
		}
	} else {
		n.seen = make(map[types.Digest]time.Time)
		rejected := append(queue, pending...)
		seen := make(map[types.Digest]bool, len(rejected))
		dropped := uint64(len(queue))
		for _, tx := range rejected {
			id := tx.ID()
			if n.dedup.Resolved(tx) || seen[id] {
				continue
			}
			seen[id] = true
			n.nackPending(tx, gateway.NackEpochEnded)
			if n.cfg.OnRejectTx != nil {
				n.cfg.OnRejectTx(tx)
			}
		}
		n.nm.droppedAtReconfig.Add(dropped)
	}
	n.nm.epoch.Set(int64(n.epoch))
	// Replay messages that arrived early, then rejoin: the first
	// proposal at the base needs no parents (the store waives them
	// there), and normal catch-up — round pulls, orphan backfill,
	// fast-forward — walks this replica to the live frontier.
	future := n.futureMsgs
	n.futureMsgs = nil
	n.propose()
	for _, m := range future {
		n.handle(m)
	}
}
