package node

import (
	"time"

	"thunderbolt/internal/types"
)

// Cross-epoch state transfer (ROADMAP "Cross-epoch recovery").
//
// Committed-wave GC bounds in-epoch recovery to the retention horizon,
// and a reconfiguration discards the old DAG entirely — so a replica
// that misses a DAG transition can never re-derive the Shift quorum
// from catch-up requests: peers no longer hold the history it is
// asking for. This file closes that hole with a snapshot + epoch-jump
// protocol:
//
//   - Capture: every replica builds a types.Snapshot at each epoch
//     transition, just before discarding the old DAG. Transitions
//     happen at one deterministic position of the committed sequence,
//     so every honest replica's snapshot for the same transition is
//     bit-identical.
//   - Detect: a replica whose round advancement has stalled while f+1
//     peers present future-epoch evidence is beyond in-epoch recovery;
//     it broadcasts MsgSnapshotReq. Peers also serve snapshots
//     passively when a MsgRoundReq arrives from a stale epoch.
//   - Verify: candidates are collected per serving peer; install
//     waits for f+1 distinct peers with matching snapshot digests,
//     which guarantees at least one honest source — a lying server
//     cannot forge a quorum alone.
//   - Install: one batched state application (ledger + applied set +
//     commit-log position), then an epoch jump: adopt the snapshot's
//     epoch, reset DAG/pending/vote/collector state, and rejoin via
//     the normal in-epoch recovery path (round pulls, fast-forward).

// snapshotReqEvery spaces MsgSnapshotReq broadcasts and per-peer
// MsgSnapshot serves, in housekeeping ticks: snapshots are full-state
// payloads, so neither side re-sends them every tick.
const snapshotReqEvery = 4

// captureSnapshot records the canonical committed state at the
// transition out of the current epoch into nextEpoch. Runs on the
// event loop immediately before resetEpochState discards the DAG.
func (n *Node) captureSnapshot(nextEpoch types.Epoch) {
	// Stream the ledger out through the backend iterator: the capture
	// touches each record once in key order instead of asking the
	// backend to materialize (and clone) an intermediate dump — with
	// a disk-backed store this is the shape an on-disk cursor serves.
	ledger := make([]types.RWRecord, 0, n.cfg.Store.Len())
	n.cfg.Store.Ascend(func(r types.RWRecord) bool {
		ledger = append(ledger, types.RWRecord{Key: r.Key, Value: r.Value.Clone()})
		return true
	})
	snap := &types.Snapshot{
		Epoch:     nextEpoch,
		N:         uint32(n.n),
		PrevEpoch: n.epoch,
		EndRound:  n.committer.LastLeaderRound(),
		Commits:   n.Stats().CommittedTxs,
		Ledger:    ledger,
		// The dedup payload is the compact per-client state, not the
		// full applied set: floors and window bitmaps (bounded by
		// clients × window) plus the bounded legacy digest window.
		// Dedup state evolves only in committed order, so honest
		// replicas capture bit-identical sessions here.
		DedupWindow:       uint32(n.dedup.Window()),
		LegacyCap:         uint32(n.dedup.LegacyCap()),
		SessionIdleEpochs: uint32(n.cfg.SessionIdleEpochs),
		Sessions:          n.dedup.Sessions(),
		Applied:           n.dedup.Legacy(),
	}
	n.lastSnap = snap
	n.lastSnapMsg = nil // rebuilt on first serve
}

// noteFutureEpoch records evidence that a peer has moved past this
// replica's epoch (a message from a future epoch). Requiring f+1
// distinct peers before actively requesting snapshots keeps one
// confused or malicious peer from triggering request traffic — but it
// is an advisory gate, not a security boundary: the evidence keys on
// claimed sender IDs, which TCP framing does not authenticate, so a
// determined attacker can induce spurious MsgSnapshotReq broadcasts.
// That is harmless by design; install safety rests entirely on the
// f+1 verified-signer digest quorum in maybeInstallSnapshot.
func (n *Node) noteFutureEpoch(from types.ReplicaID, e types.Epoch) {
	if e > n.peerEpoch[from] {
		n.peerEpoch[from] = e
	}
}

// maybeRequestSnapshot broadcasts MsgSnapshotReq when this replica is
// both wedged (no progress across ticks) and provably behind (f+1
// peers seen in a future epoch). Called from housekeeping.
func (n *Node) maybeRequestSnapshot(stalled bool) {
	if !stalled || time.Since(n.snapReqAt) < snapshotReqEvery*n.cfg.TickInterval {
		return
	}
	ahead := 0
	for _, e := range n.peerEpoch {
		if e > n.epoch {
			ahead++
		}
	}
	if ahead < n.f+1 {
		return
	}
	n.snapReqAt = time.Now()
	_ = n.cfg.Transport.Broadcast(MsgSnapshotReq, (&snapshotReq{Epoch: n.epoch}).marshal())
}

// serveSnapshot sends this node's latest transition snapshot to a
// replica stuck at reqEpoch, rate-limited per requester.
func (n *Node) serveSnapshot(to types.ReplicaID, reqEpoch types.Epoch) {
	if n.lastSnap == nil || n.lastSnap.Epoch <= reqEpoch || to == n.cfg.ID {
		return
	}
	if at, ok := n.snapServed[to]; ok && time.Since(at) < snapshotReqEvery*n.cfg.TickInterval {
		return
	}
	n.snapServed[to] = time.Now()
	if n.lastSnapMsg == nil {
		// The snapshot is immutable once captured: encode and sign it
		// once, then every further serve is a plain Send.
		n.lastSnapMsg = (&snapshotMsg{
			Signer: n.cfg.ID,
			Sig:    n.cfg.Signer.Sign(n.lastSnap.Digest()),
			Snap:   mustMarshal(n.lastSnap),
		}).marshal()
	}
	_ = n.cfg.Transport.Send(to, MsgSnapshot, n.lastSnapMsg)
	n.bump(func(s *Stats) { s.SnapshotsServed++ })
}

func (n *Node) handleSnapshotReq(from types.ReplicaID, r *snapshotReq) {
	n.serveSnapshot(from, r.Epoch)
}

// handleSnapshot collects one replica's signed snapshot and installs
// once f+1 distinct verified signers agree. The candidate key is the
// verified signer, never the transport sender: over TCP the claimed
// sender ID is just bytes in a frame, and without the signature check
// one connection could impersonate f+1 replicas and forge the install
// quorum. Only the latest candidate per signer counts, so re-sending
// variants cannot inflate any count either.
func (n *Node) handleSnapshot(_ types.ReplicaID, payload []byte) {
	var m snapshotMsg
	if err := m.unmarshal(payload); err != nil {
		return
	}
	if int(m.Signer) >= n.n || m.Signer == n.cfg.ID {
		return
	}
	var snap types.Snapshot
	if err := snap.UnmarshalBinary(m.Snap); err != nil {
		return
	}
	if snap.Epoch <= n.epoch || int(snap.N) != n.n || !snap.Canonical() {
		return
	}
	// The dedup configuration is part of the committee contract (like
	// N): installing under a different window would make this
	// replica's dedup evolution — and its next snapshot capture —
	// diverge from the committee's.
	if int(snap.DedupWindow) != n.dedup.Window() || int(snap.LegacyCap) != n.dedup.LegacyCap() ||
		int(snap.SessionIdleEpochs) != n.cfg.SessionIdleEpochs {
		return
	}
	if !n.verifier.Verify(m.Signer, snap.Digest(), m.Sig) {
		return
	}
	n.noteFutureEpoch(m.Signer, snap.Epoch)
	n.snapFrom[m.Signer] = &snap
	n.maybeInstallSnapshot()
}

// maybeInstallSnapshot looks for a digest vouched for by f+1 distinct
// verified signers and installs it. Matching digests mean
// byte-identical content, and f+1 of them include at least one honest
// replica's capture.
func (n *Node) maybeInstallSnapshot() {
	votes := make(map[types.Digest]int, len(n.snapFrom))
	var best *types.Snapshot
	for _, s := range n.snapFrom {
		d := s.Digest()
		votes[d]++
		if votes[d] >= n.f+1 && (best == nil || s.Epoch > best.Epoch) {
			best = s
		}
	}
	if best != nil {
		n.installSnapshot(best)
	}
}

// installSnapshot applies a verified snapshot and jumps epochs. The
// replica's own committed prefix is always a prefix of the snapshot's
// (commit sequences are prefix-consistent and the snapshot sits at a
// later position), so overlaying the ledger and taking the snapshot's
// dedup state verbatim loses nothing; the batched Store.Apply is the
// single state application, and the verbatim dedup restore is what
// keeps this replica's next capture bit-identical to honest peers'.
func (n *Node) installSnapshot(snap *types.Snapshot) {
	// Restore the dedup first, then apply the ledger with the restore
	// journaled in the same WAL record: a durable replica that
	// restarts after this point replays the absolute dedup state next
	// to the ledger batch, landing on the identical position (the
	// restore is absolute, so replaying it over a checkpoint that
	// already contains it is idempotent).
	n.dedup.Restore(snap.Sessions, snap.Applied)
	n.applyCommit(snap.Ledger, n.restoreNote(snap.Epoch, snap.Commits))
	// Re-anchor the commit log at the snapshot's sequence position:
	// the local log resumes exactly where the committee's agreed
	// sequence continues, keeping cross-replica prefix comparisons
	// meaningful after the jump.
	n.clogMu.Lock()
	n.clog = nil
	n.clogStart = snap.Commits
	n.clogMu.Unlock()
	// The verified snapshot is byte-identical to an honest capture, so
	// this replica now serves it to later stragglers of the same
	// transition — widening the pool a future f+1 install can draw on
	// (re-signed with this replica's own key on first serve).
	n.lastSnap = snap
	n.lastSnapMsg = nil
	n.bump(func(s *Stats) {
		s.EpochJumps++
		s.CommittedTxs = snap.Commits
	})
	n.transition(snap.Epoch, false)
}
