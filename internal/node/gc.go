package node

import (
	"thunderbolt/internal/metrics"
	"thunderbolt/internal/types"
)

// Committed-wave garbage collection (ROADMAP "DAG/memory pruning").
//
// Within an epoch the hot-path maps — the DAG store, pendingBlocks,
// voted, collectors, certWait, round-request bookkeeping — previously
// grew with every round proposed. After each commit wave the node now
// prunes everything below a retention floor derived from its own
// committed frontier:
//
//	floor = lastCommittedLeaderRound − GCHorizon
//
// Pruning relative to the node's *own* commit progress is what makes
// GC recovery-safe from the pruner's side: a replica that is itself
// behind has a low floor and never discards history it still needs.
// For peers, the horizon is the contract: the MsgCertReq/MsgRoundReq
// catch-up protocol can serve any round within the horizon of the
// server's committed frontier; a replica that misses more than that
// is beyond in-epoch recovery and is rescued by the state-transfer
// protocol (snapshot.go) — a same-epoch request for a pruned round is
// answered with the server's latest snapshot, and the replica
// re-enters at the snapshot's base within a bounded round budget (the
// mid-epoch capture cadence, Config.SnapshotInterval) instead of
// waiting for the next reconfiguration or replaying the pruned range.
//
// Safety of discarding uncommitted vertices below the floor is argued
// at dag.Store.PruneBelow: with the horizon clamped far above the
// fast-forward gap, a vertex that old can never join committed
// history, so no future Linearize call on any replica can reach it.

// maybeGC advances the retention floor after commit progress and
// prunes every per-round structure below it. Cost is O(rounds newly
// pruned + entries in them), so steady-state work per wave is
// proportional to wave progress, not to history size.
func (n *Node) maybeGC() {
	if n.cfg.GCHorizon < 0 {
		return
	}
	horizon := types.Round(n.cfg.GCHorizon)
	last := n.committer.LastLeaderRound()
	if last <= horizon {
		return
	}
	floor := last - horizon
	old := n.dagStore.Floor()
	if floor <= old {
		return
	}
	n.committer.Forget(n.dagStore.PruneBelow(floor))

	// queued dedups rescue requeues against the live queue; built
	// lazily — own blocks below the floor are normally committed.
	var queued map[types.Digest]bool
	for r := old; r < floor; r++ {
		// Rescue any own uncommitted transactions before their block
		// is dropped, mirroring fastForward: a block this far behind
		// the committed frontier can never commit, so requeueing (with
		// applied/queue dedup) is the only path that keeps its
		// transactions from starving until the client's retry.
		if d, ok := n.ownPending[r]; ok {
			delete(n.ownPending, r)
			if b, ok := n.pendingBlocks[d]; ok {
				if queued == nil {
					queued = make(map[types.Digest]bool, len(n.txQueue))
					for _, tx := range n.txQueue {
						queued[tx.ID()] = true
					}
				}
				n.requeueOwnBlock(b, queued)
			}
		}
		if ds, ok := n.pendingRounds[r]; ok {
			for _, d := range ds {
				delete(n.pendingBlocks, d)
			}
			delete(n.pendingRounds, r)
		}
		if d, ok := n.collectorRound[r]; ok {
			delete(n.collectors, d)
			delete(n.collectorRound, r)
		}
		for p := 0; p < n.n; p++ {
			delete(n.voted, voteKey{round: r, proposer: types.ReplicaID(p)})
		}
		delete(n.roundReqAt, r)
	}
	// certWait and orphans are tiny transient sets; a linear sweep per
	// GC pass keeps them honest without their own round index.
	for d, cert := range n.certWait {
		if cert.Round < floor {
			delete(n.certWait, d)
		}
	}
	if len(n.orphans) > 0 {
		keep := n.orphans[:0]
		for _, o := range n.orphans {
			if o.Round() >= floor {
				keep = append(keep, o)
				continue
			}
			d := o.Cert.Digest()
			delete(n.orphanSet, d)
			delete(n.parentReq, d)
		}
		for i := len(keep); i < len(n.orphans); i++ {
			n.orphans[i] = nil
		}
		n.orphans = keep
	}
	if n.lastBlock != nil && n.lastBlock.Round < floor {
		n.lastBlock = nil
	}
	n.nm.prunedRounds.Add(uint64(floor - old))
	// a = rounds reclaimed by this pass.
	n.trace(metrics.EvGC, floor, uint64(floor-old), 0)
}
