package node

import (
	"time"

	"thunderbolt/internal/crypto"
	"thunderbolt/internal/gateway"
	"thunderbolt/internal/metrics"
	"thunderbolt/internal/tusk"
	"thunderbolt/internal/types"
	"thunderbolt/internal/validate"
)

// processCommits drains the Tusk committer and queues every newly
// committed wave for execution. Execution is pipelined: it happens in
// drainExec between event-loop passes, so certificate and vote
// handling for rounds r and r+1 proceeds while wave r−1 executes —
// the commit path never lock-steps the protocol stages.
func (n *Node) processCommits() {
	if waves := n.committer.Advance(); len(waves) > 0 {
		// One clock read covers the batch: waves released by the same
		// Advance committed at the same decision point.
		now := time.Now()
		for _, w := range waves {
			n.execQ = append(n.execQ, execItem{wave: w, committedAt: now})
		}
		n.nm.execQueueDepth.Set(int64(len(n.execQ)))
		n.nm.roundsInFlight.Set(int64(n.nextRound) - 1 - int64(n.committer.LastLeaderRound()))
	}
}

// drainExec executes queued commit waves in order. If a wave pushes
// the epoch's committed Shift count to 2f+1, the node transitions to
// a new DAG immediately and discards any later queued waves of the
// old epoch (resetEpochState clears execQ; the paper's "ending round"
// semantics). Between waves the inbox is re-drained — messages that
// arrived during a long execution are handled (and may append further
// waves) before the next wave runs.
func (n *Node) drainExec() {
	for i := 0; i < len(n.execQ); i++ {
		it := n.execQ[i]
		n.execQ[i] = execItem{} // release the vertex references
		// Speculation fast path: if this wave was predicted, executed
		// ahead of commit, and the prediction held, install the
		// precomputed results instead of executing on the critical path.
		if !n.trySpecInstall(it.wave, it.committedAt) {
			n.executeWave(it.wave, it.committedAt)
		}
		if len(n.committedShift) >= crypto.QuorumSize(n.n) {
			n.reconfigure()
			n.flushOutbox()
			i = -1 // execQ was replaced by the new epoch's queue, if any
			continue
		}
		// Mid-epoch snapshot cadence: capture when this wave crossed a
		// SnapshotInterval boundary of committed leader rounds. After
		// the wave's execution, so the capture sees its writes — the
		// deterministic position every honest replica shares.
		n.maybeCaptureMidEpoch(it.wave.Leader.Round())
		n.maybeGC()
		n.flushOutbox()
		n.drainInbox()
	}
	// Every entry was consumed (and zeroed above); keep the backing
	// array so steady-state commits stop re-growing the queue.
	n.execQ = n.execQ[:0]
	n.nm.execQueueDepth.Set(0)
}

// executeWave applies one commit wave: validated single-shard preplay
// results first (rules G1/P2), then consensus-ordered cross-shard
// transactions (OE model), all deterministically.
func (n *Node) executeWave(w tusk.CommitWave, committedAt time.Time) {
	now := time.Now()
	// a = vertices in the wave.
	n.trace(metrics.EvCommit, w.Leader.Round(), uint64(len(w.Vertices)), 0)
	type crossItem struct {
		tx       *types.Transaction
		round    types.Round
		proposer types.ReplicaID
	}
	var crossTxs []crossItem
	// inWave dedups cross-shard transactions included by more than one
	// block of this wave (client retransmission to a rotated proposer,
	// or a fast-forward re-proposal racing the abandoned block): the
	// applied filter below only catches duplicates across waves.
	inWave := make(map[types.Digest]bool)
	n.commitCtx = CommitEntry{Epoch: n.epoch, Wave: w.Leader.Round()}
	for _, v := range w.Vertices {
		b := v.Block
		// Per-stage breakdown: every committed block with both local
		// stamps contributes a propose→certify and a certify→commit
		// sample (stamps are missing only for blocks that predate this
		// replica's tracking — a snapshot install's re-derived history).
		if !b.Stamps.Seen.IsZero() && !b.Stamps.Certified.IsZero() {
			n.nm.stageProposeCertify.Observe(b.Stamps.Certified.Sub(b.Stamps.Seen))
			n.nm.stageCertifyCommit.Observe(committedAt.Sub(b.Stamps.Certified))
		}
		switch b.Kind {
		case types.ShiftBlock:
			n.committedShift[b.Proposer] = true
			continue
		case types.SkipBlock:
			continue
		}
		if n.cfg.Mode == ModeSerial {
			n.executeSerial(b, now)
			continue
		}
		// Single-shard preplay results: validate in parallel against
		// the declared read/write sets, then apply (paper §4). The
		// block must carry only its own shard's transactions; anything
		// else is a Byzantine proposer and the block is discarded.
		if len(b.SingleTxs) > 0 {
			if !n.validateAndApply(b, now) {
				n.nm.validationFailures.Add(1)
				// A proposer whose own block was discarded (typically a
				// cross-shard transaction raced its preplay — the hazard
				// rules P3/P4 bound but cannot fully eliminate under
				// eager preplay) rolls back its speculative overlay and
				// requeues the transactions for a fresh preplay.
				if b.Proposer == n.cfg.ID {
					n.dropOwnBlock(b.Round)
					// The overlay rolled back: values the next preplay
					// should see no longer match the carried tips.
					n.preplayer.invalidate()
					for _, tx := range b.SingleTxs {
						if !n.dedup.Resolved(tx) {
							n.txQueue = append(n.txQueue, tx)
						}
					}
				}
			}
		}
		for _, tx := range b.CrossTxs {
			id := tx.ID()
			if n.dedup.Resolved(tx) || inWave[id] {
				// Duplicate inclusion (client retransmission races):
				// executed once already; make sure it cannot wedge the
				// preplay-recovery tracker.
				delete(n.pendingCross, id)
				continue
			}
			inWave[id] = true
			crossTxs = append(crossTxs, crossItem{tx: tx, round: b.Round, proposer: b.Proposer})
		}
	}
	// Cross-shard transactions execute after the wave's single-shard
	// results (rule G1), in consensus order, parallelized over
	// disjoint shard sets (§5.2); crossTxs is always empty in
	// ModeSerial (serial blocks short-circuit above). Re-filter
	// against applied first: a promoted copy collected from an early
	// vertex may have committed through a single-shard block of a
	// later vertex in this same wave, and executing it again would
	// poison the accumulated overlay that downstream cross
	// transactions read.
	live := crossTxs[:0]
	for _, it := range crossTxs {
		if !n.dedup.Resolved(it.tx) {
			live = append(live, it)
		} else {
			delete(n.pendingCross, it.tx.ID())
		}
	}
	crossTxs = live
	if len(crossTxs) > 0 {
		txs := make([]*types.Transaction, len(crossTxs))
		for i, it := range crossTxs {
			txs[i] = it.tx
		}
		outs := validate.ExecuteCrossOrdered(n.cfg.Registry, n.baseReader, txs, n.cfg.Validators)
		for i, out := range outs {
			id := out.Tx.ID()
			delete(n.pendingCross, id)
			if out.Err != nil {
				// Deterministic failure: every replica drops it (a
				// deterministic mark, so dedup state stays identical;
				// on a durable backend the mark is journaled so a
				// restart rebuilds the same dedup evolution).
				note := n.newMarkNote()
				note.fail(out.Tx)
				n.noteOnly(note.bytes())
				n.dedup.Mark(out.Tx)
				continue
			}
			note := n.newMarkNote()
			note.commit(out.Tx)
			n.applyCommit(out.Writes, note.bytes())
			n.commitCtx.Round = crossTxs[i].round
			n.commitCtx.Proposer = crossTxs[i].proposer
			n.commitCtx.Cross = true
			n.markCommitted(out.Tx, now)
			n.nm.committedCross.Add(1)
		}
		// Cross-shard writes land outside the preplay stream; the next
		// preplay must re-read through the base.
		n.preplayer.invalidate()
	}
	// The wave's commit→execute leg: queue wait plus this execution.
	n.nm.stageCommitExecute.Observe(time.Since(committedAt))
	if n.cfg.OnCommitWave != nil {
		n.cfg.OnCommitWave(n.epoch, w.Leader.Round(), now)
	}
}

// baseRead reads committed state.
func (n *Node) baseRead(k types.Key) types.Value {
	v, _ := n.cfg.Store.Get(k)
	return v
}

// validateAndApply checks a block's preplay results and applies the
// delta. Returns false if the block is invalid (it is then discarded
// wholesale, as in §4).
func (n *Node) validateAndApply(b *types.Block, now time.Time) bool {
	inBlock := make(map[types.Digest]bool, len(b.SingleTxs))
	for _, tx := range b.SingleTxs {
		if len(tx.Shards) != 1 || tx.Shards[0] != b.Shard {
			return false // foreign-shard transaction smuggled in
		}
		id := tx.ID()
		if n.dedup.Resolved(tx) || inBlock[id] {
			// Duplicate commit attempt (resubmission raced a
			// reconfiguration, or a duplicate smuggled into one
			// block): the whole block is stale.
			return false
		}
		inBlock[id] = true
	}
	res, err := validate.ValidateBatch(n.cfg.Registry, n.baseReader, b.SingleTxs, b.Results, n.cfg.Validators)
	if err != nil {
		return false
	}
	note := n.newMarkNote()
	for _, tx := range b.SingleTxs {
		note.commit(tx)
	}
	n.applyCommit(res.Writes, note.bytes())
	n.commitCtx.Round = b.Round
	n.commitCtx.Proposer = b.Proposer
	n.commitCtx.Cross = false
	for _, tx := range b.SingleTxs {
		n.markCommitted(tx, now)
	}
	n.nm.committedSingle.Add(uint64(len(b.SingleTxs)))
	// If this was our own block, its preplay writes are now durable:
	// shrink the speculative overlay to the remaining pending blocks.
	// The move from overlay to store is value-identical through the
	// speculative reader, so the preplayer's carried tips stay valid.
	// A foreign block's writes, by contrast, change state the carry
	// never saw.
	if b.Proposer == n.cfg.ID {
		n.dropOwnBlock(b.Round)
		// Adaptive batch feedback: this block's propose→commit latency
		// against the target. Over-target commits shrink the batch back
		// toward the floor (see batchController).
		lat := now.Sub(time.Unix(0, b.ProposedUnixNano))
		n.batch.ObserveLatency(lat > n.cfg.BatchLatencyTarget)
	} else {
		n.preplayer.invalidate()
	}
	return true
}

// executeSerial is the Tusk baseline: run the block's transactions
// one by one in commit order (no preplay, no parallel validation).
func (n *Node) executeSerial(b *types.Block, now time.Time) {
	all := make([]*types.Transaction, 0, len(b.SingleTxs)+len(b.CrossTxs))
	all = append(all, b.SingleTxs...)
	all = append(all, b.CrossTxs...)
	n.commitCtx.Round = b.Round
	n.commitCtx.Proposer = b.Proposer
	for _, tx := range all {
		if n.dedup.Resolved(tx) {
			continue
		}
		n.commitCtx.Cross = tx.IsCross()
		outs := validate.ExecuteCrossOrdered(n.cfg.Registry, n.baseReader, []*types.Transaction{tx}, 1)
		note := n.newMarkNote()
		if outs[0].Err != nil {
			note.fail(tx)
			n.noteOnly(note.bytes())
			n.dedup.Mark(tx)
			continue
		}
		note.commit(tx)
		n.applyCommit(outs[0].Writes, note.bytes())
		n.markCommitted(tx, now)
	}
}

func (n *Node) markCommitted(tx *types.Transaction, now time.Time) {
	id := tx.ID()
	n.dedup.Mark(tx)
	n.recordCommit(id)
	delete(n.seen, id)
	n.notifyCommitted(tx)
	n.nm.committedTxs.Add(1)
	// End-to-end leg: client submission to this replica's ack.
	if tx.SubmitUnixNano > 0 {
		n.nm.stageSubmitAck.Observe(now.Sub(time.Unix(0, tx.SubmitUnixNano)))
	}
	if n.cfg.OnCommitTx != nil {
		n.cfg.OnCommitTx(tx, now)
	}
}

// dropOwnBlock removes a committed (or abandoned) own block from the
// pending list and rebuilds the speculative overlay from what remains.
func (n *Node) dropOwnBlock(round types.Round) {
	keep := n.ownBlocks[:0]
	for _, ob := range n.ownBlocks {
		if ob.round != round {
			keep = append(keep, ob)
		}
	}
	n.ownBlocks = keep
	n.spec = make(map[types.Key]types.Value, len(n.spec))
	for _, ob := range n.ownBlocks {
		for _, w := range ob.writes {
			n.spec[w.Key] = w.Value
		}
	}
}

// reconfigure performs the non-blocking DAG transition (§6): a new
// DAG starts at the deterministic ending round every honest replica
// derives from the same committed Shift quorum; shard assignments
// rotate; uncommitted transactions are dropped for clients to
// resubmit. The outgoing state is first captured as the transition's
// snapshot — the committed sequence position is deterministic here, so
// every honest replica records a bit-identical snapshot, which is what
// lets a replica stranded across this transition authenticate one
// later with f+1 matching digests (see snapshot.go).
//
// The transition is itself a commit-path event: the idle-session
// sweep (Config.SessionIdleEpochs) runs here, before the capture, so
// the snapshot carries the swept session set — and on a durable
// backend the transition is journaled so a restarted replica resumes
// in this epoch with the same sweep applied.
func (n *Node) reconfigure() {
	n.noteOnly(transitionNote(n.epoch + 1))
	n.dedup.ExpireIdle(n.cfg.SessionIdleEpochs)
	n.captureSnapshot(n.epoch + 1)
	n.nm.reconfigurations.Add(1)
	// a = the epoch being entered.
	n.trace(metrics.EvReconfig, 0, uint64(n.epoch+1), 0)
	n.transition(n.epoch+1, true)
}

// transition moves this replica into newEpoch, discarding the current
// DAG and unclaiming uncommitted work. Shared by the in-band Shift
// transition (reconfigure) and the cross-epoch snapshot jump
// (installSnapshot); only the former reports through OnReconfig, so
// observers counting committee reconfigurations never conflate them
// with one replica's catch-up jumps (those surface as
// Stats.EpochJumps).
func (n *Node) transition(newEpoch types.Epoch, reconfig bool) {
	dropped := uint64(len(n.txQueue))
	// Unclaim every uncommitted transaction — queued or already
	// proposed into the dying DAG — so client resubmissions are
	// accepted by whichever proposer now owns the shard. Committed
	// IDs stay deduplicated via n.dedup. Both the queue and this
	// node's uncommitted in-flight blocks get a negative-ack — the
	// OnRejectTx callback for in-process clients and a wire MsgTxNack
	// for gateway clients: their transactions die with the epoch, and
	// without the ack each would stall its client until the retry
	// timer (the ROADMAP's discarded-block tail latency).
	rejected := n.txQueue
	for _, d := range n.ownPending {
		if b, ok := n.pendingBlocks[d]; ok {
			rejected = append(rejected, b.SingleTxs...)
			rejected = append(rejected, b.CrossTxs...)
		}
	}
	n.seen = make(map[types.Digest]time.Time)
	n.txQueue = nil
	n.resetEpochState(newEpoch)
	seen := make(map[types.Digest]bool, len(rejected))
	for _, tx := range rejected {
		id := tx.ID()
		if n.dedup.Resolved(tx) || seen[id] {
			continue
		}
		seen[id] = true
		n.nackPending(tx, gateway.NackEpochEnded)
		if n.cfg.OnRejectTx != nil {
			n.cfg.OnRejectTx(tx)
		}
	}

	n.nm.droppedAtReconfig.Add(dropped)
	n.nm.epoch.Set(int64(n.epoch))
	if reconfig && n.cfg.OnReconfig != nil {
		n.cfg.OnReconfig(n.epoch, time.Now())
	}
	// Replay messages that arrived early for the new epoch.
	future := n.futureMsgs
	n.futureMsgs = nil
	n.propose()
	for _, m := range future {
		n.handle(m)
	}
}
