package node

import (
	"encoding/binary"
	"fmt"

	"thunderbolt/internal/transport"
	"thunderbolt/internal/types"
)

// Protocol message types carried over the transport.
const (
	// MsgBlock broadcasts a proposed block (also used as the response
	// to MsgBlockReq).
	MsgBlock transport.MsgType = iota + 1
	// MsgVote carries one replica's signature over a block digest back
	// to its proposer.
	MsgVote
	// MsgCert broadcasts an assembled 2f+1 certificate.
	MsgCert
	// MsgBlockReq asks a peer for the block with a given digest (sent
	// when a certificate arrives before its block).
	MsgBlockReq
	// MsgTx submits a client transaction to a shard proposer.
	MsgTx
	// MsgCertReq asks a peer for the certified vertex whose
	// certificate digest is given: the reply is the block (MsgBlock)
	// followed by its certificate (MsgCert). Sent while recovering
	// missing causal history, e.g. after a crash+restart or a healed
	// partition (parent references are certificate digests).
	MsgCertReq
	// MsgRoundReq asks a peer for every certified vertex it holds at
	// one round of the current epoch (block + certificate each).
	// Broadcast by a node whose round advancement has stalled: lost
	// certificate broadcasts otherwise leave no trace to re-request —
	// no orphan references them — and can wedge the whole committee.
	MsgRoundReq
	// MsgSnapshotReq asks peers for their latest epoch-transition
	// state snapshot. Broadcast by a replica whose catch-up requests
	// go unanswered because it is beyond in-epoch recovery: peers have
	// moved to a later epoch (f+1 of them present future-epoch
	// evidence) and discarded the DAG the replica is trying to sync.
	MsgSnapshotReq
	// MsgSnapshot carries one replica's latest epoch-transition
	// snapshot (types.Snapshot), wrapped in a snapshotMsg that signs
	// the snapshot's content digest. Sent in response to
	// MsgSnapshotReq, and proactively in response to a MsgRoundReq
	// from a stale epoch — the passive detection path: a stranded
	// replica's round pulls advertise its old epoch, and the answer
	// that can actually help it is a snapshot. The receiver installs
	// only after f+1 distinct verified signers vouch for one digest.
	// Reserved for ledgers below the monolithic threshold; larger
	// states travel as MsgSnapManifest plus MsgSnapChunk streams.
	MsgSnapshot
	// MsgSnapManifestReq asks a peer for its latest snapshot in
	// whichever form fits (monolithic MsgSnapshot or MsgSnapManifest).
	// It carries the requester's epoch and committed leader round so
	// the server only answers when its snapshot would actually move the
	// requester forward — which covers both cross-epoch stranding and
	// the mid-epoch case (down past the GC horizon inside one epoch).
	MsgSnapManifestReq
	// MsgSnapManifest carries a snapshot manifest: the full snapshot
	// minus the raw ledger records (header, chunk digest list, dedup
	// state), wrapped in the same signed snapshotMsg envelope as
	// MsgSnapshot. The snapshot digest covers the manifest, so the
	// f+1-signer install quorum authenticates every chunk digest, and
	// each subsequently fetched chunk verifies independently.
	MsgSnapManifest
	// MsgSnapChunkReq asks a peer for one chunk of the snapshot with
	// the given digest. Requesters spread chunk pulls across every
	// verified signer of the manifest and rotate on timeout, so a
	// crashed or withholding server costs one re-request, not the
	// rescue.
	MsgSnapChunkReq
	// MsgSnapChunk answers MsgSnapChunkReq with the encoded chunk
	// payload. Unsigned by design: the payload is verified against the
	// f+1-authenticated manifest's chunk digest, so a corrupt chunk is
	// detected and re-requested from another server regardless of who
	// sent it.
	MsgSnapChunk
	// MsgBatch is a coalesced multi-message frame: every protocol
	// message one node queued for one peer during a single event-loop
	// pass, concatenated into one envelope over the existing framing.
	// A round's worth of traffic (block + certificate + recovery
	// replies) costs O(1) sends per peer instead of O(messages); the
	// receiver unpacks and dispatches each sub-message in order.
	MsgBatch
)

// appendBatched appends one [mt][uvarint len][payload] entry to a
// MsgBatch frame under construction.
func appendBatched(frame []byte, mt transport.MsgType, payload []byte) []byte {
	frame = append(frame, byte(mt))
	var tmp [10]byte
	n := binary.PutUvarint(tmp[:], uint64(len(payload)))
	frame = append(frame, tmp[:n]...)
	return append(frame, payload...)
}

// forEachBatched iterates a MsgBatch frame, calling fn for each
// sub-message. Sub-payloads alias the frame (the receiver owns it).
// Returns an error on a malformed frame; messages before the
// malformation have already been delivered to fn.
func forEachBatched(frame []byte, fn func(mt transport.MsgType, payload []byte)) error {
	for len(frame) > 0 {
		mt := transport.MsgType(frame[0])
		frame = frame[1:]
		l, n := binary.Uvarint(frame)
		if n <= 0 || uint64(len(frame)-n) < l {
			return fmt.Errorf("node: malformed batch frame")
		}
		fn(mt, frame[n:n+int(l)])
		frame = frame[n+int(l):]
	}
	return nil
}

// vote is the payload of MsgVote.
type vote struct {
	Epoch       types.Epoch
	Round       types.Round
	Proposer    types.ReplicaID
	BlockDigest types.Digest
	Sig         []byte
}

func (v *vote) marshal() []byte {
	e := types.GetEncoder()
	defer types.PutEncoder(e)
	e.U64(uint64(v.Epoch))
	e.U64(uint64(v.Round))
	e.U32(uint32(v.Proposer))
	e.Digest(v.BlockDigest)
	e.Bytes(v.Sig)
	return e.Detach()
}

// unmarshal decodes a vote. The signature aliases b: transport
// payloads are freshly allocated per delivery and handed over, so the
// shared decode saves the per-vote copy on the hottest small-message
// path.
func (v *vote) unmarshal(b []byte) error {
	d := types.NewSharedDecoder(b)
	v.Epoch = types.Epoch(d.U64())
	v.Round = types.Round(d.U64())
	v.Proposer = types.ReplicaID(d.U32())
	v.BlockDigest = d.Digest()
	v.Sig = d.Bytes()
	return d.Finish()
}

// blockReq is the payload of MsgBlockReq.
type blockReq struct {
	BlockDigest types.Digest
}

func (r *blockReq) marshal() []byte {
	e := types.NewEncoder()
	e.Digest(r.BlockDigest)
	return e.Sum()
}

func (r *blockReq) unmarshal(b []byte) error {
	d := types.NewDecoder(b)
	r.BlockDigest = d.Digest()
	return d.Finish()
}

// certReq is the payload of MsgCertReq.
type certReq struct {
	CertDigest types.Digest
}

func (r *certReq) marshal() []byte {
	e := types.NewEncoder()
	e.Digest(r.CertDigest)
	return e.Sum()
}

func (r *certReq) unmarshal(b []byte) error {
	d := types.NewDecoder(b)
	r.CertDigest = d.Digest()
	return d.Finish()
}

// roundReq is the payload of MsgRoundReq.
type roundReq struct {
	Epoch types.Epoch
	Round types.Round
}

func (r *roundReq) marshal() []byte {
	e := types.NewEncoder()
	e.U64(uint64(r.Epoch))
	e.U64(uint64(r.Round))
	return e.Sum()
}

func (r *roundReq) unmarshal(b []byte) error {
	d := types.NewDecoder(b)
	r.Epoch = types.Epoch(d.U64())
	r.Round = types.Round(d.U64())
	return d.Finish()
}

// snapshotReq is the payload of MsgSnapshotReq: the requester's
// current epoch, so peers only answer with snapshots that would
// actually move it forward.
type snapshotReq struct {
	Epoch types.Epoch
}

func (r *snapshotReq) marshal() []byte {
	e := types.NewEncoder()
	e.U64(uint64(r.Epoch))
	return e.Sum()
}

func (r *snapshotReq) unmarshal(b []byte) error {
	d := types.NewDecoder(b)
	r.Epoch = types.Epoch(d.U64())
	return d.Finish()
}

// snapManifestReq is the payload of MsgSnapManifestReq: the
// requester's epoch and committed leader round. A server answers only
// when its snapshot sits in a later epoch, or far enough ahead of
// Round in the same epoch that in-epoch catch-up cannot cover the gap.
type snapManifestReq struct {
	Epoch types.Epoch
	Round types.Round
}

func (r *snapManifestReq) marshal() []byte {
	e := types.NewEncoder()
	e.U64(uint64(r.Epoch))
	e.U64(uint64(r.Round))
	return e.Sum()
}

func (r *snapManifestReq) unmarshal(b []byte) error {
	d := types.NewDecoder(b)
	r.Epoch = types.Epoch(d.U64())
	r.Round = types.Round(d.U64())
	return d.Finish()
}

// snapChunkReq is the payload of MsgSnapChunkReq: which chunk of
// which snapshot (by content digest).
type snapChunkReq struct {
	Snap  types.Digest
	Index uint32
}

func (r *snapChunkReq) marshal() []byte {
	e := types.NewEncoder()
	e.Digest(r.Snap)
	e.U32(r.Index)
	return e.Sum()
}

func (r *snapChunkReq) unmarshal(b []byte) error {
	d := types.NewDecoder(b)
	r.Snap = d.Digest()
	r.Index = d.U32()
	return d.Finish()
}

// snapChunk is the payload of MsgSnapChunk: one encoded chunk of the
// identified snapshot.
type snapChunk struct {
	Snap    types.Digest
	Index   uint32
	Payload []byte
}

func (c *snapChunk) marshal() []byte {
	e := types.GetEncoder()
	defer types.PutEncoder(e)
	e.Digest(c.Snap)
	e.U32(c.Index)
	e.Bytes(c.Payload)
	return e.Detach()
}

// unmarshal decodes a chunk message. Payload aliases b (owned
// transport payload), so the fetch path keeps the verified bytes
// without re-copying them.
func (c *snapChunk) unmarshal(b []byte) error {
	d := types.NewSharedDecoder(b)
	c.Snap = d.Digest()
	c.Index = d.U32()
	c.Payload = d.Bytes()
	return d.Finish()
}

// snapshotMsg is the payload of MsgSnapshot and MsgSnapManifest: the
// serving replica's identity, its signature over the snapshot's
// content digest, and the encoded snapshot (full body or manifest
// form — the digest covers the manifest, so both forms verify against
// the same signature). Transport sender IDs are not authenticated (a TCP
// frame carries whatever ID the sender claims), so the install quorum
// counts signers it has cryptographically verified — like votes and
// certificates, snapshot authenticity comes from the signature
// scheme, never from the transport.
type snapshotMsg struct {
	Signer types.ReplicaID
	Sig    []byte
	Snap   []byte
}

func (m *snapshotMsg) marshal() []byte {
	e := types.GetEncoder()
	defer types.PutEncoder(e)
	e.U32(uint32(m.Signer))
	e.Bytes(m.Sig)
	e.Bytes(m.Snap)
	return e.Detach()
}

// unmarshal decodes a snapshot message. Sig and Snap alias b (owned
// transport payload), which avoids re-copying a full-state snapshot
// on the receive path.
func (m *snapshotMsg) unmarshal(b []byte) error {
	d := types.NewSharedDecoder(b)
	m.Signer = types.ReplicaID(d.U32())
	m.Sig = d.Bytes()
	m.Snap = d.Bytes()
	return d.Finish()
}

// inboundMsg is one transport delivery queued for the event loop.
type inboundMsg struct {
	from    types.ReplicaID
	mt      transport.MsgType
	payload []byte
}

func (m inboundMsg) String() string {
	return fmt.Sprintf("msg{from=%d type=%d len=%d}", m.from, m.mt, len(m.payload))
}
