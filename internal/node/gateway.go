package node

import (
	"time"

	"thunderbolt/internal/gateway"
	"thunderbolt/internal/types"
)

// Client gateway: the node side of the sessioned submission protocol
// (internal/gateway). A remote client submits with MsgTxSubmit and is
// always answered — accepted, already-resolved (the duplicate answer
// references the original resolution), or nacked with a re-route
// hint. Commits and drops are pushed back as MsgTxCommitted and
// MsgTxNack, which closes the ROADMAP gap where negative-acks reached
// only in-process callers through Config.OnRejectTx.

// clientSub records which wire client is waiting on a pending
// transaction, so commit and reject notifications can be pushed.
// Event-loop owned; entries are dropped on commit, rejection, or TTL
// expiry (the client's own retransmission re-registers interest).
type clientSub struct {
	from types.ReplicaID
	at   time.Time
}

// clientSubTTL bounds how long a wire submitter registration outlives
// its transaction's last sighting. Comfortably above the client's
// retransmit cadence so a live waiter is never dropped between
// retransmissions.
const clientSubTTL = 30 * time.Second

// handleTxSubmit answers one sessioned submission. Admission consults
// (but never mutates) the dedup state: dedup evolves only on the
// deterministic commit path, while admission is a per-replica race.
func (n *Node) handleTxSubmit(from types.ReplicaID, tx *types.Transaction) {
	id := tx.ID()
	switch n.dedup.Admit(tx) {
	case gateway.AdmitResolved:
		// Duplicate of a resolved transaction: ack referencing the
		// original resolution, never re-enqueue.
		n.sendAck(from, &gateway.Ack{
			TxID: id, Client: tx.Client, Nonce: tx.Nonce,
			Status: gateway.AckResolved, Epoch: n.epoch, Proposer: n.cfg.ID,
		})
		return
	case gateway.AdmitFuture:
		// More than a window ahead of the client's floor: admitting it
		// would let one client grow server state past the bound.
		n.sendNack(from, &gateway.Nack{
			TxID: id, Client: tx.Client, Nonce: tx.Nonce,
			Reason: gateway.NackOutOfWindow, Epoch: n.epoch, Proposer: n.cfg.ID,
		})
		return
	}
	// Routing: single-shard transactions belong to the proposer
	// serving their shard this epoch; anything else is answered with
	// the replica that does serve it. Cross-shard transactions enter
	// the DAG through any live proposer.
	if !tx.IsCross() && (len(tx.Shards) != 1 || tx.Shards[0] != n.myShard()) {
		shard := types.ShardID(0)
		if len(tx.Shards) > 0 {
			shard = tx.Shards[0]
		}
		n.sendNack(from, &gateway.Nack{
			TxID: id, Client: tx.Client, Nonce: tx.Nonce,
			Reason: gateway.NackMisroute, Epoch: n.epoch,
			Proposer: ProposerOfShard(shard, n.epoch, n.n),
		})
		return
	}
	n.txClients[id] = clientSub{from: from, at: time.Now()}
	n.enqueueTx(tx)
	n.sendAck(from, &gateway.Ack{
		TxID: id, Client: tx.Client, Nonce: tx.Nonce,
		Status: gateway.AckAccepted, Epoch: n.epoch, Proposer: n.cfg.ID,
	})
}

func (n *Node) sendAck(to types.ReplicaID, a *gateway.Ack) {
	n.sendNow(to, gateway.MsgTxAck, a.Marshal())
}

func (n *Node) sendNack(to types.ReplicaID, nk *gateway.Nack) {
	n.sendNow(to, gateway.MsgTxNack, nk.Marshal())
}

// notifyCommitted pushes MsgTxCommitted to the wire client waiting on
// tx, if any. Called from markCommitted on the event loop.
func (n *Node) notifyCommitted(tx *types.Transaction) {
	id := tx.ID()
	sub, ok := n.txClients[id]
	if !ok {
		return
	}
	delete(n.txClients, id)
	n.sendNow(sub.from, gateway.MsgTxCommitted, (&gateway.Committed{
		TxID: id, Client: tx.Client, Nonce: tx.Nonce, Epoch: n.epoch,
	}).Marshal())
}

// nackPending pushes MsgTxNack for a transaction this proposer is
// permanently dropping (misroute after a rotation, or unclaimed at a
// reconfiguration), with the shard's current owner as the re-route
// hint — the wire twin of Config.OnRejectTx.
func (n *Node) nackPending(tx *types.Transaction, reason gateway.NackReason) {
	id := tx.ID()
	sub, ok := n.txClients[id]
	if !ok {
		return
	}
	delete(n.txClients, id)
	shard := types.ShardID(0)
	if len(tx.Shards) > 0 {
		shard = tx.Shards[0]
	}
	n.sendNow(sub.from, gateway.MsgTxNack, (&gateway.Nack{
		TxID: id, Client: tx.Client, Nonce: tx.Nonce,
		Reason: reason, Epoch: n.epoch,
		Proposer: ProposerOfShard(shard, n.epoch, n.n),
	}).Marshal())
}

// purgeClientSubs drops stale wire-submitter registrations (clients
// that stopped retransmitting). Called from housekeeping.
func (n *Node) purgeClientSubs() {
	for id, sub := range n.txClients {
		if time.Since(sub.at) >= clientSubTTL {
			delete(n.txClients, id)
		}
	}
}
