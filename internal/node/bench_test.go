package node

import (
	"fmt"
	"testing"
	"time"

	"thunderbolt/internal/contract"
	"thunderbolt/internal/dag/dagtest"
	"thunderbolt/internal/storage"
	"thunderbolt/internal/transport"
	"thunderbolt/internal/types"
)

// nullTransport swallows all traffic; benchmarks drive node internals
// directly on the test goroutine, no event loop running.
type nullTransport struct{ id types.ReplicaID }

func (t *nullTransport) Self() types.ReplicaID                                 { return t.id }
func (t *nullTransport) Send(types.ReplicaID, transport.MsgType, []byte) error { return nil }
func (t *nullTransport) Broadcast(transport.MsgType, []byte) error             { return nil }
func (t *nullTransport) SetHandler(transport.Handler)                          {}
func (t *nullTransport) Close() error                                          { return nil }

// benchNode builds an unstarted node whose DAG holds `rounds` fully
// certified rounds and whose pending-block state holds every block of
// those rounds (as after live dissemination: each broadcast block is
// retained when its vertex lands) — the population fastForward works
// against.
func benchNode(b *testing.B, committee *dagtest.Committee, rounds int) *Node {
	b.Helper()
	reg := contract.NewRegistry()
	n, err := New(Config{
		ID: 0, N: committee.N,
		Transport: &nullTransport{id: 0},
		Signer:    committee.Signers[0], Verifier: committee.Ver,
		Registry: reg, Store: storage.New(),
		MinRoundInterval: time.Hour, // benchmarks drive proposals explicitly
	})
	if err != nil {
		b.Fatal(err)
	}
	bld := dagtest.NewBuilder(committee, 0)
	for r := 0; r < rounds; r++ {
		txSeq := r
		// Peer blocks carry one foreign-shard transaction each; own
		// blocks stay empty so the requeue scan's map-iteration cost —
		// the code under measurement — is not mixed with preplay cost.
		vs := bld.NextRound(nil, func(blk *types.Block) {
			if blk.Proposer == 0 {
				return
			}
			blk.SingleTxs = []*types.Transaction{{
				Client: uint64(blk.Proposer) + 1, Nonce: uint64(txSeq),
				Kind: types.SingleShard, Shards: []types.ShardID{types.ShardID(blk.Proposer)},
				Contract: "noop",
			}}
		})
		for _, v := range vs {
			if !n.insertVertex(v) {
				b.Fatalf("vertex rejected at round %d", v.Round())
			}
			n.trackPendingBlock(v.Block)
			if v.Proposer() == 0 {
				n.ownPending[v.Round()] = v.Block.Digest()
			}
		}
	}
	return n
}

// BenchmarkFastForward measures one frontier rejoin against a DAG of
// `rounds` certified rounds (committee 4, so pending-block count is
// 4×rounds) while the node's own uncommitted proposal window stays
// fixed at 16 blocks, as committed-wave GC guarantees in steady
// state. Run at two sizes to expose the cost curve's shape: the
// requeue scan must not grow with total pending state (it used to be
// a full scan over every pending block).
func BenchmarkFastForward(b *testing.B) {
	const ownWindow = 16
	committee := dagtest.NewCommittee(4)
	for _, rounds := range []int{250, 2000} {
		b.Run(fmt.Sprintf("rounds=%d", rounds), func(b *testing.B) {
			n := benchNode(b, committee, rounds)
			hi := n.dagStore.HighestRound()
			for r := range n.ownPending {
				if r+ownWindow <= hi {
					delete(n.ownPending, r)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.txQueue = nil
				n.nextRound = 2 // far behind the frontier
				n.fastForward(hi)
				// Unwind the re-proposal and restore the own-block
				// index so pending state stays at the configured size
				// across iterations.
				b.StopTimer()
				if lb := n.lastBlock; lb != nil {
					d := lb.Digest()
					delete(n.pendingBlocks, d)
					delete(n.pendingRounds, lb.Round)
					delete(n.collectors, d)
					delete(n.collectorRound, lb.Round)
					delete(n.ownPending, lb.Round)
					n.lastBlock = nil
				}
				for r := hi - ownWindow + 1; r <= hi; r++ {
					if v, ok := n.dagStore.Get(r, 0); ok {
						n.ownPending[r] = v.Block.Digest()
					}
				}
				b.StartTimer()
			}
		})
	}
}

// BenchmarkMaybeAdvanceIdle measures the no-op advancement check the
// pace ticker runs every millisecond on a deep DAG — it must stay
// O(1) regardless of how many rounds the epoch has accumulated.
func BenchmarkMaybeAdvanceIdle(b *testing.B) {
	committee := dagtest.NewCommittee(4)
	n := benchNode(b, committee, 2000)
	n.nextRound = n.dagStore.HighestRound() + 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.maybeAdvance()
	}
}
