package node

import (
	"testing"

	"thunderbolt/internal/contract"
	"thunderbolt/internal/crypto"
	"thunderbolt/internal/storage"
	"thunderbolt/internal/transport"
	"thunderbolt/internal/types"
	"thunderbolt/internal/workload"
)

// snapTestNodes builds n unstarted nodes over a zero-latency
// SimNetwork with identical genesis state. Methods are called directly
// (no event loop), which is safe single-threaded.
func snapTestNodes(t *testing.T, n int) ([]*Node, *transport.SimNetwork) {
	t.Helper()
	signers, verifier, err := crypto.InsecureScheme{}.Committee(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewSimNetwork(transport.SimConfig{N: n})
	t.Cleanup(net.Close)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		reg := contract.NewRegistry()
		workload.RegisterSmallBank(reg)
		st := storage.New()
		workload.InitAccounts(st, 8, 100, 100)
		nd, err := New(Config{
			ID: types.ReplicaID(i), N: n,
			Transport: net.Endpoint(types.ReplicaID(i)),
			Signer:    signers[i], Verifier: verifier,
			Registry: reg, Store: st,
			CommitLogCap: 1024,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
	}
	return nodes, net
}

// signedSnap wraps a donor's latest snapshot in the signed MsgSnapshot
// payload, exactly as serveSnapshot would.
func signedSnap(donor *Node) []byte {
	return (&snapshotMsg{
		Signer: donor.cfg.ID,
		Sig:    donor.cfg.Signer.Sign(donor.lastSnap.Digest()),
		Snap:   mustMarshal(donor.lastSnap),
	}).marshal()
}

// applyTestCommits gives a node some committed state: a store write
// plus resolved transactions, mirroring what executing a committed
// prefix does. The transactions are nonce-less, so they land in the
// snapshot's legacy digest window (sessioned state is covered by
// TestSnapshotCarriesSessions).
func applyTestCommits(n *Node, balance int64, txs ...*types.Transaction) {
	n.cfg.Store.Set(workload.CheckingKey(workload.AccountName(0)), contract.EncodeInt64(balance))
	for _, tx := range txs {
		n.dedup.Mark(tx)
	}
	n.nm.committedTxs.Add(uint64(len(txs)))
}

// legacyTx builds a nonce-less transaction with a distinct identity.
func legacyTx(tag string) *types.Transaction {
	return &types.Transaction{Kind: types.SingleShard, Shards: []types.ShardID{0},
		Contract: "t", Args: [][]byte{[]byte(tag)}}
}

func TestSnapshotCaptureDeterministic(t *testing.T) {
	nodes, _ := snapTestNodes(t, 4)
	txs := []*types.Transaction{legacyTx("t1"), legacyTx("t2")}
	for _, nd := range nodes[:2] {
		applyTestCommits(nd, 555, txs...)
		nd.captureSnapshot(1)
	}
	a, b := nodes[0].lastSnap, nodes[1].lastSnap
	if a == nil || b == nil {
		t.Fatal("capture produced no snapshot")
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("replicas with identical committed state captured different digests: %s vs %s",
			a.Digest(), b.Digest())
	}
	if a.Epoch != 1 || a.Commits != 2 || len(a.Applied) != 2 {
		t.Fatalf("unexpected snapshot header: %+v", a)
	}
}

func TestSnapshotInstallNeedsQuorum(t *testing.T) {
	nodes, _ := snapTestNodes(t, 4)
	txs := []*types.Transaction{legacyTx("t1")}
	for _, nd := range nodes[1:3] {
		applyTestCommits(nd, 777, txs...)
		nd.captureSnapshot(2)
	}
	victim := nodes[0]

	victim.handleSnapshot(1, signedSnap(nodes[1]))
	if victim.epoch != 0 {
		t.Fatal("installed from a single signer — f+1 matching digests required")
	}
	// The same signer re-sending must not inflate the count.
	victim.handleSnapshot(1, signedSnap(nodes[1]))
	if victim.epoch != 0 {
		t.Fatal("one signer counted twice toward the install quorum")
	}
	victim.handleSnapshot(2, signedSnap(nodes[2]))
	if victim.epoch != 2 {
		t.Fatalf("no epoch jump after f+1 matching snapshots (epoch %d)", victim.epoch)
	}
	if !victim.dedup.Resolved(txs[0]) {
		t.Fatal("dedup state not installed")
	}
	v, _ := victim.cfg.Store.Get(workload.CheckingKey(workload.AccountName(0)))
	got, err := contract.DecodeInt64(v)
	if err != nil || got != 777 {
		t.Fatalf("ledger not installed: %q (%v)", v, err)
	}
	start, log := victim.CommitLog()
	if start != 1 || len(log) != 0 {
		t.Fatalf("commit log not re-anchored: start %d, %d entries", start, len(log))
	}
	st := victim.Stats()
	if st.EpochJumps != 1 || st.CommittedTxs != 1 || st.Epoch != 2 {
		t.Fatalf("stats not updated: %+v", st)
	}
	// The jumper now serves the verified snapshot to later stragglers.
	if victim.lastSnap == nil || victim.lastSnap.Digest() != nodes[1].lastSnap.Digest() {
		t.Fatal("installed snapshot not retained for serving")
	}
}

func TestSnapshotInstallRejectsLyingServer(t *testing.T) {
	nodes, _ := snapTestNodes(t, 4)
	for _, nd := range nodes[1:4] {
		applyTestCommits(nd, 900)
		nd.captureSnapshot(3)
	}
	victim := nodes[0]

	// Replica 3 lies: an internally consistent snapshot with a forged
	// balance, properly signed with its own key. Its digest differs,
	// so it can never join the honest candidates' count.
	lie := *nodes[3].lastSnap
	lie.Ledger = append([]types.RWRecord(nil), lie.Ledger...)
	for i, r := range lie.Ledger {
		if r.Key == workload.CheckingKey(workload.AccountName(0)) {
			lie.Ledger[i].Value = contract.EncodeInt64(1_000_000)
		}
	}
	lieBytes, _ := lie.MarshalBinary()
	var reSigned types.Snapshot
	if err := reSigned.UnmarshalBinary(lieBytes); err != nil {
		t.Fatal(err)
	}
	forged := (&snapshotMsg{
		Signer: 3, Sig: nodes[3].cfg.Signer.Sign(reSigned.Digest()), Snap: lieBytes,
	}).marshal()

	victim.handleSnapshot(3, forged)
	victim.handleSnapshot(1, signedSnap(nodes[1]))
	if victim.epoch != 0 {
		t.Fatal("installed with one honest and one lying vote")
	}
	// Impersonation: without replica 1's key, a second copy of the lie
	// claiming to be from replica 1 must be rejected — otherwise one
	// attacker could forge the whole f+1 quorum over an
	// unauthenticated transport.
	impersonated := (&snapshotMsg{
		Signer: 1, Sig: nodes[3].cfg.Signer.Sign(reSigned.Digest()), Snap: lieBytes,
	}).marshal()
	victim.handleSnapshot(1, impersonated)
	if victim.epoch != 0 {
		t.Fatal("impersonated signer forged the install quorum")
	}
	victim.handleSnapshot(2, signedSnap(nodes[2]))
	if victim.epoch != 3 {
		t.Fatalf("honest quorum did not install (epoch %d)", victim.epoch)
	}
	v, _ := victim.cfg.Store.Get(workload.CheckingKey(workload.AccountName(0)))
	if got, _ := contract.DecodeInt64(v); got != 900 {
		t.Fatalf("lying server's state installed: balance %d", got)
	}
}

func TestSnapshotStaleOrMismatchedIgnored(t *testing.T) {
	nodes, _ := snapTestNodes(t, 4)
	donor := nodes[1]
	applyTestCommits(donor, 444)
	donor.captureSnapshot(1)

	victim := nodes[0]
	victim.epoch = 5 // pretend we are already past the snapshot
	victim.handleSnapshot(1, signedSnap(donor))
	if len(victim.snapFrom) != 0 {
		t.Fatal("stale snapshot retained as a candidate")
	}

	victim.epoch = 0
	bad := *donor.lastSnap
	bad.N = 7 // committee-size mismatch
	badBytes, _ := bad.MarshalBinary()
	var decoded types.Snapshot
	if err := decoded.UnmarshalBinary(badBytes); err != nil {
		t.Fatal(err)
	}
	payload := (&snapshotMsg{
		Signer: 1, Sig: donor.cfg.Signer.Sign(decoded.Digest()), Snap: badBytes,
	}).marshal()
	victim.handleSnapshot(1, payload)
	if len(victim.snapFrom) != 0 {
		t.Fatal("mismatched committee size retained as a candidate")
	}
}
