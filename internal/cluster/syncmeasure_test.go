package cluster

import (
	"os"
	"testing"
	"time"

	"thunderbolt/internal/transport"
	"thunderbolt/internal/types"
	"thunderbolt/internal/workload"
)

// TestMeasureRecoverySyncCadence is the measurement run behind the
// RecoverySyncRounds default (see README "Performance"): under the
// WAN latency model, crash one replica long enough to open a deep
// round gap, restart it, and time full reconvergence for several
// per-tick round-pull batch sizes. Skipped unless MEASURE_SYNC=1 —
// it is an experiment, not an invariant.
func TestMeasureRecoverySyncCadence(t *testing.T) {
	if os.Getenv("MEASURE_SYNC") != "1" {
		t.Skip("measurement run; set MEASURE_SYNC=1")
	}
	for _, batch := range []int{16, 64, 256, 1024} {
		var total time.Duration
		const trials = 2
		for trial := 0; trial < trials; trial++ {
			c, err := New(Config{
				N: 4, Latency: transport.WANModel(),
				Accounts: 32, BatchSize: 32, Executors: 2, Validators: 2,
				RecoverySyncRounds: batch,
				Seed:               int64(100*batch + trial),
			})
			if err != nil {
				t.Fatal(err)
			}
			c.Start()
			load := make(chan struct{})
			go func() {
				defer close(load)
				c.RunLoad(LoadConfig{
					Duration: 8 * time.Second, Clients: 4,
					Workload:   workload.Config{Theta: 0.7, ReadRatio: 0.5, Conserving: true},
					RetryEvery: time.Second, Timeout: 60 * time.Second,
				})
			}()
			time.Sleep(1 * time.Second)
			c.Network().Crash(types.ReplicaID(3))
			time.Sleep(6 * time.Second)
			gap := c.Node(0).Stats().Round - c.Node(3).Stats().Round
			c.Network().Restart(types.ReplicaID(3))
			start := time.Now()
			if err := c.WaitConverged(60 * time.Second); err != nil {
				t.Fatalf("batch=%d: no reconvergence: %v", batch, err)
			}
			dt := time.Since(start)
			total += dt
			t.Logf("batch=%4d trial=%d gap≈%d rounds reconverge=%s", batch, trial, gap, dt.Round(time.Millisecond))
			<-load
			c.Stop()
		}
		t.Logf("batch=%4d mean reconverge=%s", batch, (total / trials).Round(time.Millisecond))
	}
}
