// Package cluster is the local testbed: it assembles n Thunderbolt
// replicas over an in-process simulated network, routes client
// transactions to shard proposers (re-routing across
// reconfigurations), and measures the throughput and latency figures
// the paper reports.
package cluster

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"thunderbolt/internal/contract"
	"thunderbolt/internal/crypto"
	"thunderbolt/internal/gateway"
	"thunderbolt/internal/metrics"
	"thunderbolt/internal/node"
	"thunderbolt/internal/storage"
	"thunderbolt/internal/transport"
	"thunderbolt/internal/types"
	"thunderbolt/internal/workload"
)

// Config assembles a cluster.
type Config struct {
	// N is the number of replicas (= shards).
	N int
	// Mode selects the execution pipeline for every node.
	Mode node.ExecutionMode
	// Latency models the network (default LAN).
	Latency transport.LatencyModel
	// SchemeName selects the signature scheme ("insecure" default for
	// in-process scale; "ed25519" for realism).
	SchemeName string
	// Accounts and InitBalance seed the SmallBank state.
	Accounts    int
	InitBalance int64
	// Executors, Validators, BatchSize, K, KPrime configure each node
	// (see node.Config).
	Executors  int
	Validators int
	BatchSize  int
	// BatchSizeCap / BatchLatencyTarget tune the adaptive batch
	// controller (node.Config); zero selects the node defaults.
	BatchSizeCap       int
	BatchLatencyTarget time.Duration
	K                  int
	KPrime             int
	// TickInterval paces node housekeeping (default 25ms).
	TickInterval time.Duration
	// Seed feeds key generation and the workload.
	Seed int64
	// CommitLogCap, when positive, makes every node retain its ordered
	// commit sequence (node.Config.CommitLogCap) for the chaos
	// harness's divergence and double-commit checkers.
	CommitLogCap int
	// GCHorizon is each node's committed-wave GC retention horizon in
	// rounds (node.Config.GCHorizon): 0 = default, negative disables.
	GCHorizon int
	// RecoverySyncRounds caps each node's per-tick recovery round-pull
	// batch (node.Config.RecoverySyncRounds); 0 = measured default.
	RecoverySyncRounds int
	// SnapshotInterval is the mid-epoch snapshot capture cadence in
	// committed leader rounds (node.Config.SnapshotInterval): 0 =
	// default, negative disables mid-epoch captures.
	SnapshotInterval int
	// SnapChunkRecords / SnapMonolithicRecords / SnapChunkServeBudget
	// shape chunked snapshot transfer (see node.Config); 0 = defaults.
	SnapChunkRecords      int
	SnapMonolithicRecords int
	SnapChunkServeBudget  int
	// MinRoundInterval throttles each node's round advancement
	// (node.Config.MinRoundInterval); 0 = default 1ms.
	MinRoundInterval time.Duration
	// SpecExecDepth bounds each node's speculative-execution pipeline
	// (node.Config.SpecExecDepth): 0 = default, negative disables.
	SpecExecDepth int
	// SpecVerify enables each node's runtime differential check on
	// speculative hits (node.Config.SpecVerify).
	SpecVerify bool
	// Headless lists replica indices for which no node is constructed:
	// their network endpoints stay free for a test harness to drive at
	// the wire level (Byzantine drivers, protocol fuzzers). Node(i)
	// returns nil for them and routing treats them as black holes
	// (clients fall back on retries and reconfiguration).
	Headless []int
	// GatewayClients reserves this many extra SimNetwork endpoints
	// (IDs N..N+GatewayClients-1) for gateway clients: wire clients
	// that speak the sessioned submission protocol to the committee
	// instead of calling node.Submit in-process. See GatewayClient.
	GatewayClients int
	// NonceWindow / LegacyDedupWindow configure every node's bounded
	// dedup (node.Config); 0 selects the gateway defaults.
	NonceWindow       int
	LegacyDedupWindow int
	// SessionIdleEpochs configures deterministic idle-session expiry
	// at epoch transitions (node.Config.SessionIdleEpochs; 0 = off).
	SessionIdleEpochs int
	// DataDir, when set, gives every replica a durable WAL storage
	// backend under <DataDir>/replica-<i> instead of the in-memory
	// store: replicas restarted against the same directory recover
	// their committed state from disk. Fresh directories are seeded
	// with the SmallBank genesis; recovered ones are not re-seeded.
	DataDir string
	// WALNoSync skips fsync in the durable backend (test speed).
	WALNoSync bool
}

func (c Config) withDefaults() Config {
	if c.N <= 0 {
		c.N = 4
	}
	if c.Latency == nil {
		c.Latency = transport.LANModel()
	}
	if c.SchemeName == "" {
		c.SchemeName = "insecure"
	}
	if c.Accounts <= 0 {
		c.Accounts = 1000
	}
	if c.InitBalance == 0 {
		c.InitBalance = 1_000_000
	}
	return c
}

// Cluster is a running local committee.
type Cluster struct {
	cfg   Config
	net   *transport.SimNetwork
	nodes []*node.Node
	reg   *contract.Registry
	// backends holds the durable storage backends to close on Stop
	// (empty when Config.DataDir is unset).
	backends []*storage.Durable

	// gateways caches one gateway.Client per reserved client endpoint;
	// sessions allocates cluster-unique dedup session IDs — each load
	// run opens fresh sessions, because a session's nonces start at 1
	// exactly once (reusing a client ID with restarted nonces would
	// collide with the committee's nonce floors by design).
	gwMu     sync.Mutex
	gateways map[int]*gateway.Client
	sessions atomic.Uint64

	mu          sync.Mutex
	committedAt map[types.Digest]time.Time
	waiters     map[types.Digest][]chan struct{}

	latencies *metrics.LatencyRecorder
	commits   metrics.Counter
	// waveSeries records, from the observer node (replica 0), each
	// commit wave's leader round and wall-clock time (Figure 16).
	waveSeries *metrics.Series
	lastWaveAt time.Time
	reconfigs  metrics.Counter
	nacks      metrics.Counter

	// rejected carries proposer negative-acks to the resubmit
	// goroutine (node event loops must never block on re-routing).
	rejected chan *types.Transaction
	done     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	started bool
}

// New assembles (but does not start) a cluster with SmallBank
// registered and seeded identically on every replica.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	scheme, err := crypto.SchemeByName(cfg.SchemeName)
	if err != nil {
		return nil, err
	}
	signers, verifier, err := scheme.Committee(cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	reg := contract.NewRegistry()
	workload.RegisterSmallBank(reg)

	c := &Cluster{
		cfg: cfg,
		net: transport.NewSimNetwork(transport.SimConfig{
			N: cfg.N + cfg.GatewayClients, Committee: cfg.N,
			Latency: cfg.Latency, Seed: cfg.Seed,
		}),
		reg:         reg,
		gateways:    make(map[int]*gateway.Client),
		committedAt: make(map[types.Digest]time.Time),
		waiters:     make(map[types.Digest][]chan struct{}),
		latencies:   metrics.NewLatencyRecorder(),
		waveSeries:  &metrics.Series{},
		rejected:    make(chan *types.Transaction, 8192),
		done:        make(chan struct{}),
	}
	headless := make(map[int]bool, len(cfg.Headless))
	for _, i := range cfg.Headless {
		headless[i] = true
	}
	for i := 0; i < cfg.N; i++ {
		if headless[i] {
			c.nodes = append(c.nodes, nil)
			continue
		}
		var st storage.Backend
		if cfg.DataDir != "" {
			d, err := storage.OpenDurable(storage.DurableOptions{
				Dir:    filepath.Join(cfg.DataDir, fmt.Sprintf("replica-%d", i)),
				NoSync: cfg.WALNoSync,
			})
			if err != nil {
				return nil, fmt.Errorf("cluster: replica %d storage: %w", i, err)
			}
			c.backends = append(c.backends, d)
			st = d
		} else {
			st = storage.New()
		}
		if st.Seq() == 0 {
			workload.InitAccounts(st, cfg.Accounts, cfg.InitBalance, cfg.InitBalance)
		}
		id := types.ReplicaID(i)
		ncfg := node.Config{
			ID: id, N: cfg.N,
			Transport: c.net.Endpoint(id),
			Signer:    signers[i], Verifier: verifier,
			Registry: reg, Store: st,
			Mode:      cfg.Mode,
			Executors: cfg.Executors, Validators: cfg.Validators,
			BatchSize: cfg.BatchSize, K: cfg.K, KPrime: cfg.KPrime,
			BatchSizeCap:          cfg.BatchSizeCap,
			BatchLatencyTarget:    cfg.BatchLatencyTarget,
			TickInterval:          cfg.TickInterval,
			MinRoundInterval:      cfg.MinRoundInterval,
			SpecExecDepth:         cfg.SpecExecDepth,
			SpecVerify:            cfg.SpecVerify,
			CommitLogCap:          cfg.CommitLogCap,
			GCHorizon:             cfg.GCHorizon,
			RecoverySyncRounds:    cfg.RecoverySyncRounds,
			SnapshotInterval:      cfg.SnapshotInterval,
			SnapChunkRecords:      cfg.SnapChunkRecords,
			SnapMonolithicRecords: cfg.SnapMonolithicRecords,
			SnapChunkServeBudget:  cfg.SnapChunkServeBudget,
			NonceWindow:           cfg.NonceWindow,
			LegacyDedupWindow:     cfg.LegacyDedupWindow,
			SessionIdleEpochs:     cfg.SessionIdleEpochs,
			OnCommitTx:            c.onCommit,
			OnRejectTx:            c.onReject,
		}
		if i == 0 {
			ncfg.OnCommitWave = c.onWave
			ncfg.OnReconfig = func(types.Epoch, time.Time) { c.reconfigs.Add(1) }
		}
		nd, err := node.New(ncfg)
		if err != nil {
			return nil, err
		}
		c.nodes = append(c.nodes, nd)
	}
	return c, nil
}

// Registry returns the shared contract registry.
func (c *Cluster) Registry() *contract.Registry { return c.reg }

// Network exposes the simulated network for fault injection.
func (c *Cluster) Network() *transport.SimNetwork { return c.net }

// Node returns replica i.
func (c *Cluster) Node(i int) *node.Node { return c.nodes[i] }

// N returns the committee size.
func (c *Cluster) N() int { return c.cfg.N }

// Start launches every node and the negative-ack resubmitter.
func (c *Cluster) Start() {
	if c.started {
		return
	}
	c.started = true
	c.wg.Add(1)
	go c.resubmitRejected()
	for _, n := range c.nodes {
		if n != nil {
			n.Start()
		}
	}
}

// Stop tears the cluster down. Idempotent and safe for concurrent use.
func (c *Cluster) Stop() {
	c.stopOnce.Do(func() { close(c.done) })
	for _, n := range c.nodes {
		if n != nil {
			n.Stop()
		}
	}
	c.wg.Wait()
	c.net.Close()
	// Backends close after their nodes: Durable.Close cuts a final
	// checkpoint whose meta capture reads node state.
	for _, b := range c.backends {
		_ = b.Close()
	}
}

// onReject receives a proposer's negative-ack on that node's event
// loop; hand the transaction to the resubmitter without blocking.
func (c *Cluster) onReject(tx *types.Transaction) {
	select {
	case c.rejected <- tx:
	default:
		// Backlogged: the client's own retry timer is the backstop.
	}
}

// resubmitRejected re-routes negative-acked transactions immediately,
// cutting the fault-path tail latency from the client retry interval
// to one round trip. Only transactions a SubmitWait caller is still
// blocked on are resubmitted, so abandoned traffic cannot circulate.
// Routing uses the freshest epoch any replica reports — the rejecting
// proposer has already transitioned, so the observer node's view can
// lag and would bounce the resubmission straight back.
func (c *Cluster) resubmitRejected() {
	defer c.wg.Done()
	for {
		select {
		case tx := <-c.rejected:
			c.mu.Lock()
			_, waiting := c.waiters[tx.ID()]
			c.mu.Unlock()
			if !waiting {
				continue
			}
			c.nacks.Add(1)
			epoch := types.Epoch(0)
			for _, n := range c.nodes {
				if n == nil {
					continue
				}
				if e := n.Stats().Epoch; e > epoch {
					epoch = e
				}
			}
			shard := types.ShardID(0)
			if len(tx.Shards) > 0 {
				shard = tx.Shards[0]
			}
			if nd := c.nodes[ProposerOf(shard, epoch, c.cfg.N)]; nd != nil {
				_ = nd.Submit(tx)
			}
		case <-c.done:
			return
		}
	}
}

// Nacks returns how many negative-acked transactions were immediately
// resubmitted (observability for the fault-path latency tests).
func (c *Cluster) Nacks() uint64 { return c.nacks.Value() }

// onCommit records the first commit of each transaction anywhere in
// the cluster (the paper's client-observed commit point).
func (c *Cluster) onCommit(tx *types.Transaction, when time.Time) {
	id := tx.ID()
	c.mu.Lock()
	if _, dup := c.committedAt[id]; dup {
		c.mu.Unlock()
		return
	}
	c.committedAt[id] = when
	ws := c.waiters[id]
	delete(c.waiters, id)
	c.mu.Unlock()

	c.commits.Add(1)
	if tx.SubmitUnixNano > 0 {
		c.latencies.Record(when.Sub(time.Unix(0, tx.SubmitUnixNano)))
	}
	for _, w := range ws {
		close(w)
	}
}

// onWave records inter-wave commit spacing on the observer node.
func (c *Cluster) onWave(_ types.Epoch, _ types.Round, when time.Time) {
	c.mu.Lock()
	last := c.lastWaveAt
	c.lastWaveAt = when
	c.mu.Unlock()
	if !last.IsZero() {
		c.waveSeries.Append(when, when.Sub(last).Seconds())
	}
}

// WaveSeries returns the per-wave commit spacing series (seconds).
func (c *Cluster) WaveSeries() *metrics.Series { return c.waveSeries }

// Reconfigurations returns the observer's reconfiguration count.
func (c *Cluster) Reconfigurations() uint64 { return c.reconfigs.Value() }

// Committed reports whether tx has committed anywhere.
func (c *Cluster) Committed(id types.Digest) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.committedAt[id]
	return ok
}

// PendingWaits returns the IDs of transactions some SubmitWait caller
// is still blocked on — the chaos harness's starvation diagnostics.
func (c *Cluster) PendingWaits() []types.Digest {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]types.Digest, 0, len(c.waiters))
	for id := range c.waiters {
		out = append(out, id)
	}
	return out
}

// watch returns a channel closed when tx id first commits.
func (c *Cluster) watch(id types.Digest) <-chan struct{} {
	ch := make(chan struct{})
	c.mu.Lock()
	if _, done := c.committedAt[id]; done {
		c.mu.Unlock()
		close(ch)
		return ch
	}
	c.waiters[id] = append(c.waiters[id], ch)
	c.mu.Unlock()
	return ch
}

// unwatch removes one abandoned waiter channel (SubmitWait timeout)
// so PendingWaits reflects only live clients.
func (c *Cluster) unwatch(id types.Digest, ch <-chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ws := c.waiters[id]
	for i, w := range ws {
		if w == ch {
			ws = append(ws[:i], ws[i+1:]...)
			break
		}
	}
	if len(ws) == 0 {
		delete(c.waiters, id)
	} else {
		c.waiters[id] = ws
	}
}

// route picks the node a transaction should be submitted to: the
// proposer currently serving its (first) shard. The observer node's
// epoch approximates the cluster epoch; a stale guess is corrected by
// client resubmission after a timeout. Returns nil when the proposer
// is headless (a black hole the client's retry loop works around).
func (c *Cluster) route(tx *types.Transaction) *node.Node {
	var epoch types.Epoch
	for _, n := range c.nodes {
		if n != nil {
			epoch = n.Stats().Epoch
			break
		}
	}
	shard := types.ShardID(0)
	if len(tx.Shards) > 0 {
		shard = tx.Shards[0]
	}
	return c.nodes[ProposerOf(shard, epoch, c.cfg.N)]
}

// ProposerOf mirrors the protocol's shard-rotation schedule.
func ProposerOf(s types.ShardID, epoch types.Epoch, n int) types.ReplicaID {
	return node.ProposerOfShard(s, epoch, n)
}

// NewSession allocates a cluster-unique gateway session ID. A session
// is an identity whose nonces start at 1 exactly once; anything
// submitting a fresh transaction stream must hold a fresh session
// (RunLoad allocates one per client goroutine per call).
func (c *Cluster) NewSession() uint64 {
	return 1<<20 + c.sessions.Add(1)
}

// GatewayClient returns the gateway client bound to reserved client
// endpoint i (0 ≤ i < Config.GatewayClients), creating it on first
// use. The client speaks the sessioned submission wire protocol to
// the committee over the simulated network — acks, nacks with
// re-route hints, commit notifications — exactly as a remote TCP
// client would. Safe for concurrent use.
func (c *Cluster) GatewayClient(i int) *gateway.Client {
	c.gwMu.Lock()
	defer c.gwMu.Unlock()
	if gw, ok := c.gateways[i]; ok {
		return gw
	}
	if i < 0 || i >= c.cfg.GatewayClients {
		panic(fmt.Sprintf("cluster: gateway client %d outside reserved range %d", i, c.cfg.GatewayClients))
	}
	gw, err := gateway.NewClient(gateway.ClientConfig{
		Transport:  c.net.Endpoint(types.ReplicaID(c.cfg.N + i)),
		N:          c.cfg.N,
		Session:    c.NewSession(),
		AckTimeout: 250 * time.Millisecond,
		RetryEvery: 250 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	c.gateways[i] = gw
	return gw
}

// Submit stamps and routes one transaction without waiting.
func (c *Cluster) Submit(tx *types.Transaction) error {
	if !c.started {
		return errors.New("cluster: not started")
	}
	if tx.SubmitUnixNano == 0 {
		tx.SubmitUnixNano = time.Now().UnixNano()
	}
	nd := c.route(tx)
	if nd == nil {
		// Headless proposer: the submission is dropped on the floor,
		// exactly as a Byzantine proposer would drop it. Clients retry
		// until a reconfiguration rotates the shard to a live replica.
		return nil
	}
	return nd.Submit(tx)
}

// SubmitWait submits tx and blocks until it commits somewhere,
// resubmitting (with re-routing) every retryEvery until the deadline
// — the paper's client retransmission behaviour across
// reconfigurations.
func (c *Cluster) SubmitWait(tx *types.Transaction, retryEvery, timeout time.Duration) error {
	id := tx.ID()
	ch := c.watch(id)
	deadline := time.Now().Add(timeout)
	if err := c.Submit(tx); err != nil {
		c.unwatch(id, ch)
		return err
	}
	// One reused timer per call: a time.After per retry quantum leaves
	// an unstoppable timer in the heap for the full retry interval long
	// after the commit arrived — at load, thousands of dead timers.
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			c.unwatch(id, ch)
			return fmt.Errorf("cluster: tx %s not committed within %v", id, timeout)
		}
		wait := retryEvery
		if wait <= 0 || wait > remaining {
			wait = remaining
		}
		if timer == nil {
			timer = time.NewTimer(wait)
		} else {
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(wait)
		}
		select {
		case <-ch:
			return nil
		case <-timer.C:
			_ = c.Submit(tx) // re-route and retry
		}
	}
}

// Converged checks that every replica's store holds identical state.
func (c *Cluster) Converged() error {
	return c.ConvergedAmong(c.Replicas()...)
}

// ConvergedAmong checks that the listed replicas' stores hold
// identical state. Fault scenarios use it to assert agreement among
// the live majority while a crashed or partitioned replica lags.
func (c *Cluster) ConvergedAmong(replicas ...int) error {
	if len(replicas) < 2 {
		return nil
	}
	ref := c.nodes[replicas[0]].Store()
	keys := ref.Keys()
	for _, i := range replicas[1:] {
		st := c.nodes[i].Store()
		for _, k := range keys {
			a, _ := ref.Get(k)
			b, _ := st.Get(k)
			if !a.Equal(b) {
				return fmt.Errorf("cluster: replica %d diverges from %d at %s: %q vs %q", i, replicas[0], k, b, a)
			}
		}
		if st.Len() != ref.Len() {
			return fmt.Errorf("cluster: replica %d has %d keys, replica %d has %d", i, st.Len(), replicas[0], ref.Len())
		}
	}
	return nil
}

// Replicas returns the constructed replica indices — the default
// argument for the *Among helpers. Headless replicas are excluded
// (they have no node to observe).
func (c *Cluster) Replicas() []int {
	ids := make([]int, 0, len(c.nodes))
	for i, n := range c.nodes {
		if n != nil {
			ids = append(ids, i)
		}
	}
	return ids
}

// WaitConverged polls Converged until the deadline.
func (c *Cluster) WaitConverged(timeout time.Duration) error {
	return c.WaitConvergedAmong(timeout, c.Replicas()...)
}

// WaitConvergedAmong polls ConvergedAmong until the deadline.
func (c *Cluster) WaitConvergedAmong(timeout time.Duration, replicas ...int) error {
	deadline := time.Now().Add(timeout)
	var last error
	for time.Now().Before(deadline) {
		if last = c.ConvergedAmong(replicas...); last == nil {
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return last
}

// Commits returns the number of distinct transactions committed
// anywhere in the cluster so far (the client-observed commit count).
func (c *Cluster) Commits() uint64 { return c.commits.Value() }

// MergedHistogram merges the named histogram across every live node
// into one cluster-wide bucket snapshot (per-stage commit-path
// breakdowns; see metrics.StageNames). Headless replicas contribute
// nothing.
func (c *Cluster) MergedHistogram(name string) metrics.HistogramSnapshot {
	var merged metrics.HistogramSnapshot
	for _, n := range c.nodes {
		if n == nil {
			continue
		}
		merged.Merge(n.Metrics().HistogramSnapshotOf(name))
	}
	return merged
}

// WaitCommitCountsEqual polls until every listed replica (default:
// all) reports the same CommittedTxs count and that count is stable
// across one poll interval — the quiescence point at which
// commit-count and state comparisons are meaningful.
func (c *Cluster) WaitCommitCountsEqual(timeout time.Duration, replicas ...int) error {
	if len(replicas) == 0 {
		replicas = c.Replicas()
	}
	deadline := time.Now().Add(timeout)
	var prev uint64
	stable := false
	for time.Now().Before(deadline) {
		base := c.nodes[replicas[0]].Stats().CommittedTxs
		equal := true
		for _, i := range replicas[1:] {
			if c.nodes[i].Stats().CommittedTxs != base {
				equal = false
				break
			}
		}
		if equal && stable && base == prev {
			return nil
		}
		stable = equal
		prev = base
		time.Sleep(20 * time.Millisecond)
	}
	counts := make([]uint64, 0, len(replicas))
	for _, i := range replicas {
		counts = append(counts, c.nodes[i].Stats().CommittedTxs)
	}
	return fmt.Errorf("cluster: commit counts never settled: %v", counts)
}

// Report summarizes one load run.
type Report struct {
	Mode      node.ExecutionMode
	N         int
	Duration  time.Duration
	Committed uint64
	TPS       float64
	Latency   metrics.Summary
	Reconfigs uint64
	NodeStats []node.Stats
}

func (r Report) String() string {
	return fmt.Sprintf("%s n=%d tps=%.0f committed=%d latency{%s} reconfigs=%d",
		r.Mode, r.N, r.TPS, r.Committed, r.Latency, r.Reconfigs)
}

// LoadConfig parameterizes RunLoad.
type LoadConfig struct {
	// Duration is the measurement window.
	Duration time.Duration
	// Clients is the number of closed-loop client goroutines.
	Clients int
	// Workload parameterizes the SmallBank generator (Shards and Seed
	// are overridden by the cluster).
	Workload workload.Config
	// RetryEvery/Timeout bound one transaction's client-side life.
	RetryEvery time.Duration
	Timeout    time.Duration
	// ViaGateway drives the load through gateway clients speaking the
	// sessioned wire protocol (requires Config.GatewayClients > 0)
	// instead of in-process Submit + commit-watch. Each load goroutine
	// still owns a fresh session; goroutines share the reserved
	// gateway endpoints round-robin.
	ViaGateway bool
}

// RunLoad drives closed-loop clients for the configured duration and
// reports committed throughput and latency.
func (c *Cluster) RunLoad(lc LoadConfig) Report {
	if lc.ViaGateway && c.cfg.GatewayClients <= 0 {
		panic("cluster: LoadConfig.ViaGateway requires Config.GatewayClients > 0")
	}
	if lc.Clients <= 0 {
		lc.Clients = 8
	}
	if lc.RetryEvery <= 0 {
		lc.RetryEvery = 2 * time.Second
	}
	if lc.Timeout <= 0 {
		lc.Timeout = 30 * time.Second
	}
	lc.Workload.Shards = c.cfg.N
	lc.Workload.Accounts = c.cfg.Accounts

	startCommits := c.commits.Value()
	start := time.Now()
	deadline := start.Add(lc.Duration)

	// Each goroutine gets a fresh dedup session: session nonces start
	// at 1 exactly once per identity, so re-running a load against the
	// same cluster must not reuse client IDs (the committee's nonce
	// floors would swallow the restarted stream as duplicates).
	sessionBase := make([]uint64, lc.Clients)
	for cl := range sessionBase {
		sessionBase[cl] = c.NewSession()
	}
	var wg sync.WaitGroup
	for cl := 0; cl < lc.Clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			wcfg := lc.Workload
			wcfg.Seed = c.cfg.Seed*7919 + int64(cl)
			wcfg.Client = sessionBase[cl]
			gen := workload.NewGenerator(wcfg)
			var gw *gateway.Client
			if lc.ViaGateway {
				gw = c.GatewayClient(cl % c.cfg.GatewayClients)
			}
			for time.Now().Before(deadline) {
				tx := gen.Next()
				tx.SubmitUnixNano = time.Now().UnixNano()
				if gw != nil {
					_, _ = gw.SubmitWait(tx, lc.Timeout)
				} else {
					_ = c.SubmitWait(tx, lc.RetryEvery, lc.Timeout)
				}
			}
		}(cl)
	}
	wg.Wait()
	elapsed := time.Since(start)
	committed := c.commits.Value() - startCommits

	rep := Report{
		Mode: c.cfg.Mode, N: c.cfg.N, Duration: elapsed,
		Committed: committed,
		TPS:       metrics.Throughput(committed, elapsed),
		Latency:   c.latencies.Summarize(),
		Reconfigs: c.reconfigs.Value(),
	}
	for _, n := range c.nodes {
		if n == nil {
			rep.NodeStats = append(rep.NodeStats, node.Stats{})
			continue
		}
		rep.NodeStats = append(rep.NodeStats, n.Stats())
	}
	return rep
}

// WaitEpochAtLeast polls until replica i reports an epoch ≥ e — the
// observable point at which a replica has joined (by transition or by
// snapshot epoch-jump) the given configuration.
func (c *Cluster) WaitEpochAtLeast(i int, e types.Epoch, timeout time.Duration) error {
	if c.nodes[i] == nil {
		return fmt.Errorf("cluster: replica %d is headless; it has no epoch to wait on", i)
	}
	deadline := time.Now().Add(timeout)
	var last types.Epoch
	for time.Now().Before(deadline) {
		if last = c.nodes[i].Stats().Epoch; last >= e {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("cluster: replica %d stuck at epoch %d (want ≥ %d) after %v", i, last, e, timeout)
}
