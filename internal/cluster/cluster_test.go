package cluster

import (
	"sync"
	"testing"
	"time"

	"thunderbolt/internal/node"
	"thunderbolt/internal/transport"
	"thunderbolt/internal/types"
	"thunderbolt/internal/workload"
)

func testCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	if cfg.N == 0 {
		cfg.N = 4
	}
	if cfg.Accounts == 0 {
		cfg.Accounts = 32
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 32
	}
	cfg.Executors = 2
	cfg.Validators = 2
	cfg.Latency = transport.UniformLatency(50*time.Microsecond, 200*time.Microsecond)
	cfg.TickInterval = 5 * time.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

func TestSubmitBeforeStartFails(t *testing.T) {
	c, err := New(Config{N: 4, Accounts: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	tx := &types.Transaction{Client: 1, Nonce: 1, Kind: types.SingleShard,
		Shards: []types.ShardID{0}, Contract: workload.ContractGetBalance,
		Args: [][]byte{[]byte(workload.AccountName(0))}}
	if err := c.Submit(tx); err == nil {
		t.Fatal("submit before Start accepted")
	}
}

func TestSubmitWaitStampsAndCommits(t *testing.T) {
	c := testCluster(t, Config{Seed: 1})
	tx := &types.Transaction{Client: 1, Nonce: 1, Kind: types.SingleShard,
		Shards:   []types.ShardID{types.NewShardMap(4).ShardOf(types.Key(workload.AccountName(0)))},
		Contract: workload.ContractDepositChecking,
		Args:     [][]byte{[]byte(workload.AccountName(0)), []byte{0, 0, 0, 0, 0, 0, 0, 5}}}
	if err := c.SubmitWait(tx, time.Second, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	if tx.SubmitUnixNano == 0 {
		t.Fatal("submit time not stamped")
	}
	if !c.Committed(tx.ID()) {
		t.Fatal("commit not tracked")
	}
	// Second wait on an already-committed tx returns immediately.
	if err := c.SubmitWait(tx, time.Second, time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitWaitTimesOutForImpossibleTx(t *testing.T) {
	c := testCluster(t, Config{Seed: 2})
	// A contract failure never commits; SubmitWait must report it.
	tx := &types.Transaction{Client: 1, Nonce: 9, Kind: types.SingleShard,
		Shards: []types.ShardID{0}, Contract: "no.such.contract"}
	err := c.SubmitWait(tx, 200*time.Millisecond, time.Second)
	if err == nil {
		t.Fatal("impossible transaction reported committed")
	}
}

func TestRunLoadProducesReport(t *testing.T) {
	c := testCluster(t, Config{Seed: 3})
	rep := c.RunLoad(LoadConfig{
		Duration: 400 * time.Millisecond, Clients: 4,
		Workload:   workload.Config{Theta: 0.5, ReadRatio: 0.5},
		RetryEvery: time.Second, Timeout: 20 * time.Second,
	})
	if rep.Committed == 0 || rep.TPS <= 0 {
		t.Fatalf("no throughput: %+v", rep)
	}
	if rep.Latency.Count == 0 || rep.Latency.Mean <= 0 {
		t.Fatalf("no latency: %+v", rep.Latency)
	}
	if len(rep.NodeStats) != 4 {
		t.Fatalf("node stats missing: %d", len(rep.NodeStats))
	}
	if rep.String() == "" {
		t.Fatal("report renders empty")
	}
}

func TestProposerOfMatchesNode(t *testing.T) {
	for e := types.Epoch(0); e < 9; e++ {
		for s := types.ShardID(0); s < 4; s++ {
			p := ProposerOf(s, e, 4)
			if node.MyShard(p, e, 4) != s {
				t.Fatalf("epoch %d shard %d: proposer %d does not own it", e, s, p)
			}
		}
	}
}

func TestConvergedDetectsDivergence(t *testing.T) {
	c := testCluster(t, Config{Seed: 4})
	if err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatalf("fresh cluster should converge: %v", err)
	}
	// Poison one replica's store.
	c.Node(1).Store().Set("poison", types.Value("x"))
	if err := c.Converged(); err == nil {
		t.Fatal("divergence not detected")
	}
}

func TestWaveSeriesRecorded(t *testing.T) {
	c := testCluster(t, Config{Seed: 5})
	rep := c.RunLoad(LoadConfig{
		Duration: 300 * time.Millisecond, Clients: 2,
		Workload: workload.Config{Theta: 0.5, ReadRatio: 0.5},
	})
	_ = rep
	if len(c.WaveSeries().Points()) == 0 {
		t.Fatal("no commit-wave samples recorded")
	}
}

// TestNegativeAckRescuesDroppedTransactions forces shard rotations
// under load with a client retry timer far beyond the test budget:
// transactions dropped at a reconfiguration (queue unclaimed,
// misroutes to rotated-away proposers) can then only commit through
// the proposer-side negative-ack's immediate re-route. Before the
// nack existed, these clients stalled until their retry timer.
func TestNegativeAckRescuesDroppedTransactions(t *testing.T) {
	c := testCluster(t, Config{Seed: 9, KPrime: 25})
	gen := workload.NewGenerator(workload.Config{
		Accounts: 32, Shards: 4, Theta: 0.7, ReadRatio: 0.3, Seed: 9, Client: 1,
	})
	var wg sync.WaitGroup
	errs := make(chan error, 512)
	deadline := time.Now().Add(60 * time.Second)
	for c.Reconfigurations() < 2 && time.Now().Before(deadline) {
		for i := 0; i < 16; i++ {
			tx := gen.Next()
			wg.Add(1)
			go func() {
				defer wg.Done()
				// RetryEvery 5min: the client never retries on its own
				// within the test; only the nack path can rescue a drop.
				if err := c.SubmitWait(tx, 5*time.Minute, 30*time.Second); err != nil {
					errs <- err
				}
			}()
		}
		wg.Wait()
	}
	close(errs)
	for err := range errs {
		t.Fatalf("transaction starved despite negative-ack: %v", err)
	}
	if c.Reconfigurations() < 2 {
		t.Fatalf("only %d reconfigurations despite KPrime", c.Reconfigurations())
	}
	t.Logf("reconfigurations: %d, nack resubmissions: %d", c.Reconfigurations(), c.Nacks())
}
