package vm

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// Assemble compiles a textual program into a Program. The syntax is
// line-oriented:
//
//	; comment
//	.const prefix "checking:"   define a named string constant
//	label:                      define a jump target
//	push 42                     integer immediate
//	sconst prefix               push named constant
//	sarg 0                      push call argument by index
//	jz done                     conditional jump to label
//	...
//
// Assemble exists so tests and examples can express contracts
// legibly; production callers typically build Programs directly.
func Assemble(src string) (*Program, error) {
	type patch struct {
		offset int
		label  string
		line   int
	}
	p := &Program{}
	consts := map[string]uint16{}
	labels := map[string]int{}
	var patches []patch

	emitU16 := func(v uint16) {
		p.Code = binary.BigEndian.AppendUint16(p.Code, v)
	}
	emitU32 := func(v uint32) {
		p.Code = binary.BigEndian.AppendUint32(p.Code, v)
	}
	emitU64 := func(v uint64) {
		p.Code = binary.BigEndian.AppendUint64(p.Code, v)
	}

	nameToOp := make(map[string]Opcode, len(opNames))
	for op, n := range opNames {
		nameToOp[n] = op
	}

	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Constant definition.
		if strings.HasPrefix(line, ".const") {
			rest := strings.TrimSpace(strings.TrimPrefix(line, ".const"))
			sp := strings.IndexAny(rest, " \t")
			if sp < 0 {
				return nil, fmt.Errorf("vm: line %d: .const needs a name and a value", ln+1)
			}
			name := rest[:sp]
			valTok := strings.TrimSpace(rest[sp+1:])
			val, err := strconv.Unquote(valTok)
			if err != nil {
				return nil, fmt.Errorf("vm: line %d: bad const literal %s: %v", ln+1, valTok, err)
			}
			if _, dup := consts[name]; dup {
				return nil, fmt.Errorf("vm: line %d: duplicate const %q", ln+1, name)
			}
			consts[name] = uint16(len(p.Consts))
			p.Consts = append(p.Consts, []byte(val))
			continue
		}
		// Label definition.
		if strings.HasSuffix(line, ":") {
			name := strings.TrimSuffix(line, ":")
			if _, dup := labels[name]; dup {
				return nil, fmt.Errorf("vm: line %d: duplicate label %q", ln+1, name)
			}
			labels[name] = len(p.Code)
			continue
		}
		fields := strings.Fields(line)
		op, ok := nameToOp[fields[0]]
		if !ok {
			return nil, fmt.Errorf("vm: line %d: unknown mnemonic %q", ln+1, fields[0])
		}
		p.Code = append(p.Code, byte(op))
		needsOperand := func() error {
			if len(fields) != 2 {
				return fmt.Errorf("vm: line %d: %s takes exactly one operand", ln+1, fields[0])
			}
			return nil
		}
		switch op {
		case OpPush:
			if err := needsOperand(); err != nil {
				return nil, err
			}
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("vm: line %d: bad integer %q", ln+1, fields[1])
			}
			emitU64(uint64(v))
		case OpJmp, OpJz:
			if err := needsOperand(); err != nil {
				return nil, err
			}
			patches = append(patches, patch{offset: len(p.Code), label: fields[1], line: ln + 1})
			emitU32(0)
		case OpSConst:
			if err := needsOperand(); err != nil {
				return nil, err
			}
			idx, ok := consts[fields[1]]
			if !ok {
				return nil, fmt.Errorf("vm: line %d: unknown const %q", ln+1, fields[1])
			}
			emitU16(idx)
		case OpSArg, OpArgI:
			if err := needsOperand(); err != nil {
				return nil, err
			}
			v, err := strconv.ParseUint(fields[1], 10, 16)
			if err != nil {
				return nil, fmt.Errorf("vm: line %d: bad arg index %q", ln+1, fields[1])
			}
			emitU16(uint16(v))
		default:
			if len(fields) != 1 {
				return nil, fmt.Errorf("vm: line %d: %s takes no operand", ln+1, fields[0])
			}
		}
	}
	for _, pt := range patches {
		target, ok := labels[pt.label]
		if !ok {
			return nil, fmt.Errorf("vm: line %d: undefined label %q", pt.line, pt.label)
		}
		binary.BigEndian.PutUint32(p.Code[pt.offset:], uint32(target))
	}
	return p, nil
}

// MustAssemble is Assemble that panics on error (for package-level
// program definitions).
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}
