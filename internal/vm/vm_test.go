package vm

import (
	"errors"
	"strings"
	"testing"

	"thunderbolt/internal/contract"
	"thunderbolt/internal/types"
)

// mapState is a trivial contract.State over a map.
type mapState struct {
	m   map[types.Key]types.Value
	err error // when set, every access fails with it
}

func newMapState() *mapState { return &mapState{m: map[types.Key]types.Value{}} }

func (s *mapState) Read(k types.Key) (types.Value, error) {
	if s.err != nil {
		return nil, s.err
	}
	return s.m[k], nil
}

func (s *mapState) Write(k types.Key, v types.Value) error {
	if s.err != nil {
		return s.err
	}
	s.m[k] = v.Clone()
	return nil
}

func (s *mapState) int(k types.Key) int64 {
	v, _ := contract.DecodeInt64(s.m[k])
	return v
}

func run(t *testing.T, src string, st contract.State, args ...[]byte) error {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return Run(p, st, args, Limits{})
}

func TestArithmetic(t *testing.T) {
	st := newMapState()
	err := run(t, `
		.const out "out"
		push 6
		push 7
		mul
		push 2
		sub      ; 40
		push 4
		div      ; 10
		neg      ; -10
		sconst out
		store
	`, st)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.int("out"); got != -10 {
		t.Fatalf("out=%d want -10", got)
	}
}

func TestComparisonsAndStackOps(t *testing.T) {
	st := newMapState()
	err := run(t, `
		.const out "out"
		push 3
		push 5
		lt        ; 1
		push 5
		push 3
		gt        ; 1
		add       ; 2
		push 2
		eq        ; 1
		not       ; 0
		not       ; 1
		dup
		add       ; 2
		push 9
		swap
		pop       ; drop the 9's swap result: stack now [2]? verify via store
		sconst out
		store
	`, st)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.int("out"); got != 9 {
		t.Fatalf("out=%d want 9 (swap/pop semantics)", got)
	}
}

// TestLoopSum proves the VM supports bounded iteration: sum 1..n via a
// backward conditional jump, the core of Turing-completeness.
func TestLoopSum(t *testing.T) {
	st := newMapState()
	err := run(t, `
		.const sum "sum"
		.const i   "i"
		push 10
		sconst i
		store          ; i = 10
	loop:
		sconst i
		load           ; i
		jz done        ; while i != 0
		sconst sum
		load
		sconst i
		load
		add
		sconst sum
		store          ; sum += i
		sconst i
		load
		push 1
		sub
		sconst i
		store          ; i--
		jmp loop
	done:
		halt
	`, st)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.int("sum"); got != 55 {
		t.Fatalf("sum=%d want 55", got)
	}
}

func TestDynamicKeysFromArgs(t *testing.T) {
	st := newMapState()
	st.m["checking:alice"] = contract.EncodeInt64(100)
	err := run(t, `
		.const prefix "checking:"
		sconst prefix
		sarg 0
		scat
		load          ; read checking:<arg0>
		argi 1
		add
		sconst prefix
		sarg 0
		scat
		store         ; write it back + amount
	`, st, []byte("alice"), contract.EncodeInt64(25))
	if err != nil {
		t.Fatal(err)
	}
	if got := st.int("checking:alice"); got != 125 {
		t.Fatalf("balance=%d want 125", got)
	}
}

func TestInfiniteLoopExhaustsGas(t *testing.T) {
	st := newMapState()
	err := run(t, `
	spin:
		jmp spin
	`, st)
	if !errors.Is(err, contract.ErrContractFailure) {
		t.Fatalf("want contract failure, got %v", err)
	}
	if !strings.Contains(err.Error(), "step budget") {
		t.Fatalf("want out-of-gas, got %v", err)
	}
}

func TestAbortOpcode(t *testing.T) {
	err := run(t, `abort`, newMapState())
	if !errors.Is(err, contract.ErrContractFailure) {
		t.Fatalf("want contract failure, got %v", err)
	}
}

func TestControllerAbortPropagates(t *testing.T) {
	st := newMapState()
	st.err = contract.ErrAborted
	err := run(t, `
		.const k "k"
		sconst k
		load
	`, st)
	if !errors.Is(err, contract.ErrAborted) {
		t.Fatalf("controller abort must pass through unchanged, got %v", err)
	}
	if errors.Is(err, contract.ErrContractFailure) {
		t.Fatal("controller abort must not be classified as contract failure")
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"underflow", "add"},
		{"div-by-zero", "push 1\npush 0\ndiv"},
		{"bad-arg-index", "sarg 7"},
		{"bad-argi-index", "argi 7"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := run(t, c.src, newMapState())
			if !errors.Is(err, contract.ErrContractFailure) {
				t.Fatalf("want contract failure, got %v", err)
			}
		})
	}
}

func TestStackOverflow(t *testing.T) {
	p := &Program{}
	for i := 0; i < DefaultMaxStack+1; i++ {
		p.Code = append(p.Code, byte(OpPush), 0, 0, 0, 0, 0, 0, 0, 1)
	}
	err := Run(p, newMapState(), nil, Limits{})
	if !errors.Is(err, contract.ErrContractFailure) || !strings.Contains(err.Error(), "overflow") {
		t.Fatalf("want stack overflow, got %v", err)
	}
}

func TestTruncatedImmediate(t *testing.T) {
	p := &Program{Code: []byte{byte(OpPush), 0, 0}}
	if err := Run(p, newMapState(), nil, Limits{}); err == nil {
		t.Fatal("truncated immediate accepted")
	}
}

func TestUnknownOpcode(t *testing.T) {
	p := &Program{Code: []byte{0xEE}}
	if err := Run(p, newMapState(), nil, Limits{}); err == nil {
		t.Fatal("unknown opcode accepted")
	}
}

func TestFallOffEndHalts(t *testing.T) {
	p := MustAssemble("push 1\npop")
	if err := Run(p, newMapState(), nil, Limits{}); err != nil {
		t.Fatalf("program without halt should finish cleanly: %v", err)
	}
}

func TestAssemblerErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"unknown-mnemonic", "frobnicate"},
		{"undefined-label", "jmp nowhere"},
		{"duplicate-label", "a:\na:\nhalt"},
		{"duplicate-const", ".const x \"1\"\n.const x \"2\""},
		{"bad-const", ".const x notquoted"},
		{"missing-operand", "push"},
		{"extra-operand", "add 3"},
		{"bad-integer", "push abc"},
		{"unknown-const", "sconst nope"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Assemble(c.src); err == nil {
				t.Fatalf("assembled invalid source %q", c.src)
			}
		})
	}
}

func TestProgramRoundTrip(t *testing.T) {
	p := MustAssemble(`
		.const a "alpha"
		.const b "beta"
		sconst a
		sconst b
		scat
		load
		push 1
		add
		sconst a
		store
	`)
	enc, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Program
	if err := got.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	if string(got.Code) != string(p.Code) || len(got.Consts) != 2 || string(got.Consts[1]) != "beta" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestVMContractAdapter(t *testing.T) {
	st := newMapState()
	c := &VMContract{
		ContractName: "counter.bump",
		Prog: MustAssemble(`
			.const k "counter"
			sconst k
			load
			push 1
			add
			sconst k
			store
		`),
	}
	if c.Name() != "counter.bump" {
		t.Fatal("name mismatch")
	}
	for i := 0; i < 3; i++ {
		if err := c.Execute(st, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.int("counter"); got != 3 {
		t.Fatalf("counter=%d want 3", got)
	}
}
