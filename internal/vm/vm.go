// Package vm implements a small stack-machine contract runtime.
//
// The paper executes contracts inside an EVM, whose essential property
// is that read/write sets are indeterminate before execution. This VM
// reproduces that property with a fraction of the surface: programs
// are Turing-complete (conditional branches over an integer stack),
// construct storage keys dynamically from arguments, and perform
// <Read,K> / <Write,K,V> operations through the same contract.State
// accessor native contracts use — so the Concurrent Executor treats
// both identically.
//
// A step budget bounds runaway programs, playing the role of gas.
package vm

import (
	"encoding/binary"
	"errors"
	"fmt"

	"thunderbolt/internal/contract"
	"thunderbolt/internal/types"
)

// Opcode is one VM instruction.
type Opcode byte

// Instruction set. Immediates are big-endian and follow the opcode:
// Push carries 8 bytes; Jmp/Jz carry 4; SConst/SArg carry 2.
const (
	OpHalt  Opcode = iota + 1 // stop successfully
	OpAbort                   // stop with a contract failure

	OpPush // push int64 immediate
	OpPop  // discard top
	OpDup  // duplicate top
	OpSwap // swap top two

	OpAdd // a b -> a+b
	OpSub // a b -> a-b
	OpMul // a b -> a*b
	OpDiv // a b -> a/b (division by zero aborts)
	OpNeg // a -> -a

	OpEq  // a b -> a==b (1/0)
	OpLt  // a b -> a<b
	OpGt  // a b -> a>b
	OpNot // a -> !a

	OpJmp // unconditional jump to absolute offset
	OpJz  // pop; jump if zero

	OpSConst // push string-pool constant onto string stack
	OpSArg   // push call argument onto string stack
	OpSCat   // s1 s2 -> s1+s2 on string stack

	OpArgI // push call argument decoded as int64 onto int stack

	OpLoad  // pop key from string stack; push int64 cell value
	OpStore // pop key from string stack, pop int64; write cell

	opMax
)

var opNames = map[Opcode]string{
	OpHalt: "halt", OpAbort: "abort", OpPush: "push", OpPop: "pop",
	OpDup: "dup", OpSwap: "swap", OpAdd: "add", OpSub: "sub",
	OpMul: "mul", OpDiv: "div", OpNeg: "neg", OpEq: "eq", OpLt: "lt",
	OpGt: "gt", OpNot: "not", OpJmp: "jmp", OpJz: "jz",
	OpSConst: "sconst", OpSArg: "sarg", OpSCat: "scat",
	OpArgI: "argi", OpLoad: "load", OpStore: "store",
}

func (o Opcode) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", byte(o))
}

// Program is a compiled contract: a byte-string constant pool plus
// bytecode. Programs travel inside Transaction.Code.
type Program struct {
	Consts [][]byte
	Code   []byte
}

// MarshalBinary encodes the program for embedding in a transaction.
func (p *Program) MarshalBinary() ([]byte, error) {
	e := types.NewEncoder()
	e.U32(uint32(len(p.Consts)))
	for _, c := range p.Consts {
		e.Bytes(c)
	}
	e.Bytes(p.Code)
	return e.Sum(), nil
}

// UnmarshalBinary decodes a program.
func (p *Program) UnmarshalBinary(b []byte) error {
	d := types.NewDecoder(b)
	n := d.U32()
	p.Consts = make([][]byte, 0, min(int(n), 4096))
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		p.Consts = append(p.Consts, d.Bytes())
	}
	p.Code = d.Bytes()
	return d.Finish()
}

// Limits bound one execution.
type Limits struct {
	// MaxSteps is the instruction budget (gas). Zero means the
	// DefaultMaxSteps budget.
	MaxSteps int
	// MaxStack bounds both stacks. Zero means DefaultMaxStack.
	MaxStack int
}

// Default execution budgets.
const (
	DefaultMaxSteps = 1 << 16
	DefaultMaxStack = 256
)

// Execution errors. ErrOutOfGas and friends are terminal contract
// failures; controller aborts pass through unchanged so the executor
// can retry.
var (
	ErrOutOfGas      = errors.New("vm: step budget exhausted")
	ErrStackOverflow = errors.New("vm: stack overflow")
	ErrStack         = errors.New("vm: stack underflow")
	ErrTruncated     = errors.New("vm: truncated instruction")
	ErrBadJump       = errors.New("vm: jump out of range")
)

// Run executes the program against st with the given arguments.
func Run(p *Program, st contract.State, args [][]byte, lim Limits) error {
	if lim.MaxSteps <= 0 {
		lim.MaxSteps = DefaultMaxSteps
	}
	if lim.MaxStack <= 0 {
		lim.MaxStack = DefaultMaxStack
	}
	m := machine{prog: p, st: st, args: args, lim: lim}
	return m.run()
}

type machine struct {
	prog *Program
	st   contract.State
	args [][]byte
	lim  Limits

	pc    int
	stack []int64
	sstk  [][]byte
}

func (m *machine) push(v int64) error {
	if len(m.stack) >= m.lim.MaxStack {
		return ErrStackOverflow
	}
	m.stack = append(m.stack, v)
	return nil
}

func (m *machine) pop() (int64, error) {
	if len(m.stack) == 0 {
		return 0, ErrStack
	}
	v := m.stack[len(m.stack)-1]
	m.stack = m.stack[:len(m.stack)-1]
	return v, nil
}

func (m *machine) spush(b []byte) error {
	if len(m.sstk) >= m.lim.MaxStack {
		return ErrStackOverflow
	}
	m.sstk = append(m.sstk, b)
	return nil
}

func (m *machine) spop() ([]byte, error) {
	if len(m.sstk) == 0 {
		return nil, ErrStack
	}
	v := m.sstk[len(m.sstk)-1]
	m.sstk = m.sstk[:len(m.sstk)-1]
	return v, nil
}

func (m *machine) imm(n int) ([]byte, error) {
	if m.pc+n > len(m.prog.Code) {
		return nil, ErrTruncated
	}
	b := m.prog.Code[m.pc : m.pc+n]
	m.pc += n
	return b, nil
}

func (m *machine) run() error {
	code := m.prog.Code
	for steps := 0; ; steps++ {
		if steps >= m.lim.MaxSteps {
			return fmt.Errorf("%w: %w", contract.ErrContractFailure, ErrOutOfGas)
		}
		if m.pc >= len(code) {
			return nil // falling off the end halts
		}
		op := Opcode(code[m.pc])
		m.pc++
		if err := m.step(op); err != nil {
			if errors.Is(err, contract.ErrAborted) || errors.Is(err, contract.ErrContractFailure) {
				return err
			}
			return fmt.Errorf("%w: pc=%d op=%s: %w", contract.ErrContractFailure, m.pc-1, op, err)
		}
		if op == OpHalt {
			return nil
		}
	}
}

func (m *machine) step(op Opcode) error {
	switch op {
	case OpHalt:
		return nil
	case OpAbort:
		return contract.Failf("vm: explicit abort at pc=%d", m.pc-1)
	case OpPush:
		b, err := m.imm(8)
		if err != nil {
			return err
		}
		return m.push(int64(binary.BigEndian.Uint64(b)))
	case OpPop:
		_, err := m.pop()
		return err
	case OpDup:
		v, err := m.pop()
		if err != nil {
			return err
		}
		if err := m.push(v); err != nil {
			return err
		}
		return m.push(v)
	case OpSwap:
		a, err := m.pop()
		if err != nil {
			return err
		}
		b, err := m.pop()
		if err != nil {
			return err
		}
		if err := m.push(a); err != nil {
			return err
		}
		return m.push(b)
	case OpAdd, OpSub, OpMul, OpDiv, OpEq, OpLt, OpGt:
		b, err := m.pop()
		if err != nil {
			return err
		}
		a, err := m.pop()
		if err != nil {
			return err
		}
		var r int64
		switch op {
		case OpAdd:
			r = a + b
		case OpSub:
			r = a - b
		case OpMul:
			r = a * b
		case OpDiv:
			if b == 0 {
				return errors.New("division by zero")
			}
			r = a / b
		case OpEq:
			r = b2i(a == b)
		case OpLt:
			r = b2i(a < b)
		case OpGt:
			r = b2i(a > b)
		}
		return m.push(r)
	case OpNeg:
		v, err := m.pop()
		if err != nil {
			return err
		}
		return m.push(-v)
	case OpNot:
		v, err := m.pop()
		if err != nil {
			return err
		}
		return m.push(b2i(v == 0))
	case OpJmp:
		b, err := m.imm(4)
		if err != nil {
			return err
		}
		return m.jump(int(binary.BigEndian.Uint32(b)))
	case OpJz:
		b, err := m.imm(4)
		if err != nil {
			return err
		}
		v, err := m.pop()
		if err != nil {
			return err
		}
		if v == 0 {
			return m.jump(int(binary.BigEndian.Uint32(b)))
		}
		return nil
	case OpSConst:
		b, err := m.imm(2)
		if err != nil {
			return err
		}
		i := int(binary.BigEndian.Uint16(b))
		if i >= len(m.prog.Consts) {
			return fmt.Errorf("const index %d out of range", i)
		}
		return m.spush(m.prog.Consts[i])
	case OpSArg:
		b, err := m.imm(2)
		if err != nil {
			return err
		}
		i := int(binary.BigEndian.Uint16(b))
		if i >= len(m.args) {
			return fmt.Errorf("arg index %d out of range", i)
		}
		return m.spush(m.args[i])
	case OpSCat:
		b, err := m.spop()
		if err != nil {
			return err
		}
		a, err := m.spop()
		if err != nil {
			return err
		}
		cat := make([]byte, 0, len(a)+len(b))
		cat = append(cat, a...)
		cat = append(cat, b...)
		return m.spush(cat)
	case OpArgI:
		b, err := m.imm(2)
		if err != nil {
			return err
		}
		i := int(binary.BigEndian.Uint16(b))
		if i >= len(m.args) {
			return fmt.Errorf("arg index %d out of range", i)
		}
		v, err := contract.DecodeInt64(m.args[i])
		if err != nil {
			return err
		}
		return m.push(v)
	case OpLoad:
		k, err := m.spop()
		if err != nil {
			return err
		}
		v, err := contract.ReadInt64(m.st, types.Key(k))
		if err != nil {
			return err
		}
		return m.push(v)
	case OpStore:
		k, err := m.spop()
		if err != nil {
			return err
		}
		v, err := m.pop()
		if err != nil {
			return err
		}
		return contract.WriteInt64(m.st, types.Key(k), v)
	default:
		return fmt.Errorf("unknown opcode %d", byte(op))
	}
}

func (m *machine) jump(to int) error {
	if to < 0 || to > len(m.prog.Code) {
		return ErrBadJump
	}
	m.pc = to
	return nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// VMContract adapts a Program to the contract.Contract interface so
// bytecode can be registered under a name like any native contract.
type VMContract struct {
	ContractName string
	Prog         *Program
	Lim          Limits
}

// Name implements contract.Contract.
func (c *VMContract) Name() string { return c.ContractName }

// Execute implements contract.Contract.
func (c *VMContract) Execute(st contract.State, args [][]byte) error {
	return Run(c.Prog, st, args, c.Lim)
}
