package vm

import (
	"thunderbolt/internal/contract"
	"thunderbolt/internal/types"
)

// ExecuteTx runs a transaction's contract against st: embedded
// bytecode (Transaction.Code) takes precedence, otherwise the named
// contract is resolved from reg. This is the single execution entry
// point shared by the Concurrent Executor, the baselines, validators,
// and serial replay — guaranteeing all of them interpret a
// transaction identically.
func ExecuteTx(reg *contract.Registry, st contract.State, tx *types.Transaction) error {
	if len(tx.Code) > 0 {
		var p Program
		if err := p.UnmarshalBinary(tx.Code); err != nil {
			return contract.Failf("vm: undecodable program: %v", err)
		}
		return Run(&p, st, tx.Args, Limits{})
	}
	c, ok := reg.Lookup(tx.Contract)
	if !ok {
		return contract.Failf("vm: unknown contract %q", tx.Contract)
	}
	return c.Execute(st, tx.Args)
}
