// Package bench regenerates every table and figure of the paper's
// evaluation (§11–§12). Each FigNN function runs the experiment and
// returns rows matching the series the paper plots; cmd/bench and the
// root bench_test.go drive them.
//
// Absolute numbers depend on the host (the paper used one AWS
// c5.9xlarge per replica; this harness colocates every replica in one
// process), so EXPERIMENTS.md compares shapes: who wins, by what
// factor, and where curves cross.
package bench

import (
	"crypto/sha256"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"thunderbolt/internal/ce"
	"thunderbolt/internal/cluster"
	"thunderbolt/internal/contract"
	"thunderbolt/internal/depgraph"
	"thunderbolt/internal/node"
	"thunderbolt/internal/occ"
	"thunderbolt/internal/storage"
	"thunderbolt/internal/tpl"
	"thunderbolt/internal/transport"
	"thunderbolt/internal/types"
	"thunderbolt/internal/workload"
)

// Row is one data point of one figure series.
type Row struct {
	Figure    string
	Series    string
	X         string
	TPS       float64
	LatencyMS float64
	// Reexec is the mean number of re-executions per transaction
	// (Figures 11's abort metric); NaN-free zero when not measured.
	Reexec float64
}

// Options tunes run length. Quick shrinks sweeps for CI; Full is the
// paper-shaped sweep.
type Options struct {
	Quick bool
	// Seed decorrelates repeated runs.
	Seed int64
	// SpecExecDepth is forwarded to every cluster scenario
	// (node.Config.SpecExecDepth): 0 = node default (speculation on),
	// negative disables — cmd/bench's -spec=false escape hatch.
	SpecExecDepth int
}

// workFactor adds deterministic CPU cost around every state access,
// standing in for EVM interpretation overhead (the paper executes
// inside eEVM). Without it, native SmallBank is so cheap that
// coordination hides execution entirely: at ~16 hashes per access one
// state touch costs a few microseconds, which is still well below an
// interpreted SLOAD but enough that executor comparisons measure
// conflict handling rather than raw bookkeeping constants.
const workFactor = 16

func spin() {
	var b [32]byte
	for i := 0; i < workFactor; i++ {
		b = sha256.Sum256(b[:])
	}
	_ = b
}

// yieldState interposes on contract state accesses: it burns the
// synthetic EVM cost and yields the processor at every access
// boundary. The yield matters on small hosts: true multi-core
// interleaving is what exposes concurrency-control conflicts, and
// cooperative yields reproduce that interleaving faithfully when
// replicas are colocated on few cores (see EXPERIMENTS.md, setup
// notes).
type yieldState struct{ inner contract.State }

func (y yieldState) Read(k types.Key) (types.Value, error) {
	spin()
	runtime.Gosched()
	return y.inner.Read(k)
}

func (y yieldState) Write(k types.Key, v types.Value) error {
	spin()
	runtime.Gosched()
	return y.inner.Write(k, v)
}

// slowRegistry wraps every SmallBank contract with the synthetic
// execution cost and access-boundary yields.
func slowRegistry() *contract.Registry {
	inner := contract.NewRegistry()
	workload.RegisterSmallBank(inner)
	outer := contract.NewRegistry()
	for _, name := range inner.Names() {
		c, _ := inner.Lookup(name)
		cc := c
		outer.MustRegister(contract.Func{ContractName: name, Fn: func(st contract.State, args [][]byte) error {
			return cc.Execute(yieldState{inner: st}, args)
		}})
	}
	return outer
}

// --- Executor-level experiments (Figures 11 and 12) ---

// execProto names the three §11 protocols.
type execProto string

const (
	protoCE  execProto = "Thunderbolt"
	protoOCC execProto = "OCC"
	protoTPL execProto = "2PL-NoWait"
)

// runExecutorBench runs `batches` batches of `batch` transactions
// through one protocol and reports throughput, mean per-batch
// latency, mean re-executions per transaction, and the committed
// count.
func runExecutorBench(p execProto, executors, batch, accounts int, theta, pr float64,
	batches int, seed int64) (tps, latencyMS, reexec float64, total int) {
	reg := slowRegistry()
	store := storage.New()
	workload.InitAccounts(store, accounts, 10_000, 10_000)
	gen := workload.NewGenerator(workload.Config{
		Accounts: accounts, Shards: 1, Theta: theta, ReadRatio: pr, Seed: seed, Client: 1,
	})
	base := func(k types.Key) types.Value {
		v, _ := store.Get(k)
		return v
	}

	// Executors are hoisted out of the batch loop, as in a real
	// proposer: the CE session keeps its graph arena warm and carries
	// each batch's committed tips into the next (the applied writes
	// below are exactly those tips, so the carry stays truthful).
	var (
		committed int
		rexecs    uint64
		elapsed   time.Duration
	)
	ceSess := ce.New(ce.Config{Executors: executors, Registry: reg}).NewSession()
	occExec := occ.New(occ.Config{Executors: executors, Registry: reg})
	tplExec := tpl.New(tpl.Config{Executors: executors, Registry: reg})
	for b := 0; b < batches; b++ {
		txs := gen.Batch(batch)
		start := time.Now()
		switch p {
		case protoCE:
			res := ceSess.ExecuteBatch(depgraph.BaseReader(base), txs)
			elapsed += time.Since(start)
			committed += len(res.Schedule)
			rexecs += res.Reexecutions
			// Persist so the next batch builds on it, like a proposer's
			// speculative state.
			var writes []types.RWRecord
			for i := range res.Results {
				writes = append(writes, res.Results[i].WriteSet...)
			}
			store.Apply(writes)
		case protoOCC:
			res := occExec.ExecuteBatch(store, txs)
			elapsed += time.Since(start)
			committed += len(res.Schedule)
			rexecs += res.Reexecutions
		case protoTPL:
			res := tplExec.ExecuteBatch(store, txs)
			elapsed += time.Since(start)
			committed += len(res.Schedule)
			rexecs += res.Reexecutions
		}
	}
	if committed == 0 || elapsed == 0 {
		return 0, 0, 0, 0
	}
	tps = float64(committed) / elapsed.Seconds()
	latencyMS = (elapsed / time.Duration(batches)).Seconds() * 1000
	reexec = float64(rexecs) / float64(committed)
	return tps, latencyMS, reexec, committed
}

func executorSweep(fig string, pr float64, opt Options) []Row {
	executors := []int{1, 4, 8, 12, 16}
	batches := 8
	if opt.Quick {
		executors = []int{1, 4, 8, 16}
		batches = 3
	}
	var rows []Row
	for _, bsz := range []int{300, 500} {
		for _, p := range []execProto{protoCE, protoOCC, protoTPL} {
			series := fmt.Sprintf("%s-b%d", p, bsz)
			for _, ex := range executors {
				tps, lat, re, _ := runExecutorBench(p, ex, bsz, 10_000, 0.85, pr, batches, opt.Seed+int64(ex))
				rows = append(rows, Row{Figure: fig, Series: series,
					X: fmt.Sprintf("%d", ex), TPS: tps, LatencyMS: lat, Reexec: re})
			}
		}
	}
	return rows
}

// Fig11a: read-write balanced workload (Pr = 0.5), executors 1–16.
func Fig11a(opt Options) []Row { return executorSweep("11a", 0.5, opt) }

// Fig11b: update-only workload (Pr = 0), executors 1–16.
func Fig11b(opt Options) []Row { return executorSweep("11b", 0.0, opt) }

// Fig12 sweeps θ (a,b) at Pr=0.5 and Pr (c,d) at θ=0.85, with the
// paper's two batch sizes and the peak executor count.
func Fig12(opt Options) []Row {
	executors := 16
	batches := 8
	if opt.Quick {
		batches = 3
	}
	var rows []Row
	thetas := []float64{0.75, 0.80, 0.85, 0.90}
	prs := []float64{1, 0.8, 0.5, 0.1, 0}
	for _, bsz := range []int{300, 500} {
		for _, p := range []execProto{protoCE, protoOCC, protoTPL} {
			series := fmt.Sprintf("%s-b%d", p, bsz)
			for _, th := range thetas {
				tps, lat, re, _ := runExecutorBench(p, executors, bsz, 10_000, th, 0.5, batches, opt.Seed)
				rows = append(rows, Row{Figure: "12ab", Series: series,
					X: fmt.Sprintf("θ=%.2f", th), TPS: tps, LatencyMS: lat, Reexec: re})
			}
			for _, pr := range prs {
				tps, lat, re, _ := runExecutorBench(p, executors, bsz, 10_000, 0.85, pr, batches, opt.Seed)
				rows = append(rows, Row{Figure: "12cd", Series: series,
					X: fmt.Sprintf("Pr=%.1f", pr), TPS: tps, LatencyMS: lat, Reexec: re})
			}
		}
	}
	return rows
}

// --- System-level experiments (Figures 13–17) ---

// runCluster spins up a committee, drives closed-loop load, and
// returns the report.
func runCluster(cfg cluster.Config, lc cluster.LoadConfig) (cluster.Report, *cluster.Cluster, error) {
	c, err := cluster.New(cfg)
	if err != nil {
		return cluster.Report{}, nil, err
	}
	c.Start()
	rep := c.RunLoad(lc)
	return rep, c, nil
}

func modeName(m node.ExecutionMode) string {
	switch m {
	case node.ModeCE:
		return "Thunderbolt"
	case node.ModeOCC:
		return "Thunderbolt-OCC"
	default:
		return "Tusk"
	}
}

// Fig13 scales the committee over LAN and WAN latency models for the
// three systems.
func Fig13(opt Options) []Row {
	ns := []int{8, 16, 32, 64}
	dur := 4 * time.Second
	nets := []struct {
		name string
		lm   transport.LatencyModel
	}{{"LAN", transport.LANModel()}, {"WAN", transport.WANModel()}}
	if opt.Quick {
		ns = []int{4, 8, 16}
		dur = 1500 * time.Millisecond
		nets = nets[:1]
	}
	var rows []Row
	for _, net := range nets {
		for _, m := range []node.ExecutionMode{node.ModeCE, node.ModeOCC, node.ModeSerial} {
			for _, n := range ns {
				rep, c, err := runCluster(cluster.Config{
					N: n, Mode: m, Latency: net.lm, Accounts: 1000,
					BatchSize: 500, Executors: 16, Validators: 16, Seed: opt.Seed,
				}, cluster.LoadConfig{
					Duration: dur, Clients: 8 * n,
					Workload:   workload.Config{Theta: 0.85, ReadRatio: 0.5},
					RetryEvery: 5 * time.Second, Timeout: 60 * time.Second,
				})
				if err != nil {
					continue
				}
				c.Stop()
				rows = append(rows, Row{Figure: "13-" + net.name, Series: modeName(m),
					X: fmt.Sprintf("%d", n), TPS: rep.TPS,
					LatencyMS: rep.Latency.Mean.Seconds() * 1000})
			}
		}
	}
	return rows
}

// Fig14 sweeps the cross-shard percentage on a 16-replica committee.
func Fig14(opt Options) []Row {
	n := 16
	dur := 4 * time.Second
	pcts := []float64{0, 0.04, 0.08, 0.20, 0.60, 1.00}
	if opt.Quick {
		n = 8
		dur = 1500 * time.Millisecond
		pcts = []float64{0, 0.08, 0.60, 1.00}
	}
	var rows []Row
	for _, m := range []node.ExecutionMode{node.ModeCE, node.ModeOCC, node.ModeSerial} {
		for _, p := range pcts {
			rep, c, err := runCluster(cluster.Config{
				N: n, Mode: m, Accounts: 1000,
				BatchSize: 500, Executors: 16, Validators: 16, Seed: opt.Seed,
			}, cluster.LoadConfig{
				Duration: dur, Clients: 8 * n,
				Workload:   workload.Config{Theta: 0.85, ReadRatio: 0.5, CrossPct: p},
				RetryEvery: 5 * time.Second, Timeout: 60 * time.Second,
			})
			if err != nil {
				continue
			}
			c.Stop()
			rows = append(rows, Row{Figure: "14", Series: modeName(m),
				X: fmt.Sprintf("%.0f%%", p*100), TPS: rep.TPS,
				LatencyMS: rep.Latency.Mean.Seconds() * 1000})
		}
	}
	return rows
}

// Fig15 sweeps the reconfiguration period K' on an 8-replica committee.
func Fig15(opt Options) []Row {
	kprimes := []int{10, 100, 500, 1000, 5000}
	dur := 4 * time.Second
	if opt.Quick {
		kprimes = []int{10, 100, 1000}
		dur = 1500 * time.Millisecond
	}
	var rows []Row
	for _, kp := range kprimes {
		rep, c, err := runCluster(cluster.Config{
			N: 8, Mode: node.ModeCE, Accounts: 1000,
			BatchSize: 500, Executors: 16, Validators: 16,
			KPrime: kp, Seed: opt.Seed,
		}, cluster.LoadConfig{
			Duration: dur, Clients: 64,
			Workload:   workload.Config{Theta: 0.85, ReadRatio: 0.5},
			RetryEvery: 1 * time.Second, Timeout: 60 * time.Second,
		})
		if err != nil {
			continue
		}
		c.Stop()
		rows = append(rows, Row{Figure: "15", Series: "Thunderbolt",
			X: fmt.Sprintf("K'=%d", kp), TPS: rep.TPS,
			LatencyMS: rep.Latency.Mean.Seconds() * 1000})
	}
	return rows
}

// Fig16 runs with K'=300 and reports the mean commit-wave runtime per
// bucket of 100 waves, demonstrating commits never stall across
// reconfigurations.
func Fig16(opt Options) []Row {
	dur := 8 * time.Second
	kp := 300
	if opt.Quick {
		dur = 2 * time.Second
		kp = 60
	}
	c, err := cluster.New(cluster.Config{
		N: 8, Mode: node.ModeCE, Accounts: 1000,
		BatchSize: 500, Executors: 16, Validators: 16,
		KPrime: kp, Seed: opt.Seed,
	})
	if err != nil {
		return nil
	}
	c.Start()
	_ = c.RunLoad(cluster.LoadConfig{
		Duration: dur, Clients: 64,
		Workload:   workload.Config{Theta: 0.85, ReadRatio: 0.5},
		RetryEvery: 1 * time.Second, Timeout: 60 * time.Second,
	})
	reconfigs := c.Reconfigurations()
	buckets := c.WaveSeries().BucketMeans(100)
	c.Stop()
	var rows []Row
	for i, mean := range buckets {
		rows = append(rows, Row{Figure: "16", Series: fmt.Sprintf("runtime (K'=%d, %d reconfigs)", kp, reconfigs),
			X: fmt.Sprintf("waves %d-%d", i*100, i*100+99), LatencyMS: mean * 1000})
	}
	return rows
}

// Fig17 repeats the cross-shard sweep with f crashed replicas.
func Fig17(opt Options) []Row {
	n := 16
	dur := 4 * time.Second
	pcts := []float64{0, 0.04, 0.08, 0.20, 0.60, 1.00}
	fails := []int{1, 2}
	if opt.Quick {
		n = 8
		dur = 1500 * time.Millisecond
		pcts = []float64{0, 0.20, 1.00}
		fails = []int{1}
	}
	var rows []Row
	for _, f := range fails {
		for _, p := range pcts {
			c, err := cluster.New(cluster.Config{
				N: n, Mode: node.ModeCE, Accounts: 1000,
				BatchSize: 500, Executors: 16, Validators: 16,
				K: 20, Seed: opt.Seed,
			})
			if err != nil {
				continue
			}
			c.Start()
			for i := 0; i < f; i++ {
				c.Network().Crash(types.ReplicaID(n - 1 - i))
			}
			rep := c.RunLoad(cluster.LoadConfig{
				Duration: dur, Clients: 8 * n,
				Workload:   workload.Config{Theta: 0.85, ReadRatio: 0.5, CrossPct: p},
				RetryEvery: 2 * time.Second, Timeout: 60 * time.Second,
			})
			c.Stop()
			rows = append(rows, Row{Figure: "17", Series: fmt.Sprintf("Thunderbolt/f=%d", f),
				X: fmt.Sprintf("%.0f%%", p*100), TPS: rep.TPS,
				LatencyMS: rep.Latency.Mean.Seconds() * 1000})
		}
	}
	return rows
}

// All runs every figure.
func All(opt Options) []Row {
	var rows []Row
	rows = append(rows, Fig11a(opt)...)
	rows = append(rows, Fig11b(opt)...)
	rows = append(rows, Fig12(opt)...)
	rows = append(rows, Fig13(opt)...)
	rows = append(rows, Fig14(opt)...)
	rows = append(rows, Fig15(opt)...)
	rows = append(rows, Fig16(opt)...)
	rows = append(rows, Fig17(opt)...)
	return rows
}

// Format renders rows as aligned per-figure tables.
func Format(rows []Row) string {
	byFig := map[string][]Row{}
	var figs []string
	for _, r := range rows {
		if _, ok := byFig[r.Figure]; !ok {
			figs = append(figs, r.Figure)
		}
		byFig[r.Figure] = append(byFig[r.Figure], r)
	}
	sort.Strings(figs)
	var b strings.Builder
	for _, fig := range figs {
		fmt.Fprintf(&b, "== Figure %s ==\n", fig)
		fmt.Fprintf(&b, "%-28s %-10s %12s %12s %10s\n", "series", "x", "tps", "latency_ms", "reexec/tx")
		for _, r := range byFig[fig] {
			fmt.Fprintf(&b, "%-28s %-10s %12.0f %12.2f %10.3f\n",
				r.Series, r.X, r.TPS, r.LatencyMS, r.Reexec)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
