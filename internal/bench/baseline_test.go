package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestBaselineValidateCatchesDeadRows checks the CI gate: zero
// throughput or an empty matrix must fail validation.
func TestBaselineValidateCatchesDeadRows(t *testing.T) {
	if err := (BaselineReport{}).Validate(); err == nil {
		t.Fatal("empty report validated")
	}
	rep := BaselineReport{Scenarios: []BaselineRow{
		{Scenario: "ok", TPS: 100, Committed: 10},
		{Scenario: "dead", TPS: 0, Committed: 0},
	}}
	err := rep.Validate()
	if err == nil || !strings.Contains(err.Error(), "dead") {
		t.Fatalf("zero-throughput row not flagged: %v", err)
	}
	rep.Scenarios = rep.Scenarios[:1]
	if err := rep.Validate(); err != nil {
		t.Fatalf("healthy report rejected: %v", err)
	}
}

// TestBaselineJSONRoundTrips checks the BENCH file schema is stable
// under encode/decode.
func TestBaselineJSONRoundTrips(t *testing.T) {
	rep := BaselineReport{
		Version: 1, Created: "2026-07-30T00:00:00Z", Seed: 42, Quick: true, GoMaxProcs: 1,
		Scenarios: []BaselineRow{{
			Scenario: "cluster-lan-n4-ce", TPS: 1500, LatencyMS: 19.5,
			ReexecPerTx: 0.01, AllocsPerTx: 400, HeapInuseBytes: 1 << 20, Committed: 2250,
		}},
	}
	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back BaselineReport
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatal(err)
	}
	if back.Version != 1 || len(back.Scenarios) != 1 || back.Scenarios[0].TPS != 1500 {
		t.Fatalf("round trip mangled the report: %+v", back)
	}
	for _, field := range []string{"scenario", "tps", "latency_ms", "reexec_per_tx",
		"allocs_per_tx", "heap_inuse_bytes", "committed", "gomaxprocs"} {
		if !strings.Contains(string(js), field) {
			t.Fatalf("JSON missing field %q:\n%s", field, js)
		}
	}
}

// TestBaselineVersionFromPath checks the BENCH sequence number is
// derived from the output filename, not hardcoded.
func TestBaselineVersionFromPath(t *testing.T) {
	for path, want := range map[string]int{
		"BENCH_1.json":        1,
		"BENCH_7.json":        7,
		"/repo/BENCH_12.json": 12,
		"bench-out.json":      1,
		"BENCH_0.json":        1,
		"prefixBENCH_3.json":  3,
		"BENCH_3.json.bak":    1,
	} {
		if got := BaselineVersion(path); got != want {
			t.Fatalf("BaselineVersion(%q) = %d, want %d", path, got, want)
		}
	}
}
