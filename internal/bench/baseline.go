package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"thunderbolt/internal/ce"
	"thunderbolt/internal/cluster"
	"thunderbolt/internal/depgraph"
	"thunderbolt/internal/metrics"
	"thunderbolt/internal/node"
	"thunderbolt/internal/storage"
	"thunderbolt/internal/transport"
	"thunderbolt/internal/types"
	"thunderbolt/internal/workload"
)

// The baseline pipeline emits the machine-readable perf trajectory
// (BENCH_<n>.json at the repo root): one row per scenario with
// throughput, latency, re-execution rate, allocation rate, and heap
// footprint. Every future performance PR regenerates the file under
// the same quick profile and is judged against the previous one.

// BaselineRow is one scenario's measurement.
type BaselineRow struct {
	Scenario  string  `json:"scenario"`
	TPS       float64 `json:"tps"`
	LatencyMS float64 `json:"latency_ms"`
	// ReexecPerTx is mean preplay re-executions per committed
	// transaction (abort pressure), where the scenario measures it.
	ReexecPerTx float64 `json:"reexec_per_tx"`
	// AllocsPerTx is heap allocations per committed transaction over
	// the whole process during the run window (clients, network, and
	// all replicas included — a trajectory metric, not a micro-bench).
	AllocsPerTx float64 `json:"allocs_per_tx"`
	// HeapInuseBytes is the scenario's post-run, post-GC live-heap
	// growth over its pre-run baseline, sampled while the system under
	// test is still up — the steady-state footprint the scenario adds.
	HeapInuseBytes uint64 `json:"heap_inuse_bytes"`
	Committed      uint64 `json:"committed"`
	// Stages is the per-stage commit-path breakdown (cluster scenarios
	// only), keyed by stage histogram name (metrics.StageNames), merged
	// across replicas. Quantiles are log₂-bucket upper bounds, so each
	// overestimates its true quantile by at most 2×.
	Stages map[string]StageSummary `json:"stages,omitempty"`
	// Spec is the speculative-execution outcome (cluster scenarios
	// only), summed across replicas: how often the certified-block
	// predictions held (results installed off the critical path) versus
	// rolled back. Serial mode and -spec=false runs report zeros.
	Spec *SpecSummary `json:"spec,omitempty"`
}

// SpecSummary is a cluster scenario's speculation outcome.
type SpecSummary struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// HitRate is hits/(hits+misses); 0 when speculation never engaged.
	HitRate float64 `json:"hit_rate"`
}

// StageSummary is one pipeline stage's latency reduction.
type StageSummary struct {
	Count uint64  `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
}

// BaselineReport is the full BENCH file payload.
type BaselineReport struct {
	// Version is the BENCH file sequence number (BENCH_1.json → 1).
	Version    int           `json:"version"`
	Created    string        `json:"created"`
	Seed       int64         `json:"seed"`
	Quick      bool          `json:"quick"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Scenarios  []BaselineRow `json:"scenarios"`
}

// Validate fails on rows a healthy run cannot produce; the CI bench
// smoke job turns this into a red build.
func (r BaselineReport) Validate() error {
	if len(r.Scenarios) == 0 {
		return fmt.Errorf("bench: baseline produced no scenarios")
	}
	for _, row := range r.Scenarios {
		if row.TPS <= 0 || row.Committed == 0 {
			return fmt.Errorf("bench: scenario %q reports zero throughput (tps=%.2f committed=%d)",
				row.Scenario, row.TPS, row.Committed)
		}
		if err := row.validateStages(); err != nil {
			return err
		}
	}
	return nil
}

// validateStages sanity-checks a cluster row's per-stage breakdown:
// every recorded stage carries samples, and the block-path stage p50s
// sum to something commensurate with the end-to-end submit→ack leg.
// The bound is deliberately loose — stage quantiles are bucket upper
// bounds (≤2× each) and queueing makes stages overlap rather than add
// — so only a nonsensical breakdown (stages wildly exceeding the
// pipeline they decompose) fails it.
func (row BaselineRow) validateStages() error {
	if len(row.Stages) == 0 {
		return nil
	}
	var blockP50Sum float64
	for name, s := range row.Stages {
		if s.Count == 0 {
			return fmt.Errorf("bench: scenario %q stage %q recorded no samples", row.Scenario, name)
		}
		if s.P50MS < 0 || s.P99MS < 0 || s.P50MS > s.P99MS {
			return fmt.Errorf("bench: scenario %q stage %q has inconsistent quantiles (p50=%.3f p99=%.3f)",
				row.Scenario, name, s.P50MS, s.P99MS)
		}
		if name != metrics.StageSubmitAck {
			blockP50Sum += s.P50MS
		}
	}
	e2e, ok := row.Stages[metrics.StageSubmitAck]
	if !ok {
		return fmt.Errorf("bench: scenario %q breakdown is missing the %s stage", row.Scenario, metrics.StageSubmitAck)
	}
	if blockP50Sum > 8*e2e.P99MS {
		return fmt.Errorf("bench: scenario %q stage p50 sum %.3fms is inconsistent with submit→ack p99 %.3fms",
			row.Scenario, blockP50Sum, e2e.P99MS)
	}
	return nil
}

// JSON renders the report with stable field order and trailing newline.
func (r BaselineReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// FormatBaseline renders the report as an aligned table.
func FormatBaseline(r BaselineReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Baseline (BENCH_%d, quick=%v, seed=%d, gomaxprocs=%d) ==\n",
		r.Version, r.Quick, r.Seed, r.GoMaxProcs)
	fmt.Fprintf(&b, "%-24s %10s %12s %10s %12s %14s\n",
		"scenario", "tps", "latency_ms", "reexec/tx", "allocs/tx", "heap_inuse")
	for _, row := range r.Scenarios {
		fmt.Fprintf(&b, "%-24s %10.0f %12.2f %10.3f %12.1f %14d\n",
			row.Scenario, row.TPS, row.LatencyMS, row.ReexecPerTx, row.AllocsPerTx, row.HeapInuseBytes)
		for _, name := range metrics.StageNames {
			if s, ok := row.Stages[name]; ok {
				fmt.Fprintf(&b, "  %-28s n=%-8d p50≤%.3fms p99≤%.3fms\n", name, s.Count, s.P50MS, s.P99MS)
			}
		}
		if row.Spec != nil {
			fmt.Fprintf(&b, "  %-28s hits=%-6d misses=%-6d hit_rate=%.3f\n",
				"speculation", row.Spec.Hits, row.Spec.Misses, row.Spec.HitRate)
		}
	}
	return b.String()
}

// memProbe samples allocation counters around a run window. Both
// edges run a full GC first so dead state from earlier scenarios
// cannot bleed into this one's numbers. Growth is measured on post-GC
// HeapAlloc (live object bytes), not HeapInuse: span accounting keeps
// fragmentation from earlier scenarios' churn, which inflated the
// start edge past a small scenario's whole live set and zeroed its
// growth (the old cluster-wan-n4-ce failure mode).
type memProbe struct {
	start runtime.MemStats
	// peak is the largest post-GC live heap any mid-window sample()
	// observed. finish() reports growth against the max of peak and
	// its own end-of-window reading, so scenarios whose live state is
	// released before the window closes (a cluster quiescing after
	// load, snapshot chunks dropped between passes) still report the
	// footprint they actually held, not the zero left after teardown.
	peak uint64
}

// gcSettle runs two back-to-back collections: sync.Pool contents (the
// codec's pooled encoders among them) survive one GC in a victim
// cache, so a single collection leaves the previous scenario's pools
// counted as live — inflating a probe's start edge by more than a
// small scenario's whole footprint.
func gcSettle() {
	runtime.GC()
	runtime.GC()
}

func startProbe() *memProbe {
	gcSettle()
	p := &memProbe{}
	runtime.ReadMemStats(&p.start)
	return p
}

// sample records a post-GC live-heap reading while the scenario's
// state is still retained. Call it at the scenario's steady-state
// point — for cluster rows at load-end and commit-quiesce, for
// snapshot rows while a capture's chunks are live — and outside any
// timed region (the forced GC would otherwise pollute the latency
// window).
func (p *memProbe) sample() {
	gcSettle()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	if m.HeapAlloc > p.peak {
		p.peak = m.HeapAlloc
	}
}

// finish returns allocations since start divided by committed, and
// the post-GC live-heap growth since start (using the largest of the
// end-of-window and mid-window samples).
func (p *memProbe) finish(committed uint64) (allocsPerTx float64, heapGrowth uint64) {
	gcSettle()
	var end runtime.MemStats
	runtime.ReadMemStats(&end)
	if committed > 0 {
		allocsPerTx = float64(end.Mallocs-p.start.Mallocs) / float64(committed)
	}
	live := end.HeapAlloc
	if p.peak > live {
		live = p.peak
	}
	if live > p.start.HeapAlloc {
		heapGrowth = live - p.start.HeapAlloc
	}
	return allocsPerTx, heapGrowth
}

// baselineExecutor measures one executor-level scenario.
// The executor comparison rows run the contended regime the paper's
// evaluation targets (§11: skewed access over a working set small
// enough that hot keys collide within a batch). Under low contention
// all three executors converge to raw per-access overhead and the
// comparison degenerates; under skew the dependency graph's
// no-re-execution conflict handling is what is being measured.
const (
	executorAccounts = 200
	executorTheta    = 0.95
)

func baselineExecutor(name string, p execProto, opt Options) BaselineRow {
	batches := 8
	if opt.Quick {
		batches = 3
	}
	probe := startProbe()
	tps, lat, re, total := runExecutorBench(p, 16, 500, executorAccounts, executorTheta, 0.5, batches, opt.Seed)
	committed := uint64(total)
	allocs, heap := probe.finish(committed)
	return BaselineRow{
		Scenario: name, TPS: tps, LatencyMS: lat, ReexecPerTx: re,
		AllocsPerTx: allocs, HeapInuseBytes: heap, Committed: committed,
	}
}

// baselineLayeredWave measures the known-footprint scheduling path:
// one discovery preplay pins the batch's read/write sets, then the
// same batch re-executes as topologically-sorted conflict-free waves
// (the validator re-check shape, and a proposer re-proposing a batch
// whose sets an earlier preplay discovered). The base store is not
// advanced between iterations, so the pinned footprints stay accurate
// and the row isolates pure wave-scheduling cost.
func baselineLayeredWave(name string, opt Options) BaselineRow {
	batches := 8
	if opt.Quick {
		batches = 3
	}
	const accounts = executorAccounts
	reg := slowRegistry()
	store := storage.New()
	workload.InitAccounts(store, accounts, 10_000, 10_000)
	gen := workload.NewGenerator(workload.Config{
		Accounts: accounts, Shards: 1, Theta: executorTheta, ReadRatio: 0.5, Seed: opt.Seed, Client: 1,
	})
	base := func(k types.Key) types.Value {
		v, _ := store.Get(k)
		return v
	}
	e := ce.New(ce.Config{Executors: 16, Registry: reg})
	txs := gen.Batch(500)
	pre := e.ExecuteBatch(depgraph.BaseReader(base), txs)
	accs := make([]depgraph.Access, len(pre.Schedule))
	for i := range pre.Results {
		for _, r := range pre.Results[i].ReadSet {
			accs[i].Reads = append(accs[i].Reads, r.Key)
		}
		for _, w := range pre.Results[i].WriteSet {
			accs[i].Writes = append(accs[i].Writes, w.Key)
		}
	}
	probe := startProbe()
	var (
		committed int
		rexecs    uint64
	)
	start := time.Now()
	for b := 0; b < batches; b++ {
		res := e.ExecuteLayered(depgraph.BaseReader(base), pre.Schedule, accs)
		committed += len(res.Schedule)
		rexecs += res.Reexecutions
	}
	elapsed := time.Since(start)
	allocs, heap := probe.finish(uint64(committed))
	row := BaselineRow{
		Scenario: name, AllocsPerTx: allocs,
		HeapInuseBytes: heap, Committed: uint64(committed),
	}
	if committed > 0 && elapsed > 0 {
		row.TPS = float64(committed) / elapsed.Seconds()
		row.LatencyMS = (elapsed / time.Duration(batches)).Seconds() * 1000
		row.ReexecPerTx = float64(rexecs) / float64(committed)
	}
	return row
}

// baselineCluster measures one system-level scenario.
func baselineCluster(name string, cfg cluster.Config, lc cluster.LoadConfig) (BaselineRow, error) {
	c, err := cluster.New(cfg)
	if err != nil {
		return BaselineRow{}, err
	}
	c.Start()
	probe := startProbe()
	rep := c.RunLoad(lc)
	// Sample the live heap twice and keep the max. At load-end the
	// in-flight state is at its peak — WAN rows hold seconds of queued
	// messages here that are fully drained by quiesce. At
	// commit-quiesce every replica has caught up to the same commit
	// count, so the DAG, dedup windows, commit logs, and store deltas
	// the run accumulated are all still retained. Sampling only after
	// Stop (as finish() alone would) reads the heap after teardown
	// released most of that state, which is how WAN rows — whose
	// replicas lag the load window's end — used to report
	// heap_inuse_bytes: 0.
	probe.sample()
	_ = c.WaitCommitCountsEqual(10 * time.Second)
	probe.sample()
	allocs, heap := probe.finish(rep.Committed)
	var reexec float64
	// Speculation counters are read post-quiesce from the live nodes —
	// waves committed after the load window closed still count.
	var specHits, specMisses uint64
	for i := 0; i < c.N(); i++ {
		if n := c.Node(i); n != nil {
			st := n.Stats()
			specHits += st.SpecHits
			specMisses += st.SpecMisses
		}
	}
	if rep.Committed > 0 {
		var re uint64
		for _, st := range rep.NodeStats {
			re += st.Reexecutions
		}
		reexec = float64(re) / float64(rep.Committed)
	}
	spec := &SpecSummary{Hits: specHits, Misses: specMisses}
	if total := specHits + specMisses; total > 0 {
		spec.HitRate = float64(specHits) / float64(total)
	}
	// Per-stage breakdown, merged across live replicas — read before
	// Stop tears the nodes down.
	stages := make(map[string]StageSummary, len(metrics.StageNames))
	for _, stage := range metrics.StageNames {
		s := c.MergedHistogram(stage)
		if s.Count == 0 {
			continue
		}
		stages[stage] = StageSummary{
			Count: s.Count,
			P50MS: s.Quantile(0.50).Seconds() * 1000,
			P99MS: s.Quantile(0.99).Seconds() * 1000,
		}
	}
	c.Stop()
	return BaselineRow{
		Scenario: name, TPS: rep.TPS,
		LatencyMS:   rep.Latency.Mean.Seconds() * 1000,
		ReexecPerTx: reexec, AllocsPerTx: allocs,
		HeapInuseBytes: heap, Committed: rep.Committed,
		Stages: stages, Spec: spec,
	}, nil
}

// baselineStorage measures raw backend apply throughput: sequential
// commit-shaped write batches (the exact stream the node's commit
// path produces — one ordered delta per committed block), reported as
// applied records/sec. Run for both backends, the pair prices the
// durable WAL's group-commit overhead against the in-memory store.
func baselineStorage(name string, mk func() (storage.Backend, func(), error), opt Options) (BaselineRow, error) {
	batches, batchSize := 4000, 64
	if opt.Quick {
		batches = 1000
	}
	st, cleanup, err := mk()
	if err != nil {
		return BaselineRow{}, err
	}
	defer cleanup()
	const keySpace = 4096
	writes := make([]types.RWRecord, batchSize)
	val := []byte("0123456789abcdef0123456789abcdef")
	probe := startProbe()
	start := time.Now()
	for b := 0; b < batches; b++ {
		for i := range writes {
			writes[i] = types.RWRecord{
				Key:   types.Key(workload.CheckingKey(workload.AccountName((b*batchSize + i) % keySpace))),
				Value: val,
			}
		}
		st.Apply(writes)
	}
	if err := st.Sync(); err != nil { // durability point inside the window
		return BaselineRow{}, err
	}
	elapsed := time.Since(start)
	records := uint64(batches) * uint64(batchSize)
	allocs, heap := probe.finish(records)
	return BaselineRow{
		Scenario:    name,
		TPS:         float64(records) / elapsed.Seconds(),
		LatencyMS:   elapsed.Seconds() * 1000 / float64(batches),
		AllocsPerTx: allocs, HeapInuseBytes: heap,
		Committed: records,
	}, nil
}

// snapshotBenchLedger seeds a SmallBank ledger for the snapshot rows
// (two records per account) and returns the store.
func snapshotBenchLedger(opt Options) (storage.Backend, int) {
	accounts := 100_000
	if opt.Quick {
		accounts = 50_000
	}
	st := storage.New()
	workload.InitAccounts(st, accounts, 10_000, 10_000)
	return st, accounts
}

// baselineSnapshotCapture measures the mid-epoch capture hot path —
// stream the committed ledger in key order through the chunk builder,
// digest every chunk, and fold the manifest digest — reported as
// ledger records/sec per capture pass. This is the per-boundary cost
// every replica pays each Config.SnapshotInterval committed leader
// rounds, so it must stay far below the interval's commit budget.
func baselineSnapshotCapture(name string, opt Options) (BaselineRow, error) {
	passes := 8
	if opt.Quick {
		passes = 4
	}
	st, _ := snapshotBenchLedger(opt)
	probe := startProbe()
	start := time.Now()
	var records uint64
	// live holds the final pass's chunk payloads so the probe can
	// sample the heap while a capture's output is still in flight —
	// the footprint a replica actually carries between cutting a
	// snapshot and serving it. Without it every pass's chunks die
	// before finish() GCs, and the row reported heap_inuse_bytes: 0.
	var live [][]byte
	for p := 0; p < passes; p++ {
		cb := types.NewChunkBuilder(types.DefaultChunkRecords, -1)
		st.Ascend(func(r types.RWRecord) bool {
			cb.Add(r.Key, r.Value)
			return true
		})
		chunks, digests, _, count := cb.Finish()
		if len(digests) == 0 || count == 0 {
			return BaselineRow{}, fmt.Errorf("bench: %s produced an empty manifest", name)
		}
		_ = types.MerkleFold(digests)
		records += uint64(count)
		live = chunks
	}
	elapsed := time.Since(start)
	// Sample outside the timed window with the capture's output still
	// live. The ledger needs pinning too: after the final Ascend the
	// store is otherwise unreachable, and the sample's GC would count
	// its collection as *negative* growth, hiding the chunks.
	probe.sample()
	runtime.KeepAlive(live)
	runtime.KeepAlive(st)
	allocs, heap := probe.finish(records)
	return BaselineRow{
		Scenario:    name,
		TPS:         float64(records) / elapsed.Seconds(),
		LatencyMS:   elapsed.Seconds() * 1000 / float64(passes),
		AllocsPerTx: allocs, HeapInuseBytes: heap,
		Committed: records,
	}, nil
}

// baselineSnapshotInstall measures the receiving side of a chunked
// rescue: verify every chunk payload against its manifest digest,
// decode the records, and apply them into a fresh store in one batch
// — ledger records/sec per full install.
func baselineSnapshotInstall(name string, opt Options) (BaselineRow, error) {
	passes := 8
	if opt.Quick {
		passes = 4
	}
	st, _ := snapshotBenchLedger(opt)
	cb := types.NewChunkBuilder(types.DefaultChunkRecords, -1)
	st.Ascend(func(r types.RWRecord) bool {
		cb.Add(r.Key, r.Value)
		return true
	})
	chunks, digests, _, count := cb.Finish()
	snap := &types.Snapshot{
		ChunkSize:    uint32(types.DefaultChunkRecords),
		RecordCount:  uint64(count),
		ChunkDigests: digests,
	}
	probe := startProbe()
	start := time.Now()
	var records uint64
	for p := 0; p < passes; p++ {
		writes := make([]types.RWRecord, 0, count)
		for i, payload := range chunks {
			recs, err := snap.VerifyChunk(i, payload)
			if err != nil {
				return BaselineRow{}, fmt.Errorf("bench: %s chunk %d: %w", name, i, err)
			}
			writes = append(writes, recs...)
		}
		target := storage.New()
		target.Apply(writes)
		records += uint64(len(writes))
	}
	elapsed := time.Since(start)
	allocs, heap := probe.finish(records)
	return BaselineRow{
		Scenario:    name,
		TPS:         float64(records) / elapsed.Seconds(),
		LatencyMS:   elapsed.Seconds() * 1000 / float64(passes),
		AllocsPerTx: allocs, HeapInuseBytes: heap,
		Committed: records,
	}, nil
}

// BaselineVersion extracts the BENCH sequence number from an output
// path like "BENCH_3.json"; paths without one default to 1.
func BaselineVersion(path string) int {
	if m := benchVersionRe.FindStringSubmatch(path); m != nil {
		if v, err := strconv.Atoi(m[1]); err == nil && v > 0 {
			return v
		}
	}
	return 1
}

var benchVersionRe = regexp.MustCompile(`BENCH_(\d+)\.json$`)

// RunBaseline runs the scenario matrix and assembles the report with
// the given BENCH sequence number.
func RunBaseline(opt Options, version int) (BaselineReport, error) {
	dur := 4 * time.Second
	if opt.Quick {
		dur = 1500 * time.Millisecond
	}
	rep := BaselineReport{
		Version: version, Created: time.Now().UTC().Format(time.RFC3339),
		Seed: opt.Seed, Quick: opt.Quick, GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	rep.Scenarios = append(rep.Scenarios,
		baselineExecutor("executor-ce-b500", protoCE, opt),
		baselineExecutor("executor-occ-b500", protoOCC, opt),
		baselineLayeredWave("sched-wave-b500", opt),
	)
	sys := []struct {
		name string
		cfg  cluster.Config
		lc   cluster.LoadConfig
	}{
		{
			name: "cluster-lan-n4-ce",
			cfg:  cluster.Config{N: 4, Mode: node.ModeCE, Seed: opt.Seed},
			lc:   cluster.LoadConfig{Workload: workload.Config{Theta: 0.85, ReadRatio: 0.5}},
		},
		{
			name: "cluster-lan-n4-serial",
			cfg:  cluster.Config{N: 4, Mode: node.ModeSerial, Seed: opt.Seed},
			lc:   cluster.LoadConfig{Workload: workload.Config{Theta: 0.85, ReadRatio: 0.5}},
		},
		{
			name: "cluster-wan-n4-ce",
			cfg:  cluster.Config{N: 4, Mode: node.ModeCE, Latency: transport.WANModel(), Seed: opt.Seed},
			lc:   cluster.LoadConfig{Workload: workload.Config{Theta: 0.85, ReadRatio: 0.5}},
		},
		{
			name: "cluster-cross20-n4-ce",
			cfg:  cluster.Config{N: 4, Mode: node.ModeCE, Seed: opt.Seed},
			lc:   cluster.LoadConfig{Workload: workload.Config{Theta: 0.85, ReadRatio: 0.5, CrossPct: 0.2}},
		},
		{
			name: "cluster-reconfig-n4-ce",
			cfg:  cluster.Config{N: 4, Mode: node.ModeCE, KPrime: 100, Seed: opt.Seed},
			lc:   cluster.LoadConfig{Workload: workload.Config{Theta: 0.85, ReadRatio: 0.5}},
		},
	}
	for _, s := range sys {
		s.cfg.Accounts = 1000
		s.cfg.BatchSize = 500
		s.cfg.Executors = 16
		s.cfg.Validators = 16
		s.cfg.SpecExecDepth = opt.SpecExecDepth
		s.lc.Duration = dur
		s.lc.Clients = 32
		s.lc.RetryEvery = 2 * time.Second
		s.lc.Timeout = 60 * time.Second
		row, err := baselineCluster(s.name, s.cfg, s.lc)
		if err != nil {
			return rep, fmt.Errorf("bench: scenario %s: %w", s.name, err)
		}
		rep.Scenarios = append(rep.Scenarios, row)
	}
	stores := []struct {
		name string
		mk   func() (storage.Backend, func(), error)
	}{
		{
			name: "storage-apply-mem",
			mk: func() (storage.Backend, func(), error) {
				return storage.New(), func() {}, nil
			},
		},
		{
			name: "storage-apply-wal",
			mk: func() (storage.Backend, func(), error) {
				dir, err := os.MkdirTemp("", "thunderbolt-bench-wal-")
				if err != nil {
					return nil, nil, err
				}
				d, err := storage.OpenDurable(storage.DurableOptions{Dir: dir})
				if err != nil {
					os.RemoveAll(dir)
					return nil, nil, err
				}
				return d, func() { _ = d.Close(); os.RemoveAll(dir) }, nil
			},
		},
	}
	for _, s := range stores {
		row, err := baselineStorage(s.name, s.mk, opt)
		if err != nil {
			return rep, fmt.Errorf("bench: scenario %s: %w", s.name, err)
		}
		rep.Scenarios = append(rep.Scenarios, row)
	}
	snaps := []struct {
		name string
		fn   func(string, Options) (BaselineRow, error)
	}{
		{"snapshot-capture", baselineSnapshotCapture},
		{"snapshot-install", baselineSnapshotInstall},
	}
	for _, s := range snaps {
		row, err := s.fn(s.name, opt)
		if err != nil {
			return rep, err
		}
		rep.Scenarios = append(rep.Scenarios, row)
	}
	return rep, nil
}
