package bench

import (
	"strings"
	"testing"
	"time"

	"thunderbolt/internal/cluster"
	"thunderbolt/internal/node"
	"thunderbolt/internal/workload"
)

// TestExecutorBenchSmoke runs a miniature executor-level benchmark
// through each of the three §11 protocols and sanity-checks the
// reported numbers.
func TestExecutorBenchSmoke(t *testing.T) {
	for _, p := range []execProto{protoCE, protoOCC, protoTPL} {
		tps, latMS, reexec, _ := runExecutorBench(p, 2, 50, 10_000, 0.85, 0.5, 1, 42)
		if tps <= 0 {
			t.Fatalf("%s: no throughput (tps=%f)", p, tps)
		}
		if latMS <= 0 {
			t.Fatalf("%s: no latency (lat=%f)", p, latMS)
		}
		if reexec < 0 {
			t.Fatalf("%s: negative re-execution rate %f", p, reexec)
		}
	}
}

// TestClusterBenchSmoke drives one tiny system-level run end-to-end
// through the shared runCluster path and checks the report fields the
// figures consume.
func TestClusterBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster smoke skipped in -short")
	}
	rep, c, err := runCluster(cluster.Config{
		N: 4, Mode: node.ModeCE, Accounts: 64,
		BatchSize: 64, Executors: 2, Validators: 2, Seed: 42,
	}, cluster.LoadConfig{
		Duration: 500 * time.Millisecond, Clients: 4,
		Workload:   workload.Config{Theta: 0.85, ReadRatio: 0.5},
		RetryEvery: time.Second, Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if rep.Committed == 0 || rep.TPS <= 0 {
		t.Fatalf("cluster bench produced no throughput: %+v", rep)
	}
	if rep.Latency.Count == 0 || rep.Latency.Mean <= 0 {
		t.Fatalf("cluster bench produced no latency: %+v", rep.Latency)
	}
	if len(rep.NodeStats) != 4 {
		t.Fatalf("node stats missing: %d", len(rep.NodeStats))
	}
}

// TestFormatRendersPerFigureTables checks the report formatter on a
// synthetic row set.
func TestFormatRendersPerFigureTables(t *testing.T) {
	rows := []Row{
		{Figure: "13-LAN", Series: "Thunderbolt", X: "8", TPS: 1000, LatencyMS: 5},
		{Figure: "13-LAN", Series: "Tusk", X: "8", TPS: 400, LatencyMS: 9},
		{Figure: "11a", Series: "OCC-b300", X: "4", TPS: 700, LatencyMS: 2, Reexec: 0.25},
	}
	out := Format(rows)
	for _, want := range []string{"== Figure 11a ==", "== Figure 13-LAN ==", "Thunderbolt", "OCC-b300"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted output missing %q:\n%s", want, out)
		}
	}
	// Figures render in sorted order.
	if strings.Index(out, "11a") > strings.Index(out, "13-LAN") {
		t.Fatal("figures not sorted")
	}
}
