package ce

import (
	"fmt"
	"testing"

	"thunderbolt/internal/types"
)

func kv(i int) (types.Key, types.Value) {
	return types.Key(fmt.Sprintf("k%d", i)), types.Value(fmt.Sprintf("v%d", i))
}

func TestSpecOverlayConfirmDropsOnlyLastWriter(t *testing.T) {
	o := NewSpecOverlay()
	w1 := o.BeginWave()
	w2 := o.BeginWave()
	if w2 <= w1 {
		t.Fatal("wave ids must increase")
	}
	kA, vA := kv(1)
	kB, _ := kv(2)
	o.Set(kA, vA, w1)
	o.Set(kB, types.Value("w1"), w1)
	o.Set(kB, types.Value("w2"), w2) // w2 supersedes w1 on kB

	o.Confirm(w1)
	if _, ok := o.Get(kA); ok {
		t.Fatal("confirmed wave's entry should fall through to the store")
	}
	got, ok := o.Get(kB)
	if !ok || string(got) != "w2" {
		t.Fatalf("later wave's overwrite must stay speculative, got %q ok=%v", got, ok)
	}
	if o.Len() != 1 {
		t.Fatalf("live entries = %d, want 1", o.Len())
	}
}

func TestSpecOverlayRollback(t *testing.T) {
	o := NewSpecOverlay()
	w := o.BeginWave()
	for i := 0; i < 16; i++ {
		k, v := kv(i)
		o.Set(k, v, w)
	}
	g := o.Generation()
	o.Rollback()
	if o.Len() != 0 {
		t.Fatalf("rollback left %d live entries", o.Len())
	}
	if o.Generation() != g+1 {
		t.Fatalf("generation %d, want %d", o.Generation(), g+1)
	}
	// Wave ids keep increasing across rollbacks: a stale id can never
	// alias a fresh wave.
	if next := o.BeginWave(); next <= w {
		t.Fatalf("wave id reused after rollback: %d <= %d", next, w)
	}
}

func TestSpecOverlayConfirmOutOfScopeWaveIsNoop(t *testing.T) {
	o := NewSpecOverlay()
	w := o.BeginWave()
	k, v := kv(0)
	o.Set(k, v, w)
	o.Confirm(w + 100)
	if o.Len() != 1 {
		t.Fatal("confirming an unknown wave must not drop entries")
	}
}
