// Package ce implements Thunderbolt's Concurrent Executor (paper §7):
// a pool of executor goroutines running contract code against a
// shared concurrency controller (the dependency graph of
// internal/depgraph).
//
// The CE preplays a batch of single-shard transactions and emits, for
// each, its runtime-discovered read/write sets, execution results, and
// a position in a serializable schedule — everything a validator needs
// to re-check the batch without re-discovering concurrency (paper §4).
//
// Scheduling is two-phase. The discovery wave runs every transaction
// once, workers pulling indices off a shared atomic counter and
// accumulating results worker-locally (no per-transaction channel
// hand-off, no global result mutex). Transactions that abort re-enter
// through layered retry waves: their first attempt discovered their
// key footprints, so the retry set is partitioned into
// topologically-sorted conflict-free layers (depgraph.Layers) and each
// layer executes as one wave with no conflicts, no reachability
// queries, and no further abort churn — unless a footprint was
// value-dependent and shifted, in which case the transaction simply
// re-enters the next round with its updated footprint. A batch-level
// progress guarantee bounds every transaction even at MaxRetries=0: a
// transaction whose retries exceed the batch size (or any round that
// commits nothing) falls back to a serial slot, executing alone, where
// only its own contract can abort it — deterministic refusal is then
// terminal instead of a livelock.
package ce

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"thunderbolt/internal/contract"
	"thunderbolt/internal/depgraph"
	"thunderbolt/internal/types"
	"thunderbolt/internal/vm"
)

// Config parameterizes a Concurrent Executor.
type Config struct {
	// Executors is the worker-pool size (the paper sweeps 1–16).
	Executors int
	// Registry resolves named contracts.
	Registry *contract.Registry
	// MaxRetries caps re-executions of one transaction before it is
	// reported failed; 0 means no explicit cap. Even at 0, execution
	// is bounded: the batch-level progress guarantee routes any
	// transaction retried more than the batch size — or a whole round
	// that commits nothing — through a serial fallback slot, where it
	// either commits or fails terminally.
	MaxRetries int
}

// CE is a reusable concurrent executor. ExecuteBatch is safe to call
// from multiple goroutines (each call draws a private graph arena from
// a pool); a Session additionally carries one arena — and the previous
// batch's committed tips — across consecutive batches.
type CE struct {
	cfg  Config
	pool sync.Pool // *depgraph.Graph arenas
}

// New creates a CE. Executors defaults to 1; Registry is required.
func New(cfg Config) *CE {
	if cfg.Executors <= 0 {
		cfg.Executors = 1
	}
	if cfg.Registry == nil {
		panic("ce: Registry is required")
	}
	return &CE{cfg: cfg}
}

// FailedTx records a transaction that ended with a terminal contract
// failure (bad arguments, unknown contract, out of gas, exhausted
// retry budget, or deterministic refusal in a serial fallback slot).
// Failed transactions commit nothing and are excluded from the
// schedule.
type FailedTx struct {
	Tx  *types.Transaction
	Err error
}

// BatchResult is the preplay outcome of one batch.
type BatchResult struct {
	// Schedule lists committed transactions in serialization order;
	// Results is aligned index-for-index.
	Schedule []*types.Transaction
	Results  []types.TxResult
	// Failed lists terminally failed transactions.
	Failed []FailedTx
	// Reexecutions is the total number of aborted attempts across the
	// batch (the paper's Figure 11 abort metric). Wide and unsigned so
	// long adversarial runs cannot wrap it.
	Reexecutions uint64
}

// graphState adapts one graph transaction to contract.State.
type graphState struct {
	g *depgraph.Graph
	t *depgraph.Tx
}

func (s graphState) Read(k types.Key) (types.Value, error)  { return s.g.Read(s.t, k) }
func (s graphState) Write(k types.Key, v types.Value) error { return s.g.Write(s.t, k, v) }

// Session is a single-caller executor that owns one graph arena and
// reuses it across consecutive batches: nodes, key chains, and
// reachability state are recycled, and each batch's committed tips are
// carried as the next batch's cached base values (the batch N+1
// diffs-against-N contract). Call Invalidate whenever the base state
// may have changed other than by the previous batch's own committed
// writes. A Session must not be shared between goroutines.
type Session struct {
	ce    *CE
	g     *depgraph.Graph
	carry bool
}

// NewSession creates a session with a fresh arena.
func (ce *CE) NewSession() *Session { return &Session{ce: ce} }

// ExecuteBatch preplays txs like CE.ExecuteBatch, reusing the
// session's arena. When the carry is valid (no Invalidate since the
// previous batch), base is only consulted for keys the previous batch
// never touched.
func (s *Session) ExecuteBatch(base depgraph.BaseReader, txs []*types.Transaction) *BatchResult {
	switch {
	case s.g == nil:
		s.g = depgraph.New(base)
	case s.carry:
		s.g.Rebase(base)
	default:
		s.g.Reset(base)
	}
	s.carry = true
	return s.ce.run(s.g, txs)
}

// Invalidate drops the carried committed-tip state; the next batch
// reads every key through its BaseReader again. Call it when the
// underlying state changed outside the session's own batch stream
// (cross-shard commits, speculative-state rollbacks, epoch
// transitions, snapshot installs).
func (s *Session) Invalidate() { s.carry = false }

// Live reports the number of live nodes left in the session's graph —
// zero after every well-formed batch (every non-committed attempt is
// removed); exported so tests can assert the no-leak invariant.
func (s *Session) Live() int {
	if s.g == nil {
		return 0
	}
	return s.g.Live()
}

// Graph exposes the session's arena for invariant checks in tests.
func (s *Session) Graph() *depgraph.Graph { return s.g }

// ExecuteBatch preplays txs against the committed state exposed by
// base. It blocks until every transaction has committed into the
// schedule or failed terminally.
func (ce *CE) ExecuteBatch(base depgraph.BaseReader, txs []*types.Transaction) *BatchResult {
	g := ce.graph(base)
	res := ce.run(g, txs)
	ce.pool.Put(g)
	return res
}

// ExecuteLayered preplays txs whose key footprints are already known —
// the validator re-check shape, or a re-proposal of a batch whose sets
// a previous preplay discovered. The batch skips discovery entirely:
// it is partitioned into conflict-free layers executed as waves with
// no per-transaction scheduling. Footprint divergence (value-dependent
// control flow against a changed base) costs retries, not
// correctness: a transaction whose actual accesses conflict aborts and
// re-enters the normal retry machinery with its corrected footprint.
// accs must align index-for-index with txs.
func (ce *CE) ExecuteLayered(base depgraph.BaseReader, txs []*types.Transaction, accs []depgraph.Access) *BatchResult {
	if len(accs) != len(txs) {
		panic("ce: ExecuteLayered footprints misaligned")
	}
	g := ce.graph(base)
	pending := make([]attempt, len(txs))
	for i := range txs {
		pending[i] = attempt{tx: txs[i], reads: accs[i].Reads, writes: accs[i].Writes}
	}
	st := &batchState{outs: make([]workerOut, ce.workers(len(txs)))}
	ce.retryRounds(g, st, pending, len(txs))
	res := st.assemble()
	ce.pool.Put(g)
	return res
}

// graph draws a reset arena from the pool.
func (ce *CE) graph(base depgraph.BaseReader) *depgraph.Graph {
	if gi := ce.pool.Get(); gi != nil {
		g := gi.(*depgraph.Graph)
		g.Reset(base)
		return g
	}
	return depgraph.New(base)
}

func (ce *CE) workers(n int) int {
	w := ce.cfg.Executors
	if w > n {
		w = n
	}
	// More workers than schedulable CPUs cannot add parallelism, only
	// spawn and hand-off overhead (acute in the GOMAXPROCS=1 bench).
	if p := runtime.GOMAXPROCS(0); w > p {
		w = p
	}
	if w < 1 {
		w = 1
	}
	return w
}

// committed pairs a scheduled transaction with its result.
type committed struct {
	tx  *types.Transaction
	res types.TxResult
}

// attempt is one transaction awaiting (re-)execution, with the key
// footprint its latest attempt discovered.
type attempt struct {
	tx      *types.Transaction
	retries int
	reads   []types.Key
	writes  []types.Key
}

// workerOut accumulates one worker's results; workers never share
// output state, so the merge happens once per wave instead of once per
// transaction under a global mutex.
type workerOut struct {
	done   []committed
	failed []FailedTx
	retry  []attempt
	rexec  uint64
}

// batchState aggregates worker outputs across waves.
type batchState struct {
	outs []workerOut
}

func (st *batchState) drainRetries() []attempt {
	var pending []attempt
	for w := range st.outs {
		pending = append(pending, st.outs[w].retry...)
		st.outs[w].retry = st.outs[w].retry[:0]
	}
	return pending
}

func (st *batchState) committedCount() int {
	n := 0
	for w := range st.outs {
		n += len(st.outs[w].done)
	}
	return n
}

func (st *batchState) assemble() *BatchResult {
	var (
		n      int
		failed []FailedTx
		rexec  uint64
	)
	for w := range st.outs {
		n += len(st.outs[w].done)
		failed = append(failed, st.outs[w].failed...)
		rexec += st.outs[w].rexec
	}
	out := &BatchResult{
		Schedule:     make([]*types.Transaction, n),
		Results:      make([]types.TxResult, n),
		Failed:       failed,
		Reexecutions: rexec,
	}
	// Schedule indices are dense over committed transactions (the
	// graph hands them out as commit positions), so each result drops
	// straight into its slot — no merge sort over the worker outputs.
	for w := range st.outs {
		for i := range st.outs[w].done {
			c := &st.outs[w].done[i]
			idx := int(c.res.ScheduleIdx)
			if idx >= n || out.Schedule[idx] != nil {
				return st.assembleSorted(out) // saturated index; repair
			}
			out.Schedule[idx] = c.tx
			out.Results[idx] = c.res
		}
	}
	return out
}

// assembleSorted is the fallback for index collisions — only possible
// once satU32 saturates, i.e. beyond 2^32 commits in one batch.
func (st *batchState) assembleSorted(out *BatchResult) *BatchResult {
	var done []committed
	for w := range st.outs {
		done = append(done, st.outs[w].done...)
	}
	sort.Slice(done, func(i, j int) bool {
		return done[i].res.ScheduleIdx < done[j].res.ScheduleIdx
	})
	for i, c := range done {
		out.Schedule[i] = c.tx
		out.Results[i] = c.res
	}
	return out
}

// run executes txs to completion over a prepared graph.
func (ce *CE) run(g *depgraph.Graph, txs []*types.Transaction) *BatchResult {
	if len(txs) == 0 {
		return &BatchResult{}
	}
	st := &batchState{outs: make([]workerOut, ce.workers(len(txs)))}

	// Discovery wave: one attempt per transaction, indices pulled off
	// a shared counter, results accumulated worker-locally.
	var next atomic.Int64
	runWorkers(len(st.outs), func(w int) {
		o := &st.outs[w]
		for {
			i := int(next.Add(1)) - 1
			if i >= len(txs) {
				return
			}
			ce.attemptOnce(g, txs[i], 0, o)
		}
	})

	ce.retryRounds(g, st, st.drainRetries(), len(txs))
	return st.assemble()
}

// retryRounds drives pending attempts to completion through layered
// waves plus the serial-fallback progress guarantee.
func (ce *CE) retryRounds(g *depgraph.Graph, st *batchState, pending []attempt, batchSize int) {
	o := &st.outs[0] // serial slots run on the coordinating worker
	for len(pending) > 0 {
		// Progress guarantee, part 1: a transaction retried more than
		// the batch size gets a serial slot now — alone in the graph,
		// only its own contract can reject it, terminally.
		wave := pending[:0]
		for _, a := range pending {
			if a.retries > batchSize {
				ce.serialSlot(g, a, o)
				continue
			}
			wave = append(wave, a)
		}
		if len(wave) == 0 {
			return
		}

		// Partition this round's retries into conflict-free layers by
		// their discovered footprints and run each layer as one wave.
		before := st.committedCount()
		layers := depgraph.Layers(accessesOf(wave))
		for _, layer := range layers {
			ce.runLayer(g, st, wave, layer)
		}
		pending = st.drainRetries()

		// Progress guarantee, part 2: a round that commits nothing will
		// commit nothing forever (footprints have converged); resolve
		// every survivor serially.
		if st.committedCount() == before {
			for _, a := range pending {
				ce.serialSlot(g, a, o)
			}
			return
		}
	}
}

// runLayer executes one conflict-free wave, fanning across workers
// only when the layer is big enough to amortize the spawns.
func (ce *CE) runLayer(g *depgraph.Graph, st *batchState, wave []attempt, layer []int) {
	workers := len(st.outs)
	if workers > len(layer) {
		workers = len(layer)
	}
	if workers <= 1 || len(layer) < 8 {
		o := &st.outs[0]
		for _, li := range layer {
			a := wave[li]
			ce.attemptOnce(g, a.tx, a.retries, o)
		}
		return
	}
	var next atomic.Int64
	runWorkers(workers, func(w int) {
		o := &st.outs[w]
		for {
			i := int(next.Add(1)) - 1
			if i >= len(layer) {
				return
			}
			a := wave[layer[i]]
			ce.attemptOnce(g, a.tx, a.retries, o)
		}
	})
}

// attemptOnce drives one execution attempt. Every exit path either
// commits the transaction or removes its graph handle: Abort is
// idempotent on handles the graph already reaped, and it is the only
// thing standing between a contract-originated ErrAborted — where the
// node is still live, holding chain positions — and a leaked handle
// that wedges every successor.
func (ce *CE) attemptOnce(g *depgraph.Graph, tx *types.Transaction, prior int, o *workerOut) {
	id := tx.ID()
	h := g.Begin(id)
	err := vm.ExecuteTx(ce.cfg.Registry, graphState{g, h}, tx)
	switch {
	case err == nil:
		if out, ferr := g.FinishWait(h); ferr == nil {
			if out.Committed {
				o.done = append(o.done, committed{tx: tx, res: types.TxResult{
					TxID:         id,
					ScheduleIdx:  satU32(out.ScheduleIdx),
					ReadSet:      h.ReadSet(),
					WriteSet:     h.WriteSet(),
					Reexecutions: satU32(prior),
				}})
				return
			}
		}
		// Aborted between last op and Finish, or after Finish; the
		// graph already reaped the node, Abort is a no-op kept for the
		// exit-path audit.
		g.Abort(h)
		o.retryOrFail(ce, h, tx, prior+1)
	case errors.Is(err, contract.ErrAborted):
		// Either the graph aborted us mid-execution (handle already
		// reaped) or the contract itself surfaced ErrAborted with the
		// node still live — release it either way.
		g.Abort(h)
		o.retryOrFail(ce, h, tx, prior+1)
	default:
		// Terminal contract failure: remove any partial effects.
		g.Abort(h)
		o.failed = append(o.failed, FailedTx{Tx: tx, Err: err})
	}
}

// retryOrFail records an aborted attempt: either a retry carrying the
// footprint the attempt discovered (unioned with what earlier attempts
// saw, since an abort can strike before the full set was touched), or
// a terminal failure once the retry budget is spent.
func (o *workerOut) retryOrFail(ce *CE, h *depgraph.Tx, tx *types.Transaction, retries int) {
	o.rexec++
	if ce.exhausted(retries) {
		o.failed = append(o.failed, FailedTx{Tx: tx, Err: errRetriesExhausted})
		return
	}
	var prevR, prevW []types.Key
	for i := range o.retry {
		if o.retry[i].tx == tx {
			// Shouldn't happen (one attempt per tx per wave), but keep
			// the union well-defined.
			prevR, prevW = o.retry[i].reads, o.retry[i].writes
			break
		}
	}
	o.retry = append(o.retry, attempt{
		tx:      tx,
		retries: retries,
		reads:   unionKeys(prevR, h.ReadKeys()),
		writes:  unionKeys(prevW, h.WriteKeys()),
	})
}

// serialSlot executes one transaction with no concurrent attempts in
// flight. Alone, the graph cannot conflict it — chains hold only
// committed writers — so an abort here is the contract's own doing and
// terminal: this is what turns a deterministically-refusing
// (Byzantine) contract from a livelock into a failed transaction.
func (ce *CE) serialSlot(g *depgraph.Graph, a attempt, o *workerOut) {
	id := a.tx.ID()
	h := g.Begin(id)
	err := vm.ExecuteTx(ce.cfg.Registry, graphState{g, h}, a.tx)
	if err == nil {
		if out, ferr := g.FinishWait(h); ferr == nil {
			if out.Committed {
				o.done = append(o.done, committed{tx: a.tx, res: types.TxResult{
					TxID:         id,
					ScheduleIdx:  satU32(out.ScheduleIdx),
					ReadSet:      h.ReadSet(),
					WriteSet:     h.WriteSet(),
					Reexecutions: satU32(a.retries),
				}})
				return
			}
		}
		err = fmt.Errorf("%w: aborted in a serial slot after %d attempts", errNoProgress, a.retries+1)
	} else if errors.Is(err, contract.ErrAborted) {
		err = fmt.Errorf("%w: contract refused deterministically after %d attempts", errNoProgress, a.retries+1)
	}
	g.Abort(h)
	o.rexec++
	o.failed = append(o.failed, FailedTx{Tx: a.tx, Err: err})
}

func accessesOf(wave []attempt) []depgraph.Access {
	accs := make([]depgraph.Access, len(wave))
	for i := range wave {
		accs[i] = depgraph.Access{Reads: wave[i].reads, Writes: wave[i].writes}
	}
	return accs
}

// unionKeys merges two small key slices, preserving prev's order and
// appending unseen keys from next. Footprints are a handful of keys,
// so the quadratic scan beats a map.
func unionKeys(prev, next []types.Key) []types.Key {
	if len(prev) == 0 {
		return next
	}
	out := prev
outer:
	for _, k := range next {
		for _, p := range out {
			if p == k {
				continue outer
			}
		}
		out = append(out, k)
	}
	return out
}

// runWorkers runs f on n workers (worker 0 inline) and waits.
func runWorkers(n int, f func(w int)) {
	if n <= 1 {
		f(0)
		return
	}
	var wg sync.WaitGroup
	for w := 1; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			f(w)
		}(w)
	}
	f(0)
	wg.Wait()
}

// satU32 narrows a counter into a wire-format uint32 without wrapping
// (Figure 11's abort metric saturates instead of aliasing small
// values on pathological runs).
func satU32(v int) uint32 {
	if v < 0 {
		return 0
	}
	if uint64(v) > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(v)
}

var (
	errRetriesExhausted = errors.New("ce: retry budget exhausted")
	errNoProgress       = errors.New("ce: no progress")
)

func (ce *CE) exhausted(retries int) bool {
	return ce.cfg.MaxRetries > 0 && retries >= ce.cfg.MaxRetries
}
