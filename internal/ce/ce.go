// Package ce implements Thunderbolt's Concurrent Executor (paper §7):
// a pool of executor goroutines running contract code against a
// shared concurrency controller (the dependency graph of
// internal/depgraph).
//
// The CE preplays a batch of single-shard transactions and emits, for
// each, its runtime-discovered read/write sets, execution results, and
// a position in a serializable schedule — everything a validator needs
// to re-check the batch without re-discovering concurrency (paper §4).
package ce

import (
	"errors"
	"sort"
	"sync"

	"thunderbolt/internal/contract"
	"thunderbolt/internal/depgraph"
	"thunderbolt/internal/types"
	"thunderbolt/internal/vm"
)

// Config parameterizes a Concurrent Executor.
type Config struct {
	// Executors is the worker-pool size (the paper sweeps 1–16).
	Executors int
	// Registry resolves named contracts.
	Registry *contract.Registry
	// MaxRetries caps re-executions of one transaction before it is
	// reported failed; 0 means retry without bound (batch execution
	// terminates because writers drain).
	MaxRetries int
}

// CE is a reusable concurrent executor. It is safe to call
// ExecuteBatch from multiple goroutines, but each call builds its own
// dependency graph; the intended use is one CE per shard proposer
// executing one batch per DAG round.
type CE struct {
	cfg Config
}

// New creates a CE. Executors defaults to 1; Registry is required.
func New(cfg Config) *CE {
	if cfg.Executors <= 0 {
		cfg.Executors = 1
	}
	if cfg.Registry == nil {
		panic("ce: Registry is required")
	}
	return &CE{cfg: cfg}
}

// FailedTx records a transaction that ended with a terminal contract
// failure (bad arguments, unknown contract, out of gas). Failed
// transactions commit nothing and are excluded from the schedule.
type FailedTx struct {
	Tx  *types.Transaction
	Err error
}

// BatchResult is the preplay outcome of one batch.
type BatchResult struct {
	// Schedule lists committed transactions in serialization order;
	// Results is aligned index-for-index.
	Schedule []*types.Transaction
	Results  []types.TxResult
	// Failed lists terminally failed transactions.
	Failed []FailedTx
	// Reexecutions is the total number of aborted attempts across the
	// batch (the paper's Figure 11 abort metric).
	Reexecutions int
}

// graphState adapts one graph transaction to contract.State.
type graphState struct {
	g *depgraph.Graph
	t *depgraph.Tx
}

func (s graphState) Read(k types.Key) (types.Value, error)  { return s.g.Read(s.t, k) }
func (s graphState) Write(k types.Key, v types.Value) error { return s.g.Write(s.t, k, v) }

// ExecuteBatch preplays txs against the committed state exposed by
// base. It blocks until every transaction has committed into the
// schedule or failed terminally.
func (ce *CE) ExecuteBatch(base depgraph.BaseReader, txs []*types.Transaction) *BatchResult {
	g := depgraph.New(base)
	type committed struct {
		tx  *types.Transaction
		res types.TxResult
	}
	var (
		mu     sync.Mutex
		done   []committed
		failed []FailedTx
		rexec  int
	)
	ch := make(chan *types.Transaction)
	var wg sync.WaitGroup
	for w := 0; w < ce.cfg.Executors; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tx := range ch {
				res, ferr, retries := ce.runOne(g, tx)
				mu.Lock()
				rexec += retries
				if ferr != nil {
					failed = append(failed, FailedTx{Tx: tx, Err: ferr})
				} else {
					done = append(done, committed{tx: tx, res: res})
				}
				mu.Unlock()
			}
		}()
	}
	for _, tx := range txs {
		ch <- tx
	}
	close(ch)
	wg.Wait()

	sort.Slice(done, func(i, j int) bool {
		return done[i].res.ScheduleIdx < done[j].res.ScheduleIdx
	})
	out := &BatchResult{
		Schedule:     make([]*types.Transaction, len(done)),
		Results:      make([]types.TxResult, len(done)),
		Failed:       failed,
		Reexecutions: rexec,
	}
	for i, c := range done {
		out.Schedule[i] = c.tx
		out.Results[i] = c.res
	}
	return out
}

// runOne executes tx until it commits or fails terminally, returning
// its result, a terminal error (nil on success), and the retry count.
func (ce *CE) runOne(g *depgraph.Graph, tx *types.Transaction) (types.TxResult, error, int) {
	id := tx.ID()
	retries := 0
	for {
		h := g.Begin(id)
		err := vm.ExecuteTx(ce.cfg.Registry, graphState{g, h}, tx)
		switch {
		case err == nil:
			if ferr := g.Finish(h); ferr != nil {
				// Aborted between last op and finish.
				retries++
				if ce.exhausted(retries) {
					return types.TxResult{}, errRetriesExhausted, retries
				}
				continue
			}
			out := <-h.Done()
			if !out.Committed {
				retries++
				if ce.exhausted(retries) {
					return types.TxResult{}, errRetriesExhausted, retries
				}
				continue
			}
			return types.TxResult{
				TxID:         id,
				ScheduleIdx:  uint32(out.ScheduleIdx),
				ReadSet:      h.ReadSet(),
				WriteSet:     h.WriteSet(),
				Reexecutions: uint32(retries),
			}, nil, retries
		case errors.Is(err, contract.ErrAborted):
			retries++
			if ce.exhausted(retries) {
				g.Abort(h)
				return types.TxResult{}, errRetriesExhausted, retries
			}
			continue
		default:
			// Terminal contract failure: remove any partial effects.
			g.Abort(h)
			return types.TxResult{}, err, retries
		}
	}
}

var errRetriesExhausted = errors.New("ce: retry budget exhausted")

func (ce *CE) exhausted(retries int) bool {
	return ce.cfg.MaxRetries > 0 && retries >= ce.cfg.MaxRetries
}
