package ce

import "thunderbolt/internal/types"

// SpecOverlay is the speculative state layer for certified-but-
// uncommitted waves: the write sets of every speculatively executed
// wave, stacked over the committed tip. The commit path reads through
// it (overlay first, committed store second) while predicting, then
// either confirms a wave — its writes just became the committed tip,
// so the overlay entries it last wrote are dropped and reads fall
// through to the store, seeing the same bytes — or rolls the whole
// layer back on a misprediction.
//
// Entries are wave-stamped so Confirm only drops values the installed
// wave was the last writer of; a later pending wave's overwrite stays
// speculative. Rollback is the speculation-generation reset: O(live
// entries), no rebuild, and the generation counter lets holders of a
// read-through view detect that their base shifted underneath them.
//
// The overlay is owned by the node's event-loop goroutine; it is not
// safe for concurrent use.
type SpecOverlay struct {
	entries map[types.Key]specSlot
	wave    uint64
	gen     uint64
}

type specSlot struct {
	val  types.Value
	wave uint64
}

// NewSpecOverlay returns an empty overlay at generation 0.
func NewSpecOverlay() *SpecOverlay {
	return &SpecOverlay{entries: make(map[types.Key]specSlot)}
}

// BeginWave opens a new speculative wave and returns its id. Wave ids
// are strictly increasing for the life of the overlay (they survive
// rollbacks, so a stale id can never alias a fresh wave).
func (o *SpecOverlay) BeginWave() uint64 {
	o.wave++
	return o.wave
}

// Set records one speculative write attributed to wave, superseding
// any earlier wave's value for the key.
func (o *SpecOverlay) Set(k types.Key, v types.Value, wave uint64) {
	o.entries[k] = specSlot{val: v, wave: wave}
}

// Get returns the speculative value for k, if any wave wrote it.
func (o *SpecOverlay) Get(k types.Key) (types.Value, bool) {
	s, ok := o.entries[k]
	if !ok {
		return nil, false
	}
	return s.val, true
}

// Confirm retires an installed wave: entries it last wrote are now in
// the committed store verbatim, so they leave the overlay; entries a
// later pending wave overwrote stay speculative.
func (o *SpecOverlay) Confirm(wave uint64) {
	for k, s := range o.entries {
		if s.wave == wave {
			delete(o.entries, k)
		}
	}
}

// Rollback discards every speculative value and bumps the generation
// — the misprediction reset. Cost is O(live entries); the arena (one
// map) is retained.
func (o *SpecOverlay) Rollback() {
	o.gen++
	clear(o.entries)
}

// Generation counts rollbacks; a reader holding a view across event-
// loop iterations compares generations to detect a reset.
func (o *SpecOverlay) Generation() uint64 { return o.gen }

// Len reports live speculative entries (observability + leak tests).
func (o *SpecOverlay) Len() int { return len(o.entries) }
