package ce

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"thunderbolt/internal/contract"
	"thunderbolt/internal/depgraph"
	"thunderbolt/internal/storage"
	"thunderbolt/internal/types"
	"thunderbolt/internal/vm"
	"thunderbolt/internal/workload"
)

func baseOf(st *storage.Store) depgraph.BaseReader {
	return func(k types.Key) types.Value {
		v, _ := st.Get(k)
		return v
	}
}

// overlayState adapts a storage.Overlay to contract.State for the
// serial replay oracle.
type overlayState struct{ o *storage.Overlay }

func (s overlayState) Read(k types.Key) (types.Value, error) {
	v, _ := s.o.Get(k)
	return v, nil
}
func (s overlayState) Write(k types.Key, v types.Value) error {
	s.o.Set(k, v)
	return nil
}

func newSmallBank(t *testing.T, accounts int) (*contract.Registry, *storage.Store) {
	t.Helper()
	reg := contract.NewRegistry()
	workload.RegisterSmallBank(reg)
	st := storage.New()
	workload.InitAccounts(st, accounts, 1000, 1000)
	return reg, st
}

// replaySerially executes the schedule one transaction at a time over
// a fresh copy of the initial state and checks that every declared
// read value and write value is reproduced — exactly the validation
// replicas perform in §4. It returns the final replayed store.
func replaySerially(t *testing.T, reg *contract.Registry, initial map[types.Key]types.Value, res *BatchResult) *storage.Store {
	t.Helper()
	st := storage.New()
	for k, v := range initial {
		st.Set(k, v)
	}
	for i, tx := range res.Schedule {
		o := storage.NewOverlay(st)
		if err := vm.ExecuteTx(reg, overlayState{o}, tx); err != nil {
			t.Fatalf("replay tx %d: %v", i, err)
		}
		// Writes must match the declared write set.
		declared := map[types.Key]types.Value{}
		for _, w := range res.Results[i].WriteSet {
			declared[w.Key] = w.Value
		}
		got := o.Writes()
		if len(got) != len(declared) {
			t.Fatalf("tx %d: replay wrote %d keys, declared %d", i, len(got), len(declared))
		}
		for _, w := range got {
			if dv, ok := declared[w.Key]; !ok || !dv.Equal(w.Value) {
				t.Fatalf("tx %d: write %s=%q, declared %q", i, w.Key, w.Value, dv)
			}
		}
		// Reads must match the declared read set: re-read each
		// declared key before applying the writes would be wrong, so
		// instead compare against the pre-write store through a fresh
		// overlay read. The declared read set keys were read before
		// any own-write, so store state is authoritative.
		for _, r := range res.Results[i].ReadSet {
			v, _ := st.Get(r.Key)
			if !v.Equal(r.Value) {
				t.Fatalf("tx %d: read %s observed %q, serial replay has %q", i, r.Key, r.Value, v)
			}
		}
		o.Flush()
	}
	return st
}

func TestSingleExecutorSimpleBatch(t *testing.T) {
	reg, st := newSmallBank(t, 4)
	ce := New(Config{Executors: 1, Registry: reg})
	g := workload.NewGenerator(workload.Config{Accounts: 4, Shards: 1, Theta: 0, ReadRatio: 0.5, Seed: 1})
	txs := g.Batch(20)
	res := ce.ExecuteBatch(baseOf(st), txs)
	if len(res.Schedule) != 20 || len(res.Failed) != 0 {
		t.Fatalf("scheduled=%d failed=%d", len(res.Schedule), len(res.Failed))
	}
	// Schedule indices are dense and ordered.
	for i, r := range res.Results {
		if int(r.ScheduleIdx) != i {
			t.Fatalf("schedule idx %d at position %d", r.ScheduleIdx, i)
		}
	}
	replaySerially(t, reg, st.Snapshot(), res)
}

func TestConcurrentExecutorsSerializable(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("executors=%d", workers), func(t *testing.T) {
			reg, st := newSmallBank(t, 10)
			ce := New(Config{Executors: workers, Registry: reg})
			g := workload.NewGenerator(workload.Config{
				Accounts: 10, Shards: 1, Theta: 0.9, ReadRatio: 0.3, Seed: int64(workers),
			})
			txs := g.Batch(200)
			res := ce.ExecuteBatch(baseOf(st), txs)
			if len(res.Schedule)+len(res.Failed) != 200 {
				t.Fatalf("lost transactions: %d + %d != 200", len(res.Schedule), len(res.Failed))
			}
			if len(res.Failed) != 0 {
				t.Fatalf("unexpected failures: %v", res.Failed[0].Err)
			}
			replaySerially(t, reg, st.Snapshot(), res)
		})
	}
}

func TestHighContentionConservesMoney(t *testing.T) {
	const accounts = 4 // extreme contention
	reg, st := newSmallBank(t, accounts)
	before, _ := workload.TotalBalance(st, accounts)
	ce := New(Config{Executors: 8, Registry: reg})
	// All SendPayment between the same few accounts.
	var txs []*types.Transaction
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		a := rng.Intn(accounts)
		b := (a + 1 + rng.Intn(accounts-1)) % accounts
		txs = append(txs, &types.Transaction{
			Client: 1, Nonce: uint64(i + 1), Kind: types.SingleShard,
			Shards: []types.ShardID{0}, Contract: workload.ContractSendPayment,
			Args: [][]byte{
				[]byte(workload.AccountName(a)),
				[]byte(workload.AccountName(b)),
				contract.EncodeInt64(int64(1 + rng.Intn(50))),
			},
		})
	}
	res := ce.ExecuteBatch(baseOf(st), txs)
	if len(res.Schedule) != 300 {
		t.Fatalf("scheduled %d/300", len(res.Schedule))
	}
	final := replaySerially(t, reg, st.Snapshot(), res)
	after, _ := workload.TotalBalance(final, accounts)
	if before != after {
		t.Fatalf("money not conserved: %d -> %d", before, after)
	}
	t.Logf("re-executions under extreme contention: %d", res.Reexecutions)
}

// TestRandomBatchesQuick is the core property test: random mixed
// batches at random contention levels, executed concurrently, must
// replay serially with identical reads, writes, and final state.
func TestRandomBatchesQuick(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		accounts := 2 + rng.Intn(20)
		batch := 20 + rng.Intn(100)
		workers := 1 + rng.Intn(8)
		theta := rng.Float64() * 0.95
		pr := rng.Float64()

		reg, st := newSmallBank(t, accounts)
		ce := New(Config{Executors: workers, Registry: reg})
		g := workload.NewGenerator(workload.Config{
			Accounts: accounts, Shards: 1, Theta: theta, ReadRatio: pr,
			Mix: trial%2 == 0, Seed: int64(trial),
		})
		txs := g.Batch(batch)
		res := ce.ExecuteBatch(baseOf(st), txs)
		if len(res.Schedule)+len(res.Failed) != batch {
			t.Fatalf("trial %d: lost transactions", trial)
		}
		if len(res.Failed) != 0 {
			t.Fatalf("trial %d: failures: %v", trial, res.Failed[0].Err)
		}
		replaySerially(t, reg, st.Snapshot(), res)
	}
}

func TestVMTransactionsThroughCE(t *testing.T) {
	reg, st := newSmallBank(t, 4)
	code, _ := workload.SendPaymentProgram().MarshalBinary()
	var txs []*types.Transaction
	for i := 0; i < 50; i++ {
		txs = append(txs, &types.Transaction{
			Client: 1, Nonce: uint64(i + 1), Kind: types.SingleShard,
			Shards: []types.ShardID{0}, Code: code,
			Args: [][]byte{
				[]byte(workload.AccountName(i % 4)),
				[]byte(workload.AccountName((i + 1) % 4)),
				contract.EncodeInt64(5),
			},
		})
	}
	ce := New(Config{Executors: 4, Registry: reg})
	res := ce.ExecuteBatch(baseOf(st), txs)
	if len(res.Schedule) != 50 {
		t.Fatalf("scheduled %d/50, failed %d", len(res.Schedule), len(res.Failed))
	}
	final := replaySerially(t, reg, st.Snapshot(), res)
	after, _ := workload.TotalBalance(final, 4)
	if after != 4*2000 {
		t.Fatalf("VM transfers lost money: %d", after)
	}
}

func TestTerminalFailuresExcluded(t *testing.T) {
	reg, st := newSmallBank(t, 2)
	txs := []*types.Transaction{
		{Client: 1, Nonce: 1, Contract: workload.ContractDepositChecking,
			Args: [][]byte{[]byte(workload.AccountName(0)), contract.EncodeInt64(5)}},
		{Client: 1, Nonce: 2, Contract: "no.such.contract"},
		{Client: 1, Nonce: 3, Contract: workload.ContractSendPayment,
			Args: [][]byte{[]byte("x")}}, // missing args
	}
	ce := New(Config{Executors: 2, Registry: reg})
	res := ce.ExecuteBatch(baseOf(st), txs)
	if len(res.Schedule) != 1 || len(res.Failed) != 2 {
		t.Fatalf("scheduled=%d failed=%d", len(res.Schedule), len(res.Failed))
	}
	for _, f := range res.Failed {
		if !errors.Is(f.Err, contract.ErrContractFailure) {
			t.Fatalf("failure not terminal: %v", f.Err)
		}
	}
	replaySerially(t, reg, st.Snapshot(), res)
}

func TestReexecutionsReported(t *testing.T) {
	reg, st := newSmallBank(t, 2)
	ce := New(Config{Executors: 8, Registry: reg})
	var txs []*types.Transaction
	for i := 0; i < 200; i++ {
		txs = append(txs, &types.Transaction{
			Client: 1, Nonce: uint64(i + 1), Contract: workload.ContractSendPayment,
			Args: [][]byte{
				[]byte(workload.AccountName(i % 2)),
				[]byte(workload.AccountName((i + 1) % 2)),
				contract.EncodeInt64(1),
			},
		})
	}
	res := ce.ExecuteBatch(baseOf(st), txs)
	var fromResults uint32
	for _, r := range res.Results {
		fromResults += r.Reexecutions
	}
	if int(fromResults) > res.Reexecutions {
		t.Fatalf("per-tx retries %d exceed batch total %d", fromResults, res.Reexecutions)
	}
}

func TestEmptyBatch(t *testing.T) {
	reg, _ := newSmallBank(t, 1)
	ce := New(Config{Executors: 4, Registry: reg})
	res := ce.ExecuteBatch(nil, nil)
	if len(res.Schedule) != 0 || len(res.Failed) != 0 || res.Reexecutions != 0 {
		t.Fatalf("empty batch produced output: %+v", res)
	}
}

func TestNewDefaultsAndPanics(t *testing.T) {
	reg := contract.NewRegistry()
	ce := New(Config{Registry: reg})
	if ce.cfg.Executors != 1 {
		t.Fatal("executors should default to 1")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("missing registry should panic")
		}
	}()
	New(Config{})
}
