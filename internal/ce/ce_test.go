package ce

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"thunderbolt/internal/contract"
	"thunderbolt/internal/depgraph"
	"thunderbolt/internal/storage"
	"thunderbolt/internal/types"
	"thunderbolt/internal/vm"
	"thunderbolt/internal/workload"
)

func baseOf(st *storage.Store) depgraph.BaseReader {
	return func(k types.Key) types.Value {
		v, _ := st.Get(k)
		return v
	}
}

// execBatch runs one batch through a session and asserts the no-leak
// invariant of the retry/abort scrub: every non-committed attempt was
// removed from the graph, and the graph invariants hold afterwards.
func execBatch(t *testing.T, c *CE, base depgraph.BaseReader, txs []*types.Transaction) *BatchResult {
	t.Helper()
	s := c.NewSession()
	res := s.ExecuteBatch(base, txs)
	if live := s.Live(); live != 0 {
		t.Fatalf("graph leaked %d live handles after batch", live)
	}
	if err := s.Graph().CheckInvariants(); err != nil {
		t.Fatalf("graph invariants violated after batch: %v", err)
	}
	return res
}

// overlayState adapts a storage.Overlay to contract.State for the
// serial replay oracle.
type overlayState struct{ o *storage.Overlay }

func (s overlayState) Read(k types.Key) (types.Value, error) {
	v, _ := s.o.Get(k)
	return v, nil
}
func (s overlayState) Write(k types.Key, v types.Value) error {
	s.o.Set(k, v)
	return nil
}

func newSmallBank(t *testing.T, accounts int) (*contract.Registry, *storage.Store) {
	t.Helper()
	reg := contract.NewRegistry()
	workload.RegisterSmallBank(reg)
	st := storage.New()
	workload.InitAccounts(st, accounts, 1000, 1000)
	return reg, st
}

// replaySerially executes the schedule one transaction at a time over
// a fresh copy of the initial state and checks that every declared
// read value and write value is reproduced — exactly the validation
// replicas perform in §4. It returns the final replayed store.
func replaySerially(t *testing.T, reg *contract.Registry, initial map[types.Key]types.Value, res *BatchResult) *storage.Store {
	t.Helper()
	st := storage.New()
	for k, v := range initial {
		st.Set(k, v)
	}
	for i, tx := range res.Schedule {
		o := storage.NewOverlay(st)
		if err := vm.ExecuteTx(reg, overlayState{o}, tx); err != nil {
			t.Fatalf("replay tx %d: %v", i, err)
		}
		// Writes must match the declared write set.
		declared := map[types.Key]types.Value{}
		for _, w := range res.Results[i].WriteSet {
			declared[w.Key] = w.Value
		}
		got := o.Writes()
		if len(got) != len(declared) {
			t.Fatalf("tx %d: replay wrote %d keys, declared %d", i, len(got), len(declared))
		}
		for _, w := range got {
			if dv, ok := declared[w.Key]; !ok || !dv.Equal(w.Value) {
				t.Fatalf("tx %d: write %s=%q, declared %q", i, w.Key, w.Value, dv)
			}
		}
		// Reads must match the declared read set: re-read each
		// declared key before applying the writes would be wrong, so
		// instead compare against the pre-write store through a fresh
		// overlay read. The declared read set keys were read before
		// any own-write, so store state is authoritative.
		for _, r := range res.Results[i].ReadSet {
			v, _ := st.Get(r.Key)
			if !v.Equal(r.Value) {
				t.Fatalf("tx %d: read %s observed %q, serial replay has %q", i, r.Key, r.Value, v)
			}
		}
		o.Flush()
	}
	return st
}

func TestSingleExecutorSimpleBatch(t *testing.T) {
	reg, st := newSmallBank(t, 4)
	ce := New(Config{Executors: 1, Registry: reg})
	g := workload.NewGenerator(workload.Config{Accounts: 4, Shards: 1, Theta: 0, ReadRatio: 0.5, Seed: 1})
	txs := g.Batch(20)
	res := execBatch(t, ce, baseOf(st), txs)
	if len(res.Schedule) != 20 || len(res.Failed) != 0 {
		t.Fatalf("scheduled=%d failed=%d", len(res.Schedule), len(res.Failed))
	}
	// Schedule indices are dense and ordered.
	for i, r := range res.Results {
		if int(r.ScheduleIdx) != i {
			t.Fatalf("schedule idx %d at position %d", r.ScheduleIdx, i)
		}
	}
	replaySerially(t, reg, st.Snapshot(), res)
}

func TestConcurrentExecutorsSerializable(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("executors=%d", workers), func(t *testing.T) {
			reg, st := newSmallBank(t, 10)
			ce := New(Config{Executors: workers, Registry: reg})
			g := workload.NewGenerator(workload.Config{
				Accounts: 10, Shards: 1, Theta: 0.9, ReadRatio: 0.3, Seed: int64(workers),
			})
			txs := g.Batch(200)
			res := execBatch(t, ce, baseOf(st), txs)
			if len(res.Schedule)+len(res.Failed) != 200 {
				t.Fatalf("lost transactions: %d + %d != 200", len(res.Schedule), len(res.Failed))
			}
			if len(res.Failed) != 0 {
				t.Fatalf("unexpected failures: %v", res.Failed[0].Err)
			}
			replaySerially(t, reg, st.Snapshot(), res)
		})
	}
}

func TestHighContentionConservesMoney(t *testing.T) {
	const accounts = 4 // extreme contention
	reg, st := newSmallBank(t, accounts)
	before, _ := workload.TotalBalance(st, accounts)
	ce := New(Config{Executors: 8, Registry: reg})
	// All SendPayment between the same few accounts.
	var txs []*types.Transaction
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		a := rng.Intn(accounts)
		b := (a + 1 + rng.Intn(accounts-1)) % accounts
		txs = append(txs, &types.Transaction{
			Client: 1, Nonce: uint64(i + 1), Kind: types.SingleShard,
			Shards: []types.ShardID{0}, Contract: workload.ContractSendPayment,
			Args: [][]byte{
				[]byte(workload.AccountName(a)),
				[]byte(workload.AccountName(b)),
				contract.EncodeInt64(int64(1 + rng.Intn(50))),
			},
		})
	}
	res := execBatch(t, ce, baseOf(st), txs)
	if len(res.Schedule) != 300 {
		t.Fatalf("scheduled %d/300", len(res.Schedule))
	}
	final := replaySerially(t, reg, st.Snapshot(), res)
	after, _ := workload.TotalBalance(final, accounts)
	if before != after {
		t.Fatalf("money not conserved: %d -> %d", before, after)
	}
	t.Logf("re-executions under extreme contention: %d", res.Reexecutions)
}

// TestRandomBatchesQuick is the core property test: random mixed
// batches at random contention levels, executed concurrently, must
// replay serially with identical reads, writes, and final state.
func TestRandomBatchesQuick(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		accounts := 2 + rng.Intn(20)
		batch := 20 + rng.Intn(100)
		workers := 1 + rng.Intn(8)
		theta := rng.Float64() * 0.95
		pr := rng.Float64()

		reg, st := newSmallBank(t, accounts)
		ce := New(Config{Executors: workers, Registry: reg})
		g := workload.NewGenerator(workload.Config{
			Accounts: accounts, Shards: 1, Theta: theta, ReadRatio: pr,
			Mix: trial%2 == 0, Seed: int64(trial),
		})
		txs := g.Batch(batch)
		res := execBatch(t, ce, baseOf(st), txs)
		if len(res.Schedule)+len(res.Failed) != batch {
			t.Fatalf("trial %d: lost transactions", trial)
		}
		if len(res.Failed) != 0 {
			t.Fatalf("trial %d: failures: %v", trial, res.Failed[0].Err)
		}
		replaySerially(t, reg, st.Snapshot(), res)
	}
}

func TestVMTransactionsThroughCE(t *testing.T) {
	reg, st := newSmallBank(t, 4)
	code, _ := workload.SendPaymentProgram().MarshalBinary()
	var txs []*types.Transaction
	for i := 0; i < 50; i++ {
		txs = append(txs, &types.Transaction{
			Client: 1, Nonce: uint64(i + 1), Kind: types.SingleShard,
			Shards: []types.ShardID{0}, Code: code,
			Args: [][]byte{
				[]byte(workload.AccountName(i % 4)),
				[]byte(workload.AccountName((i + 1) % 4)),
				contract.EncodeInt64(5),
			},
		})
	}
	ce := New(Config{Executors: 4, Registry: reg})
	res := execBatch(t, ce, baseOf(st), txs)
	if len(res.Schedule) != 50 {
		t.Fatalf("scheduled %d/50, failed %d", len(res.Schedule), len(res.Failed))
	}
	final := replaySerially(t, reg, st.Snapshot(), res)
	after, _ := workload.TotalBalance(final, 4)
	if after != 4*2000 {
		t.Fatalf("VM transfers lost money: %d", after)
	}
}

func TestTerminalFailuresExcluded(t *testing.T) {
	reg, st := newSmallBank(t, 2)
	txs := []*types.Transaction{
		{Client: 1, Nonce: 1, Contract: workload.ContractDepositChecking,
			Args: [][]byte{[]byte(workload.AccountName(0)), contract.EncodeInt64(5)}},
		{Client: 1, Nonce: 2, Contract: "no.such.contract"},
		{Client: 1, Nonce: 3, Contract: workload.ContractSendPayment,
			Args: [][]byte{[]byte("x")}}, // missing args
	}
	ce := New(Config{Executors: 2, Registry: reg})
	res := execBatch(t, ce, baseOf(st), txs)
	if len(res.Schedule) != 1 || len(res.Failed) != 2 {
		t.Fatalf("scheduled=%d failed=%d", len(res.Schedule), len(res.Failed))
	}
	for _, f := range res.Failed {
		if !errors.Is(f.Err, contract.ErrContractFailure) {
			t.Fatalf("failure not terminal: %v", f.Err)
		}
	}
	replaySerially(t, reg, st.Snapshot(), res)
}

func TestReexecutionsReported(t *testing.T) {
	reg, st := newSmallBank(t, 2)
	ce := New(Config{Executors: 8, Registry: reg})
	var txs []*types.Transaction
	for i := 0; i < 200; i++ {
		txs = append(txs, &types.Transaction{
			Client: 1, Nonce: uint64(i + 1), Contract: workload.ContractSendPayment,
			Args: [][]byte{
				[]byte(workload.AccountName(i % 2)),
				[]byte(workload.AccountName((i + 1) % 2)),
				contract.EncodeInt64(1),
			},
		})
	}
	res := execBatch(t, ce, baseOf(st), txs)
	var fromResults uint64
	for _, r := range res.Results {
		fromResults += uint64(r.Reexecutions)
	}
	if fromResults > res.Reexecutions {
		t.Fatalf("per-tx retries %d exceed batch total %d", fromResults, res.Reexecutions)
	}
}

func TestEmptyBatch(t *testing.T) {
	reg, _ := newSmallBank(t, 1)
	ce := New(Config{Executors: 4, Registry: reg})
	res := execBatch(t, ce, nil, nil)
	if len(res.Schedule) != 0 || len(res.Failed) != 0 || res.Reexecutions != 0 {
		t.Fatalf("empty batch produced output: %+v", res)
	}
}

func TestNewDefaultsAndPanics(t *testing.T) {
	reg := contract.NewRegistry()
	ce := New(Config{Registry: reg})
	if ce.cfg.Executors != 1 {
		t.Fatal("executors should default to 1")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("missing registry should panic")
		}
	}()
	New(Config{})
}

// chaosSeed mirrors chaos.SeedFromEnv (imported inline to avoid an
// import cycle through the cluster packages): CHAOS_SEED overrides the
// default so any failure is replayable.
func chaosSeed(def int64) int64 {
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return def
}

const contractSaboteur = "test.saboteur"

// registerSaboteur installs a Byzantine contract that touches the hot
// key (so it conflicts with every honest transaction) and then refuses
// deterministically — the shape that livelocked MaxRetries:0 before
// the batch-level progress guarantee.
func registerSaboteur(reg *contract.Registry) {
	reg.MustRegister(contract.Func{
		ContractName: contractSaboteur,
		Fn: func(st contract.State, args [][]byte) error {
			if _, err := st.Read(types.Key(args[0])); err != nil {
				return err
			}
			if err := st.Write(types.Key(args[0]), contract.EncodeInt64(-1)); err != nil {
				return err
			}
			return contract.ErrAborted
		},
	})
}

// TestAdversarialAbortTerminates is the MaxRetries:0 livelock
// regression: deterministically-aborting contracts must fail
// terminally through the serial-fallback slot while every honest
// transaction still commits.
func TestAdversarialAbortTerminates(t *testing.T) {
	const accounts = 2
	reg, st := newSmallBank(t, accounts)
	registerSaboteur(reg)
	before, _ := workload.TotalBalance(st, accounts)
	ce := New(Config{Executors: 8, Registry: reg, MaxRetries: 0})
	hot := workload.CheckingKey(workload.AccountName(0))
	var txs []*types.Transaction
	honest := 0
	for i := 0; i < 120; i++ {
		if i%3 == 0 {
			txs = append(txs, &types.Transaction{
				Client: 2, Nonce: uint64(i + 1), Contract: contractSaboteur,
				Args: [][]byte{[]byte(hot)},
			})
			continue
		}
		honest++
		txs = append(txs, &types.Transaction{
			Client: 1, Nonce: uint64(i + 1), Contract: workload.ContractSendPayment,
			Args: [][]byte{
				[]byte(workload.AccountName(0)),
				[]byte(workload.AccountName(1)),
				contract.EncodeInt64(1),
			},
		})
	}
	res := execBatch(t, ce, baseOf(st), txs) // must terminate
	if len(res.Schedule) != honest {
		t.Fatalf("honest committed %d/%d", len(res.Schedule), honest)
	}
	if len(res.Failed) != len(txs)-honest {
		t.Fatalf("saboteurs failed %d/%d", len(res.Failed), len(txs)-honest)
	}
	for _, f := range res.Failed {
		if !errors.Is(f.Err, errNoProgress) && !errors.Is(f.Err, contract.ErrAborted) {
			t.Fatalf("saboteur failure not terminal abort: %v", f.Err)
		}
	}
	final := replaySerially(t, reg, st.Snapshot(), res)
	after, _ := workload.TotalBalance(final, accounts)
	if before != after {
		t.Fatalf("money not conserved: %d -> %d", before, after)
	}
}

// TestHotKeyProgressUnbounded: an always-conflicting hot-key workload
// at MaxRetries:0 must commit every transaction (the progress
// guarantee resolves stragglers through serial slots, it never fails
// an honest transaction).
func TestHotKeyProgressUnbounded(t *testing.T) {
	reg, st := newSmallBank(t, 2)
	ce := New(Config{Executors: 8, Registry: reg, MaxRetries: 0})
	var txs []*types.Transaction
	for i := 0; i < 200; i++ {
		txs = append(txs, &types.Transaction{
			Client: 1, Nonce: uint64(i + 1), Contract: workload.ContractSendPayment,
			Args: [][]byte{
				[]byte(workload.AccountName(i % 2)),
				[]byte(workload.AccountName((i + 1) % 2)),
				contract.EncodeInt64(1),
			},
		})
	}
	res := execBatch(t, ce, baseOf(st), txs)
	if len(res.Failed) != 0 {
		t.Fatalf("honest hot-key tx failed: %v", res.Failed[0].Err)
	}
	if len(res.Schedule) != 200 {
		t.Fatalf("scheduled %d/200", len(res.Schedule))
	}
	replaySerially(t, reg, st.Snapshot(), res)
}

// TestSessionCarryAcrossBatches: consecutive batches through one
// session (graph arena + committed-tip carry) must still replay
// serially — batch N+1 diffs against batch N's committed tips.
func TestSessionCarryAcrossBatches(t *testing.T) {
	const accounts = 8
	reg, st := newSmallBank(t, accounts)
	ce := New(Config{Executors: 4, Registry: reg})
	s := ce.NewSession()
	g := workload.NewGenerator(workload.Config{
		Accounts: accounts, Shards: 1, Theta: 0.8, ReadRatio: 0.3, Seed: 99,
	})
	for batch := 0; batch < 5; batch++ {
		txs := g.Batch(80)
		res := s.ExecuteBatch(baseOf(st), txs)
		if live := s.Live(); live != 0 {
			t.Fatalf("batch %d leaked %d live handles", batch, live)
		}
		if err := s.Graph().CheckInvariants(); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if len(res.Failed) != 0 {
			t.Fatalf("batch %d failures: %v", batch, res.Failed[0].Err)
		}
		final := replaySerially(t, reg, st.Snapshot(), res)
		// Apply the batch so the carried tips stay truthful, exactly as
		// the node commit path does.
		for k, v := range final.Snapshot() {
			st.Set(k, v)
		}
	}
}

// TestLayeredDifferentialSerialEquivalence is the differential test:
// the layered wave schedule (footprints known up front) and the legacy
// per-tx discovery schedule must produce identical serial-replay state
// for the same batch. Seed-replayable via CHAOS_SEED.
func TestLayeredDifferentialSerialEquivalence(t *testing.T) {
	seed := chaosSeed(7)
	t.Logf("differential seed %d (set CHAOS_SEED to replay)", seed)
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 10; trial++ {
		accounts := 2 + rng.Intn(12)
		batch := 30 + rng.Intn(80)
		reg, st := newSmallBank(t, accounts)
		g := workload.NewGenerator(workload.Config{
			Accounts: accounts, Shards: 1, Theta: rng.Float64() * 0.9,
			ReadRatio: rng.Float64(), Mix: trial%2 == 0, Seed: rng.Int63(),
		})
		txs := g.Batch(batch)

		// Legacy per-tx discovery schedule.
		discover := New(Config{Executors: 1 + rng.Intn(8), Registry: reg})
		dres := execBatch(t, discover, baseOf(st), txs)
		if len(dres.Failed) != 0 {
			t.Fatalf("trial %d: discovery failures: %v", trial, dres.Failed[0].Err)
		}
		dfinal := replaySerially(t, reg, st.Snapshot(), dres)

		// Layered wave schedule from the discovered footprints.
		accs := make([]depgraph.Access, len(dres.Schedule))
		for i := range dres.Results {
			for _, rec := range dres.Results[i].ReadSet {
				accs[i].Reads = append(accs[i].Reads, rec.Key)
			}
			for _, rec := range dres.Results[i].WriteSet {
				accs[i].Writes = append(accs[i].Writes, rec.Key)
			}
		}
		layered := New(Config{Executors: 1 + rng.Intn(8), Registry: reg})
		lres := layered.ExecuteLayered(baseOf(st), dres.Schedule, accs)
		if len(lres.Failed) != 0 {
			t.Fatalf("trial %d: layered failures: %v", trial, lres.Failed[0].Err)
		}
		if len(lres.Schedule) != len(dres.Schedule) {
			t.Fatalf("trial %d: layered scheduled %d, discovery %d", trial, len(lres.Schedule), len(dres.Schedule))
		}
		lfinal := replaySerially(t, reg, st.Snapshot(), lres)

		a, b := dfinal.Snapshot(), lfinal.Snapshot()
		if len(a) != len(b) {
			t.Fatalf("trial %d: state sizes diverged: %d vs %d", trial, len(a), len(b))
		}
		for k, v := range a {
			if !v.Equal(b[k]) {
				t.Fatalf("trial %d: key %s diverged: %q vs %q", trial, k, v, b[k])
			}
		}
	}
}

// --- scheduler micro-benchmarks (wired into the ce-sched CI job) ---

func benchBatch(b *testing.B, accounts, batch int, theta float64) (*contract.Registry, *storage.Store, []*types.Transaction) {
	b.Helper()
	reg := contract.NewRegistry()
	workload.RegisterSmallBank(reg)
	st := storage.New()
	workload.InitAccounts(st, accounts, 1000, 1000)
	g := workload.NewGenerator(workload.Config{
		Accounts: accounts, Shards: 1, Theta: theta, ReadRatio: 0.5, Seed: 1,
	})
	return reg, st, g.Batch(batch)
}

// BenchmarkLayeredWave measures the known-footprint wave path against
// the discovery path on the same batch.
func BenchmarkLayeredWave(b *testing.B) {
	reg, st, txs := benchBatch(b, 64, 500, 0.6)
	c := New(Config{Executors: 4, Registry: reg})
	pre := c.ExecuteBatch(baseOf(st), txs)
	accs := make([]depgraph.Access, len(pre.Schedule))
	for i := range pre.Results {
		for _, rec := range pre.Results[i].ReadSet {
			accs[i].Reads = append(accs[i].Reads, rec.Key)
		}
		for _, rec := range pre.Results[i].WriteSet {
			accs[i].Writes = append(accs[i].Writes, rec.Key)
		}
	}
	b.Run("discovery", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.ExecuteBatch(baseOf(st), txs)
		}
	})
	b.Run("layered", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.ExecuteLayered(baseOf(st), pre.Schedule, accs)
		}
	})
}

// BenchmarkGraphReuse measures per-batch cost with a session arena
// (node/map recycling + committed-tip carry) against cold graphs.
func BenchmarkGraphReuse(b *testing.B) {
	reg, st, txs := benchBatch(b, 64, 500, 0.6)
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := New(Config{Executors: 4, Registry: reg})
			c.ExecuteBatch(baseOf(st), txs)
		}
	})
	b.Run("session", func(b *testing.B) {
		c := New(Config{Executors: 4, Registry: reg})
		s := c.NewSession()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.ExecuteBatch(baseOf(st), txs)
		}
	})
}
