// Package occ implements the Optimistic Concurrency Control baseline
// the paper compares the Concurrent Executor against (§11.1, after
// Kung & Robinson).
//
// Each executor runs a transaction locally: reads fetch versioned
// values from the store (first read per key pins the version), writes
// are buffered. On completion the read versions and write buffer go to
// a central verifier, which atomically revalidates every read version
// against the store and either applies the writes or rejects the
// transaction for re-execution.
package occ

import (
	"errors"
	"sort"
	"sync"

	"thunderbolt/internal/ce"
	"thunderbolt/internal/contract"
	"thunderbolt/internal/storage"
	"thunderbolt/internal/types"
	"thunderbolt/internal/vm"
)

// Config parameterizes the OCC executor pool.
type Config struct {
	// Executors is the worker-pool size.
	Executors int
	// Registry resolves named contracts.
	Registry *contract.Registry
	// MaxRetries caps re-executions (0 = unbounded).
	MaxRetries int
}

// VersionedStore is the storage interface OCC validates against.
// *storage.Store implements it; the node layer also provides a
// speculative view that reads through to committed state.
type VersionedStore interface {
	// GetVersioned returns the value under k, the version that
	// installed it, and whether the key exists.
	GetVersioned(k types.Key) (types.Value, uint64, bool)
	// Version returns the install version of k (0 if absent).
	Version(k types.Key) uint64
	// Apply installs a write batch atomically.
	Apply(writes []types.RWRecord) uint64
}

var (
	_ VersionedStore = (*storage.Store)(nil)
	// Every storage.Backend satisfies the OCC contract, so the node
	// can run OCC mode over the durable engine too.
	_ VersionedStore = storage.Backend(nil)
)

// OCC is the baseline executor. Unlike the CE it mutates the store it
// executes against (version validation requires committing into it);
// callers benchmark against a scratch store.
type OCC struct {
	cfg Config

	mu       sync.Mutex // the central verifier
	schedule int
}

// New creates an OCC executor pool.
func New(cfg Config) *OCC {
	if cfg.Executors <= 0 {
		cfg.Executors = 1
	}
	if cfg.Registry == nil {
		panic("occ: Registry is required")
	}
	return &OCC{cfg: cfg}
}

// execState is the per-attempt local context.
type execState struct {
	store VersionedStore

	reads     map[types.Key]uint64 // first-read versions
	readVals  map[types.Key]types.Value
	readOrder []types.Key

	writes     map[types.Key]types.Value
	writeOrder []types.Key
}

func newExecState(store VersionedStore) *execState {
	return &execState{
		store:    store,
		reads:    make(map[types.Key]uint64),
		readVals: make(map[types.Key]types.Value),
		writes:   make(map[types.Key]types.Value),
	}
}

// Read implements contract.State: local writes win, otherwise the
// store value is fetched and its version pinned.
func (s *execState) Read(k types.Key) (types.Value, error) {
	if v, ok := s.writes[k]; ok {
		return v.Clone(), nil
	}
	if v, ok := s.readVals[k]; ok {
		return v.Clone(), nil
	}
	v, ver, _ := s.store.GetVersioned(k)
	s.reads[k] = ver
	s.readVals[k] = v.Clone()
	s.readOrder = append(s.readOrder, k)
	return v.Clone(), nil
}

// Write implements contract.State by buffering locally.
func (s *execState) Write(k types.Key, v types.Value) error {
	if _, ok := s.writes[k]; !ok {
		s.writeOrder = append(s.writeOrder, k)
	}
	s.writes[k] = v.Clone()
	return nil
}

var errValidation = errors.New("occ: version validation failed")

// verify revalidates the read versions and applies the writes under
// the central verifier lock. It returns the schedule index.
func (o *OCC) verify(store VersionedStore, s *execState) (int, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for k, ver := range s.reads {
		if store.Version(k) != ver {
			return 0, errValidation
		}
	}
	recs := make([]types.RWRecord, 0, len(s.writeOrder))
	for _, k := range s.writeOrder {
		recs = append(recs, types.RWRecord{Key: k, Value: s.writes[k]})
	}
	store.Apply(recs)
	idx := o.schedule
	o.schedule++
	return idx, nil
}

// ExecuteBatch runs txs to completion against store, which it
// mutates. The result shape matches the Concurrent Executor's.
// Schedule indices restart at zero for every batch; do not run two
// batches on one OCC concurrently.
func (o *OCC) ExecuteBatch(store VersionedStore, txs []*types.Transaction) *ce.BatchResult {
	o.mu.Lock()
	o.schedule = 0
	o.mu.Unlock()
	type committed struct {
		tx  *types.Transaction
		res types.TxResult
	}
	var (
		mu     sync.Mutex
		done   []committed
		failed []ce.FailedTx
		rexec  uint64
	)
	ch := make(chan *types.Transaction)
	var wg sync.WaitGroup
	for w := 0; w < o.cfg.Executors; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tx := range ch {
				res, ferr, retries := o.runOne(store, tx)
				mu.Lock()
				rexec += uint64(retries)
				if ferr != nil {
					failed = append(failed, ce.FailedTx{Tx: tx, Err: ferr})
				} else {
					done = append(done, committed{tx: tx, res: res})
				}
				mu.Unlock()
			}
		}()
	}
	for _, tx := range txs {
		ch <- tx
	}
	close(ch)
	wg.Wait()

	sort.Slice(done, func(i, j int) bool {
		return done[i].res.ScheduleIdx < done[j].res.ScheduleIdx
	})
	out := &ce.BatchResult{Failed: failed, Reexecutions: rexec}
	for _, c := range done {
		out.Schedule = append(out.Schedule, c.tx)
		out.Results = append(out.Results, c.res)
	}
	return out
}

func (o *OCC) runOne(store VersionedStore, tx *types.Transaction) (types.TxResult, error, int) {
	id := tx.ID()
	retries := 0
	for {
		s := newExecState(store)
		if err := vm.ExecuteTx(o.cfg.Registry, s, tx); err != nil {
			return types.TxResult{}, err, retries
		}
		idx, err := o.verify(store, s)
		if err != nil {
			retries++
			if o.cfg.MaxRetries > 0 && retries >= o.cfg.MaxRetries {
				return types.TxResult{}, err, retries
			}
			continue
		}
		res := types.TxResult{TxID: id, ScheduleIdx: uint32(idx), Reexecutions: uint32(retries)}
		for _, k := range s.readOrder {
			res.ReadSet = append(res.ReadSet, types.RWRecord{Key: k, Value: s.readVals[k]})
		}
		for _, k := range s.writeOrder {
			res.WriteSet = append(res.WriteSet, types.RWRecord{Key: k, Value: s.writes[k]})
		}
		return res, nil, retries
	}
}
