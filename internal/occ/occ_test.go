package occ

import (
	"errors"
	"testing"

	"thunderbolt/internal/ce"
	"thunderbolt/internal/contract"
	"thunderbolt/internal/storage"
	"thunderbolt/internal/types"
	"thunderbolt/internal/vm"
	"thunderbolt/internal/workload"
)

type overlayState struct{ o *storage.Overlay }

func (s overlayState) Read(k types.Key) (types.Value, error) {
	v, _ := s.o.Get(k)
	return v, nil
}
func (s overlayState) Write(k types.Key, v types.Value) error {
	s.o.Set(k, v)
	return nil
}

func setup(t *testing.T, accounts int) (*contract.Registry, *storage.Store) {
	t.Helper()
	reg := contract.NewRegistry()
	workload.RegisterSmallBank(reg)
	st := storage.New()
	workload.InitAccounts(st, accounts, 1000, 1000)
	return reg, st
}

// checkSerializable replays the emitted schedule serially from the
// initial snapshot and requires the same final state the concurrent
// run left in store.
func checkSerializable(t *testing.T, reg *contract.Registry, initial map[types.Key]types.Value,
	res *ce.BatchResult, store *storage.Store) {
	t.Helper()
	replay := storage.New()
	for k, v := range initial {
		replay.Set(k, v)
	}
	for i, tx := range res.Schedule {
		o := storage.NewOverlay(replay)
		if err := vm.ExecuteTx(reg, overlayState{o}, tx); err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
		o.Flush()
	}
	for _, k := range store.Keys() {
		got, _ := store.Get(k)
		want, _ := replay.Get(k)
		if !got.Equal(want) {
			t.Fatalf("state divergence at %s: concurrent=%q serial=%q", k, got, want)
		}
	}
}

func TestOCCSerializableUnderContention(t *testing.T) {
	const accounts = 5
	reg, st := setup(t, accounts)
	initial := st.Snapshot()
	before, _ := workload.TotalBalance(st, accounts)
	o := New(Config{Executors: 8, Registry: reg})
	g := workload.NewGenerator(workload.Config{
		Accounts: accounts, Shards: 1, Theta: 0.9, ReadRatio: 0.2, Seed: 3,
	})
	res := o.ExecuteBatch(st, g.Batch(300))
	if len(res.Schedule)+len(res.Failed) != 300 || len(res.Failed) != 0 {
		t.Fatalf("scheduled=%d failed=%d", len(res.Schedule), len(res.Failed))
	}
	checkSerializable(t, reg, initial, res, st)
	after, _ := workload.TotalBalance(st, accounts)
	if before != after {
		// Deposits mint; restrict to conservation-safe contracts when
		// comparing totals.
		_ = after
	}
	t.Logf("OCC re-executions: %d", res.Reexecutions)
}

func TestOCCDetectsStaleRead(t *testing.T) {
	reg, st := setup(t, 2)
	o := New(Config{Executors: 1, Registry: reg})

	// Execute a transaction but delay verification by mutating the
	// store between execution and verify: simulate by pre-reading.
	s := newExecState(st)
	c, _ := reg.Lookup(workload.ContractGetBalance)
	if err := c.Execute(s, [][]byte{[]byte(workload.AccountName(0))}); err != nil {
		t.Fatal(err)
	}
	// Concurrent writer bumps the version.
	st.Set(workload.CheckingKey(workload.AccountName(0)), contract.EncodeInt64(1))
	if _, err := o.verify(st, s); !errors.Is(err, errValidation) {
		t.Fatalf("stale read passed validation: %v", err)
	}
}

func TestOCCSchedulesDense(t *testing.T) {
	reg, st := setup(t, 10)
	o := New(Config{Executors: 4, Registry: reg})
	g := workload.NewGenerator(workload.Config{Accounts: 10, Shards: 1, Theta: 0.5, ReadRatio: 0.5, Seed: 1})
	res := o.ExecuteBatch(st, g.Batch(100))
	for i, r := range res.Results {
		if int(r.ScheduleIdx) != i {
			t.Fatalf("schedule not dense at %d: %d", i, r.ScheduleIdx)
		}
	}
}

func TestOCCTerminalFailure(t *testing.T) {
	reg, st := setup(t, 1)
	o := New(Config{Executors: 1, Registry: reg})
	res := o.ExecuteBatch(st, []*types.Transaction{{Contract: "missing"}})
	if len(res.Failed) != 1 || len(res.Schedule) != 0 {
		t.Fatalf("unexpected result: %+v", res)
	}
}

func TestOCCReadSetsReported(t *testing.T) {
	reg, st := setup(t, 2)
	o := New(Config{Executors: 1, Registry: reg})
	tx := &types.Transaction{Client: 1, Nonce: 1, Contract: workload.ContractSendPayment,
		Args: [][]byte{[]byte(workload.AccountName(0)), []byte(workload.AccountName(1)), contract.EncodeInt64(7)}}
	res := o.ExecuteBatch(st, []*types.Transaction{tx})
	if len(res.Results) != 1 {
		t.Fatal("no result")
	}
	r := res.Results[0]
	if len(r.ReadSet) != 2 || len(r.WriteSet) != 2 {
		t.Fatalf("sets wrong: reads=%d writes=%d", len(r.ReadSet), len(r.WriteSet))
	}
}
