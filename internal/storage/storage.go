// Package storage provides the replica-local state store behind a
// pluggable Backend interface: a versioned key/value map with atomic
// batch commits in a total order and an append-only commit log.
//
// The paper's implementation used LevelDB to hold SmallBank balances.
// This reproduction ships two backends behind the same contract:
//
//   - Store, the in-memory engine the evaluation-shaped benchmarks
//     use (the paper stresses concurrency control, not the disk), and
//   - Durable (durable.go), an append-only segment WAL with
//     group-commit batching and restart-from-disk replay.
//
// Both preserve the two properties the protocols rely on: per-key
// versions (which the OCC baseline validates against) and atomic
// batch commits in a total order (how committed DAG blocks are
// applied).
package storage

import (
	"sort"
	"sync"

	"thunderbolt/internal/types"
)

// Backend is the pluggable state engine a replica commits into. All
// implementations are safe for concurrent use and share identical
// observable semantics (the conformance suite in conformance_test.go
// is the contract's executable form): every Apply consumes exactly one
// monotonically increasing sequence number and stamps its keys with
// it, reads never alias internal buffers, and Dump/Ascend iterate the
// full state in strictly ascending key order.
type Backend interface {
	// Get returns the current value under k and whether the key
	// exists. The returned value must not be mutated.
	Get(k types.Key) (types.Value, bool)
	// GetVersioned returns the value under k together with the commit
	// sequence number that installed it (0 for missing keys).
	GetVersioned(k types.Key) (types.Value, uint64, bool)
	// Version returns the install version of k (0 if absent).
	Version(k types.Key) uint64
	// Seq returns the sequence number of the latest commit.
	Seq() uint64
	// Set installs a single value outside any batch (workload
	// initialization); it consumes one commit sequence number.
	Set(k types.Key, v types.Value)
	// Apply installs a write batch atomically, stamping every key
	// with the new commit sequence number, and returns that number.
	Apply(writes []types.RWRecord) uint64
	// ApplyNote is Apply plus an opaque recovery note persisted
	// atomically with the batch (either may be empty). Non-durable
	// backends discard the note; the sequence number is consumed
	// either way, so backends stay step-identical under one driver.
	ApplyNote(writes []types.RWRecord, note []byte) uint64
	// Log returns a copy of the retained commit records, oldest
	// first (retention is configured at construction).
	Log() []CommitRecord
	// Len returns the number of keys present.
	Len() int
	// Snapshot returns an immutable copy of the current state.
	Snapshot() map[types.Key]types.Value
	// Dump returns the full state in ascending key order (values
	// cloned) — the canonical ledger form snapshots carry.
	Dump() []types.RWRecord
	// Ascend streams the state in ascending key order without
	// materializing it, stopping early when fn returns false. The
	// record passed to fn must not be retained or mutated.
	Ascend(fn func(types.RWRecord) bool)
	// Keys returns every key, sorted, for deterministic iteration.
	Keys() []types.Key
	// Sync forces any buffered commits durable (group-commit flush);
	// a no-op for non-durable backends.
	Sync() error
	// Close releases backend resources. The backend must not be used
	// afterwards. Closing an in-memory backend is a no-op.
	Close() error
}

type entry struct {
	val types.Value
	ver uint64
}

// Store is the in-memory Backend: a thread-safe versioned key/value
// store. The zero value is not usable; call New.
type Store struct {
	mu   sync.RWMutex
	data map[types.Key]entry
	seq  uint64

	logMu sync.Mutex
	log   []CommitRecord
	// keepLog bounds commit-log retention; 0 disables logging.
	keepLog int
}

var _ Backend = (*Store)(nil)

// CommitRecord is one atomically applied write batch.
type CommitRecord struct {
	Seq    uint64
	Writes []types.RWRecord
}

// New returns an empty store that retains no commit log.
func New() *Store { return NewWithLog(0) }

// NewWithLog returns an empty store retaining the last keep commit
// records (keep <= 0 disables retention).
func NewWithLog(keep int) *Store {
	return &Store{data: make(map[types.Key]entry), keepLog: keep}
}

// Get returns the current value under k and whether the key exists.
// The returned value must not be mutated.
func (s *Store) Get(k types.Key) (types.Value, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.data[k]
	return e.val, ok
}

// GetVersioned returns the value under k together with the commit
// sequence number that installed it. Missing keys report version 0.
func (s *Store) GetVersioned(k types.Key) (types.Value, uint64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.data[k]
	return e.val, e.ver, ok
}

// Version returns the install version of k (0 if absent).
func (s *Store) Version(k types.Key) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.data[k].ver
}

// Seq returns the sequence number of the latest commit.
func (s *Store) Seq() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.seq
}

// Set installs a single value outside any batch (used for workload
// initialization). It consumes one commit sequence number.
func (s *Store) Set(k types.Key, v types.Value) {
	s.Apply([]types.RWRecord{{Key: k, Value: v}})
}

// Apply installs a write batch atomically, stamping every key with the
// new commit sequence number, and returns that number. Values are
// retained without copying: callers hand over buffers they never
// mutate afterwards (execution results and decoded block payloads),
// the same contract under which Get returns entries uncloned. The
// former per-record clone was a fixed allocation tax on every
// committed write.
func (s *Store) Apply(writes []types.RWRecord) uint64 {
	s.mu.Lock()
	s.seq++
	seq := s.seq
	for _, w := range writes {
		s.data[w.Key] = entry{val: w.Value, ver: seq}
	}
	s.mu.Unlock()

	s.retain(seq, writes)
	return seq
}

// ApplyNote is Apply with the recovery note discarded (the in-memory
// backend has nothing to recover).
func (s *Store) ApplyNote(writes []types.RWRecord, _ []byte) uint64 {
	return s.Apply(writes)
}

// applyAt installs a write batch under an externally assigned sequence
// number — the WAL replay path, where record sequence numbers were
// fixed at append time. seq must be strictly greater than the current
// sequence.
func (s *Store) applyAt(seq uint64, writes []types.RWRecord) {
	s.mu.Lock()
	s.seq = seq
	for _, w := range writes {
		s.data[w.Key] = entry{val: w.Value.Clone(), ver: seq}
	}
	s.mu.Unlock()
	s.retain(seq, writes)
}

// retain appends one record to the bounded commit log.
func (s *Store) retain(seq uint64, writes []types.RWRecord) {
	if s.keepLog <= 0 || len(writes) == 0 {
		return
	}
	rec := CommitRecord{Seq: seq, Writes: cloneRecords(writes)}
	s.logMu.Lock()
	s.log = append(s.log, rec)
	if len(s.log) > s.keepLog {
		s.log = s.log[len(s.log)-s.keepLog:]
	}
	s.logMu.Unlock()
}

// Log returns a copy of the retained commit records, oldest first.
func (s *Store) Log() []CommitRecord {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	return append([]CommitRecord(nil), s.log...)
}

// Len returns the number of keys present.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Snapshot returns an immutable copy of the current state, suitable
// for serial replay during validation and testing.
func (s *Store) Snapshot() map[types.Key]types.Value {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[types.Key]types.Value, len(s.data))
	for k, e := range s.data {
		out[k] = e.val.Clone()
	}
	return out
}

// Dump returns the full state as records in ascending key order — the
// canonical ledger form state snapshots carry. Values are cloned.
func (s *Store) Dump() []types.RWRecord {
	s.mu.RLock()
	out := make([]types.RWRecord, 0, len(s.data))
	for k, e := range s.data {
		out = append(out, types.RWRecord{Key: k, Value: e.val.Clone()})
	}
	s.mu.RUnlock()
	types.SortLedger(out)
	return out
}

// Ascend streams the state in ascending key order. The record handed
// to fn aliases the store's value; fn must not retain or mutate it.
func (s *Store) Ascend(fn func(types.RWRecord) bool) {
	for _, k := range s.Keys() {
		s.mu.RLock()
		e, ok := s.data[k]
		s.mu.RUnlock()
		if !ok {
			continue
		}
		if !fn(types.RWRecord{Key: k, Value: e.val}) {
			return
		}
	}
}

// Keys returns every key, sorted, for deterministic iteration.
func (s *Store) Keys() []types.Key {
	s.mu.RLock()
	ks := make([]types.Key, 0, len(s.data))
	for k := range s.data {
		ks = append(ks, k)
	}
	s.mu.RUnlock()
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// Sync is a no-op: every Apply is immediately visible and the store
// has no durability layer to flush.
func (s *Store) Sync() error { return nil }

// Close is a no-op for the in-memory backend.
func (s *Store) Close() error { return nil }

func cloneRecords(recs []types.RWRecord) []types.RWRecord {
	out := make([]types.RWRecord, len(recs))
	for i, r := range recs {
		out[i] = types.RWRecord{Key: r.Key, Value: r.Value.Clone()}
	}
	return out
}

// Overlay is a write buffer layered over a base store. Reads see the
// overlay's own writes first, then the base; Flush applies the buffer
// atomically. It is the execution context for serial replay (Tusk's
// in-order execution, block validation, and test oracles) and is not
// safe for concurrent use.
type Overlay struct {
	base   Backend
	writes map[types.Key]types.Value
	// reads records the first observed value per key, forming the
	// read set of whatever ran against the overlay.
	reads map[types.Key]types.Value
	order []types.Key
}

// NewOverlay creates an empty overlay over base.
func NewOverlay(base Backend) *Overlay {
	return &Overlay{
		base:   base,
		writes: make(map[types.Key]types.Value),
		reads:  make(map[types.Key]types.Value),
	}
}

// Get reads k, preferring buffered writes.
func (o *Overlay) Get(k types.Key) (types.Value, bool) {
	if v, ok := o.writes[k]; ok {
		return v, true
	}
	v, ok := o.base.Get(k)
	if _, seen := o.reads[k]; !seen {
		o.reads[k] = v.Clone()
	}
	return v, ok
}

// Set buffers a write to k.
func (o *Overlay) Set(k types.Key, v types.Value) {
	if _, ok := o.writes[k]; !ok {
		o.order = append(o.order, k)
	}
	o.writes[k] = v.Clone()
}

// Writes returns the buffered writes in first-write order.
func (o *Overlay) Writes() []types.RWRecord {
	out := make([]types.RWRecord, 0, len(o.order))
	for _, k := range o.order {
		out = append(out, types.RWRecord{Key: k, Value: o.writes[k].Clone()})
	}
	return out
}

// Flush applies the buffered writes to the base store atomically and
// clears the buffer. It returns the commit sequence number.
func (o *Overlay) Flush() uint64 {
	seq := o.base.Apply(o.Writes())
	o.Reset()
	return seq
}

// Reset discards buffered state.
func (o *Overlay) Reset() {
	o.writes = make(map[types.Key]types.Value)
	o.reads = make(map[types.Key]types.Value)
	o.order = o.order[:0]
}
