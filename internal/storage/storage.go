// Package storage provides the replica-local state store: a versioned
// in-memory key/value map with an append-only commit log.
//
// The paper's implementation used LevelDB to hold SmallBank balances;
// the evaluation stresses concurrency control rather than the disk, so
// this reproduction keeps state in memory but preserves the two
// properties the protocols rely on:
//
//   - per-key versions, which the OCC baseline validates against, and
//   - atomic batch commits in a total order, which is how committed
//     DAG blocks are applied.
package storage

import (
	"sort"
	"sync"

	"thunderbolt/internal/types"
)

type entry struct {
	val types.Value
	ver uint64
}

// Store is a thread-safe versioned key/value store. The zero value is
// not usable; call New.
type Store struct {
	mu   sync.RWMutex
	data map[types.Key]entry
	seq  uint64

	logMu sync.Mutex
	log   []CommitRecord
	// keepLog bounds commit-log retention; 0 disables logging.
	keepLog int
}

// CommitRecord is one atomically applied write batch.
type CommitRecord struct {
	Seq    uint64
	Writes []types.RWRecord
}

// New returns an empty store that retains no commit log.
func New() *Store { return NewWithLog(0) }

// NewWithLog returns an empty store retaining the last keep commit
// records (keep <= 0 disables retention).
func NewWithLog(keep int) *Store {
	return &Store{data: make(map[types.Key]entry), keepLog: keep}
}

// Get returns the current value under k and whether the key exists.
// The returned value must not be mutated.
func (s *Store) Get(k types.Key) (types.Value, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.data[k]
	return e.val, ok
}

// GetVersioned returns the value under k together with the commit
// sequence number that installed it. Missing keys report version 0.
func (s *Store) GetVersioned(k types.Key) (types.Value, uint64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.data[k]
	return e.val, e.ver, ok
}

// Version returns the install version of k (0 if absent).
func (s *Store) Version(k types.Key) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.data[k].ver
}

// Seq returns the sequence number of the latest commit.
func (s *Store) Seq() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.seq
}

// Set installs a single value outside any batch (used for workload
// initialization). It consumes one commit sequence number.
func (s *Store) Set(k types.Key, v types.Value) {
	s.Apply([]types.RWRecord{{Key: k, Value: v}})
}

// Apply installs a write batch atomically, stamping every key with the
// new commit sequence number, and returns that number.
func (s *Store) Apply(writes []types.RWRecord) uint64 {
	s.mu.Lock()
	s.seq++
	seq := s.seq
	for _, w := range writes {
		s.data[w.Key] = entry{val: w.Value.Clone(), ver: seq}
	}
	s.mu.Unlock()

	if s.keepLog > 0 && len(writes) > 0 {
		rec := CommitRecord{Seq: seq, Writes: cloneRecords(writes)}
		s.logMu.Lock()
		s.log = append(s.log, rec)
		if len(s.log) > s.keepLog {
			s.log = s.log[len(s.log)-s.keepLog:]
		}
		s.logMu.Unlock()
	}
	return seq
}

// Log returns a copy of the retained commit records, oldest first.
func (s *Store) Log() []CommitRecord {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	return append([]CommitRecord(nil), s.log...)
}

// Len returns the number of keys present.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Snapshot returns an immutable copy of the current state, suitable
// for serial replay during validation and testing.
func (s *Store) Snapshot() map[types.Key]types.Value {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[types.Key]types.Value, len(s.data))
	for k, e := range s.data {
		out[k] = e.val.Clone()
	}
	return out
}

// Dump returns the full state as records in ascending key order — the
// canonical ledger form state snapshots carry. Values are cloned.
func (s *Store) Dump() []types.RWRecord {
	s.mu.RLock()
	out := make([]types.RWRecord, 0, len(s.data))
	for k, e := range s.data {
		out = append(out, types.RWRecord{Key: k, Value: e.val.Clone()})
	}
	s.mu.RUnlock()
	types.SortLedger(out)
	return out
}

// Keys returns every key, sorted, for deterministic iteration.
func (s *Store) Keys() []types.Key {
	s.mu.RLock()
	ks := make([]types.Key, 0, len(s.data))
	for k := range s.data {
		ks = append(ks, k)
	}
	s.mu.RUnlock()
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

func cloneRecords(recs []types.RWRecord) []types.RWRecord {
	out := make([]types.RWRecord, len(recs))
	for i, r := range recs {
		out[i] = types.RWRecord{Key: r.Key, Value: r.Value.Clone()}
	}
	return out
}

// Overlay is a write buffer layered over a base store. Reads see the
// overlay's own writes first, then the base; Flush applies the buffer
// atomically. It is the execution context for serial replay (Tusk's
// in-order execution, block validation, and test oracles) and is not
// safe for concurrent use.
type Overlay struct {
	base   *Store
	writes map[types.Key]types.Value
	// reads records the first observed value per key, forming the
	// read set of whatever ran against the overlay.
	reads map[types.Key]types.Value
	order []types.Key
}

// NewOverlay creates an empty overlay over base.
func NewOverlay(base *Store) *Overlay {
	return &Overlay{
		base:   base,
		writes: make(map[types.Key]types.Value),
		reads:  make(map[types.Key]types.Value),
	}
}

// Get reads k, preferring buffered writes.
func (o *Overlay) Get(k types.Key) (types.Value, bool) {
	if v, ok := o.writes[k]; ok {
		return v, true
	}
	v, ok := o.base.Get(k)
	if _, seen := o.reads[k]; !seen {
		o.reads[k] = v.Clone()
	}
	return v, ok
}

// Set buffers a write to k.
func (o *Overlay) Set(k types.Key, v types.Value) {
	if _, ok := o.writes[k]; !ok {
		o.order = append(o.order, k)
	}
	o.writes[k] = v.Clone()
}

// Writes returns the buffered writes in first-write order.
func (o *Overlay) Writes() []types.RWRecord {
	out := make([]types.RWRecord, 0, len(o.order))
	for _, k := range o.order {
		out = append(out, types.RWRecord{Key: k, Value: o.writes[k].Clone()})
	}
	return out
}

// Flush applies the buffered writes to the base store atomically and
// clears the buffer. It returns the commit sequence number.
func (o *Overlay) Flush() uint64 {
	seq := o.base.Apply(o.Writes())
	o.Reset()
	return seq
}

// Reset discards buffered state.
func (o *Overlay) Reset() {
	o.writes = make(map[types.Key]types.Value)
	o.reads = make(map[types.Key]types.Value)
	o.order = o.order[:0]
}
