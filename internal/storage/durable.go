package storage

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"thunderbolt/internal/types"
)

// Durable is the disk-backed Backend: an in-memory versioned index (a
// private Store) kept authoritative for reads, with every apply also
// appended to a CRC-framed segment WAL. Durability is group-committed:
// records accumulate in a write buffer and one fsync covers the whole
// group (size- or time-triggered), so a burst of committed block
// deltas costs one disk sync instead of one per block. The price is a
// bounded durability lag — a crash loses at most the last unsynced
// group, which recovery treats exactly like any other missed suffix
// (torn-tail truncation back to the last durable record, then the
// node's normal in-epoch catch-up replays the rest from peers).
//
// Reopening a directory rebuilds the index by loading the newest
// checkpoint and replaying the WAL records after it; periodic
// checkpoints (every CheckpointEvery records) bound that replay cost
// and let old segments be deleted (compaction).
type Durable struct {
	opts DurableOptions
	dir  string
	mem  *Store

	// mu serializes the apply path (sequence assignment + WAL append
	// must agree on order), segment rotation, and checkpointing.
	// Reads bypass it entirely (they go to mem).
	mu        sync.Mutex
	seg       *os.File
	segStart  uint64 // sequence of the current segment's first record
	segSize   int64
	pending   []byte // encoded frames awaiting the group fsync
	sinceCkpt int
	metaFn    func() []byte
	closed    bool
	err       error // sticky I/O failure; the backend is dead once set

	recMeta  []byte
	recNotes [][]byte

	done chan struct{}
	wg   sync.WaitGroup
}

var (
	_ Backend     = (*Durable)(nil)
	_ Recoverable = (*Durable)(nil)
)

// Recoverable is implemented by backends that persist an owner-defined
// sidecar alongside the state: an opaque meta blob captured atomically
// with every checkpoint, plus the opaque per-record notes appended via
// ApplyNote. The node uses it to persist its commit-path dedup state
// (which must advance in lockstep with the store) and recover both to
// the same position after a restart.
type Recoverable interface {
	// SetMetaFunc registers the sidecar capture. It is invoked
	// synchronously inside ApplyNote/Close when a checkpoint is cut,
	// i.e. on the caller's goroutine — the returned bytes must
	// describe the owner state as of the apply being recorded.
	SetMetaFunc(fn func() []byte)
	// RecoveredMeta returns the meta blob of the checkpoint recovery
	// started from (nil when recovery started from genesis).
	RecoveredMeta() []byte
	// RecoveredNotes returns the notes of every WAL record replayed
	// after the checkpoint, in apply order.
	RecoveredNotes() [][]byte
	// ReleaseRecovered drops the recovered meta and notes once the
	// owner has consumed them, so they do not sit in memory for the
	// backend's lifetime.
	ReleaseRecovered()
}

// DurableOptions parameterizes OpenDurable. The zero value (plus Dir)
// is usable.
type DurableOptions struct {
	// Dir is the data directory (created if missing). Required.
	Dir string
	// GroupBytes triggers the group fsync once this many buffered
	// record bytes accumulate (default 256 KiB).
	GroupBytes int
	// GroupInterval bounds how long a record may wait for its group
	// fsync (default 2ms). Smaller = tighter durability lag, more
	// syncs.
	GroupInterval time.Duration
	// NoSync skips fsync entirely (writes still reach the OS). For
	// tests and throwaway runs; a power failure can then lose more
	// than the last group.
	NoSync bool
	// SegmentBytes rolls the WAL to a fresh segment file past this
	// size (default 8 MiB).
	SegmentBytes int64
	// CheckpointEvery cuts a checkpoint (and compacts old segments)
	// after this many records (default 8192; negative disables).
	CheckpointEvery int
	// KeepLog bounds in-memory commit-log retention, as NewWithLog.
	KeepLog int
}

func (o DurableOptions) withDefaults() DurableOptions {
	if o.GroupBytes <= 0 {
		o.GroupBytes = 256 << 10
	}
	if o.GroupInterval <= 0 {
		o.GroupInterval = 2 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 8192
	}
	return o
}

// OpenDurable opens (or creates) the data directory, rebuilds the
// in-memory index from the newest checkpoint plus WAL replay, and
// truncates any torn tail back to the last durable record.
func OpenDurable(opts DurableOptions) (*Durable, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("storage: durable backend needs a data directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	d := &Durable{
		opts: opts,
		dir:  opts.Dir,
		mem:  NewWithLog(opts.KeepLog),
		done: make(chan struct{}),
	}
	if err := d.recover(); err != nil {
		return nil, err
	}
	d.wg.Add(1)
	go d.flusher()
	return d, nil
}

// recover loads the checkpoint, replays segments, truncates the torn
// tail, and opens the append target.
func (d *Durable) recover() error {
	ck, err := readCheckpoint(d.dir)
	if err != nil {
		return err
	}
	if ck != nil {
		d.mem.mu.Lock()
		d.mem.seq = ck.seq
		for k, e := range ck.data {
			d.mem.data[k] = e
		}
		d.mem.mu.Unlock()
		d.recMeta = ck.meta
	}
	segs, err := listSegments(d.dir)
	if err != nil {
		return err
	}
	appendTo := "" // surviving segment to keep appending into
	for i, path := range segs {
		keep, stop, err := d.replaySegment(path)
		if err != nil {
			return err
		}
		if keep {
			appendTo = path
		}
		if stop {
			// Torn or gapped tail: everything after it is
			// unreachable history — delete the later segments.
			for _, late := range segs[i+1:] {
				if err := os.Remove(late); err != nil {
					return err
				}
			}
			break
		}
	}
	if appendTo == "" {
		return d.newSegmentLocked()
	}
	f, err := os.OpenFile(appendTo, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	d.seg, d.segSize = f, st.Size()
	d.segStart, _ = segStartSeq(appendTo)
	return nil
}

// replaySegment applies one segment's records. keep reports whether
// the file survives as a valid (possibly truncated) segment; stop
// reports that replay must not continue into later segments (torn
// tail or sequence gap found here).
func (d *Durable) replaySegment(path string) (keep, stop bool, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return false, false, err
	}
	hdr := len(segMagic) + 8
	if len(b) < hdr || string(b[:len(segMagic)]) != segMagic {
		// Header never made it to disk: the file holds no records.
		return false, true, os.Remove(path)
	}
	off := hdr
	for off < len(b) {
		payload, next, ok := readFrame(b, off)
		if !ok {
			return true, true, os.Truncate(path, int64(off))
		}
		rec, derr := decodeRecordPayload(payload)
		if derr != nil {
			return true, true, os.Truncate(path, int64(off))
		}
		switch {
		case rec.seq <= d.mem.Seq():
			// Pre-checkpoint history in a segment that outlived its
			// compaction (crash between checkpoint install and
			// segment deletion): already part of the checkpoint.
		case rec.seq == d.mem.Seq()+1:
			d.mem.applyAt(rec.seq, rec.writes)
			d.sinceCkpt++ // replayed records count toward the cadence
			if len(rec.note) > 0 {
				d.recNotes = append(d.recNotes, rec.note)
			}
		default:
			// A sequence gap can only come from corruption; treat
			// the rest of the log as unreachable.
			return true, true, os.Truncate(path, int64(off))
		}
		off = next
	}
	return true, false, nil
}

// newSegmentLocked creates and switches to a fresh segment whose first
// record will carry the next sequence number. Callers hold d.mu (or
// are in single-threaded recovery).
func (d *Durable) newSegmentLocked() error {
	start := d.mem.Seq() + 1
	path := filepath.Join(d.dir, segName(start))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	hdr := append([]byte(segMagic), make([]byte, 8)...)
	binary.BigEndian.PutUint64(hdr[len(segMagic):], start)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if !d.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if d.seg != nil {
		d.seg.Close()
	}
	d.seg, d.segStart, d.segSize = f, start, int64(len(hdr))
	return nil
}

// SetMetaFunc registers the checkpoint sidecar capture (Recoverable).
func (d *Durable) SetMetaFunc(fn func() []byte) {
	d.mu.Lock()
	d.metaFn = fn
	d.mu.Unlock()
}

// RecoveredMeta returns the recovered checkpoint sidecar (Recoverable).
func (d *Durable) RecoveredMeta() []byte { return d.recMeta }

// RecoveredNotes returns the replayed record notes (Recoverable).
func (d *Durable) RecoveredNotes() [][]byte { return d.recNotes }

// ReleaseRecovered frees the recovery sidecar (Recoverable).
func (d *Durable) ReleaseRecovered() { d.recMeta, d.recNotes = nil, nil }

// Apply installs a write batch atomically and appends it to the WAL.
func (d *Durable) Apply(writes []types.RWRecord) uint64 {
	return d.ApplyNote(writes, nil)
}

// ApplyNote is Apply plus an opaque recovery note persisted in the
// same WAL record. The batch is visible to readers immediately;
// durability follows with the group fsync.
func (d *Durable) ApplyNote(writes []types.RWRecord, note []byte) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		panic("storage: apply on closed durable backend")
	}
	if d.err != nil {
		panic(fmt.Sprintf("storage: durable backend failed earlier: %v", d.err))
	}
	// Checkpoints are cut BEFORE this apply's record exists: the
	// owner performs a record's sidecar mutations only after the
	// corresponding ApplyNote returns, so a checkpoint covering
	// records [..n] is consistent exactly when cut before record n+1
	// — cutting it after appending the current record would capture a
	// meta that misses this record's pending mutations while
	// compaction deletes the note that carries them.
	if d.opts.CheckpointEvery > 0 && d.sinceCkpt >= d.opts.CheckpointEvery {
		d.checkpointLocked()
	}
	seq := d.mem.Apply(writes)
	e := types.GetEncoder()
	encodeRecordPayload(e, seq, writes, note)
	d.pending = appendFrame(d.pending, e.Sum())
	types.PutEncoder(e)
	d.sinceCkpt++
	if len(d.pending) >= d.opts.GroupBytes {
		d.flushLocked()
	}
	if d.err != nil {
		panic(fmt.Sprintf("storage: wal append failed: %v", d.err))
	}
	return seq
}

// Set installs a single value through the WAL.
func (d *Durable) Set(k types.Key, v types.Value) {
	d.Apply([]types.RWRecord{{Key: k, Value: v}})
}

// flushLocked writes the pending group to the segment and fsyncs it —
// the group commit. Rolls the segment afterwards if oversized.
func (d *Durable) flushLocked() {
	if len(d.pending) == 0 || d.err != nil {
		return
	}
	n, err := d.seg.Write(d.pending)
	d.segSize += int64(n)
	if err == nil && !d.opts.NoSync {
		err = d.seg.Sync()
	}
	if err != nil {
		d.err = err
		return
	}
	d.pending = d.pending[:0]
	if d.segSize >= d.opts.SegmentBytes && d.segStart <= d.mem.Seq() {
		if err := d.newSegmentLocked(); err != nil {
			d.err = err
		}
	}
}

// checkpointLocked cuts a full-state checkpoint (with the owner's meta
// sidecar), rolls to a fresh segment, and deletes the old ones —
// bounding reopen replay to the records since this point.
func (d *Durable) checkpointLocked() {
	d.flushLocked()
	if d.err != nil {
		return
	}
	var meta []byte
	if d.metaFn != nil {
		meta = d.metaFn()
	}
	d.mem.mu.RLock()
	seq := d.mem.seq
	dump := make([]ckptEntry, 0, len(d.mem.data))
	for k, e := range d.mem.data {
		dump = append(dump, ckptEntry{key: k, val: e.val, ver: e.ver})
	}
	d.mem.mu.RUnlock()
	sort.Slice(dump, func(i, j int) bool { return dump[i].key < dump[j].key })
	if err := writeCheckpoint(d.dir, seq, dump, meta, !d.opts.NoSync); err != nil {
		d.err = err
		return
	}
	if err := d.newSegmentLocked(); err != nil {
		d.err = err
		return
	}
	segs, err := listSegments(d.dir)
	if err != nil {
		d.err = err
		return
	}
	current := filepath.Join(d.dir, segName(d.segStart))
	for _, s := range segs {
		if s != current {
			if err := os.Remove(s); err != nil {
				d.err = err
				return
			}
		}
	}
	d.sinceCkpt = 0
}

// flusher is the group-commit timer: it bounds how long a record can
// wait for its fsync when the size trigger never fires.
func (d *Durable) flusher() {
	defer d.wg.Done()
	tick := time.NewTicker(d.opts.GroupInterval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			d.mu.Lock()
			d.flushLocked()
			d.mu.Unlock()
		case <-d.done:
			return
		}
	}
}

// Sync forces the pending group durable.
func (d *Durable) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.flushLocked()
	return d.err
}

// Close flushes, cuts a final checkpoint (cheap reopen), and releases
// the backend. Call only after the owning node has stopped: the meta
// capture reads owner state.
func (d *Durable) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return d.err
	}
	d.closed = true
	d.mu.Unlock()
	close(d.done)
	d.wg.Wait()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.flushLocked()
	if d.err == nil && d.opts.CheckpointEvery > 0 && d.sinceCkpt > 0 {
		d.checkpointLocked()
	}
	if d.seg != nil {
		if err := d.seg.Close(); err != nil && d.err == nil {
			d.err = err
		}
		d.seg = nil
	}
	return d.err
}

// CloseAbrupt tears the backend down without flushing the pending
// group and without cutting the final checkpoint — the process-crash
// model chaos harnesses want: on-disk state stays exactly as the last
// group commit left it, so a reopen exercises real WAL replay (and
// the group-commit durability lag).
func (d *Durable) CloseAbrupt() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	d.mu.Unlock()
	close(d.done)
	d.wg.Wait()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.seg != nil {
		d.seg.Close()
		d.seg = nil
	}
}

// --- reads: straight to the in-memory index ---

func (d *Durable) Get(k types.Key) (types.Value, bool) { return d.mem.Get(k) }
func (d *Durable) GetVersioned(k types.Key) (types.Value, uint64, bool) {
	return d.mem.GetVersioned(k)
}
func (d *Durable) Version(k types.Key) uint64          { return d.mem.Version(k) }
func (d *Durable) Seq() uint64                         { return d.mem.Seq() }
func (d *Durable) Log() []CommitRecord                 { return d.mem.Log() }
func (d *Durable) Len() int                            { return d.mem.Len() }
func (d *Durable) Snapshot() map[types.Key]types.Value { return d.mem.Snapshot() }
func (d *Durable) Dump() []types.RWRecord              { return d.mem.Dump() }
func (d *Durable) Ascend(fn func(types.RWRecord) bool) { d.mem.Ascend(fn) }
func (d *Durable) Keys() []types.Key                   { return d.mem.Keys() }
