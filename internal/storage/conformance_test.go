package storage

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"thunderbolt/internal/types"
)

// The backend conformance suite: every Backend implementation must
// pass these identically — the executable form of the interface
// contract the node, cluster, and snapshot layers rely on.

// eachBackend runs fn once per backend implementation.
func eachBackend(t *testing.T, keepLog int, fn func(t *testing.T, b Backend)) {
	t.Run("memory", func(t *testing.T) {
		fn(t, NewWithLog(keepLog))
	})
	t.Run("wal", func(t *testing.T) {
		d, err := OpenDurable(DurableOptions{Dir: t.TempDir(), KeepLog: keepLog})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = d.Close() })
		fn(t, d)
	})
}

func rec(k string, v string) types.RWRecord {
	return types.RWRecord{Key: types.Key(k), Value: types.Value(v)}
}

func TestConformanceVersioning(t *testing.T) {
	eachBackend(t, 0, func(t *testing.T, b Backend) {
		if b.Seq() != 0 || b.Len() != 0 {
			t.Fatalf("fresh backend not empty: seq=%d len=%d", b.Seq(), b.Len())
		}
		s1 := b.Apply([]types.RWRecord{rec("a", "1"), rec("b", "2")})
		s2 := b.Apply([]types.RWRecord{rec("b", "3")})
		if s1 != 1 || s2 != 2 {
			t.Fatalf("sequence numbers %d,%d want 1,2", s1, s2)
		}
		if v, ver, ok := b.GetVersioned("a"); !ok || string(v) != "1" || ver != s1 {
			t.Fatalf("a = %q@%d ok=%v", v, ver, ok)
		}
		if v, ver, ok := b.GetVersioned("b"); !ok || string(v) != "3" || ver != s2 {
			t.Fatalf("b = %q@%d ok=%v", v, ver, ok)
		}
		if ver := b.Version("missing"); ver != 0 {
			t.Fatalf("missing key version %d want 0", ver)
		}
		// Empty applies and Set both consume exactly one sequence
		// number (the commit path's step counter must not depend on
		// whether a wave produced writes).
		if s := b.Apply(nil); s != 3 {
			t.Fatalf("empty apply seq %d want 3", s)
		}
		b.Set("c", types.Value("9"))
		if b.Seq() != 4 || b.Version("c") != 4 {
			t.Fatalf("after Set: seq=%d ver(c)=%d want 4,4", b.Seq(), b.Version("c"))
		}
	})
}

func TestConformanceAtomicApply(t *testing.T) {
	eachBackend(t, 0, func(t *testing.T, b Backend) {
		// Every key of one batch carries the same install version.
		batch := []types.RWRecord{rec("x", "1"), rec("y", "1"), rec("z", "1")}
		seq := b.Apply(batch)
		for _, w := range batch {
			if ver := b.Version(w.Key); ver != seq {
				t.Fatalf("key %s version %d want %d", w.Key, ver, seq)
			}
		}
		// Concurrent appliers: sequence numbers stay dense and every
		// key's version equals some issued sequence (no torn stamps).
		const appliers, each = 4, 50
		var wg sync.WaitGroup
		for a := 0; a < appliers; a++ {
			wg.Add(1)
			go func(a int) {
				defer wg.Done()
				for i := 0; i < each; i++ {
					b.Apply([]types.RWRecord{rec(fmt.Sprintf("k%d", a), fmt.Sprintf("%d", i))})
				}
			}(a)
		}
		wg.Wait()
		if got, want := b.Seq(), seq+appliers*each; got != want {
			t.Fatalf("seq %d want %d", got, want)
		}
	})
}

func TestConformanceDumpOrderAndAliasing(t *testing.T) {
	eachBackend(t, 0, func(t *testing.T, b Backend) {
		b.Apply([]types.RWRecord{rec("b", "2"), rec("a", "1"), rec("c", "3")})
		dump := b.Dump()
		if len(dump) != 3 {
			t.Fatalf("dump has %d records", len(dump))
		}
		for i := 1; i < len(dump); i++ {
			if dump[i-1].Key >= dump[i].Key {
				t.Fatalf("dump not strictly ascending at %d: %s >= %s", i, dump[i-1].Key, dump[i].Key)
			}
		}
		// Ascend streams the same sequence.
		var streamed []types.RWRecord
		b.Ascend(func(r types.RWRecord) bool {
			streamed = append(streamed, types.RWRecord{Key: r.Key, Value: r.Value.Clone()})
			return true
		})
		if len(streamed) != len(dump) {
			t.Fatalf("ascend yielded %d records, dump %d", len(streamed), len(dump))
		}
		for i := range dump {
			if dump[i].Key != streamed[i].Key || !dump[i].Value.Equal(streamed[i].Value) {
				t.Fatalf("ascend diverges from dump at %d", i)
			}
		}
		// Early stop.
		count := 0
		b.Ascend(func(types.RWRecord) bool { count++; return false })
		if count != 1 {
			t.Fatalf("ascend ignored early stop: %d visits", count)
		}
		// Dumped values must not alias the store.
		dump[0].Value[0] = 'X'
		if v, _ := b.Get(dump[0].Key); v[0] == 'X' {
			t.Fatal("dump aliases backend state")
		}
		// Keys sorted.
		keys := b.Keys()
		for i := 1; i < len(keys); i++ {
			if keys[i-1] >= keys[i] {
				t.Fatalf("keys not sorted at %d", i)
			}
		}
	})
}

// driveSequence applies a fixed batch/note sequence to a backend —
// the shared script for cross-backend and replay identity checks.
func driveSequence(b Backend) {
	for i := 0; i < 40; i++ {
		var writes []types.RWRecord
		for j := 0; j <= i%3; j++ {
			writes = append(writes, rec(fmt.Sprintf("k%02d", (i*7+j)%16), fmt.Sprintf("v%d", i)))
		}
		if i%5 == 0 {
			b.ApplyNote(writes, []byte(fmt.Sprintf("note-%d", i)))
		} else {
			b.Apply(writes)
		}
		if i%11 == 3 {
			b.ApplyNote(nil, []byte(fmt.Sprintf("bare-%d", i))) // note-only record
		}
	}
}

func dumpBytes(t *testing.T, b Backend) []byte {
	t.Helper()
	e := types.NewEncoder()
	for _, r := range b.Dump() {
		e.Str(string(r.Key))
		e.Bytes(r.Value)
	}
	e.U64(b.Seq())
	return e.Sum()
}

// TestConformanceCrossBackendIdentity drives the identical apply
// sequence through both backends and requires bit-identical state,
// sequence position, and retained commit logs.
func TestConformanceCrossBackendIdentity(t *testing.T) {
	mem := NewWithLog(64)
	wal, err := OpenDurable(DurableOptions{Dir: t.TempDir(), KeepLog: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	driveSequence(mem)
	driveSequence(wal)
	if !bytes.Equal(dumpBytes(t, mem), dumpBytes(t, wal)) {
		t.Fatal("memory and WAL backends diverge under the same apply sequence")
	}
	ml, wl := mem.Log(), wal.Log()
	if len(ml) != len(wl) {
		t.Fatalf("commit logs differ in length: %d vs %d", len(ml), len(wl))
	}
	for i := range ml {
		if ml[i].Seq != wl[i].Seq || len(ml[i].Writes) != len(wl[i].Writes) {
			t.Fatalf("commit log record %d differs", i)
		}
		for j := range ml[i].Writes {
			if ml[i].Writes[j].Key != wl[i].Writes[j].Key ||
				!ml[i].Writes[j].Value.Equal(wl[i].Writes[j].Value) {
				t.Fatalf("commit log record %d write %d differs", i, j)
			}
		}
	}
}

// TestConformanceWALReplayIdentity closes and reopens the durable
// backend and requires the replayed state (and retained commit log)
// to be bit-identical to the pre-close state — with and without an
// intervening checkpoint.
func TestConformanceWALReplayIdentity(t *testing.T) {
	for _, ckptEvery := range []int{-1, 7} {
		t.Run(fmt.Sprintf("checkpointEvery=%d", ckptEvery), func(t *testing.T) {
			dir := t.TempDir()
			open := func() *Durable {
				d, err := OpenDurable(DurableOptions{
					Dir: dir, KeepLog: 64, CheckpointEvery: ckptEvery,
					SegmentBytes: 512, // force rotations mid-sequence
				})
				if err != nil {
					t.Fatal(err)
				}
				return d
			}
			d := open()
			driveSequence(d)
			before := dumpBytes(t, d)
			beforeLog := d.Log()
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}

			re := open()
			defer re.Close()
			if !bytes.Equal(before, dumpBytes(t, re)) {
				t.Fatal("reopened state diverges from pre-close state")
			}
			// With a checkpoint the pre-checkpoint commit log is
			// folded into the checkpoint (retention is bounded by
			// construction); without one the full retained log must
			// replay identically.
			if ckptEvery < 0 {
				reLog := re.Log()
				if len(reLog) != len(beforeLog) {
					t.Fatalf("replayed commit log has %d records, want %d", len(reLog), len(beforeLog))
				}
				for i := range reLog {
					if reLog[i].Seq != beforeLog[i].Seq {
						t.Fatalf("replayed commit log record %d seq %d want %d", i, reLog[i].Seq, beforeLog[i].Seq)
					}
				}
			}
		})
	}
}
