package storage

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"thunderbolt/internal/types"
)

func TestGetSet(t *testing.T) {
	s := New()
	if _, ok := s.Get("missing"); ok {
		t.Fatal("missing key reported present")
	}
	s.Set("a", types.Value("1"))
	v, ok := s.Get("a")
	if !ok || string(v) != "1" {
		t.Fatalf("got %q ok=%v", v, ok)
	}
}

func TestApplyAtomicVersioning(t *testing.T) {
	s := New()
	seq1 := s.Apply([]types.RWRecord{{Key: "a", Value: types.Value("1")}, {Key: "b", Value: types.Value("2")}})
	seq2 := s.Apply([]types.RWRecord{{Key: "a", Value: types.Value("3")}})
	if seq2 <= seq1 {
		t.Fatalf("sequence not increasing: %d then %d", seq1, seq2)
	}
	if _, ver, _ := s.GetVersioned("a"); ver != seq2 {
		t.Fatalf("a version=%d want %d", ver, seq2)
	}
	if _, ver, _ := s.GetVersioned("b"); ver != seq1 {
		t.Fatalf("b version=%d want %d", ver, seq1)
	}
	if s.Version("nope") != 0 {
		t.Fatal("missing key should have version 0")
	}
	if s.Seq() != seq2 {
		t.Fatalf("Seq=%d want %d", s.Seq(), seq2)
	}
}

func TestApplyRetainsBuffers(t *testing.T) {
	// Apply's contract is hand-over: the store retains the value
	// buffers uncloned (callers never mutate them afterwards), so a
	// read must observe exactly the installed bytes with no copy in
	// between.
	s := New()
	v := types.Value("abc")
	s.Apply([]types.RWRecord{{Key: "k", Value: v}})
	got, _ := s.Get("k")
	if string(got) != "abc" {
		t.Fatalf("Get=%q want %q", got, "abc")
	}
	if &got[0] != &v[0] {
		t.Fatal("expected the store to retain the caller's buffer without copying")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	s := New()
	s.Set("a", types.Value("1"))
	snap := s.Snapshot()
	s.Set("a", types.Value("2"))
	if string(snap["a"]) != "1" {
		t.Fatal("snapshot observed later write")
	}
	snap["a"][0] = 'Z'
	got, _ := s.Get("a")
	if string(got) != "2" {
		t.Fatal("mutating snapshot affected store")
	}
}

func TestCommitLogRetention(t *testing.T) {
	s := NewWithLog(2)
	for i := 0; i < 5; i++ {
		s.Apply([]types.RWRecord{{Key: "k", Value: types.Value(fmt.Sprintf("%d", i))}})
	}
	log := s.Log()
	if len(log) != 2 {
		t.Fatalf("retained %d records, want 2", len(log))
	}
	if string(log[1].Writes[0].Value) != "4" {
		t.Fatalf("latest record wrong: %+v", log[1])
	}
	// Empty batches are not logged but still consume a sequence number.
	before := s.Seq()
	s.Apply(nil)
	if len(s.Log()) != 2 || s.Seq() != before+1 {
		t.Fatal("empty batch logging behavior wrong")
	}
}

func TestKeysSorted(t *testing.T) {
	s := New()
	for _, k := range []types.Key{"c", "a", "b"} {
		s.Set(k, types.Value("x"))
	}
	ks := s.Keys()
	if len(ks) != 3 || ks[0] != "a" || ks[2] != "c" {
		t.Fatalf("keys not sorted: %v", ks)
	}
	if s.Len() != 3 {
		t.Fatalf("Len=%d", s.Len())
	}
}

func TestConcurrentApplyAndGet(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			k := types.Key(fmt.Sprintf("k%d", g))
			for i := 0; i < 200; i++ {
				s.Apply([]types.RWRecord{{Key: k, Value: types.Value(fmt.Sprintf("%d", i))}})
				if v, ok := s.Get(k); !ok || len(v) == 0 {
					t.Errorf("lost write on %s", k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Seq() != 8*200 {
		t.Fatalf("Seq=%d want %d", s.Seq(), 8*200)
	}
}

func TestOverlayReadYourWrites(t *testing.T) {
	s := New()
	s.Set("a", types.Value("base"))
	o := NewOverlay(s)
	v, ok := o.Get("a")
	if !ok || string(v) != "base" {
		t.Fatalf("read-through failed: %q", v)
	}
	o.Set("a", types.Value("mine"))
	if v, _ := o.Get("a"); string(v) != "mine" {
		t.Fatal("overlay did not see own write")
	}
	// Base unchanged until flush.
	if v, _ := s.Get("a"); string(v) != "base" {
		t.Fatal("overlay leaked before flush")
	}
	o.Flush()
	if v, _ := s.Get("a"); string(v) != "mine" {
		t.Fatal("flush did not apply")
	}
}

func TestOverlayWriteOrderAndReset(t *testing.T) {
	o := NewOverlay(New())
	o.Set("b", types.Value("1"))
	o.Set("a", types.Value("2"))
	o.Set("b", types.Value("3")) // overwrite keeps first-write position
	ws := o.Writes()
	if len(ws) != 2 || ws[0].Key != "b" || string(ws[0].Value) != "3" || ws[1].Key != "a" {
		t.Fatalf("write order wrong: %+v", ws)
	}
	o.Reset()
	if len(o.Writes()) != 0 {
		t.Fatal("reset did not clear writes")
	}
}

func TestVersionMonotonicQuick(t *testing.T) {
	s := New()
	last := uint64(0)
	f := func(key string, val []byte) bool {
		seq := s.Apply([]types.RWRecord{{Key: types.Key(key), Value: val}})
		ok := seq > last
		last = seq
		if v, ver, _ := s.GetVersioned(types.Key(key)); ver != seq || !v.Equal(val) {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
