package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"thunderbolt/internal/types"
)

// On-disk format of the durable backend (see durable.go for the
// engine). A data directory holds:
//
//	checkpoint.ckpt     full-state checkpoint (atomic rename install)
//	wal-<seq16x>.seg    append-only record segments, named by the
//	                    sequence number of their first record
//
// Every record and the checkpoint body are CRC-framed:
//
//	u32 payload length | u32 CRC-32C(payload) | payload
//
// so a torn tail (crash mid-write) is detected by a short or
// mismatching frame and truncated away rather than misread. Record
// payloads are canonical types.Encoder encodings:
//
//	u64 seq | u32 nWrites | { key, value } * nWrites | note
//
// and the checkpoint payload is:
//
//	u64 seq | u64 nKeys | { key, value, u64 version } * nKeys | meta

var crcTable = crc32.MakeTable(crc32.Castagnoli)

const (
	segMagic  = "TBWAL001"
	ckptMagic = "TBCKPT01"
	frameHdr  = 8 // u32 length + u32 crc

	ckptName = "checkpoint.ckpt"
	ckptTmp  = "checkpoint.tmp"
)

func segName(startSeq uint64) string {
	return fmt.Sprintf("wal-%016x.seg", startSeq)
}

// segStartSeq parses the first-record sequence number out of a
// segment file name; ok is false for foreign files.
func segStartSeq(name string) (uint64, bool) {
	base := filepath.Base(name)
	if !strings.HasPrefix(base, "wal-") || !strings.HasSuffix(base, ".seg") {
		return 0, false
	}
	v, err := strconv.ParseUint(base[len("wal-"):len(base)-len(".seg")], 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// listSegments returns the data directory's segment paths in ascending
// first-sequence order.
func listSegments(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []string
	for _, e := range ents {
		if _, ok := segStartSeq(e.Name()); ok && !e.IsDir() {
			segs = append(segs, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(segs) // zero-padded hex names sort by sequence
	return segs, nil
}

// appendFrame appends one CRC frame around payload to buf.
func appendFrame(buf, payload []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	return append(buf, payload...)
}

// readFrame slices one frame's payload out of b at off. A short,
// implausible, or corrupt frame returns ok=false: the caller treats
// off as the torn tail and truncates there.
func readFrame(b []byte, off int) (payload []byte, next int, ok bool) {
	if off+frameHdr > len(b) {
		return nil, 0, false
	}
	n := int(binary.BigEndian.Uint32(b[off:]))
	crc := binary.BigEndian.Uint32(b[off+4:])
	if n < 0 || off+frameHdr+n > len(b) {
		return nil, 0, false
	}
	payload = b[off+frameHdr : off+frameHdr+n]
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, 0, false
	}
	return payload, off + frameHdr + n, true
}

// walRecord is one decoded WAL record.
type walRecord struct {
	seq    uint64
	writes []types.RWRecord
	note   []byte
}

// encodeRecordPayload appends the canonical record payload for one
// apply to the encoder.
func encodeRecordPayload(e *types.Encoder, seq uint64, writes []types.RWRecord, note []byte) {
	e.U64(seq)
	e.U32(uint32(len(writes)))
	for _, w := range writes {
		e.Str(string(w.Key))
		e.Bytes(w.Value)
	}
	e.Bytes(note)
}

// decodeRecordPayload parses one record payload. Decoded writes and
// the note alias b (the caller owns the segment buffer for the life
// of the open).
func decodeRecordPayload(b []byte) (walRecord, error) {
	d := types.NewSharedDecoder(b)
	rec := walRecord{seq: d.U64()}
	n := d.U32()
	if d.Err() == nil && int(n) > len(b) {
		return rec, fmt.Errorf("storage: implausible write count %d", n)
	}
	rec.writes = make([]types.RWRecord, 0, n)
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		rec.writes = append(rec.writes, types.RWRecord{Key: types.Key(d.Str()), Value: d.Bytes()})
	}
	// Copy the note out of the shared buffer: recovered notes are
	// retained past replay (until the owner consumes them), and an
	// aliasing note would pin its entire segment buffer.
	if note := d.Bytes(); len(note) > 0 {
		rec.note = append([]byte(nil), note...)
	}
	return rec, d.Finish()
}

// checkpoint is a decoded checkpoint file.
type checkpoint struct {
	seq  uint64
	data map[types.Key]entry
	meta []byte
}

// writeCheckpoint atomically installs a checkpoint for the given
// state: write to a temp file, fsync, rename over the live name,
// fsync the directory. A crash at any point leaves either the old or
// the new checkpoint intact, never a torn one (the CRC frame rejects
// a torn temp file that was never renamed).
func writeCheckpoint(dir string, seq uint64, dump []ckptEntry, meta []byte, sync bool) error {
	e := types.NewEncoder()
	e.U64(seq)
	e.U64(uint64(len(dump)))
	for _, ce := range dump {
		e.Str(string(ce.key))
		e.Bytes(ce.val)
		e.U64(ce.ver)
	}
	e.Bytes(meta)
	buf := appendFrame([]byte(ckptMagic), e.Sum())

	tmp := filepath.Join(dir, ckptTmp)
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, ckptName)); err != nil {
		return err
	}
	if sync {
		return syncDir(dir)
	}
	return nil
}

type ckptEntry struct {
	key types.Key
	val types.Value
	ver uint64
}

// readCheckpoint loads the checkpoint; nil when none exists. A
// checkpoint that exists but fails validation is an error, never a
// silent "start from genesis": the WAL segments it compacted are
// gone, so replaying without it would hit a sequence gap and the
// torn-tail rule would then destroy the remaining valid log — a
// corrupt checkpoint needs an operator, not an empty store. (A crash
// can never tear the live checkpoint: writes go to a temp file and
// install by atomic rename.)
func readCheckpoint(dir string) (*checkpoint, error) {
	b, err := os.ReadFile(filepath.Join(dir, ckptName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	corrupt := func(why string) (*checkpoint, error) {
		return nil, fmt.Errorf("storage: corrupt checkpoint in %s (%s); refusing to recover over it", dir, why)
	}
	if len(b) < len(ckptMagic) || string(b[:len(ckptMagic)]) != ckptMagic {
		return corrupt("bad magic")
	}
	payload, _, ok := readFrame(b, len(ckptMagic))
	if !ok {
		return corrupt("bad frame")
	}
	d := types.NewSharedDecoder(payload)
	ck := &checkpoint{seq: d.U64(), data: make(map[types.Key]entry)}
	n := d.U64()
	if d.Err() == nil && n > uint64(len(payload)) {
		return corrupt("implausible key count")
	}
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		k := types.Key(d.Str())
		v := types.Value(d.Bytes())
		ck.data[k] = entry{val: v, ver: d.U64()}
	}
	// The meta sidecar must not alias b (the whole checkpoint buffer
	// would stay pinned for the backend's lifetime).
	ck.meta = append([]byte(nil), d.Bytes()...)
	if len(ck.meta) == 0 {
		ck.meta = nil
	}
	if d.Finish() != nil {
		return corrupt("truncated payload")
	}
	return ck, nil
}

func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}
