package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"thunderbolt/internal/types"
)

func openTest(t *testing.T, dir string, o DurableOptions) *Durable {
	t.Helper()
	o.Dir = dir
	d, err := OpenDurable(o)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDurableCrashMidBatchTornTail proves the acceptance property for
// torn tails: a crash mid-group loses only the unsynced suffix, and a
// physically torn record at the tail (partial write) is truncated
// away — recovery lands exactly on the last group commit.
func TestDurableCrashMidBatchTornTail(t *testing.T) {
	dir := t.TempDir()
	// GroupInterval an hour out: only explicit Sync flushes, so the
	// crash deterministically loses the unsynced suffix.
	d := openTest(t, dir, DurableOptions{CheckpointEvery: -1, GroupInterval: time.Hour})
	for i := 0; i < 10; i++ {
		d.Apply([]types.RWRecord{rec(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))})
	}
	if err := d.Sync(); err != nil { // group commit: everything ≤ seq 10 durable
		t.Fatal(err)
	}
	durableDump := dumpBytes(t, d)
	// Three more applies that never reach their group fsync.
	for i := 10; i < 13; i++ {
		d.Apply([]types.RWRecord{rec(fmt.Sprintf("k%d", i), "lost")})
	}
	d.CloseAbrupt()

	re := openTest(t, dir, DurableOptions{CheckpointEvery: -1})
	if re.Seq() != 10 {
		t.Fatalf("recovered to seq %d, want the last group commit at 10", re.Seq())
	}
	if !bytes.Equal(durableDump, dumpBytes(t, re)) {
		t.Fatal("recovered state diverges from the last durable group")
	}
	// Now tear the tail physically: a partial record (header claims
	// more bytes than exist) appended by a crash mid-write.
	re.Apply([]types.RWRecord{rec("k10", "v10")})
	if err := re.Sync(); err != nil {
		t.Fatal(err)
	}
	after := dumpBytes(t, re)
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	re.CloseAbrupt()
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 1, 200, 0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re2 := openTest(t, dir, DurableOptions{CheckpointEvery: -1})
	defer re2.Close()
	if re2.Seq() != 11 || !bytes.Equal(after, dumpBytes(t, re2)) {
		t.Fatalf("torn tail not truncated to last good record: seq=%d", re2.Seq())
	}
	// The truncation must be physical: a further reopen sees a clean
	// log (and the backend can append to it again).
	re2.Apply([]types.RWRecord{rec("k11", "v11")})
	if err := re2.Sync(); err != nil {
		t.Fatal(err)
	}
	if re2.Seq() != 12 {
		t.Fatalf("append after truncation broken: seq=%d", re2.Seq())
	}
}

// TestDurableCorruptMiddleStopsReplay: a flipped bit mid-log ends
// recovery at the last good record before it; later segments are
// discarded rather than replayed over a hole.
func TestDurableCorruptMiddleStopsReplay(t *testing.T) {
	dir := t.TempDir()
	// GroupBytes 1 flushes every record so the small SegmentBytes
	// actually forces rotations.
	d := openTest(t, dir, DurableOptions{CheckpointEvery: -1, SegmentBytes: 256, GroupBytes: 1})
	for i := 0; i < 30; i++ {
		d.Apply([]types.RWRecord{rec(fmt.Sprintf("k%02d", i), fmt.Sprintf("v%d", i))})
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %d", len(segs))
	}
	// Flip one payload byte in the middle segment.
	mid := segs[len(segs)/2]
	b, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(mid, b, 0o644); err != nil {
		t.Fatal(err)
	}

	re := openTest(t, dir, DurableOptions{CheckpointEvery: -1})
	defer re.Close()
	if re.Seq() == 0 || re.Seq() >= 30 {
		t.Fatalf("replay past corruption: seq=%d", re.Seq())
	}
	left, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range left {
		if s > mid {
			t.Fatalf("segment after corruption survived: %s", filepath.Base(s))
		}
	}
}

// TestDurableCheckpointCompaction: checkpoints bound segment count and
// replay cost, and carry the owner meta sidecar.
func TestDurableCheckpointCompaction(t *testing.T) {
	dir := t.TempDir()
	d := openTest(t, dir, DurableOptions{CheckpointEvery: 8, SegmentBytes: 1 << 20})
	gen := 0
	d.SetMetaFunc(func() []byte {
		gen++
		return []byte(fmt.Sprintf("meta-%d-seq-%d", gen, d.mem.Seq()))
	})
	for i := 0; i < 50; i++ {
		d.ApplyNote([]types.RWRecord{rec(fmt.Sprintf("k%02d", i%8), fmt.Sprintf("v%d", i))},
			[]byte(fmt.Sprintf("n%d", i)))
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("compaction left %d segments, want 1", len(segs))
	}
	before := dumpBytes(t, d)
	if err := d.Close(); err != nil { // final checkpoint
		t.Fatal(err)
	}

	re := openTest(t, dir, DurableOptions{CheckpointEvery: 8})
	defer re.Close()
	if !bytes.Equal(before, dumpBytes(t, re)) {
		t.Fatal("post-checkpoint reopen diverges")
	}
	meta := re.RecoveredMeta()
	if len(meta) == 0 || !bytes.HasPrefix(meta, []byte("meta-")) {
		t.Fatalf("meta sidecar not recovered: %q", meta)
	}
	if n := len(re.RecoveredNotes()); n != 0 {
		// Close cut a checkpoint at the exact tail, so no notes
		// remain to replay.
		t.Fatalf("expected no post-checkpoint notes, got %d", n)
	}
}

// TestDurableNotesRecoverInOrder: notes appended after the last
// checkpoint come back in apply order on reopen.
func TestDurableNotesRecoverInOrder(t *testing.T) {
	dir := t.TempDir()
	d := openTest(t, dir, DurableOptions{CheckpointEvery: -1})
	d.SetMetaFunc(func() []byte { return []byte("m") })
	for i := 0; i < 12; i++ {
		note := []byte(nil)
		if i%2 == 0 {
			note = []byte(fmt.Sprintf("note-%02d", i))
		}
		d.ApplyNote([]types.RWRecord{rec("k", fmt.Sprintf("%d", i))}, note)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	d.CloseAbrupt()

	re := openTest(t, dir, DurableOptions{CheckpointEvery: -1})
	defer re.Close()
	notes := re.RecoveredNotes()
	if len(notes) != 6 {
		t.Fatalf("recovered %d notes, want 6", len(notes))
	}
	for i, n := range notes {
		want := fmt.Sprintf("note-%02d", i*2)
		if string(n) != want {
			t.Fatalf("note %d = %q, want %q", i, n, want)
		}
	}
	if re.RecoveredMeta() != nil {
		t.Fatalf("no checkpoint was cut, meta should be nil, got %q", re.RecoveredMeta())
	}
}

// TestDurableSidecarConsistencyAcrossCheckpoints emulates the owner
// discipline the node relies on — a record's sidecar mutation happens
// AFTER its ApplyNote returns, and metaFn captures the accumulated
// state. Whatever the checkpoint cadence, meta + replayed notes must
// reconstruct the state exactly once per record: a checkpoint cut at
// the wrong moment would either double-count a record (meta includes
// it AND its note survives) or drop it (meta misses it and compaction
// deleted its note).
func TestDurableSidecarConsistencyAcrossCheckpoints(t *testing.T) {
	dir := t.TempDir()
	d := openTest(t, dir, DurableOptions{CheckpointEvery: 5, GroupInterval: time.Hour})
	counter := 0
	d.SetMetaFunc(func() []byte { return []byte(fmt.Sprintf("%d", counter)) })
	const total = 23
	for i := 0; i < total; i++ {
		d.ApplyNote([]types.RWRecord{rec("k", fmt.Sprintf("%d", i))}, []byte{1})
		counter++ // the owner mutation this record's note stands for
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	d.CloseAbrupt()

	re := openTest(t, dir, DurableOptions{CheckpointEvery: 5})
	defer re.Close()
	got := 0
	if m := re.RecoveredMeta(); len(m) > 0 {
		if _, err := fmt.Sscanf(string(m), "%d", &got); err != nil {
			t.Fatal(err)
		}
	}
	got += len(re.RecoveredNotes())
	if got != total {
		t.Fatalf("sidecar reconstruction = meta+notes = %d, want exactly %d", got, total)
	}
}

// TestDurableCorruptCheckpointRefusesOpen: a checkpoint that exists
// but fails validation must surface an error — recovering "from
// genesis" over it would hit a sequence gap at the first
// post-compaction record and the torn-tail rule would then destroy
// the remaining valid log.
func TestDurableCorruptCheckpointRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	d := openTest(t, dir, DurableOptions{CheckpointEvery: 4})
	for i := 0; i < 10; i++ {
		d.Apply([]types.RWRecord{rec("k", fmt.Sprintf("%d", i))})
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	ck := filepath.Join(dir, ckptName)
	b, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(ck, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(DurableOptions{Dir: dir}); err == nil {
		t.Fatal("open over a corrupt checkpoint must fail, not silently reset to genesis")
	}
}
