// Package contract defines the smart-contract execution interface.
//
// A contract is opaque executable logic whose data accesses go through
// a State accessor. Nothing about its read/write set is known before
// execution — the defining property of Turing-complete contracts that
// Thunderbolt's Concurrent Executor is designed around. Contracts may
// be native Go (this package) or bytecode run by internal/vm; both
// present the same interface to the executors.
package contract

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"thunderbolt/internal/types"
)

// State is the data accessor handed to executing contract code. Every
// read and write flows through it, which is how the concurrency
// controller observes access patterns at runtime.
//
// Read and Write may return an error to signal that the surrounding
// transaction has been aborted by the controller; contract code must
// stop and propagate it immediately.
type State interface {
	Read(k types.Key) (types.Value, error)
	Write(k types.Key, v types.Value) error
}

// ErrAborted is returned by State accessors when the concurrency
// controller has aborted the transaction mid-flight. The executor
// re-runs the transaction from the start.
var ErrAborted = errors.New("contract: transaction aborted by concurrency controller")

// ErrContractFailure wraps application-level failures (e.g. malformed
// arguments). These are terminal: the transaction commits no writes
// and is not retried.
var ErrContractFailure = errors.New("contract: execution failed")

// Failf builds a terminal contract failure.
func Failf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrContractFailure, fmt.Sprintf(format, args...))
}

// Contract is a deployed, callable unit of logic. Implementations must
// be pure functions of (state, args): the paper's data model assumes
// idempotent functions, which is what makes preplay + replay
// validation sound.
type Contract interface {
	// Name is the registry key clients reference in Transaction.Contract.
	Name() string
	// Execute runs the contract against st with the given arguments.
	Execute(st State, args [][]byte) error
}

// Func adapts a plain function to the Contract interface.
type Func struct {
	ContractName string
	Fn           func(st State, args [][]byte) error
}

// Name implements Contract.
func (f Func) Name() string { return f.ContractName }

// Execute implements Contract.
func (f Func) Execute(st State, args [][]byte) error { return f.Fn(st, args) }

// Registry maps contract names to implementations. It is safe for
// concurrent use; registration normally happens at node startup.
type Registry struct {
	mu        sync.RWMutex
	contracts map[string]Contract
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{contracts: make(map[string]Contract)}
}

// Register adds c; it returns an error if the name is already taken.
func (r *Registry) Register(c Contract) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.contracts[c.Name()]; dup {
		return fmt.Errorf("contract: %q already registered", c.Name())
	}
	r.contracts[c.Name()] = c
	return nil
}

// MustRegister is Register that panics on duplicates (startup use).
func (r *Registry) MustRegister(c Contract) {
	if err := r.Register(c); err != nil {
		panic(err)
	}
}

// Lookup resolves a contract by name.
func (r *Registry) Lookup(name string) (Contract, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.contracts[name]
	return c, ok
}

// Names returns the registered contract names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.contracts))
	for n := range r.contracts {
		out = append(out, n)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// --- Value helpers ---

// EncodeInt64 renders v as the canonical 8-byte big-endian value used
// for balances and counters.
func EncodeInt64(v int64) types.Value {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

// DecodeInt64 parses a value written by EncodeInt64. Missing (nil)
// values decode to zero, so uninitialized balances read as 0.
func DecodeInt64(v types.Value) (int64, error) {
	if len(v) == 0 {
		return 0, nil
	}
	if len(v) != 8 {
		return 0, fmt.Errorf("contract: int64 value has %d bytes", len(v))
	}
	return int64(binary.BigEndian.Uint64(v)), nil
}

// ReadInt64 reads and decodes an integer cell.
func ReadInt64(st State, k types.Key) (int64, error) {
	v, err := st.Read(k)
	if err != nil {
		return 0, err
	}
	return DecodeInt64(v)
}

// WriteInt64 encodes and writes an integer cell.
func WriteInt64(st State, k types.Key, v int64) error {
	return st.Write(k, EncodeInt64(v))
}
