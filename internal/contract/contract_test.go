package contract

import (
	"errors"
	"testing"
	"testing/quick"

	"thunderbolt/internal/types"
)

type mapState map[types.Key]types.Value

func (m mapState) Read(k types.Key) (types.Value, error)  { return m[k], nil }
func (m mapState) Write(k types.Key, v types.Value) error { m[k] = v.Clone(); return nil }

func TestRegistryRegisterAndLookup(t *testing.T) {
	r := NewRegistry()
	c := Func{ContractName: "a.b", Fn: func(State, [][]byte) error { return nil }}
	if err := r.Register(c); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(c); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	got, ok := r.Lookup("a.b")
	if !ok || got.Name() != "a.b" {
		t.Fatal("lookup failed")
	}
	if _, ok := r.Lookup("missing"); ok {
		t.Fatal("phantom contract")
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"c", "a", "b"} {
		r.MustRegister(Func{ContractName: n, Fn: func(State, [][]byte) error { return nil }})
	}
	names := r.Names()
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Fatalf("names not sorted: %v", names)
	}
}

func TestMustRegisterPanics(t *testing.T) {
	r := NewRegistry()
	c := Func{ContractName: "x", Fn: func(State, [][]byte) error { return nil }}
	r.MustRegister(c)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.MustRegister(c)
}

func TestInt64Codec(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 1 << 40, -(1 << 40)} {
		got, err := DecodeInt64(EncodeInt64(v))
		if err != nil || got != v {
			t.Fatalf("roundtrip %d -> %d err=%v", v, got, err)
		}
	}
	if v, err := DecodeInt64(nil); err != nil || v != 0 {
		t.Fatal("nil should decode as 0")
	}
	if _, err := DecodeInt64(types.Value("abc")); err == nil {
		t.Fatal("short value accepted")
	}
}

func TestInt64CodecQuick(t *testing.T) {
	f := func(v int64) bool {
		got, err := DecodeInt64(EncodeInt64(v))
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadWriteInt64Helpers(t *testing.T) {
	st := mapState{}
	if err := WriteInt64(st, "k", 42); err != nil {
		t.Fatal(err)
	}
	v, err := ReadInt64(st, "k")
	if err != nil || v != 42 {
		t.Fatalf("got %d err=%v", v, err)
	}
	// Missing key reads as zero.
	if v, err := ReadInt64(st, "missing"); err != nil || v != 0 {
		t.Fatalf("missing: %d err=%v", v, err)
	}
}

func TestFailf(t *testing.T) {
	err := Failf("boom %d", 7)
	if !errors.Is(err, ErrContractFailure) {
		t.Fatal("Failf must wrap ErrContractFailure")
	}
	if errors.Is(err, ErrAborted) {
		t.Fatal("contract failure must not look like a controller abort")
	}
}
