package metrics

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

// histBuckets is the fixed bucket count of a Histogram: bucket 0
// holds zero-valued observations and bucket i holds values in
// [2^(i-1), 2^i) nanoseconds. 64 value buckets cover every possible
// time.Duration, so recording never needs a range check beyond the
// negative clamp.
const histBuckets = 65

// Histogram is a fixed log₂-bucket latency histogram. Record is one
// atomic add into a fixed array plus one into the running sum — no
// locks, no allocations — so it can sit on the per-block commit path
// of a GOMAXPROCS=1 bench run without showing up in the profile.
//
// The price of log₂ buckets is resolution: a quantile is reported as
// its bucket's upper bound, which overstates the true value by at
// most 2×. For steering optimization work across pipeline stages that
// factor-of-two granularity is exactly enough; the bench's reservoir
// LatencyRecorder still reports exact end-to-end percentiles.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
}

// Observe records one duration. Negative durations (clock steps
// between stamps) clamp to zero rather than corrupting a bucket index.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bits.Len64(uint64(d))].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot copies the current bucket counts. Concurrent Observes may
// straddle the copy; each observation is either fully in or at worst
// split between count and bucket by one — consistent enough for
// monitoring, which is the contract (the record path stays lock-free).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Buckets[i] = c
		s.Count += c
	}
	s.SumNanos = h.sum.Load()
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram, safe to
// merge, reduce, and serialize.
type HistogramSnapshot struct {
	Buckets  [histBuckets]uint64 `json:"-"`
	Count    uint64              `json:"count"`
	SumNanos uint64              `json:"sum_ns"`
}

// Merge folds another snapshot into this one (cross-node aggregation).
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.SumNanos += o.SumNanos
}

// bucketUpper returns the exclusive upper bound of bucket i in
// nanoseconds (bucket 0 holds only zeros).
func bucketUpper(i int) time.Duration {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return time.Duration(1<<63 - 1)
	}
	return time.Duration(uint64(1) << uint(i))
}

// Quantile returns the upper bound of the bucket containing the p-th
// (0..1) observation — an overestimate by at most 2×. Zero if empty.
func (s HistogramSnapshot) Quantile(p float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(p * float64(s.Count-1))
	var seen uint64
	for i, c := range s.Buckets {
		seen += c
		if c > 0 && seen > rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// Mean returns the exact mean of the observations (the sum is kept in
// full resolution alongside the buckets).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNanos / s.Count)
}

func (s HistogramSnapshot) String() string {
	return fmt.Sprintf("n=%d mean=%v p50≤%v p99≤%v",
		s.Count, s.Mean().Round(time.Microsecond),
		s.Quantile(0.50).Round(time.Microsecond), s.Quantile(0.99).Round(time.Microsecond))
}

// Dump renders the non-empty buckets as one line per bucket, for the
// debug listener's text view.
func (s HistogramSnapshot) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", s.String())
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		var lo time.Duration
		if i > 1 {
			lo = bucketUpper(i - 1)
		}
		fmt.Fprintf(&b, "  [%12v, %12v) %d\n", lo, bucketUpper(i), c)
	}
	return b.String()
}

// Gauge is a last-value-wins instrument for level measurements
// (queue depths, batch sizes, bytes per flush). Atomic and
// allocation-free like Histogram.
type Gauge struct{ v atomic.Int64 }

// Set stores the current level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the current level by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value reads the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }
