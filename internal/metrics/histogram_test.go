package metrics

import (
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the log₂ bucketing contract:
// bucket 0 holds zeros, bucket i holds [2^(i-1), 2^i), and a quantile
// reports its bucket's upper bound (≤ 2× the true value).
func TestHistogramBucketBoundaries(t *testing.T) {
	var h Histogram
	cases := []struct {
		v      time.Duration
		bucket int
	}{
		{0, 0},
		{1, 1}, // [1, 2)
		{2, 2}, // [2, 4)
		{3, 2},
		{4, 3}, // [4, 8)
		{7, 3},
		{8, 4},
		{1023, 10},            // [512, 1024)
		{1024, 11},            // [1024, 2048)
		{-5 * time.Second, 0}, // negative clamps to zero
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	s := h.Snapshot()
	if s.Count != uint64(len(cases)) {
		t.Fatalf("count=%d want %d", s.Count, len(cases))
	}
	want := map[int]uint64{}
	for _, c := range cases {
		want[c.bucket]++
	}
	for i, c := range s.Buckets {
		if c != want[i] {
			t.Fatalf("bucket %d: got %d want %d", i, c, want[i])
		}
	}

	// Quantile upper-bound contract: a single value v lands below its
	// bucket upper bound and at most 2v (v > 0).
	var q Histogram
	q.Observe(1500 * time.Nanosecond)
	got := q.Snapshot().Quantile(0.5)
	if got < 1500 || got > 3000 {
		t.Fatalf("quantile of 1500ns = %v, want in [1500ns, 3µs]", got)
	}

	// Empty histogram: everything zero.
	var e Histogram
	if s := e.Snapshot(); s.Quantile(0.99) != 0 || s.Mean() != 0 || s.Count != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
}

func TestHistogramQuantileOrder(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	p50, p99 := s.Quantile(0.50), s.Quantile(0.99)
	if p50 > p99 {
		t.Fatalf("p50 %v > p99 %v", p50, p99)
	}
	// True p50 is ~500µs; the bucket bound must cover it and stay
	// within the 2× contract.
	if p50 < 500*time.Microsecond || p50 > time.Millisecond {
		t.Fatalf("p50=%v want in [500µs, 1ms]", p50)
	}
	if mean := s.Mean(); mean < 400*time.Microsecond || mean > 600*time.Microsecond {
		t.Fatalf("mean=%v want ~500µs", mean)
	}
	if s.String() == "" || s.Dump() == "" {
		t.Fatal("empty renderings")
	}
}

// TestHistogramConcurrentRecord hammers one histogram from many
// goroutines; no sample may be lost (race-clean by -race).
func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*per+i) * time.Nanosecond)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("lost samples: %d", s.Count)
	}
	var sum uint64
	for _, c := range s.Buckets {
		sum += c
	}
	if sum != s.Count {
		t.Fatalf("bucket sum %d != count %d", sum, s.Count)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Observe(time.Microsecond)
		b.Observe(time.Millisecond)
	}
	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Count != 200 {
		t.Fatalf("merged count=%d", s.Count)
	}
	if p99 := s.Quantile(0.99); p99 < time.Millisecond {
		t.Fatalf("merged p99=%v lost the slow half", p99)
	}
	if p25 := s.Quantile(0.25); p25 > 2*time.Microsecond {
		t.Fatalf("merged p25=%v lost the fast half", p25)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(42)
	if g.Value() != 42 {
		t.Fatalf("gauge=%d", g.Value())
	}
	g.Add(-2)
	if g.Value() != 40 {
		t.Fatalf("gauge=%d", g.Value())
	}
}

// TestRecordPathZeroAllocs is the CI-facing proof that the hot record
// path allocates nothing: histograms, counters, gauges, and flight
// notes are all amortized-zero.
func TestRecordPathZeroAllocs(t *testing.T) {
	var h Histogram
	var c Counter
	var g Gauge
	f := NewFlightRecorder(64)
	if n := testing.AllocsPerRun(1000, func() {
		h.Observe(time.Microsecond)
		c.Add(1)
		g.Set(7)
		f.Note(EvCommit, 1, 2, 3, 4)
	}); n != 0 {
		t.Fatalf("record path allocates: %.1f allocs/op", n)
	}
}

// BenchmarkInstrumentationOverhead is the record-path cost the commit
// path pays per stage sample; CI asserts its allocs/op stays 0.
func BenchmarkInstrumentationOverhead(b *testing.B) {
	var h Histogram
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i))
		c.Add(1)
	}
}
