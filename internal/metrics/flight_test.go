package metrics

import (
	"strings"
	"testing"
)

// TestFlightRecorderWraparound fills a small ring past capacity and
// checks that only the newest cap events survive, oldest-first, with
// contiguous sequence numbers.
func TestFlightRecorderWraparound(t *testing.T) {
	const ringCap = 8
	f := NewFlightRecorder(ringCap)
	const total = 20
	for i := 0; i < total; i++ {
		f.Note(EvCommit, 1, uint64(i), uint64(i*10), 0)
	}
	if f.Len() != total {
		t.Fatalf("len=%d want %d", f.Len(), total)
	}
	evs := f.Events()
	if len(evs) != ringCap {
		t.Fatalf("retained %d want %d", len(evs), ringCap)
	}
	for i, e := range evs {
		wantSeq := uint64(total - ringCap + i)
		if e.Seq != wantSeq {
			t.Fatalf("event %d: seq=%d want %d", i, e.Seq, wantSeq)
		}
		if e.Round != wantSeq || e.A != wantSeq*10 {
			t.Fatalf("event %d: payload mismatch %+v", i, e)
		}
		if i > 0 && evs[i-1].At > e.At {
			t.Fatalf("timestamps not monotone at %d", i)
		}
	}
}

// TestFlightRecorderDumpOrder checks the text dump renders oldest
// first and honors the `last` limit.
func TestFlightRecorderDumpOrder(t *testing.T) {
	f := NewFlightRecorder(16)
	f.Note(EvPropose, 0, 1, 0, 0)
	f.Note(EvCert, 0, 1, 0, 0)
	f.Note(EvCommit, 0, 1, 5, 0)

	dump := f.Dump(0)
	lines := strings.Split(strings.TrimSpace(dump), "\n")
	if len(lines) != 3 {
		t.Fatalf("dump lines=%d:\n%s", len(lines), dump)
	}
	order := []string{"propose", "cert", "commit"}
	for i, kind := range order {
		if !strings.Contains(lines[i], kind) {
			t.Fatalf("line %d = %q, want kind %q", i, lines[i], kind)
		}
	}

	// last=2 keeps only the newest two, still oldest-first.
	dump2 := f.Dump(2)
	lines2 := strings.Split(strings.TrimSpace(dump2), "\n")
	if len(lines2) != 2 || !strings.Contains(lines2[0], "cert") || !strings.Contains(lines2[1], "commit") {
		t.Fatalf("limited dump wrong:\n%s", dump2)
	}
}

func TestFlightRecorderEmpty(t *testing.T) {
	f := NewFlightRecorder(4)
	if f.Len() != 0 || len(f.Events()) != 0 || f.Dump(0) != "" {
		t.Fatal("empty recorder not empty")
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{
		EvPropose, EvVote, EvCert, EvCommit, EvSkip, EvShift, EvGC,
		EvSnapCapture, EvSnapInstall, EvEpochJump, EvSendErr, EvReconfig, EvFastForward,
		EvSpecStart, EvSpecConfirm, EvSpecRollback,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		if seen[s] {
			t.Fatalf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
}
