package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry is a named set of counters, gauges, and histograms that
// snapshots as one coherent struct. Registration (get-or-create) takes
// a mutex; the returned instruments record through atomics, so the
// pattern is: resolve every instrument once at construction, then
// record lock-free forever. Instruments are never unregistered — a
// pointer handed out stays valid for the registry's lifetime.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegistrySnapshot is one coherent copy of every registered
// instrument, JSON-serializable for the debug listener.
type RegistrySnapshot struct {
	Counters   map[string]uint64           `json:"counters"`
	Gauges     map[string]int64            `json:"gauges"`
	Histograms map[string]HistogramSummary `json:"histograms"`
}

// HistogramSummary is the JSON-facing reduction of one histogram.
type HistogramSummary struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// Summarize reduces a histogram snapshot to its JSON form.
func Summarize(s HistogramSnapshot) HistogramSummary {
	return HistogramSummary{
		Count:  s.Count,
		MeanMS: s.Mean().Seconds() * 1000,
		P50MS:  s.Quantile(0.50).Seconds() * 1000,
		P99MS:  s.Quantile(0.99).Seconds() * 1000,
	}
}

// Snapshot copies every instrument under the registration lock. New
// instruments cannot appear mid-snapshot; values recorded concurrently
// land in this snapshot or the next one.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := RegistrySnapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSummary, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = Summarize(h.Snapshot())
	}
	return s
}

// HistogramSnapshotOf returns the raw bucket snapshot of one named
// histogram (zero snapshot if it was never registered) — the merge
// input for cross-node stage aggregation.
func (r *Registry) HistogramSnapshotOf(name string) HistogramSnapshot {
	r.mu.Lock()
	h, ok := r.hists[name]
	r.mu.Unlock()
	if !ok {
		return HistogramSnapshot{}
	}
	return h.Snapshot()
}

// Dump renders the snapshot as sorted text for terminals and logs.
func (s RegistrySnapshot) Dump() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "counter %-28s %d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "gauge   %-28s %d\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Fprintf(&b, "hist    %-28s n=%d mean=%.3fms p50≤%.3fms p99≤%.3fms\n",
			n, h.Count, h.MeanMS, h.P50MS, h.P99MS)
	}
	return b.String()
}

// Stage histogram names: the per-block commit-path breakdown every
// node records (see the README's Observability section for the stage
// definitions).
const (
	StageProposeCertify = "stage_propose_certify_ns"
	StageCertifyCommit  = "stage_certify_commit_ns"
	// StageCertifySpecDone measures certification → speculative results
	// ready: how much of the certify→commit wait the speculative
	// executor reclaims (recorded only for blocks that were
	// speculatively executed).
	StageCertifySpecDone = "stage_certify_specdone_ns"
	StageCommitExecute   = "stage_commit_execute_ns"
	StageSubmitAck       = "stage_submit_ack_ns"
)

// StageNames lists the per-stage histograms in pipeline order.
var StageNames = []string{
	StageProposeCertify, StageCertifyCommit, StageCertifySpecDone, StageCommitExecute, StageSubmitAck,
}
