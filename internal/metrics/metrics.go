// Package metrics collects the throughput and latency measurements
// the benchmark harness reports: commit counts, latency samples with
// percentiles, and time-series of per-round commit runtimes
// (Figure 16).
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// LatencyRecorder accumulates duration samples.
type LatencyRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
}

// NewLatencyRecorder returns an empty recorder.
func NewLatencyRecorder() *LatencyRecorder { return &LatencyRecorder{} }

// Record adds one sample.
func (r *LatencyRecorder) Record(d time.Duration) {
	r.mu.Lock()
	r.samples = append(r.samples, d)
	r.mu.Unlock()
}

// Count returns the number of samples.
func (r *LatencyRecorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// Summary reduces the samples to the statistics reported in the
// paper's figures.
type Summary struct {
	Count int
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Summarize computes the summary (zero value if empty).
func (r *LatencyRecorder) Summarize() Summary {
	r.mu.Lock()
	samples := append([]time.Duration(nil), r.samples...)
	r.mu.Unlock()
	if len(samples) == 0 {
		return Summary{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var total time.Duration
	for _, s := range samples {
		total += s
	}
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(samples)-1))
		return samples[i]
	}
	return Summary{
		Count: len(samples),
		Mean:  total / time.Duration(len(samples)),
		P50:   pct(0.50),
		P95:   pct(0.95),
		P99:   pct(0.99),
		Max:   samples[len(samples)-1],
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}

// Counter is a monotonically increasing, thread-safe counter.
type Counter struct {
	mu sync.Mutex
	v  uint64
}

// Add increments by d.
func (c *Counter) Add(d uint64) {
	c.mu.Lock()
	c.v += d
	c.mu.Unlock()
}

// Value reads the counter.
func (c *Counter) Value() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Throughput converts a count over a window into transactions/second.
func Throughput(count uint64, window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(count) / window.Seconds()
}

// Series is a time series of (time, value) points, used for the
// per-round runtime plot (Figure 16).
type Series struct {
	mu     sync.Mutex
	points []Point
}

// Point is one sample in a Series.
type Point struct {
	At    time.Time
	Value float64
}

// Append adds a point.
func (s *Series) Append(at time.Time, v float64) {
	s.mu.Lock()
	s.points = append(s.points, Point{At: at, Value: v})
	s.mu.Unlock()
}

// Points returns a copy of the series.
func (s *Series) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Point(nil), s.points...)
}

// BucketMeans groups consecutive points into buckets of size n and
// returns each bucket's mean value — the paper's "average latency per
// 100 rounds" reduction.
func (s *Series) BucketMeans(n int) []float64 {
	pts := s.Points()
	if n <= 0 || len(pts) == 0 {
		return nil
	}
	var out []float64
	for i := 0; i < len(pts); i += n {
		end := i + n
		if end > len(pts) {
			end = len(pts)
		}
		var sum float64
		for _, p := range pts[i:end] {
			sum += p.Value
		}
		out = append(out, sum/float64(end-i))
	}
	return out
}
