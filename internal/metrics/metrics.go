// Package metrics is the instrumentation subsystem: lock-free
// counters, gauges, and log₂-bucket latency histograms behind a named
// registry (registry.go), a per-node flight recorder of protocol
// trace events (flight.go), a leveled rate-limited logger
// (logger.go), and the bench harness's exact-percentile recorders —
// bounded latency reservoirs and the per-round commit-runtime series
// the paper's Figure 16 reports.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyReservoirCap bounds a LatencyRecorder's retained samples.
// Below the cap every sample is kept and percentiles are exact; past
// it, reservoir sampling (Vitter's algorithm R) keeps a uniform
// random subset, so a multi-hour chaos run no longer grows memory
// linearly with committed transactions while percentiles stay
// statistically stable at ±1-2% for the reported quantiles.
const latencyReservoirCap = 8192

// LatencyRecorder accumulates duration samples under a fixed memory
// bound.
type LatencyRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
	seen    uint64 // total observed, including evicted
	rng     uint64 // xorshift state for reservoir replacement
}

// NewLatencyRecorder returns an empty recorder.
func NewLatencyRecorder() *LatencyRecorder {
	// Deterministic seed: two recorders fed identical streams retain
	// identical reservoirs, which keeps bench reruns comparable.
	return &LatencyRecorder{rng: 0x9e3779b97f4a7c15}
}

// Record adds one sample. Past the reservoir cap it replaces a
// uniformly random retained sample with probability cap/seen.
func (r *LatencyRecorder) Record(d time.Duration) {
	r.mu.Lock()
	r.seen++
	if len(r.samples) < latencyReservoirCap {
		r.samples = append(r.samples, d)
		r.mu.Unlock()
		return
	}
	// xorshift64*: cheap, deterministic, and plenty uniform for
	// reservoir index selection.
	r.rng ^= r.rng << 13
	r.rng ^= r.rng >> 7
	r.rng ^= r.rng << 17
	if i := (r.rng * 0x2545f4914f6cdd1d) % r.seen; i < latencyReservoirCap {
		r.samples[i] = d
	}
	r.mu.Unlock()
}

// Count returns the number of samples observed (not retained).
func (r *LatencyRecorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return int(r.seen)
}

// Summary reduces the samples to the statistics reported in the
// paper's figures.
type Summary struct {
	Count int
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Summarize computes the summary (zero value if empty). Count is the
// total observed; the distribution statistics come from the retained
// reservoir (exact below the cap).
func (r *LatencyRecorder) Summarize() Summary {
	r.mu.Lock()
	samples := append([]time.Duration(nil), r.samples...)
	seen := int(r.seen)
	r.mu.Unlock()
	if len(samples) == 0 {
		return Summary{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var total time.Duration
	for _, s := range samples {
		total += s
	}
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(samples)-1))
		return samples[i]
	}
	return Summary{
		Count: seen,
		Mean:  total / time.Duration(len(samples)),
		P50:   pct(0.50),
		P95:   pct(0.95),
		P99:   pct(0.99),
		Max:   samples[len(samples)-1],
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}

// Counter is a monotonically increasing counter: one atomic add on
// the record path, no locks, no allocations.
type Counter struct {
	v atomic.Uint64
}

// Add increments by d.
func (c *Counter) Add(d uint64) { c.v.Add(d) }

// Value reads the counter.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Store overwrites the counter — recovery paths only (a restarted
// replica resumes its committed-transaction count from a WAL or
// snapshot position instead of re-counting from zero).
func (c *Counter) Store(v uint64) { c.v.Store(v) }

// Throughput converts a count over a window into transactions/second.
func Throughput(count uint64, window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(count) / window.Seconds()
}

// Series is a time series of (time, value) points, used for the
// per-round runtime plot (Figure 16).
type Series struct {
	mu     sync.Mutex
	points []Point
}

// Point is one sample in a Series.
type Point struct {
	At    time.Time
	Value float64
}

// Append adds a point.
func (s *Series) Append(at time.Time, v float64) {
	s.mu.Lock()
	s.points = append(s.points, Point{At: at, Value: v})
	s.mu.Unlock()
}

// Points returns a copy of the series.
func (s *Series) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Point(nil), s.points...)
}

// BucketMeans groups consecutive points into buckets of size n and
// returns each bucket's mean value — the paper's "average latency per
// 100 rounds" reduction.
func (s *Series) BucketMeans(n int) []float64 {
	pts := s.Points()
	if n <= 0 || len(pts) == 0 {
		return nil
	}
	var out []float64
	for i := 0; i < len(pts); i += n {
		end := i + n
		if end > len(pts) {
			end = len(pts)
		}
		var sum float64
		for _, p := range pts[i:end] {
			sum += p.Value
		}
		out = append(out, sum/float64(end-i))
	}
	return out
}
