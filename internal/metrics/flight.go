package metrics

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// The flight recorder is a per-node fixed-size ring of protocol trace
// events. It answers the question counters cannot: in what order did
// things happen on this node just before it wedged, diverged, or
// tripped an invariant. Recording is a struct copy into a
// pre-allocated ring (no allocations); the mutex is uncontended in
// practice because the node's event loop is the only writer and dumps
// happen on failure paths.

// EventKind tags one flight-recorder event.
type EventKind uint8

const (
	EvPropose EventKind = iota + 1
	EvVote
	EvCert
	EvCommit
	EvSkip
	EvShift
	EvGC
	EvSnapCapture
	EvSnapInstall
	EvEpochJump
	EvSendErr
	EvReconfig
	EvFastForward
	EvSpecStart
	EvSpecConfirm
	EvSpecRollback
)

func (k EventKind) String() string {
	switch k {
	case EvPropose:
		return "propose"
	case EvVote:
		return "vote"
	case EvCert:
		return "cert"
	case EvCommit:
		return "commit"
	case EvSkip:
		return "skip"
	case EvShift:
		return "shift"
	case EvGC:
		return "gc"
	case EvSnapCapture:
		return "snap-capture"
	case EvSnapInstall:
		return "snap-install"
	case EvEpochJump:
		return "epoch-jump"
	case EvSendErr:
		return "send-err"
	case EvReconfig:
		return "reconfig"
	case EvFastForward:
		return "fast-forward"
	case EvSpecStart:
		return "spec-start"
	case EvSpecConfirm:
		return "spec-confirm"
	case EvSpecRollback:
		return "spec-rollback"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one recorded trace event. A and B are kind-specific
// payloads (a proposer ID, a transaction count, a send class — each
// record site documents its own).
type Event struct {
	Seq   uint64        // monotonically increasing per recorder
	At    time.Duration // since the recorder started
	Kind  EventKind
	Epoch uint64
	Round uint64
	A, B  uint64
}

func (e Event) String() string {
	return fmt.Sprintf("#%-6d %12v %-12s e%-3d r%-6d a=%d b=%d",
		e.Seq, e.At.Round(time.Microsecond), e.Kind, e.Epoch, e.Round, e.A, e.B)
}

// FlightRecorder holds the last cap events.
type FlightRecorder struct {
	mu    sync.Mutex
	start time.Time
	ring  []Event
	next  uint64 // sequence of the next event; also total recorded
}

// DefaultFlightCap is the per-node ring size: enough to span several
// commit waves of per-round events around a failure without making
// every node carry megabytes of trace.
const DefaultFlightCap = 4096

// NewFlightRecorder returns a recorder holding the last cap events
// (cap <= 0 selects DefaultFlightCap).
func NewFlightRecorder(cap int) *FlightRecorder {
	if cap <= 0 {
		cap = DefaultFlightCap
	}
	return &FlightRecorder{start: time.Now(), ring: make([]Event, cap)}
}

// Note records one event. Allocation-free: the event is assembled in
// place inside the pre-sized ring.
func (f *FlightRecorder) Note(kind EventKind, epoch, round, a, b uint64) {
	now := time.Since(f.start)
	f.mu.Lock()
	e := &f.ring[f.next%uint64(len(f.ring))]
	e.Seq = f.next
	e.At = now
	e.Kind = kind
	e.Epoch = epoch
	e.Round = round
	e.A = a
	e.B = b
	f.next++
	f.mu.Unlock()
}

// Len returns the total number of events ever recorded (recorded,
// not retained).
func (f *FlightRecorder) Len() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.next
}

// Events returns the retained events oldest-first.
func (f *FlightRecorder) Events() []Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.next
	capU := uint64(len(f.ring))
	count := n
	if count > capU {
		count = capU
	}
	out := make([]Event, 0, count)
	for seq := n - count; seq < n; seq++ {
		out = append(out, f.ring[seq%capU])
	}
	return out
}

// Dump renders the last `last` retained events (last <= 0 means all)
// oldest-first, one line per event.
func (f *FlightRecorder) Dump(last int) string {
	evs := f.Events()
	if last > 0 && len(evs) > last {
		evs = evs[len(evs)-last:]
	}
	var b strings.Builder
	for _, e := range evs {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
