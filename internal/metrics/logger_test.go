package metrics

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// capture collects formatted lines in place of log.Printf.
type capture struct {
	mu    sync.Mutex
	lines []string
}

func (c *capture) printf(format string, args ...any) {
	c.mu.Lock()
	c.lines = append(c.lines, fmt.Sprintf(format, args...))
	c.mu.Unlock()
}

func (c *capture) all() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.lines...)
}

// TestLoggerSilentUnderTest pins the default: inside `go test`, a new
// logger is off until a test opts in.
func TestLoggerSilentUnderTest(t *testing.T) {
	var c capture
	l := NewLogger("n0")
	l.SetOutput(c.printf)
	l.Errorf("should not appear")
	if len(c.all()) != 0 {
		t.Fatalf("test-mode logger emitted: %v", c.all())
	}
}

func TestLoggerLevels(t *testing.T) {
	var c capture
	l := NewLogger("n1")
	l.SetOutput(c.printf)
	l.SetLevel(LevelWarn)
	l.Debugf("drop")
	l.Infof("drop")
	l.Warnf("keep %d", 1)
	l.Errorf("keep %d", 2)
	lines := c.all()
	if len(lines) != 2 {
		t.Fatalf("lines=%v", lines)
	}
	if !strings.Contains(lines[0], "WARN n1: keep 1") || !strings.Contains(lines[1], "ERROR n1: keep 2") {
		t.Fatalf("bad formatting: %v", lines)
	}
}

// TestLoggerRateLimit exhausts the burst and checks that the limiter
// counts what it drops and reports the count when output resumes.
func TestLoggerRateLimit(t *testing.T) {
	var c capture
	l := NewLogger("n2")
	l.SetOutput(c.printf)
	l.SetLevel(LevelInfo)
	const spam = logBurst + 25
	for i := 0; i < spam; i++ {
		l.Infof("line %d", i)
	}
	lines := c.all()
	if len(lines) != logBurst {
		t.Fatalf("emitted %d lines, want burst %d", len(lines), logBurst)
	}
	if got := l.Suppressed(); got != spam-logBurst {
		t.Fatalf("suppressed=%d want %d", got, spam-logBurst)
	}

	// Refill one token by rewinding the limiter clock, then log once:
	// the line must carry the suppressed count and the counter resets.
	l.mu.Lock()
	l.lastRefill = l.lastRefill.Add(-logRefillEvery)
	l.mu.Unlock()
	l.Infof("resumed")
	lines = c.all()
	lastLine := lines[len(lines)-1]
	if !strings.Contains(lastLine, "resumed") || !strings.Contains(lastLine, fmt.Sprintf("(%d lines suppressed)", spam-logBurst)) {
		t.Fatalf("resume line missing suppression report: %q", lastLine)
	}
	if l.Suppressed() != 0 {
		t.Fatalf("suppressed not reset: %d", l.Suppressed())
	}
}

func TestLoggerConcurrent(t *testing.T) {
	var c capture
	l := NewLogger("n3")
	l.SetOutput(c.printf)
	l.SetLevel(LevelDebug)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Debugf("g%d i%d", g, i)
			}
		}(g)
	}
	wg.Wait()
	// Race-clean is the real assertion; emitted+suppressed must account
	// for every call (refills may admit more than the initial burst).
	if got := uint64(len(c.all())) + l.Suppressed(); got != 800 {
		t.Fatalf("emitted+suppressed=%d want 800", got)
	}
}
