package metrics

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryGetOrCreate pins the handle-stability contract: the same
// name always resolves to the same instrument.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("counter handle not stable")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("gauge handle not stable")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("histogram handle not stable")
	}
	r.Counter("a").Add(3)
	if got := r.Counter("a").Value(); got != 3 {
		t.Fatalf("counter=%d", got)
	}
}

// TestRegistrySnapshotConsistent bumps instruments from many
// goroutines while snapshotting concurrently: counters in successive
// snapshots must be monotone, and the final snapshot must account for
// every recorded bump. Race-clean under -race.
func TestRegistrySnapshotConsistent(t *testing.T) {
	r := NewRegistry()
	const goroutines, per = 8, 2000
	c := r.Counter("commits")
	h := r.Histogram("lat")

	stop := make(chan struct{})
	snapDone := make(chan error, 1)
	go func() {
		var last uint64
		for {
			select {
			case <-stop:
				snapDone <- nil
				return
			default:
			}
			got := r.Snapshot().Counters["commits"]
			if got < last {
				snapDone <- fmt.Errorf("snapshot counter went backwards: %d -> %d", last, got)
				return
			}
			last = got
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Add(1)
				h.Observe(time.Duration(i) * time.Nanosecond)
				r.Gauge("depth").Set(int64(i))
			}
		}()
	}
	wg.Wait()
	close(stop)
	if err := <-snapDone; err != nil {
		t.Fatal(err)
	}

	s := r.Snapshot()
	if s.Counters["commits"] != goroutines*per {
		t.Fatalf("final counter=%d want %d", s.Counters["commits"], goroutines*per)
	}
	if s.Histograms["lat"].Count != goroutines*per {
		t.Fatalf("final hist count=%d", s.Histograms["lat"].Count)
	}
	if _, ok := s.Gauges["depth"]; !ok {
		t.Fatal("gauge missing from snapshot")
	}
}

func TestRegistrySnapshotOfUnknown(t *testing.T) {
	r := NewRegistry()
	if s := r.HistogramSnapshotOf("nope"); s.Count != 0 {
		t.Fatalf("unknown histogram snapshot not empty: %+v", s)
	}
}

func TestRegistryDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("committed_txs").Add(7)
	r.Gauge("exec_queue_depth").Set(3)
	r.Histogram(StageSubmitAck).Observe(2 * time.Millisecond)
	out := r.Snapshot().Dump()
	for _, want := range []string{"committed_txs", "exec_queue_depth", StageSubmitAck, "n=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}
