package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestLatencySummary(t *testing.T) {
	r := NewLatencyRecorder()
	if s := r.Summarize(); s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	s := r.Summarize()
	if s.Count != 100 {
		t.Fatalf("count=%d", s.Count)
	}
	if s.Mean != 50500*time.Microsecond {
		t.Fatalf("mean=%v", s.Mean)
	}
	if s.P50 != 50*time.Millisecond {
		t.Fatalf("p50=%v", s.P50)
	}
	if s.P99 != 99*time.Millisecond {
		t.Fatalf("p99=%v", s.P99)
	}
	if s.Max != 100*time.Millisecond {
		t.Fatalf("max=%v", s.Max)
	}
	if r.Count() != 100 {
		t.Fatalf("Count=%d", r.Count())
	}
	if s.String() == "" {
		t.Fatal("empty string rendering")
	}
}

func TestLatencyRecorderConcurrent(t *testing.T) {
	r := NewLatencyRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if r.Count() != 4000 {
		t.Fatalf("lost samples: %d", r.Count())
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter=%d", c.Value())
	}
}

func TestThroughput(t *testing.T) {
	if tps := Throughput(1000, time.Second); tps != 1000 {
		t.Fatalf("tps=%f", tps)
	}
	if tps := Throughput(500, 2*time.Second); tps != 250 {
		t.Fatalf("tps=%f", tps)
	}
	if tps := Throughput(10, 0); tps != 0 {
		t.Fatal("zero window should yield zero")
	}
}

func TestSeriesBucketMeans(t *testing.T) {
	var s Series
	base := time.Now()
	for i := 0; i < 25; i++ {
		s.Append(base.Add(time.Duration(i)*time.Second), float64(i))
	}
	if got := len(s.Points()); got != 25 {
		t.Fatalf("points=%d", got)
	}
	means := s.BucketMeans(10)
	if len(means) != 3 {
		t.Fatalf("buckets=%d", len(means))
	}
	if means[0] != 4.5 {
		t.Fatalf("bucket 0 mean=%f", means[0])
	}
	// Final partial bucket: values 20..24 -> mean 22.
	if means[2] != 22 {
		t.Fatalf("bucket 2 mean=%f", means[2])
	}
	if BucketEmpty := (&Series{}).BucketMeans(10); BucketEmpty != nil {
		t.Fatal("empty series should yield nil")
	}
	if s.BucketMeans(0) != nil {
		t.Fatal("non-positive bucket size should yield nil")
	}
}
