package metrics

import (
	"fmt"
	"log"
	"sync"
	"testing"
	"time"
)

// Logger is the small leveled logger protocol internals report
// through: prefixed with the owning node's identity, silenced by
// default under `go test` (operational noise drowns test output), and
// rate-limited so a flapping transport cannot spam a terminal at
// event-loop frequency. Output goes through the standard log package,
// so binaries keep one consistent log stream.

// Level orders log severities.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	// LevelOff silences the logger entirely.
	LevelOff
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	case LevelOff:
		return "OFF"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// Rate-limit shape: a token bucket holding logBurst lines, refilled
// one line per logRefillEvery. A burst of distinct failures prints in
// full; a sustained flap degrades to ~10 lines/second with a
// suppressed-line count when output resumes.
const (
	logBurst       = 10
	logRefillEvery = 100 * time.Millisecond
)

// Logger is safe for concurrent use.
type Logger struct {
	prefix string

	mu         sync.Mutex
	level      Level
	tokens     int
	lastRefill time.Time
	suppressed uint64
	// printf is swappable for tests; defaults to log.Printf.
	printf func(format string, args ...any)
}

// NewLogger returns a logger whose lines are prefixed with prefix.
// The default level is LevelInfo — except under `go test`, where it
// is LevelOff so protocol chatter never pollutes test output (tests
// that assert on log behaviour call SetLevel explicitly).
func NewLogger(prefix string) *Logger {
	level := LevelInfo
	if testing.Testing() {
		level = LevelOff
	}
	return &Logger{
		prefix:     prefix,
		level:      level,
		tokens:     logBurst,
		lastRefill: time.Now(),
		printf:     log.Printf,
	}
}

// SetLevel adjusts the threshold; lines below it are dropped without
// touching the rate limiter.
func (l *Logger) SetLevel(level Level) {
	l.mu.Lock()
	l.level = level
	l.mu.Unlock()
}

// SetOutput redirects the logger's formatted lines (tests).
func (l *Logger) SetOutput(printf func(format string, args ...any)) {
	l.mu.Lock()
	l.printf = printf
	l.mu.Unlock()
}

// Suppressed returns how many lines the rate limiter has dropped and
// not yet reported.
func (l *Logger) Suppressed() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.suppressed
}

func (l *Logger) Debugf(format string, args ...any) { l.logf(LevelDebug, format, args...) }
func (l *Logger) Infof(format string, args ...any)  { l.logf(LevelInfo, format, args...) }
func (l *Logger) Warnf(format string, args ...any)  { l.logf(LevelWarn, format, args...) }
func (l *Logger) Errorf(format string, args ...any) { l.logf(LevelError, format, args...) }

func (l *Logger) logf(level Level, format string, args ...any) {
	l.mu.Lock()
	if level < l.level || l.level == LevelOff {
		l.mu.Unlock()
		return
	}
	// Refill before deciding: a long-quiet logger regains its burst.
	now := time.Now()
	if refill := int(now.Sub(l.lastRefill) / logRefillEvery); refill > 0 {
		l.tokens += refill
		if l.tokens > logBurst {
			l.tokens = logBurst
		}
		l.lastRefill = now
	}
	if l.tokens <= 0 {
		l.suppressed++
		l.mu.Unlock()
		return
	}
	l.tokens--
	suppressed := l.suppressed
	l.suppressed = 0
	printf := l.printf
	prefix := l.prefix
	l.mu.Unlock()

	msg := fmt.Sprintf(format, args...)
	if suppressed > 0 {
		printf("%s %s: %s (%d lines suppressed)", level, prefix, msg, suppressed)
		return
	}
	printf("%s %s: %s", level, prefix, msg)
}
