// Package depgraph implements the dependency graph at the core of
// Thunderbolt's concurrency controller (paper §8).
//
// The graph tracks causal relationships between in-flight transactions
// as their operations arrive, with no prior knowledge of read/write
// sets. Each node is a transaction; an edge u→v on key K means v must
// serialize after u because of an access to K. Nodes retain at most
// two operations per key — the first read and the last write — which
// is sufficient to preserve every causal constraint (§8.1).
//
// Ordering is nondeterministic: it is fixed by runtime events (which
// write lands first, which reader observes whom), not by arrival
// order. Reads are served from the latest uncommitted write on the key
// (read of uncommitted data), falling back to earlier chain positions
// or the committed store when the newest position would create a
// cycle (§8.4, Figure 10a). Conflicts trigger aborts: a reader that
// cannot be placed aborts alone; a writer invalidating observed values
// cascades aborts through its readers (§8.4, Figure 10b).
//
// The emitted commit sequence is a topological order of the graph, and
// replaying it serially reproduces every observed read and final state
// — the serializability property proved in paper §10 and checked by
// this package's property tests.
package depgraph

import (
	"fmt"
	"sync"

	"thunderbolt/internal/contract"
	"thunderbolt/internal/types"
)

// BaseReader supplies committed values: the graph's root node. A nil
// result means the key is absent (reads as empty value).
type BaseReader func(k types.Key) types.Value

// Outcome reports how a finished transaction ended.
type Outcome struct {
	// Committed is true when the transaction entered the schedule;
	// false means it was aborted after finishing and must re-execute.
	Committed bool
	// ScheduleIdx is the position in the serialized execution order
	// (valid only when Committed).
	ScheduleIdx int
}

// Tx is one execution attempt of a transaction against the graph. A
// re-executed transaction gets a fresh Tx from Begin.
type Tx struct {
	id   types.Digest
	n    *node
	done chan Outcome
}

// ID returns the transaction identity this attempt belongs to.
func (t *Tx) ID() types.Digest { return t.id }

// Done delivers the final outcome after Finish succeeded.
func (t *Tx) Done() <-chan Outcome { return t.done }

type opRecord struct {
	key types.Key
	val types.Value
}

type node struct {
	tx  *Tx
	seq uint64 // creation order, for deterministic iteration

	// firstRead / lastWrite hold the two retained operations per key.
	firstRead  map[types.Key]types.Value
	lastWrite  map[types.Key]types.Value
	readOrder  []types.Key // keys in first-read order
	writeOrder []types.Key // keys in first-write order

	// readSrc maps each read key to the writer node the value came
	// from (nil = root/committed store).
	readSrc map[types.Key]*node
	// readersOf lists, per key this node wrote, the nodes that
	// observed the written value; they cascade-abort if it changes.
	readersOf map[types.Key]map[*node]struct{}
	// prior lists, per key this node wrote, the readers serialized
	// immediately before this write (they read the previous version).
	// If this writer aborts, those readers must be re-ordered before
	// the next writer — otherwise the next writer could serialize
	// ahead of them and invalidate their reads silently.
	prior map[types.Key]map[*node]struct{}

	in  map[*node]struct{}
	out map[*node]struct{}

	finished  bool
	committed bool
	aborted   bool
}

// keyState tracks the per-key version chain.
type keyState struct {
	// chain is the ordered list of uncommitted-or-committed writer
	// nodes for this key; the order is the serialization order of the
	// writes.
	chain []*node
	// readTips are nodes that read the newest version (the last chain
	// element, or the root when the chain is empty) and are not yet
	// ordered before any writer; the next writer serializes after
	// them (Figure 9a).
	readTips map[*node]struct{}
}

// Graph is the concurrency controller state. All methods are safe for
// concurrent use by executor goroutines.
type Graph struct {
	mu   sync.Mutex
	base BaseReader
	keys map[types.Key]*keyState

	nodes   map[*node]struct{}
	nextSeq uint64

	schedule    []*Tx
	commitCount int

	// counters for metrics
	aborts uint64
}

// New creates an empty graph over the given committed-state reader.
func New(base BaseReader) *Graph {
	if base == nil {
		base = func(types.Key) types.Value { return nil }
	}
	return &Graph{
		base:  base,
		keys:  make(map[types.Key]*keyState),
		nodes: make(map[*node]struct{}),
	}
}

// Aborts returns the total number of abort events so far.
func (g *Graph) Aborts() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.aborts
}

// Live returns the number of live (uncommitted, unaborted) nodes.
func (g *Graph) Live() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	live := 0
	for n := range g.nodes {
		if !n.committed && !n.aborted {
			live++
		}
	}
	return live
}

// Schedule returns the committed transactions in serialization order.
func (g *Graph) Schedule() []*Tx {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]*Tx(nil), g.schedule...)
}

// Begin registers a new execution attempt for transaction id.
func (g *Graph) Begin(id types.Digest) *Tx {
	g.mu.Lock()
	defer g.mu.Unlock()
	t := &Tx{id: id, done: make(chan Outcome, 1)}
	g.nextSeq++
	t.n = &node{
		tx:        t,
		seq:       g.nextSeq,
		firstRead: make(map[types.Key]types.Value),
		lastWrite: make(map[types.Key]types.Value),
		readSrc:   make(map[types.Key]*node),
		readersOf: make(map[types.Key]map[*node]struct{}),
		prior:     make(map[types.Key]map[*node]struct{}),
		in:        make(map[*node]struct{}),
		out:       make(map[*node]struct{}),
	}
	g.nodes[t.n] = struct{}{}
	return t
}

func (g *Graph) key(k types.Key) *keyState {
	ks, ok := g.keys[k]
	if !ok {
		ks = &keyState{readTips: make(map[*node]struct{})}
		g.keys[k] = ks
	}
	return ks
}

// hasPath reports whether dst is reachable from src via out-edges.
func hasPath(src, dst *node) bool {
	if src == dst {
		return true
	}
	seen := map[*node]struct{}{src: {}}
	stack := []*node{src}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for m := range n.out {
			if m == dst {
				return true
			}
			if _, ok := seen[m]; !ok {
				seen[m] = struct{}{}
				stack = append(stack, m)
			}
		}
	}
	return false
}

// addEdge links u→v. Caller must have verified acyclicity.
func addEdge(u, v *node) {
	if u == v {
		return
	}
	u.out[v] = struct{}{}
	v.in[u] = struct{}{}
}

// Read serves <Read, K> for t. It returns contract.ErrAborted when the
// transaction has been aborted (the executor restarts it).
func (g *Graph) Read(t *Tx, k types.Key) (types.Value, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := t.n
	if n.aborted {
		return nil, contract.ErrAborted
	}
	// Read-your-writes: a key we wrote is served from our own record
	// and does not join the read set.
	if v, ok := n.lastWrite[k]; ok {
		return v.Clone(), nil
	}
	// Repeatable read: the first read is retained (§8.1).
	if v, ok := n.firstRead[k]; ok {
		return v.Clone(), nil
	}
	ks := g.key(k)
	// Walk the version chain newest-first looking for a serializable
	// position (§8.4: on a cycle, retry from an ancestor).
	for i := len(ks.chain) - 1; i >= -1; i-- {
		var src *node
		if i >= 0 {
			src = ks.chain[i]
		}
		// Reading version i places n between chain[i] and chain[i+1].
		if i+1 < len(ks.chain) && ks.chain[i+1].committed {
			// The successor writer already committed: n can no longer
			// serialize before it, nor before anything older (commits
			// are monotone along the chain).
			break
		}
		if src != nil && hasPath(n, src) {
			continue // edge src→n would close a cycle
		}
		if i+1 < len(ks.chain) && hasPath(ks.chain[i+1], n) {
			continue // edge n→chain[i+1] would close a cycle
		}
		var v types.Value
		if src != nil {
			v = src.lastWrite[k].Clone()
			addEdge(src, n)
			src.readers(k)[n] = struct{}{}
		} else {
			v = g.base(k).Clone()
		}
		if i+1 < len(ks.chain) {
			next := ks.chain[i+1]
			addEdge(n, next)
			next.priorSet(k)[n] = struct{}{}
		} else {
			// n observed the newest version: the next writer must
			// serialize after it.
			ks.readTips[n] = struct{}{}
		}
		n.firstRead[k] = v.Clone()
		n.readOrder = append(n.readOrder, k)
		n.readSrc[k] = src
		return v, nil
	}
	// No serializable position exists: abort the reader (§8.4 rule 1).
	g.abort(n)
	return nil, contract.ErrAborted
}

func (n *node) readers(k types.Key) map[*node]struct{} {
	m, ok := n.readersOf[k]
	if !ok {
		m = make(map[*node]struct{})
		n.readersOf[k] = m
	}
	return m
}

func (n *node) priorSet(k types.Key) map[*node]struct{} {
	m, ok := n.prior[k]
	if !ok {
		m = make(map[*node]struct{})
		n.prior[k] = m
	}
	return m
}

// Write serves <Write, K, V> for t.
func (g *Graph) Write(t *Tx, k types.Key, v types.Value) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := t.n
	if n.aborted {
		return contract.ErrAborted
	}
	if _, wroteBefore := n.lastWrite[k]; wroteBefore {
		// Rewriting a value other transactions already observed
		// invalidates their reads: cascading abort (§8.4 rule 2,
		// Figure 10b; Table 1 time 5). Snapshot the reader set first:
		// cascades mutate it.
		for _, r := range snapshotNodes(n.readersOf[k]) {
			g.abort(r)
		}
		delete(n.readersOf, k)
		if n.aborted { // a cascade cycled back through another key
			return contract.ErrAborted
		}
		n.lastWrite[k] = v.Clone()
		return nil
	}
	ks := g.key(k)
	tip := ks.tipWriter()
	if src, read := n.readSrc[k]; read && src != tip {
		// We read a version that is no longer the newest; writing now
		// would have to splice into the middle of the chain, which
		// invalidates later blind writers' readers. Abort self and
		// re-execute against the newest version.
		g.abort(n)
		return contract.ErrAborted
	}
	// Serialize after everyone who observed the current newest
	// version (Figure 9a): readTips → n.
	for _, r := range snapshotNodes(ks.readTips) {
		if r == n || r.aborted {
			continue
		}
		if hasPath(n, r) {
			// r transitively follows n yet read the version n is
			// about to supersede: r's read is doomed. Abort r.
			g.abort(r)
			if n.aborted {
				return contract.ErrAborted
			}
			continue
		}
		addEdge(r, n)
		n.priorSet(k)[r] = struct{}{}
	}
	if tip != nil && tip != n {
		if hasPath(n, tip) {
			// n already precedes the newest writer; appending after it
			// would cycle. Abort self (blind-write conflict).
			g.abort(n)
			return contract.ErrAborted
		}
		addEdge(tip, n)
	}
	ks.chain = append(ks.chain, n)
	ks.readTips = make(map[*node]struct{})
	n.lastWrite[k] = v.Clone()
	n.writeOrder = append(n.writeOrder, k)
	return nil
}

// snapshotNodes copies a node set into a slice so callers can iterate
// while cascaded aborts mutate the underlying map.
func snapshotNodes(set map[*node]struct{}) []*node {
	out := make([]*node, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	return out
}

func (ks *keyState) tipWriter() *node {
	if len(ks.chain) == 0 {
		return nil
	}
	return ks.chain[len(ks.chain)-1]
}

// Finish declares that t's contract code completed. The outcome
// arrives on t.Done(): either a commit with a schedule position, or an
// abort requiring re-execution. Finish returns contract.ErrAborted
// immediately if the transaction is already dead.
func (g *Graph) Finish(t *Tx) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if t.n.aborted {
		return contract.ErrAborted
	}
	t.n.finished = true
	g.tryCommit(t.n)
	return nil
}

// Abort removes t from the graph (used for terminal contract
// failures: the transaction will not be retried, and anything that
// observed its writes cascades).
func (g *Graph) Abort(t *Tx) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !t.n.aborted && !t.n.committed {
		g.abort(t.n)
	}
}

// abort removes n and cascades through readers of its writes.
// Committed nodes are never aborted (commit requires all predecessors
// committed, so no observed value can become stale afterwards).
func (g *Graph) abort(n *node) {
	if n.aborted || n.committed {
		return
	}
	n.aborted = true
	g.aborts++

	// Cascade first: everyone who read one of n's writes holds a value
	// that will no longer exist.
	for _, readers := range n.readersOf {
		for _, r := range snapshotNodes(readers) {
			g.abort(r)
		}
	}
	// Unlink edges first so chain splicing below sees the graph
	// without n; successors may become commit-eligible.
	var succs []*node
	for m := range n.out {
		delete(m.in, n)
		succs = append(succs, m)
	}
	for m := range n.in {
		delete(m.out, n)
	}
	n.out = make(map[*node]struct{})
	n.in = make(map[*node]struct{})
	// Detach from version chains, splicing write order across the gap.
	// Aborts discovered during reattachment are deferred until the
	// splice completes so recursion never mutates a chain mid-walk.
	var toAbort []*node
	for _, k := range n.writeOrder {
		ks := g.keys[k]
		for i, w := range ks.chain {
			if w != n {
				continue
			}
			ks.chain = append(ks.chain[:i], ks.chain[i+1:]...)
			// Preserve ordering between the neighbours.
			if i > 0 && i < len(ks.chain) {
				prev, next := ks.chain[i-1], ks.chain[i]
				if !hasPath(prev, next) {
					addEdge(prev, next)
				}
			}
			// Re-order n's prior readers before whatever now occupies
			// n's position; without this a later writer could
			// serialize ahead of readers of the older version.
			var next *node
			if i < len(ks.chain) {
				next = ks.chain[i]
			}
			for r := range n.prior[k] {
				if r.aborted || r == next {
					continue
				}
				if next == nil {
					ks.readTips[r] = struct{}{}
					continue
				}
				if hasPath(next, r) {
					// next already precedes r transitively; ordering r
					// before next is impossible — r's read can no
					// longer hold.
					toAbort = append(toAbort, r)
					continue
				}
				addEdge(r, next)
				next.priorSet(k)[r] = struct{}{}
			}
			break
		}
	}
	// Remove from read-tip sets.
	for _, ks := range g.keys {
		delete(ks.readTips, n)
	}
	// Drop our reader registrations.
	for k, src := range n.readSrc {
		if src != nil {
			delete(src.readersOf[k], n)
		}
	}
	delete(g.nodes, n)

	if n.finished {
		n.tx.done <- Outcome{Committed: false}
	}
	for _, r := range toAbort {
		g.abort(r)
	}
	for _, m := range succs {
		g.tryCommit(m)
	}
}

// tryCommit commits n if it is finished and all predecessors have
// committed, then re-examines its successors.
func (g *Graph) tryCommit(n *node) {
	if n.aborted || n.committed || !n.finished {
		return
	}
	for p := range n.in {
		if !p.committed {
			return
		}
	}
	n.committed = true
	idx := g.commitCount
	g.commitCount++
	g.schedule = append(g.schedule, n.tx)
	n.tx.done <- Outcome{Committed: true, ScheduleIdx: idx}
	for m := range n.out {
		g.tryCommit(m)
	}
}

// ReadSet returns t's retained first-reads in access order. Valid
// after commit.
func (t *Tx) ReadSet() []types.RWRecord {
	out := make([]types.RWRecord, 0, len(t.n.readOrder))
	for _, k := range t.n.readOrder {
		out = append(out, types.RWRecord{Key: k, Value: t.n.firstRead[k].Clone()})
	}
	return out
}

// WriteSet returns t's retained last-writes in access order. Valid
// after commit.
func (t *Tx) WriteSet() []types.RWRecord {
	out := make([]types.RWRecord, 0, len(t.n.writeOrder))
	for _, k := range t.n.writeOrder {
		out = append(out, types.RWRecord{Key: k, Value: t.n.lastWrite[k].Clone()})
	}
	return out
}

// CheckInvariants verifies internal consistency (acyclicity among live
// nodes, chain/edge agreement). It is exported for tests and returns
// a descriptive error when a structural invariant is violated.
func (g *Graph) CheckInvariants() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	// Acyclicity via DFS coloring.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[*node]int, len(g.nodes))
	var visit func(n *node) error
	visit = func(n *node) error {
		color[n] = gray
		for m := range n.out {
			switch color[m] {
			case gray:
				return fmt.Errorf("depgraph: cycle through %v", m.tx.id)
			case white:
				if err := visit(m); err != nil {
					return err
				}
			}
		}
		color[n] = black
		return nil
	}
	for n := range g.nodes {
		if color[n] == white {
			if err := visit(n); err != nil {
				return err
			}
		}
	}
	// Chains contain only live nodes and successive writers are
	// path-ordered.
	for k, ks := range g.keys {
		for i, w := range ks.chain {
			if w.aborted {
				return fmt.Errorf("depgraph: aborted node in chain of %q", k)
			}
			if i > 0 && !ks.chain[i-1].committed && !hasPath(ks.chain[i-1], w) {
				return fmt.Errorf("depgraph: chain of %q not path-ordered at %d", k, i)
			}
		}
	}
	return nil
}
