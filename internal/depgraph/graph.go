// Package depgraph implements the dependency graph at the core of
// Thunderbolt's concurrency controller (paper §8).
//
// The graph tracks causal relationships between in-flight transactions
// as their operations arrive, with no prior knowledge of read/write
// sets. Each node is a transaction; an edge u→v on key K means v must
// serialize after u because of an access to K. Nodes retain at most
// two operations per key — the first read and the last write — which
// is sufficient to preserve every causal constraint (§8.1).
//
// Ordering is nondeterministic: it is fixed by runtime events (which
// write lands first, which reader observes whom), not by arrival
// order. Reads are served from the latest uncommitted write on the key
// (read of uncommitted data), falling back to earlier chain positions
// or the committed store when the newest position would create a
// cycle (§8.4, Figure 10a). Conflicts trigger aborts: a reader that
// cannot be placed aborts alone; a writer invalidating observed values
// cascades aborts through its readers (§8.4, Figure 10b).
//
// The emitted commit sequence is a topological order of the graph, and
// replaying it serially reproduces every observed read and final state
// — the serializability property proved in paper §10 and checked by
// this package's property tests.
//
// The graph is an arena: Reset and Rebase recycle nodes, per-key
// chains, and reachability state in O(touched-this-batch), so a
// proposer executing one batch per DAG round reuses one graph for the
// lifetime of an epoch instead of rebuilding it per batch. Rebase
// additionally carries each key's committed-tip value as a cached base
// value, so batch N+1 diffs against batch N's outcome instead of
// starting cold (the EVE reconciler idiom). Layers (layers.go) is the
// complementary planning half: topologically-sorted conflict-free
// waves for batches whose footprints are already known.
package depgraph

import (
	"fmt"
	"sync"

	"thunderbolt/internal/contract"
	"thunderbolt/internal/types"
)

// BaseReader supplies committed values: the graph's root node. A nil
// result means the key is absent (reads as empty value). The base is
// treated as frozen for the duration of one batch: the first root
// fetch per key is cached until the next Reset.
type BaseReader func(k types.Key) types.Value

// Outcome reports how a finished transaction ended.
type Outcome struct {
	// Committed is true when the transaction entered the schedule;
	// false means it was aborted after finishing and must re-execute.
	Committed bool
	// ScheduleIdx is the position in the serialized execution order
	// (valid only when Committed).
	ScheduleIdx int
}

// Tx is one execution attempt of a transaction against the graph. A
// re-executed transaction gets a fresh Tx from Begin. Handles are
// invalidated by Reset/Rebase: read their sets out before reusing the
// graph.
type Tx struct {
	id   types.Digest
	n    *node
	done chan Outcome
}

// ID returns the transaction identity this attempt belongs to.
func (t *Tx) ID() types.Digest { return t.id }

// Done delivers the final outcome after Finish succeeded.
func (t *Tx) Done() <-chan Outcome { return t.done }

type node struct {
	tx  *Tx
	seq uint64 // creation order, for deterministic iteration

	// reads / lastWrite hold the two retained operations per key
	// (§8.1: first read, last write). A read record keeps the value
	// observed and the writer node it came from (nil = root/committed
	// store). Values in both maps are never mutated in place — every
	// handout to contract code is a clone — so result assembly may
	// alias them without copying.
	reads      map[types.Key]readRec
	lastWrite  map[types.Key]types.Value
	readOrder  []types.Key // keys in first-read order
	writeOrder []types.Key // keys in first-write order
	// readersOf lists, per key this node wrote, the nodes that
	// observed the written value; they cascade-abort if it changes.
	readersOf map[types.Key]map[*node]struct{}
	// prior lists, per key this node wrote, the readers serialized
	// immediately before this write (they read the previous version).
	// If this writer aborts, those readers must be re-ordered before
	// the next writer — otherwise the next writer could serialize
	// ahead of them and invalidate their reads silently.
	prior map[types.Key]map[*node]struct{}

	in  map[*node]struct{}
	out map[*node]struct{}

	finished  bool
	committed bool
	aborted   bool

	// visitGen is the hasPath visited mark: a node is on the current
	// traversal iff visitGen equals the graph's generation counter, so
	// no visited map is allocated per call.
	visitGen uint64
}

// readRec is one retained first-read: the value observed and the
// writer it was observed from (nil = committed root).
type readRec struct {
	v   types.Value
	src *node
}

// keyState tracks the per-key version chain. States are epoch-tagged:
// a state whose epoch lags the graph's is logically empty and is reset
// lazily on first touch, which makes Reset O(keys touched last batch)
// instead of O(all keys ever).
type keyState struct {
	k     types.Key
	epoch uint64

	// chain is the ordered list of uncommitted-or-committed writer
	// nodes for this key; the order is the serialization order of the
	// writes.
	chain []*node
	// readTips are nodes that read the newest version (the last chain
	// element, or the root when the chain is empty) and are not yet
	// ordered before any writer; the next writer serializes after
	// them (Figure 9a).
	readTips map[*node]struct{}

	// rootVal caches the base value (or, after Rebase, the previous
	// batch's committed tip) so repeated root reads skip the BaseReader.
	// Valid iff rootSet and rootGen matches the graph's.
	rootVal types.Value
	rootSet bool
	rootGen uint64
}

// reachKey identifies one positive reachability fact src⇝dst.
type reachKey struct{ src, dst *node }

// Graph is the concurrency controller state. All methods are safe for
// concurrent use by executor goroutines.
type Graph struct {
	mu   sync.Mutex
	base BaseReader
	keys map[types.Key]*keyState

	nodes   map[*node]struct{}
	nextSeq uint64

	schedule    []*Tx
	commitCount int

	// counters for metrics
	aborts uint64

	// Arena state: epoch tags key states, rootGen tags cached base
	// values, touched lists key states used this batch, free holds
	// recycled nodes.
	epoch   uint64
	rootGen uint64
	touched []*keyState
	free    []*node

	// hasPath machinery: generation-stamped visited marks, a reusable
	// DFS stack, and a positive-reachability memo. Edge additions
	// preserve positive facts; removals (aborts) and resets bump
	// removeGen, invalidating the memo in O(1).
	visitGen  uint64
	stack     []*node
	reach     map[reachKey]uint64
	removeGen uint64

	// snapFree recycles the reader-set snapshot slices abort cascades
	// and write serialization iterate over (a free-list rather than one
	// scratch: abort recurses through snapshots). All use is under mu.
	snapFree [][]*node

	// FinishWait fast path: while finishing is non-nil (only ever
	// under mu, within one FinishWait call) that node's outcome is
	// recorded here instead of being sent on its done channel.
	finishing     *node
	finishOut     Outcome
	finishDecided bool
}

// New creates an empty graph over the given committed-state reader.
func New(base BaseReader) *Graph {
	if base == nil {
		base = func(types.Key) types.Value { return nil }
	}
	return &Graph{
		base:  base,
		keys:  make(map[types.Key]*keyState),
		nodes: make(map[*node]struct{}),
		reach: make(map[reachKey]uint64),
	}
}

// Reset empties the graph over a new base, recycling nodes and per-key
// state in O(what last batch touched). Every outstanding Tx handle is
// invalidated; cached base values are dropped.
func (g *Graph) Reset(base BaseReader) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.reset(base, false)
}

// Rebase is Reset plus carry: each key touched last batch keeps its
// committed-tip value (or its cached base value if nothing wrote it)
// as the new base value, so the next batch diffs against the previous
// one instead of re-reading through the BaseReader. The caller asserts
// that base agrees with the previous batch's committed outcome — i.e.
// base(k) would return exactly the carried value for every carried k.
func (g *Graph) Rebase(base BaseReader) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.reset(base, true)
}

func (g *Graph) reset(base BaseReader, carry bool) {
	if base == nil {
		base = func(types.Key) types.Value { return nil }
	}
	g.base = base
	if carry {
		for _, ks := range g.touched {
			// The last chain writer is the batch's final committed value
			// for the key; promote it to the cached base. Values are
			// taken, not cloned: the node's maps are cleared on recycle.
			if tip := ks.tipWriter(); tip != nil && tip.committed {
				ks.rootVal = tip.lastWrite[ks.k]
				ks.rootSet = true
				ks.rootGen = g.rootGen
			}
		}
	} else {
		// Lazily invalidates every cached root value, carried or not.
		g.rootGen++
	}
	g.touched = g.touched[:0]
	g.epoch++ // lazily empties every keyState
	for n := range g.nodes {
		delete(g.nodes, n)
		if n.committed {
			g.recycle(n)
		}
		// Live leftovers (caller abandoned an attempt) keep their
		// handles valid-for-reading; they are dropped to the GC.
	}
	g.schedule = g.schedule[:0]
	g.commitCount = 0
	g.removeGen++ // recycled pointers must not revive stale facts
	if len(g.reach) > 0 {
		clear(g.reach)
	}
}

// recycle returns a committed node (and its Tx shell) to the free
// list for the next Begin.
func (g *Graph) recycle(n *node) {
	// Guarded clears: most maps are empty on conflict-free commits and
	// the mapclear call itself is the dominant recycle cost.
	if len(n.reads) > 0 {
		clear(n.reads)
	}
	if len(n.lastWrite) > 0 {
		clear(n.lastWrite)
	}
	if len(n.readersOf) > 0 {
		clear(n.readersOf)
	}
	if len(n.prior) > 0 {
		clear(n.prior)
	}
	if len(n.in) > 0 {
		clear(n.in)
	}
	if len(n.out) > 0 {
		clear(n.out)
	}
	n.readOrder = n.readOrder[:0]
	n.writeOrder = n.writeOrder[:0]
	n.finished, n.committed, n.aborted = false, false, false
	n.visitGen = 0
	select { // the outcome is consumed before reuse by construction; be safe
	case <-n.tx.done:
	default:
	}
	g.free = append(g.free, n)
}

// Aborts returns the total number of abort events so far (cumulative
// across Resets).
func (g *Graph) Aborts() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.aborts
}

// Live returns the number of live (uncommitted, unaborted) nodes.
func (g *Graph) Live() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	live := 0
	for n := range g.nodes {
		if !n.committed && !n.aborted {
			live++
		}
	}
	return live
}

// Schedule returns the committed transactions in serialization order.
func (g *Graph) Schedule() []*Tx {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]*Tx(nil), g.schedule...)
}

// Begin registers a new execution attempt for transaction id.
func (g *Graph) Begin(id types.Digest) *Tx {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.nextSeq++
	if k := len(g.free); k > 0 {
		n := g.free[k-1]
		g.free = g.free[:k-1]
		n.seq = g.nextSeq
		n.tx.id = id
		g.nodes[n] = struct{}{}
		return n.tx
	}
	t := &Tx{id: id, done: make(chan Outcome, 1)}
	t.n = &node{
		tx:        t,
		seq:       g.nextSeq,
		reads:     make(map[types.Key]readRec),
		lastWrite: make(map[types.Key]types.Value),
		readersOf: make(map[types.Key]map[*node]struct{}),
		prior:     make(map[types.Key]map[*node]struct{}),
		in:        make(map[*node]struct{}),
		out:       make(map[*node]struct{}),
	}
	g.nodes[t.n] = struct{}{}
	return t
}

func (g *Graph) key(k types.Key) *keyState {
	ks, ok := g.keys[k]
	if !ok {
		ks = &keyState{k: k, epoch: g.epoch, readTips: make(map[*node]struct{})}
		g.keys[k] = ks
		g.touched = append(g.touched, ks)
		return ks
	}
	if ks.epoch != g.epoch {
		// Lazy per-batch reset: the chain and tips belong to a recycled
		// batch.
		ks.epoch = g.epoch
		ks.chain = ks.chain[:0]
		if len(ks.readTips) > 0 {
			clear(ks.readTips)
		}
		g.touched = append(g.touched, ks)
	}
	return ks
}

// hasPath reports whether dst is reachable from src via out-edges.
// Visited marks are generation stamps on the nodes and the DFS stack
// is reused, so steady-state calls allocate nothing; positive answers
// are memoized until the next structural removal.
func (g *Graph) hasPath(src, dst *node) bool {
	if src == dst {
		return true
	}
	if len(src.out) == 0 {
		return false
	}
	rk := reachKey{src, dst}
	if gen, ok := g.reach[rk]; ok && gen == g.removeGen {
		return true
	}
	g.visitGen++
	gen := g.visitGen
	src.visitGen = gen
	stack := append(g.stack[:0], src)
	found := false
	for len(stack) > 0 && !found {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for m := range n.out {
			if m == dst {
				found = true
				break
			}
			if m.visitGen != gen {
				m.visitGen = gen
				stack = append(stack, m)
			}
		}
	}
	g.stack = stack[:0]
	if found {
		if len(g.reach) > 1<<15 { // bound the memo under adversarial churn
			clear(g.reach)
		}
		g.reach[rk] = g.removeGen
	}
	return found
}

// addEdge links u→v. Caller must have verified acyclicity.
func addEdge(u, v *node) {
	if u == v {
		return
	}
	u.out[v] = struct{}{}
	v.in[u] = struct{}{}
}

// Read serves <Read, K> for t. It returns contract.ErrAborted when the
// transaction has been aborted (the executor restarts it).
func (g *Graph) Read(t *Tx, k types.Key) (types.Value, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := t.n
	if n.aborted {
		return nil, contract.ErrAborted
	}
	// Read-your-writes: a key we wrote is served from our own record
	// and does not join the read set.
	if v, ok := n.lastWrite[k]; ok {
		return v.Clone(), nil
	}
	// Repeatable read: the first read is retained (§8.1).
	if r, ok := n.reads[k]; ok {
		return r.v.Clone(), nil
	}
	ks := g.key(k)
	// Walk the version chain newest-first looking for a serializable
	// position (§8.4: on a cycle, retry from an ancestor).
	for i := len(ks.chain) - 1; i >= -1; i-- {
		var src *node
		if i >= 0 {
			src = ks.chain[i]
		}
		// Reading version i places n between chain[i] and chain[i+1].
		if i+1 < len(ks.chain) && ks.chain[i+1].committed {
			// The successor writer already committed: n can no longer
			// serialize before it, nor before anything older (commits
			// are monotone along the chain).
			break
		}
		if src != nil && g.hasPath(n, src) {
			continue // edge src→n would close a cycle
		}
		if i+1 < len(ks.chain) && g.hasPath(ks.chain[i+1], n) {
			continue // edge n→chain[i+1] would close a cycle
		}
		// The retained copy aliases the writer's record (or the cached
		// root): those values are only ever replaced, never mutated,
		// so one clone for the contract's private copy suffices.
		var v types.Value
		if src != nil {
			v = src.lastWrite[k]
			addEdge(src, n)
			src.readers(k)[n] = struct{}{}
		} else {
			v = g.rootValue(ks)
		}
		if i+1 < len(ks.chain) {
			next := ks.chain[i+1]
			addEdge(n, next)
			next.priorSet(k)[n] = struct{}{}
		} else {
			// n observed the newest version: the next writer must
			// serialize after it.
			ks.readTips[n] = struct{}{}
		}
		n.reads[k] = readRec{v: v, src: src}
		n.readOrder = append(n.readOrder, k)
		return v.Clone(), nil
	}
	// No serializable position exists: abort the reader (§8.4 rule 1).
	g.abort(n)
	return nil, contract.ErrAborted
}

// rootValue returns the committed/base value for ks, caching the first
// fetch per batch (and serving Rebase-carried values without touching
// the BaseReader at all).
func (g *Graph) rootValue(ks *keyState) types.Value {
	if !ks.rootSet || ks.rootGen != g.rootGen {
		ks.rootVal = g.base(ks.k).Clone()
		ks.rootSet = true
		ks.rootGen = g.rootGen
	}
	return ks.rootVal
}

func (n *node) readers(k types.Key) map[*node]struct{} {
	m, ok := n.readersOf[k]
	if !ok {
		m = make(map[*node]struct{})
		n.readersOf[k] = m
	}
	return m
}

func (n *node) priorSet(k types.Key) map[*node]struct{} {
	m, ok := n.prior[k]
	if !ok {
		m = make(map[*node]struct{})
		n.prior[k] = m
	}
	return m
}

// Write serves <Write, K, V> for t.
func (g *Graph) Write(t *Tx, k types.Key, v types.Value) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := t.n
	if n.aborted {
		return contract.ErrAborted
	}
	if _, wroteBefore := n.lastWrite[k]; wroteBefore {
		// Rewriting a value other transactions already observed
		// invalidates their reads: cascading abort (§8.4 rule 2,
		// Figure 10b; Table 1 time 5). Snapshot the reader set first:
		// cascades mutate it.
		snap := g.snapshotNodes(n.readersOf[k])
		for _, r := range snap {
			g.abort(r)
		}
		g.putSnapshot(snap)
		delete(n.readersOf, k)
		if n.aborted { // a cascade cycled back through another key
			return contract.ErrAborted
		}
		n.lastWrite[k] = v.Clone()
		return nil
	}
	ks := g.key(k)
	tip := ks.tipWriter()
	if r, read := n.reads[k]; read && r.src != tip {
		// We read a version that is no longer the newest; writing now
		// would have to splice into the middle of the chain, which
		// invalidates later blind writers' readers. Abort self and
		// re-execute against the newest version.
		g.abort(n)
		return contract.ErrAborted
	}
	// Serialize after everyone who observed the current newest
	// version (Figure 9a): readTips → n.
	snap := g.snapshotNodes(ks.readTips)
	defer g.putSnapshot(snap)
	for _, r := range snap {
		if r == n || r.aborted {
			continue
		}
		if g.hasPath(n, r) {
			// r transitively follows n yet read the version n is
			// about to supersede: r's read is doomed. Abort r.
			g.abort(r)
			if n.aborted {
				return contract.ErrAborted
			}
			continue
		}
		addEdge(r, n)
		n.priorSet(k)[r] = struct{}{}
	}
	if tip != nil && tip != n {
		if g.hasPath(n, tip) {
			// n already precedes the newest writer; appending after it
			// would cycle. Abort self (blind-write conflict).
			g.abort(n)
			return contract.ErrAborted
		}
		addEdge(tip, n)
	}
	ks.chain = append(ks.chain, n)
	if len(ks.readTips) > 0 {
		clear(ks.readTips)
	}
	n.lastWrite[k] = v.Clone()
	n.writeOrder = append(n.writeOrder, k)
	return nil
}

// snapshotNodes copies a node set into a slice so callers can iterate
// while cascaded aborts mutate the underlying map.
func (g *Graph) snapshotNodes(set map[*node]struct{}) []*node {
	if len(set) == 0 {
		return nil
	}
	var out []*node
	if n := len(g.snapFree); n > 0 {
		out = g.snapFree[n-1][:0]
		g.snapFree = g.snapFree[:n-1]
	} else {
		out = make([]*node, 0, max(len(set), 8))
	}
	for n := range set {
		out = append(out, n)
	}
	return out
}

// putSnapshot returns a snapshot slice to the free-list once its
// iteration is done (clearing the node references it pins).
func (g *Graph) putSnapshot(s []*node) {
	if s == nil {
		return
	}
	clear(s)
	g.snapFree = append(g.snapFree, s[:0])
}

func (ks *keyState) tipWriter() *node {
	if len(ks.chain) == 0 {
		return nil
	}
	return ks.chain[len(ks.chain)-1]
}

// Finish declares that t's contract code completed. The outcome
// arrives on t.Done(): either a commit with a schedule position, or an
// abort requiring re-execution. Finish returns contract.ErrAborted
// immediately if the transaction is already dead.
func (g *Graph) Finish(t *Tx) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if t.n.aborted {
		return contract.ErrAborted
	}
	t.n.finished = true
	g.tryCommit(t.n)
	return nil
}

// FinishWait declares completion and blocks until t's outcome is
// decided. When the decision falls out of the Finish itself — the
// common conflict-free case, where t has no uncommitted predecessors
// — the outcome is returned directly with no channel round-trip;
// otherwise it waits on t.Done(). Returns contract.ErrAborted if the
// transaction is already dead.
func (g *Graph) FinishWait(t *Tx) (Outcome, error) {
	g.mu.Lock()
	if t.n.aborted {
		g.mu.Unlock()
		return Outcome{}, contract.ErrAborted
	}
	t.n.finished = true
	g.finishing, g.finishDecided = t.n, false
	g.tryCommit(t.n)
	decided, out := g.finishDecided, g.finishOut
	g.finishing = nil
	g.mu.Unlock()
	if decided {
		return out, nil
	}
	return <-t.done, nil
}

// Abort removes t from the graph. It is idempotent — safe on handles
// the graph already aborted — so executors call it on every
// non-committed exit path (terminal contract failures, exhausted
// retries, and contract-originated ErrAborted, where the node is
// still live and would otherwise leak into the next batch's chains).
func (g *Graph) Abort(t *Tx) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !t.n.aborted && !t.n.committed {
		g.abort(t.n)
	}
}

// abort removes n and cascades through readers of its writes.
// Committed nodes are never aborted (commit requires all predecessors
// committed, so no observed value can become stale afterwards).
func (g *Graph) abort(n *node) {
	if n.aborted || n.committed {
		return
	}
	n.aborted = true
	g.aborts++
	g.removeGen++ // structural removal: memoized reachability is stale

	// Cascade first: everyone who read one of n's writes holds a value
	// that will no longer exist.
	for _, readers := range n.readersOf {
		snap := g.snapshotNodes(readers)
		for _, r := range snap {
			g.abort(r)
		}
		g.putSnapshot(snap)
	}
	// Unlink edges first so chain splicing below sees the graph
	// without n; successors may become commit-eligible.
	var succs []*node
	for m := range n.out {
		delete(m.in, n)
		succs = append(succs, m)
	}
	for m := range n.in {
		delete(m.out, n)
	}
	clear(n.out)
	clear(n.in)
	// Detach from version chains, splicing write order across the gap.
	// Aborts discovered during reattachment are deferred until the
	// splice completes so recursion never mutates a chain mid-walk.
	var toAbort []*node
	for _, k := range n.writeOrder {
		ks := g.keys[k]
		for i, w := range ks.chain {
			if w != n {
				continue
			}
			ks.chain = append(ks.chain[:i], ks.chain[i+1:]...)
			// Preserve ordering between the neighbours.
			if i > 0 && i < len(ks.chain) {
				prev, next := ks.chain[i-1], ks.chain[i]
				if !g.hasPath(prev, next) {
					addEdge(prev, next)
				}
			}
			// Re-order n's prior readers before whatever now occupies
			// n's position; without this a later writer could
			// serialize ahead of readers of the older version.
			var next *node
			if i < len(ks.chain) {
				next = ks.chain[i]
			}
			for r := range n.prior[k] {
				if r.aborted || r == next {
					continue
				}
				if next == nil {
					ks.readTips[r] = struct{}{}
					continue
				}
				if g.hasPath(next, r) {
					// next already precedes r transitively; ordering r
					// before next is impossible — r's read can no
					// longer hold.
					toAbort = append(toAbort, r)
					continue
				}
				addEdge(r, next)
				next.priorSet(k)[r] = struct{}{}
			}
			break
		}
	}
	// Remove from read-tip sets: n can only be a tip of keys it read.
	for _, k := range n.readOrder {
		if ks, ok := g.keys[k]; ok && ks.epoch == g.epoch {
			delete(ks.readTips, n)
		}
	}
	// Drop our reader registrations.
	for k, r := range n.reads {
		if r.src != nil {
			delete(r.src.readersOf[k], n)
		}
	}
	delete(g.nodes, n)

	if n.finished {
		g.deliver(n, Outcome{Committed: false})
	}
	for _, r := range toAbort {
		g.abort(r)
	}
	for _, m := range succs {
		g.tryCommit(m)
	}
}

// tryCommit commits n if it is finished and all predecessors have
// committed, then re-examines its successors.
func (g *Graph) tryCommit(n *node) {
	if n.aborted || n.committed || !n.finished {
		return
	}
	for p := range n.in {
		if !p.committed {
			return
		}
	}
	n.committed = true
	idx := g.commitCount
	g.commitCount++
	g.schedule = append(g.schedule, n.tx)
	g.deliver(n, Outcome{Committed: true, ScheduleIdx: idx})
	for m := range n.out {
		g.tryCommit(m)
	}
}

// deliver hands n its outcome: directly when n is inside FinishWait
// on this goroutine (no channel traffic), via its done channel when a
// worker is parked on Done().
func (g *Graph) deliver(n *node, out Outcome) {
	if n == g.finishing {
		g.finishOut, g.finishDecided = out, true
		return
	}
	n.tx.done <- out
}

// ReadSet returns t's retained first-reads in access order. Valid
// after commit. Values alias graph-retained copies, which are never
// mutated in place (every handout to contract code is a clone), so
// the records stay stable after the graph is reset or recycled.
func (t *Tx) ReadSet() []types.RWRecord {
	out := make([]types.RWRecord, 0, len(t.n.readOrder))
	for _, k := range t.n.readOrder {
		out = append(out, types.RWRecord{Key: k, Value: t.n.reads[k].v})
	}
	return out
}

// WriteSet returns t's retained last-writes in access order, under
// the same aliasing rules as ReadSet. Valid after commit.
func (t *Tx) WriteSet() []types.RWRecord {
	out := make([]types.RWRecord, 0, len(t.n.writeOrder))
	for _, k := range t.n.writeOrder {
		out = append(out, types.RWRecord{Key: k, Value: t.n.lastWrite[k]})
	}
	return out
}

// ReadKeys returns the keys t read, in first-access order, without
// copying. The slice aliases graph-internal state: it is only valid
// to call after the attempt ended (committed or aborted), from the
// goroutine that drove it, and until the graph is reset.
func (t *Tx) ReadKeys() []types.Key { return t.n.readOrder }

// WriteKeys returns the keys t wrote, in first-write order, under the
// same validity rules as ReadKeys.
func (t *Tx) WriteKeys() []types.Key { return t.n.writeOrder }

// CheckInvariants verifies internal consistency (acyclicity among live
// nodes, chain/edge agreement). It is exported for tests and returns
// a descriptive error when a structural invariant is violated.
func (g *Graph) CheckInvariants() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	// Acyclicity via DFS coloring.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[*node]int, len(g.nodes))
	var visit func(n *node) error
	visit = func(n *node) error {
		color[n] = gray
		for m := range n.out {
			switch color[m] {
			case gray:
				return fmt.Errorf("depgraph: cycle through %v", m.tx.id)
			case white:
				if err := visit(m); err != nil {
					return err
				}
			}
		}
		color[n] = black
		return nil
	}
	for n := range g.nodes {
		if color[n] == white {
			if err := visit(n); err != nil {
				return err
			}
		}
	}
	// Chains contain only live nodes and successive writers are
	// path-ordered. Key states from recycled batches are logically
	// empty and skipped.
	for k, ks := range g.keys {
		if ks.epoch != g.epoch {
			continue
		}
		for i, w := range ks.chain {
			if w.aborted {
				return fmt.Errorf("depgraph: aborted node in chain of %q", k)
			}
			if i > 0 && !ks.chain[i-1].committed && !g.hasPath(ks.chain[i-1], w) {
				return fmt.Errorf("depgraph: chain of %q not path-ordered at %d", k, i)
			}
		}
	}
	return nil
}
