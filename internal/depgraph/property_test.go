package depgraph

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"thunderbolt/internal/contract"
	"thunderbolt/internal/types"
)

// scriptOp is one step of a scripted transaction.
type scriptOp struct {
	write bool
	key   types.Key
	val   int
}

// scriptTx is a deterministic transaction over small key/value spaces.
type scriptTx struct {
	id  types.Digest
	ops []scriptOp
}

// randomScript generates a transaction touching up to 4 of `keys`.
func randomScript(rng *rand.Rand, idx int, keys []types.Key) scriptTx {
	n := 1 + rng.Intn(4)
	tx := scriptTx{id: types.HashBytes([]byte(fmt.Sprintf("script-%d", idx)))}
	for i := 0; i < n; i++ {
		tx.ops = append(tx.ops, scriptOp{
			write: rng.Intn(2) == 0,
			key:   keys[rng.Intn(len(keys))],
			val:   rng.Intn(1000),
		})
	}
	return tx
}

// runScripted executes scripted transactions against the graph in a
// randomized interleaving (single goroutine, explicit scheduler),
// retrying aborted transactions. Returns the commit schedule.
func runScripted(t *testing.T, g *Graph, rng *rand.Rand, txs []scriptTx) []*Tx {
	t.Helper()
	type liveTx struct {
		script  scriptTx
		handle  *Tx
		pc      int
		reads   map[types.Key]types.Value
		waiting bool
	}
	var live []*liveTx
	for _, s := range txs {
		live = append(live, &liveTx{script: s, handle: g.Begin(s.id)})
	}
	pending := len(live)
	for pending > 0 {
		lt := live[rng.Intn(len(live))]
		if lt.handle == nil {
			continue
		}
		if lt.waiting {
			// Check the outcome without blocking.
			select {
			case o := <-lt.handle.Done():
				if o.Committed {
					lt.handle = nil
					pending--
				} else {
					// Aborted after finish: restart.
					lt.handle = g.Begin(lt.script.id)
					lt.pc = 0
					lt.waiting = false
				}
			default:
			}
			continue
		}
		if lt.pc >= len(lt.script.ops) {
			if err := g.Finish(lt.handle); err != nil {
				lt.handle = g.Begin(lt.script.id)
				lt.pc = 0
				continue
			}
			lt.waiting = true
			continue
		}
		op := lt.script.ops[lt.pc]
		var err error
		if op.write {
			err = g.Write(lt.handle, op.key, types.Value(fmt.Sprintf("%d", op.val)))
		} else {
			_, err = g.Read(lt.handle, op.key)
		}
		if errors.Is(err, contract.ErrAborted) {
			lt.handle = g.Begin(lt.script.id)
			lt.pc = 0
			continue
		}
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		lt.pc++
	}
	return g.Schedule()
}

// TestScriptedSerializability drives many random scripted workloads
// through randomized interleavings and verifies serializability by
// replaying the schedule serially (the §10 property).
func TestScriptedSerializability(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		nKeys := 1 + rng.Intn(5)
		var keys []types.Key
		for i := 0; i < nKeys; i++ {
			keys = append(keys, types.Key(fmt.Sprintf("k%d", i)))
		}
		base := map[types.Key]types.Value{}
		for _, k := range keys {
			base[k] = types.Value("init")
		}
		nTxs := 3 + rng.Intn(15)
		var scripts []scriptTx
		for i := 0; i < nTxs; i++ {
			scripts = append(scripts, randomScript(rng, trial*100+i, keys))
		}

		g := New(func(k types.Key) types.Value { return base[k] })
		sched := runScripted(t, g, rng, scripts)
		if len(sched) != nTxs {
			t.Fatalf("trial %d: scheduled %d/%d", trial, len(sched), nTxs)
		}
		if err := g.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// Serial replay: walk the schedule, apply last-writes, and
		// check every declared read against the replayed state.
		state := map[types.Key]types.Value{}
		for k, v := range base {
			state[k] = v
		}
		byID := map[types.Digest]scriptTx{}
		for _, s := range scripts {
			byID[s.id] = s
		}
		for pos, h := range sched {
			for _, r := range h.ReadSet() {
				if !state[r.Key].Equal(r.Value) {
					t.Fatalf("trial %d pos %d: read %s=%q but serial state has %q",
						trial, pos, r.Key, r.Value, state[r.Key])
				}
			}
			for _, w := range h.WriteSet() {
				state[w.Key] = w.Value
			}
		}
	}
}

// TestScheduleIsTopologicalOrder verifies the commit order never
// contradicts an observed read dependency.
func TestScheduleIsTopologicalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	keys := []types.Key{"a", "b"}
	var scripts []scriptTx
	for i := 0; i < 12; i++ {
		scripts = append(scripts, randomScript(rng, 9000+i, keys))
	}
	g := New(nil)
	sched := runScripted(t, g, rng, scripts)

	// Position index per tx.
	pos := map[types.Digest]int{}
	for i, h := range sched {
		pos[h.ID()] = i
	}
	// Every read value must have been produced by an earlier write
	// in the schedule (or be the base value).
	lastWriter := map[types.Key]int{}
	for i, h := range sched {
		for _, r := range h.ReadSet() {
			if w, ok := lastWriter[r.Key]; ok {
				if w >= i {
					t.Fatalf("tx %d reads %s written at %d", i, r.Key, w)
				}
			}
		}
		for _, w := range h.WriteSet() {
			lastWriter[w.Key] = i
		}
	}
}

// TestGraphStressManyKeysNoLeak checks bookkeeping stays consistent
// through a large randomized run.
func TestGraphStressManyKeysNoLeak(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	keys := make([]types.Key, 20)
	for i := range keys {
		keys[i] = types.Key(fmt.Sprintf("k%02d", i))
	}
	var scripts []scriptTx
	for i := 0; i < 150; i++ {
		scripts = append(scripts, randomScript(rng, 50_000+i, keys))
	}
	g := New(nil)
	sched := runScripted(t, g, rng, scripts)
	if len(sched) != 150 {
		t.Fatalf("scheduled %d/150", len(sched))
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if g.Live() != 0 {
		// Everything committed: no uncommitted/unaborted node may
		// linger.
		t.Fatalf("live=%d want 0 after full commit", g.Live())
	}
	t.Logf("aborts across stress run: %d", g.Aborts())
}
