package depgraph

import (
	"errors"
	"testing"

	"thunderbolt/internal/contract"
	"thunderbolt/internal/storage"
	"thunderbolt/internal/types"
)

func baseOf(st *storage.Store) BaseReader {
	return func(k types.Key) types.Value {
		v, _ := st.Get(k)
		return v
	}
}

func id(s string) types.Digest { return types.HashBytes([]byte(s)) }

func val(s string) types.Value { return types.Value(s) }

// outcomeNow returns the outcome if one is ready, without blocking.
func outcomeNow(t *Tx) (Outcome, bool) {
	select {
	case o := <-t.Done():
		return o, true
	default:
		return Outcome{}, false
	}
}

func mustRead(t *testing.T, g *Graph, tx *Tx, k types.Key) types.Value {
	t.Helper()
	v, err := g.Read(tx, k)
	if err != nil {
		t.Fatalf("read %s for %v: %v", k, tx.ID(), err)
	}
	return v
}

func mustWrite(t *testing.T, g *Graph, tx *Tx, k types.Key, v types.Value) {
	t.Helper()
	if err := g.Write(tx, k, v); err != nil {
		t.Fatalf("write %s for %v: %v", k, tx.ID(), err)
	}
}

func TestReadFromBaseAndWriters(t *testing.T) {
	st := storage.New()
	st.Set("D", val("base"))
	g := New(baseOf(st))

	t1 := g.Begin(id("t1"))
	if got := mustRead(t, g, t1, "D"); string(got) != "base" {
		t.Fatalf("read %q want base", got)
	}
	mustWrite(t, g, t1, "D", val("v1"))
	t2 := g.Begin(id("t2"))
	if got := mustRead(t, g, t2, "D"); string(got) != "v1" {
		t.Fatalf("t2 must read uncommitted v1, got %q", got)
	}
}

func TestReadYourWritesAndRepeatableRead(t *testing.T) {
	g := New(nil)
	t1 := g.Begin(id("t1"))
	mustWrite(t, g, t1, "K", val("mine"))
	if got := mustRead(t, g, t1, "K"); string(got) != "mine" {
		t.Fatalf("read-your-writes broken: %q", got)
	}
	// Own reads do not enter the read set.
	if err := g.Finish(t1); err != nil {
		t.Fatal(err)
	}
	<-t1.Done()
	if len(t1.ReadSet()) != 0 {
		t.Fatalf("own-write read leaked into read set: %+v", t1.ReadSet())
	}

	g2 := New(func(types.Key) types.Value { return val("a") })
	t2 := g2.Begin(id("t2"))
	if got := mustRead(t, g2, t2, "K"); string(got) != "a" {
		t.Fatal("first read wrong")
	}
	// Even after another tx writes, t2's read stays repeatable.
	t3 := g2.Begin(id("t3"))
	mustWrite(t, g2, t3, "K", val("b"))
	if got := mustRead(t, g2, t2, "K"); string(got) != "a" {
		t.Fatalf("repeatable read broken: %q", got)
	}
}

// TestTable1Scenario replays the paper's Table 1 step by step.
func TestTable1Scenario(t *testing.T) {
	st := storage.New()
	st.Set("D", contractInt(3))
	g := New(baseOf(st))

	t1 := g.Begin(id("T1"))
	t2 := g.Begin(id("T2"))
	t3 := g.Begin(id("T3"))

	// Time 1: T1 writes D=3.
	mustWrite(t, g, t1, "D", contractInt(3))
	// Time 2-3: T2 and T3 read D from T1.
	if got := mustRead(t, g, t2, "D"); !got.Equal(contractInt(3)) {
		t.Fatal("T2 read wrong")
	}
	if got := mustRead(t, g, t3, "D"); !got.Equal(contractInt(3)) {
		t.Fatal("T3 read wrong")
	}
	// Time 4: T3 commits -> must wait for T1.
	if err := g.Finish(t3); err != nil {
		t.Fatal(err)
	}
	if _, ready := outcomeNow(t3); ready {
		t.Fatal("T3 committed before its dependency T1")
	}
	// Time 5: T1 writes D=5 -> aborts T2 and T3.
	mustWrite(t, g, t1, "D", contractInt(5))
	if o, ready := outcomeNow(t3); !ready || o.Committed {
		t.Fatal("T3 was not aborted by T1's rewrite")
	}
	if _, err := g.Read(t2, "X"); !errors.Is(err, contract.ErrAborted) {
		t.Fatal("T2's next operation should observe the abort")
	}
	// Time 6: T3 re-executes, reads D=5.
	t3b := g.Begin(id("T3"))
	if got := mustRead(t, g, t3b, "D"); !got.Equal(contractInt(5)) {
		t.Fatal("T3 re-execution read wrong value")
	}
	// Time 7: T1 commits.
	if err := g.Finish(t1); err != nil {
		t.Fatal(err)
	}
	o1, ready := outcomeNow(t1)
	if !ready || !o1.Committed || o1.ScheduleIdx != 0 {
		t.Fatalf("T1 outcome wrong: %+v ready=%v", o1, ready)
	}
	// Time 8: T3 commits.
	if err := g.Finish(t3b); err != nil {
		t.Fatal(err)
	}
	o3, ready := outcomeNow(t3b)
	if !ready || !o3.Committed || o3.ScheduleIdx != 1 {
		t.Fatalf("T3 outcome wrong: %+v", o3)
	}
	// Time 10-12: T2 re-executes, reads 5, writes 2, commits.
	t2b := g.Begin(id("T2"))
	if got := mustRead(t, g, t2b, "D"); !got.Equal(contractInt(5)) {
		t.Fatal("T2 re-execution read wrong value")
	}
	mustWrite(t, g, t2b, "D", contractInt(2))
	if err := g.Finish(t2b); err != nil {
		t.Fatal(err)
	}
	o2, ready := outcomeNow(t2b)
	if !ready || !o2.Committed || o2.ScheduleIdx != 2 {
		t.Fatalf("T2 outcome wrong: %+v", o2)
	}
	// Final schedule [T1, T3, T2].
	sched := g.Schedule()
	if len(sched) != 3 || sched[0].ID() != id("T1") || sched[1].ID() != id("T3") || sched[2].ID() != id("T2") {
		t.Fatalf("schedule wrong: %v", sched)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if g.Aborts() != 2 {
		t.Fatalf("aborts=%d want 2", g.Aborts())
	}
}

func contractInt(v int64) types.Value {
	return types.Value{byte(v >> 56), byte(v >> 48), byte(v >> 40), byte(v >> 32),
		byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

func TestWriteWriteOrderFollowsArrival(t *testing.T) {
	g := New(nil)
	t1 := g.Begin(id("t1"))
	t2 := g.Begin(id("t2"))
	mustWrite(t, g, t1, "K", val("1"))
	mustWrite(t, g, t2, "K", val("2"))
	// t2 appended after t1: t2 cannot commit before t1.
	if err := g.Finish(t2); err != nil {
		t.Fatal(err)
	}
	if _, ready := outcomeNow(t2); ready {
		t.Fatal("t2 committed before preceding writer t1")
	}
	if err := g.Finish(t1); err != nil {
		t.Fatal(err)
	}
	o1, _ := outcomeNow(t1)
	o2, _ := outcomeNow(t2)
	if !o1.Committed || !o2.Committed || !(o1.ScheduleIdx < o2.ScheduleIdx) {
		t.Fatalf("write order not preserved: %+v %+v", o1, o2)
	}
}

func TestReadOnlyCommitsImmediately(t *testing.T) {
	g := New(func(types.Key) types.Value { return val("x") })
	t1 := g.Begin(id("t1"))
	mustRead(t, g, t1, "A")
	if err := g.Finish(t1); err != nil {
		t.Fatal(err)
	}
	if o, ready := outcomeNow(t1); !ready || !o.Committed {
		t.Fatal("independent read-only tx should commit instantly")
	}
}

func TestBlindWriterAfterBaseReaders(t *testing.T) {
	g := New(func(types.Key) types.Value { return val("base") })
	r1 := g.Begin(id("r1"))
	r2 := g.Begin(id("r2"))
	mustRead(t, g, r1, "K")
	mustRead(t, g, r2, "K")
	w := g.Begin(id("w"))
	mustWrite(t, g, w, "K", val("new"))
	// Writer must wait for both readers (Figure 9a).
	if err := g.Finish(w); err != nil {
		t.Fatal(err)
	}
	if _, ready := outcomeNow(w); ready {
		t.Fatal("writer committed before base readers")
	}
	g.Finish(r1)
	if _, ready := outcomeNow(w); ready {
		t.Fatal("writer committed before all base readers")
	}
	g.Finish(r2)
	if o, ready := outcomeNow(w); !ready || !o.Committed {
		t.Fatal("writer did not commit after readers")
	}
	sched := g.Schedule()
	if len(sched) != 3 || sched[2].ID() != id("w") {
		t.Fatalf("schedule wrong: %v", sched)
	}
}

func TestStaleReadUpgradeAborts(t *testing.T) {
	g := New(func(types.Key) types.Value { return val("0") })
	r := g.Begin(id("r"))
	mustRead(t, g, r, "K") // reads base
	w := g.Begin(id("w"))
	mustWrite(t, g, w, "K", val("1")) // appends after r
	// r now upgrades to a write: its read is stale -> abort self.
	err := g.Write(r, "K", val("2"))
	if !errors.Is(err, contract.ErrAborted) {
		t.Fatalf("stale upgrade should abort, got %v", err)
	}
	// Retry reads the new tip and succeeds.
	r2 := g.Begin(id("r"))
	if got := mustRead(t, g, r2, "K"); string(got) != "1" {
		t.Fatalf("retry read %q", got)
	}
	mustWrite(t, g, r2, "K", val("2"))
	g.Finish(w)
	g.Finish(r2)
	if o, ready := outcomeNow(r2); !ready || !o.Committed {
		t.Fatal("upgrade retry did not commit")
	}
}

func TestRewriteCascadesThroughChainOfReaders(t *testing.T) {
	// Figure 10b: T1 writes A; T2 reads A and writes B; T3 reads B.
	// T1 rewriting A must abort both T2 and T3.
	g := New(nil)
	t1 := g.Begin(id("T1"))
	mustWrite(t, g, t1, "A", val("5"))
	t2 := g.Begin(id("T2"))
	mustRead(t, g, t2, "A")
	mustWrite(t, g, t2, "B", val("3"))
	t3 := g.Begin(id("T3"))
	mustRead(t, g, t3, "B")
	g.Finish(t3)

	mustWrite(t, g, t1, "A", val("3")) // rewrite
	if _, err := g.Read(t2, "C"); !errors.Is(err, contract.ErrAborted) {
		t.Fatal("T2 not aborted by rewrite")
	}
	if o, ready := outcomeNow(t3); !ready || o.Committed {
		t.Fatal("T3 not cascade-aborted")
	}
	if g.Aborts() != 2 {
		t.Fatalf("aborts=%d want 2", g.Aborts())
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCycleFallbackReadsAncestor(t *testing.T) {
	// Figure 10a: T1 and T3 conflict on A so that T1 -> T3 exists;
	// T1 then reads B written by T3. Reading T3's B would cycle, so
	// T1 falls back to the root value of B and stays alive.
	g := New(func(k types.Key) types.Value {
		if k == "B" {
			return val("rootB")
		}
		return nil
	})
	t1 := g.Begin(id("T1"))
	mustRead(t, g, t1, "A") // T1 reads base A; becomes read tip
	t3 := g.Begin(id("T3"))
	mustWrite(t, g, t3, "A", val("3")) // edge T1 -> T3
	mustWrite(t, g, t3, "B", val("3"))
	got := mustRead(t, g, t1, "B")
	if string(got) != "rootB" {
		t.Fatalf("T1 should fall back to root B, got %q", got)
	}
	// Both must still be able to commit, T1 first.
	g.Finish(t1)
	g.Finish(t3)
	o1, _ := outcomeNow(t1)
	o3, _ := outcomeNow(t3)
	if !o1.Committed || !o3.Committed || !(o1.ScheduleIdx < o3.ScheduleIdx) {
		t.Fatalf("fallback order wrong: %+v %+v", o1, o3)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderCannotSlotBeforeCommittedWriter(t *testing.T) {
	g := New(func(types.Key) types.Value { return val("base") })
	w := g.Begin(id("w"))
	mustWrite(t, g, w, "K", val("1"))
	g.Finish(w)
	if o, ready := outcomeNow(w); !ready || !o.Committed {
		t.Fatal("writer should commit")
	}
	// A new reader must observe the committed writer's value (it can
	// no longer serialize before it), even though the base still holds
	// the old value.
	r := g.Begin(id("r"))
	if got := mustRead(t, g, r, "K"); string(got) != "1" {
		t.Fatalf("reader got %q, want committed 1", got)
	}
}

func TestTerminalAbortRemovesNode(t *testing.T) {
	g := New(nil)
	t1 := g.Begin(id("t1"))
	mustWrite(t, g, t1, "K", val("dirty"))
	t2 := g.Begin(id("t2"))
	mustRead(t, g, t2, "K") // reads dirty value
	g.Abort(t1)             // terminal failure of t1
	// t2 read doomed data: must be cascade-aborted.
	if _, err := g.Read(t2, "Z"); !errors.Is(err, contract.ErrAborted) {
		t.Fatal("t2 survived its source's terminal abort")
	}
	// Fresh reader sees base again.
	t3 := g.Begin(id("t3"))
	if got := mustRead(t, g, t3, "K"); got != nil {
		t.Fatalf("t3 read %q, want base nil", got)
	}
	if g.Live() != 1 {
		t.Fatalf("live=%d want 1", g.Live())
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMidChainAbortSplicesOrder(t *testing.T) {
	g := New(nil)
	w1 := g.Begin(id("w1"))
	w2 := g.Begin(id("w2"))
	w3 := g.Begin(id("w3"))
	mustWrite(t, g, w1, "K", val("1"))
	mustWrite(t, g, w2, "K", val("2"))
	mustWrite(t, g, w3, "K", val("3"))
	g.Abort(w2)
	// w3 must still wait for w1.
	g.Finish(w3)
	if _, ready := outcomeNow(w3); ready {
		t.Fatal("w3 committed before w1 after splice")
	}
	g.Finish(w1)
	if o, ready := outcomeNow(w3); !ready || !o.Committed {
		t.Fatal("w3 did not commit after w1")
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteSetRecordsLastWriteOnly(t *testing.T) {
	g := New(nil)
	t1 := g.Begin(id("t1"))
	mustWrite(t, g, t1, "K", val("first"))
	mustWrite(t, g, t1, "K", val("last"))
	mustWrite(t, g, t1, "J", val("j"))
	g.Finish(t1)
	<-t1.Done()
	ws := t1.WriteSet()
	if len(ws) != 2 || ws[0].Key != "K" || string(ws[0].Value) != "last" || ws[1].Key != "J" {
		t.Fatalf("write set wrong: %+v", ws)
	}
}

func TestReadSetRecordsFirstReadOnly(t *testing.T) {
	g := New(func(types.Key) types.Value { return val("v0") })
	t1 := g.Begin(id("t1"))
	mustRead(t, g, t1, "A")
	mustRead(t, g, t1, "A")
	mustRead(t, g, t1, "B")
	g.Finish(t1)
	<-t1.Done()
	rs := t1.ReadSet()
	if len(rs) != 2 || rs[0].Key != "A" || rs[1].Key != "B" {
		t.Fatalf("read set wrong: %+v", rs)
	}
}

func TestFinishAfterAbortErrors(t *testing.T) {
	g := New(nil)
	t1 := g.Begin(id("t1"))
	mustWrite(t, g, t1, "K", val("1"))
	g.Abort(t1)
	if err := g.Finish(t1); !errors.Is(err, contract.ErrAborted) {
		t.Fatalf("finish after abort: %v", err)
	}
	// Double abort is a no-op.
	g.Abort(t1)
	if g.Aborts() != 1 {
		t.Fatalf("aborts=%d want 1", g.Aborts())
	}
}
