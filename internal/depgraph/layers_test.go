package depgraph

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"thunderbolt/internal/types"
)

func layersSeed(def int64) int64 {
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return def
}

func conflicts(a, b *Access) bool {
	for _, w := range a.Writes {
		for _, k := range b.Writes {
			if w == k {
				return true
			}
		}
		for _, k := range b.Reads {
			if w == k {
				return true
			}
		}
	}
	for _, r := range a.Reads {
		for _, k := range b.Writes {
			if r == k {
				return true
			}
		}
	}
	return false
}

// TestLayersProperties: for random footprints, Layers must (1)
// partition all indices exactly once, (2) never co-locate two
// conflicting transactions in one layer, and (3) respect schedule
// order — every conflict's earlier transaction sits in a strictly
// lower layer (topological order of the conflict graph).
func TestLayersProperties(t *testing.T) {
	seed := layersSeed(11)
	t.Logf("layers seed %d (set CHAOS_SEED to replay)", seed)
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 50; trial++ {
		nKeys := 1 + rng.Intn(12)
		keys := make([]types.Key, nKeys)
		for i := range keys {
			keys[i] = types.Key(fmt.Sprintf("k%d", i))
		}
		n := rng.Intn(60)
		accs := make([]Access, n)
		for i := range accs {
			for j := 0; j < 1+rng.Intn(3); j++ {
				k := keys[rng.Intn(nKeys)]
				if rng.Intn(2) == 0 {
					accs[i].Reads = append(accs[i].Reads, k)
				} else {
					accs[i].Writes = append(accs[i].Writes, k)
				}
			}
		}
		layers := Layers(accs)

		layerOf := make([]int, n)
		seen := 0
		for l, layer := range layers {
			for _, i := range layer {
				layerOf[i] = l
				seen++
			}
		}
		if seen != n {
			t.Fatalf("trial %d: layers cover %d of %d indices", trial, seen, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if !conflicts(&accs[i], &accs[j]) {
					continue
				}
				if layerOf[i] >= layerOf[j] {
					t.Fatalf("trial %d: conflicting txs %d (layer %d) and %d (layer %d) not ordered",
						trial, i, layerOf[i], j, layerOf[j])
				}
			}
		}
	}
}

// TestLayersOfResultsAgrees: planning from declared TxResults must be
// identical to planning from the equivalent Access slices.
func TestLayersOfResultsAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(layersSeed(13)))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(40)
		accs := make([]Access, n)
		results := make([]types.TxResult, n)
		for i := range accs {
			for j := 0; j < 1+rng.Intn(3); j++ {
				k := types.Key(fmt.Sprintf("k%d", rng.Intn(8)))
				if rng.Intn(2) == 0 {
					accs[i].Reads = append(accs[i].Reads, k)
					results[i].ReadSet = append(results[i].ReadSet, types.RWRecord{Key: k})
				} else {
					accs[i].Writes = append(accs[i].Writes, k)
					results[i].WriteSet = append(results[i].WriteSet, types.RWRecord{Key: k})
				}
			}
		}
		a, b := Layers(accs), LayersOfResults(results)
		if len(a) != len(b) {
			t.Fatalf("trial %d: %d vs %d layers", trial, len(a), len(b))
		}
		for l := range a {
			if len(a[l]) != len(b[l]) {
				t.Fatalf("trial %d layer %d: %d vs %d members", trial, l, len(a[l]), len(b[l]))
			}
			for i := range a[l] {
				if a[l][i] != b[l][i] {
					t.Fatalf("trial %d layer %d: member %d differs", trial, l, i)
				}
			}
		}
	}
}

func TestLayersEmpty(t *testing.T) {
	if l := Layers(nil); l != nil {
		t.Fatalf("empty plan should be nil, got %v", l)
	}
}

// BenchmarkHasPathCached drives the reachability-heavy Read path: a
// chain of uncommitted writers over one hot key plus interleaved
// readers, so every placement probes hasPath against live chain
// entries. The generation-stamped visited marks and the positive
// reachability memo are what keep allocs/op flat here.
func BenchmarkHasPathCached(b *testing.B) {
	const depth = 32
	val := types.Value("v")
	ids := make([]types.Digest, depth+1)
	for i := range ids {
		ids[i] = types.HashBytes([]byte(fmt.Sprintf("bench-%d", i)))
	}
	g := New(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Build an uncommitted writer chain: tx j reads key j-1 and
		// writes key j, so edges link the whole batch.
		txs := make([]*Tx, depth)
		for j := 0; j < depth; j++ {
			h := g.Begin(ids[j])
			if j > 0 {
				if _, err := g.Read(h, types.Key(fmt.Sprintf("k%d", j-1))); err != nil {
					b.Fatal(err)
				}
			}
			if err := g.Write(h, types.Key(fmt.Sprintf("k%d", j)), val); err != nil {
				b.Fatal(err)
			}
			txs[j] = h
		}
		// A probe reading across the chain exercises hasPath against
		// every uncommitted writer it walks past.
		p := g.Begin(ids[depth])
		for j := depth - 1; j >= 0; j -= 4 {
			if _, err := g.Read(p, types.Key(fmt.Sprintf("k%d", j))); err != nil {
				b.Fatal(err)
			}
		}
		g.Abort(p)
		for _, h := range txs {
			if err := g.Finish(h); err != nil {
				b.Fatal(err)
			}
			if o := <-h.Done(); !o.Committed {
				b.Fatal("chain tx aborted")
			}
		}
		g.Reset(nil)
	}
}
