// Dependency-layer planning: when a batch's read/write footprints are
// already known (a validator re-checking declared preplay results, or
// an executor retrying transactions whose first attempt discovered
// their sets), the conflict graph can be partitioned up front into
// topologically-sorted conflict-free layers and each layer executed as
// one wave — no per-transaction scheduling, no reachability queries,
// no abort/retry churn (the soyart/depgraph layering idiom).
package depgraph

import (
	"sync"

	"thunderbolt/internal/types"
)

// Access is one transaction's known key footprint.
type Access struct {
	Reads  []types.Key
	Writes []types.Key
}

// keyLevels tracks, per key, the highest layer of any writer and any
// reader placed so far.
type keyLevels struct {
	writer int
	reader int
}

// layerBuilder assigns each transaction, in schedule order, the lowest
// layer consistent with every conflict on an earlier transaction:
// a read must land above the key's last writer (RAW), a write above
// both the last writer (WAW) and every reader since (WAR). Two
// transactions sharing a layer therefore never conflict, and every
// dependency points to a strictly lower layer.
// keyLevels entries live in the map by value — a pointer box per
// touched key was one of the commit path's heaviest allocation sites
// (every block validation plans layers over its whole footprint).
type layerBuilder struct {
	levels  map[types.Key]keyLevels
	layerOf []int
	sizes   []int // per-layer count scratch, reused across plans
	max     int

	cur int // level of the transaction being placed
}

// builderPool recycles layerBuilders (and their maps) across plans;
// validation runs concurrently across replicas in one process.
var builderPool = sync.Pool{New: func() any {
	return &layerBuilder{levels: make(map[types.Key]keyLevels, 64)}
}}

func newLayerBuilder(n int) *layerBuilder {
	b := builderPool.Get().(*layerBuilder)
	b.max = -1
	b.cur = 0
	return b
}

// release returns the builder to the pool. The layerOf slice is kept
// (capacity reused); the returned plan from layers() owns fresh memory.
func (b *layerBuilder) release() {
	clear(b.levels)
	b.layerOf = b.layerOf[:0]
	builderPool.Put(b)
}

// read/write raise the pending transaction's layer for one footprint
// key; place seals the transaction and records its accesses.
func (b *layerBuilder) read(k types.Key) {
	if kl, ok := b.levels[k]; ok && kl.writer >= b.cur {
		b.cur = kl.writer + 1
	}
}

func (b *layerBuilder) write(k types.Key) {
	kl, ok := b.levels[k]
	if !ok {
		return
	}
	if kl.writer >= b.cur {
		b.cur = kl.writer + 1
	}
	if kl.reader >= b.cur {
		b.cur = kl.reader + 1
	}
}

// noteRead/noteWrite record one sealed access at level lvl. They are
// plain methods rather than callback iterators: the closure pair the
// old API allocated per placed transaction showed up in commit-path
// profiles.
func (b *layerBuilder) noteRead(k types.Key, lvl int) {
	kl, ok := b.levels[k]
	if !ok {
		kl = keyLevels{writer: -1, reader: lvl}
		b.levels[k] = kl
	} else if lvl > kl.reader {
		kl.reader = lvl
		b.levels[k] = kl
	}
}

func (b *layerBuilder) noteWrite(k types.Key, lvl int) {
	kl, ok := b.levels[k]
	if !ok {
		kl = keyLevels{writer: lvl, reader: -1}
		b.levels[k] = kl
	} else if lvl > kl.writer {
		kl.writer = lvl
		b.levels[k] = kl
	}
}

// seal finishes the pending transaction: callers record its accesses
// via noteRead/noteWrite at the returned level first.
func (b *layerBuilder) seal() {
	lvl := b.cur
	b.layerOf = append(b.layerOf, lvl)
	if lvl > b.max {
		b.max = lvl
	}
	b.cur = 0
}

func (b *layerBuilder) layers() [][]int {
	if b.max < 0 {
		return nil
	}
	for len(b.sizes) < b.max+1 {
		b.sizes = append(b.sizes, 0)
	}
	sizes := b.sizes[:b.max+1]
	clear(sizes)
	for _, l := range b.layerOf {
		sizes[l]++
	}
	// One backing array for all layers keeps the plan allocation-lean.
	backing := make([]int, len(b.layerOf))
	out := make([][]int, b.max+1)
	off := 0
	for l, sz := range sizes {
		out[l] = backing[off : off : off+sz]
		off += sz
	}
	for i, l := range b.layerOf {
		out[l] = append(out[l], i)
	}
	return out
}

// Layers partitions transactions (given in intended schedule order)
// into conflict-free layers; out[L] lists the indices of layer L in
// ascending order. Within a layer no two transactions conflict on any
// footprint key, and every conflict points from a lower layer to a
// higher one, so executing layer by layer — each layer fully parallel
// — is serializable by construction as long as the footprints are
// accurate. Inaccurate footprints cost retries, never correctness:
// the graph still detects the conflict at runtime.
func Layers(accs []Access) [][]int {
	b := newLayerBuilder(len(accs))
	for i := range accs {
		a := &accs[i]
		for _, k := range a.Reads {
			b.read(k)
		}
		for _, k := range a.Writes {
			b.write(k)
		}
		lvl := b.cur
		for _, k := range a.Reads {
			b.noteRead(k, lvl)
		}
		for _, k := range a.Writes {
			b.noteWrite(k, lvl)
		}
		b.seal()
	}
	out := b.layers()
	b.release()
	return out
}

// LayersOfResults plans conflict-free layers straight from declared
// preplay results (the validator re-check path), without materializing
// intermediate key slices.
func LayersOfResults(results []types.TxResult) [][]int {
	b := newLayerBuilder(len(results))
	for i := range results {
		r := &results[i]
		for j := range r.ReadSet {
			b.read(r.ReadSet[j].Key)
		}
		for j := range r.WriteSet {
			b.write(r.WriteSet[j].Key)
		}
		lvl := b.cur
		for j := range r.ReadSet {
			b.noteRead(r.ReadSet[j].Key, lvl)
		}
		for j := range r.WriteSet {
			b.noteWrite(r.WriteSet[j].Key, lvl)
		}
		b.seal()
	}
	out := b.layers()
	b.release()
	return out
}
