// Dependency-layer planning: when a batch's read/write footprints are
// already known (a validator re-checking declared preplay results, or
// an executor retrying transactions whose first attempt discovered
// their sets), the conflict graph can be partitioned up front into
// topologically-sorted conflict-free layers and each layer executed as
// one wave — no per-transaction scheduling, no reachability queries,
// no abort/retry churn (the soyart/depgraph layering idiom).
package depgraph

import "thunderbolt/internal/types"

// Access is one transaction's known key footprint.
type Access struct {
	Reads  []types.Key
	Writes []types.Key
}

// keyLevels tracks, per key, the highest layer of any writer and any
// reader placed so far.
type keyLevels struct {
	writer int
	reader int
}

// layerBuilder assigns each transaction, in schedule order, the lowest
// layer consistent with every conflict on an earlier transaction:
// a read must land above the key's last writer (RAW), a write above
// both the last writer (WAW) and every reader since (WAR). Two
// transactions sharing a layer therefore never conflict, and every
// dependency points to a strictly lower layer.
type layerBuilder struct {
	levels  map[types.Key]*keyLevels
	layerOf []int
	max     int

	cur int // level of the transaction being placed
}

func newLayerBuilder(n int) *layerBuilder {
	return &layerBuilder{levels: make(map[types.Key]*keyLevels, 2*n), layerOf: make([]int, 0, n), max: -1}
}

func (b *layerBuilder) level(k types.Key) *keyLevels {
	kl, ok := b.levels[k]
	if !ok {
		kl = &keyLevels{writer: -1, reader: -1}
		b.levels[k] = kl
	}
	return kl
}

// read/write raise the pending transaction's layer for one footprint
// key; place seals the transaction and records its accesses.
func (b *layerBuilder) read(k types.Key) {
	if kl, ok := b.levels[k]; ok && kl.writer >= b.cur {
		b.cur = kl.writer + 1
	}
}

func (b *layerBuilder) write(k types.Key) {
	kl, ok := b.levels[k]
	if !ok {
		return
	}
	if kl.writer >= b.cur {
		b.cur = kl.writer + 1
	}
	if kl.reader >= b.cur {
		b.cur = kl.reader + 1
	}
}

func (b *layerBuilder) place(reads, writes func(f func(types.Key))) {
	lvl := b.cur
	reads(func(k types.Key) {
		if kl := b.level(k); lvl > kl.reader {
			kl.reader = lvl
		}
	})
	writes(func(k types.Key) {
		if kl := b.level(k); lvl > kl.writer {
			kl.writer = lvl
		}
	})
	b.layerOf = append(b.layerOf, lvl)
	if lvl > b.max {
		b.max = lvl
	}
	b.cur = 0
}

func (b *layerBuilder) layers() [][]int {
	if b.max < 0 {
		return nil
	}
	sizes := make([]int, b.max+1)
	for _, l := range b.layerOf {
		sizes[l]++
	}
	// One backing array for all layers keeps the plan allocation-lean.
	backing := make([]int, len(b.layerOf))
	out := make([][]int, b.max+1)
	off := 0
	for l, sz := range sizes {
		out[l] = backing[off : off : off+sz]
		off += sz
	}
	for i, l := range b.layerOf {
		out[l] = append(out[l], i)
	}
	return out
}

// Layers partitions transactions (given in intended schedule order)
// into conflict-free layers; out[L] lists the indices of layer L in
// ascending order. Within a layer no two transactions conflict on any
// footprint key, and every conflict points from a lower layer to a
// higher one, so executing layer by layer — each layer fully parallel
// — is serializable by construction as long as the footprints are
// accurate. Inaccurate footprints cost retries, never correctness:
// the graph still detects the conflict at runtime.
func Layers(accs []Access) [][]int {
	b := newLayerBuilder(len(accs))
	for i := range accs {
		a := &accs[i]
		for _, k := range a.Reads {
			b.read(k)
		}
		for _, k := range a.Writes {
			b.write(k)
		}
		b.place(
			func(f func(types.Key)) {
				for _, k := range a.Reads {
					f(k)
				}
			},
			func(f func(types.Key)) {
				for _, k := range a.Writes {
					f(k)
				}
			},
		)
	}
	return b.layers()
}

// LayersOfResults plans conflict-free layers straight from declared
// preplay results (the validator re-check path), without materializing
// intermediate key slices.
func LayersOfResults(results []types.TxResult) [][]int {
	b := newLayerBuilder(len(results))
	for i := range results {
		r := &results[i]
		for j := range r.ReadSet {
			b.read(r.ReadSet[j].Key)
		}
		for j := range r.WriteSet {
			b.write(r.WriteSet[j].Key)
		}
		b.place(
			func(f func(types.Key)) {
				for j := range r.ReadSet {
					f(r.ReadSet[j].Key)
				}
			},
			func(f func(types.Key)) {
				for j := range r.WriteSet {
					f(r.WriteSet[j].Key)
				}
			},
		)
	}
	return b.layers()
}
