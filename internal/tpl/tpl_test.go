package tpl

import (
	"errors"
	"testing"

	"thunderbolt/internal/ce"
	"thunderbolt/internal/contract"
	"thunderbolt/internal/storage"
	"thunderbolt/internal/types"
	"thunderbolt/internal/vm"
	"thunderbolt/internal/workload"
)

type overlayState struct{ o *storage.Overlay }

func (s overlayState) Read(k types.Key) (types.Value, error) {
	v, _ := s.o.Get(k)
	return v, nil
}
func (s overlayState) Write(k types.Key, v types.Value) error {
	s.o.Set(k, v)
	return nil
}

func setup(t *testing.T, accounts int) (*contract.Registry, *storage.Store) {
	t.Helper()
	reg := contract.NewRegistry()
	workload.RegisterSmallBank(reg)
	st := storage.New()
	workload.InitAccounts(st, accounts, 1000, 1000)
	return reg, st
}

func checkSerializable(t *testing.T, reg *contract.Registry, initial map[types.Key]types.Value,
	res *ce.BatchResult, store *storage.Store) {
	t.Helper()
	replay := storage.New()
	for k, v := range initial {
		replay.Set(k, v)
	}
	for i, tx := range res.Schedule {
		o := storage.NewOverlay(replay)
		if err := vm.ExecuteTx(reg, overlayState{o}, tx); err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
		o.Flush()
	}
	for _, k := range store.Keys() {
		got, _ := store.Get(k)
		want, _ := replay.Get(k)
		if !got.Equal(want) {
			t.Fatalf("state divergence at %s: concurrent=%q serial=%q", k, got, want)
		}
	}
}

func TestTPLSerializableUnderContention(t *testing.T) {
	const accounts = 5
	reg, st := setup(t, accounts)
	initial := st.Snapshot()
	p := New(Config{Executors: 8, Registry: reg})
	g := workload.NewGenerator(workload.Config{
		Accounts: accounts, Shards: 1, Theta: 0.9, ReadRatio: 0.2, Seed: 3,
	})
	res := p.ExecuteBatch(st, g.Batch(300))
	if len(res.Schedule)+len(res.Failed) != 300 || len(res.Failed) != 0 {
		t.Fatalf("scheduled=%d failed=%d", len(res.Schedule), len(res.Failed))
	}
	checkSerializable(t, reg, initial, res, st)
	t.Logf("2PL-NoWait re-executions: %d", res.Reexecutions)
}

func TestNoWaitAbortsOnConflict(t *testing.T) {
	reg, st := setup(t, 1)
	p := New(Config{Executors: 1, Registry: reg})
	k := workload.CheckingKey(workload.AccountName(0))

	c1 := p.newCtx(st)
	c2 := p.newCtx(st)
	if err := c1.Write(k, contract.EncodeInt64(1)); err != nil {
		t.Fatal(err)
	}
	// X lock held by c1: reader and writer must abort immediately.
	if _, err := c2.Read(k); !errors.Is(err, contract.ErrAborted) {
		t.Fatalf("reader should no-wait abort: %v", err)
	}
	if err := c2.Write(k, contract.EncodeInt64(2)); !errors.Is(err, contract.ErrAborted) {
		t.Fatalf("writer should no-wait abort: %v", err)
	}
	c1.commit()
	// After commit, the key is free again.
	if _, err := c2.Read(k); err != nil {
		t.Fatalf("post-commit read failed: %v", err)
	}
	c2.abort()
	_ = reg
}

func TestSharedLocksCoexist(t *testing.T) {
	reg, st := setup(t, 1)
	_ = reg
	p := New(Config{Executors: 1, Registry: contract.NewRegistry()})
	k := workload.CheckingKey(workload.AccountName(0))
	c1 := p.newCtx(st)
	c2 := p.newCtx(st)
	if _, err := c1.Read(k); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Read(k); err != nil {
		t.Fatalf("S locks must coexist: %v", err)
	}
	// Writer conflicts with both readers.
	c3 := p.newCtx(st)
	if err := c3.Write(k, types.Value("x")); !errors.Is(err, contract.ErrAborted) {
		t.Fatal("X over S should conflict")
	}
	c1.abort()
	c2.abort()
	if err := c3.Write(k, types.Value("x")); err != nil {
		t.Fatalf("write after release failed: %v", err)
	}
	c3.abort()
}

func TestLockUpgradeSoleReader(t *testing.T) {
	p := New(Config{Executors: 1, Registry: contract.NewRegistry()})
	st := storage.New()
	c1 := p.newCtx(st)
	if _, err := c1.Read("k"); err != nil {
		t.Fatal(err)
	}
	// Sole reader upgrades.
	if err := c1.Write("k", types.Value("v")); err != nil {
		t.Fatalf("sole-reader upgrade failed: %v", err)
	}
	c1.abort()

	// Two readers: upgrade must fail.
	c2 := p.newCtx(st)
	c3 := p.newCtx(st)
	c2.Read("k")
	c3.Read("k")
	if err := c2.Write("k", types.Value("v")); !errors.Is(err, contract.ErrAborted) {
		t.Fatal("upgrade with two readers should conflict")
	}
	c2.abort()
	c3.abort()
}

func TestAbortReleasesEverything(t *testing.T) {
	p := New(Config{Executors: 1, Registry: contract.NewRegistry()})
	st := storage.New()
	c1 := p.newCtx(st)
	c1.Write("a", types.Value("1"))
	c1.Read("b")
	c1.abort()
	if len(p.locks) != 0 {
		t.Fatalf("locks leaked: %v", p.locks)
	}
	// Aborted writes must not reach storage.
	if _, ok := st.Get("a"); ok {
		t.Fatal("aborted write leaked to store")
	}
}

func TestTPLBatchDrivesContention(t *testing.T) {
	reg, st := setup(t, 2)
	p := New(Config{Executors: 8, Registry: reg})
	var txs []*types.Transaction
	for i := 0; i < 200; i++ {
		txs = append(txs, &types.Transaction{
			Client: 1, Nonce: uint64(i + 1), Contract: workload.ContractSendPayment,
			Args: [][]byte{
				[]byte(workload.AccountName(i % 2)),
				[]byte(workload.AccountName((i + 1) % 2)),
				contract.EncodeInt64(1),
			},
		})
	}
	initial := st.Snapshot()
	res := p.ExecuteBatch(st, txs)
	if len(res.Schedule) != 200 {
		t.Fatalf("scheduled %d/200 (failed %d)", len(res.Schedule), len(res.Failed))
	}
	// Conflicts are timing-dependent (locks are held for microseconds),
	// so only report the count; correctness is what we assert.
	t.Logf("2PL re-executions on two-account hotspot: %d", res.Reexecutions)
	checkSerializable(t, reg, initial, res, st)
}
