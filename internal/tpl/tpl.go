// Package tpl implements the 2PL-No-Wait baseline the paper compares
// the Concurrent Executor against (§11.1).
//
// Executors access storage through a central lock controller. A read
// takes a shared lock, a write an exclusive lock; any conflict aborts
// the requesting transaction immediately (no waiting, hence no
// deadlocks), releasing all of its locks before re-execution. On
// completion the write buffer is applied to storage and the locks
// drop.
package tpl

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"thunderbolt/internal/ce"
	"thunderbolt/internal/contract"
	"thunderbolt/internal/storage"
	"thunderbolt/internal/types"
	"thunderbolt/internal/vm"
)

// Config parameterizes the 2PL executor pool.
type Config struct {
	// Executors is the worker-pool size.
	Executors int
	// Registry resolves named contracts.
	Registry *contract.Registry
	// MaxRetries caps re-executions (0 = unbounded).
	MaxRetries int
}

// TPL is the 2PL-No-Wait executor. Like the OCC baseline it commits
// into the store it executes against.
type TPL struct {
	cfg Config

	mu       sync.Mutex
	locks    map[types.Key]*lockState
	schedule int
}

type lockState struct {
	// exclusive holds the owner of an X lock (nil if none).
	exclusive *txCtx
	// shared holds S-lock owners.
	shared map[*txCtx]struct{}
}

// New creates a 2PL-No-Wait executor pool.
func New(cfg Config) *TPL {
	if cfg.Executors <= 0 {
		cfg.Executors = 1
	}
	if cfg.Registry == nil {
		panic("tpl: Registry is required")
	}
	return &TPL{cfg: cfg, locks: make(map[types.Key]*lockState)}
}

// txCtx is one execution attempt holding locks.
type txCtx struct {
	t     *TPL
	store *storage.Store

	held      map[types.Key]bool // key -> exclusive?
	readVals  map[types.Key]types.Value
	readOrder []types.Key

	writes     map[types.Key]types.Value
	writeOrder []types.Key
}

// errLockConflict wraps contract.ErrAborted so that both native
// contracts and the VM classify it as a retryable controller abort
// rather than a terminal contract failure.
var errLockConflict = fmt.Errorf("%w: lock conflict (no-wait)", contract.ErrAborted)

func (t *TPL) newCtx(store *storage.Store) *txCtx {
	return &txCtx{
		t: t, store: store,
		held:     make(map[types.Key]bool),
		readVals: make(map[types.Key]types.Value),
		writes:   make(map[types.Key]types.Value),
	}
}

func (t *TPL) lock(k types.Key) *lockState {
	ls, ok := t.locks[k]
	if !ok {
		ls = &lockState{shared: make(map[*txCtx]struct{})}
		t.locks[k] = ls
	}
	return ls
}

// acquire takes the lock on k in the requested mode or fails
// immediately. Caller holds t.mu.
func (c *txCtx) acquire(k types.Key, exclusive bool) error {
	ls := c.t.lock(k)
	if heldX, ok := c.held[k]; ok {
		if !exclusive || heldX {
			return nil // already sufficient
		}
		// Upgrade S -> X: only if we are the sole reader.
		if ls.exclusive == nil && len(ls.shared) == 1 {
			delete(ls.shared, c)
			ls.exclusive = c
			c.held[k] = true
			return nil
		}
		return errLockConflict
	}
	if exclusive {
		if ls.exclusive != nil || len(ls.shared) > 0 {
			return errLockConflict
		}
		ls.exclusive = c
	} else {
		if ls.exclusive != nil {
			return errLockConflict
		}
		ls.shared[c] = struct{}{}
	}
	c.held[k] = exclusive
	return nil
}

// releaseAll drops every lock held. Caller holds t.mu.
func (c *txCtx) releaseAll() {
	for k := range c.held {
		ls := c.t.locks[k]
		if ls == nil {
			continue
		}
		if ls.exclusive == c {
			ls.exclusive = nil
		}
		delete(ls.shared, c)
		if ls.exclusive == nil && len(ls.shared) == 0 {
			delete(c.t.locks, k)
		}
	}
	c.held = make(map[types.Key]bool)
}

// Read implements contract.State under an S lock.
func (c *txCtx) Read(k types.Key) (types.Value, error) {
	if v, ok := c.writes[k]; ok {
		return v.Clone(), nil
	}
	if v, ok := c.readVals[k]; ok {
		return v.Clone(), nil
	}
	c.t.mu.Lock()
	err := c.acquire(k, false)
	c.t.mu.Unlock()
	if err != nil {
		return nil, err
	}
	v, _ := c.store.Get(k)
	c.readVals[k] = v.Clone()
	c.readOrder = append(c.readOrder, k)
	return v.Clone(), nil
}

// Write implements contract.State under an X lock, buffering the
// value until commit.
func (c *txCtx) Write(k types.Key, v types.Value) error {
	c.t.mu.Lock()
	err := c.acquire(k, true)
	c.t.mu.Unlock()
	if err != nil {
		return err
	}
	if _, ok := c.writes[k]; !ok {
		c.writeOrder = append(c.writeOrder, k)
	}
	c.writes[k] = v.Clone()
	return nil
}

// commit applies the write buffer and releases all locks.
func (c *txCtx) commit() int {
	recs := make([]types.RWRecord, 0, len(c.writeOrder))
	for _, k := range c.writeOrder {
		recs = append(recs, types.RWRecord{Key: k, Value: c.writes[k]})
	}
	c.t.mu.Lock()
	defer c.t.mu.Unlock()
	c.store.Apply(recs)
	idx := c.t.schedule
	c.t.schedule++
	c.releaseAll()
	return idx
}

// abort releases all locks without applying anything.
func (c *txCtx) abort() {
	c.t.mu.Lock()
	c.releaseAll()
	c.t.mu.Unlock()
}

// ExecuteBatch runs txs to completion against store, which it
// mutates. The result shape matches the Concurrent Executor's.
func (t *TPL) ExecuteBatch(store *storage.Store, txs []*types.Transaction) *ce.BatchResult {
	type committed struct {
		tx  *types.Transaction
		res types.TxResult
	}
	var (
		mu     sync.Mutex
		done   []committed
		failed []ce.FailedTx
		rexec  uint64
	)
	ch := make(chan *types.Transaction)
	var wg sync.WaitGroup
	for w := 0; w < t.cfg.Executors; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tx := range ch {
				res, ferr, retries := t.runOne(store, tx)
				mu.Lock()
				rexec += uint64(retries)
				if ferr != nil {
					failed = append(failed, ce.FailedTx{Tx: tx, Err: ferr})
				} else {
					done = append(done, committed{tx: tx, res: res})
				}
				mu.Unlock()
			}
		}()
	}
	for _, tx := range txs {
		ch <- tx
	}
	close(ch)
	wg.Wait()

	sort.Slice(done, func(i, j int) bool {
		return done[i].res.ScheduleIdx < done[j].res.ScheduleIdx
	})
	out := &ce.BatchResult{Failed: failed, Reexecutions: rexec}
	for _, c := range done {
		out.Schedule = append(out.Schedule, c.tx)
		out.Results = append(out.Results, c.res)
	}
	return out
}

func (t *TPL) runOne(store *storage.Store, tx *types.Transaction) (types.TxResult, error, int) {
	id := tx.ID()
	retries := 0
	for {
		c := t.newCtx(store)
		err := vm.ExecuteTx(t.cfg.Registry, c, tx)
		if err != nil {
			c.abort()
			if errors.Is(err, contract.ErrAborted) {
				retries++
				if t.cfg.MaxRetries > 0 && retries >= t.cfg.MaxRetries {
					return types.TxResult{}, err, retries
				}
				continue
			}
			return types.TxResult{}, err, retries
		}
		idx := c.commit()
		res := types.TxResult{TxID: id, ScheduleIdx: uint32(idx), Reexecutions: uint32(retries)}
		for _, k := range c.readOrder {
			res.ReadSet = append(res.ReadSet, types.RWRecord{Key: k, Value: c.readVals[k]})
		}
		for _, k := range c.writeOrder {
			res.WriteSet = append(res.WriteSet, types.RWRecord{Key: k, Value: c.writes[k]})
		}
		return res, nil, retries
	}
}
