// Package gateway is the client-facing submission subsystem: the
// bounded dedup state the commit path consults (per-client
// applied-nonce floors with an out-of-order window, plus a bounded
// digest ring for nonce-less legacy transactions), the wire protocol
// a remote client speaks to a shard proposer (submit / ack / nack /
// committed over the existing transport framing), and a client
// library that routes, retries on nack, fails over across proposers,
// and waits for commits.
//
// The dedup state replaces the node's grow-forever applied map: where
// the old map held one digest per transaction ever resolved, the new
// state holds one floor and one fixed-size bitmap per client session
// — memory and snapshot size are bounded by clients × window for the
// life of the process. The contract that buys that bound is the
// session discipline: a client assigns its transactions strictly
// increasing nonces starting at 1, keeps at most window nonces
// outstanding, and never reuses a (client, nonce) pair for different
// content. A nonce at or below the floor is definitionally resolved —
// resubmitting it yields an ack referencing the original commit, and
// it can never be admitted (or committed) again.
package gateway

import (
	"sort"

	"thunderbolt/internal/types"
)

const (
	// DefaultNonceWindow is the per-client out-of-order window: how
	// many nonces above the applied floor are tracked individually. It
	// bounds a client's in-flight pipeline; a submission more than a
	// window ahead of the floor is nacked to back off.
	DefaultNonceWindow = 1024
	// DefaultLegacyWindow is the capacity of the digest ring that
	// deduplicates nonce-less transactions. Under sessioned traffic
	// the ring stays empty; it exists so legacy clients keep working
	// with bounded (rather than unbounded) dedup history.
	DefaultLegacyWindow = 1 << 16
)

// Sessioned reports whether tx carries a dedup session identity.
// Nonce-less (or client-less) transactions fall back to the bounded
// digest window.
func Sessioned(tx *types.Transaction) bool {
	return tx.Client != 0 && tx.Nonce != 0
}

// Admission classifies a submission against the dedup state.
type Admission int

const (
	// AdmitNew: unresolved and inside the window — enqueue it.
	AdmitNew Admission = iota
	// AdmitResolved: already resolved (committed or deterministically
	// failed) — ack as a duplicate, never re-enqueue.
	AdmitResolved
	// AdmitFuture: sessioned nonce more than a window ahead of the
	// client's floor — nack so the client backs off; admitting it
	// would let one client grow server state past the bound.
	AdmitFuture
)

// Dedup is the bounded resolved-transaction state. It is owned by the
// node's event loop (not safe for concurrent use) and, critically,
// mutated only on the deterministic commit path: every replica marks
// the same transactions in the same committed order, so the state —
// floors, bitmaps, ring contents, eviction order — is bit-identical
// across honest replicas at equal commit positions. That determinism
// is what lets epoch-transition snapshots carry it verbatim.
type Dedup struct {
	window    uint64
	legacyCap int

	clients map[uint64]*nonceWindow

	// legacy digest ring: ring[(start+i) % cap] for i in [0, n) walks
	// oldest → newest.
	ring      []types.Digest
	ringStart int
	ringN     int
	ringSet   map[types.Digest]struct{}
}

type nonceWindow struct {
	floor uint64
	bits  []uint64 // window/64 words; nonce n maps to bit n % window
	// Idle-session bookkeeping (ExpireIdle): lastFloor is the floor
	// observed at the previous expiry sweep, idle counts consecutive
	// sweeps with no sign of life, and active records any Mark since
	// the previous sweep — a session committing out-of-order nonces
	// above a permanent hole never moves its floor but is very much
	// alive, and expiring it would re-admit its committed nonces.
	// Mutated only on the commit path (Mark) and at deterministic
	// epoch transitions (ExpireIdle), so it is part of the
	// bit-identical dedup state.
	lastFloor uint64
	idle      uint32
	active    bool
}

// NewDedup builds an empty dedup state. window is rounded up to a
// multiple of 64 (0 selects DefaultNonceWindow); legacyCap ≤ 0 selects
// DefaultLegacyWindow. Both are part of the committee contract: every
// replica must configure the same values or dedup state diverges.
func NewDedup(window, legacyCap int) *Dedup {
	if window <= 0 {
		window = DefaultNonceWindow
	}
	if window%64 != 0 {
		window += 64 - window%64
	}
	if legacyCap <= 0 {
		legacyCap = DefaultLegacyWindow
	}
	return &Dedup{
		window:    uint64(window),
		legacyCap: legacyCap,
		clients:   make(map[uint64]*nonceWindow),
		ring:      make([]types.Digest, 0, min(legacyCap, 4096)),
		ringSet:   make(map[types.Digest]struct{}),
	}
}

// Window returns the per-client nonce window size.
func (d *Dedup) Window() int { return int(d.window) }

// LegacyCap returns the legacy digest-window capacity.
func (d *Dedup) LegacyCap() int { return d.legacyCap }

// Clients returns the number of client sessions tracked.
func (d *Dedup) Clients() int { return len(d.clients) }

// LegacyLen returns the legacy digest window's current population.
func (d *Dedup) LegacyLen() int { return d.ringN }

// Admit classifies a submission without mutating anything; admission
// never writes, because admission is a per-replica race while dedup
// state must evolve only in committed order.
func (d *Dedup) Admit(tx *types.Transaction) Admission {
	if !Sessioned(tx) {
		if _, ok := d.ringSet[tx.ID()]; ok {
			return AdmitResolved
		}
		return AdmitNew
	}
	w := d.clients[tx.Client]
	var floor uint64
	if w != nil {
		floor = w.floor
	}
	switch {
	case tx.Nonce <= floor:
		return AdmitResolved
	case tx.Nonce > floor+d.window:
		return AdmitFuture
	case w != nil && w.getBit(tx.Nonce, d.window):
		return AdmitResolved
	default:
		return AdmitNew
	}
}

// Resolved reports whether tx has been resolved (committed or
// deterministically failed). The commit path's dedup check.
func (d *Dedup) Resolved(tx *types.Transaction) bool {
	return d.Admit(tx) == AdmitResolved
}

// Mark resolves tx. Must be called only from the deterministic commit
// path (commit, or deterministic execution failure), in committed
// order. A sessioned nonce more than a window above the floor forces
// the floor forward — nonces evicted unresolved lose dedup protection,
// which is the documented bounded-window contract (it cannot happen to
// a client admitted through Admit, whose floor only rises after
// admission).
func (d *Dedup) Mark(tx *types.Transaction) {
	if !Sessioned(tx) {
		d.markLegacy(tx.ID())
		return
	}
	d.MarkSession(tx.Client, tx.Nonce)
}

// MarkSession resolves one sessioned (client, nonce) identity
// directly — the WAL recovery replay's form of Mark. Same discipline:
// committed order only.
func (d *Dedup) MarkSession(client, nonce uint64) {
	w := d.clients[client]
	if w == nil {
		w = &nonceWindow{bits: make([]uint64, d.window/64)}
		d.clients[client] = w
	}
	w.active = true
	w.mark(nonce, d.window)
}

// MarkDigest resolves one nonce-less identity directly (WAL recovery
// replay).
func (d *Dedup) MarkDigest(id types.Digest) { d.markLegacy(id) }

func (d *Dedup) markLegacy(id types.Digest) {
	if _, ok := d.ringSet[id]; ok {
		return
	}
	if d.ringN < d.legacyCap {
		// Filling: the buffer only grows while start is 0, so oldest →
		// newest is a plain prefix walk.
		d.ring = append(d.ring, id)
		d.ringN++
	} else {
		// Full: evict the oldest resolved digest — it leaves the dedup
		// window and a resubmission of it would be admitted again.
		delete(d.ringSet, d.ring[d.ringStart])
		d.ring[d.ringStart] = id
		d.ringStart = (d.ringStart + 1) % d.legacyCap
	}
	d.ringSet[id] = struct{}{}
}

func (w *nonceWindow) getBit(n, window uint64) bool {
	p := n % window
	return w.bits[p/64]&(1<<(p%64)) != 0
}

func (w *nonceWindow) setBit(n, window uint64) {
	p := n % window
	w.bits[p/64] |= 1 << (p % 64)
}

func (w *nonceWindow) clearBit(n, window uint64) {
	p := n % window
	w.bits[p/64] &^= 1 << (p % 64)
}

func (w *nonceWindow) mark(n, window uint64) {
	if n <= w.floor {
		return
	}
	if n > w.floor+window {
		// Forced eviction: advance the floor so n fits the window.
		nf := n - window
		if nf-w.floor >= window {
			for i := range w.bits {
				w.bits[i] = 0
			}
		} else {
			for m := w.floor + 1; m <= nf; m++ {
				w.clearBit(m, window)
			}
		}
		w.floor = nf
	}
	w.setBit(n, window)
	// Contiguous resolution advances the floor; each bit that slides
	// below the floor is cleared because its position will be reused
	// by nonce floor+window later.
	for w.getBit(w.floor+1, window) {
		w.clearBit(w.floor+1, window)
		w.floor++
	}
}

// ExpireIdle runs one idle-session sweep: a session showing no sign
// of life — no floor movement and no Mark at all — since the previous
// sweep accumulates idleness, and one idle for at least `epochs`
// consecutive sweeps is dropped — its memory (and snapshot footprint)
// is reclaimed, at the documented cost that the dropped session loses
// dedup protection (a very late resubmission of its old nonces would
// be admitted as new, exactly like a digest evicted from the legacy
// ring). Must be called only on the deterministic commit path, at
// epoch transitions, so every honest replica sweeps the same sessions
// in the same committed state; epochs <= 0 disables the sweep.
// Dropped client IDs return in ascending order.
func (d *Dedup) ExpireIdle(epochs int) []uint64 {
	if epochs <= 0 {
		return nil
	}
	var dropped []uint64
	for c, w := range d.clients {
		if w.floor == w.lastFloor && !w.active {
			w.idle++
			if int(w.idle) >= epochs {
				delete(d.clients, c)
				dropped = append(dropped, c)
			}
		} else {
			w.lastFloor = w.floor
			w.idle = 0
		}
		w.active = false
	}
	sort.Slice(dropped, func(i, j int) bool { return dropped[i] < dropped[j] })
	return dropped
}

// Sessions exports the per-client state in canonical (strictly
// ascending client) order for snapshot capture. Bitmaps are copied.
// Snapshots are captured at epoch transitions immediately after the
// idle sweep, where lastFloor == floor by construction, so the idle
// counter is the only sweep state a snapshot needs to carry.
func (d *Dedup) Sessions() []types.ClientSession {
	out := make([]types.ClientSession, 0, len(d.clients))
	for c, w := range d.clients {
		out = append(out, types.ClientSession{
			Client: c,
			Floor:  w.floor,
			Idle:   w.idle,
			Bits:   append([]uint64(nil), w.bits...),
		})
	}
	sortSessions(out)
	return out
}

// Legacy exports the legacy digest window, oldest first, for snapshot
// capture.
func (d *Dedup) Legacy() []types.Digest {
	out := make([]types.Digest, 0, d.ringN)
	for i := 0; i < d.ringN; i++ {
		out = append(out, d.ring[(d.ringStart+i)%len(d.ring)])
	}
	return out
}

// Restore replaces the dedup state with a snapshot's, verbatim. The
// installer's own resolved set is always a prefix of the snapshot's
// (commit sequences are prefix-consistent and the snapshot sits at a
// later position), so taking the snapshot state loses nothing — and
// taking it verbatim, rather than merging, is what keeps the
// installer's next capture bit-identical to honest peers'.
func (d *Dedup) Restore(sessions []types.ClientSession, legacy []types.Digest) {
	d.clients = make(map[uint64]*nonceWindow, len(sessions))
	words := int(d.window / 64)
	for _, cs := range sessions {
		bits := make([]uint64, words)
		copy(bits, cs.Bits)
		// Snapshots are cut right after the transition's idle sweep,
		// where lastFloor == floor on every honest replica.
		d.clients[cs.Client] = &nonceWindow{
			floor: cs.Floor, bits: bits,
			lastFloor: cs.Floor, idle: cs.Idle,
		}
	}
	d.ring = d.ring[:0]
	d.ringStart = 0
	d.ringN = 0
	d.ringSet = make(map[types.Digest]struct{}, len(legacy))
	for _, id := range legacy {
		d.markLegacy(id)
	}
}

func sortSessions(ss []types.ClientSession) {
	sort.Slice(ss, func(i, j int) bool { return ss[i].Client < ss[j].Client })
}

// EncodeState appends the complete dedup state to e — the durable
// backend's recovery sidecar. Unlike Sessions/Legacy (the snapshot
// form, valid only at transition boundaries), this is full fidelity:
// it includes the idle sweep's lastFloor, so a checkpoint cut at an
// arbitrary mid-epoch position restores byte-exact sweep behaviour.
// Sessions encode in ascending client order (deterministic bytes).
func (d *Dedup) EncodeState(e *types.Encoder) {
	clients := make([]uint64, 0, len(d.clients))
	for c := range d.clients {
		clients = append(clients, c)
	}
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	e.U32(uint32(len(clients)))
	for _, c := range clients {
		w := d.clients[c]
		e.U64(c)
		e.U64(w.floor)
		e.U64(w.lastFloor)
		e.U32(w.idle)
		if w.active {
			e.U8(1)
		} else {
			e.U8(0)
		}
		for _, word := range w.bits {
			e.U64(word)
		}
	}
	e.U32(uint32(d.ringN))
	for i := 0; i < d.ringN; i++ {
		e.Digest(d.ring[(d.ringStart+i)%len(d.ring)])
	}
}

// DecodeState replaces the dedup state with one written by
// EncodeState under the same window configuration.
func (d *Dedup) DecodeState(dec *types.Decoder) error {
	words := int(d.window / 64)
	nc := dec.U32()
	clients := make(map[uint64]*nonceWindow, nc)
	for i := uint32(0); i < nc && dec.Err() == nil; i++ {
		w := &nonceWindow{bits: make([]uint64, words)}
		c := dec.U64()
		w.floor = dec.U64()
		w.lastFloor = dec.U64()
		w.idle = dec.U32()
		w.active = dec.U8() == 1
		for j := 0; j < words; j++ {
			w.bits[j] = dec.U64()
		}
		clients[c] = w
	}
	na := dec.U32()
	legacy := make([]types.Digest, 0, na)
	for i := uint32(0); i < na && dec.Err() == nil; i++ {
		legacy = append(legacy, dec.Digest())
	}
	if err := dec.Err(); err != nil {
		return err
	}
	d.clients = clients
	d.ring = d.ring[:0]
	d.ringStart, d.ringN = 0, 0
	d.ringSet = make(map[types.Digest]struct{}, len(legacy))
	for _, id := range legacy {
		d.markLegacy(id)
	}
	return nil
}
