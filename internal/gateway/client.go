package gateway

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"thunderbolt/internal/transport"
	"thunderbolt/internal/types"
)

// ClientIDBase is the conventional first wire ID for gateway clients
// over TCP transports: committee replicas occupy [0, n), and a client
// choosing an ID at or above this base can never collide with one. On
// a simulated network clients use the endpoint IDs the testbed
// reserved for them (any ID ≥ n works — replicas only care that it is
// not a committee member's).
const ClientIDBase = 1 << 16

// ClientConfig assembles a gateway client.
type ClientConfig struct {
	// Transport is the client's endpoint: a TCPTransport whose Self is
	// a unique non-committee ID (≥ ClientIDBase by convention) and
	// whose peer book lists the committee, or a reserved SimNetwork
	// endpoint. The client installs its own handler.
	Transport transport.Transport
	// N is the committee size (= shard count).
	N int
	// Session is the dedup session identity stamped on minted
	// transactions. Sessions must be unique per client lifetime and
	// their nonces start at 1: a client that loses its nonce counter
	// opens a fresh session rather than guessing.
	Session uint64
	// AckTimeout bounds one submission attempt: if no ack, nack, or
	// commit arrives, the client fails over to the next replica
	// (default 500ms).
	AckTimeout time.Duration
	// RetryEvery re-sends an accepted-but-uncommitted submission
	// (losses, proposer restarts); default 250ms.
	RetryEvery time.Duration
	// Backoff is the wait after an out-of-window nack (default 20ms).
	Backoff time.Duration
}

// ErrWindowStalled reports that a session's dedup window has stopped
// moving: the committee keeps answering NackOutOfWindow, which means
// an earlier nonce was submitted and then abandoned, leaving a hole
// below the floor can never cross. The session is wedged by contract
// (at most a window of nonces may be outstanding); the caller should
// resubmit the abandoned transactions or open a fresh session.
var ErrWindowStalled = errors.New("gateway: session nonce window stalled — resubmit abandoned transactions or open a fresh session")

// windowStallNacks is how many consecutive out-of-window nacks
// SubmitWait tolerates (each separated by a backoff, giving earlier
// nonces time to resolve) before declaring the session stalled.
const windowStallNacks = 8

// Result reports how a submission resolved.
type Result struct {
	TxID types.Digest
	// Duplicate is true when the commit was observed via an
	// AckResolved duplicate answer — the transaction had already been
	// resolved by an earlier submission (the ack references that
	// original resolution).
	Duplicate bool
	// Reroutes counts misroute/epoch-ended nacks followed, Failovers
	// counts silent-proposer timeouts worked around.
	Reroutes  int
	Failovers int
}

// Client is the gateway client library: it mints sessioned
// transactions, routes each to the proposer serving its shard, and
// runs the full retry discipline — re-route on nack, back off on
// window pressure, fail over past silent proposers, retransmit until
// commit. Safe for concurrent use by multiple goroutines.
type Client struct {
	cfg ClientConfig

	nonce atomic.Uint64
	epoch atomic.Uint64 // best-known committee epoch

	mu      sync.Mutex
	waiters map[types.Digest]chan wireEvent

	// sendMu serializes wire writes: concurrent SubmitWait calls over
	// a TCP transport share one dialed connection per proposer, and
	// interleaved frame writes would corrupt the stream.
	sendMu sync.Mutex

	closeOnce sync.Once
	closed    chan struct{}
}

type wireEvent struct {
	kind transport.MsgType
	ack  Ack
	nack Nack
}

// NewClient builds a client over tr and installs its message handler.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Transport == nil {
		return nil, errors.New("gateway: transport required")
	}
	if cfg.N < 1 {
		return nil, errors.New("gateway: committee size required")
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 500 * time.Millisecond
	}
	if cfg.RetryEvery <= 0 {
		cfg.RetryEvery = 250 * time.Millisecond
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 20 * time.Millisecond
	}
	c := &Client{
		cfg:     cfg,
		waiters: make(map[types.Digest]chan wireEvent),
		closed:  make(chan struct{}),
	}
	cfg.Transport.SetHandler(c.handle)
	return c, nil
}

// Close releases waiters; the transport is the caller's to close.
func (c *Client) Close() {
	c.closeOnce.Do(func() { close(c.closed) })
}

// Session returns the configured session identity.
func (c *Client) Session() uint64 { return c.cfg.Session }

// Mint stamps tx with this client's session identity and the next
// nonce. Transactions already carrying a session are left alone.
func (c *Client) Mint(tx *types.Transaction) *types.Transaction {
	if tx.Client == 0 {
		tx.Client = c.cfg.Session
	}
	if tx.Nonce == 0 {
		tx.Nonce = c.nonce.Add(1)
	}
	return tx
}

// handle demultiplexes gateway replies to the waiting submission.
func (c *Client) handle(_ types.ReplicaID, mt transport.MsgType, payload []byte) {
	var (
		id types.Digest
		ev wireEvent
	)
	switch mt {
	case MsgTxAck:
		if ev.ack.Unmarshal(payload) != nil {
			return
		}
		id = ev.ack.TxID
		c.noteEpoch(ev.ack.Epoch)
	case MsgTxNack:
		if ev.nack.Unmarshal(payload) != nil {
			return
		}
		id = ev.nack.TxID
		c.noteEpoch(ev.nack.Epoch)
	case MsgTxCommitted:
		var cm Committed
		if cm.Unmarshal(payload) != nil {
			return
		}
		id = cm.TxID
		c.noteEpoch(cm.Epoch)
	default:
		return
	}
	ev.kind = mt
	c.mu.Lock()
	ch := c.waiters[id]
	c.mu.Unlock()
	if ch != nil {
		select {
		case ch <- ev:
		default: // waiter backlogged; retransmission will re-answer
		}
	}
}

func (c *Client) noteEpoch(e types.Epoch) {
	for {
		cur := c.epoch.Load()
		if uint64(e) <= cur || c.epoch.CompareAndSwap(cur, uint64(e)) {
			return
		}
	}
}

// route returns the replica serving tx's (first) shard under the
// client's best-known epoch.
func (c *Client) route(tx *types.Transaction) types.ReplicaID {
	shard := types.ShardID(0)
	if len(tx.Shards) > 0 {
		shard = tx.Shards[0]
	}
	return ProposerOfShard(shard, types.Epoch(c.epoch.Load()), c.cfg.N)
}

func (c *Client) send(to types.ReplicaID, tx *types.Transaction) {
	b, err := tx.MarshalBinary()
	if err != nil {
		return
	}
	c.sendMu.Lock()
	_ = c.cfg.Transport.Send(to, MsgTxSubmit, b)
	c.sendMu.Unlock()
}

// Submit mints (if needed) and fire-and-forgets one transaction to
// the proposer serving its shard.
func (c *Client) Submit(tx *types.Transaction) {
	c.Mint(tx)
	if tx.SubmitUnixNano == 0 {
		tx.SubmitUnixNano = time.Now().UnixNano()
	}
	c.send(c.route(tx), tx)
}

// SubmitWait submits tx and blocks until it commits (directly, or as
// a duplicate of an earlier resolution), following nack re-route
// hints, backing off on window pressure, and failing over to the next
// replica when a proposer stays silent past AckTimeout — the retry
// discipline that lets a remote client ride out a proposer crash: the
// silent proposer times out, the next replica answers with a misroute
// nack naming the shard's owner (or a reconfiguration rotates the
// shard to a live one), and the resubmission lands.
//
// A transaction the caller gives up on (timeout, ErrWindowStalled)
// leaves a hole in the session's nonce window; once the session is a
// full window past the hole, further submissions stall with
// ErrWindowStalled until the hole is resubmitted or the caller opens
// a fresh session.
func (c *Client) SubmitWait(tx *types.Transaction, timeout time.Duration) (Result, error) {
	c.Mint(tx)
	if tx.SubmitUnixNano == 0 {
		tx.SubmitUnixNano = time.Now().UnixNano()
	}
	id := tx.ID()
	res := Result{TxID: id}

	ch := make(chan wireEvent, 8)
	c.mu.Lock()
	if _, dup := c.waiters[id]; dup {
		c.mu.Unlock()
		return res, fmt.Errorf("gateway: submission already in flight for %s", id)
	}
	c.waiters[id] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.waiters, id)
		c.mu.Unlock()
	}()

	deadline := time.Now().Add(timeout)
	target := c.route(tx)
	c.send(target, tx)
	accepted := false
	attemptAt := time.Now()
	outOfWindow := 0
	// One reused timer across wait quanta (stopped-and-drained before
	// each Reset); a fresh NewTimer per quantum was a steady
	// per-transaction allocation at load.
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		// One wait quantum: the failover timer while unacknowledged,
		// the retransmit timer once accepted.
		quantum := c.cfg.AckTimeout
		if accepted {
			quantum = c.cfg.RetryEvery
		}
		if rem := time.Until(deadline); rem <= 0 {
			return res, fmt.Errorf("gateway: tx %s not committed within %v", id, timeout)
		} else if quantum > rem {
			quantum = rem
		}
		if timer == nil {
			timer = time.NewTimer(quantum)
		} else {
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(quantum)
		}
		select {
		case ev := <-ch:
			switch ev.kind {
			case MsgTxCommitted:
				return res, nil
			case MsgTxAck:
				switch ev.ack.Status {
				case AckResolved:
					res.Duplicate = true
					return res, nil
				case AckAccepted:
					accepted = true
					outOfWindow = 0
					target = ev.ack.Proposer
				}
			case MsgTxNack:
				accepted = false
				switch ev.nack.Reason {
				case NackMisroute, NackEpochEnded:
					res.Reroutes++
					outOfWindow = 0
					target = ev.nack.Proposer
					c.send(target, tx)
					attemptAt = time.Now()
				case NackOutOfWindow:
					if outOfWindow++; outOfWindow >= windowStallNacks {
						return res, ErrWindowStalled
					}
					time.Sleep(c.cfg.Backoff)
					c.send(target, tx)
					attemptAt = time.Now()
				}
			}
		case <-timer.C:
			if accepted {
				// Accepted but not yet committed: retransmit to the
				// current route (the dedup window absorbs duplicates;
				// a live proposer re-answers with a fresh ack). Demand
				// that fresh ack by dropping back to unaccepted — if
				// the proposer died after acking, silence now leads to
				// the failover branch instead of retransmitting at a
				// dead socket until the deadline.
				accepted = false
				c.send(c.route(tx), tx)
				attemptAt = time.Now()
				continue
			}
			// No answer at all: the proposer is down or unreachable.
			// Fail over to the next replica; a wrong guess costs one
			// misroute nack that carries the right route.
			if time.Since(attemptAt) >= c.cfg.AckTimeout {
				res.Failovers++
				target = types.ReplicaID((uint64(target) + 1) % uint64(c.cfg.N))
				c.send(target, tx)
				attemptAt = time.Now()
			}
		case <-c.closed:
			return res, errors.New("gateway: client closed")
		}
	}
}
