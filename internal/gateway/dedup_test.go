package gateway

import (
	"fmt"
	"testing"

	"thunderbolt/internal/types"
)

func stx(client, nonce uint64) *types.Transaction {
	return &types.Transaction{
		Client: client, Nonce: nonce,
		Kind: types.SingleShard, Shards: []types.ShardID{0},
		Contract: "t", Args: [][]byte{[]byte(fmt.Sprintf("%d/%d", client, nonce))},
	}
}

func ltx(tag string) *types.Transaction {
	return &types.Transaction{
		Kind: types.SingleShard, Shards: []types.ShardID{0},
		Contract: "t", Args: [][]byte{[]byte(tag)},
	}
}

func TestDedupFloorAdvance(t *testing.T) {
	d := NewDedup(64, 0)
	for n := uint64(1); n <= 200; n++ {
		if d.Resolved(stx(1, n)) {
			t.Fatalf("nonce %d resolved before mark", n)
		}
		d.Mark(stx(1, n))
		if !d.Resolved(stx(1, n)) {
			t.Fatalf("nonce %d unresolved after mark", n)
		}
	}
	// Everything marked in order: floor should have swallowed all of
	// it — any nonce ≤ 200 resolved, 201 admissible, 201+64 not.
	if got := d.Admit(stx(1, 200)); got != AdmitResolved {
		t.Fatalf("below-floor resubmit: got %v, want resolved", got)
	}
	if got := d.Admit(stx(1, 201)); got != AdmitNew {
		t.Fatalf("next nonce: got %v, want new", got)
	}
	if got := d.Admit(stx(1, 200+65)); got != AdmitFuture {
		t.Fatalf("out-of-window nonce: got %v, want future", got)
	}
}

func TestDedupOutOfOrderWindow(t *testing.T) {
	d := NewDedup(64, 0)
	// Resolve out of order: 3, 5, then 1, 2 — floor trails the gap at
	// 4 and jumps when it fills.
	for _, n := range []uint64{3, 5, 1, 2} {
		d.Mark(stx(1, n))
	}
	for _, want := range []struct {
		n  uint64
		ok bool
	}{{1, true}, {2, true}, {3, true}, {4, false}, {5, true}, {6, false}} {
		if got := d.Resolved(stx(1, want.n)); got != want.ok {
			t.Fatalf("nonce %d resolved=%v, want %v", want.n, got, want.ok)
		}
	}
	d.Mark(stx(1, 4))
	// Gap filled: floor jumps over 5; bit positions below must have
	// been cleared for reuse by nonces one window later.
	if got := d.Admit(stx(1, 5)); got != AdmitResolved {
		t.Fatalf("nonce 5 after floor jump: got %v, want resolved", got)
	}
	if got := d.Admit(stx(1, 5+64)); got != AdmitNew {
		t.Fatalf("reused bit position must read unresolved: got %v, want new", got)
	}
}

func TestDedupForcedEviction(t *testing.T) {
	d := NewDedup(64, 0)
	d.Mark(stx(1, 1))
	// A commit far beyond the window (only reachable through a path
	// that bypassed admission) forces the floor forward
	// deterministically: nonces evicted unresolved lose dedup
	// protection — the documented bounded-window contract.
	d.Mark(stx(1, 1000))
	if !d.Resolved(stx(1, 900)) {
		t.Fatal("nonce at forced floor should read resolved")
	}
	if got := d.Admit(stx(1, 937)); got != AdmitNew {
		t.Fatalf("in-window unresolved nonce after forced advance: got %v, want new", got)
	}
	if !d.Resolved(stx(1, 1000)) {
		t.Fatal("the forcing nonce itself must be resolved")
	}
}

func TestDedupLegacyRing(t *testing.T) {
	d := NewDedup(64, 4)
	txs := make([]*types.Transaction, 6)
	for i := range txs {
		txs[i] = ltx(fmt.Sprintf("t%d", i))
		d.Mark(txs[i])
	}
	// Capacity 4: t0 and t1 evicted, t2..t5 retained.
	for i, tx := range txs {
		want := i >= 2
		if got := d.Resolved(tx); got != want {
			t.Fatalf("legacy tx %d resolved=%v, want %v", i, got, want)
		}
	}
	leg := d.Legacy()
	if len(leg) != 4 {
		t.Fatalf("legacy window holds %d, want 4", len(leg))
	}
	for i, id := range leg {
		if id != txs[i+2].ID() {
			t.Fatalf("legacy ring order broken at %d", i)
		}
	}
}

// TestDedupDeterministicState pins the property everything else rests
// on: two replicas marking the same sequence hold byte-identical
// exported state, and a third restoring that export then marking the
// same continuation stays identical too (the snapshot epoch-jump
// path).
func TestDedupDeterministicState(t *testing.T) {
	a, b := NewDedup(128, 8), NewDedup(128, 8)
	seq := []*types.Transaction{
		stx(1, 1), stx(2, 1), stx(1, 3), ltx("x"), stx(2, 2), stx(1, 2),
		ltx("y"), stx(7, 1), ltx("z"), stx(7, 130),
	}
	for _, tx := range seq {
		a.Mark(tx)
		b.Mark(tx)
	}
	sameState := func(x, y *Dedup) error {
		xs, ys := x.Sessions(), y.Sessions()
		if len(xs) != len(ys) {
			return fmt.Errorf("session counts %d vs %d", len(xs), len(ys))
		}
		for i := range xs {
			if xs[i].Client != ys[i].Client || xs[i].Floor != ys[i].Floor {
				return fmt.Errorf("session %d header mismatch", i)
			}
			for j := range xs[i].Bits {
				if xs[i].Bits[j] != ys[i].Bits[j] {
					return fmt.Errorf("session %d bits mismatch", i)
				}
			}
		}
		xl, yl := x.Legacy(), y.Legacy()
		if len(xl) != len(yl) {
			return fmt.Errorf("legacy lengths %d vs %d", len(xl), len(yl))
		}
		for i := range xl {
			if xl[i] != yl[i] {
				return fmt.Errorf("legacy order mismatch at %d", i)
			}
		}
		return nil
	}
	if err := sameState(a, b); err != nil {
		t.Fatalf("identical histories, divergent state: %v", err)
	}
	c := NewDedup(128, 8)
	c.Restore(a.Sessions(), a.Legacy())
	if err := sameState(a, c); err != nil {
		t.Fatalf("restore not verbatim: %v", err)
	}
	cont := []*types.Transaction{stx(1, 4), ltx("w"), stx(9, 1)}
	for _, tx := range cont {
		a.Mark(tx)
		c.Mark(tx)
	}
	if err := sameState(a, c); err != nil {
		t.Fatalf("post-restore evolution diverged: %v", err)
	}
}

// TestDedupBounded pins the memory contract: state is bounded by
// clients × window + legacy capacity no matter how many transactions
// resolve.
func TestDedupBounded(t *testing.T) {
	d := NewDedup(64, 16)
	for c := uint64(1); c <= 8; c++ {
		for n := uint64(1); n <= 10_000; n++ {
			d.Mark(stx(c, n))
		}
	}
	for i := 0; i < 1000; i++ {
		d.Mark(ltx(fmt.Sprintf("l%d", i)))
	}
	if d.Clients() != 8 {
		t.Fatalf("clients %d, want 8", d.Clients())
	}
	if d.LegacyLen() != 16 {
		t.Fatalf("legacy %d, want capacity 16", d.LegacyLen())
	}
	if got := len(d.Sessions()[0].Bits); got != 1 {
		t.Fatalf("bitmap words %d, want 1", got)
	}
}

// TestDedupExpireIdle covers the deterministic idle-session sweep:
// sessions whose floor stalls for E consecutive sweeps are dropped,
// activity resets the idle clock, and a dropped session loses dedup
// protection (its old nonces admit as new — the documented bound).
func TestDedupExpireIdle(t *testing.T) {
	d := NewDedup(64, 0)
	d.Mark(stx(1, 1)) // client 1: active once, then idle forever
	d.Mark(stx(2, 1)) // client 2: stays active across sweeps

	if dropped := d.ExpireIdle(0); dropped != nil {
		t.Fatalf("disabled sweep dropped %v", dropped)
	}
	// Sweep 1: both floors newly observed — nothing idle yet.
	if dropped := d.ExpireIdle(2); len(dropped) != 0 {
		t.Fatalf("first sweep dropped %v", dropped)
	}
	d.Mark(stx(2, 2)) // client 2 moves between sweeps
	// Sweep 2: client 1 idle×1, client 2 reset.
	if dropped := d.ExpireIdle(2); len(dropped) != 0 {
		t.Fatalf("second sweep dropped %v", dropped)
	}
	// Sweep 3: client 1 hits the horizon; client 2 idle×1 only.
	dropped := d.ExpireIdle(2)
	if len(dropped) != 1 || dropped[0] != 1 {
		t.Fatalf("third sweep dropped %v, want [1]", dropped)
	}
	if d.Clients() != 1 {
		t.Fatalf("%d sessions tracked, want 1", d.Clients())
	}
	// The dropped session's history is gone: its old nonce admits as
	// new (bounded-window contract), while client 2's floor survives.
	if got := d.Admit(stx(1, 1)); got != AdmitNew {
		t.Fatalf("expired session nonce: got %v, want new", got)
	}
	if got := d.Admit(stx(2, 1)); got != AdmitResolved {
		t.Fatalf("live session nonce: got %v, want resolved", got)
	}
	// Client 2 stalls from here: idle×1 at sweep 3 (it moved before
	// sweep 2, so its clock restarted), horizon at sweep 4.
	dropped = d.ExpireIdle(2)
	if len(dropped) != 1 || dropped[0] != 2 || d.Clients() != 0 {
		t.Fatalf("fourth sweep dropped %v (sessions=%d), want [2] and none tracked", dropped, d.Clients())
	}
}

// TestDedupExpireIdleSnapshotIdentity: the sweep state survives a
// snapshot round-trip — a restored dedup evolves bit-identically to
// the original through further marks and sweeps.
func TestDedupExpireIdleSnapshotIdentity(t *testing.T) {
	a := NewDedup(64, 16)
	a.Mark(stx(1, 1))
	a.Mark(stx(2, 1))
	a.ExpireIdle(3)   // both observed
	a.Mark(stx(2, 2)) // client 2 active
	a.ExpireIdle(3)   // client 1 idle×1 — mid-horizon state
	b := NewDedup(64, 16)
	b.Restore(a.Sessions(), a.Legacy())

	evolve := func(d *Dedup) {
		d.Mark(stx(2, 3))
		d.ExpireIdle(3) // client 1 idle×2
		d.ExpireIdle(3) // client 1 expires exactly now
	}
	evolve(a)
	evolve(b)
	if a.Clients() != 1 || b.Clients() != 1 {
		t.Fatalf("post-evolution sessions: a=%d b=%d, want 1,1", a.Clients(), b.Clients())
	}
	ea, eb := types.NewEncoder(), types.NewEncoder()
	a.EncodeState(ea)
	b.EncodeState(eb)
	if string(ea.Sum()) != string(eb.Sum()) {
		t.Fatal("restored dedup diverged from original after identical evolution")
	}
}

// TestDedupEncodeDecodeState: the WAL sidecar codec is a full-fidelity
// round trip, including mid-epoch sweep state where lastFloor lags the
// floor.
func TestDedupEncodeDecodeState(t *testing.T) {
	a := NewDedup(64, 8)
	a.Mark(stx(1, 1))
	a.ExpireIdle(4)   // lastFloor pinned at 1
	a.Mark(stx(1, 2)) // floor moves past lastFloor (mid-epoch shape)
	a.Mark(stx(3, 7)) // out-of-order window content
	for i := 0; i < 12; i++ {
		a.Mark(ltx(fmt.Sprintf("legacy-%d", i))) // wraps the 8-cap ring
	}
	e := types.NewEncoder()
	a.EncodeState(e)

	b := NewDedup(64, 8)
	if err := b.DecodeState(types.NewDecoder(e.Sum())); err != nil {
		t.Fatal(err)
	}
	e2 := types.NewEncoder()
	b.EncodeState(e2)
	if string(e.Sum()) != string(e2.Sum()) {
		t.Fatal("EncodeState/DecodeState round trip not byte-identical")
	}
	// And the decoded copy behaves identically on the next sweep (the
	// lastFloor fidelity the snapshot form cannot carry).
	da := a.ExpireIdle(4)
	db := b.ExpireIdle(4)
	if len(da) != len(db) {
		t.Fatalf("sweep divergence after round trip: %v vs %v", da, db)
	}
}

// TestDedupExpireIdleSparesActiveHoledSession: a session whose floor
// is pinned by a permanently lost nonce but which keeps committing
// out-of-order nonces above the hole is alive — expiring it would
// re-admit its committed nonces as new.
func TestDedupExpireIdleSparesActiveHoledSession(t *testing.T) {
	d := NewDedup(64, 0)
	// Nonce 1 never commits; 2..k do — floor stays 0 forever.
	next := uint64(2)
	for sweep := 0; sweep < 6; sweep++ {
		d.Mark(stx(1, next))
		next++
		if dropped := d.ExpireIdle(2); len(dropped) != 0 {
			t.Fatalf("sweep %d expired the actively committing session (dropped %v)", sweep, dropped)
		}
	}
	if got := d.Admit(stx(1, 2)); got != AdmitResolved {
		t.Fatalf("committed nonce above the hole: got %v, want resolved", got)
	}
	// Once the marks stop, the idle clock finally runs.
	d.ExpireIdle(2)
	dropped := d.ExpireIdle(2)
	if len(dropped) != 1 || dropped[0] != 1 {
		t.Fatalf("quiet holed session not expired: dropped %v", dropped)
	}
}
