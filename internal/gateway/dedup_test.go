package gateway

import (
	"fmt"
	"testing"

	"thunderbolt/internal/types"
)

func stx(client, nonce uint64) *types.Transaction {
	return &types.Transaction{
		Client: client, Nonce: nonce,
		Kind: types.SingleShard, Shards: []types.ShardID{0},
		Contract: "t", Args: [][]byte{[]byte(fmt.Sprintf("%d/%d", client, nonce))},
	}
}

func ltx(tag string) *types.Transaction {
	return &types.Transaction{
		Kind: types.SingleShard, Shards: []types.ShardID{0},
		Contract: "t", Args: [][]byte{[]byte(tag)},
	}
}

func TestDedupFloorAdvance(t *testing.T) {
	d := NewDedup(64, 0)
	for n := uint64(1); n <= 200; n++ {
		if d.Resolved(stx(1, n)) {
			t.Fatalf("nonce %d resolved before mark", n)
		}
		d.Mark(stx(1, n))
		if !d.Resolved(stx(1, n)) {
			t.Fatalf("nonce %d unresolved after mark", n)
		}
	}
	// Everything marked in order: floor should have swallowed all of
	// it — any nonce ≤ 200 resolved, 201 admissible, 201+64 not.
	if got := d.Admit(stx(1, 200)); got != AdmitResolved {
		t.Fatalf("below-floor resubmit: got %v, want resolved", got)
	}
	if got := d.Admit(stx(1, 201)); got != AdmitNew {
		t.Fatalf("next nonce: got %v, want new", got)
	}
	if got := d.Admit(stx(1, 200+65)); got != AdmitFuture {
		t.Fatalf("out-of-window nonce: got %v, want future", got)
	}
}

func TestDedupOutOfOrderWindow(t *testing.T) {
	d := NewDedup(64, 0)
	// Resolve out of order: 3, 5, then 1, 2 — floor trails the gap at
	// 4 and jumps when it fills.
	for _, n := range []uint64{3, 5, 1, 2} {
		d.Mark(stx(1, n))
	}
	for _, want := range []struct {
		n  uint64
		ok bool
	}{{1, true}, {2, true}, {3, true}, {4, false}, {5, true}, {6, false}} {
		if got := d.Resolved(stx(1, want.n)); got != want.ok {
			t.Fatalf("nonce %d resolved=%v, want %v", want.n, got, want.ok)
		}
	}
	d.Mark(stx(1, 4))
	// Gap filled: floor jumps over 5; bit positions below must have
	// been cleared for reuse by nonces one window later.
	if got := d.Admit(stx(1, 5)); got != AdmitResolved {
		t.Fatalf("nonce 5 after floor jump: got %v, want resolved", got)
	}
	if got := d.Admit(stx(1, 5+64)); got != AdmitNew {
		t.Fatalf("reused bit position must read unresolved: got %v, want new", got)
	}
}

func TestDedupForcedEviction(t *testing.T) {
	d := NewDedup(64, 0)
	d.Mark(stx(1, 1))
	// A commit far beyond the window (only reachable through a path
	// that bypassed admission) forces the floor forward
	// deterministically: nonces evicted unresolved lose dedup
	// protection — the documented bounded-window contract.
	d.Mark(stx(1, 1000))
	if !d.Resolved(stx(1, 900)) {
		t.Fatal("nonce at forced floor should read resolved")
	}
	if got := d.Admit(stx(1, 937)); got != AdmitNew {
		t.Fatalf("in-window unresolved nonce after forced advance: got %v, want new", got)
	}
	if !d.Resolved(stx(1, 1000)) {
		t.Fatal("the forcing nonce itself must be resolved")
	}
}

func TestDedupLegacyRing(t *testing.T) {
	d := NewDedup(64, 4)
	txs := make([]*types.Transaction, 6)
	for i := range txs {
		txs[i] = ltx(fmt.Sprintf("t%d", i))
		d.Mark(txs[i])
	}
	// Capacity 4: t0 and t1 evicted, t2..t5 retained.
	for i, tx := range txs {
		want := i >= 2
		if got := d.Resolved(tx); got != want {
			t.Fatalf("legacy tx %d resolved=%v, want %v", i, got, want)
		}
	}
	leg := d.Legacy()
	if len(leg) != 4 {
		t.Fatalf("legacy window holds %d, want 4", len(leg))
	}
	for i, id := range leg {
		if id != txs[i+2].ID() {
			t.Fatalf("legacy ring order broken at %d", i)
		}
	}
}

// TestDedupDeterministicState pins the property everything else rests
// on: two replicas marking the same sequence hold byte-identical
// exported state, and a third restoring that export then marking the
// same continuation stays identical too (the snapshot epoch-jump
// path).
func TestDedupDeterministicState(t *testing.T) {
	a, b := NewDedup(128, 8), NewDedup(128, 8)
	seq := []*types.Transaction{
		stx(1, 1), stx(2, 1), stx(1, 3), ltx("x"), stx(2, 2), stx(1, 2),
		ltx("y"), stx(7, 1), ltx("z"), stx(7, 130),
	}
	for _, tx := range seq {
		a.Mark(tx)
		b.Mark(tx)
	}
	sameState := func(x, y *Dedup) error {
		xs, ys := x.Sessions(), y.Sessions()
		if len(xs) != len(ys) {
			return fmt.Errorf("session counts %d vs %d", len(xs), len(ys))
		}
		for i := range xs {
			if xs[i].Client != ys[i].Client || xs[i].Floor != ys[i].Floor {
				return fmt.Errorf("session %d header mismatch", i)
			}
			for j := range xs[i].Bits {
				if xs[i].Bits[j] != ys[i].Bits[j] {
					return fmt.Errorf("session %d bits mismatch", i)
				}
			}
		}
		xl, yl := x.Legacy(), y.Legacy()
		if len(xl) != len(yl) {
			return fmt.Errorf("legacy lengths %d vs %d", len(xl), len(yl))
		}
		for i := range xl {
			if xl[i] != yl[i] {
				return fmt.Errorf("legacy order mismatch at %d", i)
			}
		}
		return nil
	}
	if err := sameState(a, b); err != nil {
		t.Fatalf("identical histories, divergent state: %v", err)
	}
	c := NewDedup(128, 8)
	c.Restore(a.Sessions(), a.Legacy())
	if err := sameState(a, c); err != nil {
		t.Fatalf("restore not verbatim: %v", err)
	}
	cont := []*types.Transaction{stx(1, 4), ltx("w"), stx(9, 1)}
	for _, tx := range cont {
		a.Mark(tx)
		c.Mark(tx)
	}
	if err := sameState(a, c); err != nil {
		t.Fatalf("post-restore evolution diverged: %v", err)
	}
}

// TestDedupBounded pins the memory contract: state is bounded by
// clients × window + legacy capacity no matter how many transactions
// resolve.
func TestDedupBounded(t *testing.T) {
	d := NewDedup(64, 16)
	for c := uint64(1); c <= 8; c++ {
		for n := uint64(1); n <= 10_000; n++ {
			d.Mark(stx(c, n))
		}
	}
	for i := 0; i < 1000; i++ {
		d.Mark(ltx(fmt.Sprintf("l%d", i)))
	}
	if d.Clients() != 8 {
		t.Fatalf("clients %d, want 8", d.Clients())
	}
	if d.LegacyLen() != 16 {
		t.Fatalf("legacy %d, want capacity 16", d.LegacyLen())
	}
	if got := len(d.Sessions()[0].Bits); got != 1 {
		t.Fatalf("bitmap words %d, want 1", got)
	}
}
