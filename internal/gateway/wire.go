package gateway

import (
	"thunderbolt/internal/transport"
	"thunderbolt/internal/types"
)

// Client-protocol message types. They live in a range disjoint from
// the replica-to-replica protocol (node's MsgBlock..MsgSnapshot) so a
// gateway frame can never be mistaken for consensus traffic. The
// transport treats types opaquely; replicas handle MsgTxSubmit and
// emit the other three.
const (
	// MsgTxSubmit carries one client transaction (types.Transaction
	// wire form) to a shard proposer. Unlike the fire-and-forget
	// legacy MsgTx, every submit is answered: MsgTxAck, MsgTxNack, or
	// (for a duplicate of a resolved transaction) an ack referencing
	// the original resolution.
	MsgTxSubmit transport.MsgType = 0x20 + iota
	// MsgTxAck acknowledges a submit: accepted into the proposer's
	// queue, or recognized as already resolved.
	MsgTxAck
	// MsgTxNack rejects a submit with a reason and a re-route hint —
	// the wire form of the proposer-side negative-ack that previously
	// reached only in-process callers via Config.OnRejectTx.
	MsgTxNack
	// MsgTxCommitted notifies the submitting client that its
	// transaction committed.
	MsgTxCommitted
)

// AckStatus says what an ack means.
type AckStatus uint8

const (
	// AckAccepted: the transaction entered the proposer's queue.
	AckAccepted AckStatus = iota + 1
	// AckResolved: the transaction was already resolved (committed or
	// deterministically failed) — the duplicate-resubmit answer. The
	// ack's TxID references the resolved transaction; the client
	// treats it as terminal.
	AckResolved
)

// NackReason says why a submit was rejected.
type NackReason uint8

const (
	// NackMisroute: this replica does not serve the transaction's
	// shard in the current epoch; Proposer carries the replica that
	// does. The client re-routes immediately.
	NackMisroute NackReason = iota + 1
	// NackOutOfWindow: the session nonce is more than a dedup window
	// ahead of the client's applied floor. The client backs off and
	// resubmits after earlier nonces resolve.
	NackOutOfWindow
	// NackEpochEnded: the transaction was dropped with a dying epoch
	// at a reconfiguration; Proposer carries the shard's new owner.
	NackEpochEnded
)

// Ack is the payload of MsgTxAck.
type Ack struct {
	TxID   types.Digest
	Client uint64
	Nonce  uint64
	Status AckStatus
	// Epoch and Proposer teach the client the current routing state.
	Epoch    types.Epoch
	Proposer types.ReplicaID
}

// Nack is the payload of MsgTxNack. Proposer is the re-route hint:
// the replica serving the transaction's shard in Epoch.
type Nack struct {
	TxID     types.Digest
	Client   uint64
	Nonce    uint64
	Reason   NackReason
	Epoch    types.Epoch
	Proposer types.ReplicaID
}

// Committed is the payload of MsgTxCommitted.
type Committed struct {
	TxID   types.Digest
	Client uint64
	Nonce  uint64
	Epoch  types.Epoch
}

// Marshal encodes an Ack.
func (a *Ack) Marshal() []byte {
	e := types.GetEncoder()
	defer types.PutEncoder(e)
	e.Digest(a.TxID)
	e.U64(a.Client)
	e.U64(a.Nonce)
	e.U8(uint8(a.Status))
	e.U64(uint64(a.Epoch))
	e.U32(uint32(a.Proposer))
	return e.Detach()
}

// Unmarshal decodes an Ack.
func (a *Ack) Unmarshal(b []byte) error {
	d := types.NewDecoder(b)
	a.TxID = d.Digest()
	a.Client = d.U64()
	a.Nonce = d.U64()
	a.Status = AckStatus(d.U8())
	a.Epoch = types.Epoch(d.U64())
	a.Proposer = types.ReplicaID(d.U32())
	return d.Finish()
}

// Marshal encodes a Nack.
func (n *Nack) Marshal() []byte {
	e := types.GetEncoder()
	defer types.PutEncoder(e)
	e.Digest(n.TxID)
	e.U64(n.Client)
	e.U64(n.Nonce)
	e.U8(uint8(n.Reason))
	e.U64(uint64(n.Epoch))
	e.U32(uint32(n.Proposer))
	return e.Detach()
}

// Unmarshal decodes a Nack.
func (n *Nack) Unmarshal(b []byte) error {
	d := types.NewDecoder(b)
	n.TxID = d.Digest()
	n.Client = d.U64()
	n.Nonce = d.U64()
	n.Reason = NackReason(d.U8())
	n.Epoch = types.Epoch(d.U64())
	n.Proposer = types.ReplicaID(d.U32())
	return d.Finish()
}

// Marshal encodes a Committed.
func (c *Committed) Marshal() []byte {
	e := types.GetEncoder()
	defer types.PutEncoder(e)
	e.Digest(c.TxID)
	e.U64(c.Client)
	e.U64(c.Nonce)
	e.U64(uint64(c.Epoch))
	return e.Detach()
}

// Unmarshal decodes a Committed.
func (c *Committed) Unmarshal(b []byte) error {
	d := types.NewDecoder(b)
	c.TxID = d.Digest()
	c.Client = d.U64()
	c.Nonce = d.U64()
	c.Epoch = types.Epoch(d.U64())
	return d.Finish()
}

// ProposerOfShard is the protocol's shard-rotation schedule: the
// replica serving shard s in epoch e. This is the single definition —
// node.ProposerOfShard delegates here (the client library routes with
// the same formula and cannot import the node package, so the formula
// lives on the shared side of that boundary).
func ProposerOfShard(s types.ShardID, epoch types.Epoch, n int) types.ReplicaID {
	return types.ReplicaID((uint64(s) + uint64(epoch)) % uint64(n))
}
