package gateway_test

import (
	"testing"
	"time"

	"thunderbolt/internal/cluster"
	"thunderbolt/internal/types"
	"thunderbolt/internal/workload"
)

func gwCluster(t *testing.T, cfg cluster.Config) *cluster.Cluster {
	t.Helper()
	if cfg.N == 0 {
		cfg.N = 4
	}
	if cfg.GatewayClients == 0 {
		cfg.GatewayClients = 2
	}
	cfg.Accounts = 64
	cfg.Seed = 11
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

// sessioned single-shard GetBalance for a shard, with explicit nonce.
func gwTx(gen *workload.Generator, shard types.ShardID) *types.Transaction {
	return gen.NextForShard(shard)
}

// TestClientCommitAndDuplicate: a wire client's submission commits
// with a push notification, and resubmitting the identical
// transaction afterwards resolves as a duplicate referencing the
// original — without a second commit.
func TestClientCommitAndDuplicate(t *testing.T) {
	c := gwCluster(t, cluster.Config{})
	gw := c.GatewayClient(0)
	gen := workload.NewGenerator(workload.Config{
		Accounts: 64, Shards: 4, Seed: 3, Client: c.NewSession(),
	})
	tx := gwTx(gen, 2)
	res, err := gw.SubmitWait(tx, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Duplicate {
		t.Fatal("first submission reported as duplicate")
	}
	if !c.Committed(tx.ID()) {
		t.Fatal("committed notification without a cluster commit")
	}
	commits := c.Commits()
	dup, err := gw.SubmitWait(tx.Clone(), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Duplicate {
		t.Fatal("resubmission not answered as a duplicate of the original commit")
	}
	if got := c.Commits(); got != commits {
		t.Fatalf("duplicate resubmission committed again (%d -> %d)", commits, got)
	}
}

// TestClientReroutesAfterReconfig: a client whose routing knowledge
// predates a reconfiguration submits to the old shard owner, receives
// a wire nack carrying the new owner, and commits after re-routing.
func TestClientReroutesAfterReconfig(t *testing.T) {
	c := gwCluster(t, cluster.Config{KPrime: 40})
	// Let at least one reconfiguration happen before the client's
	// first submission, so its epoch-0 routing guess is stale.
	deadline := time.Now().Add(15 * time.Second)
	for c.Reconfigurations() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no reconfiguration within 15s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	gw := c.GatewayClient(0)
	gen := workload.NewGenerator(workload.Config{
		Accounts: 64, Shards: 4, Seed: 5, Client: c.NewSession(),
	})
	tx := gwTx(gen, 1)
	res, err := gw.SubmitWait(tx, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reroutes == 0 {
		t.Fatal("stale-epoch submission committed without a wire re-route nack")
	}
	if !c.Committed(tx.ID()) {
		t.Fatal("transaction not committed after re-route")
	}
}

// TestClientFailsOverCrashedProposer: the shard owner is crashed; the
// client's submission gets no ack, fails over across replicas, and —
// once the committee shifts the dead proposer out — commits via the
// shard's new owner. The remote-client crash-survival path.
func TestClientFailsOverCrashedProposer(t *testing.T) {
	c := gwCluster(t, cluster.Config{K: 30})
	victim := types.ReplicaID(2) // owns shard 2 in epoch 0
	c.Network().Crash(victim)

	gw := c.GatewayClient(0)
	gen := workload.NewGenerator(workload.Config{
		Accounts: 64, Shards: 4, Seed: 7, Client: c.NewSession(),
	})
	tx := gwTx(gen, 2)
	res, err := gw.SubmitWait(tx, 30*time.Second)
	if err != nil {
		t.Fatalf("submission did not survive the proposer crash: %v", err)
	}
	if res.Failovers == 0 && res.Reroutes == 0 {
		t.Fatal("commit without any failover or re-route — the crash was not exercised")
	}
	if !c.Committed(tx.ID()) {
		t.Fatal("transaction not committed")
	}
}

// TestGatewayLoad drives a full closed-loop load through gateway
// clients (wire submission, acks, commit pushes) and requires it to
// commit like the in-process path does.
func TestGatewayLoad(t *testing.T) {
	c := gwCluster(t, cluster.Config{GatewayClients: 4})
	rep := c.RunLoad(cluster.LoadConfig{
		Duration: 500 * time.Millisecond, Clients: 4,
		Workload:   workload.Config{Theta: 0.5, ReadRatio: 0.5},
		ViaGateway: true, Timeout: 20 * time.Second,
	})
	if rep.Committed == 0 {
		t.Fatal("gateway-driven load committed nothing")
	}
}
