package validate

import (
	"sync"

	"thunderbolt/internal/contract"
	"thunderbolt/internal/types"
	"thunderbolt/internal/vm"
)

// CrossOutcome reports one cross-shard transaction's execution.
type CrossOutcome struct {
	Tx *types.Transaction
	// Err is non-nil for terminal contract failures; the transaction
	// then contributed no writes. Failures are deterministic (pure
	// functions of ordered state), so replicas agree on them.
	Err error
	// Writes is the transaction's state delta.
	Writes []types.RWRecord
}

// ExecuteCrossOrdered runs consensus-ordered cross-shard transactions
// under the OE model: the total order is fixed, and parallelism is
// recovered from the declared shard IDs (QueCC-style): transactions
// whose shard sets are disjoint execute concurrently within a wave;
// waves respect the total order. The returned outcomes are in input
// order and the aggregate write delta equals serial in-order
// execution.
//
// overlay semantics: each transaction sees base state plus the writes
// of every earlier transaction in the order.
func ExecuteCrossOrdered(reg *contract.Registry, base BaseReader,
	txs []*types.Transaction, workers int) []CrossOutcome {
	outcomes := make([]CrossOutcome, len(txs))
	if len(txs) == 0 {
		return outcomes
	}
	if workers <= 0 {
		workers = 1
	}
	// Greedy wave construction: a transaction joins the earliest wave
	// after the last wave containing a shard it touches.
	waveOf := make([]int, len(txs))
	lastWave := make(map[types.ShardID]int)
	maxWave := 0
	for i, tx := range txs {
		w := 0
		for _, s := range tx.Shards {
			if lw, ok := lastWave[s]; ok && lw+1 > w {
				w = lw + 1
			}
		}
		waveOf[i] = w
		for _, s := range tx.Shards {
			lastWave[s] = w
		}
		if w > maxWave {
			maxWave = w
		}
	}
	// accumulated holds the state delta applied so far (all earlier
	// waves); within a wave, shard-disjoint transactions cannot
	// conflict, so they read it concurrently.
	accumulated := make(map[types.Key]types.Value)
	readThrough := func(k types.Key) types.Value {
		if v, ok := accumulated[k]; ok {
			return v
		}
		return base(k)
	}
	for wave := 0; wave <= maxWave; wave++ {
		var idxs []int
		for i := range txs {
			if waveOf[i] == wave {
				idxs = append(idxs, i)
			}
		}
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for _, i := range idxs {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				st := &crossState{read: readThrough}
				err := vm.ExecuteTx(reg, st, txs[i])
				if err != nil {
					outcomes[i] = CrossOutcome{Tx: txs[i], Err: err}
					return
				}
				outcomes[i] = CrossOutcome{Tx: txs[i], Writes: st.writeRecords()}
			}(i)
		}
		wg.Wait()
		// Fold the wave's writes into the accumulated delta in input
		// order (same-wave transactions are shard-disjoint, so order
		// among them cannot matter; input order keeps it canonical).
		for _, i := range idxs {
			for _, w := range outcomes[i].Writes {
				accumulated[w.Key] = w.Value
			}
		}
	}
	return outcomes
}

// crossState executes one cross-shard transaction against a frozen
// read-through view, buffering writes.
type crossState struct {
	read func(types.Key) types.Value

	reads  map[types.Key]types.Value
	writes map[types.Key]types.Value
	wOrder []types.Key
}

func (s *crossState) Read(k types.Key) (types.Value, error) {
	if s.writes != nil {
		if v, ok := s.writes[k]; ok {
			return v.Clone(), nil
		}
	}
	if s.reads == nil {
		s.reads = make(map[types.Key]types.Value)
	}
	if v, ok := s.reads[k]; ok {
		return v.Clone(), nil
	}
	v := s.read(k).Clone()
	s.reads[k] = v
	return v, nil
}

func (s *crossState) Write(k types.Key, v types.Value) error {
	if s.writes == nil {
		s.writes = make(map[types.Key]types.Value)
	}
	if _, ok := s.writes[k]; !ok {
		s.wOrder = append(s.wOrder, k)
	}
	s.writes[k] = v.Clone()
	return nil
}

func (s *crossState) writeRecords() []types.RWRecord {
	out := make([]types.RWRecord, 0, len(s.wOrder))
	for _, k := range s.wOrder {
		out = append(out, types.RWRecord{Key: k, Value: s.writes[k]})
	}
	return out
}
