// Package validate implements the two post-consensus execution paths
// every replica runs on committed blocks:
//
//   - ValidateBatch (paper §4): checks a shard proposer's preplay
//     results in parallel. The declared read/write sets — unknown at
//     submission time, discovered by the CE — induce a dependency
//     structure; the batch is partitioned into topologically-sorted
//     conflict-free layers (depgraph.LayersOfResults) and re-executed
//     layer by layer as waves over a declared-write overlay, so
//     validation needs no per-transaction versioned lookups and no
//     channel hand-offs.
//
//   - ExecuteCrossOrdered (paper §5.2): deterministically executes
//     consensus-ordered cross-shard transactions, extracting
//     parallelism from the shard metadata (SIDs): transactions with
//     disjoint shard sets run concurrently, in QueCC-style waves.
//
// Both paths are pure functions of (base state, inputs) so every
// honest replica materializes identical state.
//
// The wave overlay is decision-equivalent to a per-transaction
// versioned view: within a layer no declared sets conflict, so a
// declared read's overlay value (all declared writes of strictly lower
// layers) is exactly the last declared write before the transaction's
// schedule position; and a re-executed read of a key written in the
// same layer is necessarily undeclared — rejected by the read-set
// comparison regardless of the value observed.
package validate

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"thunderbolt/internal/contract"
	"thunderbolt/internal/depgraph"
	"thunderbolt/internal/types"
	"thunderbolt/internal/vm"
)

// BaseReader supplies committed values (nil = absent).
type BaseReader func(k types.Key) types.Value

// ErrInvalidBlock reports that a block's preplay results failed
// validation; the block must be discarded (paper §4).
var ErrInvalidBlock = errors.New("validate: block failed validation")

// Result is a successfully validated batch.
type Result struct {
	// Writes is the state delta to apply: the last declared write per
	// key, in schedule order of first write.
	Writes []types.RWRecord
}

// layerParallelMin is the smallest layer worth fanning across workers;
// below it the goroutine hand-off costs more than the wave saves.
const layerParallelMin = 8

// checkState is the contract.State used to re-execute one transaction
// during validation; it records observations for comparison. read
// resolves a key against the wave overlay (declared writes of all
// completed layers) falling back to base.
type checkState struct {
	read func(k types.Key) types.Value

	reads  map[types.Key]types.Value
	writes map[types.Key]types.Value
	wOrder []types.Key
}

// Read and Write record observations without cloning: contracts are
// trusted deterministic code that never mutates a value buffer it was
// handed (the committed store's Get already returns its internal
// slices uncloned on the same assumption), and written values arrive
// in freshly built buffers. Validation runs once per transaction per
// block on every replica, so the former per-observation clones were a
// top-ten allocation site on the commit path.
func (s *checkState) Read(k types.Key) (types.Value, error) {
	if v, ok := s.writes[k]; ok {
		return v, nil
	}
	if v, ok := s.reads[k]; ok {
		return v, nil
	}
	v := s.read(k)
	s.reads[k] = v
	return v, nil
}

func (s *checkState) Write(k types.Key, v types.Value) error {
	if _, ok := s.writes[k]; !ok {
		s.wOrder = append(s.wOrder, k)
	}
	s.writes[k] = v
	return nil
}

// checkPool recycles checkStates (and their maps) across validations;
// validateOne runs concurrently within a layer, so the pool also keeps
// per-worker reuse contention-free.
var checkPool = sync.Pool{New: func() any {
	return &checkState{
		reads:  make(map[types.Key]types.Value, 8),
		writes: make(map[types.Key]types.Value, 8),
	}
}}

// ValidateBatch re-executes the scheduled transactions against the
// declared write sets and verifies that every observed read and write
// matches the block's declaration. The batch is checked wave by wave:
// each conflict-free layer runs in parallel (workers <= 0 means one
// worker), then its declared writes fold into the overlay the next
// layer reads through. Errors surface after each layer, so a bad block
// stops before wasting the remaining waves.
func ValidateBatch(reg *contract.Registry, base BaseReader, txs []*types.Transaction,
	results []types.TxResult, workers int) (*Result, error) {
	if len(txs) != len(results) {
		return nil, fmt.Errorf("%w: %d transactions but %d results", ErrInvalidBlock, len(txs), len(results))
	}
	if base == nil {
		base = func(types.Key) types.Value { return nil }
	}
	for i := range results {
		if int(results[i].ScheduleIdx) != i {
			return nil, fmt.Errorf("%w: schedule indices not dense at %d", ErrInvalidBlock, i)
		}
		if results[i].TxID != txs[i].ID() {
			return nil, fmt.Errorf("%w: result %d does not match its transaction", ErrInvalidBlock, i)
		}
	}
	if workers <= 0 {
		workers = 1
	}

	// The per-batch scratch (overlay map, error slots, last-writer
	// fold) comes from a pool: a replica validates every committed
	// block, and these four allocations per block were pure churn.
	sc := batchScratchPool.Get().(*batchScratch)
	sc.base = base
	defer sc.release()
	overlay := sc.overlay
	read := sc.read // captures sc once per pooled scratch, not per call

	errs := sc.errs
	for len(errs) < len(txs) {
		errs = append(errs, nil)
	}
	errs = errs[:len(txs)]
	sc.errs = errs
	work := func(i int) {
		errs[i] = validateOne(reg, read, txs[i], &results[i], i)
	}
	for _, layer := range depgraph.LayersOfResults(results) {
		runLayer(workers, layer, work)
		for _, i := range layer {
			if errs[i] != nil {
				return nil, errs[i]
			}
		}
		// Fold the layer's declared writes into the overlay. Two
		// same-layer transactions never write the same key (that would
		// be a WAW conflict), so application order is immaterial.
		for _, i := range layer {
			for _, w := range results[i].WriteSet {
				overlay[w.Key] = w.Value
			}
		}
	}

	// Final delta: last writer per key, ordered by first appearance.
	last := sc.last
	order := sc.order[:0]
	for i := range results {
		for _, w := range results[i].WriteSet {
			if _, seen := last[w.Key]; !seen {
				order = append(order, w.Key)
			}
			last[w.Key] = w.Value
		}
	}
	sc.order = order
	out := &Result{Writes: make([]types.RWRecord, 0, len(order))}
	for _, k := range order {
		out.Writes = append(out.Writes, types.RWRecord{Key: k, Value: last[k]})
	}
	return out, nil
}

// batchScratch holds ValidateBatch's per-call working state for reuse.
// read is built once per scratch and closes over the scratch itself,
// so a batch pays no closure allocation for its overlay reader.
type batchScratch struct {
	overlay map[types.Key]types.Value
	last    map[types.Key]types.Value
	errs    []error
	order   []types.Key
	base    BaseReader
	read    func(k types.Key) types.Value
}

func (s *batchScratch) release() {
	clear(s.overlay)
	clear(s.last)
	clear(s.errs)
	s.order = s.order[:0]
	s.base = nil
	batchScratchPool.Put(s)
}

var batchScratchPool = sync.Pool{New: func() any {
	s := &batchScratch{
		overlay: make(map[types.Key]types.Value),
		last:    make(map[types.Key]types.Value),
	}
	s.read = func(k types.Key) types.Value {
		if v, ok := s.overlay[k]; ok {
			return v
		}
		return s.base(k)
	}
	return s
}}

// runLayer fans one wave across workers when it is big enough; the
// overlay is read-only for the duration of the wave, so members only
// share the (immutable) overlay and their own errs slot.
func runLayer(workers int, layer []int, f func(i int)) {
	if workers > len(layer) {
		workers = len(layer)
	}
	// Workers beyond the schedulable CPU count only add spawn and
	// hand-off overhead (acute in the GOMAXPROCS=1 bench).
	if p := runtime.GOMAXPROCS(0); workers > p {
		workers = p
	}
	if workers <= 1 || len(layer) < layerParallelMin {
		for _, i := range layer {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j := int(next.Add(1)) - 1
				if j >= len(layer) {
					return
				}
				f(layer[j])
			}
		}()
	}
	for {
		j := int(next.Add(1)) - 1
		if j >= len(layer) {
			break
		}
		f(layer[j])
	}
	wg.Wait()
}

func validateOne(reg *contract.Registry, read func(types.Key) types.Value, tx *types.Transaction,
	res *types.TxResult, idx int) error {
	st := checkPool.Get().(*checkState)
	st.read = read
	defer func() {
		clear(st.reads)
		clear(st.writes)
		st.wOrder = st.wOrder[:0]
		st.read = nil
		checkPool.Put(st)
	}()
	if err := vm.ExecuteTx(reg, st, tx); err != nil {
		return fmt.Errorf("%w: tx %d re-execution failed: %v", ErrInvalidBlock, idx, err)
	}
	// Observed reads must match declared reads exactly.
	if len(st.reads) != len(res.ReadSet) {
		return fmt.Errorf("%w: tx %d read %d keys, declared %d", ErrInvalidBlock, idx, len(st.reads), len(res.ReadSet))
	}
	for _, r := range res.ReadSet {
		got, ok := st.reads[r.Key]
		if !ok {
			return fmt.Errorf("%w: tx %d declared read of %s never happened", ErrInvalidBlock, idx, r.Key)
		}
		if !got.Equal(r.Value) {
			return fmt.Errorf("%w: tx %d read %s=%q, declared %q", ErrInvalidBlock, idx, r.Key, got, r.Value)
		}
	}
	// Observed writes must match declared writes exactly.
	if len(st.writes) != len(res.WriteSet) {
		return fmt.Errorf("%w: tx %d wrote %d keys, declared %d", ErrInvalidBlock, idx, len(st.writes), len(res.WriteSet))
	}
	for _, w := range res.WriteSet {
		got, ok := st.writes[w.Key]
		if !ok {
			return fmt.Errorf("%w: tx %d declared write of %s never happened", ErrInvalidBlock, idx, w.Key)
		}
		if !got.Equal(w.Value) {
			return fmt.Errorf("%w: tx %d wrote %s=%q, declared %q", ErrInvalidBlock, idx, w.Key, got, w.Value)
		}
	}
	return nil
}
