// Package validate implements the two post-consensus execution paths
// every replica runs on committed blocks:
//
//   - ValidateBatch (paper §4): checks a shard proposer's preplay
//     results in parallel. The declared read/write sets — unknown at
//     submission time, discovered by the CE — induce a dependency
//     structure that lets each transaction be re-executed and checked
//     independently against a versioned view, rather than serially.
//
//   - ExecuteCrossOrdered (paper §5.2): deterministically executes
//     consensus-ordered cross-shard transactions, extracting
//     parallelism from the shard metadata (SIDs): transactions with
//     disjoint shard sets run concurrently, in QueCC-style waves.
//
// Both paths are pure functions of (base state, inputs) so every
// honest replica materializes identical state.
package validate

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"thunderbolt/internal/contract"
	"thunderbolt/internal/types"
	"thunderbolt/internal/vm"
)

// BaseReader supplies committed values (nil = absent).
type BaseReader func(k types.Key) types.Value

// ErrInvalidBlock reports that a block's preplay results failed
// validation; the block must be discarded (paper §4).
var ErrInvalidBlock = errors.New("validate: block failed validation")

// Result is a successfully validated batch.
type Result struct {
	// Writes is the state delta to apply: the last declared write per
	// key, in schedule order of first write.
	Writes []types.RWRecord
}

// versionedView indexes declared writes by key and schedule position,
// giving each transaction the exact state it should have observed.
type versionedView struct {
	base BaseReader
	// versions[k] lists (scheduleIdx, value) in ascending order.
	versions map[types.Key][]versionEntry
}

type versionEntry struct {
	idx int
	val types.Value
}

func buildView(base BaseReader, results []types.TxResult) *versionedView {
	v := &versionedView{base: base, versions: make(map[types.Key][]versionEntry)}
	for i := range results {
		for _, w := range results[i].WriteSet {
			v.versions[w.Key] = append(v.versions[w.Key], versionEntry{idx: i, val: w.Value})
		}
	}
	// Results arrive in schedule order, so each key's version list is
	// already ascending; sort defensively for malformed inputs.
	for k := range v.versions {
		vs := v.versions[k]
		sort.Slice(vs, func(a, b int) bool { return vs[a].idx < vs[b].idx })
	}
	return v
}

// at returns the value of k visible to the transaction at schedule
// position idx: the last declared write before idx, else base.
func (v *versionedView) at(k types.Key, idx int) types.Value {
	vs := v.versions[k]
	lo := sort.Search(len(vs), func(i int) bool { return vs[i].idx >= idx })
	if lo == 0 {
		return v.base(k)
	}
	return vs[lo-1].val
}

// checkState is the contract.State used to re-execute one transaction
// during validation; it records observations for comparison.
type checkState struct {
	view *versionedView
	idx  int

	reads  map[types.Key]types.Value
	writes map[types.Key]types.Value
	wOrder []types.Key
}

func (s *checkState) Read(k types.Key) (types.Value, error) {
	if v, ok := s.writes[k]; ok {
		return v.Clone(), nil
	}
	if v, ok := s.reads[k]; ok {
		return v.Clone(), nil
	}
	v := s.view.at(k, s.idx).Clone()
	s.reads[k] = v
	return v, nil
}

func (s *checkState) Write(k types.Key, v types.Value) error {
	if _, ok := s.writes[k]; !ok {
		s.wOrder = append(s.wOrder, k)
	}
	s.writes[k] = v.Clone()
	return nil
}

// ValidateBatch re-executes the scheduled transactions in parallel
// against the versioned view induced by the declared write sets and
// verifies that every observed read and write matches the block's
// declaration. workers <= 0 means one worker.
func ValidateBatch(reg *contract.Registry, base BaseReader, txs []*types.Transaction,
	results []types.TxResult, workers int) (*Result, error) {
	if len(txs) != len(results) {
		return nil, fmt.Errorf("%w: %d transactions but %d results", ErrInvalidBlock, len(txs), len(results))
	}
	if base == nil {
		base = func(types.Key) types.Value { return nil }
	}
	for i := range results {
		if int(results[i].ScheduleIdx) != i {
			return nil, fmt.Errorf("%w: schedule indices not dense at %d", ErrInvalidBlock, i)
		}
		if results[i].TxID != txs[i].ID() {
			return nil, fmt.Errorf("%w: result %d does not match its transaction", ErrInvalidBlock, i)
		}
	}
	view := buildView(base, results)

	if workers <= 0 {
		workers = 1
	}
	errs := make([]error, len(txs))
	var wg sync.WaitGroup
	idxCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				errs[i] = validateOne(reg, view, txs[i], &results[i], i)
			}
		}()
	}
	for i := range txs {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Final delta: last writer per key, ordered by first appearance.
	last := make(map[types.Key]types.Value)
	var order []types.Key
	for i := range results {
		for _, w := range results[i].WriteSet {
			if _, seen := last[w.Key]; !seen {
				order = append(order, w.Key)
			}
			last[w.Key] = w.Value
		}
	}
	out := &Result{Writes: make([]types.RWRecord, 0, len(order))}
	for _, k := range order {
		out.Writes = append(out.Writes, types.RWRecord{Key: k, Value: last[k]})
	}
	return out, nil
}

func validateOne(reg *contract.Registry, view *versionedView, tx *types.Transaction,
	res *types.TxResult, idx int) error {
	st := &checkState{
		view:   view,
		idx:    idx,
		reads:  make(map[types.Key]types.Value),
		writes: make(map[types.Key]types.Value),
	}
	if err := vm.ExecuteTx(reg, st, tx); err != nil {
		return fmt.Errorf("%w: tx %d re-execution failed: %v", ErrInvalidBlock, idx, err)
	}
	// Observed reads must match declared reads exactly.
	if len(st.reads) != len(res.ReadSet) {
		return fmt.Errorf("%w: tx %d read %d keys, declared %d", ErrInvalidBlock, idx, len(st.reads), len(res.ReadSet))
	}
	for _, r := range res.ReadSet {
		got, ok := st.reads[r.Key]
		if !ok {
			return fmt.Errorf("%w: tx %d declared read of %s never happened", ErrInvalidBlock, idx, r.Key)
		}
		if !got.Equal(r.Value) {
			return fmt.Errorf("%w: tx %d read %s=%q, declared %q", ErrInvalidBlock, idx, r.Key, got, r.Value)
		}
	}
	// Observed writes must match declared writes exactly.
	if len(st.writes) != len(res.WriteSet) {
		return fmt.Errorf("%w: tx %d wrote %d keys, declared %d", ErrInvalidBlock, idx, len(st.writes), len(res.WriteSet))
	}
	for _, w := range res.WriteSet {
		got, ok := st.writes[w.Key]
		if !ok {
			return fmt.Errorf("%w: tx %d declared write of %s never happened", ErrInvalidBlock, idx, w.Key)
		}
		if !got.Equal(w.Value) {
			return fmt.Errorf("%w: tx %d wrote %s=%q, declared %q", ErrInvalidBlock, idx, w.Key, got, w.Value)
		}
	}
	return nil
}
