package validate

import (
	"errors"
	"testing"

	"thunderbolt/internal/ce"
	"thunderbolt/internal/contract"
	"thunderbolt/internal/storage"
	"thunderbolt/internal/types"
	"thunderbolt/internal/workload"
)

func setup(t *testing.T, accounts int) (*contract.Registry, *storage.Store) {
	t.Helper()
	reg := contract.NewRegistry()
	workload.RegisterSmallBank(reg)
	st := storage.New()
	workload.InitAccounts(st, accounts, 1000, 1000)
	return reg, st
}

func baseOf(st *storage.Store) BaseReader {
	return func(k types.Key) types.Value {
		v, _ := st.Get(k)
		return v
	}
}

// preplay runs a batch through the real CE to get authentic results.
func preplay(t *testing.T, reg *contract.Registry, st *storage.Store, txs []*types.Transaction) *ce.BatchResult {
	t.Helper()
	exec := ce.New(ce.Config{Executors: 4, Registry: reg})
	res := exec.ExecuteBatch(func(k types.Key) types.Value {
		v, _ := st.Get(k)
		return v
	}, txs)
	if len(res.Failed) != 0 {
		t.Fatalf("preplay failures: %v", res.Failed[0].Err)
	}
	return res
}

func TestValidateAcceptsHonestPreplay(t *testing.T) {
	reg, st := setup(t, 8)
	g := workload.NewGenerator(workload.Config{Accounts: 8, Shards: 1, Theta: 0.9, ReadRatio: 0.3, Seed: 4})
	batch := preplay(t, reg, st, g.Batch(150))
	res, err := ValidateBatch(reg, baseOf(st), batch.Schedule, batch.Results, 8)
	if err != nil {
		t.Fatalf("honest preplay rejected: %v", err)
	}
	// Applying the delta must equal serially replaying the schedule.
	serial := storage.New()
	for k, v := range st.Snapshot() {
		serial.Set(k, v)
	}
	for _, tx := range batch.Schedule {
		o := storage.NewOverlay(serial)
		if err := execTx(reg, o, tx); err != nil {
			t.Fatal(err)
		}
		o.Flush()
	}
	applied := storage.New()
	for k, v := range st.Snapshot() {
		applied.Set(k, v)
	}
	applied.Apply(res.Writes)
	for _, k := range serial.Keys() {
		a, _ := applied.Get(k)
		s, _ := serial.Get(k)
		if !a.Equal(s) {
			t.Fatalf("delta mismatch at %s: %q vs %q", k, a, s)
		}
	}
}

type overlayState struct{ o *storage.Overlay }

func (s overlayState) Read(k types.Key) (types.Value, error) {
	v, _ := s.o.Get(k)
	return v, nil
}
func (s overlayState) Write(k types.Key, v types.Value) error {
	s.o.Set(k, v)
	return nil
}

func execTx(reg *contract.Registry, o *storage.Overlay, tx *types.Transaction) error {
	c, ok := reg.Lookup(tx.Contract)
	if !ok {
		return errors.New("unknown contract")
	}
	return c.Execute(overlayState{o}, tx.Args)
}

func TestValidateRejectsForgedRead(t *testing.T) {
	reg, st := setup(t, 4)
	g := workload.NewGenerator(workload.Config{Accounts: 4, Shards: 1, Theta: 0.5, ReadRatio: 0, Seed: 2})
	batch := preplay(t, reg, st, g.Batch(20))
	// Tamper with one declared read value.
	if len(batch.Results[5].ReadSet) == 0 {
		t.Skip("tx 5 has no reads")
	}
	batch.Results[5].ReadSet[0].Value = types.Value("forged")
	_, err := ValidateBatch(reg, baseOf(st), batch.Schedule, batch.Results, 4)
	if !errors.Is(err, ErrInvalidBlock) {
		t.Fatalf("forged read accepted: %v", err)
	}
}

func TestValidateRejectsForgedWrite(t *testing.T) {
	reg, st := setup(t, 4)
	g := workload.NewGenerator(workload.Config{Accounts: 4, Shards: 1, Theta: 0.5, ReadRatio: 0, Seed: 3})
	batch := preplay(t, reg, st, g.Batch(20))
	for i := range batch.Results {
		if len(batch.Results[i].WriteSet) > 0 {
			batch.Results[i].WriteSet[0].Value = contract.EncodeInt64(1 << 40)
			_, err := ValidateBatch(reg, baseOf(st), batch.Schedule, batch.Results, 4)
			if !errors.Is(err, ErrInvalidBlock) {
				t.Fatalf("forged write accepted: %v", err)
			}
			return
		}
	}
	t.Skip("no writes to tamper with")
}

func TestValidateRejectsReorderedSchedule(t *testing.T) {
	reg, st := setup(t, 2)
	// Two conflicting deposits; swapping them breaks read values.
	txs := []*types.Transaction{
		{Client: 1, Nonce: 1, Contract: workload.ContractDepositChecking,
			Args: [][]byte{[]byte(workload.AccountName(0)), contract.EncodeInt64(10)}},
		{Client: 1, Nonce: 2, Contract: workload.ContractDepositChecking,
			Args: [][]byte{[]byte(workload.AccountName(0)), contract.EncodeInt64(20)}},
	}
	batch := preplay(t, reg, st, txs)
	// Swap transactions but keep the results aligned to old positions.
	batch.Schedule[0], batch.Schedule[1] = batch.Schedule[1], batch.Schedule[0]
	_, err := ValidateBatch(reg, baseOf(st), batch.Schedule, batch.Results, 2)
	if !errors.Is(err, ErrInvalidBlock) {
		t.Fatalf("reordered schedule accepted: %v", err)
	}
}

func TestValidateRejectsStructuralGarbage(t *testing.T) {
	reg, st := setup(t, 2)
	tx := &types.Transaction{Client: 1, Nonce: 1, Contract: workload.ContractGetBalance,
		Args: [][]byte{[]byte(workload.AccountName(0))}}
	// Length mismatch.
	if _, err := ValidateBatch(reg, baseOf(st), []*types.Transaction{tx}, nil, 1); !errors.Is(err, ErrInvalidBlock) {
		t.Fatal("length mismatch accepted")
	}
	// Wrong TxID.
	res := []types.TxResult{{TxID: types.HashBytes([]byte("other"))}}
	if _, err := ValidateBatch(reg, baseOf(st), []*types.Transaction{tx}, res, 1); !errors.Is(err, ErrInvalidBlock) {
		t.Fatal("wrong TxID accepted")
	}
	// Non-dense schedule indices.
	res = []types.TxResult{{TxID: tx.ID(), ScheduleIdx: 5}}
	if _, err := ValidateBatch(reg, baseOf(st), []*types.Transaction{tx}, res, 1); !errors.Is(err, ErrInvalidBlock) {
		t.Fatal("sparse schedule accepted")
	}
}

func TestValidateEmptyBatch(t *testing.T) {
	reg, st := setup(t, 1)
	res, err := ValidateBatch(reg, baseOf(st), nil, nil, 4)
	if err != nil || len(res.Writes) != 0 {
		t.Fatalf("empty batch: %v %v", res, err)
	}
}

func TestCrossOrderedMatchesSerial(t *testing.T) {
	reg, st := setup(t, 12)
	g := workload.NewGenerator(workload.Config{
		Accounts: 12, Shards: 4, Theta: 0.5, ReadRatio: 0, CrossPct: 1.0, Seed: 6,
	})
	var txs []*types.Transaction
	for len(txs) < 60 {
		tx := g.Next()
		if tx.Kind == types.CrossShard {
			txs = append(txs, tx)
		}
	}
	outs := ExecuteCrossOrdered(reg, baseOf(st), txs, 8)

	// Serial oracle.
	serial := storage.New()
	for k, v := range st.Snapshot() {
		serial.Set(k, v)
	}
	for _, tx := range txs {
		o := storage.NewOverlay(serial)
		if err := execTx(reg, o, tx); err != nil {
			t.Fatal(err)
		}
		o.Flush()
	}
	// Apply parallel outcomes in order.
	par := storage.New()
	for k, v := range st.Snapshot() {
		par.Set(k, v)
	}
	for _, out := range outs {
		if out.Err != nil {
			t.Fatalf("unexpected failure: %v", out.Err)
		}
		par.Apply(out.Writes)
	}
	for _, k := range serial.Keys() {
		a, _ := par.Get(k)
		s, _ := serial.Get(k)
		if !a.Equal(s) {
			t.Fatalf("cross execution diverged at %s: %q vs %q", k, a, s)
		}
	}
}

func TestCrossOrderedConflictingSameShard(t *testing.T) {
	// Same-shard cross transactions must serialize in order.
	reg, st := setup(t, 2)
	a, b := workload.AccountName(0), workload.AccountName(1)
	mk := func(nonce uint64, amt int64) *types.Transaction {
		return &types.Transaction{
			Client: 1, Nonce: nonce, Kind: types.CrossShard,
			Shards:   []types.ShardID{0, 1},
			Contract: workload.ContractSendPayment,
			Args:     [][]byte{[]byte(a), []byte(b), contract.EncodeInt64(amt)},
		}
	}
	txs := []*types.Transaction{mk(1, 10), mk(2, 20), mk(3, 30)}
	outs := ExecuteCrossOrdered(reg, baseOf(st), txs, 4)
	final := storage.New()
	for k, v := range st.Snapshot() {
		final.Set(k, v)
	}
	for _, o := range outs {
		final.Apply(o.Writes)
	}
	v, _ := final.Get(workload.CheckingKey(a))
	got, _ := contract.DecodeInt64(v)
	if got != 1000-60 {
		t.Fatalf("serial semantics violated: src=%d want 940", got)
	}
}

func TestCrossOrderedFailuresAreIsolated(t *testing.T) {
	reg, st := setup(t, 2)
	txs := []*types.Transaction{
		{Client: 1, Nonce: 1, Kind: types.CrossShard, Shards: []types.ShardID{0, 1},
			Contract: "nonexistent"},
		{Client: 1, Nonce: 2, Kind: types.CrossShard, Shards: []types.ShardID{0, 1},
			Contract: workload.ContractDepositChecking,
			Args:     [][]byte{[]byte(workload.AccountName(0)), contract.EncodeInt64(5)}},
	}
	outs := ExecuteCrossOrdered(reg, baseOf(st), txs, 2)
	if outs[0].Err == nil {
		t.Fatal("bad contract should fail")
	}
	if outs[1].Err != nil || len(outs[1].Writes) == 0 {
		t.Fatal("good transaction affected by bad one")
	}
}

func TestCrossOrderedEmpty(t *testing.T) {
	reg, st := setup(t, 1)
	if outs := ExecuteCrossOrdered(reg, baseOf(st), nil, 4); len(outs) != 0 {
		t.Fatal("empty input produced outcomes")
	}
}
