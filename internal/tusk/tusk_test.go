package tusk

import (
	"testing"

	"thunderbolt/internal/dag/dagtest"
	"thunderbolt/internal/types"
)

func TestLeaderRoundAndRotation(t *testing.T) {
	if LeaderRound(2) || !LeaderRound(1) || !LeaderRound(3) {
		t.Fatal("leader rounds are the odd rounds")
	}
	// Round-robin across rounds.
	n := 4
	seen := map[types.ReplicaID]bool{}
	for r := types.Round(1); r < 9; r += 2 {
		seen[LeaderOf(0, r, n)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("rotation covered %d replicas, want 4", len(seen))
	}
	// Epoch offsets rotation.
	if LeaderOf(0, 1, n) == LeaderOf(1, 1, n) {
		t.Fatal("epoch should shift the leader schedule")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("even round should panic")
		}
	}()
	LeaderOf(0, 2, n)
}

func TestCommitFirstLeader(t *testing.T) {
	c := dagtest.NewCommittee(4)
	b := dagtest.NewBuilder(c, 0)
	cm := NewCommitter(b.Store, 4)

	b.NextRound(nil, nil) // round 1
	if waves := cm.Advance(); len(waves) != 0 {
		t.Fatal("committed without support round")
	}
	b.NextRound(nil, nil) // round 2 references all of round 1
	waves := cm.Advance()
	if len(waves) != 1 {
		t.Fatalf("waves=%d want 1", len(waves))
	}
	w := waves[0]
	leader := LeaderOf(0, 1, 4)
	if w.Leader.Proposer() != leader || w.Leader.Round() != 1 {
		t.Fatalf("wrong leader committed: (%d,%d)", w.Leader.Round(), w.Leader.Proposer())
	}
	// Leader of round 1 has no parents: wave is just itself.
	if len(w.Vertices) != 1 || w.Vertices[0] != w.Leader {
		t.Fatalf("wave should contain exactly the leader, got %d", len(w.Vertices))
	}
	if !cm.Committed(w.Leader.Cert.Digest()) {
		t.Fatal("leader not marked committed")
	}
}

func TestSecondWaveSweepsHistory(t *testing.T) {
	c := dagtest.NewCommittee(4)
	b := dagtest.NewBuilder(c, 0)
	cm := NewCommitter(b.Store, 4)
	b.NextRound(nil, nil) // 1
	b.NextRound(nil, nil) // 2
	b.NextRound(nil, nil) // 3
	b.NextRound(nil, nil) // 4
	waves := cm.Advance()
	if len(waves) != 2 {
		t.Fatalf("waves=%d want 2", len(waves))
	}
	// Wave 2 commits leader 3 plus everything uncommitted in its
	// history: 3 siblings of round 1, 4 of round 2, itself = 8.
	if len(waves[1].Vertices) != 8 {
		t.Fatalf("wave 2 carries %d vertices, want 8", len(waves[1].Vertices))
	}
	total := len(waves[0].Vertices) + len(waves[1].Vertices)
	if total != 9 {
		t.Fatalf("committed %d vertices, want 9", total)
	}
}

func TestMissingLeaderSkipped(t *testing.T) {
	c := dagtest.NewCommittee(4)
	b := dagtest.NewBuilder(c, 0)
	cm := NewCommitter(b.Store, 4)
	leader3 := LeaderOf(0, 3, 4)
	all := []types.ReplicaID{0, 1, 2, 3}
	var others []types.ReplicaID
	for _, p := range all {
		if p != leader3 {
			others = append(others, p)
		}
	}
	b.NextRound(nil, nil)    // 1
	b.NextRound(nil, nil)    // 2
	b.NextRound(others, nil) // 3 without its leader
	b.NextRound(nil, nil)    // 4
	b.NextRound(nil, nil)    // 5
	b.NextRound(nil, nil)    // 6
	waves := cm.Advance()
	// Leaders 1 and 5 commit; leader 3 is absent forever.
	if len(waves) != 2 {
		t.Fatalf("waves=%d want 2", len(waves))
	}
	if waves[1].Leader.Round() != 5 {
		t.Fatalf("second wave leader round %d want 5", waves[1].Leader.Round())
	}
	// Committed: rounds 1-4 fully (4+4+3+4) plus leader 5 itself; the
	// round-5 siblings await the next leader.
	total := 0
	for _, w := range waves {
		total += len(w.Vertices)
	}
	if total != 16 {
		t.Fatalf("committed %d vertices, want 16", total)
	}
}

func TestInsufficientSupportDefersCommit(t *testing.T) {
	c := dagtest.NewCommittee(4)
	b := dagtest.NewBuilder(c, 0)
	cm := NewCommitter(b.Store, 4)
	leader1 := LeaderOf(0, 1, 4)
	r1 := b.NextRound(nil, nil)
	_ = r1
	// Round 2 vertices reference only the non-leader vertices: build
	// manually with pruned parents.
	var keep []types.Digest
	for p, v := range r1 {
		if p != leader1 {
			keep = append(keep, v.Cert.Digest())
		}
	}
	b.NextRound(nil, func(blk *types.Block) {
		blk.Parents = append([]types.Digest(nil), keep...)
	})
	if waves := cm.Advance(); len(waves) != 0 {
		t.Fatal("leader committed with zero support")
	}
}

func TestDeterministicAcrossReplicas(t *testing.T) {
	// Two committers over independently built but identical DAGs must
	// produce identical wave sequences.
	run := func() []string {
		c := dagtest.NewCommittee(4)
		b := dagtest.NewBuilder(c, 0)
		cm := NewCommitter(b.Store, 4)
		var log []string
		for r := 0; r < 8; r++ {
			b.NextRound(nil, nil)
			for _, w := range cm.Advance() {
				for _, v := range w.Vertices {
					log = append(log, v.Block.Digest().String())
				}
			}
		}
		return log
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("commit order diverged at %d", i)
		}
	}
}

func TestCommitterSeededAt(t *testing.T) {
	c := dagtest.NewCommittee(4)
	b := dagtest.NewBuilderAt(c, 0, 101)
	cm := NewCommitterAt(b.Store, 4, 101)
	if cm.LastLeaderRound() != 101 {
		t.Fatalf("seed not applied: last leader round %d", cm.LastLeaderRound())
	}
	b.NextRound(nil, nil) // 101 (the re-entry round)
	b.NextRound(nil, nil) // 102
	if waves := cm.Advance(); len(waves) != 0 {
		t.Fatal("leader at the seeded round re-committed")
	}
	b.NextRound(nil, nil) // 103
	b.NextRound(nil, nil) // 104
	waves := cm.Advance()
	if len(waves) != 1 {
		t.Fatalf("waves=%d want 1", len(waves))
	}
	if waves[0].Leader.Round() != 103 {
		t.Fatalf("first committed leader at round %d, want 103", waves[0].Leader.Round())
	}
	// The wave linearizes the re-derived history back to the base —
	// rounds 101..103, 9 vertices — which the installer's dedup state
	// then suppresses at execution, exactly like a WAL-restart replay.
	if len(waves[0].Vertices) != 9 {
		t.Fatalf("wave carries %d vertices, want 9", len(waves[0].Vertices))
	}
}

func TestPredictWaveMatchesCommit(t *testing.T) {
	c := dagtest.NewCommittee(4)
	b := dagtest.NewBuilder(c, 0)
	cm := NewCommitter(b.Store, 4)
	none := func(types.Digest) bool { return false }

	b.NextRound(nil, nil) // 1
	b.NextRound(nil, nil) // 2
	l1, ok := b.Store.Get(1, LeaderOf(0, 1, 4))
	if !ok {
		t.Fatal("leader 1 missing")
	}
	p1 := cm.PredictWave(l1, none)
	if cm.CommittedLen() != 0 {
		t.Fatal("PredictWave must not mark anything committed")
	}
	b.NextRound(nil, nil) // 3
	l3, ok := b.Store.Get(3, LeaderOf(0, 3, 4))
	if !ok {
		t.Fatal("leader 3 missing")
	}
	// Stacked prediction: leader 3's wave on top of the claimed (but
	// uncommitted) wave 1.
	claimed := map[types.Digest]bool{}
	for _, v := range p1.Vertices {
		claimed[v.Cert.Digest()] = true
	}
	p3 := cm.PredictWave(l3, func(d types.Digest) bool { return claimed[d] })

	b.NextRound(nil, nil) // 4 gives leader 3 support
	waves := cm.Advance()
	if len(waves) != 2 {
		t.Fatalf("waves=%d want 2", len(waves))
	}
	for wi, pair := range [][2]CommitWave{{p1, waves[0]}, {p3, waves[1]}} {
		pred, got := pair[0], pair[1]
		if pred.Leader != got.Leader {
			t.Fatalf("wave %d: predicted leader differs", wi)
		}
		if len(pred.Vertices) != len(got.Vertices) {
			t.Fatalf("wave %d: predicted %d vertices, committed %d", wi, len(pred.Vertices), len(got.Vertices))
		}
		for i := range pred.Vertices {
			if pred.Vertices[i] != got.Vertices[i] {
				t.Fatalf("wave %d: vertex order diverged at %d", wi, i)
			}
		}
	}
}

func TestAdvanceIdempotent(t *testing.T) {
	c := dagtest.NewCommittee(4)
	b := dagtest.NewBuilder(c, 0)
	cm := NewCommitter(b.Store, 4)
	b.NextRound(nil, nil)
	b.NextRound(nil, nil)
	if waves := cm.Advance(); len(waves) != 1 {
		t.Fatal("first advance should commit")
	}
	if waves := cm.Advance(); len(waves) != 0 {
		t.Fatal("second advance recommitted")
	}
}

func TestForgetDropsCommittedFlags(t *testing.T) {
	c := dagtest.NewCommittee(4)
	b := dagtest.NewBuilder(c, 0)
	committer := NewCommitter(b.Store, 4)
	for r := 0; r < 6; r++ {
		b.NextRound(nil, nil)
	}
	waves := committer.Advance()
	if len(waves) == 0 {
		t.Fatal("no waves committed")
	}
	before := committer.CommittedLen()
	if before == 0 {
		t.Fatal("no committed flags retained")
	}
	// Prune the first rounds out of the store and forget their flags.
	removed := b.Store.PruneBelow(3)
	committer.Forget(removed)
	if got := committer.CommittedLen(); got != before-len(removed) {
		t.Fatalf("committed flags %d after forgetting %d of %d", got, len(removed), before)
	}
	// Commit progress is unaffected: the DAG keeps extending and new
	// waves keep committing past the pruned prefix.
	for r := 0; r < 4; r++ {
		b.NextRound(nil, nil)
	}
	if more := committer.Advance(); len(more) == 0 {
		t.Fatal("no waves committed after pruning")
	}
}
