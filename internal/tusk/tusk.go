// Package tusk implements the Tusk commit rule over a DAG store
// (paper §2, after Danezis et al.).
//
// Leaders live on odd rounds, chosen round-robin (the paper's
// predetermined-leader property that Thunderbolt's proposal rules
// lean on). A leader vertex of round r commits once f+1 vertices of
// round r+1 reference it. Committing a leader first commits every
// earlier uncommitted leader found in its causal history (in round
// order), and each leader commit linearizes its uncommitted causal
// history deterministically — so all honest replicas derive the same
// total block order from their (eventually identical) DAGs.
package tusk

import (
	"thunderbolt/internal/crypto"
	"thunderbolt/internal/dag"
	"thunderbolt/internal/types"
)

// LeaderRound reports whether r carries a leader (odd rounds: 1, 3,
// 5, ... — one leader every two rounds as in Tusk).
func LeaderRound(r types.Round) bool { return r%2 == 1 }

// LeaderOf returns the leader replica for an odd round. The epoch
// offsets the rotation so shard reconfigurations also rotate leader
// duty.
func LeaderOf(epoch types.Epoch, r types.Round, n int) types.ReplicaID {
	if !LeaderRound(r) {
		panic("tusk: leader requested for a non-leader round")
	}
	idx := (uint64(r)/2 + uint64(epoch)) % uint64(n)
	return types.ReplicaID(idx)
}

// CommitWave is the outcome of one leader commit: the leader vertex
// and the newly committed vertices of its causal history (leader
// included, deterministic order).
type CommitWave struct {
	Leader   *dag.Vertex
	Vertices []*dag.Vertex
}

// Committer applies the commit rule incrementally as vertices arrive.
// It is not safe for concurrent use; the node's event loop owns it.
type Committer struct {
	store *dag.Store
	n     int
	f     int

	committed map[types.Digest]bool // by certificate digest
	// lastLeaderRound is the highest leader round already committed.
	lastLeaderRound types.Round
}

// NewCommitter builds a committer for one epoch's store.
func NewCommitter(store *dag.Store, n int) *Committer {
	return NewCommitterAt(store, n, 0)
}

// NewCommitterAt builds a committer that treats every leader round ≤
// seed as already committed — the mid-epoch snapshot install case,
// where the snapshot state already contains those waves' effects. The
// first leader Advance considers is the first leader round above
// seed; waves it re-derives between seed and the snapshot position
// deduplicate against restored state exactly like a WAL-restart
// replay. seed 0 is an ordinary epoch committer.
func NewCommitterAt(store *dag.Store, n int, seed types.Round) *Committer {
	return &Committer{
		store:           store,
		n:               n,
		f:               crypto.FaultBound(n),
		committed:       make(map[types.Digest]bool),
		lastLeaderRound: seed,
	}
}

// Committed reports whether the vertex with certificate digest d has
// been committed.
func (c *Committer) Committed(d types.Digest) bool { return c.committed[d] }

// Forget drops commit bookkeeping for vertices the DAG store has
// pruned (committed-wave GC). Once a vertex is out of the store no
// linearization can reach it, so its committed flag is dead weight;
// forgetting it keeps the map's size proportional to the retention
// horizon instead of the epoch's full history.
func (c *Committer) Forget(ds []types.Digest) {
	for _, d := range ds {
		delete(c.committed, d)
	}
}

// CommittedLen returns the number of retained committed-vertex flags
// (observability for GC tests).
func (c *Committer) CommittedLen() int { return len(c.committed) }

// LastLeaderRound returns the highest committed leader round.
func (c *Committer) LastLeaderRound() types.Round { return c.lastLeaderRound }

// Advance re-evaluates the commit rule after new vertices landed in
// the store, returning zero or more commit waves in order.
//
// When a leader gains f+1 support, earlier uncommitted leaders are
// resolved by the anchor-chain walk (as in DAG-Rider/Bullshark): step
// backward one leader round at a time, committing a leader iff it is
// in the causal history of the current anchor and skipping it forever
// otherwise. The chain is a pure graph property, so every replica
// derives the same committed-leader sequence no matter when support
// became visible locally. (The naive alternative — committing every
// uncommitted leader found in the new leader's history — orders a
// support-committed leader and a history-committed leader differently
// across replicas; the chaos suite's asymmetric-loss scenario caught
// exactly that divergence.) A skipped leader's own vertex still
// commits through the first committed wave whose closure contains it.
func (c *Committer) Advance() []CommitWave {
	var waves []CommitWave
	hi := c.store.HighestRound()
	for r := c.lastLeaderRound + 1; r+1 <= hi; r++ {
		if !LeaderRound(r) {
			continue
		}
		leader, ok := c.store.Get(r, LeaderOf(c.store.Epoch(), r, c.n))
		if !ok {
			// Leader missing: it can never commit directly, and any
			// support it has guarantees it will join the chain of a
			// later leader; keep scanning.
			continue
		}
		if c.committed[leader.Cert.Digest()] {
			c.lastLeaderRound = r
			continue
		}
		if c.store.SupportFor(leader) < c.f+1 {
			continue
		}
		// Anchor chain: walk leader rounds backward; a leader joins
		// the chain iff the current anchor causally references it.
		chain := []*dag.Vertex{leader}
		anchor := leader
		for j := r; j > c.lastLeaderRound+2; {
			j -= 2
			lv, ok := c.store.Get(j, LeaderOf(c.store.Epoch(), j, c.n))
			if !ok || c.committed[lv.Cert.Digest()] {
				continue
			}
			if c.store.InCausalHistory(anchor, lv) {
				chain = append(chain, lv)
				anchor = lv
			}
		}
		for i := len(chain) - 1; i >= 0; i-- {
			waves = append(waves, c.commitLeader(chain[i]))
		}
		c.lastLeaderRound = r
	}
	return waves
}

// PredictWave linearizes what commitLeader would commit for leader if
// it were the next anchor, treating digests accepted by claimed as
// already committed, without marking anything — the speculative
// execution prediction. The caller supplies claimed to cover waves it
// has predicted but not yet committed, so stacked predictions compose
// exactly like consecutive commits. Linearize is stable once a vertex
// is in the store (ancestors insert first), so the prediction for a
// leader can only be wrong when the anchor-chain walk later routes an
// intervening leader in front of it — the misprediction case the
// speculation layer detects by comparing vertex lists at commit time.
func (c *Committer) PredictWave(leader *dag.Vertex, claimed func(types.Digest) bool) CommitWave {
	vs := c.store.Linearize(leader, func(d types.Digest) bool { return c.committed[d] || claimed(d) })
	return CommitWave{Leader: leader, Vertices: vs}
}

// commitLeader linearizes one leader's uncommitted causal history.
func (c *Committer) commitLeader(leader *dag.Vertex) CommitWave {
	vs := c.store.Linearize(leader, func(d types.Digest) bool { return c.committed[d] })
	for _, v := range vs {
		c.committed[v.Cert.Digest()] = true
	}
	return CommitWave{Leader: leader, Vertices: vs}
}
