package types

import (
	"sync"
	"sync/atomic"
)

// String interning for the hot decode paths. SmallBank-shaped traffic
// re-decodes the same small key universe (account checking/savings
// cells, contract names) thousands of times per block: without
// interning every RWRecord key and contract name is a fresh string
// allocation pinning its block's arrival buffer. The table trades one
// lookup for those allocations — a hit returns the one canonical
// string, so repeated keys across blocks share storage and the decode
// allocation count stops scaling with the read/write-set size.
//
// The table is a plain bounded map: entries are never evicted, and
// once full, misses fall back to a private copy. That bound (64k
// entries × ≤64 bytes) caps the memory an adversarial key stream can
// pin at ~4 MiB while keeping the common case — a stable hot key set
// — allocation-free after warmup.

const (
	// maxInternLen bounds the byte length of interned strings; longer
	// ones are copied per use (they are not "hot keys").
	maxInternLen = 64
	// maxInternEntries bounds the table population.
	maxInternEntries = 1 << 16
)

// The table is copy-on-write: the hit path — the steady state once
// the hot key set has warmed up — is one atomic pointer load plus a
// plain map index, which the compiler performs without materializing
// string(b) and without any lock. Misses insert under a mutex into a
// small pending map that is merged into a fresh frozen map every
// internMergeBatch inserts, so warmup costs O(n²/batch) copies total
// (milliseconds for realistic key sets) and the read path never sees
// a map being written.
var (
	internFrozen   atomic.Pointer[map[string]string]
	internMu       sync.Mutex
	internWarm     = make(map[string]string)
	internWarmHits int
)

// internMergeBatch is how many pending inserts — or repeat lookups of
// pending keys — accumulate before the frozen map is rebuilt. The
// second trigger promotes a hot tail that would otherwise sit below
// the insert threshold forever, paying the mutex path per lookup.
const internMergeBatch = 64

// Intern returns the canonical string for b, copying at most once per
// distinct value for the lifetime of the process (within the table
// bounds). The returned string never aliases b.
func Intern(b []byte) string {
	if len(b) == 0 || len(b) > maxInternLen {
		return string(b)
	}
	frozen := internFrozen.Load()
	if frozen != nil {
		if s, ok := (*frozen)[string(b)]; ok { // compiler-optimized: no allocation
			return s
		}
	}
	s := string(b)
	internMu.Lock()
	defer internMu.Unlock()
	if cur, ok := internWarm[s]; ok {
		internWarmHits++
		if internWarmHits >= internMergeBatch {
			internMergeLocked()
		}
		return cur
	}
	// Re-read under the lock: a concurrent merge may have promoted it.
	if cur := internFrozen.Load(); cur != frozen {
		if v, ok := (*cur)[s]; ok {
			return v
		}
	}
	frozen = internFrozen.Load()
	total := len(internWarm)
	if frozen != nil {
		total += len(*frozen)
	}
	if total >= maxInternEntries {
		return s
	}
	internWarm[s] = s
	if len(internWarm) >= internMergeBatch {
		internMergeLocked()
	}
	return s
}

// internMergeLocked rebuilds the frozen map from frozen ∪ warm.
// Callers hold internMu.
func internMergeLocked() {
	frozen := internFrozen.Load()
	total := len(internWarm)
	if frozen != nil {
		total += len(*frozen)
	}
	merged := make(map[string]string, total)
	if frozen != nil {
		for k, v := range *frozen {
			merged[k] = v
		}
	}
	for k, v := range internWarm {
		merged[k] = v
	}
	internFrozen.Store(&merged)
	internWarm = make(map[string]string)
	internWarmHits = 0
}

// InternStr reads a length-prefixed string through the intern table —
// the decode-path twin of Str for fields drawn from a small hot set
// (storage keys, contract names).
func (d *Decoder) InternStr() string { return Intern(d.view()) }
