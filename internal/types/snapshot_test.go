package types

import (
	"testing"
)

func testSnapshot() *Snapshot {
	s := &Snapshot{
		Epoch: 3, N: 4, PrevEpoch: 2, EndRound: 41, Commits: 1234,
		Ledger: []RWRecord{
			{Key: "c:acct000001", Value: Value("100")},
			{Key: "c:acct000002", Value: Value("250")},
			{Key: "s:acct000001", Value: Value("7")},
		},
		Applied: []Digest{
			HashBytes([]byte("a")),
			HashBytes([]byte("b")),
			HashBytes([]byte("c")),
		},
	}
	SortLedger(s.Ledger)
	SortDigests(s.Applied)
	return s
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := testSnapshot()
	b, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := got.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if got.Epoch != s.Epoch || got.N != s.N || got.PrevEpoch != s.PrevEpoch ||
		got.EndRound != s.EndRound || got.Commits != s.Commits {
		t.Fatalf("header mismatch: %+v vs %+v", got, s)
	}
	if len(got.Ledger) != len(s.Ledger) || len(got.Applied) != len(s.Applied) {
		t.Fatalf("body length mismatch")
	}
	for i := range s.Ledger {
		if got.Ledger[i].Key != s.Ledger[i].Key || !got.Ledger[i].Value.Equal(s.Ledger[i].Value) {
			t.Fatalf("ledger[%d] mismatch", i)
		}
	}
	for i := range s.Applied {
		if got.Applied[i] != s.Applied[i] {
			t.Fatalf("applied[%d] mismatch", i)
		}
	}
	if got.Digest() != s.Digest() {
		t.Fatal("digest not stable across encode/decode")
	}
	if !got.Canonical() {
		t.Fatal("round-tripped snapshot not canonical")
	}
}

func TestSnapshotDigestBindsContent(t *testing.T) {
	base := testSnapshot().Digest()
	mutations := []func(*Snapshot){
		func(s *Snapshot) { s.Epoch++ },
		func(s *Snapshot) { s.N++ },
		func(s *Snapshot) { s.PrevEpoch++ },
		func(s *Snapshot) { s.EndRound++ },
		func(s *Snapshot) { s.Commits++ },
		func(s *Snapshot) { s.Ledger[0].Value = Value("999") },
		func(s *Snapshot) { s.Applied[0][0] ^= 1 },
		func(s *Snapshot) { s.Applied = s.Applied[:len(s.Applied)-1] },
	}
	for i, mut := range mutations {
		s := testSnapshot()
		mut(s)
		if s.Digest() == base {
			t.Errorf("mutation %d did not change the digest", i)
		}
	}
}

func TestSnapshotCanonical(t *testing.T) {
	s := testSnapshot()
	if !s.Canonical() {
		t.Fatal("sorted snapshot should be canonical")
	}
	bad := testSnapshot()
	bad.Ledger[0], bad.Ledger[1] = bad.Ledger[1], bad.Ledger[0]
	if bad.Canonical() {
		t.Fatal("unsorted ledger accepted as canonical")
	}
	dup := testSnapshot()
	dup.Applied[1] = dup.Applied[0]
	if dup.Canonical() {
		t.Fatal("duplicate applied IDs accepted as canonical")
	}
}

func TestSnapshotRejectsTruncation(t *testing.T) {
	b, _ := testSnapshot().MarshalBinary()
	for _, cut := range []int{1, len(b) / 2, len(b) - 1} {
		var s Snapshot
		if err := s.UnmarshalBinary(b[:cut]); err == nil {
			t.Errorf("truncation at %d decoded cleanly", cut)
		}
	}
}
