package types

import (
	"testing"
)

func testSnapshot() *Snapshot {
	s := &Snapshot{
		Epoch: 3, N: 4, PrevEpoch: 2, EndRound: 41, Commits: 1234,
		Ledger: []RWRecord{
			{Key: "c:acct000001", Value: Value("100")},
			{Key: "c:acct000002", Value: Value("250")},
			{Key: "s:acct000001", Value: Value("7")},
		},
		DedupWindow: 128,
		LegacyCap:   4096,
		Sessions: []ClientSession{
			{Client: 1, Floor: 17, Bits: []uint64{0b1010, 0}},
			{Client: 9, Floor: 3, Bits: []uint64{0, 1 << 63}},
		},
		// Legacy digest-window contents, ring order (oldest first) —
		// order-significant, not sorted.
		Applied: []Digest{
			HashBytes([]byte("c")),
			HashBytes([]byte("a")),
			HashBytes([]byte("b")),
		},
	}
	SortLedger(s.Ledger)
	s.BuildChunks(2) // three records → two chunks
	return s
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := testSnapshot()
	b, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := got.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if got.Epoch != s.Epoch || got.N != s.N || got.PrevEpoch != s.PrevEpoch ||
		got.EndRound != s.EndRound || got.Commits != s.Commits ||
		got.DedupWindow != s.DedupWindow || got.LegacyCap != s.LegacyCap {
		t.Fatalf("header mismatch: %+v vs %+v", got, s)
	}
	if len(got.Ledger) != len(s.Ledger) || len(got.Applied) != len(s.Applied) ||
		len(got.Sessions) != len(s.Sessions) {
		t.Fatalf("body length mismatch")
	}
	for i := range s.Ledger {
		if got.Ledger[i].Key != s.Ledger[i].Key || !got.Ledger[i].Value.Equal(s.Ledger[i].Value) {
			t.Fatalf("ledger[%d] mismatch", i)
		}
	}
	for i := range s.Sessions {
		if got.Sessions[i].Client != s.Sessions[i].Client || got.Sessions[i].Floor != s.Sessions[i].Floor {
			t.Fatalf("sessions[%d] mismatch", i)
		}
		for j := range s.Sessions[i].Bits {
			if got.Sessions[i].Bits[j] != s.Sessions[i].Bits[j] {
				t.Fatalf("sessions[%d].bits[%d] mismatch", i, j)
			}
		}
	}
	for i := range s.Applied {
		if got.Applied[i] != s.Applied[i] {
			t.Fatalf("applied[%d] mismatch (ring order must survive)", i)
		}
	}
	if got.Digest() != s.Digest() {
		t.Fatal("digest not stable across encode/decode")
	}
	if !got.Canonical() {
		t.Fatal("round-tripped snapshot not canonical")
	}
}

func TestSnapshotDigestBindsContent(t *testing.T) {
	base := testSnapshot().Digest()
	mutations := []func(*Snapshot){
		func(s *Snapshot) { s.Epoch++ },
		func(s *Snapshot) { s.N++ },
		func(s *Snapshot) { s.PrevEpoch++ },
		func(s *Snapshot) { s.EndRound++ },
		func(s *Snapshot) { s.Commits++ },
		// The digest covers the manifest, not the raw records, so a
		// ledger edit surfaces through the rebuilt chunk digests.
		func(s *Snapshot) { s.Ledger[0].Value = Value("999"); s.BuildChunks(s.ChunkSize) },
		func(s *Snapshot) { s.ChunkSize *= 2 },
		func(s *Snapshot) { s.RecordCount++ },
		func(s *Snapshot) { s.ChunkDigests[0][0] ^= 1 },
		func(s *Snapshot) { s.ChunkDigests[0], s.ChunkDigests[1] = s.ChunkDigests[1], s.ChunkDigests[0] },
		func(s *Snapshot) { s.DedupWindow *= 2 },
		func(s *Snapshot) { s.LegacyCap-- },
		func(s *Snapshot) { s.Sessions[0].Floor++ },
		func(s *Snapshot) { s.Sessions[1].Bits[1] ^= 1 },
		func(s *Snapshot) { s.Applied[0][0] ^= 1 },
		func(s *Snapshot) { s.Applied = s.Applied[:len(s.Applied)-1] },
		// Ring order is state (it encodes eviction order): swapping
		// two entries must change the digest.
		func(s *Snapshot) { s.Applied[0], s.Applied[1] = s.Applied[1], s.Applied[0] },
	}
	for i, mut := range mutations {
		s := testSnapshot()
		mut(s)
		if s.Digest() == base {
			t.Errorf("mutation %d did not change the digest", i)
		}
	}
}

func TestSnapshotCanonical(t *testing.T) {
	s := testSnapshot()
	if !s.Canonical() {
		t.Fatal("well-formed snapshot should be canonical")
	}
	bad := testSnapshot()
	bad.Ledger[0], bad.Ledger[1] = bad.Ledger[1], bad.Ledger[0]
	if bad.Canonical() {
		t.Fatal("unsorted ledger accepted as canonical")
	}
	unsorted := testSnapshot()
	unsorted.Sessions[0], unsorted.Sessions[1] = unsorted.Sessions[1], unsorted.Sessions[0]
	if unsorted.Canonical() {
		t.Fatal("unsorted sessions accepted as canonical")
	}
	wrongBits := testSnapshot()
	wrongBits.Sessions[0].Bits = wrongBits.Sessions[0].Bits[:1]
	if wrongBits.Canonical() {
		t.Fatal("bitmap shorter than the window accepted as canonical")
	}
	overflow := testSnapshot()
	overflow.LegacyCap = 2 // three applied entries claim a cap of two
	if overflow.Canonical() {
		t.Fatal("legacy window above its claimed capacity accepted as canonical")
	}
	badWindow := testSnapshot()
	badWindow.DedupWindow = 100 // not a multiple of 64
	if badWindow.Canonical() {
		t.Fatal("non-multiple-of-64 window accepted as canonical")
	}
	noChunk := testSnapshot()
	noChunk.ChunkSize = 0
	if noChunk.Canonical() {
		t.Fatal("zero chunk size accepted as canonical")
	}
	wrongChunks := testSnapshot()
	wrongChunks.ChunkDigests = wrongChunks.ChunkDigests[:1]
	if wrongChunks.Canonical() {
		t.Fatal("chunk count disagreeing with record count accepted as canonical")
	}
	shortBody := testSnapshot()
	shortBody.Ledger = shortBody.Ledger[:1] // partial body: neither manifest nor monolith
	if shortBody.Canonical() {
		t.Fatal("partial ledger body accepted as canonical")
	}
}

func TestSnapshotRejectsTruncation(t *testing.T) {
	b, _ := testSnapshot().MarshalBinary()
	for _, cut := range []int{1, len(b) / 2, len(b) - 1} {
		var s Snapshot
		if err := s.UnmarshalBinary(b[:cut]); err == nil {
			t.Errorf("truncation at %d decoded cleanly", cut)
		}
	}
}
