package types

import "fmt"

// DefaultChunkRecords is the default number of ledger records per
// snapshot chunk. At ~50 bytes per account cell this puts a chunk in
// the low hundreds of KB — large enough that manifest overhead is
// noise, small enough that one lost or corrupt chunk is a cheap
// re-request.
const DefaultChunkRecords = 4096

// EncodeChunk returns the canonical encoding of one snapshot chunk: a
// count-prefixed run of ledger records in ascending key order. The
// chunk digest is HashBytes of exactly these bytes, so a chunk
// verifies against its manifest entry without any surrounding context.
func EncodeChunk(recs []RWRecord) []byte {
	e := GetEncoder()
	defer PutEncoder(e)
	encodeRecords(e, recs)
	return e.Detach()
}

// DecodeChunk decodes a chunk payload produced by EncodeChunk.
func DecodeChunk(b []byte) ([]RWRecord, error) {
	d := NewDecoder(b)
	recs := decodeRecords(d)
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return recs, nil
}

// MerkleFold folds a list of chunk digests into a single root by
// pairwise hashing; an odd tail digest is promoted unchanged. The
// snapshot digest commits to both the fold and the chunk count, so
// the tree shape is fixed and promotion introduces no ambiguity. An
// empty list folds to HashBytes(nil).
func MerkleFold(ds []Digest) Digest {
	if len(ds) == 0 {
		return HashBytes(nil)
	}
	level := append([]Digest(nil), ds...)
	var pair [64]byte
	for len(level) > 1 {
		next := level[:0]
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				next = append(next, level[i])
				break
			}
			copy(pair[:32], level[i][:])
			copy(pair[32:], level[i+1][:])
			next = append(next, HashBytes(pair[:]))
		}
		level = next
	}
	return level[0]
}

// ChunkBuilder turns a key-ordered record stream into fixed-size
// encoded chunks plus their digests, one chunk in memory at a time —
// capture never materializes the full ledger for large states. Values
// are cloned on Add, so the stream may alias storage internals.
//
// When keepLimit ≥ 0 the builder additionally retains the decoded
// records until the stream exceeds that many, then drops them: the
// caller learns for free whether the ledger is small enough for the
// monolithic snapshot path, and gets the records if so.
type ChunkBuilder struct {
	size    int
	keep    bool
	limit   int
	buf     []RWRecord
	records []RWRecord
	chunks  [][]byte
	digests []Digest
	count   int
}

// NewChunkBuilder returns a builder cutting chunks of size records.
// keepLimit < 0 disables record retention.
func NewChunkBuilder(size, keepLimit int) *ChunkBuilder {
	if size <= 0 {
		size = DefaultChunkRecords
	}
	return &ChunkBuilder{size: size, keep: keepLimit >= 0, limit: keepLimit}
}

// Add appends one record to the stream. Keys must arrive in strictly
// ascending order (the builder trusts its caller; honest captures
// stream from a sorted index).
func (b *ChunkBuilder) Add(k Key, v Value) {
	b.buf = append(b.buf, RWRecord{Key: k, Value: v.Clone()})
	b.count++
	if b.keep {
		if b.count > b.limit {
			b.keep = false
			b.records = nil
		} else {
			b.records = append(b.records, b.buf[len(b.buf)-1])
		}
	}
	if len(b.buf) == b.size {
		b.flush()
	}
}

func (b *ChunkBuilder) flush() {
	if len(b.buf) == 0 {
		return
	}
	enc := EncodeChunk(b.buf)
	b.chunks = append(b.chunks, enc)
	b.digests = append(b.digests, HashBytes(enc))
	b.buf = b.buf[:0]
}

// Finish flushes the tail chunk and returns the encoded chunks, their
// digests, the retained records (nil when the stream exceeded
// keepLimit), and the total record count.
func (b *ChunkBuilder) Finish() (chunks [][]byte, digests []Digest, records []RWRecord, count int) {
	b.flush()
	return b.chunks, b.digests, b.records, b.count
}

// BuildChunks (re)derives the snapshot's chunk manifest — ChunkSize,
// RecordCount, ChunkDigests — from its in-memory Ledger, and returns
// the encoded chunk payloads. size == 0 selects DefaultChunkRecords.
// The digest cache is invalidated: the manifest is part of the digest.
func (s *Snapshot) BuildChunks(size uint32) [][]byte {
	if size == 0 {
		size = DefaultChunkRecords
	}
	cb := NewChunkBuilder(int(size), -1)
	for _, r := range s.Ledger {
		cb.Add(r.Key, r.Value)
	}
	chunks, digests, _, count := cb.Finish()
	s.ChunkSize = size
	s.RecordCount = uint64(count)
	s.ChunkDigests = digests
	s.digOK = false
	return chunks
}

// chunkRecords returns how many records chunk i must carry: ChunkSize
// for every chunk but a shorter final one.
func (s *Snapshot) chunkRecords(i int) int {
	want := s.RecordCount - uint64(i)*uint64(s.ChunkSize)
	if want > uint64(s.ChunkSize) {
		want = uint64(s.ChunkSize)
	}
	return int(want)
}

// VerifyChunk checks one fetched chunk payload against the manifest —
// digest match, clean decode, exact record count, ascending keys —
// and returns its records. Any failure means the payload is not the
// chunk the f+1-authenticated manifest committed to, whoever sent it.
func (s *Snapshot) VerifyChunk(i int, payload []byte) ([]RWRecord, error) {
	if i < 0 || i >= len(s.ChunkDigests) {
		return nil, fmt.Errorf("types: chunk index %d out of range (%d chunks)", i, len(s.ChunkDigests))
	}
	if HashBytes(payload) != s.ChunkDigests[i] {
		return nil, fmt.Errorf("types: chunk %d digest mismatch", i)
	}
	recs, err := DecodeChunk(payload)
	if err != nil {
		return nil, fmt.Errorf("types: chunk %d: %w", i, err)
	}
	if len(recs) != s.chunkRecords(i) {
		return nil, fmt.Errorf("types: chunk %d carries %d records, manifest says %d", i, len(recs), s.chunkRecords(i))
	}
	for j := 1; j < len(recs); j++ {
		if recs[j-1].Key >= recs[j].Key {
			return nil, fmt.Errorf("types: chunk %d keys not strictly ascending", i)
		}
	}
	return recs, nil
}

// VerifyLedger reports whether the in-memory Ledger re-chunks to
// exactly the manifest's digests — the check that keeps the
// monolithic path honest now that the snapshot digest covers the
// manifest rather than the raw records: a server cannot pair a valid
// manifest with a forged ledger body.
func (s *Snapshot) VerifyLedger() bool {
	if s.ChunkSize == 0 || uint64(len(s.Ledger)) != s.RecordCount {
		return false
	}
	cb := NewChunkBuilder(int(s.ChunkSize), -1)
	for _, r := range s.Ledger {
		cb.Add(r.Key, r.Value)
	}
	_, digests, _, _ := cb.Finish()
	if len(digests) != len(s.ChunkDigests) {
		return false
	}
	for i, d := range digests {
		if d != s.ChunkDigests[i] {
			return false
		}
	}
	return true
}

// Complete reports whether the snapshot carries its full ledger body
// (the monolithic form) rather than being a manifest awaiting chunk
// fetch.
func (s *Snapshot) Complete() bool {
	return uint64(len(s.Ledger)) == s.RecordCount
}

// Manifest returns a copy of s without the raw ledger records — the
// form served to chunk fetchers. The digest is unchanged by
// construction: it covers the manifest, never the record bodies.
func (s *Snapshot) Manifest() *Snapshot {
	m := *s
	m.Ledger = nil
	return &m
}
