package types

import "time"

// BlockKind tags the role a DAG vertex plays.
type BlockKind uint8

const (
	// NormalBlock carries transactions and preplay results.
	NormalBlock BlockKind = iota + 1
	// SkipBlock keeps the DAG advancing while the proposer waits for
	// conflicting cross-shard transactions to finalize (paper §5.4).
	SkipBlock
	// ShiftBlock votes for a shard reconfiguration (paper §6). Once
	// 2f+1 Shift blocks appear in a committed causal history, every
	// replica transitions to a new DAG at the same ending round.
	ShiftBlock
)

func (k BlockKind) String() string {
	switch k {
	case NormalBlock:
		return "normal"
	case SkipBlock:
		return "skip"
	case ShiftBlock:
		return "shift"
	default:
		return "invalid"
	}
}

// Block is the data payload of one DAG vertex: the transactions a
// shard proposer contributes in one round, plus references (by
// certificate digest) to at least 2f+1 vertices of the previous round.
type Block struct {
	Epoch    Epoch
	Round    Round
	Proposer ReplicaID
	// Shard is the shard this proposer currently serves; it changes
	// across reconfigurations while Proposer stays fixed.
	Shard ShardID
	Kind  BlockKind

	// Parents are digests of certificates from round Round-1 (empty
	// only in round 1 of an epoch).
	Parents []Digest

	// SingleTxs are preplayed single-shard transactions; Results holds
	// their preplay outcomes, aligned by index.
	SingleTxs []*Transaction
	Results   []TxResult

	// CrossTxs are cross-shard transactions submitted directly to the
	// DAG (rule P1), in proposal order.
	CrossTxs []*Transaction

	// ProposedUnixNano timestamps block creation for metrics. It is
	// part of the digest (a block is a unique proposal event).
	ProposedUnixNano int64

	// Stamps carries this replica's local pipeline timestamps, set as
	// the block moves propose→certify→commit; the per-stage commit-path
	// histograms read them at execution. Purely local observability
	// state: like the digest cache below it is invisible to the codec
	// and the digest, reset on decode, and never crosses the wire — two
	// replicas hold independent stamps for the same block.
	Stamps BlockStamps

	// dig caches the content digest. Blocks are immutable once built
	// (propose fills them before the first Digest call; decode resets
	// the cache) and owned by one goroutine at a time, so the cache is
	// unsynchronized like the rest of the protocol state. The cache is
	// invisible to the codec but visible to reflect.DeepEqual —
	// compare blocks by Digest or marshalled bytes, not reflection.
	dig   Digest
	digOK bool
}

// BlockStamps are one replica's local stage timestamps for a block:
// Seen is when the replica first tracked it (its own propose time, or
// first receipt off the wire — both happen within the broadcast the
// proposer fires at creation), Certified when the certified vertex
// entered the local DAG. Both read from the same local clock, so stage
// durations never mix clocks across machines.
type BlockStamps struct {
	Seen      time.Time
	Certified time.Time
}

// Digest returns the canonical content address of the block, computed
// once and cached (the node re-derives a proposal's digest on every
// vote, DAG insertion, and equivocation check).
func (b *Block) Digest() Digest {
	if !b.digOK {
		e := GetEncoder()
		b.encode(e)
		b.dig = HashBytes(e.Sum())
		PutEncoder(e)
		b.digOK = true
	}
	return b.dig
}

// encode appends the block's canonical wire form. Nested transaction
// and result encodings share the block's buffer; the bytes are
// identical to the historical per-field Bytes() framing.
func (b *Block) encode(e *Encoder) {
	e.U64(uint64(b.Epoch))
	e.U64(uint64(b.Round))
	e.U32(uint32(b.Proposer))
	e.U32(uint32(b.Shard))
	e.U8(uint8(b.Kind))
	e.U32(uint32(len(b.Parents)))
	for _, p := range b.Parents {
		e.Digest(p)
	}
	e.U32(uint32(len(b.SingleTxs)))
	for _, tx := range b.SingleTxs {
		at := e.BeginLen()
		tx.encode(e)
		e.EndLen(at)
	}
	e.U32(uint32(len(b.Results)))
	for i := range b.Results {
		at := e.BeginLen()
		b.Results[i].encode(e)
		e.EndLen(at)
	}
	e.U32(uint32(len(b.CrossTxs)))
	for _, tx := range b.CrossTxs {
		at := e.BeginLen()
		tx.encode(e)
		e.EndLen(at)
	}
	e.I64(b.ProposedUnixNano)
}

// MarshalBinary encodes the block canonically.
func (b *Block) MarshalBinary() ([]byte, error) {
	e := GetEncoder()
	defer PutEncoder(e)
	b.encode(e)
	return e.Detach(), nil
}

// UnmarshalBinary decodes a block encoded by MarshalBinary. The
// payload is copied once up front; every nested transaction, result,
// and record then decodes by slicing that one buffer instead of
// copying field by field (the receive path's dominant allocation cost
// — see BenchmarkBlockDecode). The block and its transactions alias
// the copy for their lifetime, which matches how long the node
// retains a received block anyway.
func (b *Block) UnmarshalBinary(data []byte) error {
	return b.unmarshalFrom(append([]byte(nil), data...))
}

// UnmarshalBinaryOwned decodes like UnmarshalBinary but takes
// ownership of data: the block and its transactions alias data
// directly instead of copying it first. Receive paths hand over
// delivered message buffers they never touch again, so the
// UnmarshalBinary copy there only doubled the transport's own
// per-delivery clone.
func (b *Block) UnmarshalBinaryOwned(data []byte) error {
	return b.unmarshalFrom(data)
}

func (b *Block) unmarshalFrom(data []byte) error {
	b.digOK = false
	b.Stamps = BlockStamps{}
	d := NewSharedDecoder(data)
	b.Epoch = Epoch(d.U64())
	b.Round = Round(d.U64())
	b.Proposer = ReplicaID(d.U32())
	b.Shard = ShardID(d.U32())
	b.Kind = BlockKind(d.U8())
	np := d.U32()
	b.Parents = make([]Digest, 0, min(int(np), 4096))
	for i := uint32(0); i < np && d.Err() == nil; i++ {
		b.Parents = append(b.Parents, d.Digest())
	}
	// Transactions decode into one arena per list and results share one
	// record arena: a per-transaction box and two per-result record
	// slices made block decode the receive path's heaviest allocator.
	ns := d.U32()
	singles := make([]Transaction, 0, min(int(ns), 4096))
	argArena := make([][]byte, 0, 3*min(int(ns), 4096))
	for i := uint32(0); i < ns && d.Err() == nil; i++ {
		var tx Transaction
		sub := d.sub()
		if err := tx.decodeBodyArena(&sub, &argArena); err != nil {
			return err
		}
		singles = append(singles, tx)
	}
	b.SingleTxs = make([]*Transaction, len(singles))
	for i := range singles {
		b.SingleTxs[i] = &singles[i]
	}
	nr := d.U32()
	b.Results = make([]TxResult, 0, min(int(nr), 4096))
	recArena := make([]RWRecord, 0, 4*min(int(nr), 4096))
	for i := uint32(0); i < nr && d.Err() == nil; i++ {
		var r TxResult
		sub := d.sub()
		if err := r.decodeBodyArena(&sub, &recArena); err != nil {
			return err
		}
		b.Results = append(b.Results, r)
	}
	nc := d.U32()
	crosses := make([]Transaction, 0, min(int(nc), 4096))
	for i := uint32(0); i < nc && d.Err() == nil; i++ {
		var tx Transaction
		sub := d.sub()
		if err := tx.decodeBodyArena(&sub, &argArena); err != nil {
			return err
		}
		crosses = append(crosses, tx)
	}
	b.CrossTxs = make([]*Transaction, len(crosses))
	for i := range crosses {
		b.CrossTxs[i] = &crosses[i]
	}
	b.ProposedUnixNano = d.I64()
	return d.Finish()
}

// Signature is a signature over a block digest by one replica.
type Signature struct {
	Signer ReplicaID
	Sig    []byte
}

// Certificate proves that 2f+1 replicas vouched for a block. It is the
// unit referenced by Parents in the next round: linking to a
// certificate transitively guarantees availability of the block and
// its whole causal history.
type Certificate struct {
	BlockDigest Digest
	Epoch       Epoch
	Round       Round
	Proposer    ReplicaID
	Sigs        []Signature

	// dig caches the identity digest (see Block.dig for the ownership
	// discipline).
	dig   Digest
	digOK bool
}

// Digest returns the content address of the certificate, computed
// once and cached — the DAG layer re-derives it on every parent
// lookup, support count, and causal walk. Signatures are excluded:
// any 2f+1 quorum over the same block yields the same certificate
// identity, so replicas assembling different quorums still agree on
// parent references.
func (c *Certificate) Digest() Digest {
	if !c.digOK {
		e := GetEncoder()
		e.Digest(c.BlockDigest)
		e.U64(uint64(c.Epoch))
		e.U64(uint64(c.Round))
		e.U32(uint32(c.Proposer))
		c.dig = HashBytes(e.Sum())
		PutEncoder(e)
		c.digOK = true
	}
	return c.dig
}

// MarshalBinary encodes the certificate.
func (c *Certificate) MarshalBinary() ([]byte, error) {
	e := GetEncoder()
	defer PutEncoder(e)
	e.Digest(c.BlockDigest)
	e.U64(uint64(c.Epoch))
	e.U64(uint64(c.Round))
	e.U32(uint32(c.Proposer))
	e.U32(uint32(len(c.Sigs)))
	for _, s := range c.Sigs {
		e.U32(uint32(s.Signer))
		e.Bytes(s.Sig)
	}
	return e.Detach(), nil
}

// UnmarshalBinary decodes a certificate encoded by MarshalBinary (one
// up-front copy; signatures alias it).
func (c *Certificate) UnmarshalBinary(data []byte) error {
	return c.unmarshalFrom(append([]byte(nil), data...))
}

// UnmarshalBinaryOwned decodes like UnmarshalBinary but aliases data
// (handed over by the caller) instead of copying it.
func (c *Certificate) UnmarshalBinaryOwned(data []byte) error {
	return c.unmarshalFrom(data)
}

func (c *Certificate) unmarshalFrom(data []byte) error {
	c.digOK = false
	d := NewSharedDecoder(data)
	c.BlockDigest = d.Digest()
	c.Epoch = Epoch(d.U64())
	c.Round = Round(d.U64())
	c.Proposer = ReplicaID(d.U32())
	n := d.U32()
	c.Sigs = make([]Signature, 0, min(int(n), 4096))
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		c.Sigs = append(c.Sigs, Signature{Signer: ReplicaID(d.U32()), Sig: d.Bytes()})
	}
	return d.Finish()
}
