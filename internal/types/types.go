// Package types defines the core data model shared by every Thunderbolt
// subsystem: keys and values, transaction operations, transactions,
// DAG blocks and certificates, and their canonical binary encodings.
//
// All encodings are deterministic: two honest replicas computing the
// digest of the same logical object always obtain the same bytes. This
// is load-bearing for the DAG layer, where digests name vertices and
// certificates sign them.
package types

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// Key identifies a datum in the partitioned store. Keys are mapped to
// shards by ShardOf; the mapping is fixed and known to every replica
// (the paper's predefined SIDs).
type Key string

// Value is the uninterpreted payload stored under a Key.
type Value []byte

// Clone returns a copy of v that does not alias its backing array.
func (v Value) Clone() Value {
	if v == nil {
		return nil
	}
	c := make(Value, len(v))
	copy(c, v)
	return c
}

// Equal reports whether two values hold identical bytes. Two nil
// values are equal; nil and empty are also considered equal because
// the store does not distinguish them.
func (v Value) Equal(o Value) bool {
	if len(v) != len(o) {
		return false
	}
	for i := range v {
		if v[i] != o[i] {
			return false
		}
	}
	return true
}

// ShardID names a shard. Thunderbolt assigns exactly one shard per
// replica, so ShardIDs and replica indices share the range [0, n).
type ShardID uint32

// ReplicaID names a replica participating in consensus.
type ReplicaID uint32

// Round is a DAG round number within one DAG epoch.
type Round uint64

// Epoch numbers successive DAGs created by non-blocking reconfiguration.
type Epoch uint64

// Digest is a 32-byte SHA-256 content address.
type Digest [32]byte

// String renders the first 8 bytes of the digest in hex, enough to be
// unambiguous in logs.
func (d Digest) String() string { return hex.EncodeToString(d[:8]) }

// IsZero reports whether d is the all-zero digest.
func (d Digest) IsZero() bool { return d == Digest{} }

// HashBytes computes the SHA-256 digest of b.
func HashBytes(b []byte) Digest { return sha256.Sum256(b) }

// OpType distinguishes the two operations contract code may perform.
type OpType uint8

const (
	// OpRead is <Read, K>: observe the value under K.
	OpRead OpType = iota + 1
	// OpWrite is <Write, K, V>: replace the value under K.
	OpWrite
)

func (t OpType) String() string {
	switch t {
	case OpRead:
		return "R"
	case OpWrite:
		return "W"
	default:
		return fmt.Sprintf("OpType(%d)", uint8(t))
	}
}

// Op records a single data access made by a transaction, together with
// the value observed (for reads) or installed (for writes). Preplay
// emits these records so that validators can replay and check them.
type Op struct {
	Type  OpType
	Key   Key
	Value Value
}

func (o Op) String() string {
	return fmt.Sprintf("(%s,%s,%q)", o.Type, o.Key, string(o.Value))
}

// TxKind separates the two execution models.
type TxKind uint8

const (
	// SingleShard transactions touch keys of exactly one shard and are
	// preplayed by the shard proposer's Concurrent Executor (EOV).
	SingleShard TxKind = iota + 1
	// CrossShard transactions touch several shards and are ordered by
	// consensus before execution (OE).
	CrossShard
)

func (k TxKind) String() string {
	switch k {
	case SingleShard:
		return "single-shard"
	case CrossShard:
		return "cross-shard"
	default:
		return fmt.Sprintf("TxKind(%d)", uint8(k))
	}
}

// Transaction is a client-submitted contract invocation. The contract
// code is opaque: its read/write set is unknown until executed, which
// is the property Thunderbolt's Concurrent Executor exploits.
type Transaction struct {
	// Client identifies the submitting client; Nonce de-duplicates
	// retransmissions from the same client.
	Client uint64
	Nonce  uint64

	// Kind tags the execution model. Proposers may promote a
	// SingleShard transaction to CrossShard (rules P3/P4/P6); the
	// original kind is preserved in OrigKind for accounting.
	Kind     TxKind
	OrigKind TxKind

	// Shards lists every shard the transaction may touch. For
	// SingleShard transactions it has exactly one element. The list is
	// the paper's SID metadata used for parallel cross-shard execution.
	Shards []ShardID

	// Contract names a registered contract; Args are its parameters.
	Contract string
	Args     [][]byte

	// Code optionally carries a VM program instead of a named
	// contract. When non-empty it takes precedence over Contract.
	Code []byte

	// SubmitUnixNano is the client submission time used for latency
	// accounting only; it is excluded from the digest so that
	// retransmissions keep their identity.
	SubmitUnixNano int64

	// id caches the identity digest. Identity fields are immutable
	// after construction (Promote preserves identity by design), and a
	// transaction is owned by one goroutine at a time, so the cache is
	// unsynchronized; decode resets it.
	id   Digest
	idOK bool
}

// ID returns the content digest identifying the transaction, computed
// once and cached (the proposer and commit paths re-derive it on
// every dedup, routing, and applied check). The digest covers
// identity fields only (client, nonce, contract, args, code, shard
// list, original kind) so promotion between kinds and retransmission
// do not change it.
func (tx *Transaction) ID() Digest {
	if tx.idOK {
		return tx.id
	}
	e := GetEncoder()
	e.U64(tx.Client)
	e.U64(tx.Nonce)
	e.U8(uint8(tx.origKind()))
	e.U32(uint32(len(tx.Shards)))
	for _, s := range tx.Shards {
		e.U32(uint32(s))
	}
	e.Str(tx.Contract)
	e.U32(uint32(len(tx.Args)))
	for _, a := range tx.Args {
		e.Bytes(a)
	}
	e.Bytes(tx.Code)
	tx.id = HashBytes(e.Sum())
	PutEncoder(e)
	tx.idOK = true
	return tx.id
}

func (tx *Transaction) origKind() TxKind {
	if tx.OrigKind != 0 {
		return tx.OrigKind
	}
	return tx.Kind
}

// IsCross reports whether the transaction currently follows the
// cross-shard (OE) path.
func (tx *Transaction) IsCross() bool { return tx.Kind == CrossShard }

// Promote converts a single-shard transaction to a cross-shard one
// (rules P3/P4/P6), preserving its identity.
func (tx *Transaction) Promote() {
	if tx.OrigKind == 0 {
		tx.OrigKind = tx.Kind
	}
	tx.Kind = CrossShard
}

// Clone returns an independent copy of the transaction: mutable
// fields (Kind, Shards, the nonce/identity scalars) are copied, while
// Args and Code — immutable once the transaction is built; nothing in
// the pipeline writes through them — are shared with the original.
// Sharing them keeps the proposer's ingest path (which clones every
// accepted submission) at one allocation per transaction instead of
// one per argument.
func (tx *Transaction) Clone() *Transaction {
	c := *tx
	c.Shards = append([]ShardID(nil), tx.Shards...)
	return &c
}

// TouchesShard reports whether shard s appears in the SID list.
func (tx *Transaction) TouchesShard(s ShardID) bool {
	for _, x := range tx.Shards {
		if x == s {
			return true
		}
	}
	return false
}

// SharesShard reports whether the two transactions declare any shard
// in common — the conflict predicate used by rules P3/P4.
func (tx *Transaction) SharesShard(o *Transaction) bool {
	for _, a := range tx.Shards {
		for _, b := range o.Shards {
			if a == b {
				return true
			}
		}
	}
	return false
}

// RWRecord is one observed access inside a preplay result.
type RWRecord struct {
	Key   Key
	Value Value
}

// TxResult is the preplay outcome of one single-shard transaction: the
// read set with observed values, the write set with installed values,
// and the position in the CE's serialized schedule. Validators replay
// the schedule and require every read to reproduce ReadSet.
type TxResult struct {
	TxID        Digest
	ScheduleIdx uint32
	ReadSet     []RWRecord
	WriteSet    []RWRecord
	// Reexecutions counts how many times the CE had to restart the
	// transaction before it committed (abort accounting).
	Reexecutions uint32
}

// ShardMap assigns every key to a shard. The partitioning method is
// orthogonal to the protocol (paper §3.1); we use a stable hash.
type ShardMap struct {
	NumShards uint32
}

// NewShardMap builds a map over n shards. n must be positive.
func NewShardMap(n int) ShardMap {
	if n <= 0 {
		panic("types: shard map needs at least one shard")
	}
	return ShardMap{NumShards: uint32(n)}
}

// ShardOf returns the shard owning key k. The function is a pure
// deterministic hash so every replica agrees without coordination.
func (m ShardMap) ShardOf(k Key) ShardID {
	h := sha256.Sum256([]byte(k))
	return ShardID(binary.BigEndian.Uint32(h[:4]) % m.NumShards)
}
