package types

import (
	"fmt"
	"testing"
)

func chunkedSnapshot(records, chunkSize int) (*Snapshot, [][]byte) {
	s := &Snapshot{
		Epoch: 2, N: 4, PrevEpoch: 2, EndRound: 512, Commits: 9000,
		DedupWindow: 128, LegacyCap: 64,
	}
	for i := 0; i < records; i++ {
		s.Ledger = append(s.Ledger, RWRecord{
			Key:   Key(fmt.Sprintf("c:acct%06d", i)),
			Value: Value(fmt.Sprintf("%d", 1000+i)),
		})
	}
	chunks := s.BuildChunks(uint32(chunkSize))
	return s, chunks
}

func TestChunkManifestRoundTrip(t *testing.T) {
	s, chunks := chunkedSnapshot(10, 4)
	if len(chunks) != 3 || len(s.ChunkDigests) != 3 || s.RecordCount != 10 {
		t.Fatalf("want 3 chunks over 10 records, got %d chunks, count %d", len(chunks), s.RecordCount)
	}
	if !s.Canonical() || !s.Complete() {
		t.Fatal("monolithic form should be canonical and complete")
	}
	m := s.Manifest()
	if m.Digest() != s.Digest() {
		t.Fatal("manifest digest must equal the full snapshot digest")
	}
	b, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := got.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if !got.Canonical() {
		t.Fatal("decoded manifest not canonical")
	}
	if got.Complete() {
		t.Fatal("manifest with pending records claims completeness")
	}
	if got.Digest() != s.Digest() {
		t.Fatal("manifest digest changed across encode/decode")
	}
	// Every chunk verifies against the decoded manifest and the
	// verified records reassemble the original ledger exactly.
	var all []RWRecord
	for i, c := range chunks {
		recs, err := got.VerifyChunk(i, c)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		all = append(all, recs...)
	}
	if len(all) != len(s.Ledger) {
		t.Fatalf("reassembled %d records, want %d", len(all), len(s.Ledger))
	}
	for i := range all {
		if all[i].Key != s.Ledger[i].Key || !all[i].Value.Equal(s.Ledger[i].Value) {
			t.Fatalf("record %d mismatch after reassembly", i)
		}
	}
}

func TestVerifyChunkRejectsForgery(t *testing.T) {
	s, chunks := chunkedSnapshot(10, 4)
	m := s.Manifest()
	if _, err := m.VerifyChunk(0, chunks[1]); err == nil {
		t.Fatal("chunk served under the wrong index verified")
	}
	if _, err := m.VerifyChunk(3, chunks[0]); err == nil {
		t.Fatal("out-of-range index verified")
	}
	bad := append([]byte(nil), chunks[2]...)
	bad[len(bad)-1] ^= 1
	if _, err := m.VerifyChunk(2, bad); err == nil {
		t.Fatal("corrupt payload verified")
	}
	if _, err := m.VerifyChunk(1, chunks[1][:len(chunks[1])-1]); err == nil {
		t.Fatal("truncated payload verified")
	}
}

func TestVerifyLedgerBindsBody(t *testing.T) {
	s, _ := chunkedSnapshot(10, 4)
	if !s.VerifyLedger() {
		t.Fatal("honest ledger body rejected")
	}
	forged, _ := chunkedSnapshot(10, 4)
	forged.Ledger[3].Value = Value("stolen")
	if forged.VerifyLedger() {
		t.Fatal("forged ledger body passed against the manifest")
	}
	short, _ := chunkedSnapshot(10, 4)
	short.Ledger = short.Ledger[:9]
	if short.VerifyLedger() {
		t.Fatal("short ledger body passed against the manifest")
	}
}

func TestMerkleFold(t *testing.T) {
	d := func(tag string) Digest { return HashBytes([]byte(tag)) }
	if MerkleFold(nil) != MerkleFold([]Digest{}) {
		t.Fatal("empty folds disagree")
	}
	even := []Digest{d("a"), d("b"), d("c"), d("d")}
	odd := []Digest{d("a"), d("b"), d("c")}
	if MerkleFold(even) == MerkleFold(odd) {
		t.Fatal("different lengths fold to the same root")
	}
	swapped := []Digest{d("b"), d("a"), d("c"), d("d")}
	if MerkleFold(even) == MerkleFold(swapped) {
		t.Fatal("order does not bind the root")
	}
	mutated := []Digest{d("a"), d("b"), d("c"), d("x")}
	if MerkleFold(even) == MerkleFold(mutated) {
		t.Fatal("content does not bind the root")
	}
	again := []Digest{d("a"), d("b"), d("c"), d("d")}
	if MerkleFold(even) != MerkleFold(again) {
		t.Fatal("fold not deterministic")
	}
}

func TestChunkBuilderStreamsAndKeeps(t *testing.T) {
	s, want := chunkedSnapshot(10, 4)
	// Streaming through the builder must produce bit-identical chunks
	// to BuildChunks over the materialized ledger.
	cb := NewChunkBuilder(4, 5) // keep limit below the stream size
	for _, r := range s.Ledger {
		cb.Add(r.Key, r.Value)
	}
	chunks, digests, records, count := cb.Finish()
	if count != 10 || records != nil {
		t.Fatalf("keep limit 5 over 10 records: records=%v count=%d", records != nil, count)
	}
	if len(chunks) != len(want) {
		t.Fatalf("chunk count %d, want %d", len(chunks), len(want))
	}
	for i := range chunks {
		if string(chunks[i]) != string(want[i]) {
			t.Fatalf("chunk %d bytes differ from BuildChunks", i)
		}
		if digests[i] != s.ChunkDigests[i] {
			t.Fatalf("chunk %d digest differs from manifest", i)
		}
	}
	// Under the limit the records are retained for the monolithic path.
	small := NewChunkBuilder(4, 16)
	for _, r := range s.Ledger {
		small.Add(r.Key, r.Value)
	}
	_, _, kept, _ := small.Finish()
	if len(kept) != 10 {
		t.Fatalf("keep limit 16 over 10 records retained %d", len(kept))
	}
	if kept[0].Key != s.Ledger[0].Key {
		t.Fatal("retained records corrupted")
	}
}
