package types

import (
	"fmt"
	"testing"
)

// benchBlock builds a representative normal block: `txs` single-shard
// transactions with preplay results (two reads + two writes each) and
// a 2f+1 parent list for a 16-replica committee.
func benchBlock(txs int) *Block {
	b := &Block{
		Epoch: 3, Round: 1041, Proposer: 7, Shard: 7, Kind: NormalBlock,
		ProposedUnixNano: 1712345678901234567,
	}
	for i := 0; i < 11; i++ {
		b.Parents = append(b.Parents, HashBytes([]byte{byte(i)}))
	}
	for i := 0; i < txs; i++ {
		tx := &Transaction{
			Client: uint64(i%64 + 1), Nonce: uint64(i),
			Kind: SingleShard, Shards: []ShardID{7},
			Contract: "send_payment",
			Args:     [][]byte{[]byte(fmt.Sprintf("acct-%05d", i)), []byte(fmt.Sprintf("acct-%05d", i+1)), []byte("17")},
		}
		b.SingleTxs = append(b.SingleTxs, tx)
		r := TxResult{TxID: tx.ID(), ScheduleIdx: uint32(i)}
		for j := 0; j < 2; j++ {
			k := Key(fmt.Sprintf("saving_%05d", i+j))
			r.ReadSet = append(r.ReadSet, RWRecord{Key: k, Value: []byte("100000")})
			r.WriteSet = append(r.WriteSet, RWRecord{Key: k, Value: []byte("99983")})
		}
		b.Results = append(b.Results, r)
	}
	return b
}

// BenchmarkBlockEncode measures the proposer's hot encode path: one
// full block serialization per iteration.
func BenchmarkBlockEncode(b *testing.B) {
	for _, txs := range []int{100, 500} {
		b.Run(fmt.Sprintf("txs=%d", txs), func(b *testing.B) {
			blk := benchBlock(txs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := blk.MarshalBinary(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBlockEncodeDigest measures encode plus content hashing —
// the full cost of producing a block digest from scratch.
func BenchmarkBlockEncodeDigest(b *testing.B) {
	for _, txs := range []int{100, 500} {
		b.Run(fmt.Sprintf("txs=%d", txs), func(b *testing.B) {
			blk := benchBlock(txs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				enc, err := blk.MarshalBinary()
				if err != nil {
					b.Fatal(err)
				}
				_ = HashBytes(enc)
			}
		})
	}
}

// BenchmarkBlockDigest measures Block.Digest as the node calls it:
// repeatedly on the same block (DAG insertion, equivocation checks,
// vote handling all re-derive the digest of one proposal).
func BenchmarkBlockDigest(b *testing.B) {
	blk := benchBlock(500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = blk.Digest()
	}
}

// BenchmarkBlockDecode measures the receive path.
func BenchmarkBlockDecode(b *testing.B) {
	enc, err := benchBlock(500).MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var blk Block
		if err := blk.UnmarshalBinary(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTxID measures Transaction.ID as the hot paths call it:
// repeatedly on the same transaction (queue drain, applied checks,
// commit bookkeeping).
func BenchmarkTxID(b *testing.B) {
	tx := benchBlock(1).SingleTxs[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tx.ID()
	}
}

// BenchmarkCertificateDigest measures Certificate.Digest as the DAG
// layer calls it: repeatedly per vertex (parent lists, support
// counting, causal walks).
func BenchmarkCertificateDigest(b *testing.B) {
	c := &Certificate{
		BlockDigest: HashBytes([]byte("blk")), Epoch: 3, Round: 1041, Proposer: 7,
	}
	for i := 0; i < 11; i++ {
		c.Sigs = append(c.Sigs, Signature{Signer: ReplicaID(i), Sig: make([]byte, 64)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Digest()
	}
}
