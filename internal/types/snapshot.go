package types

import (
	"bytes"
	"fmt"
	"sort"
)

// Snapshot is the cross-epoch state-transfer unit: the canonical
// committed state of the cluster at one epoch transition. Every honest
// replica reconfigures at the same position of the deterministic
// committed sequence, so every honest replica captures a bit-identical
// snapshot for the same transition — which is what lets a stranded
// replica authenticate one by collecting f+1 matching digests from
// independent peers instead of trusting any single server.
//
// A replica that missed a reconfiguration (crashed or partitioned
// across it) installs the snapshot as one batched state application
// and joins Epoch directly: peers discarded the previous DAG at the
// transition, so round-by-round replay of the missed history is
// impossible by design (see the GC/epoch recovery contract in the
// README "Recovery" section).
type Snapshot struct {
	// Epoch is the epoch this snapshot admits a replica into — the
	// epoch entered at the transition that captured it. The committee
	// itself is static; per-epoch shard and leader assignments are
	// derived deterministically from Epoch and N.
	Epoch Epoch
	// N is the committee size the snapshot was captured under, binding
	// the digest to the configuration.
	N uint32

	// PrevEpoch and EndRound are the last-commit provenance: the epoch
	// that ended at the transition and its final committed leader
	// round (the wave that completed the Shift quorum).
	PrevEpoch Epoch
	EndRound  Round

	// Commits is the length of the committed-transaction sequence at
	// capture (the commit-log position the first post-snapshot commit
	// will occupy).
	Commits uint64

	// ChunkSize, RecordCount, and ChunkDigests are the chunk manifest:
	// the ledger split into fixed-size key-ordered chunks of ChunkSize
	// records each (a shorter final chunk), RecordCount records in
	// total, with ChunkDigests[i] the content digest of chunk i's
	// canonical encoding (EncodeChunk). The snapshot digest commits to
	// the Merkle fold of these digests rather than the raw records, so
	// the same f+1-signer contract that authenticates a monolithic
	// snapshot authenticates the manifest, and every chunk then
	// verifies independently against its manifest entry.
	ChunkSize    uint32
	RecordCount  uint64
	ChunkDigests []Digest

	// Ledger is the full committed key/value state, in strictly
	// ascending key order. It is populated in the monolithic form
	// (small ledgers shipped as one message) and nil in the manifest
	// form, where the records travel as individually fetched chunks.
	Ledger []RWRecord

	// DedupWindow and LegacyCap bind the digest to the dedup
	// configuration the sessions and applied window were built under
	// (per-client nonce window size and legacy digest-window capacity).
	// Like N, they are part of the committee contract: an installer
	// configured differently would diverge from the committee's dedup
	// evolution and must reject the snapshot. SessionIdleEpochs is the
	// idle-session expiry horizon (0 = expiry off) — same contract:
	// replicas sweeping on different horizons hold different session
	// sets.
	DedupWindow       uint32
	LegacyCap         uint32
	SessionIdleEpochs uint32

	// Sessions is the per-client dedup state resolved by the committed
	// prefix, in strictly ascending client order: each client's
	// applied-nonce floor plus the out-of-order window bitmap above
	// it. This replaces shipping the full applied-transaction set —
	// the snapshot's dedup payload is bounded by clients × window no
	// matter how long the chain has run.
	Sessions []ClientSession

	// Applied holds the legacy digest-window contents — the IDs of
	// resolved transactions that carry no (client, nonce) session — in
	// ring order, oldest first, so installers rebuild the identical
	// bounded window (eviction order included). Its length is bounded
	// by LegacyCap.
	Applied []Digest

	// dig caches the content digest (see Block.dig for the ownership
	// discipline: snapshots are immutable once built, decode resets
	// the cache).
	dig   Digest
	digOK bool
}

// ClientSession is one client's compact dedup state: every nonce ≤
// Floor is resolved, and Bits is the window bitmap over (Floor,
// Floor+window] — bit for nonce n lives at position n mod window
// (absolute addressing, so honestly built bitmaps are bit-identical
// without any rotation bookkeeping). Idle counts consecutive
// epoch-transition sweeps the floor has not moved (the idle-session
// expiry state; always 0 when expiry is off).
type ClientSession struct {
	Client uint64
	Floor  uint64
	Idle   uint32
	Bits   []uint64
}

// SortLedger puts records into the canonical strictly-ascending key
// order builders must emit.
func SortLedger(recs []RWRecord) {
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })
}

// SortDigests puts digests into the canonical strictly-ascending byte
// order builders must emit.
func SortDigests(ds []Digest) {
	sort.Slice(ds, func(i, j int) bool { return bytes.Compare(ds[i][:], ds[j][:]) < 0 })
}

// Canonical reports whether the snapshot is in canonical form: ledger
// keys strictly ascending, sessions strictly ascending by client with
// bitmaps sized to DedupWindow, and the legacy applied window within
// its capacity. Honest builders always emit canonical snapshots;
// receivers reject anything else before counting it toward an install
// quorum, so a malformed or deliberately inflated copy can never
// masquerade as a fresh digest of the same logical state. (The
// Applied ring is order-significant rather than sorted — eviction
// order is state — so its ordering is bound by the digest, not by a
// canonical sort.)
func (s *Snapshot) Canonical() bool {
	for i := 1; i < len(s.Ledger); i++ {
		if s.Ledger[i-1].Key >= s.Ledger[i].Key {
			return false
		}
	}
	if s.ChunkSize == 0 {
		return false
	}
	wantChunks := int((s.RecordCount + uint64(s.ChunkSize) - 1) / uint64(s.ChunkSize))
	if len(s.ChunkDigests) != wantChunks {
		return false
	}
	// A populated ledger body must match the manifest's record count
	// exactly; an empty one is the manifest form (or the empty state).
	if len(s.Ledger) != 0 && uint64(len(s.Ledger)) != s.RecordCount {
		return false
	}
	if s.DedupWindow == 0 || s.DedupWindow%64 != 0 {
		return false
	}
	words := int(s.DedupWindow / 64)
	for i, cs := range s.Sessions {
		if i > 0 && s.Sessions[i-1].Client >= cs.Client {
			return false
		}
		if len(cs.Bits) != words {
			return false
		}
	}
	return len(s.Applied) <= int(s.LegacyCap)
}

// Digest returns the canonical content address of the snapshot,
// computed once and cached. The preimage is the manifest — header,
// chunk geometry, the Merkle fold of the chunk digests, and the dedup
// state — never the raw ledger records: a manifest and the monolithic
// snapshot it describes share one digest, so f+1 signatures collected
// over either authenticate both the whole and every chunk.
func (s *Snapshot) Digest() Digest {
	if !s.digOK {
		e := GetEncoder()
		s.encodeHeader(e)
		e.U32(uint32(len(s.ChunkDigests)))
		e.Digest(MerkleFold(s.ChunkDigests))
		s.encodeDedup(e)
		s.dig = HashBytes(e.Sum())
		PutEncoder(e)
		s.digOK = true
	}
	return s.dig
}

func (s *Snapshot) encodeHeader(e *Encoder) {
	e.U64(uint64(s.Epoch))
	e.U32(s.N)
	e.U64(uint64(s.PrevEpoch))
	e.U64(uint64(s.EndRound))
	e.U64(s.Commits)
	e.U32(s.ChunkSize)
	e.U64(s.RecordCount)
}

func (s *Snapshot) encodeDedup(e *Encoder) {
	e.U32(s.DedupWindow)
	e.U32(s.LegacyCap)
	e.U32(s.SessionIdleEpochs)
	e.U32(uint32(len(s.Sessions)))
	for _, cs := range s.Sessions {
		e.U64(cs.Client)
		e.U64(cs.Floor)
		e.U32(cs.Idle)
		e.U32(uint32(len(cs.Bits)))
		for _, w := range cs.Bits {
			e.U64(w)
		}
	}
	e.U32(uint32(len(s.Applied)))
	for _, d := range s.Applied {
		e.Digest(d)
	}
}

// encode appends the wire form: manifest fields (with the full chunk
// digest list — fetchers need every entry), then the ledger records,
// empty in the manifest form.
func (s *Snapshot) encode(e *Encoder) {
	s.encodeHeader(e)
	e.U32(uint32(len(s.ChunkDigests)))
	for _, d := range s.ChunkDigests {
		e.Digest(d)
	}
	s.encodeDedup(e)
	encodeRecords(e, s.Ledger)
}

// MarshalBinary encodes the snapshot canonically.
func (s *Snapshot) MarshalBinary() ([]byte, error) {
	e := GetEncoder()
	defer PutEncoder(e)
	s.encode(e)
	return e.Detach(), nil
}

// UnmarshalBinary decodes a snapshot encoded by MarshalBinary.
func (s *Snapshot) UnmarshalBinary(b []byte) error {
	s.digOK = false
	d := NewDecoder(b)
	s.Epoch = Epoch(d.U64())
	s.N = d.U32()
	s.PrevEpoch = Epoch(d.U64())
	s.EndRound = Round(d.U64())
	s.Commits = d.U64()
	s.ChunkSize = d.U32()
	s.RecordCount = d.U64()
	nd := d.U32()
	if d.Err() == nil && int(nd) > len(b)/32 {
		return fmt.Errorf("types: implausible chunk count %d", nd)
	}
	s.ChunkDigests = make([]Digest, 0, nd)
	for i := uint32(0); i < nd && d.Err() == nil; i++ {
		s.ChunkDigests = append(s.ChunkDigests, d.Digest())
	}
	s.DedupWindow = d.U32()
	s.LegacyCap = d.U32()
	s.SessionIdleEpochs = d.U32()
	nc := d.U32()
	if d.Err() == nil && int(nc) > len(b)/16 {
		return fmt.Errorf("types: implausible session count %d", nc)
	}
	s.Sessions = make([]ClientSession, 0, nc)
	for i := uint32(0); i < nc && d.Err() == nil; i++ {
		cs := ClientSession{Client: d.U64(), Floor: d.U64(), Idle: d.U32()}
		nw := d.U32()
		if d.Err() == nil && int(nw) > len(b)/8 {
			return fmt.Errorf("types: implausible bitmap length %d", nw)
		}
		cs.Bits = make([]uint64, 0, nw)
		for j := uint32(0); j < nw && d.Err() == nil; j++ {
			cs.Bits = append(cs.Bits, d.U64())
		}
		s.Sessions = append(s.Sessions, cs)
	}
	na := d.U32()
	if d.Err() == nil && int(na) > len(b)/32 {
		return fmt.Errorf("types: implausible applied count %d", na)
	}
	s.Applied = make([]Digest, 0, na)
	for i := uint32(0); i < na && d.Err() == nil; i++ {
		s.Applied = append(s.Applied, d.Digest())
	}
	s.Ledger = decodeRecords(d)
	if len(s.Ledger) == 0 {
		s.Ledger = nil
	}
	return d.Finish()
}
