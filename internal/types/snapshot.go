package types

import (
	"bytes"
	"fmt"
	"sort"
)

// Snapshot is the cross-epoch state-transfer unit: the canonical
// committed state of the cluster at one epoch transition. Every honest
// replica reconfigures at the same position of the deterministic
// committed sequence, so every honest replica captures a bit-identical
// snapshot for the same transition — which is what lets a stranded
// replica authenticate one by collecting f+1 matching digests from
// independent peers instead of trusting any single server.
//
// A replica that missed a reconfiguration (crashed or partitioned
// across it) installs the snapshot as one batched state application
// and joins Epoch directly: peers discarded the previous DAG at the
// transition, so round-by-round replay of the missed history is
// impossible by design (see the GC/epoch recovery contract in the
// README "Recovery" section).
type Snapshot struct {
	// Epoch is the epoch this snapshot admits a replica into — the
	// epoch entered at the transition that captured it. The committee
	// itself is static; per-epoch shard and leader assignments are
	// derived deterministically from Epoch and N.
	Epoch Epoch
	// N is the committee size the snapshot was captured under, binding
	// the digest to the configuration.
	N uint32

	// PrevEpoch and EndRound are the last-commit provenance: the epoch
	// that ended at the transition and its final committed leader
	// round (the wave that completed the Shift quorum).
	PrevEpoch Epoch
	EndRound  Round

	// Commits is the length of the committed-transaction sequence at
	// capture (the commit-log position the first post-snapshot commit
	// will occupy).
	Commits uint64

	// Ledger is the full committed key/value state, in strictly
	// ascending key order.
	Ledger []RWRecord

	// Applied holds the transaction IDs resolved by the committed
	// prefix — committed ones plus deterministic failures — in
	// strictly ascending byte order. Installing it keeps the jumping
	// replica's dedup aligned with the committee's.
	Applied []Digest

	// dig caches the content digest (see Block.dig for the ownership
	// discipline: snapshots are immutable once built, decode resets
	// the cache).
	dig   Digest
	digOK bool
}

// SortLedger puts records into the canonical strictly-ascending key
// order builders must emit.
func SortLedger(recs []RWRecord) {
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })
}

// SortDigests puts digests into the canonical strictly-ascending byte
// order builders must emit.
func SortDigests(ds []Digest) {
	sort.Slice(ds, func(i, j int) bool { return bytes.Compare(ds[i][:], ds[j][:]) < 0 })
}

// Canonical reports whether the snapshot is in canonical form: ledger
// keys strictly ascending and applied IDs strictly ascending. Honest
// builders always emit canonical snapshots; receivers reject anything
// else before counting it toward an install quorum, so a malformed or
// deliberately reordered copy can never masquerade as a fresh digest
// of the same logical state.
func (s *Snapshot) Canonical() bool {
	for i := 1; i < len(s.Ledger); i++ {
		if s.Ledger[i-1].Key >= s.Ledger[i].Key {
			return false
		}
	}
	for i := 1; i < len(s.Applied); i++ {
		if bytes.Compare(s.Applied[i-1][:], s.Applied[i][:]) >= 0 {
			return false
		}
	}
	return true
}

// Digest returns the canonical content address of the snapshot,
// computed once and cached. Two snapshots match iff their epochs,
// provenance, commit position, ledger, and applied sets all match.
func (s *Snapshot) Digest() Digest {
	if !s.digOK {
		e := GetEncoder()
		s.encode(e)
		s.dig = HashBytes(e.Sum())
		PutEncoder(e)
		s.digOK = true
	}
	return s.dig
}

func (s *Snapshot) encode(e *Encoder) {
	e.U64(uint64(s.Epoch))
	e.U32(s.N)
	e.U64(uint64(s.PrevEpoch))
	e.U64(uint64(s.EndRound))
	e.U64(s.Commits)
	encodeRecords(e, s.Ledger)
	e.U32(uint32(len(s.Applied)))
	for _, d := range s.Applied {
		e.Digest(d)
	}
}

// MarshalBinary encodes the snapshot canonically.
func (s *Snapshot) MarshalBinary() ([]byte, error) {
	e := GetEncoder()
	defer PutEncoder(e)
	s.encode(e)
	return e.Detach(), nil
}

// UnmarshalBinary decodes a snapshot encoded by MarshalBinary.
func (s *Snapshot) UnmarshalBinary(b []byte) error {
	s.digOK = false
	d := NewDecoder(b)
	s.Epoch = Epoch(d.U64())
	s.N = d.U32()
	s.PrevEpoch = Epoch(d.U64())
	s.EndRound = Round(d.U64())
	s.Commits = d.U64()
	s.Ledger = decodeRecords(d)
	na := d.U32()
	if d.Err() == nil && int(na) > len(b)/32 {
		return fmt.Errorf("types: implausible applied count %d", na)
	}
	s.Applied = make([]Digest, 0, na)
	for i := uint32(0); i < na && d.Err() == nil; i++ {
		s.Applied = append(s.Applied, d.Digest())
	}
	return d.Finish()
}
