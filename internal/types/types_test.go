package types

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueCloneIndependence(t *testing.T) {
	v := Value("hello")
	c := v.Clone()
	c[0] = 'H'
	if string(v) != "hello" {
		t.Fatalf("clone aliases original: %q", v)
	}
	if Value(nil).Clone() != nil {
		t.Fatal("nil clone should stay nil")
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{nil, nil, true},
		{Value{}, nil, true},
		{Value("a"), Value("a"), true},
		{Value("a"), Value("b"), false},
		{Value("a"), Value("ab"), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("Equal(%q,%q)=%v want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestTransactionIDStableAcrossPromotion(t *testing.T) {
	tx := &Transaction{
		Client:   7,
		Nonce:    42,
		Kind:     SingleShard,
		Shards:   []ShardID{3},
		Contract: "smallbank.send_payment",
		Args:     [][]byte{[]byte("a"), []byte("b")},
	}
	before := tx.ID()
	tx.Promote()
	if tx.Kind != CrossShard || tx.OrigKind != SingleShard {
		t.Fatalf("promotion wrong: kind=%v orig=%v", tx.Kind, tx.OrigKind)
	}
	if tx.ID() != before {
		t.Fatal("promotion changed transaction identity")
	}
	// Promotion must be idempotent.
	tx.Promote()
	if tx.OrigKind != SingleShard {
		t.Fatal("double promotion clobbered OrigKind")
	}
}

func TestTransactionIDDistinguishes(t *testing.T) {
	base := Transaction{Client: 1, Nonce: 1, Kind: SingleShard, Shards: []ShardID{0}, Contract: "c"}
	a := base
	b := base
	b.Nonce = 2
	if a.ID() == b.ID() {
		t.Fatal("different nonces share an ID")
	}
	c := base
	c.Args = [][]byte{[]byte("x")}
	if a.ID() == c.ID() {
		t.Fatal("different args share an ID")
	}
	// Timestamp must not affect identity.
	d := base
	d.SubmitUnixNano = 999
	if a.ID() != d.ID() {
		t.Fatal("timestamp changed identity")
	}
}

func TestTransactionRoundTrip(t *testing.T) {
	tx := &Transaction{
		Client: 9, Nonce: 10, Kind: CrossShard, OrigKind: SingleShard,
		Shards: []ShardID{1, 4}, Contract: "smallbank.amalgamate",
		Args: [][]byte{[]byte("acct1"), nil, []byte("acct2")},
		Code: []byte{0x01, 0x02}, SubmitUnixNano: 12345,
	}
	enc, err := tx.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Transaction
	if err := got.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	if got.ID() != tx.ID() {
		t.Fatal("round trip changed identity")
	}
	if got.Kind != tx.Kind || got.OrigKind != tx.OrigKind || got.SubmitUnixNano != tx.SubmitUnixNano {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, *tx)
	}
	if len(got.Args) != 3 || !bytes.Equal(got.Args[0], []byte("acct1")) {
		t.Fatalf("args mismatch: %v", got.Args)
	}
}

func TestTransactionRoundTripQuick(t *testing.T) {
	f := func(client, nonce uint64, shard uint32, contract string, arg []byte, ts int64) bool {
		tx := &Transaction{
			Client: client, Nonce: nonce, Kind: SingleShard,
			Shards: []ShardID{ShardID(shard)}, Contract: contract,
			Args: [][]byte{arg}, SubmitUnixNano: ts,
		}
		enc, err := tx.MarshalBinary()
		if err != nil {
			return false
		}
		var got Transaction
		if err := got.UnmarshalBinary(enc); err != nil {
			return false
		}
		return got.ID() == tx.ID() && got.SubmitUnixNano == ts
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransactionUnmarshalRejectsGarbage(t *testing.T) {
	var tx Transaction
	if err := tx.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected error on truncated input")
	}
	// Trailing bytes must be rejected too.
	good, _ := (&Transaction{Kind: SingleShard, Shards: []ShardID{0}}).MarshalBinary()
	if err := tx.UnmarshalBinary(append(good, 0xFF)); err == nil {
		t.Fatal("expected error on trailing bytes")
	}
}

func TestTxResultRoundTrip(t *testing.T) {
	r := &TxResult{
		TxID:         HashBytes([]byte("tx")),
		ScheduleIdx:  7,
		ReadSet:      []RWRecord{{Key: "a", Value: Value("1")}, {Key: "b", Value: nil}},
		WriteSet:     []RWRecord{{Key: "a", Value: Value("2")}},
		Reexecutions: 3,
	}
	enc, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got TxResult
	if err := got.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.WriteSet, r.WriteSet) || got.ScheduleIdx != 7 || got.Reexecutions != 3 {
		t.Fatalf("mismatch: %+v", got)
	}
	if len(got.ReadSet) != 2 || got.ReadSet[0].Key != "a" {
		t.Fatalf("read set mismatch: %+v", got.ReadSet)
	}
}

func TestBlockDigestDeterministic(t *testing.T) {
	mk := func() *Block {
		return &Block{
			Epoch: 1, Round: 3, Proposer: 2, Shard: 2, Kind: NormalBlock,
			Parents: []Digest{HashBytes([]byte("p1")), HashBytes([]byte("p2"))},
			SingleTxs: []*Transaction{
				{Client: 1, Nonce: 1, Kind: SingleShard, Shards: []ShardID{2}, Contract: "c"},
			},
			Results:          []TxResult{{TxID: HashBytes([]byte("tx"))}},
			CrossTxs:         []*Transaction{{Client: 2, Nonce: 2, Kind: CrossShard, Shards: []ShardID{1, 2}}},
			ProposedUnixNano: 100,
		}
	}
	if mk().Digest() != mk().Digest() {
		t.Fatal("identical blocks produced different digests")
	}
	b := mk()
	b.Round = 4
	if b.Digest() == mk().Digest() {
		t.Fatal("different rounds share a digest")
	}
}

func TestBlockRoundTrip(t *testing.T) {
	b := &Block{
		Epoch: 2, Round: 5, Proposer: 1, Shard: 3, Kind: SkipBlock,
		Parents:          []Digest{HashBytes([]byte("x"))},
		ProposedUnixNano: 55,
	}
	enc, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Block
	if err := got.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	if got.Digest() != b.Digest() {
		t.Fatal("block round trip changed digest")
	}
	if got.Kind != SkipBlock || got.Shard != 3 {
		t.Fatalf("field mismatch: %+v", got)
	}
}

func TestCertificateDigestIgnoresSignatures(t *testing.T) {
	c1 := &Certificate{BlockDigest: HashBytes([]byte("b")), Epoch: 1, Round: 2, Proposer: 3,
		Sigs: []Signature{{Signer: 0, Sig: []byte("s0")}}}
	c2 := &Certificate{BlockDigest: HashBytes([]byte("b")), Epoch: 1, Round: 2, Proposer: 3,
		Sigs: []Signature{{Signer: 1, Sig: []byte("s1")}, {Signer: 2, Sig: []byte("s2")}}}
	if c1.Digest() != c2.Digest() {
		t.Fatal("certificate identity must not depend on which quorum signed")
	}
}

func TestCertificateRoundTrip(t *testing.T) {
	c := &Certificate{BlockDigest: HashBytes([]byte("blk")), Epoch: 1, Round: 9, Proposer: 0,
		Sigs: []Signature{{Signer: 1, Sig: []byte("a")}, {Signer: 2, Sig: []byte("b")}}}
	enc, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Certificate
	if err := got.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	// Compare semantically (identity digest + re-marshalled bytes),
	// not with DeepEqual: the unexported digest-cache fields differ
	// depending on whether Digest was ever called on a value.
	if got.Digest() != c.Digest() {
		t.Fatalf("identity mismatch: %+v vs %+v", got, *c)
	}
	enc2, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(enc2, enc) {
		t.Fatalf("re-encoding differs: %x vs %x", enc2, enc)
	}
}

func TestShardMapStableAndInRange(t *testing.T) {
	m := NewShardMap(7)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		k := Key(randString(rng, 1+rng.Intn(20)))
		s1 := m.ShardOf(k)
		s2 := m.ShardOf(k)
		if s1 != s2 {
			t.Fatalf("unstable shard for %q", k)
		}
		if uint32(s1) >= 7 {
			t.Fatalf("shard out of range: %d", s1)
		}
	}
}

func TestShardMapCoversAllShards(t *testing.T) {
	m := NewShardMap(4)
	seen := map[ShardID]bool{}
	for i := 0; i < 200; i++ {
		seen[m.ShardOf(Key(randString(rand.New(rand.NewSource(int64(i))), 8)))] = true
	}
	if len(seen) != 4 {
		t.Fatalf("hash does not cover all shards: %v", seen)
	}
}

func TestShardMapPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero shards")
		}
	}()
	NewShardMap(0)
}

func TestSharesShard(t *testing.T) {
	a := &Transaction{Shards: []ShardID{1, 2}}
	b := &Transaction{Shards: []ShardID{2, 3}}
	c := &Transaction{Shards: []ShardID{4}}
	if !a.SharesShard(b) {
		t.Fatal("a and b overlap on shard 2")
	}
	if a.SharesShard(c) {
		t.Fatal("a and c are disjoint")
	}
	if !a.TouchesShard(1) || a.TouchesShard(9) {
		t.Fatal("TouchesShard wrong")
	}
}

func randString(rng *rand.Rand, n int) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(b)
}
