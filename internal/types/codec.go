package types

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// Encoder builds a canonical binary encoding. All integers are
// big-endian and all variable-length fields are length-prefixed, so
// encodings are unique: no two distinct logical values share bytes.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{buf: make([]byte, 0, 256)} }

// encPool recycles encoder buffers across the hot encode paths
// (block/transaction marshalling, digest computation). Buffers that
// grew beyond maxPooledBuf are dropped instead of pinned forever.
var encPool = sync.Pool{New: func() any { return &Encoder{buf: make([]byte, 0, 1024)} }}

const maxPooledBuf = 1 << 20

// GetEncoder returns a reset encoder from the pool. Pair with
// PutEncoder; any slice obtained via Sum must not be retained past
// the PutEncoder call (use Detach for an owned copy).
func GetEncoder() *Encoder {
	e := encPool.Get().(*Encoder)
	e.buf = e.buf[:0]
	return e
}

// PutEncoder returns e to the pool.
func PutEncoder(e *Encoder) {
	if cap(e.buf) <= maxPooledBuf {
		encPool.Put(e)
	}
}

// Sum returns the accumulated bytes. The returned slice aliases the
// encoder's buffer; callers must not mutate it while still appending.
func (e *Encoder) Sum() []byte { return e.buf }

// Detach returns an exact-size copy of the accumulated bytes, safe to
// retain after the encoder goes back to the pool.
func (e *Encoder) Detach() []byte {
	out := make([]byte, len(e.buf))
	copy(out, e.buf)
	return out
}

// BeginLen reserves a u32 length slot for a nested length-prefixed
// encoding and returns its position; close it with EndLen. This nests
// sub-encodings (transactions inside a block) into one buffer with the
// exact wire bytes Bytes(sub.MarshalBinary()) would produce, without
// the intermediate allocation.
func (e *Encoder) BeginLen() int {
	at := len(e.buf)
	e.buf = append(e.buf, 0, 0, 0, 0)
	return at
}

// EndLen backfills the length slot opened at position at.
func (e *Encoder) EndLen(at int) {
	binary.BigEndian.PutUint32(e.buf[at:], uint32(len(e.buf)-at-4))
}

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U32 appends a big-endian uint32.
func (e *Encoder) U32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// U64 appends a big-endian uint64.
func (e *Encoder) U64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// I64 appends a big-endian int64 (two's complement).
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Bytes appends a length-prefixed byte string.
func (e *Encoder) Bytes(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// Str appends a length-prefixed string.
func (e *Encoder) Str(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Digest appends a fixed 32-byte digest.
func (e *Encoder) Digest(d Digest) { e.buf = append(e.buf, d[:]...) }

// Decoder reads back values produced by Encoder. The first decoding
// error sticks: every subsequent call returns zero values, and Err
// reports the failure. This keeps call sites free of per-field error
// handling while still surfacing truncated or corrupt input.
type Decoder struct {
	buf    []byte
	off    int
	err    error
	shared bool
}

// NewDecoder wraps b for reading. Bytes() returns owned copies, so b
// may be reused by the caller once decoding finishes.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// NewSharedDecoder wraps b for reading with single-buffer slicing:
// Bytes() returns subslices of b instead of per-field copies, so the
// whole decode costs zero byte copies. The caller transfers ownership
// of b — it must never be mutated or recycled afterwards, because the
// decoded values alias it for their entire lifetime. The hot receive
// paths (block/certificate/vote decode) use this with freshly
// allocated transport payloads; the decoded object pins exactly the
// message that carried it, which it would otherwise have copied
// field by field (the ~8.5k allocs/block the decode benchmarks
// tracked).
func NewSharedDecoder(b []byte) *Decoder { return &Decoder{buf: b, shared: true} }

// Err returns the first error encountered, or nil.
func (d *Decoder) Err() error { return d.err }

// Finish returns an error if decoding failed or bytes remain.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("types: %d trailing bytes after decode", len(d.buf)-d.off)
	}
	return nil
}

var errShort = errors.New("types: short buffer")

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.buf)-d.off < n {
		d.err = errShort
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a big-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// I64 reads a big-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Bytes reads a length-prefixed byte string: a copy under NewDecoder,
// a subslice of the input under NewSharedDecoder. Empty strings decode
// as nil either way.
func (d *Decoder) Bytes() []byte {
	b := d.view()
	if len(b) == 0 {
		return nil
	}
	if d.shared {
		return b
	}
	return append([]byte(nil), b...)
}

// sub returns a decoder over the next length-prefixed field, sharing
// this decoder's buffer-ownership mode — how nested encodings (the
// transactions and results inside a block) decode without first being
// copied out of the parent buffer.
func (d *Decoder) sub() Decoder {
	return Decoder{buf: d.view(), shared: d.shared}
}

// view reads a length-prefixed byte string without copying; the
// returned slice aliases the decoder's buffer. Internal decode paths
// use it for nested encodings that are themselves fully copied out
// field by field.
func (d *Decoder) view() []byte {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	if n > math.MaxInt32 {
		d.err = fmt.Errorf("types: implausible length %d", n)
		return nil
	}
	return d.take(int(n))
}

// Str reads a length-prefixed string.
func (d *Decoder) Str() string { return string(d.view()) }

// Digest reads a fixed 32-byte digest.
func (d *Decoder) Digest() Digest {
	var out Digest
	b := d.take(32)
	if b != nil {
		copy(out[:], b)
	}
	return out
}

// --- Transaction wire format ---

// encode appends the transaction's wire form, including mutable
// routing fields (Kind) and the latency timestamp.
func (tx *Transaction) encode(e *Encoder) {
	e.U64(tx.Client)
	e.U64(tx.Nonce)
	e.U8(uint8(tx.Kind))
	e.U8(uint8(tx.OrigKind))
	e.U32(uint32(len(tx.Shards)))
	for _, s := range tx.Shards {
		e.U32(uint32(s))
	}
	e.Str(tx.Contract)
	e.U32(uint32(len(tx.Args)))
	for _, a := range tx.Args {
		e.Bytes(a)
	}
	e.Bytes(tx.Code)
	e.I64(tx.SubmitUnixNano)
}

// MarshalBinary encodes the transaction for network transfer.
func (tx *Transaction) MarshalBinary() ([]byte, error) {
	e := GetEncoder()
	defer PutEncoder(e)
	tx.encode(e)
	return e.Detach(), nil
}

// UnmarshalBinary decodes a transaction encoded by MarshalBinary.
// The input is copied once up front and the decoded fields alias that
// copy, so the caller keeps ownership of b.
func (tx *Transaction) UnmarshalBinary(b []byte) error {
	d := NewSharedDecoder(append([]byte(nil), b...))
	return tx.decodeBody(d)
}

// decodeBody decodes the transaction's wire form from d, which wraps
// exactly the transaction's bytes (trailing bytes are an error).
func (tx *Transaction) decodeBody(d *Decoder) error {
	return tx.decodeBodyArena(d, nil)
}

// decodeBodyArena is decodeBody with an optional shared argument
// arena: batch decoders (block decode) pass one arena for all their
// transactions' Args headers, replacing a per-transaction slice
// allocation with sub-slices of one growing backing array (returned
// slices are capacity-clipped, so a later grow never aliases them).
func (tx *Transaction) decodeBodyArena(d *Decoder, argArena *[][]byte) error {
	b := d.buf
	tx.idOK = false
	tx.Client = d.U64()
	tx.Nonce = d.U64()
	tx.Kind = TxKind(d.U8())
	tx.OrigKind = TxKind(d.U8())
	ns := d.U32()
	if d.Err() == nil && int(ns) > len(b) {
		return fmt.Errorf("types: implausible shard count %d", ns)
	}
	tx.Shards = make([]ShardID, 0, ns)
	for i := uint32(0); i < ns && d.Err() == nil; i++ {
		tx.Shards = append(tx.Shards, ShardID(d.U32()))
	}
	tx.Contract = d.InternStr() // contract names are a tiny fixed set
	na := d.U32()
	if d.Err() == nil && int(na) > len(b) {
		return fmt.Errorf("types: implausible arg count %d", na)
	}
	if argArena != nil {
		a := *argArena
		start := len(a)
		for i := uint32(0); i < na && d.Err() == nil; i++ {
			a = append(a, d.Bytes())
		}
		*argArena = a
		tx.Args = a[start:len(a):len(a)]
	} else {
		tx.Args = make([][]byte, 0, na)
		for i := uint32(0); i < na && d.Err() == nil; i++ {
			tx.Args = append(tx.Args, d.Bytes())
		}
	}
	tx.Code = d.Bytes()
	tx.SubmitUnixNano = d.I64()
	return d.Finish()
}

// --- TxResult wire format ---

func encodeRecords(e *Encoder, recs []RWRecord) {
	e.U32(uint32(len(recs)))
	for _, r := range recs {
		e.Str(string(r.Key))
		e.Bytes(r.Value)
	}
}

func decodeRecords(d *Decoder) []RWRecord {
	return decodeRecordsArena(d, nil)
}

// decodeRecordsArena decodes one record list, appending into *arena
// when provided so a whole block's results share one backing array
// (regrowth strands earlier sublists on the old array, which stays
// valid). The returned slice is capacity-clipped so later appends to
// the arena cannot alias it.
func decodeRecordsArena(d *Decoder, arena *[]RWRecord) []RWRecord {
	n := d.U32()
	if d.Err() != nil {
		return nil
	}
	var recs []RWRecord
	start := 0
	if arena != nil {
		recs = *arena
		start = len(recs)
	} else {
		recs = make([]RWRecord, 0, min(int(n), 1024))
	}
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		// Keys come from a small hot set (account cells); interning
		// them collapses the per-record string allocation to a table
		// hit after warmup.
		recs = append(recs, RWRecord{Key: Key(d.InternStr()), Value: d.Bytes()})
	}
	if arena != nil {
		*arena = recs
		return recs[start:len(recs):len(recs)]
	}
	return recs
}

// encode appends the preplay result's wire form.
func (r *TxResult) encode(e *Encoder) {
	e.Digest(r.TxID)
	e.U32(r.ScheduleIdx)
	e.U32(r.Reexecutions)
	encodeRecords(e, r.ReadSet)
	encodeRecords(e, r.WriteSet)
}

// MarshalBinary encodes the preplay result.
func (r *TxResult) MarshalBinary() ([]byte, error) {
	e := GetEncoder()
	defer PutEncoder(e)
	r.encode(e)
	return e.Detach(), nil
}

// UnmarshalBinary decodes a TxResult encoded by MarshalBinary (one
// up-front copy; decoded records alias it).
func (r *TxResult) UnmarshalBinary(b []byte) error {
	d := NewSharedDecoder(append([]byte(nil), b...))
	return r.decodeBody(d)
}

// decodeBody decodes the result's wire form from d, which wraps
// exactly the result's bytes.
func (r *TxResult) decodeBody(d *Decoder) error {
	return r.decodeBodyArena(d, nil)
}

// decodeBodyArena is decodeBody with the record lists drawn from a
// shared arena (see decodeRecordsArena).
func (r *TxResult) decodeBodyArena(d *Decoder, arena *[]RWRecord) error {
	r.TxID = d.Digest()
	r.ScheduleIdx = d.U32()
	r.Reexecutions = d.U32()
	r.ReadSet = decodeRecordsArena(d, arena)
	r.WriteSet = decodeRecordsArena(d, arena)
	return d.Finish()
}
