// Package dagtest provides fixtures for building valid certified DAGs
// in tests of the dag, tusk, and node packages.
package dagtest

import (
	"fmt"

	"thunderbolt/internal/crypto"
	"thunderbolt/internal/dag"
	"thunderbolt/internal/types"
)

// Committee bundles a test committee's signers and verifier.
type Committee struct {
	N       int
	Signers []crypto.Signer
	Ver     crypto.Verifier
}

// NewCommittee builds an insecure-scheme committee of n replicas.
func NewCommittee(n int) *Committee {
	signers, ver, err := crypto.InsecureScheme{}.Committee(n, 1)
	if err != nil {
		panic(err)
	}
	return &Committee{N: n, Signers: signers, Ver: ver}
}

// Certify produces a 2f+1 certificate over the block.
func (c *Committee) Certify(b *types.Block) *types.Certificate {
	d := b.Digest()
	q := crypto.NewQuorumCollector(c.N, c.Ver, d, b.Epoch, b.Round, b.Proposer)
	for i := 0; i < crypto.QuorumSize(c.N); i++ {
		cert, err := q.Add(types.ReplicaID(i), c.Signers[i].Sign(d))
		if err != nil {
			panic(err)
		}
		if cert != nil {
			return cert
		}
	}
	panic("dagtest: quorum never formed")
}

// Vertex builds a certified vertex.
func (c *Committee) Vertex(b *types.Block) *dag.Vertex {
	return &dag.Vertex{Block: b, Cert: c.Certify(b)}
}

// Builder incrementally grows a DAG round by round.
type Builder struct {
	C     *Committee
	Store *dag.Store
	Epoch types.Epoch
	// prev holds last round's certificate digests.
	prev []types.Digest
	// Round is the next round to emit.
	Round types.Round
}

// NewBuilder starts an empty DAG at round 1 of the given epoch.
func NewBuilder(c *Committee, epoch types.Epoch) *Builder {
	return &Builder{C: c, Store: dag.NewStore(epoch, c.N), Epoch: epoch, Round: 1}
}

// NewBuilderAt starts an empty DAG entered at round base — the
// mid-epoch snapshot install shape, where rounds below base live only
// inside the installed snapshot.
func NewBuilderAt(c *Committee, epoch types.Epoch, base types.Round) *Builder {
	return &Builder{C: c, Store: dag.NewStoreAt(epoch, c.N, base), Epoch: epoch, Round: base}
}

// NextRound emits one full round: a vertex from every proposer in
// include (nil = all), each referencing all of the previous round's
// certificates. Blocks are empty normal blocks unless customize
// mutates them. It returns the emitted vertices by proposer.
func (b *Builder) NextRound(include []types.ReplicaID, customize func(*types.Block)) map[types.ReplicaID]*dag.Vertex {
	if include == nil {
		include = make([]types.ReplicaID, b.C.N)
		for i := range include {
			include[i] = types.ReplicaID(i)
		}
	}
	out := make(map[types.ReplicaID]*dag.Vertex, len(include))
	var certs []types.Digest
	for _, p := range include {
		blk := &types.Block{
			Epoch: b.Epoch, Round: b.Round, Proposer: p,
			Shard: types.ShardID(p), Kind: types.NormalBlock,
			Parents:          append([]types.Digest(nil), b.prev...),
			ProposedUnixNano: int64(b.Round)*1000 + int64(p),
		}
		if customize != nil {
			customize(blk)
		}
		v := b.C.Vertex(blk)
		if err := b.Store.Add(v); err != nil {
			panic(fmt.Sprintf("dagtest: add round %d proposer %d: %v", b.Round, p, err))
		}
		out[p] = v
		certs = append(certs, v.Cert.Digest())
	}
	b.prev = certs
	b.Round++
	return out
}
