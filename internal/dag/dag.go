// Package dag maintains one epoch's directed acyclic graph of
// certified blocks (paper §2).
//
// Each vertex pairs a block with its 2f+1-signature certificate.
// Parent references point at certificate digests of the previous
// round, so holding a vertex transitively guarantees availability of
// its entire causal history (the DAG Validity property). The store
// answers the queries the Tusk commit rule needs: quorum detection per
// round, leader support counting, and deterministic linearization of
// causal histories.
package dag

import (
	"fmt"
	"sort"

	"thunderbolt/internal/types"
)

// Vertex is one certified DAG position.
type Vertex struct {
	Block *types.Block
	Cert  *types.Certificate
}

// Round returns the vertex's round.
func (v *Vertex) Round() types.Round { return v.Block.Round }

// Proposer returns the vertex's proposing replica.
func (v *Vertex) Proposer() types.ReplicaID { return v.Block.Proposer }

// Store holds one epoch's DAG. It is not safe for concurrent use; the
// node serializes access on its event loop.
type Store struct {
	epoch types.Epoch
	n     int

	byCert  map[types.Digest]*Vertex
	byBlock map[types.Digest]*Vertex
	rounds  map[types.Round]map[types.ReplicaID]*Vertex
	// highest caches the largest round holding any vertex, so the
	// node's per-tick frontier checks are O(1) instead of a scan over
	// every round of the epoch.
	highest types.Round
	// floor is the committed-wave GC boundary: rounds below it have
	// been pruned and can never be re-added (see PruneBelow).
	floor types.Round
	// base is the re-entry round: vertices at rounds ≤ base are
	// admitted without their parents being present. A fresh epoch has
	// base 1 (round-1 blocks have no parents); a store rebuilt from a
	// mid-epoch snapshot sets base to the snapshot's resume round,
	// whose parents predate everything the installer retained.
	base types.Round

	// walkSeen/walkStack are scratch for Linearize, reused across
	// commit waves so the per-wave walk allocates nothing but its
	// result slice. Store is event-loop-owned, so plain fields are
	// safe.
	walkSeen  map[types.Digest]bool
	walkStack []*Vertex

	// support memoizes SupportFor per vertex (by certificate digest).
	// A memo entry is valid while the supporting round's vote set is
	// unchanged; roundVer increments on every insertion into a round,
	// so a cached count from a now-stale vote set misses and recounts.
	// Once a round stops receiving vertices (it seals at n), its
	// version freezes and every later SupportFor is a map hit — the
	// committer re-asks on every Advance until the f+1 threshold lands.
	support  map[types.Digest]supportMemo
	roundVer map[types.Round]uint64
}

type supportMemo struct {
	count int
	ver   uint64
}

// NewStore creates an empty DAG for one epoch and committee size n,
// entered at round 1.
func NewStore(epoch types.Epoch, n int) *Store {
	return NewStoreAt(epoch, n, 1)
}

// NewStoreAt creates an empty DAG entered at round base: vertices of
// rounds below base are rejected outright, and vertices at base need
// no parents — the shape a mid-epoch snapshot install requires, where
// history below the resume round lives only inside the snapshot.
// base 1 is an ordinary epoch store.
func NewStoreAt(epoch types.Epoch, n int, base types.Round) *Store {
	if base < 1 {
		base = 1
	}
	return &Store{
		epoch:    epoch,
		n:        n,
		byCert:   make(map[types.Digest]*Vertex),
		byBlock:  make(map[types.Digest]*Vertex),
		rounds:   make(map[types.Round]map[types.ReplicaID]*Vertex),
		floor:    base,
		base:     base,
		support:  make(map[types.Digest]supportMemo),
		roundVer: make(map[types.Round]uint64),
	}
}

// Base returns the re-entry round the store was created at.
func (s *Store) Base() types.Round { return s.base }

// Epoch returns the epoch this DAG belongs to.
func (s *Store) Epoch() types.Epoch { return s.epoch }

// Add inserts a certified vertex. It rejects epoch mismatches,
// duplicate (round, proposer) slots with different blocks (Byzantine
// equivocation caught at certification), and vertices whose parents
// are not yet present — callers buffer those until the causal history
// arrives (Validity property).
func (s *Store) Add(v *Vertex) error {
	b := v.Block
	if b.Epoch != s.epoch {
		return fmt.Errorf("dag: vertex epoch %d, store epoch %d", b.Epoch, s.epoch)
	}
	if b.Round < s.floor {
		// The round was garbage-collected: every vertex that can still
		// reach committed history lies at or above the floor, so a
		// late arrival here is dead weight (see PruneBelow).
		return fmt.Errorf("dag: round %d below GC floor %d", b.Round, s.floor)
	}
	if v.Cert.BlockDigest != b.Digest() {
		return fmt.Errorf("dag: certificate does not cover block")
	}
	if existing, ok := s.rounds[b.Round][b.Proposer]; ok {
		if existing.Block.Digest() == b.Digest() {
			return nil // idempotent
		}
		return fmt.Errorf("dag: slot (%d,%d) already filled with a different block", b.Round, b.Proposer)
	}
	if b.Round > s.base {
		for _, p := range b.Parents {
			if _, ok := s.byCert[p]; !ok {
				return &MissingParentError{Parent: p, Round: b.Round}
			}
		}
	}
	s.byCert[v.Cert.Digest()] = v
	s.byBlock[b.Digest()] = v
	rm, ok := s.rounds[b.Round]
	if !ok {
		rm = make(map[types.ReplicaID]*Vertex)
		s.rounds[b.Round] = rm
	}
	rm[b.Proposer] = v
	s.roundVer[b.Round]++
	if b.Round > s.highest {
		s.highest = b.Round
	}
	return nil
}

// PruneBelow removes every vertex of rounds < floor and returns the
// certificate digests of the removed vertices (so the commit layer
// can drop its own bookkeeping for them). The floor only advances.
//
// Safety: the caller prunes relative to its own committed frontier
// (strictly more than the fast-forward gap behind it). A vertex that
// old and still uncommitted can never join committed history — doing
// so would need a parent reference from the next round that itself
// joins committed history, and honest proposers only reference
// current-round certificates — so removal never changes any future
// commit wave. Rounds below the floor are also rejected by Add, which
// keeps the invariant closed under late arrivals.
func (s *Store) PruneBelow(floor types.Round) []types.Digest {
	if floor > s.highest+1 {
		floor = s.highest + 1
	}
	if floor <= s.floor {
		return nil
	}
	var removed []types.Digest
	for r := s.floor; r < floor; r++ {
		rm, ok := s.rounds[r]
		if !ok {
			continue
		}
		for _, v := range rm {
			cd := v.Cert.Digest()
			removed = append(removed, cd)
			delete(s.byCert, cd)
			delete(s.byBlock, v.Block.Digest())
			delete(s.support, cd)
		}
		delete(s.rounds, r)
		delete(s.roundVer, r)
	}
	s.floor = floor
	return removed
}

// Floor returns the GC boundary: the lowest round still retained.
func (s *Store) Floor() types.Round { return s.floor }

// Len returns the number of vertices currently retained.
func (s *Store) Len() int { return len(s.byCert) }

// MissingParentError reports that a vertex references a certificate
// the store has not seen; the caller should buffer and retry.
type MissingParentError struct {
	Parent types.Digest
	Round  types.Round
}

func (e *MissingParentError) Error() string {
	return fmt.Sprintf("dag: missing parent %s for round %d", e.Parent, e.Round)
}

// ByCert returns the vertex whose certificate digest is d.
func (s *Store) ByCert(d types.Digest) (*Vertex, bool) {
	v, ok := s.byCert[d]
	return v, ok
}

// ByBlock returns the vertex whose block digest is d.
func (s *Store) ByBlock(d types.Digest) (*Vertex, bool) {
	v, ok := s.byBlock[d]
	return v, ok
}

// AtRound returns the vertices of one round keyed by proposer.
func (s *Store) AtRound(r types.Round) map[types.ReplicaID]*Vertex {
	return s.rounds[r]
}

// Get returns the vertex proposed by p in round r.
func (s *Store) Get(r types.Round, p types.ReplicaID) (*Vertex, bool) {
	v, ok := s.rounds[r][p]
	return v, ok
}

// CountAtRound returns how many vertices round r holds.
func (s *Store) CountAtRound(r types.Round) int { return len(s.rounds[r]) }

// CertsAtRound returns the certificate digests of round r in
// proposer order (deterministic parent lists).
func (s *Store) CertsAtRound(r types.Round) []types.Digest {
	rm := s.rounds[r]
	out := make([]types.Digest, 0, len(rm))
	// Walk replica IDs in committee order instead of sorting map keys:
	// this runs on every propose and committer probe, and the sort
	// closure plus the key slice were two allocations per call.
	for id := types.ReplicaID(0); int(id) < s.n; id++ {
		if v, ok := rm[id]; ok {
			out = append(out, v.Cert.Digest())
		}
	}
	return out
}

// SupportFor counts round r+1 vertices that reference the vertex v
// (round r) as a parent — the Tusk commit threshold input. The count
// is memoized per vertex and revalidated against the supporting
// round's insertion version, so the committer's repeated probes of a
// settled round cost one map lookup instead of a parent-list scan.
func (s *Store) SupportFor(v *Vertex) int {
	target := v.Cert.Digest()
	ver := s.roundVer[v.Round()+1]
	if m, ok := s.support[target]; ok && m.ver == ver {
		return m.count
	}
	support := 0
	for _, w := range s.rounds[v.Round()+1] {
		for _, p := range w.Block.Parents {
			if p == target {
				support++
				break
			}
		}
	}
	s.support[target] = supportMemo{count: support, ver: ver}
	return support
}

// HighestRound returns the largest round holding any vertex.
func (s *Store) HighestRound() types.Round { return s.highest }

// CausalHistory returns every ancestor of v (excluding v) reachable
// through parent references.
func (s *Store) CausalHistory(v *Vertex) []*Vertex {
	seen := map[types.Digest]bool{v.Cert.Digest(): true}
	var out []*Vertex
	stack := []*Vertex{v}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range cur.Block.Parents {
			if seen[p] {
				continue
			}
			seen[p] = true
			if pv, ok := s.byCert[p]; ok {
				out = append(out, pv)
				stack = append(stack, pv)
			}
		}
	}
	return out
}

// InCausalHistory reports whether target is an ancestor of from
// (strictly: reachable through parent references). The walk prunes at
// target's round — parents always point one round down, so no path
// reaches target from below it.
func (s *Store) InCausalHistory(from, target *Vertex) bool {
	want := target.Cert.Digest()
	floor := target.Round()
	seen := map[types.Digest]bool{from.Cert.Digest(): true}
	stack := []*Vertex{from}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur.Round() <= floor {
			continue
		}
		for _, p := range cur.Block.Parents {
			if p == want {
				return true
			}
			if seen[p] {
				continue
			}
			seen[p] = true
			if pv, ok := s.byCert[p]; ok && pv.Round() > floor {
				stack = append(stack, pv)
			}
		}
	}
	return false
}

// Linearize returns v's causal history plus v itself, excluding
// vertices for which skip reports true (already committed), in the
// canonical deterministic order: ascending round, then ascending
// proposer. Every honest replica computes the identical sequence for
// the same leader vertex (DAG Completeness).
//
// The walk prunes at skipped vertices: the committed set is causally
// closed (committing a leader commits its entire uncommitted history
// in the same wave), so a skipped vertex never has an unskipped
// ancestor and the walk never needs to descend past it. That makes a
// commit wave cost O(vertices committed this wave), not O(retained
// DAG) — the retained DAG spans up to GCHorizon rounds, and the full
// walk dominated cluster commit latency.
func (s *Store) Linearize(v *Vertex, skip func(types.Digest) bool) []*Vertex {
	if skip != nil && skip(v.Cert.Digest()) {
		return nil
	}
	for k := range s.walkSeen {
		delete(s.walkSeen, k)
	}
	if s.walkSeen == nil {
		s.walkSeen = make(map[types.Digest]bool, 64)
	}
	s.walkSeen[v.Cert.Digest()] = true
	out := make([]*Vertex, 1, 16) // escapes to the committer; not scratch
	out[0] = v
	stack := append(s.walkStack[:0], v)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range cur.Block.Parents {
			if s.walkSeen[p] {
				continue
			}
			s.walkSeen[p] = true
			if skip != nil && skip(p) {
				continue
			}
			if pv, ok := s.byCert[p]; ok {
				out = append(out, pv)
				stack = append(stack, pv)
			}
		}
	}
	s.walkStack = stack
	sort.Slice(out, func(i, j int) bool {
		if out[i].Round() != out[j].Round() {
			return out[i].Round() < out[j].Round()
		}
		return out[i].Proposer() < out[j].Proposer()
	})
	return out
}
